# Empty dependencies file for tiered_kvstore.
# This may be replaced when dependencies are built.
