file(REMOVE_RECURSE
  "CMakeFiles/tiered_kvstore.dir/tiered_kvstore.cpp.o"
  "CMakeFiles/tiered_kvstore.dir/tiered_kvstore.cpp.o.d"
  "tiered_kvstore"
  "tiered_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiered_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
