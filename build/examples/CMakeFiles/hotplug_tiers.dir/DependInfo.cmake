
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/hotplug_tiers.cpp" "examples/CMakeFiles/hotplug_tiers.dir/hotplug_tiers.cpp.o" "gcc" "examples/CMakeFiles/hotplug_tiers.dir/hotplug_tiers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mux_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/mux_device.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/mux_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/fscommon/CMakeFiles/mux_fscommon.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/novafs/CMakeFiles/mux_novafs.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/xfslite/CMakeFiles/mux_xfslite.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/extlite/CMakeFiles/mux_extlite.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mux_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
