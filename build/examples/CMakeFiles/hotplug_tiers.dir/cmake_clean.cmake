file(REMOVE_RECURSE
  "CMakeFiles/hotplug_tiers.dir/hotplug_tiers.cpp.o"
  "CMakeFiles/hotplug_tiers.dir/hotplug_tiers.cpp.o.d"
  "hotplug_tiers"
  "hotplug_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotplug_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
