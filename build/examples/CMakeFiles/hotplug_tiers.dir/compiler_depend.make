# Empty compiler generated dependencies file for hotplug_tiers.
# This may be replaced when dependencies are built.
