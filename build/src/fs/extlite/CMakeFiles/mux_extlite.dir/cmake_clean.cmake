file(REMOVE_RECURSE
  "CMakeFiles/mux_extlite.dir/extlite.cc.o"
  "CMakeFiles/mux_extlite.dir/extlite.cc.o.d"
  "libmux_extlite.a"
  "libmux_extlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mux_extlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
