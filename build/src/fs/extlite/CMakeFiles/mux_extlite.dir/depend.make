# Empty dependencies file for mux_extlite.
# This may be replaced when dependencies are built.
