file(REMOVE_RECURSE
  "libmux_extlite.a"
)
