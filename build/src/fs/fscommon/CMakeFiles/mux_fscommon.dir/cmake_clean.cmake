file(REMOVE_RECURSE
  "CMakeFiles/mux_fscommon.dir/extent_allocator.cc.o"
  "CMakeFiles/mux_fscommon.dir/extent_allocator.cc.o.d"
  "CMakeFiles/mux_fscommon.dir/journal.cc.o"
  "CMakeFiles/mux_fscommon.dir/journal.cc.o.d"
  "CMakeFiles/mux_fscommon.dir/page_cache.cc.o"
  "CMakeFiles/mux_fscommon.dir/page_cache.cc.o.d"
  "libmux_fscommon.a"
  "libmux_fscommon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mux_fscommon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
