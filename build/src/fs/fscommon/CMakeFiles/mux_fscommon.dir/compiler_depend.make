# Empty compiler generated dependencies file for mux_fscommon.
# This may be replaced when dependencies are built.
