
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/fscommon/extent_allocator.cc" "src/fs/fscommon/CMakeFiles/mux_fscommon.dir/extent_allocator.cc.o" "gcc" "src/fs/fscommon/CMakeFiles/mux_fscommon.dir/extent_allocator.cc.o.d"
  "/root/repo/src/fs/fscommon/journal.cc" "src/fs/fscommon/CMakeFiles/mux_fscommon.dir/journal.cc.o" "gcc" "src/fs/fscommon/CMakeFiles/mux_fscommon.dir/journal.cc.o.d"
  "/root/repo/src/fs/fscommon/page_cache.cc" "src/fs/fscommon/CMakeFiles/mux_fscommon.dir/page_cache.cc.o" "gcc" "src/fs/fscommon/CMakeFiles/mux_fscommon.dir/page_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mux_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/mux_device.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/mux_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
