file(REMOVE_RECURSE
  "libmux_fscommon.a"
)
