
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/xfslite/xfslite.cc" "src/fs/xfslite/CMakeFiles/mux_xfslite.dir/xfslite.cc.o" "gcc" "src/fs/xfslite/CMakeFiles/mux_xfslite.dir/xfslite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fs/fscommon/CMakeFiles/mux_fscommon.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/mux_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/mux_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mux_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
