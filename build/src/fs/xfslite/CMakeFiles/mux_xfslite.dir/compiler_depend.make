# Empty compiler generated dependencies file for mux_xfslite.
# This may be replaced when dependencies are built.
