file(REMOVE_RECURSE
  "libmux_xfslite.a"
)
