file(REMOVE_RECURSE
  "CMakeFiles/mux_xfslite.dir/xfslite.cc.o"
  "CMakeFiles/mux_xfslite.dir/xfslite.cc.o.d"
  "libmux_xfslite.a"
  "libmux_xfslite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mux_xfslite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
