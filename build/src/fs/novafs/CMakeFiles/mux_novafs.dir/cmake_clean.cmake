file(REMOVE_RECURSE
  "CMakeFiles/mux_novafs.dir/novafs.cc.o"
  "CMakeFiles/mux_novafs.dir/novafs.cc.o.d"
  "libmux_novafs.a"
  "libmux_novafs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mux_novafs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
