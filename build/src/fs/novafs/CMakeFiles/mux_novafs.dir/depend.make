# Empty dependencies file for mux_novafs.
# This may be replaced when dependencies are built.
