file(REMOVE_RECURSE
  "libmux_novafs.a"
)
