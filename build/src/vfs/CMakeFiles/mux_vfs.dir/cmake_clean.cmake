file(REMOVE_RECURSE
  "CMakeFiles/mux_vfs.dir/memfs.cc.o"
  "CMakeFiles/mux_vfs.dir/memfs.cc.o.d"
  "CMakeFiles/mux_vfs.dir/path.cc.o"
  "CMakeFiles/mux_vfs.dir/path.cc.o.d"
  "CMakeFiles/mux_vfs.dir/vfs.cc.o"
  "CMakeFiles/mux_vfs.dir/vfs.cc.o.d"
  "libmux_vfs.a"
  "libmux_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mux_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
