file(REMOVE_RECURSE
  "libmux_vfs.a"
)
