# Empty compiler generated dependencies file for mux_vfs.
# This may be replaced when dependencies are built.
