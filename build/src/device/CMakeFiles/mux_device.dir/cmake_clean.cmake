file(REMOVE_RECURSE
  "CMakeFiles/mux_device.dir/block_device.cc.o"
  "CMakeFiles/mux_device.dir/block_device.cc.o.d"
  "CMakeFiles/mux_device.dir/device_profile.cc.o"
  "CMakeFiles/mux_device.dir/device_profile.cc.o.d"
  "CMakeFiles/mux_device.dir/pm_device.cc.o"
  "CMakeFiles/mux_device.dir/pm_device.cc.o.d"
  "libmux_device.a"
  "libmux_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mux_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
