
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/block_device.cc" "src/device/CMakeFiles/mux_device.dir/block_device.cc.o" "gcc" "src/device/CMakeFiles/mux_device.dir/block_device.cc.o.d"
  "/root/repo/src/device/device_profile.cc" "src/device/CMakeFiles/mux_device.dir/device_profile.cc.o" "gcc" "src/device/CMakeFiles/mux_device.dir/device_profile.cc.o.d"
  "/root/repo/src/device/pm_device.cc" "src/device/CMakeFiles/mux_device.dir/pm_device.cc.o" "gcc" "src/device/CMakeFiles/mux_device.dir/pm_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mux_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
