file(REMOVE_RECURSE
  "libmux_device.a"
)
