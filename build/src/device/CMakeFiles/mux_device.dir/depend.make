# Empty dependencies file for mux_device.
# This may be replaced when dependencies are built.
