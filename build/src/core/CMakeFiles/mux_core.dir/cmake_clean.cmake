file(REMOVE_RECURSE
  "CMakeFiles/mux_core.dir/block_lookup_table.cc.o"
  "CMakeFiles/mux_core.dir/block_lookup_table.cc.o.d"
  "CMakeFiles/mux_core.dir/bookkeeper.cc.o"
  "CMakeFiles/mux_core.dir/bookkeeper.cc.o.d"
  "CMakeFiles/mux_core.dir/cache_controller.cc.o"
  "CMakeFiles/mux_core.dir/cache_controller.cc.o.d"
  "CMakeFiles/mux_core.dir/io_scheduler.cc.o"
  "CMakeFiles/mux_core.dir/io_scheduler.cc.o.d"
  "CMakeFiles/mux_core.dir/mglru.cc.o"
  "CMakeFiles/mux_core.dir/mglru.cc.o.d"
  "CMakeFiles/mux_core.dir/mux.cc.o"
  "CMakeFiles/mux_core.dir/mux.cc.o.d"
  "CMakeFiles/mux_core.dir/mux_data.cc.o"
  "CMakeFiles/mux_core.dir/mux_data.cc.o.d"
  "CMakeFiles/mux_core.dir/mux_replication.cc.o"
  "CMakeFiles/mux_core.dir/mux_replication.cc.o.d"
  "CMakeFiles/mux_core.dir/policies.cc.o"
  "CMakeFiles/mux_core.dir/policies.cc.o.d"
  "libmux_core.a"
  "libmux_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mux_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
