
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block_lookup_table.cc" "src/core/CMakeFiles/mux_core.dir/block_lookup_table.cc.o" "gcc" "src/core/CMakeFiles/mux_core.dir/block_lookup_table.cc.o.d"
  "/root/repo/src/core/bookkeeper.cc" "src/core/CMakeFiles/mux_core.dir/bookkeeper.cc.o" "gcc" "src/core/CMakeFiles/mux_core.dir/bookkeeper.cc.o.d"
  "/root/repo/src/core/cache_controller.cc" "src/core/CMakeFiles/mux_core.dir/cache_controller.cc.o" "gcc" "src/core/CMakeFiles/mux_core.dir/cache_controller.cc.o.d"
  "/root/repo/src/core/io_scheduler.cc" "src/core/CMakeFiles/mux_core.dir/io_scheduler.cc.o" "gcc" "src/core/CMakeFiles/mux_core.dir/io_scheduler.cc.o.d"
  "/root/repo/src/core/mglru.cc" "src/core/CMakeFiles/mux_core.dir/mglru.cc.o" "gcc" "src/core/CMakeFiles/mux_core.dir/mglru.cc.o.d"
  "/root/repo/src/core/mux.cc" "src/core/CMakeFiles/mux_core.dir/mux.cc.o" "gcc" "src/core/CMakeFiles/mux_core.dir/mux.cc.o.d"
  "/root/repo/src/core/mux_data.cc" "src/core/CMakeFiles/mux_core.dir/mux_data.cc.o" "gcc" "src/core/CMakeFiles/mux_core.dir/mux_data.cc.o.d"
  "/root/repo/src/core/mux_replication.cc" "src/core/CMakeFiles/mux_core.dir/mux_replication.cc.o" "gcc" "src/core/CMakeFiles/mux_core.dir/mux_replication.cc.o.d"
  "/root/repo/src/core/policies.cc" "src/core/CMakeFiles/mux_core.dir/policies.cc.o" "gcc" "src/core/CMakeFiles/mux_core.dir/policies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fs/fscommon/CMakeFiles/mux_fscommon.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/mux_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/mux_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mux_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
