# Empty compiler generated dependencies file for mux_common.
# This may be replaced when dependencies are built.
