file(REMOVE_RECURSE
  "libmux_common.a"
)
