file(REMOVE_RECURSE
  "CMakeFiles/mux_common.dir/clock.cc.o"
  "CMakeFiles/mux_common.dir/clock.cc.o.d"
  "CMakeFiles/mux_common.dir/histogram.cc.o"
  "CMakeFiles/mux_common.dir/histogram.cc.o.d"
  "CMakeFiles/mux_common.dir/logging.cc.o"
  "CMakeFiles/mux_common.dir/logging.cc.o.d"
  "CMakeFiles/mux_common.dir/status.cc.o"
  "CMakeFiles/mux_common.dir/status.cc.o.d"
  "libmux_common.a"
  "libmux_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mux_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
