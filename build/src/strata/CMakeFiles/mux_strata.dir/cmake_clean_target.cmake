file(REMOVE_RECURSE
  "libmux_strata.a"
)
