file(REMOVE_RECURSE
  "CMakeFiles/mux_strata.dir/strata.cc.o"
  "CMakeFiles/mux_strata.dir/strata.cc.o.d"
  "libmux_strata.a"
  "libmux_strata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mux_strata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
