# Empty compiler generated dependencies file for mux_strata.
# This may be replaced when dependencies are built.
