# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/path_test[1]_include.cmake")
include("/root/repo/build/tests/memfs_test[1]_include.cmake")
include("/root/repo/build/tests/vfs_test[1]_include.cmake")
include("/root/repo/build/tests/page_cache_test[1]_include.cmake")
include("/root/repo/build/tests/journal_test[1]_include.cmake")
include("/root/repo/build/tests/extent_allocator_test[1]_include.cmake")
include("/root/repo/build/tests/fs_contract_test[1]_include.cmake")
include("/root/repo/build/tests/novafs_test[1]_include.cmake")
include("/root/repo/build/tests/xfslite_test[1]_include.cmake")
include("/root/repo/build/tests/extlite_test[1]_include.cmake")
include("/root/repo/build/tests/strata_test[1]_include.cmake")
include("/root/repo/build/tests/blt_test[1]_include.cmake")
include("/root/repo/build/tests/core_units_test[1]_include.cmake")
include("/root/repo/build/tests/mux_test[1]_include.cmake")
include("/root/repo/build/tests/mux_extended_test[1]_include.cmake")
include("/root/repo/build/tests/mux_replication_test[1]_include.cmake")
include("/root/repo/build/tests/novafs_crash_test[1]_include.cmake")
