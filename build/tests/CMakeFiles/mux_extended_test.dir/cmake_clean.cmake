file(REMOVE_RECURSE
  "CMakeFiles/mux_extended_test.dir/mux_extended_test.cc.o"
  "CMakeFiles/mux_extended_test.dir/mux_extended_test.cc.o.d"
  "mux_extended_test"
  "mux_extended_test.pdb"
  "mux_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mux_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
