# Empty compiler generated dependencies file for mux_extended_test.
# This may be replaced when dependencies are built.
