file(REMOVE_RECURSE
  "CMakeFiles/mux_replication_test.dir/mux_replication_test.cc.o"
  "CMakeFiles/mux_replication_test.dir/mux_replication_test.cc.o.d"
  "mux_replication_test"
  "mux_replication_test.pdb"
  "mux_replication_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mux_replication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
