# Empty compiler generated dependencies file for mux_replication_test.
# This may be replaced when dependencies are built.
