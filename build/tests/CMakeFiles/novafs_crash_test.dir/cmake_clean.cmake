file(REMOVE_RECURSE
  "CMakeFiles/novafs_crash_test.dir/novafs_crash_test.cc.o"
  "CMakeFiles/novafs_crash_test.dir/novafs_crash_test.cc.o.d"
  "novafs_crash_test"
  "novafs_crash_test.pdb"
  "novafs_crash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/novafs_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
