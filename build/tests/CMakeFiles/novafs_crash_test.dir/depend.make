# Empty dependencies file for novafs_crash_test.
# This may be replaced when dependencies are built.
