file(REMOVE_RECURSE
  "CMakeFiles/fs_contract_test.dir/fs_contract_test.cc.o"
  "CMakeFiles/fs_contract_test.dir/fs_contract_test.cc.o.d"
  "fs_contract_test"
  "fs_contract_test.pdb"
  "fs_contract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
