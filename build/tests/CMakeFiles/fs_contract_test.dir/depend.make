# Empty dependencies file for fs_contract_test.
# This may be replaced when dependencies are built.
