# Empty compiler generated dependencies file for blt_test.
# This may be replaced when dependencies are built.
