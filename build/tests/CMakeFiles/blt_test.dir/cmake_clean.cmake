file(REMOVE_RECURSE
  "CMakeFiles/blt_test.dir/blt_test.cc.o"
  "CMakeFiles/blt_test.dir/blt_test.cc.o.d"
  "blt_test"
  "blt_test.pdb"
  "blt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
