# Empty compiler generated dependencies file for xfslite_test.
# This may be replaced when dependencies are built.
