file(REMOVE_RECURSE
  "CMakeFiles/xfslite_test.dir/xfslite_test.cc.o"
  "CMakeFiles/xfslite_test.dir/xfslite_test.cc.o.d"
  "xfslite_test"
  "xfslite_test.pdb"
  "xfslite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfslite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
