file(REMOVE_RECURSE
  "CMakeFiles/extlite_test.dir/extlite_test.cc.o"
  "CMakeFiles/extlite_test.dir/extlite_test.cc.o.d"
  "extlite_test"
  "extlite_test.pdb"
  "extlite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extlite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
