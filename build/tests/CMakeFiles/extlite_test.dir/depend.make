# Empty dependencies file for extlite_test.
# This may be replaced when dependencies are built.
