# Empty dependencies file for mux_test.
# This may be replaced when dependencies are built.
