file(REMOVE_RECURSE
  "../bench/ablation_blt"
  "../bench/ablation_blt.pdb"
  "CMakeFiles/ablation_blt.dir/ablation_blt.cc.o"
  "CMakeFiles/ablation_blt.dir/ablation_blt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_blt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
