# Empty dependencies file for ablation_blt.
# This may be replaced when dependencies are built.
