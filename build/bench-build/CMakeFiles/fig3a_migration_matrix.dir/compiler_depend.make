# Empty compiler generated dependencies file for fig3a_migration_matrix.
# This may be replaced when dependencies are built.
