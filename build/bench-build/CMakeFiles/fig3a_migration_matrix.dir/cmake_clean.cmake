file(REMOVE_RECURSE
  "../bench/fig3a_migration_matrix"
  "../bench/fig3a_migration_matrix.pdb"
  "CMakeFiles/fig3a_migration_matrix.dir/fig3a_migration_matrix.cc.o"
  "CMakeFiles/fig3a_migration_matrix.dir/fig3a_migration_matrix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_migration_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
