# Empty dependencies file for fig3b_device_io.
# This may be replaced when dependencies are built.
