file(REMOVE_RECURSE
  "../bench/fig3b_device_io"
  "../bench/fig3b_device_io.pdb"
  "CMakeFiles/fig3b_device_io.dir/fig3b_device_io.cc.o"
  "CMakeFiles/fig3b_device_io.dir/fig3b_device_io.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_device_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
