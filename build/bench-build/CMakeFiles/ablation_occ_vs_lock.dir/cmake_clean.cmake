file(REMOVE_RECURSE
  "../bench/ablation_occ_vs_lock"
  "../bench/ablation_occ_vs_lock.pdb"
  "CMakeFiles/ablation_occ_vs_lock.dir/ablation_occ_vs_lock.cc.o"
  "CMakeFiles/ablation_occ_vs_lock.dir/ablation_occ_vs_lock.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_occ_vs_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
