# Empty dependencies file for ablation_occ_vs_lock.
# This may be replaced when dependencies are built.
