file(REMOVE_RECURSE
  "../bench/overhead_write_throughput"
  "../bench/overhead_write_throughput.pdb"
  "CMakeFiles/overhead_write_throughput.dir/overhead_write_throughput.cc.o"
  "CMakeFiles/overhead_write_throughput.dir/overhead_write_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_write_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
