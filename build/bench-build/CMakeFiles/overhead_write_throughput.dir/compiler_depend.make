# Empty compiler generated dependencies file for overhead_write_throughput.
# This may be replaced when dependencies are built.
