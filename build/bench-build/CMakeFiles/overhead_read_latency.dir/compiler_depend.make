# Empty compiler generated dependencies file for overhead_read_latency.
# This may be replaced when dependencies are built.
