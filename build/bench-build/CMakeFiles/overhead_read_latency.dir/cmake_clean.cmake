file(REMOVE_RECURSE
  "../bench/overhead_read_latency"
  "../bench/overhead_read_latency.pdb"
  "CMakeFiles/overhead_read_latency.dir/overhead_read_latency.cc.o"
  "CMakeFiles/overhead_read_latency.dir/overhead_read_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_read_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
