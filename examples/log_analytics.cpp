// log_analytics — an append-heavy ingest pipeline with periodic scans.
//
// The motivating shape from the paper's introduction: new storage
// technologies are great at different things, and a tiered file system
// should put each access pattern where it belongs. Here:
//   * an ingest thread appends small log batches (latency-critical): the
//     TPFS-style policy routes them to PM because they are small and sync;
//   * a compactor rewrites closed log files into large sorted runs: big
//     async writes go straight to the capacity tiers;
//   * an analyst scans the runs sequentially: HDD streaming + readahead.
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/core/mux.h"
#include "src/device/block_device.h"
#include "src/device/pm_device.h"
#include "src/fs/extlite/extlite.h"
#include "src/fs/novafs/novafs.h"
#include "src/fs/xfslite/xfslite.h"

using namespace mux;

namespace {

void PrintPlacement(core::Mux& mux, const std::string& path) {
  auto breakdown = mux.FileTierBreakdown(path);
  const char* names[] = {"pm", "ssd", "hdd"};
  std::printf("  %-22s", path.c_str());
  if (breakdown.ok()) {
    for (const auto& [tier, blocks] : *breakdown) {
      std::printf(" %s:%lluKiB", tier < 3 ? names[tier] : "?",
                  static_cast<unsigned long long>(blocks * 4));
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  SimClock clock;
  device::PmDevice pm(device::DeviceProfile::OptanePm(32ULL << 20), &clock);
  device::BlockDevice ssd(device::DeviceProfile::OptaneSsd(64ULL << 20),
                          &clock);
  device::BlockDevice hdd(device::DeviceProfile::ExosHdd(256ULL << 20),
                          &clock);
  fs::NovaFs novafs(&pm, &clock);
  fs::XfsLite xfslite(&ssd, &clock);
  // Keep the HDD file system's DRAM cache small so the final scan actually
  // streams from the disk (readahead still applies).
  fs::ExtLite::Options ext_options;
  ext_options.page_cache_pages = 128;
  fs::ExtLite extlite(&hdd, &clock, ext_options);
  if (!novafs.Format().ok() || !xfslite.Format().ok() ||
      !extlite.Format().ok()) {
    return 1;
  }

  core::Mux::Options options;
  options.policy = "tpfs";  // size + synchronicity + history placement
  core::Mux mux(&clock, options);
  (void)mux.AddTier("pm", &novafs, pm.profile());
  (void)mux.AddTier("ssd", &xfslite, ssd.profile());
  (void)mux.AddTier("hdd", &extlite, hdd.profile());
  (void)mux.Mkdir("/wal");
  (void)mux.Mkdir("/runs");

  // --- ingest: 2000 sync appends of ~2 KB to the write-ahead log ----------
  auto wal = mux.Open("/wal/current",
                      vfs::OpenFlags::kCreateRw | vfs::OpenFlags::kSync);
  if (!wal.ok()) {
    return 1;
  }
  Rng rng(13);
  std::vector<uint8_t> batch(2048);
  Histogram append_latency;
  uint64_t wal_off = 0;
  for (int i = 0; i < 2000; ++i) {
    rng.Fill(batch.data(), batch.size());
    const SimTime t0 = clock.Now();
    if (!mux.Write(*wal, wal_off, batch.data(), batch.size()).ok()) {
      return 1;
    }
    (void)mux.Fsync(*wal, true);
    append_latency.Add(clock.Now() - t0);
    wal_off += batch.size();
  }
  std::printf("ingest: 2000 sync 2KB appends, latency %s\n",
              append_latency.Summary().c_str());
  PrintPlacement(mux, "/wal/current");

  // --- compaction: rewrite the WAL into a big sorted run ------------------
  auto run = mux.Open("/runs/run0", vfs::OpenFlags::kCreateRw);
  if (!run.ok()) {
    return 1;
  }
  std::vector<uint8_t> chunk(1 << 20);
  SimTimer compact_timer(clock);
  uint64_t run_off = 0;
  for (uint64_t off = 0; off < wal_off; off += chunk.size()) {
    auto n = mux.Read(*wal, off, chunk.size(), chunk.data());
    if (!n.ok() || *n == 0) {
      break;
    }
    (void)mux.Write(*run, run_off, chunk.data(), *n);  // large async write
    run_off += *n;
  }
  (void)mux.Fsync(*run, false);
  (void)mux.Truncate(*wal, 0);  // WAL recycled
  std::printf("compaction: %.1f MiB rewritten in %.2f ms (simulated)\n",
              static_cast<double>(run_off) / (1 << 20),
              static_cast<double>(compact_timer.Elapsed()) / 1e6);
  PrintPlacement(mux, "/runs/run0");

  // The run has gone cold; age it to the capacity tier explicitly (the kind
  // of rule an operator registers with the policy interface).
  auto hdd_tier = mux.TierByName("hdd");
  if (hdd_tier.ok()) {
    (void)mux.MigrateFile("/runs/run0", *hdd_tier);
  }
  std::printf("after ageing the run to HDD:\n");
  PrintPlacement(mux, "/runs/run0");

  // --- analytics: sequential scan of the run ------------------------------
  SimTimer scan_timer(clock);
  uint64_t scanned = 0;
  for (uint64_t off = 0; off < run_off; off += chunk.size()) {
    auto n = mux.Read(*run, off, chunk.size(), chunk.data());
    if (!n.ok() || *n == 0) {
      break;
    }
    scanned += *n;
  }
  const double seconds = NsToSeconds(scan_timer.Elapsed());
  std::printf("scan: %.1f MiB at %.0f MB/s from the HDD tier "
              "(sequential + readahead)\n",
              static_cast<double>(scanned) / (1 << 20),
              seconds > 0 ? static_cast<double>(scanned) / (1 << 20) / seconds
                          : 0.0);
  return 0;
}
