// Quickstart: assemble the Figure 1(b) stack and poke it.
//
//   devices:       simulated PM, SSD, HDD
//   specialists:   novafs (PM), xfslite (SSD), extlite (HDD)
//   tiering:       Mux, registered with all three, mounted under a VFS
//
// Demonstrates: writing through Mux, watching where blocks land, migrating
// a file between tiers with one call, and reading a file that spans three
// file systems.
#include <cstdio>
#include <vector>

#include "src/common/clock.h"
#include "src/core/mux.h"
#include "src/device/block_device.h"
#include "src/device/pm_device.h"
#include "src/fs/extlite/extlite.h"
#include "src/fs/novafs/novafs.h"
#include "src/fs/xfslite/xfslite.h"
#include "src/vfs/vfs.h"

namespace {

void PrintBreakdown(mux::core::Mux& fs, const std::string& path) {
  auto breakdown = fs.FileTierBreakdown(path);
  if (!breakdown.ok()) {
    std::printf("  %s: ?\n", path.c_str());
    return;
  }
  const char* names[] = {"pm", "ssd", "hdd"};
  std::printf("  %-12s ->", path.c_str());
  for (const auto& [tier, blocks] : *breakdown) {
    std::printf(" %s:%llu blocks", tier < 3 ? names[tier] : "?",
                static_cast<unsigned long long>(blocks));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace mux;

  // 1. One simulated machine: a clock and three storage devices.
  SimClock clock;
  device::PmDevice pm(device::DeviceProfile::OptanePm(64ULL << 20), &clock);
  device::BlockDevice ssd(device::DeviceProfile::OptaneSsd(128ULL << 20),
                          &clock);
  device::BlockDevice hdd(device::DeviceProfile::ExosHdd(256ULL << 20),
                          &clock);

  // 2. A specialized file system per device.
  fs::NovaFs novafs(&pm, &clock);
  fs::XfsLite xfslite(&ssd, &clock);
  fs::ExtLite extlite(&hdd, &clock);
  if (!novafs.Format().ok() || !xfslite.Format().ok() ||
      !extlite.Format().ok()) {
    std::printf("format failed\n");
    return 1;
  }

  // 3. Mux composes them. Registration is the whole integration story —
  //    "to add a new device ... mount the new file system and register it".
  core::Mux mux(&clock);
  auto pm_tier = mux.AddTier("pm", &novafs, pm.profile());
  auto ssd_tier = mux.AddTier("ssd", &xfslite, ssd.profile());
  auto hdd_tier = mux.AddTier("hdd", &extlite, hdd.profile());
  if (!pm_tier.ok() || !ssd_tier.ok() || !hdd_tier.ok()) {
    std::printf("tier registration failed\n");
    return 1;
  }

  // 4. Applications see one file system through the VFS.
  vfs::Vfs vfs;
  (void)vfs.Mount("/mux", &mux);

  auto handle = vfs.Open("/mux/hello.dat", vfs::OpenFlags::kCreateRw);
  if (!handle.ok()) {
    std::printf("open failed: %s\n", handle.status().ToString().c_str());
    return 1;
  }
  std::vector<uint8_t> data(1 << 20, 0x42);
  (void)vfs.Write(*handle, 0, data.data(), data.size());
  std::printf("wrote 1 MiB through the VFS; placement:\n");
  PrintBreakdown(mux, "/hello.dat");

  // 5. Migration between ANY pair of tiers is one call.
  (void)mux.MigrateFile("/hello.dat", *hdd_tier);
  std::printf("after MigrateFile(hdd):\n");
  PrintBreakdown(mux, "/hello.dat");
  (void)mux.MigrateFile("/hello.dat", *ssd_tier);
  std::printf("after MigrateFile(ssd):  (HDD->SSD promotion — the pair\n"
              "                          Strata cannot express)\n");
  PrintBreakdown(mux, "/hello.dat");

  // 6. One file, three file systems at once.
  (void)mux.MigrateRange("/hello.dat", 0, 64, *pm_tier);
  (void)mux.MigrateRange("/hello.dat", 192, 64, *hdd_tier);
  std::printf("after splitting the file across tiers:\n");
  PrintBreakdown(mux, "/hello.dat");

  std::vector<uint8_t> readback(data.size());
  auto n = vfs.Read(*handle, 0, readback.size(), readback.data());
  std::printf("read back %llu bytes spanning 3 file systems: %s\n",
              static_cast<unsigned long long>(n.ok() ? *n : 0),
              readback == data ? "content OK" : "CONTENT MISMATCH");

  auto st = vfs.Stat("/mux/hello.dat");
  if (st.ok()) {
    std::printf("stat (served from Mux's collective inode): size=%llu\n",
                static_cast<unsigned long long>(st->size));
  }
  (void)vfs.Close(*handle);
  std::printf("simulated time elapsed: %.3f ms\n",
              static_cast<double>(clock.Now()) / 1e6);
  return 0;
}
