// hotplug_tiers — runtime integration and removal of storage (paper §2.1):
// "To add a new device and the corresponding file system, the user only
//  needs to mount the new file system and register it with Mux ... To
//  remove a device, data must be migrated first. Adding or removing a
//  device can be done at runtime."
//
// The example starts with PM+HDD, later hot-adds an SSD tier (a MemFs even —
// ANY vfs::FileSystem plugs in), rebalances onto it, then drains and removes
// the PM tier while files stay readable throughout.
#include <cstdio>
#include <vector>

#include "src/common/clock.h"
#include "src/core/mux.h"
#include "src/device/block_device.h"
#include "src/device/pm_device.h"
#include "src/fs/extlite/extlite.h"
#include "src/fs/novafs/novafs.h"
#include "src/fs/xfslite/xfslite.h"
#include "src/vfs/memfs.h"

using namespace mux;

namespace {

bool Verify(core::Mux& mux, const std::string& path,
            const std::vector<uint8_t>& expected) {
  auto h = mux.Open(path, vfs::OpenFlags::kRead);
  if (!h.ok()) {
    return false;
  }
  std::vector<uint8_t> out(expected.size());
  auto n = mux.Read(*h, 0, out.size(), out.data());
  (void)mux.Close(*h);
  return n.ok() && *n == expected.size() && out == expected;
}

void PrintTiers(core::Mux& mux) {
  std::printf("  registered tiers:");
  for (const auto& usage : mux.TierUsages()) {
    std::printf(" %s(%.0f%% used)", usage.name.c_str(),
                usage.UsedFraction() * 100);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  SimClock clock;
  device::PmDevice pm(device::DeviceProfile::OptanePm(32ULL << 20), &clock);
  device::BlockDevice ssd(device::DeviceProfile::OptaneSsd(64ULL << 20),
                          &clock);
  device::BlockDevice hdd(device::DeviceProfile::ExosHdd(128ULL << 20),
                          &clock);
  fs::NovaFs novafs(&pm, &clock);
  fs::XfsLite xfslite(&ssd, &clock);
  fs::ExtLite extlite(&hdd, &clock);
  if (!novafs.Format().ok() || !xfslite.Format().ok() ||
      !extlite.Format().ok()) {
    return 1;
  }

  core::Mux mux(&clock);
  (void)mux.AddTier("pm", &novafs, pm.profile());
  (void)mux.AddTier("hdd", &extlite, hdd.profile());
  std::printf("boot with two tiers:\n");
  PrintTiers(mux);

  // Some data, written while only PM+HDD exist.
  std::vector<uint8_t> payload(4 << 20);
  Rng rng(3);
  rng.Fill(payload.data(), payload.size());
  for (const char* path : {"/a", "/b", "/c"}) {
    auto h = mux.Open(path, vfs::OpenFlags::kCreateRw);
    if (!h.ok() || !mux.Write(*h, 0, payload.data(), payload.size()).ok()) {
      return 1;
    }
    (void)mux.Close(*h);
  }

  // --- hot-add the SSD tier ------------------------------------------------
  std::printf("\nhot-adding the SSD tier (xfslite, freshly mounted):\n");
  auto ssd_tier = mux.AddTier("ssd", &xfslite, ssd.profile());
  if (!ssd_tier.ok()) {
    return 1;
  }
  PrintTiers(mux);
  (void)mux.MigrateFile("/b", *ssd_tier);  // rebalance something onto it
  std::printf("  /b migrated to the new tier; intact: %s\n",
              Verify(mux, "/b", payload) ? "yes" : "NO");

  // --- hot-add an arbitrary FileSystem — extensibility in its purest form —
  SimClock* same_clock = &clock;
  vfs::MemFs scratch(same_clock);
  auto mem_tier = mux.AddTier("scratch-ram", &scratch,
                              device::DeviceProfile::TestRam(64ULL << 20));
  std::printf("\nhot-adding a MemFs as a fourth tier (any vfs::FileSystem "
              "plugs in): %s\n",
              mem_tier.ok() ? "ok" : "failed");
  if (mem_tier.ok()) {
    (void)mux.MigrateFile("/c", *mem_tier);
    std::printf("  /c migrated to scratch-ram; intact: %s\n",
                Verify(mux, "/c", payload) ? "yes" : "NO");
    PrintTiers(mux);
  }

  // --- drain and remove the PM tier at runtime -----------------------------
  std::printf("\nremoving the PM tier (data drains to the next tier):\n");
  Status removed = mux.RemoveTier("pm");
  std::printf("  RemoveTier(pm): %s\n", removed.ToString().c_str());
  PrintTiers(mux);
  bool all_ok = true;
  for (const char* path : {"/a", "/b", "/c"}) {
    all_ok &= Verify(mux, path, payload);
  }
  std::printf("  all files readable after removal: %s\n",
              all_ok ? "yes" : "NO");
  return all_ok && removed.ok() ? 0 : 1;
}
