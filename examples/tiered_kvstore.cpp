// tiered_kvstore — a small log-structured key-value store built on Mux's
// public API.
//
// The store appends values to segment files and keeps an in-memory index.
// It never thinks about devices: it simply runs on Mux with the paper's LRU
// policy, and hot segments end up on PM while cold ones age down to SSD and
// HDD as the fast tier fills. A zipfian GET workload then shows the effect:
// most reads are served from the fast tiers.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/encoding.h"
#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/core/mux.h"
#include "src/device/block_device.h"
#include "src/device/pm_device.h"
#include "src/fs/extlite/extlite.h"
#include "src/fs/novafs/novafs.h"
#include "src/fs/xfslite/xfslite.h"

namespace {

using namespace mux;

class TieredKv {
 public:
  explicit TieredKv(vfs::FileSystem* fs) : fs_(fs) {
    (void)fs_->Mkdir("/segments");
  }

  Status Put(const std::string& key, const std::string& value) {
    if (segment_handle_ == 0 || segment_bytes_ > kSegmentBytes) {
      MUX_RETURN_IF_ERROR(RotateSegment());
    }
    // Record: key_len(4) value_len(4) key value
    std::vector<uint8_t> record(8 + key.size() + value.size());
    Put32(record.data(), static_cast<uint32_t>(key.size()));
    Put32(record.data() + 4, static_cast<uint32_t>(value.size()));
    std::memcpy(record.data() + 8, key.data(), key.size());
    std::memcpy(record.data() + 8 + key.size(), value.data(), value.size());
    MUX_ASSIGN_OR_RETURN(uint64_t written,
                         fs_->Write(segment_handle_, segment_bytes_,
                                    record.data(), record.size()));
    index_[key] = Location{segment_id_, segment_bytes_ + 8 + key.size(),
                           value.size()};
    segment_bytes_ += written;
    return Status::Ok();
  }

  Result<std::string> Get(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return NotFoundError("no such key: " + key);
    }
    MUX_ASSIGN_OR_RETURN(vfs::FileHandle handle,
                         SegmentHandle(it->second.segment));
    std::string value(it->second.length, '\0');
    MUX_ASSIGN_OR_RETURN(
        uint64_t n,
        fs_->Read(handle, it->second.offset, value.size(),
                  reinterpret_cast<uint8_t*>(value.data())));
    value.resize(n);
    return value;
  }

  static std::string SegmentPath(uint64_t id) {
    return "/segments/seg" + std::to_string(id);
  }
  uint64_t segment_count() const { return segment_id_ + 1; }

 private:
  struct Location {
    uint64_t segment = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
  };
  static constexpr uint64_t kSegmentBytes = 2 << 20;

  Status RotateSegment() {
    if (segment_handle_ != 0) {
      MUX_RETURN_IF_ERROR(fs_->Fsync(segment_handle_, false));
      segment_id_++;
    }
    MUX_ASSIGN_OR_RETURN(segment_handle_,
                         fs_->Open(SegmentPath(segment_id_),
                                   vfs::OpenFlags::kCreateRw));
    handles_[segment_id_] = segment_handle_;
    segment_bytes_ = 0;
    return Status::Ok();
  }

  Result<vfs::FileHandle> SegmentHandle(uint64_t id) {
    auto it = handles_.find(id);
    if (it != handles_.end()) {
      return it->second;
    }
    MUX_ASSIGN_OR_RETURN(vfs::FileHandle handle,
                         fs_->Open(SegmentPath(id), vfs::OpenFlags::kRead));
    handles_[id] = handle;
    return handle;
  }

  vfs::FileSystem* fs_;
  std::map<std::string, Location> index_;
  std::map<uint64_t, vfs::FileHandle> handles_;
  uint64_t segment_id_ = 0;
  vfs::FileHandle segment_handle_ = 0;
  uint64_t segment_bytes_ = 0;
};

}  // namespace

int main() {
  SimClock clock;
  device::PmDevice pm(device::DeviceProfile::OptanePm(16ULL << 20), &clock);
  device::BlockDevice ssd(device::DeviceProfile::OptaneSsd(64ULL << 20),
                          &clock);
  device::BlockDevice hdd(device::DeviceProfile::ExosHdd(256ULL << 20),
                          &clock);
  fs::NovaFs novafs(&pm, &clock);
  fs::XfsLite xfslite(&ssd, &clock);
  fs::ExtLite extlite(&hdd, &clock);
  if (!novafs.Format().ok() || !xfslite.Format().ok() ||
      !extlite.Format().ok()) {
    return 1;
  }
  core::Mux mux(&clock);  // default policy: the paper's LRU evict/promote
  (void)mux.AddTier("pm", &novafs, pm.profile());
  (void)mux.AddTier("ssd", &xfslite, ssd.profile());
  (void)mux.AddTier("hdd", &extlite, hdd.profile());

  TieredKv kv(&mux);

  // Load phase: 6000 keys x 4 KB values ≈ 24 MiB across 12 segments — more
  // than PM holds, so the LRU policy must demote cold segments as we go.
  std::printf("loading 6000 keys (~24 MiB) into a 16 MiB PM tier...\n");
  std::string value(4096, 'v');
  for (int i = 0; i < 6000; ++i) {
    if (!kv.Put("key" + std::to_string(i), value).ok()) {
      std::printf("put failed at %d\n", i);
      return 1;
    }
    if (i % 500 == 0) {
      clock.Advance(200'000'000);  // time passes; segments cool down
      (void)mux.RunPolicyMigrations();
    }
  }
  (void)mux.RunPolicyMigrations();

  // Where did the segments end up?
  const char* names[] = {"pm", "ssd", "hdd"};
  uint64_t per_tier_blocks[3] = {0, 0, 0};
  for (uint64_t seg = 0; seg < kv.segment_count(); ++seg) {
    auto breakdown = mux.FileTierBreakdown(TieredKv::SegmentPath(seg));
    if (breakdown.ok()) {
      for (const auto& [tier, blocks] : *breakdown) {
        if (tier < 3) {
          per_tier_blocks[tier] += blocks;
        }
      }
    }
  }
  std::printf("segment data by tier:");
  for (int t = 0; t < 3; ++t) {
    std::printf("  %s=%lluMiB", names[t],
                static_cast<unsigned long long>(per_tier_blocks[t] * 4096 >>
                                                20));
  }
  std::printf("\n");

  // Query phase: zipfian GETs — hot keys cluster in recent (fast) segments.
  ZipfianGenerator zipf(6000, 0.99, 7);
  Histogram latency;
  int hits = 0;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t id = 5999 - zipf.Next();  // hot = recently written
    const SimTime t0 = clock.Now();
    auto value_read = kv.Get("key" + std::to_string(id));
    if (value_read.ok()) {
      hits++;
    }
    latency.Add(clock.Now() - t0);
  }
  std::printf("5000 zipfian GETs: %d hits, latency %s (simulated ns)\n",
              hits, latency.Summary().c_str());
  return 0;
}
