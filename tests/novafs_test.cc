// novafs-specific tests: persistence, recovery, crash atomicity, DAX.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/device/pm_device.h"
#include "src/fs/novafs/novafs.h"
#include "src/vfs/memfs.h"

namespace mux::fs {
namespace {

using vfs::OpenFlags;

constexpr uint64_t kPmSize = 64ULL << 20;

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Rng rng(seed);
  rng.Fill(v.data(), n);
  return v;
}

class NovaFsTest : public ::testing::Test {
 protected:
  NovaFsTest()
      : pm_(device::DeviceProfile::OptanePm(kPmSize), &clock_),
        fs_(&pm_, &clock_) {
    EXPECT_TRUE(fs_.Format().ok());
  }

  SimClock clock_;
  device::PmDevice pm_;
  NovaFs fs_;
};

TEST_F(NovaFsTest, SurvivesRemount) {
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  auto h = fs_.Open("/d/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(20000, 1);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_.Close(*h).ok());

  // A brand-new NovaFs over the same PM must recover everything.
  NovaFs remounted(&pm_, &clock_);
  ASSERT_TRUE(remounted.Mount().ok());
  auto h2 = remounted.Open("/d/f", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok()) << h2.status();
  std::vector<uint8_t> out(data.size());
  auto r = remounted.Read(*h2, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
  auto st = remounted.Stat("/d/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, data.size());
}

TEST_F(NovaFsTest, RemountPreservesComplexTree) {
  for (int d = 0; d < 4; ++d) {
    const std::string dir = "/dir" + std::to_string(d);
    ASSERT_TRUE(fs_.Mkdir(dir).ok());
    for (int f = 0; f < 8; ++f) {
      auto h = fs_.Open(dir + "/f" + std::to_string(f), OpenFlags::kCreateRw);
      ASSERT_TRUE(h.ok());
      auto data = Pattern(1000 * (f + 1), d * 10 + f);
      ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
      ASSERT_TRUE(fs_.Close(*h).ok());
    }
  }
  ASSERT_TRUE(fs_.Unlink("/dir0/f0").ok());
  ASSERT_TRUE(fs_.Rename("/dir1/f1", "/dir2/moved").ok());

  NovaFs remounted(&pm_, &clock_);
  ASSERT_TRUE(remounted.Mount().ok());
  EXPECT_EQ(remounted.Stat("/dir0/f0").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(remounted.Stat("/dir1/f1").status().code(), ErrorCode::kNotFound);
  auto st = remounted.Stat("/dir2/moved");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 2000u);
  auto entries = remounted.ReadDir("/dir2");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 9u);  // 8 originals + moved
}

TEST_F(NovaFsTest, RemountAfterOverwritesKeepsLatest) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  for (int round = 0; round < 10; ++round) {
    auto data = Pattern(8192, round);
    ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  }
  auto final_data = Pattern(8192, 9);
  ASSERT_TRUE(fs_.Close(*h).ok());

  NovaFs remounted(&pm_, &clock_);
  ASSERT_TRUE(remounted.Mount().ok());
  auto h2 = remounted.Open("/f", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok());
  std::vector<uint8_t> out(8192);
  ASSERT_TRUE(remounted.Read(*h2, 0, out.size(), out.data()).ok());
  EXPECT_EQ(out, final_data);
}

TEST_F(NovaFsTest, CowDoesNotLeakPages) {
  // Touch the root log first so its (permanent) log page is not counted as
  // a leak.
  auto warm = fs_.Open("/warm", OpenFlags::kCreateRw);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(fs_.Close(*warm).ok());
  ASSERT_TRUE(fs_.Unlink("/warm").ok());
  const uint64_t free_before = fs_.FreeDataPages();
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(4096, 0);
  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  }
  ASSERT_TRUE(fs_.Close(*h).ok());
  ASSERT_TRUE(fs_.Unlink("/f").ok());
  // All data pages and log pages must be back; 50 overwrites of one page
  // must not consume 50 pages.
  EXPECT_EQ(fs_.FreeDataPages(), free_before);
}

TEST_F(NovaFsTest, WriteIsAtomicUnderCrash) {
  // A crash at an arbitrary point during Write must leave the file either
  // entirely old or entirely new after recovery — NOVA's log-tail commit.
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto old_data = Pattern(12288, 1);
  ASSERT_TRUE(fs_.Write(*h, 0, old_data.data(), old_data.size()).ok());
  ASSERT_TRUE(fs_.Close(*h).ok());

  pm_.EnableCrashSim(true);
  auto h2 = fs_.Open("/f", OpenFlags::kReadWrite);
  ASSERT_TRUE(h2.ok());
  auto new_data = Pattern(12288, 2);
  ASSERT_TRUE(fs_.Write(*h2, 0, new_data.data(), new_data.size()).ok());
  // Crash with all post-baseline unpersisted stores rolled back. Because
  // novafs persists every store before the commit tail advance, everything
  // is durable and the write must survive.
  pm_.Crash();
  pm_.EnableCrashSim(false);

  NovaFs remounted(&pm_, &clock_);
  ASSERT_TRUE(remounted.Mount().ok());
  auto h3 = remounted.Open("/f", OpenFlags::kRead);
  ASSERT_TRUE(h3.ok());
  std::vector<uint8_t> out(new_data.size());
  ASSERT_TRUE(remounted.Read(*h3, 0, out.size(), out.data()).ok());
  EXPECT_TRUE(out == new_data || out == old_data);
  EXPECT_EQ(out, new_data);  // all stores persisted -> new data committed
}

TEST_F(NovaFsTest, OrphanInodeReclaimedAtMount) {
  // Simulate a crash between inode-slot creation and the parent dentry
  // append: craft the state by creating a file and then surgically removing
  // its dentry is hard from outside, so approximate with rename-journal
  // replay coverage below and check the orphan scan through the public
  // interface: create, unlink keeps no orphans.
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_.Close(*h).ok());
  ASSERT_TRUE(fs_.Unlink("/f").ok());
  NovaFs remounted(&pm_, &clock_);
  ASSERT_TRUE(remounted.Mount().ok());
  auto st = remounted.StatFs();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->free_inodes, st->total_inodes - 1);  // only root
}

TEST_F(NovaFsTest, DaxMapOnFallocatedFile) {
  auto h = fs_.Open("/cache", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_.Fallocate(*h, 0, 1 << 20, /*keep_size=*/false).ok());
  auto mapping = fs_.DaxMap(*h, 0, 1 << 20);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  ASSERT_NE(mapping->data, nullptr);
  EXPECT_EQ(mapping->length, 1u << 20);

  // Writes through the mapping are visible through the read path.
  std::memset(mapping->data, 0x7e, 4096);
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(fs_.Read(*h, 0, out.size(), out.data()).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(4096, 0x7e));
}

TEST_F(NovaFsTest, DaxMapRejectsUnallocatedRange) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(fs_.DaxMap(*h, 0, 4096).status().code(), ErrorCode::kNotFound);
}

TEST_F(NovaFsTest, DaxUnmapBalancesActiveMappings) {
  auto h = fs_.Open("/cache", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_.Fallocate(*h, 0, 1 << 20, /*keep_size=*/false).ok());
  EXPECT_EQ(fs_.ActiveDaxMappings(), 0u);
  auto mapping = fs_.DaxMap(*h, 0, 1 << 20);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(fs_.ActiveDaxMappings(), 1u);
  ASSERT_TRUE(fs_.DaxUnmap(*mapping).ok());
  EXPECT_EQ(fs_.ActiveDaxMappings(), 0u);
}

TEST_F(NovaFsTest, DaxUnmapRejectsDeadOrUnmatchedMappings) {
  // A mapping that was never handed out is rejected.
  vfs::DaxMapping dead;
  EXPECT_EQ(fs_.DaxUnmap(dead).code(), ErrorCode::kInvalidArgument);

  auto h = fs_.Open("/cache", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_.Fallocate(*h, 0, 4096, /*keep_size=*/false).ok());
  auto mapping = fs_.DaxMap(*h, 0, 4096);
  ASSERT_TRUE(mapping.ok());
  ASSERT_TRUE(fs_.DaxUnmap(*mapping).ok());
  // Unmapping twice has no matching DaxMap left to balance.
  EXPECT_EQ(fs_.DaxUnmap(*mapping).code(), ErrorCode::kInvalidArgument);
}

TEST_F(NovaFsTest, FsyncIsCheapOnPm) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(4096, 3);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  const SimTime t0 = clock_.Now();
  ASSERT_TRUE(fs_.Fsync(*h, /*data_only=*/true).ok());
  // Data-only fsync does no device work at all: NOVA's data is durable at
  // write return.
  EXPECT_LT(clock_.Now() - t0, 1000u);
}

TEST_F(NovaFsTest, NoSpaceSurfacesCleanly) {
  SimClock clock;
  device::PmDevice small_pm(device::DeviceProfile::OptanePm(1 << 20), &clock);
  NovaFs small(&small_pm, &clock);
  ASSERT_TRUE(small.Format().ok());
  auto h = small.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  std::vector<uint8_t> big(2 << 20, 1);
  auto w = small.Write(*h, 0, big.data(), big.size());
  EXPECT_EQ(w.status().code(), ErrorCode::kNoSpace);
}

TEST_F(NovaFsTest, RenameJournalReplayIdempotent) {
  ASSERT_TRUE(fs_.Mkdir("/a").ok());
  ASSERT_TRUE(fs_.Mkdir("/b").ok());
  auto h = fs_.Open("/a/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  uint8_t byte = 1;
  ASSERT_TRUE(fs_.Write(*h, 0, &byte, 1).ok());
  ASSERT_TRUE(fs_.Close(*h).ok());
  ASSERT_TRUE(fs_.Rename("/a/f", "/b/g").ok());

  // Remount twice; the tree must be stable.
  for (int round = 0; round < 2; ++round) {
    NovaFs remounted(&pm_, &clock_);
    ASSERT_TRUE(remounted.Mount().ok());
    EXPECT_EQ(remounted.Stat("/a/f").status().code(), ErrorCode::kNotFound);
    EXPECT_TRUE(remounted.Stat("/b/g").ok());
  }
}

TEST_F(NovaFsTest, MountRejectsForeignContent) {
  SimClock clock;
  device::PmDevice blank(device::DeviceProfile::OptanePm(8 << 20), &clock);
  NovaFs never_formatted(&blank, &clock);
  EXPECT_EQ(never_formatted.Mount().code(), ErrorCode::kCorruption);
}

TEST_F(NovaFsTest, LogSpansMultiplePages) {
  // More log entries than fit one 4K log page (63) on a single file.
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  uint8_t b = 0;
  for (int i = 0; i < 200; ++i) {
    b = static_cast<uint8_t>(i);
    ASSERT_TRUE(fs_.Write(*h, static_cast<uint64_t>(i) * 4096, &b, 1).ok());
  }
  ASSERT_TRUE(fs_.Close(*h).ok());
  NovaFs remounted(&pm_, &clock_);
  ASSERT_TRUE(remounted.Mount().ok());
  auto h2 = remounted.Open("/f", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok());
  for (int i = 0; i < 200; ++i) {
    uint8_t out = 0xff;
    ASSERT_TRUE(
        remounted.Read(*h2, static_cast<uint64_t>(i) * 4096, 1, &out).ok());
    ASSERT_EQ(out, static_cast<uint8_t>(i)) << i;
  }
}

// Parameterized crash sweep: randomized write workload, crash (rolling back
// unpersisted lines), remount, verify no corruption and no data loss for
// data written before the crash-sim window.
class NovaCrashSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NovaCrashSweep, RecoversConsistently) {
  SimClock clock;
  device::PmDevice pm(device::DeviceProfile::OptanePm(kPmSize), &clock);
  NovaFs fs(&pm, &clock);
  ASSERT_TRUE(fs.Format().ok());

  // Durable baseline.
  auto h = fs.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto baseline = Pattern(64 * 1024, 7);
  ASSERT_TRUE(fs.Write(*h, 0, baseline.data(), baseline.size()).ok());

  // Random writes in the crash window.
  pm.EnableCrashSim(true);
  Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    const uint64_t offset = rng.Below(64 * 1024);
    const uint64_t len = 1 + rng.Below(8 * 1024);
    auto data = Pattern(len, rng.Next());
    ASSERT_TRUE(fs.Write(*h, offset, data.data(), len).ok());
  }
  pm.Crash();
  pm.EnableCrashSim(false);

  NovaFs remounted(&pm, &clock);
  ASSERT_TRUE(remounted.Mount().ok()) << "seed " << GetParam();
  auto h2 = remounted.Open("/f", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok());
  auto st = remounted.FStat(*h2);
  ASSERT_TRUE(st.ok());
  EXPECT_GE(st->size, baseline.size());
  std::vector<uint8_t> out(st->size);
  auto r = remounted.Read(*h2, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, out.size());
  // novafs persists every store before the tail commit, so nothing in the
  // crash window is actually lost: the file must reflect all 20 writes.
  // (The stronger property — prefix durability — is checked by re-running
  // the same write sequence on an oracle.)
  vfs::MemFs oracle(&clock);
  auto oh = oracle.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(oh.ok());
  ASSERT_TRUE(oracle.Write(*oh, 0, baseline.data(), baseline.size()).ok());
  Rng rng2(GetParam());
  for (int i = 0; i < 20; ++i) {
    const uint64_t offset = rng2.Below(64 * 1024);
    const uint64_t len = 1 + rng2.Below(8 * 1024);
    auto data = Pattern(len, rng2.Next());
    ASSERT_TRUE(oracle.Write(*oh, offset, data.data(), len).ok());
  }
  std::vector<uint8_t> expected(out.size());
  ASSERT_TRUE(oracle.Read(*oh, 0, expected.size(), expected.data()).ok());
  EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NovaCrashSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mux::fs
