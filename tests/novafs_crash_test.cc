// novafs crash-atomicity sweeps: store-fault injection cuts every PM update
// sequence at every possible point; after Crash() (rolling back unpersisted
// lines) and Mount(), the file system must be in a consistent state and all
// previously committed data must survive.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/device/pm_device.h"
#include "src/fs/novafs/novafs.h"

namespace mux::fs {
namespace {

using vfs::OpenFlags;

constexpr uint64_t kPmSize = 64ULL << 20;

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Rng rng(seed);
  rng.Fill(v.data(), n);
  return v;
}

// Runs `mutate` against a freshly formatted novafs holding a committed
// baseline file, cutting PM stores at `cutoff`; returns the recovered FS for
// inspection. `baseline` receives the pre-crash content of "/base".
class CrashRig {
 public:
  explicit CrashRig(int64_t cutoff)
      : pm_(device::DeviceProfile::OptanePm(kPmSize), &clock_),
        fs_(&pm_, &clock_) {
    EXPECT_TRUE(fs_.Format().ok());
    baseline_ = Pattern(24 * 1024, 7);
    auto h = fs_.Open("/base", OpenFlags::kCreateRw);
    EXPECT_TRUE(h.ok());
    EXPECT_TRUE(fs_.Write(*h, 0, baseline_.data(), baseline_.size()).ok());
    EXPECT_TRUE(fs_.Close(*h).ok());
    pm_.EnableCrashSim(true);
    pm_.FailAfterStores(cutoff);
  }

  // Power loss: drop unpersisted lines, lift the fault, remount.
  Result<std::unique_ptr<NovaFs>> CrashAndRecover() {
    pm_.FailAfterStores(-1);
    pm_.Crash();
    pm_.EnableCrashSim(false);
    auto recovered = std::make_unique<NovaFs>(&pm_, &clock_);
    MUX_RETURN_IF_ERROR(recovered->Mount());
    return recovered;
  }

  NovaFs& fs() { return fs_; }
  const std::vector<uint8_t>& baseline() const { return baseline_; }

  Status VerifyBaseline(NovaFs& fs) const {
    MUX_ASSIGN_OR_RETURN(vfs::FileHandle handle,
                         fs.Open("/base", OpenFlags::kRead));
    std::vector<uint8_t> out(baseline_.size());
    MUX_ASSIGN_OR_RETURN(uint64_t n, fs.Read(handle, 0, out.size(),
                                             out.data()));
    if (n != out.size() || out != baseline_) {
      return InternalError("baseline content damaged");
    }
    return Status::Ok();
  }

 private:
  SimClock clock_;
  device::PmDevice pm_;
  NovaFs fs_;
  std::vector<uint8_t> baseline_;
};

class NovaCrashCutoffs : public ::testing::TestWithParam<int64_t> {};

// Overwrite crash sweep: the file must hold entirely-old or entirely-new
// content for the overwritten range — NOVA's COW + tail-commit atomicity.
TEST_P(NovaCrashCutoffs, OverwriteIsAtomic) {
  CrashRig rig(GetParam());
  auto new_data = Pattern(24 * 1024, 8);
  auto h = rig.fs().Open("/base", OpenFlags::kReadWrite);
  if (h.ok()) {
    (void)rig.fs().Write(*h, 0, new_data.data(), new_data.size());
  }
  auto recovered = rig.CrashAndRecover();
  ASSERT_TRUE(recovered.ok()) << "cutoff " << GetParam();
  auto h2 = (*recovered)->Open("/base", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok());
  std::vector<uint8_t> out(new_data.size());
  auto r = (*recovered)->Read(*h2, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(*r, out.size());
  EXPECT_TRUE(out == rig.baseline() || out == new_data)
      << "cutoff " << GetParam() << ": mixed old/new content";
}

// Create crash sweep: after recovery the new file either exists (fully
// usable) or not; the namespace never dangles and the baseline survives.
TEST_P(NovaCrashCutoffs, CreateIsConsistent) {
  CrashRig rig(GetParam());
  auto h = rig.fs().Open("/newfile", OpenFlags::kCreateRw);
  if (h.ok()) {
    uint8_t byte = 0x5d;
    (void)rig.fs().Write(*h, 0, &byte, 1);
  }
  auto recovered = rig.CrashAndRecover();
  ASSERT_TRUE(recovered.ok()) << "cutoff " << GetParam();
  EXPECT_TRUE(rig.VerifyBaseline(**recovered).ok()) << "cutoff " << GetParam();
  auto st = (*recovered)->Stat("/newfile");
  if (st.ok()) {
    // If it exists it must be fully usable.
    auto h2 = (*recovered)->Open("/newfile", OpenFlags::kReadWrite);
    ASSERT_TRUE(h2.ok());
    uint8_t byte = 0;
    if (st->size > 0) {
      ASSERT_TRUE((*recovered)->Read(*h2, 0, 1, &byte).ok());
      EXPECT_EQ(byte, 0x5d);
    }
  }
  // Directory listing is coherent either way.
  auto entries = (*recovered)->ReadDir("/");
  ASSERT_TRUE(entries.ok());
  for (const auto& entry : *entries) {
    EXPECT_TRUE((*recovered)->Stat("/" + entry.name).ok()) << entry.name;
  }
}

// Rename crash sweep: the file is reachable under exactly one name (or both
// transiently — never zero), and its content is intact.
TEST_P(NovaCrashCutoffs, RenameNeverLosesTheFile) {
  CrashRig rig(GetParam());
  (void)rig.fs().Mkdir("/dir");
  (void)rig.fs().Rename("/base", "/dir/moved");
  auto recovered = rig.CrashAndRecover();
  ASSERT_TRUE(recovered.ok()) << "cutoff " << GetParam();
  auto at_old = (*recovered)->Open("/base", OpenFlags::kRead);
  auto at_new = (*recovered)->Open("/dir/moved", OpenFlags::kRead);
  ASSERT_TRUE(at_old.ok() || at_new.ok())
      << "cutoff " << GetParam() << ": file lost by rename crash";
  auto handle = at_new.ok() ? *at_new : *at_old;
  std::vector<uint8_t> out(rig.baseline().size());
  auto r = (*recovered)->Read(handle, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, rig.baseline()) << "cutoff " << GetParam();
}

// Unlink crash sweep: the file is either fully present with intact content
// or fully gone (space reclaimed by the orphan scan).
TEST_P(NovaCrashCutoffs, UnlinkIsAtomic) {
  CrashRig rig(GetParam());
  (void)rig.fs().Unlink("/base");
  auto recovered = rig.CrashAndRecover();
  ASSERT_TRUE(recovered.ok()) << "cutoff " << GetParam();
  auto h = (*recovered)->Open("/base", OpenFlags::kRead);
  if (h.ok()) {
    std::vector<uint8_t> out(rig.baseline().size());
    auto r = (*recovered)->Read(*h, 0, out.size(), out.data());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(out, rig.baseline()) << "cutoff " << GetParam();
  } else {
    // Gone: the inode and its pages were reclaimed.
    auto st = (*recovered)->StatFs();
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st->free_inodes, st->total_inodes - 1);  // only root remains
  }
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, NovaCrashCutoffs,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 8, 10, 13,
                                           17, 25, 40));

}  // namespace
}  // namespace mux::fs
