// IoScheduler unit + regression tests: elevator pick order, failure
// accounting, and the observability hooks.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/core/io_scheduler.h"
#include "src/device/device_profile.h"
#include "src/obs/metrics.h"

namespace mux::core {
namespace {

constexpr uint64_t kMiB = 1ULL << 20;

TierInfo HddTier(TierId id) {
  TierInfo tier;
  tier.id = id;
  tier.name = "hdd";
  tier.profile = device::DeviceProfile::ExosHdd(512 * kMiB);
  return tier;
}

IoRequest MakeRequest(TierId tier, uint64_t offset, int priority, int id,
                      std::vector<int>* order) {
  IoRequest request;
  request.tier = tier;
  request.offset = offset;
  request.bytes = 4096;
  request.priority = priority;
  request.execute = [order, id]() -> Status {
    order->push_back(id);
    return Status::Ok();
  };
  return request;
}

// Regression: an eligible request sitting at offset UINT64_MAX could never
// win the old sentinel comparison (offset < UINT64_MAX is false), so the
// pick fell through to index 0 — an *ineligible*, lower-priority request —
// and the elevator inverted priorities.
TEST(IoSchedulerElevatorTest, PriorityWinsAtMaxOffset) {
  SimClock clock;
  IoScheduler sched(SchedAlgo::kElevator, &clock);
  sched.RegisterTier(HddTier(0));
  std::vector<int> order;
  ASSERT_TRUE(sched.Submit(MakeRequest(0, 0, /*priority=*/1, 1, &order)).ok());
  ASSERT_TRUE(
      sched.Submit(MakeRequest(0, UINT64_MAX, /*priority=*/0, 2, &order))
          .ok());
  ASSERT_TRUE(sched.RunAll().ok());
  ASSERT_EQ(order.size(), 2u);
  // Priority 0 dispatches first no matter where its offset lands.
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
}

TEST(IoSchedulerElevatorTest, SweepsAscendingFromHead) {
  SimClock clock;
  IoScheduler sched(SchedAlgo::kElevator, &clock);
  sched.RegisterTier(HddTier(0));
  std::vector<int> order;
  ASSERT_TRUE(
      sched.Submit(MakeRequest(0, 8 * 4096, /*priority=*/1, 1, &order)).ok());
  ASSERT_TRUE(
      sched.Submit(MakeRequest(0, 2 * 4096, /*priority=*/1, 2, &order)).ok());
  ASSERT_TRUE(
      sched.Submit(MakeRequest(0, 5 * 4096, /*priority=*/1, 3, &order)).ok());
  ASSERT_TRUE(sched.RunAll().ok());
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(IoSchedulerElevatorTest, WrapsToSmallestEligibleOffset) {
  SimClock clock;
  IoScheduler sched(SchedAlgo::kElevator, &clock);
  sched.RegisterTier(HddTier(0));
  std::vector<int> order;
  // Move the head to 8 * 4096 + 4096.
  ASSERT_TRUE(
      sched.Submit(MakeRequest(0, 8 * 4096, /*priority=*/1, 1, &order)).ok());
  ASSERT_TRUE(sched.RunAll().ok());
  // Everything now queued is behind the head: the sweep wraps to the
  // smallest offset and ascends.
  ASSERT_TRUE(
      sched.Submit(MakeRequest(0, 4 * 4096, /*priority=*/1, 2, &order)).ok());
  ASSERT_TRUE(
      sched.Submit(MakeRequest(0, 1 * 4096, /*priority=*/1, 3, &order)).ok());
  ASSERT_TRUE(sched.RunAll().ok());
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

// Regression: RunOne used to advance the elevator head and add the
// estimated cost to est_cost_dispatched_ns *before* execute() ran, so a
// failed request skewed both. A failed request did no media work.
TEST(IoSchedulerTest, FailedDispatchDoesNotAccountCostOrMoveHead) {
  SimClock clock;
  IoScheduler sched(SchedAlgo::kElevator, &clock);
  sched.RegisterTier(HddTier(0));

  IoRequest bad;
  bad.tier = 0;
  bad.offset = 8 * 4096;
  bad.bytes = 4096;
  bad.execute = []() -> Status { return IoError("injected dispatch fault"); };
  ASSERT_TRUE(sched.Submit(std::move(bad)).ok());
  auto ran = sched.RunOne(0);
  EXPECT_FALSE(ran.ok());

  auto stats = sched.stats();
  EXPECT_EQ(stats.dispatched, 1u);
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.failed_tiers.at(0), 1u);
  EXPECT_FALSE(stats.last_error.ok());
  EXPECT_EQ(stats.est_cost_dispatched_ns, 0u);

  // The head must still be at 0: a request at offset 0 dispatches before
  // one beyond the failed request's range.
  std::vector<int> order;
  ASSERT_TRUE(
      sched.Submit(MakeRequest(0, 16 * 4096, /*priority=*/1, 2, &order)).ok());
  ASSERT_TRUE(sched.Submit(MakeRequest(0, 0, /*priority=*/1, 1, &order)).ok());
  ASSERT_TRUE(sched.RunAll().ok());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(IoSchedulerTest, SuccessfulDispatchAccountsEstimatedCost) {
  SimClock clock;
  IoScheduler sched(SchedAlgo::kFifo, &clock);
  sched.RegisterTier(HddTier(0));
  std::vector<int> order;
  ASSERT_TRUE(sched.Submit(MakeRequest(0, 0, /*priority=*/1, 1, &order)).ok());
  ASSERT_TRUE(sched.RunAll().ok());
  auto stats = sched.stats();
  EXPECT_EQ(stats.dispatched, 1u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_GT(stats.est_cost_dispatched_ns, 0u);
}

TEST(IoSchedulerTest, ObservesQueueWaitAndServiceTime) {
  SimClock clock;
  obs::MetricsRegistry metrics;
  IoScheduler sched(SchedAlgo::kFifo, &clock, &metrics);
  sched.RegisterTier(HddTier(0));

  IoRequest request;
  request.tier = 0;
  request.offset = 0;
  request.bytes = 4096;
  request.execute = [&clock]() -> Status {
    clock.Advance(750);  // simulated service time
    return Status::Ok();
  };
  ASSERT_TRUE(sched.Submit(std::move(request)).ok());
  clock.Advance(500);  // the request waits in the queue
  ASSERT_TRUE(sched.RunAll().ok());

  const Histogram wait = metrics.HistogramValue("sched.queue_wait_ns");
  ASSERT_EQ(wait.count(), 1u);
  EXPECT_EQ(wait.max(), 500u);
  const Histogram service = metrics.HistogramValue("sched.service_ns");
  ASSERT_EQ(service.count(), 1u);
  EXPECT_EQ(service.max(), 750u);
}

// Regression: the kParallel join folded every tier's drain-thread elapsed
// time into the round max, including tiers whose requests ALL failed. A
// failed request did no media work, but its execute() may have charged its
// private cursor before erroring out — that charge inflated the shared
// clock by up to a full drain round. Only tiers that dispatched at least
// one request successfully may contribute to the round clock.
TEST(IoSchedulerTest, ParallelRoundClockExcludesFailedOnlyTiers) {
  SimClock clock;
  IoScheduler sched(SchedAlgo::kFifo, &clock);
  sched.RegisterTier(HddTier(0));
  TierInfo other = HddTier(1);
  other.name = "hdd2";
  sched.RegisterTier(other);

  IoRequest good;
  good.tier = 0;
  good.offset = 0;
  good.bytes = 4096;
  good.execute = [&clock]() -> Status {
    clock.Advance(1000);
    return Status::Ok();
  };
  IoRequest bad;
  bad.tier = 1;
  bad.offset = 0;
  bad.bytes = 4096;
  bad.execute = [&clock]() -> Status {
    clock.Advance(50000);  // charged, then the dispatch fails
    return IoError("injected dispatch fault");
  };
  ASSERT_TRUE(sched.Submit(std::move(good)).ok());
  ASSERT_TRUE(sched.Submit(std::move(bad)).ok());

  const SimTime start = clock.Now();
  auto ran = sched.RunAll(IoScheduler::DrainMode::kParallel);
  ASSERT_TRUE(ran.ok());
  EXPECT_EQ(*ran, 1u);
  auto stats = sched.stats();
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.failed_tiers.at(1), 1u);
  // The round advances by the succeeding tier's drain time only; the
  // failed-only tier's 50,000 ns cursor charge is discarded with the
  // failure.
  EXPECT_EQ(clock.Now() - start, 1000u);
}

TEST(IoSchedulerTest, AsyncDrainAdvancesRoundClockThroughChannelModel) {
  SimClock clock;
  obs::MetricsRegistry metrics;
  IoScheduler sched(SchedAlgo::kFifo, &clock, &metrics);
  sched.RegisterTier(HddTier(0));

  AsyncIoCore core(&clock, &metrics);
  core.RegisterQueue(0, "hdd", /*queue_depth=*/1, /*servers=*/1);
  sched.AttachAsyncCore(&core);

  auto make = [&clock](uint64_t offset) {
    IoRequest request;
    request.tier = 0;
    request.offset = offset;
    request.bytes = 4096;
    request.execute = [&clock]() -> Status {
      clock.Advance(1000);
      return Status::Ok();
    };
    return request;
  };
  ASSERT_TRUE(sched.Submit(make(0)).ok());
  ASSERT_TRUE(sched.Submit(make(4096)).ok());

  const SimTime start = clock.Now();
  auto ran = sched.RunAll(IoScheduler::DrainMode::kAsync);
  ASSERT_TRUE(ran.ok());
  EXPECT_EQ(*ran, 2u);
  // queue_depth 1: the two 1,000 ns services serialize on the single
  // channel, so the round horizon is 2,000 ns.
  EXPECT_EQ(clock.Now() - start, 2000u);
  EXPECT_EQ(sched.stats().dispatched, 2u);
  EXPECT_GE(metrics.CounterValue("sched.async_drain.rounds"), 1u);
  EXPECT_EQ(metrics.HistogramValue("sched.qdepth.hdd").count(), 2u);
  core.Shutdown();
}

TEST(IoSchedulerTest, AsyncDrainDiscardsFailedRequestCharge) {
  SimClock clock;
  IoScheduler sched(SchedAlgo::kFifo, &clock);
  sched.RegisterTier(HddTier(0));
  AsyncIoCore core(&clock);
  core.RegisterQueue(0, "hdd", /*queue_depth=*/1, /*servers=*/1);
  sched.AttachAsyncCore(&core);

  IoRequest bad;
  bad.tier = 0;
  bad.offset = 0;
  bad.bytes = 4096;
  bad.execute = [&clock]() -> Status {
    clock.Advance(5000);
    return IoError("injected dispatch fault");
  };
  ASSERT_TRUE(sched.Submit(std::move(bad)).ok());

  const SimTime start = clock.Now();
  auto ran = sched.RunAll(IoScheduler::DrainMode::kAsync);
  ASSERT_TRUE(ran.ok());
  EXPECT_EQ(*ran, 0u);
  auto stats = sched.stats();
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.est_cost_dispatched_ns, 0u);
  // Failed-request-did-no-media-work: the round clock ignores the charge.
  EXPECT_EQ(clock.Now(), start);
  core.Shutdown();
}

}  // namespace
}  // namespace mux::core
