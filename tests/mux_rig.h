// Full-stack Mux test rig: PM + SSD + HDD devices, novafs/xfslite/extlite on
// top, Mux composing them — Figure 1(b) in miniature. Shared by the Mux
// tests, the examples, and (with bigger devices) the benchmarks.
#ifndef MUX_TESTS_MUX_RIG_H_
#define MUX_TESTS_MUX_RIG_H_

#include <memory>
#include <utility>

#include "src/common/clock.h"
#include "src/core/mux.h"
#include "src/device/block_device.h"
#include "src/device/pm_device.h"
#include "src/fs/extlite/extlite.h"
#include "src/fs/novafs/novafs.h"
#include "src/fs/xfslite/xfslite.h"

namespace mux::testing {

struct MuxRigSizes {
  uint64_t pm_bytes = 64ULL << 20;
  uint64_t ssd_bytes = 128ULL << 20;
  uint64_t hdd_bytes = 256ULL << 20;
  // DRAM page-cache sizing of the block-device file systems (pages).
  uint64_t xfslite_cache_pages = 4096;
  uint64_t extlite_cache_pages = 4096;
};

inline fs::XfsLite::Options XfsOptionsFor(const MuxRigSizes& sizes) {
  fs::XfsLite::Options options;
  options.page_cache_pages = sizes.xfslite_cache_pages;
  return options;
}

inline fs::ExtLite::Options ExtOptionsFor(const MuxRigSizes& sizes) {
  fs::ExtLite::Options options;
  options.page_cache_pages = sizes.extlite_cache_pages;
  return options;
}

class MuxRig {
 public:
  using Sizes = MuxRigSizes;

  MuxRig() : MuxRig(core::Mux::Options(), Sizes()) {}
  explicit MuxRig(core::Mux::Options options)
      : MuxRig(std::move(options), Sizes()) {}
  explicit MuxRig(Sizes sizes) : MuxRig(core::Mux::Options(), sizes) {}

  MuxRig(core::Mux::Options options, Sizes sizes)
      : pm_dev_(device::DeviceProfile::OptanePm(sizes.pm_bytes), &clock_),
        ssd_dev_(device::DeviceProfile::OptaneSsd(sizes.ssd_bytes), &clock_),
        hdd_dev_(device::DeviceProfile::ExosHdd(sizes.hdd_bytes), &clock_),
        novafs_(&pm_dev_, &clock_),
        xfslite_(&ssd_dev_, &clock_, XfsOptionsFor(sizes)),
        extlite_(&hdd_dev_, &clock_, ExtOptionsFor(sizes)),
        mux_(std::make_unique<core::Mux>(&clock_, std::move(options))) {
    format_ok_ = novafs_.Format().ok() && xfslite_.Format().ok() &&
                 extlite_.Format().ok();
    auto pm = mux_->AddTier("pm", &novafs_, pm_dev_.profile());
    auto ssd = mux_->AddTier("ssd", &xfslite_, ssd_dev_.profile());
    auto hdd = mux_->AddTier("hdd", &extlite_, hdd_dev_.profile());
    format_ok_ = format_ok_ && pm.ok() && ssd.ok() && hdd.ok();
    pm_tier_ = pm.value_or(core::kInvalidTier);
    ssd_tier_ = ssd.value_or(core::kInvalidTier);
    hdd_tier_ = hdd.value_or(core::kInvalidTier);
    AttachObs();
  }

  // Devices hold pointers into mux_'s metrics/trace; detach before members
  // destruct (mux_ dies first) so late page-cache writeback can't dangle.
  ~MuxRig() { DetachObs(); }

  bool ok() const { return format_ok_; }
  core::Mux& mux() { return *mux_; }
  SimClock& clock() { return clock_; }
  fs::NovaFs& novafs() { return novafs_; }
  fs::XfsLite& xfslite() { return xfslite_; }
  fs::ExtLite& extlite() { return extlite_; }
  device::PmDevice& pm_dev() { return pm_dev_; }
  device::BlockDevice& ssd_dev() { return ssd_dev_; }
  device::BlockDevice& hdd_dev() { return hdd_dev_; }
  core::TierId pm_tier() const { return pm_tier_; }
  core::TierId ssd_tier() const { return ssd_tier_; }
  core::TierId hdd_tier() const { return hdd_tier_; }

  // Rebuilds Mux over the same (already formatted) file systems, as after a
  // restart, and recovers from the checkpoint.
  Status Remount() {
    DetachObs();  // the old Mux (and its registry) is about to be destroyed
    mux_ = std::make_unique<core::Mux>(&clock_);
    MUX_RETURN_IF_ERROR(
        mux_->AddTier("pm", &novafs_, pm_dev_.profile()).status());
    MUX_RETURN_IF_ERROR(
        mux_->AddTier("ssd", &xfslite_, ssd_dev_.profile()).status());
    MUX_RETURN_IF_ERROR(
        mux_->AddTier("hdd", &extlite_, hdd_dev_.profile()).status());
    AttachObs();
    return mux_->Recover();
  }

 private:
  // Points every device at the (new) Mux instance's metrics/trace sinks so
  // media time decomposes against Mux's software charges (§3.2).
  void AttachObs() {
    pm_dev_.AttachObs(&mux_->metrics(), &mux_->trace(), "pm");
    ssd_dev_.AttachObs(&mux_->metrics(), &mux_->trace(), "ssd");
    hdd_dev_.AttachObs(&mux_->metrics(), &mux_->trace(), "hdd");
  }
  void DetachObs() {
    pm_dev_.AttachObs(nullptr, nullptr, "pm");
    ssd_dev_.AttachObs(nullptr, nullptr, "ssd");
    hdd_dev_.AttachObs(nullptr, nullptr, "hdd");
  }

  SimClock clock_;
  device::PmDevice pm_dev_;
  device::BlockDevice ssd_dev_;
  device::BlockDevice hdd_dev_;
  fs::NovaFs novafs_;
  fs::XfsLite xfslite_;
  fs::ExtLite extlite_;
  std::unique_ptr<core::Mux> mux_;
  core::TierId pm_tier_ = core::kInvalidTier;
  core::TierId ssd_tier_ = core::kInvalidTier;
  core::TierId hdd_tier_ = core::kInvalidTier;
  bool format_ok_ = false;
};

}  // namespace mux::testing

#endif  // MUX_TESTS_MUX_RIG_H_
