// Tests for the JBD-style journal: lazy checkpointing, replay, revocation,
// crash atomicity.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/device/block_device.h"
#include "src/fs/fscommon/journal.h"

namespace mux::fs {
namespace {

constexpr uint64_t kJournalStart = 100;
constexpr uint64_t kJournalBlocks = 32;

class JournalTest : public ::testing::Test {
 protected:
  JournalTest()
      : dev_(device::DeviceProfile::TestRam(8ULL << 20), &clock_),
        journal_(&dev_, kJournalStart, kJournalBlocks) {
    EXPECT_TRUE(journal_.Format().ok());
  }

  std::vector<uint8_t> Block(uint8_t fill) const {
    return std::vector<uint8_t>(dev_.block_size(), fill);
  }

  std::vector<uint8_t> ReadBlock(uint64_t lba) {
    std::vector<uint8_t> out(dev_.block_size());
    EXPECT_TRUE(dev_.ReadBlocks(lba, 1, out.data()).ok());
    return out;
  }

  SimClock clock_;
  device::BlockDevice dev_;
  Journal journal_;
};

TEST_F(JournalTest, CheckpointWritesHome) {
  auto tx = journal_.Begin();
  auto a = Block(0xaa);
  auto b = Block(0xbb);
  tx->LogBlock(5, a.data(), a.size());
  tx->LogBlock(9, b.data(), b.size());
  ASSERT_TRUE(journal_.Commit(std::move(tx)).ok());
  // Lazy checkpointing: Commit alone leaves the home blocks untouched.
  EXPECT_EQ(ReadBlock(5), Block(0));
  ASSERT_TRUE(journal_.Checkpoint().ok());
  EXPECT_EQ(ReadBlock(5), a);
  EXPECT_EQ(ReadBlock(9), b);
  EXPECT_EQ(journal_.stats().commits, 1u);
  EXPECT_EQ(journal_.stats().blocks_logged, 2u);
  EXPECT_EQ(journal_.stats().checkpointed_blocks, 2u);
}

TEST_F(JournalTest, RecoveryIsEquivalentToCheckpoint) {
  // Commit without checkpoint, then mount a fresh journal: replay must land
  // the same content the checkpoint would have.
  auto tx = journal_.Begin();
  auto a = Block(0x21);
  tx->LogBlock(7, a.data(), a.size());
  ASSERT_TRUE(journal_.Commit(std::move(tx)).ok());
  Journal recovering(&dev_, kJournalStart, kJournalBlocks);
  ASSERT_TRUE(recovering.Recover().ok());
  EXPECT_EQ(recovering.stats().replayed_txs, 1u);
  EXPECT_EQ(ReadBlock(7), a);
  // Replay is one-shot.
  Journal again(&dev_, kJournalStart, kJournalBlocks);
  ASSERT_TRUE(again.Recover().ok());
  EXPECT_EQ(again.stats().replayed_txs, 0u);
}

TEST_F(JournalTest, EmptyCommitIsNoop) {
  ASSERT_TRUE(journal_.Commit(journal_.Begin()).ok());
  ASSERT_TRUE(journal_.Commit(nullptr).ok());
  EXPECT_EQ(journal_.stats().commits, 0u);
}

TEST_F(JournalTest, RelogSameBlockKeepsLatest) {
  auto tx = journal_.Begin();
  auto old_content = Block(1);
  auto new_content = Block(2);
  tx->LogBlock(7, old_content.data(), old_content.size());
  tx->LogBlock(7, new_content.data(), new_content.size());
  EXPECT_EQ(tx->BlockCount(), 1u);
  ASSERT_TRUE(journal_.Commit(std::move(tx)).ok());
  ASSERT_TRUE(journal_.Checkpoint().ok());
  EXPECT_EQ(ReadBlock(7), new_content);
}

TEST_F(JournalTest, LaterTxWinsAcrossCommits) {
  auto content1 = Block(0x31);
  auto content2 = Block(0x32);
  auto tx1 = journal_.Begin();
  tx1->LogBlock(11, content1.data(), content1.size());
  ASSERT_TRUE(journal_.Commit(std::move(tx1)).ok());
  auto tx2 = journal_.Begin();
  tx2->LogBlock(11, content2.data(), content2.size());
  ASSERT_TRUE(journal_.Commit(std::move(tx2)).ok());
  // Via replay:
  Journal recovering(&dev_, kJournalStart, kJournalBlocks);
  ASSERT_TRUE(recovering.Recover().ok());
  EXPECT_EQ(recovering.stats().replayed_txs, 2u);
  EXPECT_EQ(ReadBlock(11), content2);
}

TEST_F(JournalTest, OversizeTxRejected) {
  auto tx = journal_.Begin();
  auto content = Block(1);
  for (uint64_t i = 0; i < kJournalBlocks; ++i) {
    tx->LogBlock(i, content.data(), content.size());
  }
  EXPECT_EQ(journal_.Commit(std::move(tx)).code(), ErrorCode::kNoSpace);
}

TEST_F(JournalTest, JournalFullTriggersCheckpoint) {
  // Commit more transactions than the journal area holds; the automatic
  // checkpoint must drain it and keep accepting commits.
  auto content = Block(9);
  for (int i = 0; i < 30; ++i) {
    auto tx = journal_.Begin();
    tx->LogBlock(40 + i, content.data(), content.size());
    ASSERT_TRUE(journal_.Commit(std::move(tx)).ok()) << i;
  }
  EXPECT_GT(journal_.stats().checkpoints, 0u);
  ASSERT_TRUE(journal_.Checkpoint().ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(ReadBlock(40 + i), content) << i;
  }
}

TEST_F(JournalTest, RecoverOnCheckpointedJournalIsNoop) {
  auto tx = journal_.Begin();
  auto a = Block(3);
  tx->LogBlock(4, a.data(), a.size());
  ASSERT_TRUE(journal_.Commit(std::move(tx)).ok());
  ASSERT_TRUE(journal_.Checkpoint().ok());
  Journal fresh(&dev_, kJournalStart, kJournalBlocks);
  ASSERT_TRUE(fresh.Recover().ok());
  EXPECT_EQ(fresh.stats().replayed_txs, 0u);
  EXPECT_EQ(ReadBlock(4), a);
}

// Crash between commit and checkpoint: replay must re-apply. The crash point
// is produced with write fault injection: the commit sequence is
// descriptor(1) + data(1) + flush + commit(1) + flush = 3 writes.
TEST_F(JournalTest, ReplayAfterCrashBeforeCheckpoint) {
  dev_.EnableCrashSim(true);
  auto tx = journal_.Begin();
  auto a = Block(0x11);
  tx->LogBlock(3, a.data(), a.size());
  ASSERT_TRUE(journal_.Commit(std::move(tx)).ok());
  // Checkpoint never happens; power fails.
  dev_.Crash();
  dev_.EnableCrashSim(false);
  // The journal writes were flushed by Commit, so they survive; the home
  // block write never happened.
  EXPECT_EQ(ReadBlock(3), Block(0));

  Journal recovering(&dev_, kJournalStart, kJournalBlocks);
  ASSERT_TRUE(recovering.Recover().ok());
  EXPECT_EQ(recovering.stats().replayed_txs, 1u);
  EXPECT_EQ(ReadBlock(3), a);
}

// Crash before the commit record: the transaction must be discarded.
TEST_F(JournalTest, TornTransactionDiscarded) {
  dev_.EnableCrashSim(true);
  auto tx = journal_.Begin();
  auto a = Block(0x33);
  tx->LogBlock(6, a.data(), a.size());
  // Cut after descriptor + data (2 writes): the commit block never lands.
  dev_.FailAfterWrites(2);
  EXPECT_FALSE(journal_.Commit(std::move(tx)).ok());
  dev_.FailAfterWrites(-1);
  dev_.Crash();
  dev_.EnableCrashSim(false);

  Journal recovering(&dev_, kJournalStart, kJournalBlocks);
  ASSERT_TRUE(recovering.Recover().ok());
  EXPECT_EQ(recovering.stats().replayed_txs, 0u);
  EXPECT_EQ(ReadBlock(6), Block(0));
}

// Corrupted data body: CRC must reject the replay.
TEST_F(JournalTest, CorruptBodyRejected) {
  auto tx = journal_.Begin();
  auto a = Block(0x44);
  tx->LogBlock(8, a.data(), a.size());
  ASSERT_TRUE(journal_.Commit(std::move(tx)).ok());
  // Corrupt the journaled data block (journal area: start+1 descriptor,
  // start+2 first data block).
  auto garbage = Block(0x45);
  ASSERT_TRUE(dev_.WriteBlocks(kJournalStart + 2, 1, garbage.data()).ok());

  Journal recovering(&dev_, kJournalStart, kJournalBlocks);
  ASSERT_TRUE(recovering.Recover().ok());
  EXPECT_EQ(recovering.stats().replayed_txs, 0u);
  EXPECT_EQ(ReadBlock(8), Block(0));
}

TEST_F(JournalTest, SequenceAdvancesAcrossCommits) {
  for (int i = 0; i < 5; ++i) {
    auto tx = journal_.Begin();
    auto content = Block(static_cast<uint8_t>(i));
    tx->LogBlock(20 + i, content.data(), content.size());
    ASSERT_TRUE(journal_.Commit(std::move(tx)).ok());
  }
  EXPECT_EQ(journal_.stats().commits, 5u);
  // All five replay in order on a fresh mount.
  Journal recovering(&dev_, kJournalStart, kJournalBlocks);
  ASSERT_TRUE(recovering.Recover().ok());
  EXPECT_EQ(recovering.stats().replayed_txs, 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ReadBlock(20 + i), Block(static_cast<uint8_t>(i)));
  }
}

// ---- revocation -----------------------------------------------------------

TEST_F(JournalTest, RevokedBlockIsNotCheckpointed) {
  auto tx1 = journal_.Begin();
  auto stale = Block(0x51);
  tx1->LogBlock(13, stale.data(), stale.size());
  ASSERT_TRUE(journal_.Commit(std::move(tx1)).ok());
  // The block is freed and revoked; its journaled content is dead.
  auto tx2 = journal_.Begin();
  auto other = Block(0x52);
  tx2->LogBlock(14, other.data(), other.size());
  tx2->RevokeBlock(13);
  ASSERT_TRUE(journal_.Commit(std::move(tx2)).ok());
  // The block is reused for unjournaled data.
  auto reused = Block(0x53);
  ASSERT_TRUE(dev_.WriteBlocks(13, 1, reused.data()).ok());
  // Checkpoint must NOT clobber the reused block.
  ASSERT_TRUE(journal_.Checkpoint().ok());
  EXPECT_EQ(ReadBlock(13), reused);
  EXPECT_EQ(ReadBlock(14), other);
}

TEST_F(JournalTest, RevokedBlockIsNotReplayed) {
  auto tx1 = journal_.Begin();
  auto stale = Block(0x61);
  tx1->LogBlock(15, stale.data(), stale.size());
  ASSERT_TRUE(journal_.Commit(std::move(tx1)).ok());
  auto tx2 = journal_.Begin();
  tx2->RevokeBlock(15);
  auto marker = Block(0x62);
  tx2->LogBlock(16, marker.data(), marker.size());
  ASSERT_TRUE(journal_.Commit(std::move(tx2)).ok());
  // Reuse the revoked block for unjournaled data, then crash-and-replay.
  auto reused = Block(0x63);
  ASSERT_TRUE(dev_.WriteBlocks(15, 1, reused.data()).ok());

  Journal recovering(&dev_, kJournalStart, kJournalBlocks);
  ASSERT_TRUE(recovering.Recover().ok());
  EXPECT_EQ(ReadBlock(15), reused);  // revoke suppressed the stale replay
  EXPECT_EQ(ReadBlock(16), marker);
}

TEST_F(JournalTest, RelogAfterRevokeWins) {
  // Free + revoke, then the block becomes metadata again and is re-logged
  // in the same transaction: the new content must survive.
  auto tx1 = journal_.Begin();
  auto stale = Block(0x71);
  tx1->LogBlock(17, stale.data(), stale.size());
  ASSERT_TRUE(journal_.Commit(std::move(tx1)).ok());
  auto tx2 = journal_.Begin();
  tx2->RevokeBlock(17);
  auto fresh = Block(0x72);
  tx2->LogBlock(17, fresh.data(), fresh.size());
  ASSERT_TRUE(journal_.Commit(std::move(tx2)).ok());
  ASSERT_TRUE(journal_.Checkpoint().ok());
  EXPECT_EQ(ReadBlock(17), fresh);
  // And via replay:
  auto stale_home = Block(0);
  ASSERT_TRUE(dev_.WriteBlocks(17, 1, stale_home.data()).ok());
  Journal rewound(&dev_, kJournalStart, kJournalBlocks);
  // Checkpoint already retired the window, so force a replayable state by
  // re-committing.
  auto tx3 = rewound.Begin();
  ASSERT_TRUE(rewound.Recover().ok());
  tx3->RevokeBlock(17);
  tx3->LogBlock(17, fresh.data(), fresh.size());
  ASSERT_TRUE(rewound.Commit(std::move(tx3)).ok());
  Journal recovering(&dev_, kJournalStart, kJournalBlocks);
  ASSERT_TRUE(recovering.Recover().ok());
  EXPECT_EQ(ReadBlock(17), fresh);
}

TEST_F(JournalTest, HugeRevokeSetSpillsAcrossTransactions) {
  auto tx = journal_.Begin();
  auto content = Block(0x81);
  tx->LogBlock(19, content.data(), content.size());
  for (uint64_t b = 1000; b < 2500; ++b) {
    tx->RevokeBlock(b);  // 1500 revokes >> one descriptor's capacity
  }
  ASSERT_TRUE(journal_.Commit(std::move(tx)).ok());
  EXPECT_GT(journal_.stats().commits, 1u);  // spilled into revoke-only txs
  ASSERT_TRUE(journal_.Checkpoint().ok());
  EXPECT_EQ(ReadBlock(19), content);
}

// Property sweep: crash at EVERY possible write cutoff during a commit.
// Invariant: after recovery, the transaction is all-or-nothing — blocks 40
// and 41 hold either both the old or both the new content, never a mix.
TEST(JournalCrashProperty, EveryCrashPointIsAtomic) {
  for (int64_t cutoff = 0; cutoff <= 6; ++cutoff) {
    SimClock clock;
    device::BlockDevice dev(device::DeviceProfile::TestRam(8ULL << 20),
                            &clock);
    Journal journal(&dev, kJournalStart, kJournalBlocks);
    ASSERT_TRUE(journal.Format().ok());

    // Transaction 1 commits cleanly: the "old" content.
    std::vector<uint8_t> old_content(dev.block_size(), 0xc1);
    auto tx1 = journal.Begin();
    tx1->LogBlock(40, old_content.data(), old_content.size());
    tx1->LogBlock(41, old_content.data(), old_content.size());
    ASSERT_TRUE(journal.Commit(std::move(tx1)).ok());

    // Transaction 2 crashes after `cutoff` writes
    // (descriptor + 2 data + commit = 4 writes, then nothing until
    // checkpoint).
    dev.EnableCrashSim(true);
    std::vector<uint8_t> new_content(dev.block_size(), 0xc2);
    auto tx2 = journal.Begin();
    tx2->LogBlock(40, new_content.data(), new_content.size());
    tx2->LogBlock(41, new_content.data(), new_content.size());
    dev.FailAfterWrites(cutoff);
    const Status commit_status = journal.Commit(std::move(tx2));
    dev.FailAfterWrites(-1);
    dev.Crash();
    dev.EnableCrashSim(false);

    Journal recovering(&dev, kJournalStart, kJournalBlocks);
    ASSERT_TRUE(recovering.Recover().ok()) << "cutoff " << cutoff;

    std::vector<uint8_t> b40(dev.block_size());
    std::vector<uint8_t> b41(dev.block_size());
    ASSERT_TRUE(dev.ReadBlocks(40, 1, b40.data()).ok());
    ASSERT_TRUE(dev.ReadBlocks(41, 1, b41.data()).ok());
    const bool both_old = b40 == old_content && b41 == old_content;
    const bool both_new = b40 == new_content && b41 == new_content;
    EXPECT_TRUE(both_old || both_new) << "cutoff " << cutoff;
    // If the commit reported success, the new content must be there.
    if (commit_status.ok()) {
      EXPECT_TRUE(both_new) << "cutoff " << cutoff;
    }
  }
}

}  // namespace
}  // namespace mux::fs
