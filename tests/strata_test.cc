// Strata baseline tests: log-then-digest behaviour, static routing,
// lock-based migration, tier accounting.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/device/block_device.h"
#include "src/device/pm_device.h"
#include "src/strata/strata.h"

namespace mux::strata {
namespace {

using vfs::OpenFlags;

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Rng rng(seed);
  rng.Fill(v.data(), n);
  return v;
}

class StrataTest : public ::testing::Test {
 protected:
  StrataTest()
      : pm_(device::DeviceProfile::OptanePm(32ULL << 20), &clock_),
        ssd_(device::DeviceProfile::OptaneSsd(64ULL << 20), &clock_),
        hdd_(device::DeviceProfile::ExosHdd(128ULL << 20), &clock_),
        fs_(&pm_, &ssd_, &hdd_, &clock_) {
    EXPECT_TRUE(fs_.Format().ok());
  }

  SimClock clock_;
  device::PmDevice pm_;
  device::BlockDevice ssd_;
  device::BlockDevice hdd_;
  StrataFs fs_;
};

TEST_F(StrataTest, EveryWriteGoesThroughTheLog) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(16 * 4096, 1);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  auto stats = fs_.stats();
  EXPECT_EQ(stats.log_appends, 16u);
  // Write amplification: logged bytes exceed payload (record headers).
  EXPECT_GT(stats.log_bytes, data.size());
}

TEST_F(StrataTest, ReadsSeeUndigestedLogData) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(10000, 2);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  // No digest yet.
  std::vector<uint8_t> out(data.size());
  auto r = fs_.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

TEST_F(StrataTest, DigestMovesDataToTargetTier) {
  auto h = fs_.Open("/ssd_file", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_.SetFileTier("/ssd_file", Tier::kSsd).ok());
  auto data = Pattern(8 * 4096, 3);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  const auto ssd_before = ssd_.stats().write_ops;
  ASSERT_TRUE(fs_.DigestAll().ok());
  EXPECT_GT(ssd_.stats().write_ops, ssd_before);  // data landed on SSD
  EXPECT_EQ(fs_.LogBytesUsed(), 0u);              // log drained
  // Content still correct after digest.
  std::vector<uint8_t> out(data.size());
  auto r = fs_.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

TEST_F(StrataTest, PmDigestIsMetadataOnly) {
  auto h = fs_.Open("/pm_file", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(8 * 4096, 4);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  const auto pm_writes_before = pm_.stats().bytes_written;
  ASSERT_TRUE(fs_.DigestAll().ok());
  // Adoption, not copy: no new PM data writes during digest.
  EXPECT_EQ(pm_.stats().bytes_written, pm_writes_before);
  std::vector<uint8_t> out(data.size());
  auto r = fs_.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

TEST_F(StrataTest, StaticRoutingTable) {
  // Only PM->SSD and PM->HDD are wired (Figure 3a).
  EXPECT_TRUE(StrataFs::SupportsMigration(Tier::kPm, Tier::kSsd));
  EXPECT_TRUE(StrataFs::SupportsMigration(Tier::kPm, Tier::kHdd));
  EXPECT_FALSE(StrataFs::SupportsMigration(Tier::kSsd, Tier::kHdd));
  EXPECT_FALSE(StrataFs::SupportsMigration(Tier::kSsd, Tier::kPm));
  EXPECT_FALSE(StrataFs::SupportsMigration(Tier::kHdd, Tier::kPm));
  EXPECT_FALSE(StrataFs::SupportsMigration(Tier::kHdd, Tier::kSsd));
}

TEST_F(StrataTest, UnsupportedMigrationFails) {
  ASSERT_TRUE(fs_.Open("/f", OpenFlags::kCreateRw).ok());
  EXPECT_EQ(fs_.MigrateFile("/f", Tier::kSsd, Tier::kPm).code(),
            ErrorCode::kNotSupported);
  EXPECT_EQ(fs_.MigrateFile("/f", Tier::kHdd, Tier::kSsd).code(),
            ErrorCode::kNotSupported);
}

TEST_F(StrataTest, SupportedMigrationMovesBlocks) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(32 * 4096, 5);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_.DigestAll().ok());  // data now on PM

  const auto ssd_before = ssd_.stats().write_ops;
  ASSERT_TRUE(fs_.MigrateFile("/f", Tier::kPm, Tier::kSsd).ok());
  EXPECT_GE(ssd_.stats().write_ops - ssd_before, 32u);
  EXPECT_EQ(fs_.stats().migrated_blocks, 32u);
  // Lock-based migration took the file lock per block.
  EXPECT_GE(fs_.stats().lock_acquisitions, 32u);
  // Data unchanged.
  std::vector<uint8_t> out(data.size());
  auto r = fs_.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

TEST_F(StrataTest, LogWatermarkTriggersDigest) {
  // Write more than the digest watermark of the log; digest must fire by
  // itself and keep the log bounded.
  auto h = fs_.Open("/big", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_.SetFileTier("/big", Tier::kSsd).ok());
  auto data = Pattern(1 << 20, 6);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(fs_.Write(*h, static_cast<uint64_t>(i) << 20, data.data(),
                          data.size()).ok());
  }
  EXPECT_GT(fs_.stats().digests, 0u);
  std::vector<uint8_t> out(data.size());
  auto r = fs_.Read(*h, 5ull << 20, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

TEST_F(StrataTest, OverwritesReclaimLogSpace) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(4096, 7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  }
  // 100 overwrites of one block must not pin 100 log pages.
  EXPECT_LE(fs_.LogBytesUsed(), 2u * 4096);
}

TEST_F(StrataTest, TruncateAndSparseBehave) {
  auto h = fs_.Open("/sparse", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(4096, 8);
  ASSERT_TRUE(fs_.Write(*h, 1 << 20, data.data(), data.size()).ok());
  auto st = fs_.FStat(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, (1u << 20) + 4096);
  EXPECT_EQ(st->allocated_bytes, 4096u);
  ASSERT_TRUE(fs_.Truncate(*h, 100).ok());
  auto st2 = fs_.FStat(*h);
  ASSERT_TRUE(st2.ok());
  EXPECT_EQ(st2->size, 100u);
  EXPECT_EQ(st2->allocated_bytes, 0u);
}

}  // namespace
}  // namespace mux::strata
