// Tests for the dual-index extent allocator.
#include <gtest/gtest.h>

#include "src/fs/fscommon/extent_allocator.h"

namespace mux::fs {
namespace {

TEST(ExtentAllocatorTest, AllocAndFreeRoundTrip) {
  ExtentAllocator alloc(100, 1000);
  EXPECT_EQ(alloc.FreeUnits(), 1000u);
  auto a = alloc.AllocContiguous(10);
  ASSERT_TRUE(a.ok());
  EXPECT_GE(*a, 100u);
  EXPECT_EQ(alloc.FreeUnits(), 990u);
  ASSERT_TRUE(alloc.Free(*a, 10).ok());
  EXPECT_EQ(alloc.FreeUnits(), 1000u);
  EXPECT_EQ(alloc.FragmentCount(), 1u);  // coalesced back into one extent
}

TEST(ExtentAllocatorTest, BestFitPrefersSmallestSufficientExtent) {
  ExtentAllocator alloc;
  ASSERT_TRUE(alloc.Free(0, 100).ok());
  ASSERT_TRUE(alloc.Free(1000, 10).ok());
  // Request of 10 should come from the exact-fit extent at 1000.
  auto a = alloc.AllocContiguous(10);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, 1000u);
}

TEST(ExtentAllocatorTest, ExhaustionReturnsNoSpace) {
  ExtentAllocator alloc(0, 16);
  auto a = alloc.AllocContiguous(17);
  EXPECT_EQ(a.status().code(), ErrorCode::kNoSpace);
  ASSERT_TRUE(alloc.AllocContiguous(16).ok());
  EXPECT_EQ(alloc.AllocContiguous(1).status().code(), ErrorCode::kNoSpace);
}

TEST(ExtentAllocatorTest, FreeCoalescesBothSides) {
  ExtentAllocator alloc(0, 30);
  auto a = alloc.AllocContiguous(10);
  auto b = alloc.AllocContiguous(10);
  auto c = alloc.AllocContiguous(10);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(alloc.Free(*a, 10).ok());
  ASSERT_TRUE(alloc.Free(*c, 10).ok());
  EXPECT_EQ(alloc.FragmentCount(), 2u);
  ASSERT_TRUE(alloc.Free(*b, 10).ok());
  EXPECT_EQ(alloc.FragmentCount(), 1u);
  EXPECT_EQ(alloc.LargestExtent(), 30u);
}

TEST(ExtentAllocatorTest, DoubleFreeDetected) {
  ExtentAllocator alloc(0, 100);
  auto a = alloc.AllocContiguous(10);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(alloc.Free(*a, 10).ok());
  EXPECT_EQ(alloc.Free(*a, 10).code(), ErrorCode::kInvalidArgument);
  // Overlapping partial free also detected.
  auto b = alloc.AllocContiguous(10);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(alloc.Free(*b + 5, 5).ok());
  EXPECT_EQ(alloc.Free(*b, 10).code(), ErrorCode::kInvalidArgument);
}

TEST(ExtentAllocatorTest, ReserveCarvesRange) {
  ExtentAllocator alloc(0, 100);
  ASSERT_TRUE(alloc.Reserve(40, 20).ok());
  EXPECT_EQ(alloc.FreeUnits(), 80u);
  EXPECT_EQ(alloc.FragmentCount(), 2u);
  // Reserving something already in use fails.
  EXPECT_EQ(alloc.Reserve(45, 5).code(), ErrorCode::kInvalidArgument);
  // Allocations avoid the reserved hole.
  auto a = alloc.AllocContiguous(50);
  EXPECT_EQ(a.status().code(), ErrorCode::kNoSpace);  // 40 + 40 split
  ASSERT_TRUE(alloc.AllocContiguous(40).ok());
}

TEST(ExtentAllocatorTest, AllocNearPrefersTarget) {
  ExtentAllocator alloc(0, 1000);
  // Carve a hole so free space is [0,500) and [600,1000).
  ASSERT_TRUE(alloc.Reserve(500, 100).ok());
  auto a = alloc.AllocNear(600, 10);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, 600u);
  // Target inside an extent: allocation starts exactly at the target.
  auto b = alloc.AllocNear(100, 10);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, 100u);
}

TEST(ExtentAllocatorTest, AllocUpToReturnsPartialExtents) {
  ExtentAllocator alloc(0, 30);
  ASSERT_TRUE(alloc.Reserve(10, 10).ok());  // free: [0,10) and [20,30)
  auto r = alloc.AllocUpTo(100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->second, 10u);
  auto r2 = alloc.AllocUpTo(100);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->second, 10u);
  EXPECT_EQ(alloc.AllocUpTo(1).status().code(), ErrorCode::kNoSpace);
}

TEST(ExtentAllocatorTest, ZeroLengthRejected) {
  ExtentAllocator alloc(0, 10);
  EXPECT_EQ(alloc.AllocContiguous(0).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_TRUE(alloc.Free(5, 0).ok());      // no-op
  EXPECT_TRUE(alloc.Reserve(5, 0).ok());   // no-op
}

}  // namespace
}  // namespace mux::fs
