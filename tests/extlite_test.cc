// extlite-specific tests: block-map tree (direct/indirect/double-indirect),
// bitmap persistence, ordered journaling, remount, crash sweeps, timestamp
// granularity.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/device/block_device.h"
#include "src/fs/extlite/extlite.h"

namespace mux::fs {
namespace {

using vfs::OpenFlags;

constexpr uint64_t kDevSize = 256ULL << 20;  // roomy: double-indirect tests

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Rng rng(seed);
  rng.Fill(v.data(), n);
  return v;
}

class ExtLiteTest : public ::testing::Test {
 protected:
  ExtLiteTest()
      : dev_(device::DeviceProfile::ExosHdd(kDevSize), &clock_),
        fs_(&dev_, &clock_) {
    EXPECT_TRUE(fs_.Format().ok());
  }

  SimClock clock_;
  device::BlockDevice dev_;
  ExtLite fs_;
};

TEST_F(ExtLiteTest, TimestampGranularityIsOneSecond) {
  EXPECT_EQ(fs_.TimestampGranularityNs(), 1'000'000'000u);
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  clock_.Advance(1'500'000'000);  // 1.5s
  uint8_t b = 1;
  ASSERT_TRUE(fs_.Write(*h, 0, &b, 1).ok());
  auto st = fs_.FStat(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->mtime % 1'000'000'000, 0u) << "mtime not second-aligned";
}

TEST_F(ExtLiteTest, SmallFileUsesDirectPointersOnly) {
  auto h = fs_.Open("/small", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(12 * 4096, 1);  // exactly the 12 direct blocks
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_.Fsync(*h, false).ok());
  ASSERT_TRUE(fs_.Close(*h).ok());

  ExtLite remounted(&dev_, &clock_);
  ASSERT_TRUE(remounted.Mount().ok());
  auto h2 = remounted.Open("/small", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(remounted.Read(*h2, 0, out.size(), out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST_F(ExtLiteTest, MediumFileUsesSingleIndirect) {
  auto h = fs_.Open("/medium", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  // 100 blocks: 12 direct + 88 through the single-indirect block.
  auto data = Pattern(100 * 4096, 2);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_.Fsync(*h, false).ok());
  ASSERT_TRUE(fs_.Close(*h).ok());

  ExtLite remounted(&dev_, &clock_);
  ASSERT_TRUE(remounted.Mount().ok());
  auto h2 = remounted.Open("/medium", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok());
  std::vector<uint8_t> out(data.size());
  auto r = remounted.Read(*h2, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data.size());
  EXPECT_EQ(out, data);
}

TEST_F(ExtLiteTest, LargeFileUsesDoubleIndirect) {
  auto h = fs_.Open("/large", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  // 600 blocks: 12 direct + 512 single-indirect + 76 double-indirect.
  const size_t blocks = 600;
  auto data = Pattern(64 * 1024, 3);
  for (size_t b = 0; b < blocks; b += 16) {
    ASSERT_TRUE(
        fs_.Write(*h, static_cast<uint64_t>(b) * 4096, data.data(), data.size())
            .ok());
  }
  ASSERT_TRUE(fs_.Fsync(*h, false).ok());
  ASSERT_TRUE(fs_.Close(*h).ok());

  ExtLite remounted(&dev_, &clock_);
  ASSERT_TRUE(remounted.Mount().ok());
  auto h2 = remounted.Open("/large", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok());
  std::vector<uint8_t> out(data.size());
  for (size_t b = 0; b < blocks; b += 16) {
    auto r = remounted.Read(*h2, static_cast<uint64_t>(b) * 4096, out.size(),
                            out.data());
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(out, data) << "block " << b;
  }
}

TEST_F(ExtLiteTest, SparseFileAcrossIndirectBoundaries) {
  auto h = fs_.Open("/sparse", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  // One block in each mapping region: direct, single-ind, double-ind.
  const uint64_t offsets[] = {0, 100ull * 4096, 2000ull * 4096};
  for (uint64_t off : offsets) {
    auto data = Pattern(4096, off);
    ASSERT_TRUE(fs_.Write(*h, off, data.data(), data.size()).ok());
  }
  ASSERT_TRUE(fs_.Fsync(*h, false).ok());
  auto st = fs_.FStat(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->allocated_bytes, 3u * 4096);  // holes cost nothing

  ExtLite remounted(&dev_, &clock_);
  ASSERT_TRUE(remounted.Mount().ok());
  auto h2 = remounted.Open("/sparse", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok());
  for (uint64_t off : offsets) {
    auto expected = Pattern(4096, off);
    std::vector<uint8_t> out(4096);
    ASSERT_TRUE(remounted.Read(*h2, off, 4096, out.data()).ok());
    ASSERT_EQ(out, expected) << off;
  }
  // Holes read zero.
  std::vector<uint8_t> hole(4096);
  ASSERT_TRUE(remounted.Read(*h2, 50ull * 4096, 4096, hole.data()).ok());
  EXPECT_EQ(hole, std::vector<uint8_t>(4096, 0));
}

TEST_F(ExtLiteTest, TruncatePrunesIndirectTree) {
  auto h = fs_.Open("/prune", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(600 * 4096, 4);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_.Fsync(*h, false).ok());
  auto st_before = fs_.StatFs();
  ASSERT_TRUE(st_before.ok());

  ASSERT_TRUE(fs_.Truncate(*h, 4096).ok());
  auto st_after = fs_.StatFs();
  ASSERT_TRUE(st_after.ok());
  // 599 data blocks + indirect tree blocks come back.
  EXPECT_GT(st_after->free_bytes, st_before->free_bytes + 598 * 4096);

  ASSERT_TRUE(fs_.Fsync(*h, false).ok());
  ExtLite remounted(&dev_, &clock_);
  ASSERT_TRUE(remounted.Mount().ok());
  auto st = remounted.Stat("/prune");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 4096u);
}

TEST_F(ExtLiteTest, BitmapsSurviveRemount) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(50 * 4096, 5);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_.Fsync(*h, false).ok());
  auto before = fs_.StatFs();
  ASSERT_TRUE(before.ok());

  ExtLite remounted(&dev_, &clock_);
  ASSERT_TRUE(remounted.Mount().ok());
  auto after = remounted.StatFs();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->free_bytes, before->free_bytes);
  EXPECT_EQ(after->free_inodes, before->free_inodes);
}

TEST_F(ExtLiteTest, CrashBeforeFsyncLosesDataKeepsConsistency) {
  dev_.EnableCrashSim(true);
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_.Fsync(*h, false).ok());
  auto data = Pattern(64 * 1024, 6);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  dev_.Crash();
  dev_.EnableCrashSim(false);

  ExtLite remounted(&dev_, &clock_);
  ASSERT_TRUE(remounted.Mount().ok());
  auto st = remounted.Stat("/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 0u);
}

class ExtCrashSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(ExtCrashSweep, MountAlwaysSucceedsAndBaselineSurvives) {
  SimClock clock;
  device::BlockDevice dev(device::DeviceProfile::ExosHdd(kDevSize), &clock);
  ExtLite fs(&dev, &clock);
  ASSERT_TRUE(fs.Format().ok());

  auto h = fs.Open("/base", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto base = Pattern(100 * 4096, 7);  // spans into the indirect tree
  ASSERT_TRUE(fs.Write(*h, 0, base.data(), base.size()).ok());
  ASSERT_TRUE(fs.Fsync(*h, false).ok());
  ASSERT_TRUE(fs.Close(*h).ok());

  dev.EnableCrashSim(true);
  dev.FailAfterWrites(GetParam());
  auto h2 = fs.Open("/victim", OpenFlags::kCreateRw);
  if (h2.ok()) {
    auto data = Pattern(200 * 4096, 8);
    (void)fs.Write(*h2, 0, data.data(), data.size());
    (void)fs.Fsync(*h2, false);
    (void)fs.Truncate(*h2, 4096);
  }
  (void)fs.Mkdir("/dir");
  dev.FailAfterWrites(-1);
  dev.Crash();
  dev.EnableCrashSim(false);

  ExtLite remounted(&dev, &clock);
  ASSERT_TRUE(remounted.Mount().ok()) << "cutoff " << GetParam();
  auto h3 = remounted.Open("/base", OpenFlags::kRead);
  ASSERT_TRUE(h3.ok()) << "cutoff " << GetParam();
  std::vector<uint8_t> out(base.size());
  auto r = remounted.Read(*h3, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, base.size()) << "cutoff " << GetParam();
  EXPECT_EQ(out, base) << "cutoff " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, ExtCrashSweep,
                         ::testing::Values(0, 1, 2, 4, 7, 11, 16, 22, 40, 80));

TEST_F(ExtLiteTest, HddReadaheadMakesSequentialCheap) {
  auto h = fs_.Open("/seq", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(128 * 4096, 9);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_.Fsync(*h, false).ok());
  ASSERT_TRUE(fs_.Sync().ok());

  ExtLite cold(&dev_, &clock_);
  ASSERT_TRUE(cold.Mount().ok());
  auto h2 = cold.Open("/seq", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok());
  std::vector<uint8_t> out(4096);
  // Prime the sequential detector, then measure per-read cost.
  ASSERT_TRUE(cold.Read(*h2, 0, 4096, out.data()).ok());
  ASSERT_TRUE(cold.Read(*h2, 4096, 4096, out.data()).ok());
  const SimTime t0 = clock_.Now();
  constexpr int kReads = 30;
  for (int i = 2; i < 2 + kReads; ++i) {
    ASSERT_TRUE(
        cold.Read(*h2, static_cast<uint64_t>(i) * 4096, 4096, out.data()).ok());
  }
  const SimTime per_read = (clock_.Now() - t0) / kReads;
  // Without readahead every 4K read would pay ~2ms rotational latency.
  // With a 32-page window most reads are cache hits.
  EXPECT_LT(per_read, 1'000'000u);  // < 1ms average
}

TEST_F(ExtLiteTest, MountRejectsForeignContent) {
  SimClock clock;
  device::BlockDevice blank(device::DeviceProfile::ExosHdd(16 << 20), &clock);
  ExtLite never_formatted(&blank, &clock);
  EXPECT_EQ(never_formatted.Mount().code(), ErrorCode::kCorruption);
}

TEST_F(ExtLiteTest, InodeExhaustionSurfaces) {
  // Use a tiny FS with very few inodes.
  SimClock clock;
  device::BlockDevice dev(device::DeviceProfile::ExosHdd(32 << 20), &clock);
  ExtLite::Options opts;
  opts.group_count = 2;
  opts.inode_blocks_per_group = 1;  // 16 inodes per group
  ExtLite small(&dev, &clock, opts);
  ASSERT_TRUE(small.Format().ok());
  Status last = Status::Ok();
  for (int i = 0; i < 64 && last.ok(); ++i) {
    last = small.Open("/f" + std::to_string(i), OpenFlags::kCreateRw).status();
  }
  EXPECT_EQ(last.code(), ErrorCode::kNoSpace);
}

}  // namespace
}  // namespace mux::fs
