// Tests for the shared DRAM page cache.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "src/common/clock.h"
#include "src/fs/fscommon/page_cache.h"

namespace mux::fs {
namespace {

// A backing store over a std::map so tests can observe load/store traffic.
class FakeStore : public BackingStore {
 public:
  Status LoadPage(vfs::InodeNum ino, uint64_t page, uint8_t* out) override {
    loads++;
    auto it = pages_.find({ino, page});
    if (it == pages_.end()) {
      std::memset(out, 0, kPageSize);
    } else {
      std::memcpy(out, it->second.data(), kPageSize);
    }
    return Status::Ok();
  }

  Status StorePage(vfs::InodeNum ino, uint64_t page,
                   const uint8_t* data) override {
    stores++;
    if (fail_stores) {
      return IoError("injected store failure");
    }
    pages_[{ino, page}].assign(data, data + kPageSize);
    return Status::Ok();
  }

  std::map<std::pair<vfs::InodeNum, uint64_t>, std::vector<uint8_t>> pages_;
  int loads = 0;
  int stores = 0;
  bool fail_stores = false;
};

class PageCacheTest : public ::testing::Test {
 protected:
  SimClock clock_;
  FakeStore store_;
  PageCache cache_{&store_, &clock_, /*capacity_pages=*/4};
};

TEST_F(PageCacheTest, ReadMissLoadsThenHits) {
  uint8_t buf[16];
  ASSERT_TRUE(cache_.ReadThrough(1, 0, 0, sizeof(buf), buf).ok());
  EXPECT_EQ(store_.loads, 1);
  ASSERT_TRUE(cache_.ReadThrough(1, 0, 100, sizeof(buf), buf).ok());
  EXPECT_EQ(store_.loads, 1);  // second read hits
  auto stats = cache_.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST_F(PageCacheTest, WriteThenReadBack) {
  const uint8_t data[] = {1, 2, 3, 4};
  ASSERT_TRUE(cache_.WriteThrough(1, 5, 10, sizeof(data), data).ok());
  uint8_t out[4] = {0};
  ASSERT_TRUE(cache_.ReadThrough(1, 5, 10, sizeof(out), out).ok());
  EXPECT_EQ(std::memcmp(out, data, 4), 0);
  // Dirty data has not reached the store yet (write-back, not write-through).
  EXPECT_EQ(store_.stores, 0);
}

TEST_F(PageCacheTest, FullPageWriteSkipsLoad) {
  std::vector<uint8_t> page(kPageSize, 0xee);
  ASSERT_TRUE(cache_.WriteThrough(1, 0, 0, kPageSize, page.data()).ok());
  EXPECT_EQ(store_.loads, 0);
  // Partial write to a new page must load for merge.
  ASSERT_TRUE(cache_.WriteThrough(1, 1, 7, 3, page.data()).ok());
  EXPECT_EQ(store_.loads, 1);
}

TEST_F(PageCacheTest, FlushWritesDirtyPages) {
  const uint8_t b = 0x42;
  ASSERT_TRUE(cache_.WriteThrough(1, 0, 0, 1, &b).ok());
  ASSERT_TRUE(cache_.WriteThrough(2, 0, 0, 1, &b).ok());
  ASSERT_TRUE(cache_.FlushInode(1).ok());
  EXPECT_EQ(store_.stores, 1);
  ASSERT_TRUE(cache_.FlushAll().ok());
  EXPECT_EQ(store_.stores, 2);
  // A second flush is a no-op: nothing dirty.
  ASSERT_TRUE(cache_.FlushAll().ok());
  EXPECT_EQ(store_.stores, 2);
}

TEST_F(PageCacheTest, EvictionWritesBackDirtyVictim) {
  const uint8_t b = 1;
  // Fill capacity (4 pages) with dirty pages, then touch a 5th.
  for (uint64_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(cache_.WriteThrough(1, p, 0, 1, &b).ok());
  }
  ASSERT_TRUE(cache_.WriteThrough(1, 4, 0, 1, &b).ok());
  EXPECT_EQ(store_.stores, 1);  // LRU victim (page 0) written back
  EXPECT_EQ(cache_.ResidentPages(), 4u);
  EXPECT_EQ(cache_.stats().evictions, 1u);
  // Reading page 0 again reloads the written-back content.
  uint8_t out = 0;
  ASSERT_TRUE(cache_.ReadThrough(1, 0, 0, 1, &out).ok());
  EXPECT_EQ(out, 1);
}

TEST_F(PageCacheTest, LruOrderRespectsAccess) {
  const uint8_t b = 1;
  for (uint64_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(cache_.WriteThrough(1, p, 0, 1, &b).ok());
  }
  // Touch page 0 so page 1 becomes LRU.
  uint8_t out;
  ASSERT_TRUE(cache_.ReadThrough(1, 0, 0, 1, &out).ok());
  ASSERT_TRUE(cache_.WriteThrough(1, 9, 0, 1, &b).ok());  // evicts page 1
  // Page 0 is still resident (no load needed).
  const int loads_before = store_.loads;
  ASSERT_TRUE(cache_.ReadThrough(1, 0, 0, 1, &out).ok());
  EXPECT_EQ(store_.loads, loads_before);
  // Page 1 is gone (load needed).
  ASSERT_TRUE(cache_.ReadThrough(1, 1, 0, 1, &out).ok());
  EXPECT_EQ(store_.loads, loads_before + 1);
}

TEST_F(PageCacheTest, ReadAheadPopulates) {
  ASSERT_TRUE(cache_.ReadAhead(3, 0, 3).ok());
  EXPECT_EQ(store_.loads, 3);
  uint8_t out;
  ASSERT_TRUE(cache_.ReadThrough(3, 1, 0, 1, &out).ok());
  EXPECT_EQ(store_.loads, 3);  // hit
}

TEST_F(PageCacheTest, InvalidateDropsDirtyData) {
  const uint8_t b = 9;
  ASSERT_TRUE(cache_.WriteThrough(1, 0, 0, 1, &b).ok());
  cache_.InvalidateInode(1);
  EXPECT_EQ(cache_.ResidentPages(), 0u);
  uint8_t out = 0xff;
  ASSERT_TRUE(cache_.ReadThrough(1, 0, 0, 1, &out).ok());
  EXPECT_EQ(out, 0);  // store never saw the write
}

TEST_F(PageCacheTest, InvalidateFromKeepsEarlierPages) {
  const uint8_t b = 9;
  ASSERT_TRUE(cache_.WriteThrough(1, 0, 0, 1, &b).ok());
  ASSERT_TRUE(cache_.WriteThrough(1, 3, 0, 1, &b).ok());
  cache_.InvalidateFrom(1, 2);
  EXPECT_EQ(cache_.ResidentPages(), 1u);
}

TEST_F(PageCacheTest, CrossPageAccessRejected) {
  uint8_t buf[8];
  EXPECT_EQ(cache_.ReadThrough(1, 0, kPageSize - 4, 8, buf).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(cache_.WriteThrough(1, 0, kPageSize, 1, buf).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(PageCacheTest, StoreFailureSurfaces) {
  const uint8_t b = 1;
  ASSERT_TRUE(cache_.WriteThrough(1, 0, 0, 1, &b).ok());
  store_.fail_stores = true;
  EXPECT_EQ(cache_.FlushAll().code(), ErrorCode::kIoError);
}

TEST_F(PageCacheTest, HitChargesCpuTime) {
  uint8_t out;
  ASSERT_TRUE(cache_.ReadThrough(1, 0, 0, 1, &out).ok());
  const SimTime t0 = clock_.Now();
  ASSERT_TRUE(cache_.ReadThrough(1, 0, 0, 1, &out).ok());
  EXPECT_GT(clock_.Now(), t0);
}

}  // namespace
}  // namespace mux::fs
