// AsyncIoCore unit + regression tests: exactly-once continuation delivery
// (success, EIO/ENOSPC failure, cancellation, rejection, shutdown fallback),
// the simulated queue-depth channel model, and the CompletionGroup join.
// The concurrency cases double as TSan regressions (wired into the CI tsan
// job next to parallel_stress_test).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/core/async_io.h"
#include "src/obs/metrics.h"

namespace mux::core {
namespace {

constexpr TierId kQueue = 7;

// A latch the tests use to pin a server thread inside fn.
class Gate {
 public:
  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

AsyncIoRequest MakeRequest(std::function<Status()> fn,
                           AsyncContinuation on_complete) {
  AsyncIoRequest request;
  request.queue = kQueue;
  request.bytes = 4096;
  request.fn = std::move(fn);
  request.on_complete = std::move(on_complete);
  return request;
}

TEST(AsyncIoCoreTest, CompletesSuccessfullyExactlyOnce) {
  SimClock clock;
  AsyncIoCore core(&clock);
  core.RegisterQueue(kQueue, "q", /*queue_depth=*/4, /*servers=*/2);

  std::atomic<int> calls{0};
  CompletionGroup group;
  for (int i = 0; i < 16; ++i) {
    auto ticket = core.Submit(MakeRequest(
        [&clock]() -> Status {
          clock.Advance(100);
          return Status::Ok();
        },
        group.Add([&calls](const AsyncCompletion& completion) {
          EXPECT_TRUE(completion.status.ok());
          EXPECT_FALSE(completion.cancelled);
          EXPECT_EQ(completion.service_ns(), 100u);
          calls.fetch_add(1);
        })));
    ASSERT_TRUE(ticket.ok());
  }
  const CompletionGroup::Joined joined = group.Await();
  EXPECT_EQ(calls.load(), 16);
  EXPECT_EQ(joined.completed, 16u);
  EXPECT_EQ(joined.failed, 0u);
  EXPECT_TRUE(joined.status.ok());
  core.Shutdown();
  const AsyncCoreStats stats = core.stats();
  EXPECT_EQ(stats.submitted, 16u);
  EXPECT_EQ(stats.completed, 16u);
  EXPECT_EQ(stats.failed, 0u);
}

// The tentpole quantity: a queue_depth-1 ring serializes a burst (HDD), a
// deep ring absorbs it (SSD). Same burst, same service time, different
// simulated completion horizon.
TEST(AsyncIoCoreTest, QueueDepthChangesSimulatedWait) {
  constexpr int kBurst = 8;
  constexpr SimTime kServiceNs = 1000;
  auto horizon = [&](uint32_t depth) -> SimTime {
    SimClock clock;
    AsyncIoCore core(&clock);
    core.RegisterQueue(kQueue, "q", depth, /*servers=*/2);
    SimClock* clock_ptr = &clock;
    CompletionGroup group;
    for (int i = 0; i < kBurst; ++i) {
      (void)core.Submit(MakeRequest(
          [clock_ptr]() -> Status {
            clock_ptr->Advance(kServiceNs);
            return Status::Ok();
          },
          group.Add()));
    }
    const CompletionGroup::Joined joined = group.Await();
    core.Shutdown();
    return joined.max_total_ns;
  };
  // Single channel: the burst serializes, the last request waits for the
  // seven before it. Deep queue: every request gets its own channel.
  EXPECT_EQ(horizon(1), kBurst * kServiceNs);
  EXPECT_EQ(horizon(16), kServiceNs);
}

TEST(AsyncIoCoreTest, ErrorCompletionResumesExactlyOnce) {
  SimClock clock;
  AsyncIoCore core(&clock);
  core.RegisterQueue(kQueue, "q", /*queue_depth=*/2);

  std::atomic<int> eio_calls{0};
  std::atomic<int> enospc_calls{0};
  CompletionGroup group;
  (void)core.Submit(MakeRequest(
      []() -> Status { return IoError("boom"); },
      group.Add([&eio_calls](const AsyncCompletion& completion) {
        EXPECT_EQ(completion.status.code(), ErrorCode::kIoError);
        EXPECT_FALSE(completion.cancelled);
        eio_calls.fetch_add(1);
      })));
  (void)core.Submit(MakeRequest(
      []() -> Status { return NoSpaceError("full"); },
      group.Add([&enospc_calls](const AsyncCompletion& completion) {
        EXPECT_EQ(completion.status.code(), ErrorCode::kNoSpace);
        enospc_calls.fetch_add(1);
      })));
  const CompletionGroup::Joined joined = group.Await();
  core.Shutdown();

  // Resumed with the error exactly once — no lost wakeup, no double-resume.
  EXPECT_EQ(eio_calls.load(), 1);
  EXPECT_EQ(enospc_calls.load(), 1);
  EXPECT_EQ(joined.completed, 2u);
  EXPECT_EQ(joined.failed, 2u);
  EXPECT_FALSE(joined.status.ok());
  EXPECT_EQ(core.stats().failed, 2u);
}

TEST(AsyncIoCoreTest, CancelBeforeDispatchResumesWithBusyExactlyOnce) {
  SimClock clock;
  AsyncIoCore core(&clock);
  core.RegisterQueue(kQueue, "q", /*queue_depth=*/1, /*servers=*/1);

  Gate gate;
  std::atomic<int> blocker_calls{0};
  std::atomic<int> victim_calls{0};
  CompletionGroup group;
  // Pin the only server inside the first request...
  (void)core.Submit(MakeRequest(
      [&gate]() -> Status {
        gate.Wait();
        return Status::Ok();
      },
      group.Add([&blocker_calls](const AsyncCompletion&) {
        blocker_calls.fetch_add(1);
      })));
  // ... so the second stays queued and can be cancelled (the op-timeout
  // path: an op abandons its submission before a server claims it).
  auto ticket = core.Submit(MakeRequest(
      []() -> Status { return Status::Ok(); },
      group.Add([&victim_calls](const AsyncCompletion& completion) {
        EXPECT_TRUE(completion.cancelled);
        EXPECT_EQ(completion.status.code(), ErrorCode::kBusy);
        victim_calls.fetch_add(1);
      })));
  ASSERT_TRUE(ticket.ok());

  // The server may still be between claim and gate; retry until the cancel
  // lands or the request demonstrably started (it can't here: one server,
  // gated).
  while (!core.Cancel(*ticket)) {
    std::this_thread::yield();
  }
  // Cancelling again must fail — the continuation already ran.
  EXPECT_FALSE(core.Cancel(*ticket));

  gate.Open();
  const CompletionGroup::Joined joined = group.Await();
  core.Shutdown();
  EXPECT_EQ(blocker_calls.load(), 1);
  EXPECT_EQ(victim_calls.load(), 1);
  EXPECT_EQ(joined.cancelled, 1u);
  EXPECT_EQ(core.stats().cancelled, 1u);
}

TEST(AsyncIoCoreTest, BoundedRingRejectsWithInlineCancelledCompletion) {
  SimClock clock;
  AsyncIoCore core(&clock);
  core.RegisterQueue(kQueue, "q", /*queue_depth=*/1, /*servers=*/1,
                     /*bound=*/1);

  Gate gate;
  CompletionGroup group;
  (void)core.Submit(MakeRequest(
      [&gate]() -> Status {
        gate.Wait();
        return Status::Ok();
      },
      group.Add()));
  // The server may not have claimed the first request yet; fill the ring
  // (bound 1) and then keep submitting until one rejects.
  std::atomic<int> rejected_calls{0};
  bool saw_reject = false;
  for (int i = 0; i < 3 && !saw_reject; ++i) {
    auto ticket = core.Submit(MakeRequest(
        []() -> Status { return Status::Ok(); },
        group.Add([&rejected_calls](const AsyncCompletion& completion) {
          if (completion.cancelled) {
            EXPECT_EQ(completion.status.code(), ErrorCode::kBusy);
            rejected_calls.fetch_add(1);
          }
        })));
    if (!ticket.ok()) {
      EXPECT_EQ(ticket.status().code(), ErrorCode::kBusy);
      saw_reject = true;
      // The rejection continuation ran inline, before Submit returned.
      EXPECT_EQ(rejected_calls.load(), 1);
    }
  }
  EXPECT_TRUE(saw_reject);
  gate.Open();
  (void)group.Await();  // every Add() fed, rejection included — no hang
  core.Shutdown();
  EXPECT_GE(core.stats().rejected, 1u);
}

TEST(AsyncIoCoreTest, UnknownQueueRunsInline) {
  SimClock clock;
  AsyncIoCore core(&clock);
  int calls = 0;
  auto ticket = core.Submit(MakeRequest(
      []() -> Status { return IoError("x"); },
      [&calls](const AsyncCompletion& completion) {
        EXPECT_FALSE(completion.status.ok());
        EXPECT_FALSE(completion.cancelled);
        calls++;
      }));
  ASSERT_TRUE(ticket.ok());
  // Inline fallback: already delivered on this thread by the time Submit
  // returns.
  EXPECT_EQ(calls, 1);
}

TEST(AsyncIoCoreTest, ShutdownDrainsPendingRequests) {
  SimClock clock;
  AsyncIoCore core(&clock);
  core.RegisterQueue(kQueue, "q", /*queue_depth=*/1, /*servers=*/1);
  std::atomic<int> calls{0};
  for (int i = 0; i < 32; ++i) {
    (void)core.Submit(MakeRequest([]() -> Status { return Status::Ok(); },
                                  [&calls](const AsyncCompletion&) {
                                    calls.fetch_add(1);
                                  }));
  }
  core.Shutdown();  // must deliver every continuation before returning
  EXPECT_EQ(calls.load(), 32);
}

TEST(AsyncIoCoreTest, ObservesQdepthAndWaitMetrics) {
  SimClock clock;
  obs::MetricsRegistry metrics;
  AsyncIoCore core(&clock, &metrics);
  core.RegisterQueue(kQueue, "ssd", /*queue_depth=*/1, /*servers=*/1);
  CompletionGroup group;
  for (int i = 0; i < 4; ++i) {
    (void)core.Submit(MakeRequest(
        [&clock]() -> Status {
          clock.Advance(500);
          return Status::Ok();
        },
        group.Add()));
  }
  (void)group.Await();
  core.Shutdown();
  EXPECT_EQ(metrics.HistogramValue("sched.qdepth.ssd").count(), 4u);
  const Histogram wait = metrics.HistogramValue("sched.qdepth.wait_ns");
  EXPECT_EQ(wait.count(), 4u);
  // Single channel: the fourth request waited for three services.
  EXPECT_EQ(wait.max(), 1500u);
  EXPECT_EQ(metrics.HistogramValue("sched.completion_wait_ns").count(), 4u);
}

// TSan regression: many submitters, two rings, a canceller, and the ledger
// must still show every continuation delivered exactly once.
TEST(AsyncIoCoreTest, ExactlyOnceUnderConcurrentSubmitAndCancel) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  constexpr int kTotal = kThreads * kPerThread;

  SimClock clock;
  AsyncIoCore core(&clock);
  core.RegisterQueue(kQueue, "a", /*queue_depth=*/2, /*servers=*/2);
  core.RegisterQueue(kQueue + 1, "b", /*queue_depth=*/8, /*servers=*/2);

  std::vector<std::atomic<int>> ledger(kTotal);
  std::atomic<uint64_t> delivered{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int id = t * kPerThread + i;
        AsyncIoRequest request;
        request.queue = kQueue + (id % 2);
        request.fn = [&clock, id]() -> Status {
          clock.Advance(10);
          return id % 7 == 0 ? IoError("synthetic") : Status::Ok();
        };
        request.on_complete = [&ledger, &delivered,
                               id](const AsyncCompletion&) {
          ledger[id].fetch_add(1);
          delivered.fetch_add(1);
        };
        auto ticket = core.Submit(std::move(request));
        ASSERT_TRUE(ticket.ok());
        if (id % 11 == 0) {
          // Cancellation either lands (continuation runs as cancelled) or
          // loses the race (continuation runs with the outcome) — exactly
          // one of the two, never both, never neither.
          (void)core.Cancel(*ticket);
        }
      }
    });
  }
  for (auto& t : submitters) {
    t.join();
  }
  while (delivered.load() < kTotal) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  core.Shutdown();
  for (int i = 0; i < kTotal; ++i) {
    EXPECT_EQ(ledger[i].load(), 1) << "op " << i;
  }
  const AsyncCoreStats stats = core.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kTotal));
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kTotal));
}

TEST(CompletionGroupTest, JoinAggregatesMaxAndFirstError) {
  SimClock clock;
  AsyncIoCore core(&clock);
  core.RegisterQueue(kQueue, "q", /*queue_depth=*/4, /*servers=*/2);
  CompletionGroup group;
  (void)core.Submit(MakeRequest(
      [&clock]() -> Status {
        clock.Advance(300);
        return Status::Ok();
      },
      group.Add()));
  (void)core.Submit(MakeRequest(
      [&clock]() -> Status {
        clock.Advance(900);
        return IoError("slow and broken");
      },
      group.Add()));
  const CompletionGroup::Joined joined = group.Await();
  core.Shutdown();
  EXPECT_EQ(joined.completed, 2u);
  EXPECT_EQ(joined.failed, 1u);
  EXPECT_FALSE(joined.status.ok());
  EXPECT_EQ(joined.max_total_ns, 900u);
  // Only the successful completion feeds the ok-max (the figure the
  // scheduler's round clock advances by).
  EXPECT_EQ(joined.max_ok_total_ns, 300u);
  EXPECT_EQ(joined.sum_service_ns, 1200u);
}

}  // namespace
}  // namespace mux::core
