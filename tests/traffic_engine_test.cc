// Traffic-engine and namespace-scalability tests (ISSUE 6).
//
// Three families:
//   * TrafficEngineTest — the open-loop engine end to end at reduced scale
//     (50k files, sub-second steps) with migrations, injected faults, and
//     checkpoints running concurrently: exactly-once op accounting, monotonic
//     offered-vs-completed progress, sane latency output.
//   * ChunkedScanTest — regression tests for the full-`inodes_` scans that
//     used to run under one ns_mu_ hold: policy rounds and checkpoints must
//     scan the creation-ordered file index in bounded chunks (observable via
//     the mux.ckpt.chunks / mux.policy.scan_chunks counters, which are zero
//     on pre-fix code) and must not serialize namespace mutations behind a
//     whole-namespace snapshot.
//   * AllocationTest — regression tests for per-op allocation churn: a
//     steady-state Stat must not allocate (Resolve used to build a
//     vector<string> of path components per call) and ReadDirPaged's
//     allocations must be bounded by the page size, not the directory size.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/traffic_engine_lib.h"
#include "src/core/mux.h"
#include "src/vfs/types.h"
#include "tests/mux_rig.h"

// ---- allocation counting ---------------------------------------------------
// Global operator new override, counting only while the calling thread opts
// in. gtest, the engine threads, and everything else allocate freely without
// touching the counters.
namespace {
thread_local bool t_count_allocs = false;
std::atomic<uint64_t> g_alloc_calls{0};
std::atomic<uint64_t> g_alloc_bytes{0};

struct AllocationScope {
  AllocationScope() {
    g_alloc_calls.store(0, std::memory_order_relaxed);
    g_alloc_bytes.store(0, std::memory_order_relaxed);
    t_count_allocs = true;
  }
  ~AllocationScope() { t_count_allocs = false; }
  static uint64_t calls() {
    return g_alloc_calls.load(std::memory_order_relaxed);
  }
  static uint64_t bytes() {
    return g_alloc_bytes.load(std::memory_order_relaxed);
  }
};
}  // namespace

void* operator new(std::size_t size) {
  if (t_count_allocs) {
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mux {
namespace {

using bench::TrafficConfig;
using bench::TrafficEngine;
using bench::TrafficResult;

// ---- traffic engine --------------------------------------------------------

TrafficConfig TestConfig() {
  TrafficConfig config;
  config.files = 50'000;
  config.data_files = 2'000;
  config.workers = 4;
  config.calibrate_ms = 100;
  config.step_ms = 300;
  config.warmup_ms = 100;
  config.bucket_ms = 50;
  config.load_fractions = {0.5, 1.2};  // one underload, one overload step
  config.chaos = true;
  config.track_ops = true;
  config.seed = 20260808;
  return config;
}

TEST(TrafficEngineTest, ExactlyOnceUnderChaos) {
  TrafficConfig config = TestConfig();
  TrafficEngine engine(config);
  TrafficResult result = engine.Run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.files_created, config.files);
  EXPECT_GT(result.capacity_ops_s, 0.0);

  // Quiet + chaos variant of each load step.
  ASSERT_EQ(result.steps.size(), 2 * config.load_fractions.size());
  for (const auto& step : result.steps) {
    SCOPED_TRACE(::testing::Message()
                 << step.load_fraction << "x "
                 << (step.chaos ? "chaos" : "quiet"));
    // Zero lost, zero duplicated, and offered == completed + dropped. This
    // is the engine's core invariant: every generated op is executed exactly
    // once or dropped exactly once, even while migrations, faults, and
    // checkpoints run concurrently.
    EXPECT_EQ(step.lost_ops, 0u);
    EXPECT_EQ(step.duplicated_ops, 0u);
    EXPECT_TRUE(step.accounting_exact);
    EXPECT_EQ(step.generated,
              step.completed_ok + step.completed_err + step.dropped);
    EXPECT_GT(step.generated, 0u);
    EXPECT_GT(step.completed_ok, 0u);
    if (step.completed_ok > 0) {
      EXPECT_GT(step.p99_ns, 0.0);
      EXPECT_GE(step.p99_ns, step.p50_ns);
      EXPECT_GE(step.p999_ns, step.p99_ns);
    }
  }

  // The chaos machinery actually ran while traffic flowed.
  EXPECT_GT(result.policy_rounds, 0u);
  EXPECT_GT(result.checkpoints_ok + result.checkpoints_failed, 0u);
  EXPECT_EQ(result.checkpoints_failed, 0u);

  // Offered-vs-completed progress is monotonic across every sample of the
  // whole run, including step boundaries.
  for (size_t i = 1; i < result.progress.size(); ++i) {
    EXPECT_GE(result.progress[i].generated, result.progress[i - 1].generated);
    EXPECT_GE(result.progress[i].dropped, result.progress[i - 1].dropped);
    EXPECT_GE(result.progress[i].completed,
              result.progress[i - 1].completed);
  }
}

TEST(TrafficEngineTest, OverloadDropsInsteadOfBlocking) {
  // A queue far smaller than the burst the dispatcher emits at an offered
  // load above capacity: the engine must shed load (counted drops), never
  // deadlock or lose accounting.
  TrafficConfig config = TestConfig();
  config.files = 5'000;
  config.data_files = 500;
  config.queue_capacity = 64;
  config.load_fractions = {3.0};
  config.chaos = false;
  config.step_ms = 200;
  TrafficEngine engine(config);
  TrafficResult result = engine.Run();
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.steps.size(), 1u);
  const auto& step = result.steps[0];
  EXPECT_GT(step.dropped, 0u);
  EXPECT_TRUE(step.accounting_exact);
  EXPECT_EQ(step.lost_ops, 0u);
  EXPECT_EQ(step.duplicated_ops, 0u);
}

// Regression for the drop/claim double-count: the ledger accumulates marks
// (+1 execute, +kDropMark drop) instead of storing a sentinel, so an op
// that is both dropped AND executed is classified as duplicated — the old
// store() scored it as a clean drop.
TEST(TrafficEngineTest, TallyLedgerClassifiesMarks) {
  constexpr uint64_t kN = 6;
  std::atomic<uint8_t> counts[kN];
  counts[0].store(1);                             // executed once: clean
  counts[1].store(TrafficEngine::kDropMark);      // dropped once: clean
  counts[2].store(0);                             // lost
  counts[3].store(2);                             // executed twice
  counts[4].store(TrafficEngine::kDropMark + 1);  // dropped AND executed
  counts[5].store(1);
  const TrafficEngine::LedgerTally tally =
      TrafficEngine::TallyLedger(counts, kN);
  EXPECT_EQ(tally.dropped, 1u);
  EXPECT_EQ(tally.lost, 1u);
  EXPECT_EQ(tally.duplicated, 2u);
}

// Async (submission/completion) client path: same exactly-once invariant as
// the worker-threads path, plus the queue-depth observables.
TEST(TrafficEngineTest, AsyncModeExactlyOnceWithQdepth) {
  TrafficConfig config = TestConfig();
  config.files = 10'000;
  config.data_files = 1'000;
  config.async_mode = true;
  config.load_fractions = {0.5, 1.2};
  TrafficEngine engine(config);
  TrafficResult result = engine.Run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.async_capacity_ops_s, 0.0);
  ASSERT_EQ(result.steps.size(), 2 * config.load_fractions.size());
  for (const auto& step : result.steps) {
    SCOPED_TRACE(::testing::Message()
                 << step.load_fraction << "x "
                 << (step.chaos ? "chaos" : "quiet"));
    EXPECT_EQ(step.lost_ops, 0u);
    EXPECT_EQ(step.duplicated_ops, 0u);
    EXPECT_TRUE(step.accounting_exact);
    EXPECT_EQ(step.generated,
              step.completed_ok + step.completed_err + step.dropped);
    EXPECT_GT(step.completed_ok, 0u);
    // The ledger's drop count and the engine's drop counter agree (both
    // asserted inside accounting_exact, restated here for the report).
    EXPECT_EQ(step.ledger_dropped, step.dropped);
    EXPECT_GE(step.max_qdepth, static_cast<uint64_t>(step.mean_qdepth));
  }
}

// ---- chunked namespace scans (satellite: full-inodes_ scans under ns_mu_) --

constexpr uint64_t kManyFiles = 6'000;  // > Mux's 4096-entry scan chunk

void PopulateFlat(core::Mux& mux, uint64_t files) {
  ASSERT_TRUE(mux.Mkdir("/flat").ok());
  std::vector<uint8_t> block(4096, 0x42);
  for (uint64_t i = 0; i < files; ++i) {
    char path[32];
    std::snprintf(path, sizeof(path), "/flat/f%06llu",
                  static_cast<unsigned long long>(i));
    auto handle = mux.Open(path, vfs::OpenFlags::kCreateRw);
    ASSERT_TRUE(handle.ok()) << path;
    if (i < 64) {  // a few data-backed files so policy rounds have work
      ASSERT_TRUE(mux.Write(*handle, 0, block.data(), block.size()).ok());
    }
    ASSERT_TRUE(mux.Close(*handle).ok());
  }
}

TEST(ChunkedScanTest, CheckpointScansInBoundedChunks) {
  testing::MuxRig rig;
  ASSERT_TRUE(rig.ok());
  PopulateFlat(rig.mux(), kManyFiles);

  ASSERT_TRUE(rig.mux().Checkpoint().ok());
  // Pre-fix code built the snapshot in one pass over inodes_ under a single
  // shared ns_mu_ hold: no chunk counter existed and nothing bounded the
  // hold. Post-fix, a >4096-file namespace must take >= 2 chunks.
  EXPECT_GE(rig.mux().metrics().CounterValue("mux.ckpt.chunks"), 2u);
  // Every file (plus the directory) made it into the snapshot.
  EXPECT_GE(rig.mux().metrics().CounterValue("mux.ckpt.files"),
            kManyFiles + 1);

  // And the snapshot is a valid recovery point.
  ASSERT_TRUE(rig.Remount().ok());
  auto stat = rig.mux().Stat("/flat/f000000");
  ASSERT_TRUE(stat.ok());
}

TEST(ChunkedScanTest, PolicyRoundScansInBoundedChunks) {
  testing::MuxRig rig;
  ASSERT_TRUE(rig.ok());
  PopulateFlat(rig.mux(), kManyFiles);

  ASSERT_TRUE(rig.mux().RunPolicyMigrations().ok());
  EXPECT_GE(rig.mux().metrics().CounterValue("mux.policy.scan_chunks"), 2u);
}

// Namespace mutations must not serialize behind a whole-namespace snapshot:
// while checkpoints run back to back over a large population, concurrent
// creates, unlinks, and renames all complete, and the worst create stall
// stays far below the time a full snapshot takes. Pre-fix, every create
// waited for any in-flight checkpoint's full shared-lock scan.
TEST(ChunkedScanTest, MutationsProceedDuringCheckpoint) {
  testing::MuxRig rig;
  ASSERT_TRUE(rig.ok());
  PopulateFlat(rig.mux(), kManyFiles);
  core::Mux& mux = rig.mux();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> checkpoints{0};
  std::thread ckpt([&] {
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_TRUE(mux.Checkpoint().ok());
      checkpoints.fetch_add(1, std::memory_order_relaxed);
    }
  });

  uint64_t max_create_ns = 0;
  // At least 200 mutations, and keep mutating until the background thread
  // has landed at least one full checkpoint (on a loaded single-core CI
  // runner the first 6000-file checkpoint can outlast 200 creates).
  constexpr int kMinMutations = 200;
  constexpr int kMaxMutations = 100'000;
  for (int i = 0;
       i < kMinMutations || (checkpoints.load() == 0 && i < kMaxMutations);
       ++i) {
    char path[32];
    std::snprintf(path, sizeof(path), "/mut%04d", i);
    const auto start = std::chrono::steady_clock::now();
    auto handle = mux.Open(path, vfs::OpenFlags::kCreateRw);
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    max_create_ns =
        std::max<uint64_t>(max_create_ns, static_cast<uint64_t>(elapsed));
    ASSERT_TRUE(handle.ok()) << path;
    ASSERT_TRUE(mux.Close(*handle).ok());
    if (i % 3 == 0) {
      char to[32];
      std::snprintf(to, sizeof(to), "/mut%04d.r", i);
      ASSERT_TRUE(mux.Rename(path, to).ok());
      ASSERT_TRUE(mux.Unlink(to).ok());
    }
  }
  stop.store(true, std::memory_order_release);
  ckpt.join();
  EXPECT_GT(checkpoints.load(), 0u);

  // The destructive mutations above force the lock-free snapshot attempts to
  // retry or fall back; either way the checkpoints succeeded (asserted in
  // the loop) and the namespace is intact.
  auto stat = mux.Stat("/flat/f005999");
  ASSERT_TRUE(stat.ok());
  (void)max_create_ns;  // timing is reported, not asserted: 1-core CI
}

// ---- allocation churn (satellite: Resolve / ReadDir allocations) -----------

TEST(AllocationTest, SteadyStateStatDoesNotAllocate) {
  testing::MuxRig rig;
  ASSERT_TRUE(rig.ok());
  core::Mux& mux = rig.mux();
  ASSERT_TRUE(mux.Mkdir("/adir").ok());
  ASSERT_TRUE(mux.Mkdir("/adir/deep").ok());
  auto handle = mux.Open("/adir/deep/target", vfs::OpenFlags::kCreateRw);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(mux.Close(*handle).ok());

  const std::string path = "/adir/deep/target";
  // Warm up any lazy metric/trace state.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(mux.Stat(path).ok());
  }

  constexpr int kOps = 100;
  uint64_t calls;
  {
    AllocationScope scope;
    for (int i = 0; i < kOps; ++i) {
      auto stat = mux.Stat(path);
      ASSERT_TRUE(stat.ok());
    }
    calls = AllocationScope::calls();
  }
  // Pre-fix, Resolve built a vector<string> of components per call: >= 1
  // allocation per Stat (>= 100 here). Post-fix the resolve path is a
  // string_view cursor over the stored path — zero allocations; the bound
  // leaves slack only for incidental observability state.
  EXPECT_LT(calls, kOps / 2) << "Stat allocating per call again";
}

TEST(AllocationTest, ReadDirPagedAllocationsBoundedByPageSize) {
  testing::MuxRig rig;
  ASSERT_TRUE(rig.ok());
  core::Mux& mux = rig.mux();
  ASSERT_TRUE(mux.Mkdir("/big").ok());
  constexpr int kEntries = 3'000;
  for (int i = 0; i < kEntries; ++i) {
    char path[32];
    std::snprintf(path, sizeof(path), "/big/e%05d", i);
    auto handle = mux.Open(path, vfs::OpenFlags::kCreateRw);
    ASSERT_TRUE(handle.ok());
    ASSERT_TRUE(mux.Close(*handle).ok());
  }

  // Full ReadDir materialises all 3000 entries.
  uint64_t full_bytes;
  {
    AllocationScope scope;
    auto all = mux.ReadDir("/big");
    ASSERT_TRUE(all.ok());
    ASSERT_EQ(all->size(), static_cast<size_t>(kEntries));
    full_bytes = AllocationScope::bytes();
  }

  // One 32-entry page allocates proportionally to the page, regardless of
  // the 3000-entry directory behind it.
  uint64_t page_bytes;
  {
    AllocationScope scope;
    auto page = mux.ReadDirPaged("/big", "", 32);
    ASSERT_TRUE(page.ok());
    ASSERT_EQ(page->size(), 32u);
    page_bytes = AllocationScope::bytes();
  }
  EXPECT_LT(page_bytes * 10, full_bytes)
      << "paged listing allocates like a full listing (page " << page_bytes
      << "B vs full " << full_bytes << "B)";
  EXPECT_LT(page_bytes, 16u * 1024u);
}

TEST(ReadDirPagedTest, PaginationCoversDirectoryExactlyOnce) {
  testing::MuxRig rig;
  ASSERT_TRUE(rig.ok());
  core::Mux& mux = rig.mux();
  ASSERT_TRUE(mux.Mkdir("/pg").ok());
  constexpr int kEntries = 257;  // not a multiple of the page size
  for (int i = 0; i < kEntries; ++i) {
    char path[32];
    std::snprintf(path, sizeof(path), "/pg/x%04d", i);
    auto handle = mux.Open(path, vfs::OpenFlags::kCreateRw);
    ASSERT_TRUE(handle.ok());
    ASSERT_TRUE(mux.Close(*handle).ok());
  }

  std::set<std::string> seen;
  std::string cursor;
  std::string last;
  for (;;) {
    auto page = mux.ReadDirPaged("/pg", cursor, 50);
    ASSERT_TRUE(page.ok());
    if (page->empty()) {
      break;
    }
    EXPECT_LE(page->size(), 50u);
    for (const auto& entry : *page) {
      EXPECT_GT(entry.name, last) << "entries out of order across pages";
      last = entry.name;
      EXPECT_TRUE(seen.insert(entry.name).second)
          << "duplicate entry " << entry.name;
    }
    cursor = page->back().name;
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kEntries));

  // Paging past the end and from a mid-point both behave.
  auto tail = mux.ReadDirPaged("/pg", "x0255", 50);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->size(), 1u);
  EXPECT_EQ((*tail)[0].name, "x0256");
  auto nothing = mux.ReadDirPaged("/pg", "x9999", 50);
  ASSERT_TRUE(nothing.ok());
  EXPECT_TRUE(nothing->empty());

  auto missing = mux.ReadDirPaged("/pg/none", "", 10);
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace mux
