// Full-stack Mux tests: the complete Figure 1(b) stack — Mux over
// novafs/xfslite/extlite over simulated PM/SSD/HDD.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/vfs/vfs.h"
#include "tests/mux_rig.h"

namespace mux::testing {
namespace {

using core::Mux;
using core::kInvalidTier;
using vfs::OpenFlags;

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Rng rng(seed);
  rng.Fill(v.data(), n);
  return v;
}

class MuxTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(rig_.ok()); }
  MuxRig rig_;
};

TEST_F(MuxTest, WriteLandsOnFastTierByDefault) {
  auto& mux = rig_.mux();
  auto h = mux.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok()) << h.status();
  auto data = Pattern(64 * 1024, 1);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  auto breakdown = mux.FileTierBreakdown("/f");
  ASSERT_TRUE(breakdown.ok());
  ASSERT_EQ(breakdown->size(), 1u);
  EXPECT_EQ(breakdown->begin()->first, rig_.pm_tier());
  EXPECT_EQ(breakdown->begin()->second, 16u);  // 64K = 16 blocks

  // The shadow file exists on the PM file system with the same path.
  EXPECT_TRUE(rig_.novafs().Stat("/f").ok());
  EXPECT_FALSE(rig_.xfslite().Stat("/f").ok());
}

TEST_F(MuxTest, MigrationMovesBlocksBetweenAnyTiers) {
  auto& mux = rig_.mux();
  auto h = mux.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(256 * 1024, 2);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());

  // All six ordered pairs, exercised in sequence.
  const core::TierId tiers[] = {rig_.pm_tier(), rig_.ssd_tier(),
                                rig_.hdd_tier()};
  for (core::TierId to : {tiers[1], tiers[2], tiers[0], tiers[2], tiers[1],
                          tiers[0]}) {
    ASSERT_TRUE(mux.MigrateFile("/f", to).ok()) << "to tier " << to;
    auto breakdown = mux.FileTierBreakdown("/f");
    ASSERT_TRUE(breakdown.ok());
    ASSERT_EQ(breakdown->size(), 1u);
    EXPECT_EQ(breakdown->begin()->first, to);
    // Content intact after every hop.
    std::vector<uint8_t> out(data.size());
    auto r = mux.Read(*h, 0, out.size(), out.data());
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(out, data);
  }
}

TEST_F(MuxTest, MigrationFreesSourceSpace) {
  auto& mux = rig_.mux();
  auto h = mux.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(4 << 20, 3);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  auto pm_before = rig_.novafs().StatFs();
  ASSERT_TRUE(pm_before.ok());
  ASSERT_TRUE(mux.MigrateFile("/f", rig_.ssd_tier()).ok());
  auto pm_after = rig_.novafs().StatFs();
  ASSERT_TRUE(pm_after.ok());
  // The 4 MiB came back to PM (hole punching on the shadow).
  EXPECT_GE(pm_after->free_bytes, pm_before->free_bytes + (4 << 20) - 65536);
}

TEST_F(MuxTest, FileSpansMultipleTiers) {
  auto& mux = rig_.mux();
  auto h = mux.Open("/spread", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(12 * 4096, 4);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  // Move the middle third to SSD and the last third to HDD.
  ASSERT_TRUE(mux.MigrateRange("/spread", 4, 4, rig_.ssd_tier()).ok());
  ASSERT_TRUE(mux.MigrateRange("/spread", 8, 4, rig_.hdd_tier()).ok());
  auto breakdown = mux.FileTierBreakdown("/spread");
  ASSERT_TRUE(breakdown.ok());
  EXPECT_EQ(breakdown->size(), 3u);
  EXPECT_EQ((*breakdown)[rig_.pm_tier()], 4u);
  EXPECT_EQ((*breakdown)[rig_.ssd_tier()], 4u);
  EXPECT_EQ((*breakdown)[rig_.hdd_tier()], 4u);

  // One read crosses all three file systems and merges correctly.
  std::vector<uint8_t> out(data.size());
  auto r = mux.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data.size());
  EXPECT_EQ(out, data);
  EXPECT_GE(mux.stats().split_segments, 2u);

  // Overwrites go to the tier that owns each block (in-place).
  auto patch = Pattern(8192, 5);
  ASSERT_TRUE(mux.Write(*h, 5 * 4096, patch.data(), patch.size()).ok());
  auto breakdown2 = mux.FileTierBreakdown("/spread");
  ASSERT_TRUE(breakdown2.ok());
  EXPECT_EQ((*breakdown2)[rig_.ssd_tier()], 4u);  // unchanged distribution
  std::vector<uint8_t> out2(patch.size());
  ASSERT_TRUE(mux.Read(*h, 5 * 4096, out2.size(), out2.data()).ok());
  EXPECT_EQ(out2, patch);
}

TEST_F(MuxTest, MetadataAffinityTracksOwners) {
  auto& mux = rig_.mux();
  auto h = mux.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(8 * 4096, 6);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  // Everything written to PM: PM owns size and mtime.
  // Move the tail block to HDD; an append through HDD hands it the size.
  ASSERT_TRUE(mux.MigrateRange("/f", 7, 1, rig_.hdd_tier()).ok());
  auto tail = Pattern(4096, 7);
  ASSERT_TRUE(mux.Write(*h, 7 * 4096, tail.data(), tail.size()).ok());
  auto st = mux.FStat(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 8u * 4096);
  // Stat is served from the collective inode while the PM shadow no longer
  // holds the whole file (its tail block was punched out by the migration).
  EXPECT_EQ(rig_.novafs().Stat("/f")->allocated_bytes, 7u * 4096);
}

TEST_F(MuxTest, FsyncFansOutToParticipatingTiers) {
  auto& mux = rig_.mux();
  auto h = mux.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(8 * 4096, 8);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(mux.MigrateRange("/f", 4, 4, rig_.ssd_tier()).ok());
  // Dirty the SSD-resident half so its page cache holds data.
  ASSERT_TRUE(mux.Write(*h, 5 * 4096, data.data(), 4096).ok());
  const auto ssd_flushes_before = rig_.ssd_dev().stats().flushes;
  ASSERT_TRUE(mux.Fsync(*h, false).ok());
  EXPECT_GT(rig_.ssd_dev().stats().flushes, ssd_flushes_before);
}

TEST_F(MuxTest, LruPolicyEvictsWhenPmFills) {
  // Small PM so the watermark trips quickly.
  MuxRig::Sizes sizes;
  sizes.pm_bytes = 16 << 20;
  MuxRig rig({}, sizes);
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  // Write 3 files of 6 MiB each = 18 MiB > PM capacity.
  for (int i = 0; i < 3; ++i) {
    auto h = mux.Open("/f" + std::to_string(i), OpenFlags::kCreateRw);
    ASSERT_TRUE(h.ok());
    auto data = Pattern(6 << 20, i);
    ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
    ASSERT_TRUE(mux.Close(*h).ok());
    rig.clock().Advance(1'000'000'000);
    ASSERT_TRUE(mux.RunPolicyMigrations().ok());
  }
  // Everything is still readable and at least one file left PM.
  uint64_t off_pm_blocks = 0;
  for (int i = 0; i < 3; ++i) {
    auto breakdown = mux.FileTierBreakdown("/f" + std::to_string(i));
    ASSERT_TRUE(breakdown.ok());
    for (const auto& [tier, blocks] : *breakdown) {
      if (tier != rig.pm_tier()) {
        off_pm_blocks += blocks;
      }
    }
    auto h = mux.Open("/f" + std::to_string(i), OpenFlags::kRead);
    ASSERT_TRUE(h.ok());
    auto expected = Pattern(6 << 20, i);
    std::vector<uint8_t> out(expected.size());
    auto r = mux.Read(*h, 0, out.size(), out.data());
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(out, expected) << i;
  }
  EXPECT_GT(off_pm_blocks, 0u);
}

TEST_F(MuxTest, NoSpaceFallsDownTheHierarchy) {
  MuxRig::Sizes sizes;
  sizes.pm_bytes = 8 << 20;
  MuxRig rig({}, sizes);
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto h = mux.Open("/big", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  // 32 MiB into a stack whose PM holds 8 MiB: the write itself must
  // overflow to lower tiers even without a migration round.
  auto data = Pattern(32 << 20, 9);
  auto w = mux.Write(*h, 0, data.data(), data.size());
  ASSERT_TRUE(w.ok()) << w.status();
  auto breakdown = mux.FileTierBreakdown("/big");
  ASSERT_TRUE(breakdown.ok());
  EXPECT_GT(breakdown->size(), 1u);
  std::vector<uint8_t> out(data.size());
  auto r = mux.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

TEST_F(MuxTest, CheckpointRecoverRoundTrip) {
  auto& mux = rig_.mux();
  ASSERT_TRUE(mux.Mkdir("/d").ok());
  auto h = mux.Open("/d/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(10 * 4096, 10);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(mux.MigrateRange("/d/f", 5, 5, rig_.hdd_tier()).ok());
  ASSERT_TRUE(mux.Close(*h).ok());
  ASSERT_TRUE(mux.Checkpoint().ok());

  // Restart Mux over the same file systems.
  ASSERT_TRUE(rig_.Remount().ok());
  auto& mux2 = rig_.mux();
  auto st = mux2.Stat("/d/f");
  ASSERT_TRUE(st.ok()) << st.status();
  EXPECT_EQ(st->size, 10u * 4096);
  auto breakdown = mux2.FileTierBreakdown("/d/f");
  ASSERT_TRUE(breakdown.ok());
  EXPECT_EQ((*breakdown)[rig_.pm_tier()], 5u);
  EXPECT_EQ((*breakdown)[rig_.hdd_tier()], 5u);
  auto h2 = mux2.Open("/d/f", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok());
  std::vector<uint8_t> out(data.size());
  auto r = mux2.Read(*h2, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

TEST_F(MuxTest, RuntimeTierRemoval) {
  auto& mux = rig_.mux();
  auto h = mux.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(1 << 20, 11);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  // Data is on PM; remove the PM tier at runtime.
  ASSERT_TRUE(mux.RemoveTier("pm").ok());
  EXPECT_FALSE(mux.TierByName("pm").ok());
  auto breakdown = mux.FileTierBreakdown("/f");
  ASSERT_TRUE(breakdown.ok());
  EXPECT_FALSE(breakdown->contains(rig_.pm_tier()));
  std::vector<uint8_t> out(data.size());
  auto r = mux.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

TEST_F(MuxTest, ScmCacheServesRepeatedReads) {
  Mux::Options options;
  options.enable_scm_cache = true;
  options.cache.capacity_blocks = 512;
  options.cache.admission_threshold = 1;
  MuxRig rig(std::move(options));
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto h = mux.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(64 * 4096, 12);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(mux.MigrateFile("/f", rig.hdd_tier()).ok());

  // First pass misses + admits; second pass hits.
  std::vector<uint8_t> out(4096);
  for (int pass = 0; pass < 2; ++pass) {
    for (int b = 0; b < 64; ++b) {
      ASSERT_TRUE(
          mux.Read(*h, static_cast<uint64_t>(b) * 4096, 4096, out.data()).ok());
    }
  }
  auto stats = mux.CacheStats();
  EXPECT_GE(stats.admissions, 60u);
  EXPECT_GE(stats.hits, 60u);
  // Cached content is correct.
  std::vector<uint8_t> full(data.size());
  auto r = mux.Read(*h, 0, full.size(), full.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(full, data);
}

TEST_F(MuxTest, CacheStaysCoherentWithWrites) {
  Mux::Options options;
  options.enable_scm_cache = true;
  options.cache.admission_threshold = 1;
  MuxRig rig(std::move(options));
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto h = mux.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(4096, 13);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(mux.MigrateFile("/f", rig.ssd_tier()).ok());
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(mux.Read(*h, 0, 4096, out.data()).ok());  // admit
  ASSERT_TRUE(mux.Read(*h, 0, 4096, out.data()).ok());  // hit
  // Overwrite through Mux; the cached copy must be updated (write-through).
  auto update = Pattern(1000, 14);
  ASSERT_TRUE(mux.Write(*h, 100, update.data(), update.size()).ok());
  ASSERT_TRUE(mux.Read(*h, 0, 4096, out.data()).ok());
  std::vector<uint8_t> expected = data;
  std::copy(update.begin(), update.end(), expected.begin() + 100);
  EXPECT_EQ(out, expected);
}

// Regression: shrinking a file used to call InvalidateFile, flushing every
// cached block; now only blocks at/after the new EOF are dropped, so the
// surviving prefix stays hot across a truncate.
TEST_F(MuxTest, TruncateKeepsCachedPrefix) {
  Mux::Options options;
  options.enable_scm_cache = true;
  options.cache.capacity_blocks = 256;
  options.cache.admission_threshold = 1;
  MuxRig rig(std::move(options));
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto h = mux.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  constexpr uint64_t kBlocks = 100;
  auto data = Pattern(kBlocks * 4096, 21);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(mux.MigrateFile("/f", rig.hdd_tier()).ok());

  // Admit every block (threshold 1: one missed pass suffices).
  std::vector<uint8_t> out(4096);
  for (uint64_t b = 0; b < kBlocks; ++b) {
    ASSERT_TRUE(mux.Read(*h, b * 4096, 4096, out.data()).ok());
  }
  const auto warm = mux.CacheStats();
  ASSERT_GE(warm.admissions, kBlocks - 5);

  ASSERT_TRUE(mux.Truncate(*h, 50 * 4096).ok());
  const auto after_shrink = mux.CacheStats();
  // Only the truncated half was invalidated...
  EXPECT_GE(after_shrink.invalidations + after_shrink.agg_cancelled,
            warm.admissions / 2 - 5);
  EXPECT_LE(after_shrink.invalidations, 55u);

  // ...so block 0 is still served from the cache, not the HDD.
  ASSERT_TRUE(mux.Read(*h, 0, 4096, out.data()).ok());
  EXPECT_EQ(mux.CacheStats().hits, after_shrink.hits + 1);
  EXPECT_EQ(std::memcmp(out.data(), data.data(), 4096), 0);
}

TEST_F(MuxTest, MountsUnderVfsLikeAnyFileSystem) {
  // Figure 1(b): applications reach Mux through the VFS router.
  vfs::Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/mux", &rig_.mux()).ok());
  auto h = vfs.Open("/mux/app_file", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(10000, 15);
  ASSERT_TRUE(vfs.Write(*h, 0, data.data(), data.size()).ok());
  std::vector<uint8_t> out(data.size());
  auto r = vfs.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(vfs.Close(*h).ok());
}

TEST_F(MuxTest, PinPolicyRoutesByPrefix) {
  Mux::Options options;
  options.policy = "pin";
  options.policy_args = "/archive=hdd,/hot=pm";
  MuxRig rig(std::move(options));
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  ASSERT_TRUE(mux.Mkdir("/archive").ok());
  ASSERT_TRUE(mux.Mkdir("/hot").ok());
  auto data = Pattern(8 * 4096, 16);
  for (const char* path : {"/archive/a", "/hot/b"}) {
    auto h = mux.Open(path, OpenFlags::kCreateRw);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  }
  auto archive = mux.FileTierBreakdown("/archive/a");
  auto hot = mux.FileTierBreakdown("/hot/b");
  ASSERT_TRUE(archive.ok());
  ASSERT_TRUE(hot.ok());
  EXPECT_TRUE(archive->contains(rig.hdd_tier()));
  EXPECT_TRUE(hot->contains(rig.pm_tier()));
}

// ---- OCC migration under concurrent writers ----------------------------------------

TEST_F(MuxTest, OccMigrationNeverLosesConcurrentWrites) {
  auto& mux = rig_.mux();
  auto h = mux.Open("/contended", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  constexpr uint64_t kBlocks = 128;
  auto base = Pattern(kBlocks * 4096, 17);
  ASSERT_TRUE(mux.Write(*h, 0, base.data(), base.size()).ok());

  // Writer thread: keeps stamping block headers with increasing sequence
  // numbers while the file migrates back and forth.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> last_seq{0};
  std::thread writer([&] {
    Rng rng(18);
    uint64_t seq = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t block = rng.Below(kBlocks);
      uint8_t stamp[16];
      ++seq;
      std::memcpy(stamp, &block, 8);
      std::memcpy(stamp + 8, &seq, 8);
      auto w = mux.Write(*h, block * 4096, stamp, sizeof(stamp));
      if (!w.ok()) {
        break;
      }
      last_seq.store(seq, std::memory_order_relaxed);
    }
  });

  // Migrate the file across tiers repeatedly while the writer runs.
  const core::TierId ring[] = {rig_.ssd_tier(), rig_.hdd_tier(),
                               rig_.pm_tier()};
  for (int round = 0; round < 9; ++round) {
    ASSERT_TRUE(mux.MigrateFile("/contended", ring[round % 3]).ok())
        << "round " << round;
  }
  stop.store(true);
  writer.join();

  // Verify: every block's stamp must decode to (its own block number, some
  // sequence), i.e. no write was lost to a stale migrated copy and no block
  // was cross-copied.
  for (uint64_t block = 0; block < kBlocks; ++block) {
    uint8_t stamp[16];
    auto r = mux.Read(*h, block * 4096, sizeof(stamp), stamp);
    ASSERT_TRUE(r.ok());
    uint64_t stored_block = 0;
    std::memcpy(&stored_block, stamp, 8);
    // Blocks never written by the writer retain the base pattern; written
    // blocks must carry their own index.
    const bool untouched =
        std::memcmp(stamp, base.data() + block * 4096, sizeof(stamp)) == 0;
    ASSERT_TRUE(untouched || stored_block == block)
        << "block " << block << " holds stamp for block " << stored_block;
  }
  // The workload actually exercised OCC (some passes/conflicts happened).
  auto stats = rig_.mux().stats();
  EXPECT_GT(stats.occ.passes, 0u);
}

TEST_F(MuxTest, BackgroundMigrationThreadRuns) {
  MuxRig::Sizes sizes;
  sizes.pm_bytes = 16 << 20;
  MuxRig rig({}, sizes);
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  // Aggressive watermarks so the small PM trips demotion quickly.
  ASSERT_TRUE(mux.SetPolicy(core::MakeLruPolicy(0.5, 0.3)).ok());
  mux.StartBackgroundMigration(/*interval_ms=*/1);
  for (int i = 0; i < 4; ++i) {
    auto h = mux.Open("/bg" + std::to_string(i), OpenFlags::kCreateRw);
    ASSERT_TRUE(h.ok());
    auto data = Pattern(4 << 20, i);
    ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
    ASSERT_TRUE(mux.Close(*h).ok());
    rig.clock().Advance(2'000'000'000);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  mux.StopBackgroundMigration();
  // Eviction happened in the background; data stays correct.
  uint64_t migrated = mux.stats().migrated_blocks;
  EXPECT_GT(migrated, 0u);
  for (int i = 0; i < 4; ++i) {
    auto h = mux.Open("/bg" + std::to_string(i), OpenFlags::kRead);
    ASSERT_TRUE(h.ok());
    auto expected = Pattern(4 << 20, i);
    std::vector<uint8_t> out(expected.size());
    auto r = mux.Read(*h, 0, out.size(), out.data());
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(out, expected) << i;
  }
}

}  // namespace
}  // namespace mux::testing
