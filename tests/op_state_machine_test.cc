// Op state machine tests: exactly-once FanIn resumption for every
// completion outcome (ok / EIO / cancel / ring-reject / shutdown drain),
// OpGate acquisition-scoped ownership (cross-thread release, FIFO fairness,
// async grants), ReadAsync/WriteAsync correctness against the sync path,
// striped mirror read fan-in surviving mid-stripe tier death (failover must
// resume the op, never park it), and the acceptance regression: at high
// in-flight the default data path executes ZERO CompletionGroup::Await
// calls while mux.op.inflight far exceeds the resume-pool size.
//
// The stress cases run under TSan/ASan in CI (tsan job, next to
// parallel_stress_test and mirror_stress_test).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/core/async_io.h"
#include "src/core/mux.h"
#include "src/core/op_gate.h"
#include "src/device/block_device.h"
#include "src/device/pm_device.h"
#include "src/fs/extlite/extlite.h"
#include "src/fs/novafs/novafs.h"
#include "src/fs/xfslite/xfslite.h"
#include "src/obs/metrics.h"
#include "src/vfs/fault_injecting_fs.h"
#include "tests/mux_rig.h"

namespace mux::core {
namespace {

using testing::ExtOptionsFor;
using testing::MuxRig;
using testing::MuxRigSizes;
using testing::XfsOptionsFor;
using vfs::FaultInjectingFs;
using vfs::OpenFlags;

constexpr TierId kQueue = 7;
constexpr uint64_t kBlock = Mux::kBlockSize;

// A latch the tests use to pin a server thread inside fn (or a resume
// worker inside a done callback).
class Gate {
 public:
  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

AsyncIoRequest MakeRequest(std::function<Status()> fn,
                           AsyncContinuation on_complete) {
  AsyncIoRequest request;
  request.queue = kQueue;
  request.bytes = 4096;
  request.fn = std::move(fn);
  request.on_complete = std::move(on_complete);
  return request;
}

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Rng rng(seed);
  rng.Fill(v.data(), n);
  return v;
}

// ---------------------------------------------------------------------------
// FanIn: the non-blocking join must fire its done exactly once for every
// mix of completion outcomes, with the same aggregation CompletionGroup
// produces.
// ---------------------------------------------------------------------------

TEST(FanInTest, ZeroExpectedFiresBeforeCreateReturns) {
  int calls = 0;
  auto fan = FanIn::Create(0, [&calls](const AsyncJoined& joined) {
    ++calls;
    EXPECT_TRUE(joined.status.ok());
    EXPECT_EQ(joined.completed, 0u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(FanInTest, AllOkFiresExactlyOnce) {
  SimClock clock;
  AsyncIoCore core(&clock, nullptr, /*resume_workers=*/2);
  core.RegisterQueue(kQueue, "q", /*queue_depth=*/4, /*servers=*/2);

  std::atomic<int> done_calls{0};
  Gate joined_gate;
  AsyncJoined got;
  auto fan = FanIn::Create(8, [&](const AsyncJoined& joined) {
    got = joined;
    done_calls.fetch_add(1);
    joined_gate.Open();
  });
  for (int i = 0; i < 8; ++i) {
    auto ticket = core.Submit(MakeRequest(
        [&clock]() -> Status {
          clock.Advance(100);
          return Status::Ok();
        },
        fan->Add()));
    ASSERT_TRUE(ticket.ok());
  }
  joined_gate.Wait();
  EXPECT_EQ(done_calls.load(), 1);
  EXPECT_TRUE(got.status.ok());
  EXPECT_EQ(got.completed, 8u);
  EXPECT_EQ(got.failed, 0u);
  EXPECT_EQ(got.cancelled, 0u);
  // Overlap-charged join figure: every completion took 100ns of service.
  EXPECT_GE(got.max_total_ns, 100u);
  core.Shutdown();
}

TEST(FanInTest, FirstErrorWinsAndFailuresCount) {
  SimClock clock;
  AsyncIoCore core(&clock, nullptr, /*resume_workers=*/1);
  core.RegisterQueue(kQueue, "q", /*queue_depth=*/1, /*servers=*/1);

  std::atomic<int> done_calls{0};
  Gate joined_gate;
  AsyncJoined got;
  auto fan = FanIn::Create(4, [&](const AsyncJoined& joined) {
    got = joined;
    done_calls.fetch_add(1);
    joined_gate.Open();
  });
  for (int i = 0; i < 4; ++i) {
    const bool fail = (i % 2 == 1);
    auto ticket = core.Submit(MakeRequest(
        [fail]() -> Status {
          return fail ? IoError("injected") : Status::Ok();
        },
        fan->Add()));
    ASSERT_TRUE(ticket.ok());
  }
  joined_gate.Wait();
  EXPECT_EQ(done_calls.load(), 1);
  EXPECT_EQ(got.status.code(), ErrorCode::kIoError);
  EXPECT_EQ(got.completed, 4u);
  EXPECT_EQ(got.failed, 2u);
  core.Shutdown();
}

TEST(FanInTest, CancelledSubmissionsStillResumeTheJoin) {
  SimClock clock;
  AsyncIoCore core(&clock, nullptr, /*resume_workers=*/1);
  core.RegisterQueue(kQueue, "q", /*queue_depth=*/1, /*servers=*/1);

  Gate server_gate;
  std::atomic<int> done_calls{0};
  Gate joined_gate;
  AsyncJoined got;
  auto fan = FanIn::Create(4, [&](const AsyncJoined& joined) {
    got = joined;
    done_calls.fetch_add(1);
    joined_gate.Open();
  });
  // One blocker pins the single server; the rest stay queued and are
  // cancellable. Wait until the server actually claimed the blocker, or a
  // follow-up could be claimed (and become uncancellable) instead.
  std::atomic<bool> claimed{false};
  auto blocker = core.Submit(MakeRequest(
      [&server_gate, &claimed]() -> Status {
        claimed.store(true);
        server_gate.Wait();
        return Status::Ok();
      },
      fan->Add()));
  ASSERT_TRUE(blocker.ok());
  while (!claimed.load()) {
    std::this_thread::yield();
  }
  std::vector<AsyncTicket> queued;
  for (int i = 0; i < 3; ++i) {
    auto ticket = core.Submit(
        MakeRequest([]() -> Status { return Status::Ok(); }, fan->Add()));
    ASSERT_TRUE(ticket.ok());
    queued.push_back(*ticket);
  }
  int cancelled = 0;
  for (const auto& ticket : queued) {
    if (core.Cancel(ticket)) {
      ++cancelled;
    }
  }
  EXPECT_EQ(cancelled, 3);  // nothing but the blocker was claimable
  server_gate.Open();
  joined_gate.Wait();
  EXPECT_EQ(done_calls.load(), 1);
  EXPECT_EQ(got.completed, 4u);
  EXPECT_EQ(got.cancelled, 3u);
  EXPECT_EQ(got.status.code(), ErrorCode::kBusy);  // cancellation is kBusy
  core.Shutdown();
}

TEST(FanInTest, RingRejectResumesInlineAndJoins) {
  SimClock clock;
  AsyncIoCore core(&clock, nullptr, /*resume_workers=*/1);
  // Bounded ring: one slot, one server. The blocker occupies the server,
  // one request fills the ring, further submits are rejected inline.
  core.RegisterQueue(kQueue, "q", /*queue_depth=*/1, /*servers=*/1,
                     /*bound=*/1);

  Gate server_gate;
  std::atomic<int> done_calls{0};
  Gate joined_gate;
  AsyncJoined got;
  auto fan = FanIn::Create(4, [&](const AsyncJoined& joined) {
    got = joined;
    done_calls.fetch_add(1);
    joined_gate.Open();
  });
  std::atomic<bool> claimed{false};
  auto blocker = core.Submit(MakeRequest(
      [&server_gate, &claimed]() -> Status {
        claimed.store(true);
        server_gate.Wait();
        return Status::Ok();
      },
      fan->Add()));
  ASSERT_TRUE(blocker.ok());
  // Wait for the server to claim the blocker so the one-slot ring is empty
  // for the filler.
  while (!claimed.load()) {
    std::this_thread::yield();
  }
  auto filler = core.Submit(
      MakeRequest([]() -> Status { return Status::Ok(); }, fan->Add()));
  ASSERT_TRUE(filler.ok());
  int rejected = 0;
  for (int i = 0; i < 2; ++i) {
    // The continuation runs inline as cancelled-with-kBusy BEFORE Submit
    // returns the error — the fan-in can never hang on a rejected slot.
    auto ticket = core.Submit(
        MakeRequest([]() -> Status { return Status::Ok(); }, fan->Add()));
    if (!ticket.ok()) {
      EXPECT_EQ(ticket.status().code(), ErrorCode::kBusy);
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 2);
  server_gate.Open();
  joined_gate.Wait();
  EXPECT_EQ(done_calls.load(), 1);
  EXPECT_EQ(got.completed, 4u);
  EXPECT_EQ(got.cancelled, 2u);
  EXPECT_EQ(core.stats().rejected, 2u);
  core.Shutdown();
}

TEST(FanInTest, ShutdownDrainRunsEveryContinuationExactlyOnce) {
  SimClock clock;
  AsyncIoCore core(&clock, nullptr, /*resume_workers=*/2);
  core.RegisterQueue(kQueue, "q", /*queue_depth=*/2, /*servers=*/2);
  core.Shutdown();

  // Post-shutdown submissions run inline on this thread; the fan-in fires
  // before the loop exits and exactly once.
  std::atomic<int> done_calls{0};
  std::atomic<int> continuations{0};
  auto fan = FanIn::Create(3, [&](const AsyncJoined& joined) {
    EXPECT_EQ(joined.completed, 3u);
    EXPECT_TRUE(joined.status.ok());
    done_calls.fetch_add(1);
  });
  for (int i = 0; i < 3; ++i) {
    auto ticket = core.Submit(MakeRequest(
        []() -> Status { return Status::Ok(); },
        fan->Add([&continuations](const AsyncCompletion&) {
          continuations.fetch_add(1);
        })));
    ASSERT_TRUE(ticket.ok());
  }
  EXPECT_EQ(continuations.load(), 3);
  EXPECT_EQ(done_calls.load(), 1);
}

// ---------------------------------------------------------------------------
// OpGate: acquisition-scoped ownership. The properties the op state machine
// leans on: release on a different thread than acquire, FIFO fairness (no
// reader barging past a queued writer), and async grants that run exactly
// once on the releasing thread.
// ---------------------------------------------------------------------------

TEST(OpGateTest, ExclusiveExcludesAcrossThreads) {
  OpGate gate;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        std::lock_guard<OpGate> lock(gate);
        ++counter;  // data-race-free iff the gate excludes
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, 8000);
}

TEST(OpGateTest, ReleaseOnDifferentThreadIsLegal) {
  OpGate gate;
  gate.lock();
  // std::shared_mutex forbids this; OpGate's ownership is acquisition-
  // scoped, so a resume worker may release what the submit thread acquired.
  std::thread other([&gate] { gate.unlock(); });
  other.join();
  EXPECT_TRUE(gate.try_lock());
  std::thread shared_release([&gate] {
    gate.unlock();
    gate.lock_shared();
  });
  shared_release.join();
  EXPECT_FALSE(gate.try_lock());        // a reader is in
  EXPECT_TRUE(gate.try_lock_shared());  // shared mode admits more readers
  gate.unlock_shared();
  gate.unlock_shared();
  EXPECT_TRUE(gate.try_lock());
  gate.unlock();
}

TEST(OpGateTest, ReadersDoNotBargePastQueuedWriter) {
  OpGate gate;
  gate.lock_shared();  // reader holds the gate

  std::atomic<int> writer_granted{0};
  std::atomic<int> reader_granted{0};
  EXPECT_FALSE(gate.TryLockOrQueue([&] { writer_granted.fetch_add(1); }));
  // Fairness: a new reader queues BEHIND the parked writer even though the
  // gate is currently in shared mode.
  EXPECT_FALSE(
      gate.TryLockSharedOrQueue([&] { reader_granted.fetch_add(1); }));
  EXPECT_EQ(writer_granted.load(), 0);
  EXPECT_EQ(reader_granted.load(), 0);

  gate.unlock_shared();  // grants the writer (queue head), not the reader
  EXPECT_EQ(writer_granted.load(), 1);
  EXPECT_EQ(reader_granted.load(), 0);

  gate.unlock();  // writer's turn ends; the queued reader is granted
  EXPECT_EQ(writer_granted.load(), 1);
  EXPECT_EQ(reader_granted.load(), 1);
  gate.unlock_shared();
  EXPECT_TRUE(gate.try_lock());
  gate.unlock();
}

TEST(OpGateTest, AsyncGrantRunsExactlyOnceOnReleasingThread) {
  OpGate gate;
  gate.lock();

  std::atomic<int> grants{0};
  std::thread::id grant_thread;
  EXPECT_FALSE(gate.TryLockOrQueue([&] {
    grant_thread = std::this_thread::get_id();
    grants.fetch_add(1);
  }));

  std::thread::id releaser_thread;
  std::thread releaser([&] {
    releaser_thread = std::this_thread::get_id();
    gate.unlock();  // fires the grant on THIS thread, after dropping mu_
  });
  releaser.join();
  EXPECT_EQ(grants.load(), 1);
  EXPECT_EQ(grant_thread, releaser_thread);
  gate.unlock();  // the grant left the gate held on the op's behalf
  EXPECT_TRUE(gate.try_lock());
  gate.unlock();
}

TEST(OpGateTest, ConsecutiveSharedWaitersGrantAsOneBatch) {
  OpGate gate;
  gate.lock();
  std::atomic<int> granted{0};
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(gate.TryLockSharedOrQueue([&] { granted.fetch_add(1); }));
  }
  gate.unlock();
  EXPECT_EQ(granted.load(), 3);  // one release admits the whole batch
  gate.unlock_shared();
  gate.unlock_shared();
  gate.unlock_shared();
  EXPECT_TRUE(gate.try_lock());
  gate.unlock();
}

// ---------------------------------------------------------------------------
// Mux::ReadAsync / WriteAsync: the state machine must produce the same
// bytes as the sync path, in both the continuation and fallback modes.
// ---------------------------------------------------------------------------

TEST(OpStateMachineTest, AsyncRoundtripMatchesSyncPath) {
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();

  auto h = mux.Open("/async_rt", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  const auto data = Pattern(17 * kBlock + 123, 42);

  Gate wrote;
  Result<uint64_t> wrote_result = uint64_t{0};
  mux.WriteAsync(*h, 0, data.data(), data.size(),
                 [&](Result<uint64_t> result) {
                   wrote_result = std::move(result);
                   wrote.Open();
                 });
  wrote.Wait();
  ASSERT_TRUE(wrote_result.ok());
  EXPECT_EQ(*wrote_result, data.size());

  std::vector<uint8_t> async_out(data.size());
  Gate read;
  Result<uint64_t> read_result = uint64_t{0};
  mux.ReadAsync(*h, 0, async_out.size(), async_out.data(),
                [&](Result<uint64_t> result) {
                  read_result = std::move(result);
                  read.Open();
                });
  read.Wait();
  ASSERT_TRUE(read_result.ok());
  EXPECT_EQ(*read_result, data.size());
  EXPECT_EQ(std::memcmp(async_out.data(), data.data(), data.size()), 0);

  std::vector<uint8_t> sync_out(data.size());
  auto got = mux.Read(*h, 0, sync_out.size(), sync_out.data());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::memcmp(sync_out.data(), async_out.data(), data.size()), 0);
  EXPECT_TRUE(mux.Close(*h).ok());
}

TEST(OpStateMachineTest, AblationFallbackCompletesInlineBeforeReturn) {
  Mux::Options options;
  options.continuation_ops = false;  // ablation: no state machine
  MuxRig rig(options);
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();

  auto h = mux.Open("/inline", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  const auto data = Pattern(4 * kBlock, 7);

  const std::thread::id caller = std::this_thread::get_id();
  bool done_ran = false;
  mux.WriteAsync(*h, 0, data.data(), data.size(), [&](Result<uint64_t> r) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_TRUE(r.ok());
    done_ran = true;
  });
  EXPECT_TRUE(done_ran);  // sync-inline: done already ran

  std::vector<uint8_t> out(data.size());
  done_ran = false;
  mux.ReadAsync(*h, 0, out.size(), out.data(), [&](Result<uint64_t> r) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, out.size());
    done_ran = true;
  });
  EXPECT_TRUE(done_ran);
  EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);
  EXPECT_TRUE(mux.Close(*h).ok());
}

// The acceptance regression for the tentpole: drive in-flight far above the
// resume-pool size with done callbacks latched, and assert the default data
// path executed ZERO CompletionGroup::Await calls — no thread blocked
// between submission and completion — while mux.op.inflight proves the ops
// really were concurrent.
TEST(OpStateMachineTest, ZeroBlockingAwaitsAtHighInFlight) {
  MuxRig rig;  // default options: continuation_ops=true, resume_workers=2
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();

  constexpr int kOps = 64;
  auto h = mux.Open("/hif", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  const auto data = Pattern(kOps * kBlock, 11);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());

  const uint64_t awaits_before = CompletionGroup::await_count();

  Gate release_dones;
  std::atomic<int> dones{0};
  Gate all_done;
  std::vector<std::vector<uint8_t>> outs(kOps,
                                         std::vector<uint8_t>(kBlock));
  std::atomic<int> failures{0};
  for (int i = 0; i < kOps; ++i) {
    mux.ReadAsync(*h, static_cast<uint64_t>(i) * kBlock, kBlock,
                  outs[i].data(), [&](Result<uint64_t> result) {
                    // Runs on a resume worker. Latching here pins the pool:
                    // later completions must queue, so admitted ops stack
                    // up and mux.op.inflight records the pile-up.
                    release_dones.Wait();
                    if (!result.ok()) {
                      failures.fetch_add(1);
                    }
                    if (dones.fetch_add(1) + 1 == kOps) {
                      all_done.Open();
                    }
                  });
  }
  // Every submission returned while its completion was still latched: the
  // caller thread never parked. Now drain.
  release_dones.Open();
  all_done.Wait();
  EXPECT_EQ(dones.load(), kOps);
  EXPECT_EQ(failures.load(), 0);

  // Zero blocking joins on the default data path...
  EXPECT_EQ(CompletionGroup::await_count() - awaits_before, 0u);
  // ...while concurrency far exceeded what blocked threads could produce:
  // with a 2-worker resume pool, any Await-style path would cap in-flight
  // near the pool size.
  const Histogram inflight = mux.metrics().HistogramValue("mux.op.inflight");
  EXPECT_GE(inflight.max(), 16u)
      << "expected admitted ops to pile far above the resume pool";
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(std::memcmp(outs[i].data(), data.data() + i * kBlock, kBlock),
              0)
        << "op " << i;
  }
  EXPECT_TRUE(mux.Close(*h).ok());
}

// ---------------------------------------------------------------------------
// Striped mirror fan-in under tier death. A mirrored file's reads stripe
// across the copies (multi-resident runs), so one ReadAsync fans into
// per-tier chains. Killing a tier mid-stripe must fail over INSIDE the
// chain and resume the op — every done fires, no read fails, nothing parks.
// ---------------------------------------------------------------------------

// MuxRig with every tier behind a FaultInjectingFs wrapper (the
// mirror_stress_test rig, continuation-path edition).
class FaultRig {
 public:
  explicit FaultRig(Mux::Options options = Mux::Options())
      : pm_dev_(device::DeviceProfile::OptanePm(sizes_.pm_bytes), &clock_),
        ssd_dev_(device::DeviceProfile::OptaneSsd(sizes_.ssd_bytes), &clock_),
        hdd_dev_(device::DeviceProfile::ExosHdd(sizes_.hdd_bytes), &clock_),
        novafs_(&pm_dev_, &clock_),
        xfslite_(&ssd_dev_, &clock_, XfsOptionsFor(sizes_)),
        extlite_(&hdd_dev_, &clock_, ExtOptionsFor(sizes_)),
        pm_(&novafs_, 301),
        ssd_(&xfslite_, 302),
        hdd_(&extlite_, 303),
        mux_(std::make_unique<Mux>(&clock_, std::move(options))) {
    ok_ = novafs_.Format().ok() && xfslite_.Format().ok() &&
          extlite_.Format().ok();
    auto pm = mux_->AddTier("pm", &pm_, pm_dev_.profile());
    auto ssd = mux_->AddTier("ssd", &ssd_, ssd_dev_.profile());
    auto hdd = mux_->AddTier("hdd", &hdd_, hdd_dev_.profile());
    ok_ = ok_ && pm.ok() && ssd.ok() && hdd.ok();
    ssd_tier_ = ssd.value_or(kInvalidTier);
    hdd_tier_ = hdd.value_or(kInvalidTier);
  }

  bool ok() const { return ok_; }
  Mux& mux() { return *mux_; }
  FaultInjectingFs& ssd() { return ssd_; }
  FaultInjectingFs& hdd() { return hdd_; }
  TierId ssd_tier() const { return ssd_tier_; }
  TierId hdd_tier() const { return hdd_tier_; }

 private:
  MuxRigSizes sizes_;
  SimClock clock_;
  device::PmDevice pm_dev_;
  device::BlockDevice ssd_dev_;
  device::BlockDevice hdd_dev_;
  fs::NovaFs novafs_;
  fs::XfsLite xfslite_;
  fs::ExtLite extlite_;
  FaultInjectingFs pm_;
  FaultInjectingFs ssd_;
  FaultInjectingFs hdd_;
  std::unique_ptr<Mux> mux_;
  TierId ssd_tier_ = kInvalidTier;
  TierId hdd_tier_ = kInvalidTier;
  bool ok_ = false;
};

TEST(OpStateMachineTest, StripedMirrorReadResumesThroughTierDeath) {
  FaultRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();

  constexpr uint64_t kBlocks = 48;
  auto h = mux.Open("/striped", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  const auto data = Pattern(kBlocks * kBlock, 55);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  // Two clean copies: SSD primary + HDD mirror. Wide reads stripe across
  // both, so each ReadAsync fans into one chain per tier.
  ASSERT_TRUE(mux.MigrateFile("/striped", rig.ssd_tier()).ok());
  ASSERT_TRUE(mux.ReplicateFile("/striped", rig.hdd_tier()).ok());

  // Phase 1: the SSD copy is dead BEFORE the stripe is submitted — its
  // chain must fail over to the HDD copy inside the chain fn and the op
  // must still commit via the fan-in (guaranteed failover).
  rig.ssd().KillDevice();
  {
    std::vector<uint8_t> out(data.size());
    Gate done_gate;
    Result<uint64_t> result = uint64_t{0};
    mux.ReadAsync(*h, 0, out.size(), out.data(), [&](Result<uint64_t> r) {
      result = std::move(r);
      done_gate.Open();
    });
    done_gate.Wait();
    ASSERT_TRUE(result.ok())
        << "mirrored stripe must fail over, not fail: " << result.status();
    EXPECT_EQ(*result, data.size());
    EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);
  }
  EXPECT_GT(mux.metrics().CounterValue("mux.replica.failover"), 0u);
  rig.ssd().Revive();

  // Phase 2: tier death races in-flight stripes. Alternate the victim while
  // async reads pound both copies; with one copy always alive, every done
  // must fire with ok — the fan-in resumes the op through the failover, it
  // never parks waiting for the dead tier.
  std::atomic<int> issued{0};
  std::atomic<int> delivered{0};
  std::atomic<int> failed{0};
  std::atomic<int> corrupt{0};
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    Rng rng(91);
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t lo_block = rng.Below(kBlocks - 16);
      const uint64_t len = (8 + rng.Below(8)) * kBlock;
      auto out = std::make_shared<std::vector<uint8_t>>(len);
      issued.fetch_add(1);
      mux.ReadAsync(*h, lo_block * kBlock, len, out->data(),
                    [&, out, lo_block, len](Result<uint64_t> r) {
                      if (!r.ok()) {
                        failed.fetch_add(1);
                      } else if (std::memcmp(out->data(),
                                             data.data() + lo_block * kBlock,
                                             len) != 0) {
                        corrupt.fetch_add(1);
                      }
                      delivered.fetch_add(1);
                    });
      if (issued.load() - delivered.load() > 64) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  for (int round = 0; round < 6; ++round) {
    FaultInjectingFs& victim = (round % 2 == 0) ? rig.ssd() : rig.hdd();
    victim.KillDevice();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    victim.Revive();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  reader.join();
  // Exactly-once resumption: every issued op's done fires even with tiers
  // dying mid-stripe.
  for (int spin = 0; spin < 2000 && delivered.load() < issued.load();
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(delivered.load(), issued.load());
  EXPECT_GT(issued.load(), 0);
  EXPECT_EQ(failed.load(), 0)
      << "a mirrored read with one surviving copy must never fail";
  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_TRUE(mux.Close(*h).ok());
}

// ---------------------------------------------------------------------------
// TSan/ASan stress: concurrent async ops racing cancellation (core level)
// and policy rounds + mirror sync (mux level).
// ---------------------------------------------------------------------------

TEST(OpStateMachineStress, SubmitRacesCancelExactlyOnce) {
  SimClock clock;
  AsyncIoCore core(&clock, nullptr, /*resume_workers=*/2);
  core.RegisterQueue(kQueue, "q", /*queue_depth=*/2, /*servers=*/2);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 300;
  std::atomic<int> continuations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(500 + t);
      for (int i = 0; i < kPerThread; ++i) {
        auto ticket = core.Submit(MakeRequest(
            [&clock]() -> Status {
              clock.Advance(10);
              return Status::Ok();
            },
            [&continuations](const AsyncCompletion&) {
              continuations.fetch_add(1);
            }));
        ASSERT_TRUE(ticket.ok());
        // Race a cancellation against the servers: either outcome must
        // deliver the continuation exactly once.
        if (rng.Below(2) == 0) {
          (void)core.Cancel(*ticket);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  core.Shutdown();
  EXPECT_EQ(continuations.load(), kThreads * kPerThread);
  const AsyncCoreStats stats = core.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.completed, stats.submitted);
}

TEST(OpStateMachineStress, AsyncOpsRacePolicyRoundsAndTierDeath) {
  FaultRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();

  constexpr int kFiles = 3;
  constexpr uint64_t kBlocksPerFile = 24;
  std::vector<vfs::FileHandle> handles;
  for (int f = 0; f < kFiles; ++f) {
    const std::string path = "/s" + std::to_string(f);
    auto h = mux.Open(path, OpenFlags::kCreateRw);
    ASSERT_TRUE(h.ok());
    auto data = Pattern(kBlocksPerFile * kBlock, 700 + f);
    ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
    ASSERT_TRUE(mux.MigrateFile(path, rig.ssd_tier()).ok());
    ASSERT_TRUE(mux.ReplicateFile(path, rig.hdd_tier()).ok());
    handles.push_back(*h);
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> issued{0};
  std::atomic<uint64_t> delivered{0};

  // Async read/write load. Writes dirty mirrors, so reads during a kill MAY
  // legitimately fail (sole clean copy dead) — the ledger, not the status,
  // is the assertion: every op's done fires exactly once.
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(800 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        const int f = static_cast<int>(rng.Below(kFiles));
        const uint64_t lo =
            rng.Below(kBlocksPerFile - 4) * kBlock;
        const uint64_t len = (1 + rng.Below(4)) * kBlock;
        issued.fetch_add(1);
        if (rng.Below(4) == 0) {
          auto buf = std::make_shared<std::vector<uint8_t>>(
              Pattern(len, rng.Next()));
          mux.WriteAsync(handles[f], lo, buf->data(), len,
                         [&, buf](Result<uint64_t>) {
                           delivered.fetch_add(1);
                         });
        } else {
          auto buf = std::make_shared<std::vector<uint8_t>>(len);
          mux.ReadAsync(handles[f], lo, len, buf->data(),
                        [&, buf](Result<uint64_t>) {
                          delivered.fetch_add(1);
                        });
        }
        if (issued.load() - delivered.load() > 32) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    });
  }
  // Policy rounds (exclusive inode gates + migrations) race the ops.
  std::thread policy([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)mux.RunPolicyMigrations();
      (void)mux.SyncMirrors(64 * kBlock);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  // Chaos: one tier dead at a time.
  for (int round = 0; round < 4; ++round) {
    FaultInjectingFs& victim = (round % 2 == 0) ? rig.ssd() : rig.hdd();
    victim.KillDevice();
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    victim.Revive();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& t : workers) {
    t.join();
  }
  policy.join();
  for (int spin = 0; spin < 2000 && delivered.load() < issued.load();
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(delivered.load(), issued.load())
      << "every async op must resume exactly once through policy rounds "
         "and tier death";
  EXPECT_GT(issued.load(), 0u);

  // After the dust settles the stack must still be coherent: reconcile
  // mirrors until idle, then a clean Fsck.
  while (true) {
    auto synced = mux.SyncMirrors();
    ASSERT_TRUE(synced.ok());
    if (*synced == 0) {
      break;
    }
  }
  auto report = mux.Fsck();
  ASSERT_TRUE(report.ok());
  for (auto h : handles) {
    EXPECT_TRUE(mux.Close(h).ok());
  }
}

}  // namespace
}  // namespace mux::core
