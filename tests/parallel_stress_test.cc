// Parallel split-I/O dispatch (ISSUE 3): time-cursor semantics, the per-tier
// I/O executor, parallel-vs-serial split reads, concurrent-reader scaling,
// cache-miss coalescing, and a readers+writer+migration stress run. The
// stress sections are the thread-sanitizer workload: build with
// -DMUX_SANITIZE=thread and run this binary.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/core/io_executor.h"
#include "src/vfs/vfs.h"
#include "tests/mux_rig.h"

namespace mux::testing {
namespace {

using core::IoCompletion;
using core::IoExecutor;
using core::Mux;
using vfs::OpenFlags;

constexpr uint64_t kMiB = 1ULL << 20;
constexpr uint64_t kBlockSize = Mux::kBlockSize;

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Rng rng(seed);
  rng.Fill(v.data(), n);
  return v;
}

Status WriteAll(Mux& mux, vfs::FileHandle h, uint64_t total, uint64_t seed) {
  auto data = Pattern(1 * kMiB, seed);
  for (uint64_t off = 0; off < total; off += data.size()) {
    MUX_RETURN_IF_ERROR(
        mux.Write(h, off, data.data(),
                  std::min<uint64_t>(data.size(), total - off))
            .status());
  }
  return Status::Ok();
}

// ---- SimClock cursor semantics -------------------------------------------

TEST(SimClockCursor, AdvanceWithoutCursorMovesSharedClock) {
  SimClock clock;
  EXPECT_EQ(clock.Now(), 0u);
  EXPECT_EQ(clock.Advance(100), 100u);
  EXPECT_EQ(clock.Now(), 100u);
}

TEST(SimClockCursor, CursorChargesPrivatelyAndMergesOnDestruct) {
  SimClock clock;
  clock.Advance(50);
  {
    ScopedTimeCursor cursor(&clock);
    EXPECT_EQ(clock.Now(), 50u);  // cursor view starts at install time
    clock.Advance(30);
    EXPECT_EQ(clock.Now(), 80u);       // visible through the cursor
    EXPECT_EQ(cursor.local(), 30u);    // charged privately
  }
  EXPECT_EQ(clock.Now(), 80u);  // merged: AdvanceTo(origin + local)
}

TEST(SimClockCursor, NestedCursorMergesIntoParent) {
  SimClock clock;
  {
    ScopedTimeCursor outer(&clock);
    clock.Advance(10);
    {
      ScopedTimeCursor inner(&clock);
      clock.Advance(5);
    }
    // Inner merged into outer's local, not the shared clock.
    EXPECT_EQ(outer.local(), 15u);
    EXPECT_EQ(clock.Now(), 15u);  // via outer's view; shared clock still 0
  }
  EXPECT_EQ(clock.Now(), 15u);
}

TEST(SimClockCursor, ReleasePopsWithoutMerging) {
  SimClock clock;
  ScopedTimeCursor cursor(&clock, /*origin=*/0);
  clock.Advance(40);
  EXPECT_EQ(cursor.Release(), 40u);
  EXPECT_EQ(clock.Now(), 0u);  // nothing published
}

TEST(SimClockCursor, AdvanceToIsMonotonicMax) {
  SimClock clock;
  EXPECT_EQ(clock.AdvanceTo(100), 100u);
  EXPECT_EQ(clock.AdvanceTo(60), 100u);  // going backwards is a no-op
  EXPECT_EQ(clock.Now(), 100u);
}

TEST(SimClockCursor, CursorsForOtherClocksAreSkipped) {
  SimClock a;
  SimClock b;
  ScopedTimeCursor cursor_a(&a);
  a.Advance(10);
  b.Advance(20);  // no cursor for b on this thread: hits b's shared counter
  EXPECT_EQ(b.Now(), 20u);
  EXPECT_EQ(cursor_a.local(), 10u);
}

TEST(SimClockCursor, ConcurrentChainsOverlapViaMaxMerge) {
  SimClock clock;
  std::thread t1([&clock] {
    ScopedTimeCursor cursor(&clock, /*origin=*/0);
    clock.Advance(300);
  });
  std::thread t2([&clock] {
    ScopedTimeCursor cursor(&clock, /*origin=*/0);
    clock.Advance(500);
  });
  t1.join();
  t2.join();
  EXPECT_EQ(clock.Now(), 500u);  // max of the chains, not 800
}

// ---- IoExecutor ----------------------------------------------------------

TEST(IoExecutorTest, ChainsReportElapsedWithoutTouchingSharedClock) {
  SimClock clock;
  IoExecutor executor(&clock, /*threads_per_tier=*/1);
  executor.AddTier(1);
  executor.AddTier(2);
  auto f1 = executor.Submit(1, /*origin=*/0, [&clock] {
    clock.Advance(700);
    return Status::Ok();
  });
  auto f2 = executor.Submit(2, /*origin=*/0, [&clock] {
    clock.Advance(400);
    return Status::Ok();
  });
  IoCompletion c1 = f1.get();
  IoCompletion c2 = f2.get();
  EXPECT_TRUE(c1.status.ok());
  EXPECT_EQ(c1.elapsed_ns, 700u);
  EXPECT_EQ(c2.elapsed_ns, 400u);
  // Workers Release() their cursors: the dispatcher owns the merge.
  EXPECT_EQ(clock.Now(), 0u);
  clock.AdvanceTo(std::max(c1.elapsed_ns, c2.elapsed_ns));
  EXPECT_EQ(clock.Now(), 700u);
}

TEST(IoExecutorTest, UnknownTierRunsInlineWithCursorDiscipline) {
  SimClock clock;
  clock.Advance(100);
  IoExecutor executor(&clock, 1);
  auto f = executor.Submit(99, /*origin=*/100, [&clock] {
    clock.Advance(50);
    return Status::Ok();
  });
  IoCompletion c = f.get();
  EXPECT_TRUE(c.status.ok());
  EXPECT_EQ(c.elapsed_ns, 50u);
  EXPECT_EQ(clock.Now(), 100u);  // inline run still charged privately
}

TEST(IoExecutorTest, ErrorsPropagateThroughCompletions) {
  SimClock clock;
  IoExecutor executor(&clock, 1);
  executor.AddTier(1);
  auto f = executor.Submit(1, 0, [] { return InternalError("boom"); });
  EXPECT_FALSE(f.get().status.ok());
}

// ---- split reads: parallel vs serial -------------------------------------

// Stripes /split across PM/SSD/HDD (sizes balanced inversely to tier speed)
// and returns the simulated ns of one full-span read plus the rig's
// chain-time counters.
struct SplitResult {
  SimTime elapsed_ns = 0;
  uint64_t chain_max_ns = 0;
  uint64_t chain_sum_ns = 0;
};

SplitResult TimedSplitRead(bool parallel_dispatch) {
  constexpr uint64_t kPmBytes = 40 * kMiB;
  constexpr uint64_t kSsdBytes = 4 * kMiB;
  constexpr uint64_t kHddBytes = 768 * 1024;
  constexpr uint64_t kTotal = kPmBytes + kSsdBytes + kHddBytes;
  core::Mux::Options options;
  options.parallel_dispatch = parallel_dispatch;
  // Small FS page caches so the SSD/HDD segments hit media (the default
  // 16 MiB caches would absorb the freshly migrated segments entirely).
  MuxRigSizes sizes;
  sizes.xfslite_cache_pages = 64;
  sizes.extlite_cache_pages = 64;
  MuxRig rig(options, sizes);
  EXPECT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto h = mux.Open("/split", OpenFlags::kCreateRw);
  EXPECT_TRUE(h.ok());
  EXPECT_TRUE(WriteAll(mux, *h, kTotal, /*seed=*/42).ok());
  EXPECT_TRUE(mux.MigrateRange("/split", kPmBytes / kBlockSize,
                               kSsdBytes / kBlockSize, rig.ssd_tier())
                  .ok());
  EXPECT_TRUE(mux.MigrateRange("/split", (kPmBytes + kSsdBytes) / kBlockSize,
                               kHddBytes / kBlockSize, rig.hdd_tier())
                  .ok());
  std::vector<uint8_t> buf(kTotal);
  const SimTime start = rig.clock().Now();
  auto got = mux.Read(*h, 0, kTotal, buf.data());
  EXPECT_TRUE(got.ok());
  EXPECT_EQ(*got, kTotal);
  // Content must be identical in both modes: segments write disjoint slices.
  auto expect = Pattern(1 * kMiB, 42);
  for (uint64_t off = 0; off < kTotal; off += kMiB) {
    const uint64_t n = std::min<uint64_t>(kMiB, kTotal - off);
    EXPECT_EQ(std::memcmp(buf.data() + off, expect.data(), n), 0)
        << "mismatch at offset " << off;
  }
  SplitResult result;
  result.elapsed_ns = rig.clock().Now() - start;
  result.chain_max_ns = mux.metrics().CounterValue("mux.parallel.chain_max_ns");
  result.chain_sum_ns = mux.metrics().CounterValue("mux.parallel.chain_sum_ns");
  return result;
}

TEST(ParallelSplitRead, BeatsSerialDispatchByAcceptanceMargin) {
  const SplitResult serial = TimedSplitRead(/*parallel_dispatch=*/false);
  const SplitResult parallel = TimedSplitRead(/*parallel_dispatch=*/true);
  EXPECT_EQ(serial.chain_max_ns, 0u);  // serial mode never fans out
  ASSERT_GT(serial.elapsed_ns, 0u);
  const double ratio = static_cast<double>(parallel.elapsed_ns) /
                       static_cast<double>(serial.elapsed_ns);
  EXPECT_LT(ratio, 0.6) << "parallel " << parallel.elapsed_ns << "ns vs serial "
                        << serial.elapsed_ns << "ns";
}

TEST(ParallelSplitRead, LatencyIsMaxOfTiersNotSum) {
  const SplitResult parallel = TimedSplitRead(/*parallel_dispatch=*/true);
  ASSERT_GT(parallel.chain_max_ns, 0u);
  ASSERT_GT(parallel.chain_sum_ns, parallel.chain_max_ns);
  // The read costs the slowest chain plus per-op bookkeeping — far below the
  // sum of the chains.
  EXPECT_GE(parallel.elapsed_ns, parallel.chain_max_ns);
  EXPECT_LT(parallel.elapsed_ns, parallel.chain_sum_ns);
  // Bookkeeping (dispatch, BLT, cache probes) is well under 20% of the
  // slowest chain at these sizes.
  EXPECT_LT(parallel.elapsed_ns - parallel.chain_max_ns,
            parallel.chain_max_ns / 5);
}

// ---- concurrent readers --------------------------------------------------

// One big read per reader, all released at a common wall-clock start line:
// every reader installs its per-op cursor at the same simulated origin
// before the first one merges, so the measured overlap is structural (see
// bench/parallel_scaling.cc for the same technique).
SimTime ConcurrentWholeFileReads(MuxRig& rig, int threads, uint64_t bytes) {
  auto& mux = rig.mux();
  const auto start_line =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
  const SimTime start = rig.clock().Now();
  std::vector<std::thread> readers;
  readers.reserve(threads);
  std::atomic<bool> failed{false};
  for (int t = 0; t < threads; ++t) {
    readers.emplace_back([&mux, &failed, start_line, bytes] {
      auto h = mux.Open("/hot", OpenFlags::kRead);
      if (!h.ok()) {
        failed = true;
        return;
      }
      std::vector<uint8_t> buf(bytes);
      std::this_thread::sleep_until(start_line);
      auto got = mux.Read(*h, 0, bytes, buf.data());
      if (!got.ok() || *got != bytes) {
        failed = true;
      }
      (void)mux.Close(*h);
    });
  }
  for (auto& r : readers) {
    r.join();
  }
  EXPECT_FALSE(failed.load());
  return rig.clock().Now() - start;
}

TEST(ConcurrentReaders, FourReadersWithinTwiceIdeal) {
  constexpr uint64_t kFileBytes = 48 * kMiB;
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  auto h = rig.mux().Open("/hot", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(WriteAll(rig.mux(), *h, kFileBytes, /*seed=*/7).ok());
  ASSERT_TRUE(rig.mux().Close(*h).ok());

  const SimTime one = ConcurrentWholeFileReads(rig, 1, kFileBytes);
  const SimTime four = ConcurrentWholeFileReads(rig, 4, kFileBytes);
  ASSERT_GT(one, 0u);
  // Ideal is flat (readers don't block each other and their simulated
  // latencies overlap); acceptance allows 2x for scheduling noise.
  EXPECT_LT(four, 2 * one) << "4 readers " << four << "ns vs 1 reader " << one
                           << "ns";
}

// ---- SCM cache miss coalescing -------------------------------------------

TEST(CacheCoalescing, AdjacentMissesFetchAsOneTierRead) {
  constexpr uint64_t kFileBytes = 2 * kMiB;  // 512 blocks
  core::Mux::Options options;
  options.enable_scm_cache = true;
  MuxRig rig(options);
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto h = mux.Open("/cold", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(WriteAll(mux, *h, kFileBytes, /*seed=*/3).ok());
  // Home the file on the SSD tier so reads go through the cache path.
  ASSERT_TRUE(mux.MigrateFile("/cold", rig.ssd_tier()).ok());

  std::vector<uint8_t> buf(kFileBytes);
  auto got = mux.Read(*h, 0, kFileBytes, buf.data());
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(*got, kFileBytes);

  const uint64_t missed = mux.metrics().CounterValue("mux.cache.missed_blocks");
  const uint64_t fetches =
      mux.metrics().CounterValue("mux.cache.coalesced_reads");
  EXPECT_EQ(missed, kFileBytes / kBlockSize);  // fully cold: every block
  // One contiguous cold run coalesces into one tier read (the old code
  // issued one read per missed block).
  EXPECT_EQ(fetches, 1u);
}

// ---- readers + writer + migration stress ---------------------------------

// Region [0, 4 MiB) is read-only and must always equal the initial pattern;
// the writer owns [4 MiB, 8 MiB). Migration bounces the whole file between
// tiers underneath both. TSan (MUX_SANITIZE=thread) validates the locking;
// the content checks validate reader/writer/migration isolation.
TEST(ParallelStress, ReadersWriterAndMigrationOnOneFile) {
  constexpr uint64_t kFileBytes = 8 * kMiB;
  constexpr uint64_t kHalf = kFileBytes / 2;
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto h = mux.Open("/stress", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(WriteAll(mux, *h, kFileBytes, /*seed=*/11).ok());
  // WriteAll repeats the same seeded 1 MiB pattern across the file, so every
  // MiB-aligned read of the stable half must equal this block.
  const auto stable = Pattern(1 * kMiB, 11);

  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  // Two readers over the stable half.
  for (int r = 0; r < 2; ++r) {
    workers.emplace_back([&mux, &failed, &stable] {
      auto rh = mux.Open("/stress", OpenFlags::kRead);
      if (!rh.ok()) {
        failed = true;
        return;
      }
      std::vector<uint8_t> buf(1 * kMiB);
      for (int i = 0; i < 16 && !failed; ++i) {
        const uint64_t off = (i % 4) * kMiB;
        auto got = mux.Read(*rh, off, buf.size(), buf.data());
        if (!got.ok() || *got != buf.size() ||
            std::memcmp(buf.data(), stable.data(), buf.size()) != 0) {
          failed = true;
        }
      }
      (void)mux.Close(*rh);
    });
  }
  // One writer over the volatile half.
  workers.emplace_back([&mux, &failed] {
    auto wh = mux.Open("/stress", OpenFlags::kReadWrite);
    if (!wh.ok()) {
      failed = true;
      return;
    }
    for (int i = 0; i < 16 && !failed; ++i) {
      auto data = Pattern(1 * kMiB, 100 + i);
      const uint64_t off = 4 * kMiB + (i % 4) * kMiB;
      if (!mux.Write(*wh, off, data.data(), data.size()).ok()) {
        failed = true;
      }
    }
    (void)mux.Close(*wh);
  });
  // Migration bouncing the whole file PM -> SSD -> HDD -> PM underneath.
  workers.emplace_back([&mux, &rig, &failed] {
    const core::TierId tiers[] = {rig.ssd_tier(), rig.hdd_tier(),
                                  rig.pm_tier()};
    for (int round = 0; round < 3 && !failed; ++round) {
      Status s = mux.MigrateFile("/stress", tiers[round]);
      if (!s.ok()) {
        failed = true;
      }
    }
  });
  for (auto& w : workers) {
    w.join();
  }
  ASSERT_FALSE(failed.load());

  // Stable half unchanged after the dust settles.
  std::vector<uint8_t> buf(kHalf);
  auto got = mux.Read(*h, 0, kHalf, buf.data());
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(*got, kHalf);
  for (uint64_t off = 0; off < kHalf; off += kMiB) {
    ASSERT_EQ(std::memcmp(buf.data() + off, stable.data(), kMiB), 0)
        << "stable region corrupted at offset " << off;
  }

  // Metadata is globally consistent.
  auto scrub = mux.Scrub();
  ASSERT_TRUE(scrub.ok());
  EXPECT_TRUE(scrub->Clean())
      << "missing_shadows=" << scrub->missing_shadows
      << " size_inconsistencies=" << scrub->size_inconsistencies
      << " replica_mismatches=" << scrub->replica_mismatches;

  // Hot-path counters saw every op (2 readers x 16 + the setup/final reads).
  const auto stats = mux.stats();
  EXPECT_GE(stats.reads, 2u * 16u + 1u);
  EXPECT_GE(stats.writes, 16u);
  EXPECT_GE(stats.migration_passes, 3u);
}

}  // namespace
}  // namespace mux::testing
