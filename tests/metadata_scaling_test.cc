// Metadata control plane scaling (ISSUE 5): the sharded open-file table,
// immutable tier/policy snapshots, the shared namespace lock, off-lock
// policy planning, and the pipelined migration copy. The stress section is
// the thread-sanitizer workload for the control plane: foreground
// open/close/read/rename/StatFs racing RunPolicyMigrations, AddTier
// snapshot swaps, and SetPolicyByName swaps. Build with
// -DMUX_SANITIZE=thread and run this binary.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/vfs/memfs.h"
#include "src/vfs/vfs.h"
#include "tests/mux_rig.h"

namespace mux::testing {
namespace {

using core::Mux;
using vfs::OpenFlags;

constexpr uint64_t kBlockSize = Mux::kBlockSize;

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Rng rng(seed);
  rng.Fill(v.data(), n);
  return v;
}

// ---- sharded handle table ------------------------------------------------

TEST(ShardedHandleTable, ManyHandlesAcrossShardsStayIndependent) {
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  Mux& mux = rig.mux();

  // Far more handles than shards, so every shard holds several.
  constexpr int kFiles = 64;
  std::vector<vfs::FileHandle> handles;
  for (int i = 0; i < kFiles; ++i) {
    const std::string path = "/shard" + std::to_string(i);
    auto h = mux.Open(path, OpenFlags::kCreate | OpenFlags::kReadWrite);
    ASSERT_TRUE(h.ok()) << h.status();
    handles.push_back(*h);
  }
  const auto data = Pattern(kBlockSize, 7);
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(mux.Write(handles[i], 0, data.data(), data.size()).ok());
  }
  // Close every other handle; the survivors must stay fully usable.
  for (int i = 0; i < kFiles; i += 2) {
    ASSERT_TRUE(mux.Close(handles[i]).ok());
  }
  std::vector<uint8_t> back(kBlockSize);
  for (int i = 1; i < kFiles; i += 2) {
    auto st = mux.FStat(handles[i]);
    ASSERT_TRUE(st.ok()) << st.status();
    EXPECT_EQ(st->size, kBlockSize);
    auto got = mux.Read(handles[i], 0, back.size(), back.data());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::memcmp(back.data(), data.data(), back.size()), 0);
    ASSERT_TRUE(mux.Close(handles[i]).ok());
  }
  // A closed handle is really gone.
  EXPECT_FALSE(mux.FStat(handles[0]).ok());
}

TEST(ShardedHandleTable, LegacyOpSetupPathStillWorks) {
  Mux::Options options;
  options.sharded_op_setup = false;  // ablation: global-mutex op setup
  MuxRig rig(options);
  ASSERT_TRUE(rig.ok());
  Mux& mux = rig.mux();

  auto h = mux.Open("/legacy", OpenFlags::kCreate | OpenFlags::kReadWrite);
  ASSERT_TRUE(h.ok()) << h.status();
  const auto data = Pattern(2 * kBlockSize, 11);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  std::vector<uint8_t> back(data.size());
  auto got = mux.Read(*h, 0, back.size(), back.data());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data.size());
  EXPECT_EQ(back, data);
  ASSERT_TRUE(mux.Close(*h).ok());
  EXPECT_FALSE(mux.FStat(*h).ok());
}

// ---- immutable tier/policy snapshots ------------------------------------

TEST(TierSnapshot, InFlightHandleSurvivesPolicySwap) {
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  Mux& mux = rig.mux();

  auto h = mux.Open("/pinned", OpenFlags::kCreate | OpenFlags::kReadWrite);
  ASSERT_TRUE(h.ok());
  const auto data = Pattern(4 * kBlockSize, 3);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());

  // Swap the policy (publishes a fresh snapshot) between ops on a live
  // handle; the handle keeps working against each new snapshot.
  ASSERT_TRUE(mux.SetPolicyByName("hotcold").ok());
  std::vector<uint8_t> back(data.size());
  ASSERT_TRUE(mux.Read(*h, 0, back.size(), back.data()).ok());
  EXPECT_EQ(back, data);
  ASSERT_TRUE(mux.SetPolicyByName("lru").ok());
  ASSERT_TRUE(mux.Write(*h, data.size(), data.data(), kBlockSize).ok());
  ASSERT_TRUE(mux.Close(*h).ok());
}

TEST(TierSnapshot, AddTierPublishesNewSnapshotToNewOps) {
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  Mux& mux = rig.mux();
  SimClock& clock = rig.clock();

  vfs::MemFs scratch_fs(&clock);
  auto added = mux.AddTier("scratch", &scratch_fs,
                           device::DeviceProfile::TestRam(64ULL << 20));
  ASSERT_TRUE(added.ok()) << added.status();
  EXPECT_TRUE(mux.TierByName("scratch").ok());
  EXPECT_EQ(mux.TierUsages().size(), 4u);
  ASSERT_TRUE(mux.RemoveTier("scratch").ok());
  EXPECT_FALSE(mux.TierByName("scratch").ok());
  EXPECT_EQ(mux.TierUsages().size(), 3u);
}

// ---- pipelined migration copy --------------------------------------------

TEST(PipelinedCopy, MigrationMatchesSerialResult) {
  for (const bool pipelined : {false, true}) {
    Mux::Options options;
    options.pipelined_migration_copy = pipelined;
    MuxRig rig(options);
    ASSERT_TRUE(rig.ok());
    Mux& mux = rig.mux();

    // Big enough for several 1 MiB slices, odd tail included.
    const auto data = Pattern((5ULL << 20) + 3 * kBlockSize, 42);
    auto h = mux.Open("/mig", OpenFlags::kCreate | OpenFlags::kReadWrite);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
    ASSERT_TRUE(mux.MigrateFile("/mig", rig.hdd_tier()).ok());

    std::vector<uint8_t> back(data.size());
    auto got = mux.Read(*h, 0, back.size(), back.data());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, data.size());
    EXPECT_EQ(back, data) << "pipelined=" << pipelined;
    ASSERT_TRUE(mux.Close(*h).ok());

    const uint64_t copies =
        mux.metrics().CounterValue("mux.migrate.pipeline.copies");
    if (pipelined) {
      EXPECT_GT(copies, 0u);
      // The whole point: the copy charged max(read chain, write chain),
      // so both chains were recorded.
      EXPECT_GT(mux.metrics().CounterValue(
                    "mux.migrate.pipeline.read_chain_ns"),
                0u);
      EXPECT_GT(mux.metrics().CounterValue(
                    "mux.migrate.pipeline.write_chain_ns"),
                0u);
    } else {
      EXPECT_EQ(copies, 0u);
    }
  }
}

// ---- off-lock planning ---------------------------------------------------

TEST(OffLockPlanning, PolicyRoundRunsWhileHandlesAreBusy) {
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  Mux& mux = rig.mux();

  const auto data = Pattern(256 * kBlockSize, 9);
  std::vector<vfs::FileHandle> handles;
  for (int i = 0; i < 8; ++i) {
    auto h = mux.Open("/plan" + std::to_string(i),
                      OpenFlags::kCreate | OpenFlags::kReadWrite);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
    handles.push_back(*h);
  }
  ASSERT_TRUE(mux.SetPolicyByName("hotcold").ok());
  ASSERT_TRUE(mux.RunPolicyMigrations().ok());
  std::vector<uint8_t> back(data.size());
  for (auto h : handles) {
    ASSERT_TRUE(mux.Read(h, 0, back.size(), back.data()).ok());
    EXPECT_EQ(back, data);
    ASSERT_TRUE(mux.Close(h).ok());
  }
}

// ---- control-plane stress (the TSan workload) ----------------------------

TEST(MetadataScalingStress, ForegroundRacesPlanningAndSnapshotSwaps) {
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  Mux& mux = rig.mux();
  SimClock& clock = rig.clock();

  constexpr int kFiles = 6;
  constexpr uint64_t kFileBytes = 64 * kBlockSize;
  std::vector<std::vector<uint8_t>> contents;
  for (int i = 0; i < kFiles; ++i) {
    contents.push_back(Pattern(kFileBytes, 100 + i));
    auto h = mux.Open("/stress" + std::to_string(i),
                      OpenFlags::kCreate | OpenFlags::kReadWrite);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(
        mux.Write(*h, 0, contents[i].data(), contents[i].size()).ok());
    ASSERT_TRUE(mux.Close(*h).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ops{0};
  std::atomic<int> hard_failures{0};
  std::vector<std::thread> threads;

  // Opener/closer + FStat churn: hammers the sharded handle table.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      const std::string path = "/stress" + std::to_string(t);
      while (!stop.load(std::memory_order_relaxed)) {
        auto h = mux.Open(path, OpenFlags::kRead);
        if (!h.ok()) {
          hard_failures.fetch_add(1);
          continue;
        }
        if (!mux.FStat(*h).ok()) {
          hard_failures.fetch_add(1);
        }
        if (!mux.Close(*h).ok()) {
          hard_failures.fetch_add(1);
        }
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Readers on long-lived handles: op setup + shared file locks + heat
  // updates racing the planner's off-lock view build.
  for (int t = 2; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const std::string path = "/stress" + std::to_string(t);
      auto h = mux.Open(path, OpenFlags::kRead);
      if (!h.ok()) {
        hard_failures.fetch_add(1);
        return;
      }
      std::vector<uint8_t> buf(4 * kBlockSize);
      uint64_t off = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!mux.Read(*h, off, buf.size(), buf.data()).ok()) {
          hard_failures.fetch_add(1);
        }
        off = (off + buf.size()) % kFileBytes;
        ops.fetch_add(1, std::memory_order_relaxed);
      }
      (void)mux.Close(*h);
    });
  }

  // Renamer: exclusive ns_mu_ writer racing the shared-lock crowd. The
  // planner may see either name; both resolve to the same inode.
  threads.emplace_back([&] {
    const std::string a = "/stress4";
    const std::string b = "/stress4.renamed";
    bool at_a = true;
    while (!stop.load(std::memory_order_relaxed)) {
      Status s = at_a ? mux.Rename(a, b) : mux.Rename(b, a);
      if (!s.ok()) {
        hard_failures.fetch_add(1);
      }
      at_a = !at_a;
      ops.fetch_add(1, std::memory_order_relaxed);
    }
    if (!at_a) {
      (void)mux.Rename(b, a);
    }
  });

  // StatFs + TierUsages: pure snapshot readers, never touch ns_mu_.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!mux.StatFs().ok()) {
        hard_failures.fetch_add(1);
      }
      (void)mux.TierUsages();
      ops.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Policy rounds: brief shared-lock scan, then planning fully off-lock.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!mux.RunPolicyMigrations().ok()) {
        hard_failures.fetch_add(1);
      }
      ops.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Snapshot swappers: AddTier publishes a new tier snapshot, and
  // SetPolicyByName publishes a new policy, both racing every op above.
  // (Tier *removal* is exercised after the race quiesces: a concurrent
  // in-flight migration may legitimately re-dirty a draining tier.)
  std::vector<std::unique_ptr<vfs::MemFs>> scratch_fs;
  for (int i = 0; i < 4; ++i) {
    scratch_fs.push_back(std::make_unique<vfs::MemFs>(&clock));
  }
  threads.emplace_back([&] {
    size_t added = 0;
    bool lru = false;
    while (!stop.load(std::memory_order_relaxed)) {
      if (added < scratch_fs.size()) {
        auto id = mux.AddTier("scratch" + std::to_string(added),
                              scratch_fs[added].get(),
                              device::DeviceProfile::TestRam(64ULL << 20));
        if (!id.ok()) {
          hard_failures.fetch_add(1);
        }
        ++added;
      }
      if (!mux.SetPolicyByName(lru ? "lru" : "hotcold").ok()) {
        hard_failures.fetch_add(1);
      }
      lru = !lru;
      ops.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  stop.store(true);
  for (auto& t : threads) {
    t.join();
  }

  EXPECT_EQ(hard_failures.load(), 0);
  EXPECT_GT(ops.load(), 0u);

  // Quiesced: drain and drop the scratch tiers (retry — a final policy
  // round may have parked blocks there moments before it stopped).
  for (int i = 0; i < 4; ++i) {
    const std::string name = "scratch" + std::to_string(i);
    if (!mux.TierByName(name).ok()) {
      continue;
    }
    Status removed = Status::Ok();
    for (int attempt = 0; attempt < 5; ++attempt) {
      removed = mux.RemoveTier(name);
      if (removed.ok()) {
        break;
      }
    }
    EXPECT_TRUE(removed.ok()) << name << ": " << removed;
  }

  // Every byte still where the foreground put it.
  std::vector<uint8_t> back(kFileBytes);
  for (int i = 0; i < kFiles; ++i) {
    auto h = mux.Open("/stress" + std::to_string(i), OpenFlags::kRead);
    ASSERT_TRUE(h.ok()) << h.status();
    auto got = mux.Read(*h, 0, back.size(), back.data());
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, kFileBytes);
    EXPECT_EQ(back, contents[i]) << "file " << i;
    ASSERT_TRUE(mux.Close(*h).ok());
  }
}

}  // namespace
}  // namespace mux::testing
