// Tests for VFS path utilities.
#include <gtest/gtest.h>

#include "src/vfs/path.h"

namespace mux::vfs {
namespace {

TEST(PathTest, SplitBasic) {
  EXPECT_EQ(SplitPath("/a/b/c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitPath("/"), std::vector<std::string>{});
  EXPECT_EQ(SplitPath("//a///b/"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitPath(""), std::vector<std::string>{});
}

TEST(PathTest, Normalize) {
  EXPECT_EQ(NormalizePath("//a//b/"), "/a/b");
  EXPECT_EQ(NormalizePath("/"), "/");
  EXPECT_EQ(NormalizePath("/a"), "/a");
  EXPECT_EQ(NormalizePath(""), "/");
}

TEST(PathTest, Dirname) {
  EXPECT_EQ(Dirname("/a/b/c"), "/a/b");
  EXPECT_EQ(Dirname("/a"), "/");
  EXPECT_EQ(Dirname("/"), "/");
}

TEST(PathTest, Basename) {
  EXPECT_EQ(Basename("/a/b/c"), "c");
  EXPECT_EQ(Basename("/a"), "a");
  EXPECT_EQ(Basename("/"), "");
}

TEST(PathTest, Join) {
  EXPECT_EQ(JoinPath("/a", "b"), "/a/b");
  EXPECT_EQ(JoinPath("/a/", "b"), "/a/b");
  EXPECT_EQ(JoinPath("/a", "/b"), "/a/b");
  EXPECT_EQ(JoinPath("/", "b"), "/b");
}

TEST(PathTest, HasPrefix) {
  EXPECT_TRUE(PathHasPrefix("/a/b", "/a"));
  EXPECT_TRUE(PathHasPrefix("/a", "/a"));
  EXPECT_TRUE(PathHasPrefix("/a/b", "/"));
  EXPECT_FALSE(PathHasPrefix("/ab", "/a"));
  EXPECT_FALSE(PathHasPrefix("/a", "/a/b"));
}

TEST(PathTest, Validity) {
  EXPECT_TRUE(IsValidPath("/"));
  EXPECT_TRUE(IsValidPath("/a/b"));
  EXPECT_FALSE(IsValidPath("a/b"));
  EXPECT_FALSE(IsValidPath(""));
  EXPECT_FALSE(IsValidPath("/a/../b"));
  EXPECT_FALSE(IsValidPath("/./a"));
}

}  // namespace
}  // namespace mux::vfs
