// Generic file-system contract test suite.
//
// Every FileSystem implementation in the repository — MemFs, NovaFs,
// XfsLite, ExtLite, StrataFs and Mux itself — is instantiated against this
// battery. The paper's whole premise is that heterogeneous file systems are
// interchangeable behind the VFS interface; this suite is what makes that
// interchangeability checkable.
#ifndef MUX_TESTS_FS_CONTRACT_H_
#define MUX_TESTS_FS_CONTRACT_H_

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "src/common/clock.h"
#include "src/vfs/file_system.h"

namespace mux::testing {

// Owns a file system plus whatever devices/substrate it needs.
class FsFixture {
 public:
  virtual ~FsFixture() = default;
  virtual vfs::FileSystem* fs() = 0;
  virtual SimClock* clock() = 0;
};

struct FsContractParam {
  std::string name;
  std::function<std::unique_ptr<FsFixture>()> make;
};

inline std::string FsContractParamName(
    const ::testing::TestParamInfo<FsContractParam>& info) {
  return info.param.name;
}

class FsContractTest : public ::testing::TestWithParam<FsContractParam> {
 protected:
  void SetUp() override {
    fixture_ = GetParam().make();
    fs_ = fixture_->fs();
    clock_ = fixture_->clock();
  }

  std::unique_ptr<FsFixture> fixture_;
  vfs::FileSystem* fs_ = nullptr;
  SimClock* clock_ = nullptr;
};

}  // namespace mux::testing

#endif  // MUX_TESTS_FS_CONTRACT_H_
