// SCM cache controller tests: admission control, invalidation (including
// the miss-sketch regression), DAX mapping lifetime, and the observability
// hooks.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/clock.h"
#include "src/core/cache_controller.h"
#include "src/core/cost_model.h"
#include "src/device/pm_device.h"
#include "src/fs/novafs/novafs.h"
#include "src/obs/metrics.h"

namespace mux::core {
namespace {

constexpr uint64_t kBlock = CacheController::kBlockSize;

class CacheControllerTest : public ::testing::Test {
 protected:
  CacheControllerTest()
      : pm_(device::DeviceProfile::OptanePm(64ULL << 20), &clock_),
        novafs_(&pm_, &clock_) {
    EXPECT_TRUE(novafs_.Format().ok());
  }

  static CacheController::Options SmallCache() {
    CacheController::Options options;
    options.capacity_blocks = 8;
    options.admission_threshold = 2;
    return options;
  }

  SimClock clock_;
  device::PmDevice pm_;
  fs::NovaFs novafs_;
  CostModel costs_;
};

TEST_F(CacheControllerTest, AdmitsAfterThresholdMisses) {
  CacheController cache(&novafs_, &clock_, costs_, SmallCache());
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> data(kBlock, 0xAB);
  std::vector<uint8_t> out(kBlock);

  cache.OnMiss(1, 0, data.data());
  EXPECT_EQ(cache.stats().admissions, 0u);
  EXPECT_FALSE(cache.TryRead(1, 0, 0, kBlock, out.data()));

  cache.OnMiss(1, 0, data.data());
  EXPECT_EQ(cache.stats().admissions, 1u);
  ASSERT_TRUE(cache.TryRead(1, 0, 0, kBlock, out.data()));
  EXPECT_EQ(std::memcmp(out.data(), data.data(), kBlock), 0);
}

// Regression: InvalidateBlock used to bail out before touching the
// admission sketch when the block was not resident, so the counted misses
// of the *old* content survived and a single post-invalidation miss could
// re-admit the block early.
TEST_F(CacheControllerTest, InvalidateBlockForgetsAdmissionSketch) {
  CacheController cache(&novafs_, &clock_, costs_, SmallCache());
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> data(kBlock, 0x11);

  cache.OnMiss(1, 0, data.data());            // sketch count = 1
  cache.InvalidateBlock(1, 0);                // content changed: forget it
  cache.OnMiss(1, 0, data.data());            // must start over at 1
  EXPECT_EQ(cache.stats().admissions, 0u);
  cache.OnMiss(1, 0, data.data());            // now the threshold is met
  EXPECT_EQ(cache.stats().admissions, 1u);
}

TEST_F(CacheControllerTest, InvalidateBlockDropsCachedCopy) {
  CacheController cache(&novafs_, &clock_, costs_, SmallCache());
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> data(kBlock, 0x22);
  std::vector<uint8_t> out(kBlock);

  cache.OnMiss(1, 0, data.data());
  cache.OnMiss(1, 0, data.data());
  ASSERT_TRUE(cache.TryRead(1, 0, 0, kBlock, out.data()));

  cache.InvalidateBlock(1, 0);
  EXPECT_FALSE(cache.TryRead(1, 0, 0, kBlock, out.data()));
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.ResidentBlocks(), 0u);
}

// Regression (file-granularity variant): InvalidateFile swept the resident
// index but left the file's blocks in the miss sketch.
TEST_F(CacheControllerTest, InvalidateFileForgetsSketchForAllBlocks) {
  CacheController cache(&novafs_, &clock_, costs_, SmallCache());
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> data(kBlock, 0x33);

  cache.OnMiss(7, 0, data.data());
  cache.OnMiss(7, 1, data.data());
  cache.OnMiss(8, 0, data.data());
  cache.InvalidateFile(7);

  cache.OnMiss(7, 0, data.data());  // starts over: no admission
  cache.OnMiss(7, 1, data.data());
  EXPECT_EQ(cache.stats().admissions, 0u);
  cache.OnMiss(8, 0, data.data());  // file 8's sketch was untouched
  EXPECT_EQ(cache.stats().admissions, 1u);
}

// Regression: the destructor used to close the cache file without
// DaxUnmap'ing it, leaking the mapping the PM file system handed out.
TEST_F(CacheControllerTest, DestructorReleasesDaxMapping) {
  ASSERT_EQ(novafs_.ActiveDaxMappings(), 0u);
  {
    CacheController cache(&novafs_, &clock_, costs_, SmallCache());
    ASSERT_TRUE(cache.Init().ok());
    EXPECT_EQ(novafs_.ActiveDaxMappings(), 1u);
  }
  EXPECT_EQ(novafs_.ActiveDaxMappings(), 0u);
}

TEST_F(CacheControllerTest, WriteThroughUpdatesCachedCopy) {
  CacheController cache(&novafs_, &clock_, costs_, SmallCache());
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> data(kBlock, 0x44);
  std::vector<uint8_t> out(kBlock);

  cache.OnMiss(1, 0, data.data());
  cache.OnMiss(1, 0, data.data());
  const uint8_t patch[4] = {9, 9, 9, 9};
  cache.OnWrite(1, 0, 128, sizeof(patch), patch);
  ASSERT_TRUE(cache.TryRead(1, 0, 128, sizeof(patch), out.data()));
  EXPECT_EQ(std::memcmp(out.data(), patch, sizeof(patch)), 0);
}

TEST_F(CacheControllerTest, ObservesHitMissAdmissionLatency) {
  CacheController cache(&novafs_, &clock_, costs_, SmallCache());
  obs::MetricsRegistry metrics;
  cache.SetObs(&metrics);
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> data(kBlock, 0x55);
  std::vector<uint8_t> out(kBlock);

  EXPECT_FALSE(cache.TryRead(1, 0, 0, kBlock, out.data()));  // miss
  cache.OnMiss(1, 0, data.data());
  cache.OnMiss(1, 0, data.data());                           // admission
  ASSERT_TRUE(cache.TryRead(1, 0, 0, kBlock, out.data()));   // hit

  EXPECT_EQ(metrics.HistogramValue("cache.miss_ns").count(), 1u);
  EXPECT_EQ(metrics.HistogramValue("cache.admission_ns").count(), 1u);
  EXPECT_EQ(metrics.HistogramValue("cache.hit_ns").count(), 1u);
  // Every path at least pays the cache probe charge.
  EXPECT_GE(metrics.HistogramValue("cache.hit_ns").min(),
            static_cast<uint64_t>(costs_.cache_lookup_ns));
}

}  // namespace
}  // namespace mux::core
