// SCM cache controller tests: admission control, invalidation (including
// the miss-sketch regression), DAX mapping lifetime, and the observability
// hooks.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/clock.h"
#include "src/core/cache_controller.h"
#include "src/core/cost_model.h"
#include "src/device/pm_device.h"
#include "src/fs/novafs/novafs.h"
#include "src/obs/metrics.h"

namespace mux::core {
namespace {

constexpr uint64_t kBlock = CacheController::kBlockSize;

class CacheControllerTest : public ::testing::Test {
 protected:
  CacheControllerTest()
      : pm_(device::DeviceProfile::OptanePm(64ULL << 20), &clock_),
        novafs_(&pm_, &clock_) {
    EXPECT_TRUE(novafs_.Format().ok());
  }

  static CacheController::Options SmallCache() {
    CacheController::Options options;
    options.capacity_blocks = 8;
    options.admission_threshold = 2;
    return options;
  }

  SimClock clock_;
  device::PmDevice pm_;
  fs::NovaFs novafs_;
  CostModel costs_;
};

TEST_F(CacheControllerTest, AdmitsAfterThresholdMisses) {
  CacheController cache(&novafs_, &clock_, costs_, SmallCache());
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> data(kBlock, 0xAB);
  std::vector<uint8_t> out(kBlock);

  cache.OnMiss(1, 0, data.data());
  EXPECT_EQ(cache.stats().admissions, 0u);
  EXPECT_FALSE(cache.TryRead(1, 0, 0, kBlock, out.data()));

  cache.OnMiss(1, 0, data.data());
  EXPECT_EQ(cache.stats().admissions, 1u);
  ASSERT_TRUE(cache.TryRead(1, 0, 0, kBlock, out.data()));
  EXPECT_EQ(std::memcmp(out.data(), data.data(), kBlock), 0);
}

// Regression: InvalidateBlock used to bail out before touching the
// admission sketch when the block was not resident, so the counted misses
// of the *old* content survived and a single post-invalidation miss could
// re-admit the block early.
TEST_F(CacheControllerTest, InvalidateBlockForgetsAdmissionSketch) {
  CacheController cache(&novafs_, &clock_, costs_, SmallCache());
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> data(kBlock, 0x11);

  cache.OnMiss(1, 0, data.data());            // sketch count = 1
  cache.InvalidateBlock(1, 0);                // content changed: forget it
  cache.OnMiss(1, 0, data.data());            // must start over at 1
  EXPECT_EQ(cache.stats().admissions, 0u);
  cache.OnMiss(1, 0, data.data());            // now the threshold is met
  EXPECT_EQ(cache.stats().admissions, 1u);
}

TEST_F(CacheControllerTest, InvalidateBlockDropsCachedCopy) {
  CacheController cache(&novafs_, &clock_, costs_, SmallCache());
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> data(kBlock, 0x22);
  std::vector<uint8_t> out(kBlock);

  cache.OnMiss(1, 0, data.data());
  cache.OnMiss(1, 0, data.data());
  ASSERT_TRUE(cache.TryRead(1, 0, 0, kBlock, out.data()));

  cache.InvalidateBlock(1, 0);
  EXPECT_FALSE(cache.TryRead(1, 0, 0, kBlock, out.data()));
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.ResidentBlocks(), 0u);
}

// Regression (file-granularity variant): InvalidateFile swept the resident
// index but left the file's blocks in the miss sketch.
TEST_F(CacheControllerTest, InvalidateFileForgetsSketchForAllBlocks) {
  CacheController cache(&novafs_, &clock_, costs_, SmallCache());
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> data(kBlock, 0x33);

  cache.OnMiss(7, 0, data.data());
  cache.OnMiss(7, 1, data.data());
  cache.OnMiss(8, 0, data.data());
  cache.InvalidateFile(7);

  cache.OnMiss(7, 0, data.data());  // starts over: no admission
  cache.OnMiss(7, 1, data.data());
  EXPECT_EQ(cache.stats().admissions, 0u);
  cache.OnMiss(8, 0, data.data());  // file 8's sketch was untouched
  EXPECT_EQ(cache.stats().admissions, 1u);
}

// Regression: the destructor used to close the cache file without
// DaxUnmap'ing it, leaking the mapping the PM file system handed out.
TEST_F(CacheControllerTest, DestructorReleasesDaxMapping) {
  ASSERT_EQ(novafs_.ActiveDaxMappings(), 0u);
  {
    CacheController cache(&novafs_, &clock_, costs_, SmallCache());
    ASSERT_TRUE(cache.Init().ok());
    EXPECT_EQ(novafs_.ActiveDaxMappings(), 1u);
  }
  EXPECT_EQ(novafs_.ActiveDaxMappings(), 0u);
}

TEST_F(CacheControllerTest, WriteThroughUpdatesCachedCopy) {
  CacheController cache(&novafs_, &clock_, costs_, SmallCache());
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> data(kBlock, 0x44);
  std::vector<uint8_t> out(kBlock);

  cache.OnMiss(1, 0, data.data());
  cache.OnMiss(1, 0, data.data());
  const uint8_t patch[4] = {9, 9, 9, 9};
  cache.OnWrite(1, 0, 128, sizeof(patch), patch);
  ASSERT_TRUE(cache.TryRead(1, 0, 128, sizeof(patch), out.data()));
  EXPECT_EQ(std::memcmp(out.data(), patch, sizeof(patch)), 0);
}

TEST_F(CacheControllerTest, ObservesHitMissAdmissionLatency) {
  CacheController cache(&novafs_, &clock_, costs_, SmallCache());
  obs::MetricsRegistry metrics;
  cache.SetObs(&metrics);
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> data(kBlock, 0x55);
  std::vector<uint8_t> out(kBlock);

  EXPECT_FALSE(cache.TryRead(1, 0, 0, kBlock, out.data()));  // miss
  cache.OnMiss(1, 0, data.data());
  cache.OnMiss(1, 0, data.data());                           // admission
  ASSERT_TRUE(cache.TryRead(1, 0, 0, kBlock, out.data()));   // hit

  EXPECT_EQ(metrics.HistogramValue("cache.miss_ns").count(), 1u);
  EXPECT_EQ(metrics.HistogramValue("cache.admission_ns").count(), 1u);
  EXPECT_EQ(metrics.HistogramValue("cache.hit_ns").count(), 1u);
  // Every path at least pays the cache probe charge.
  EXPECT_GE(metrics.HistogramValue("cache.hit_ns").min(),
            static_cast<uint64_t>(costs_.cache_lookup_ns));
}

// Regression: the admission sketch used to be an unbounded map that OnMiss
// wiped with clear() when it outgrew capacity x8 — a candidate one miss
// short of admission lost ALL its history at once. Halving decay keeps half:
// with threshold 4, a block at count 3 decays to 1 and needs only 3 more
// misses (a wipe would leave it needing 4).
TEST_F(CacheControllerTest, HalvingDecayKeepsHotCandidates) {
  CacheController::Options options;
  options.capacity_blocks = 8;
  options.shards = 1;  // one sketch, so filler misses drive its decay clock
  options.admission_threshold = 4;
  options.sketch_decay_interval = 8;
  CacheController cache(&novafs_, &clock_, costs_, options);
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> data(kBlock, 0x66);

  for (int i = 0; i < 3; ++i) {
    cache.OnMiss(1, 0, data.data());  // count 3: one miss short
  }
  // Filler misses on other blocks push the sketch past its decay interval.
  for (uint64_t b = 0; b < 5; ++b) {
    cache.OnMiss(2, b, data.data());
  }
  ASSERT_GE(cache.stats().sketch_decays, 1u);
  EXPECT_EQ(cache.stats().admissions, 0u);

  // Post-decay count is 1 (not 0): three misses reach the threshold again.
  cache.OnMiss(1, 0, data.data());
  cache.OnMiss(1, 0, data.data());
  EXPECT_EQ(cache.stats().admissions, 0u);
  cache.OnMiss(1, 0, data.data());
  EXPECT_EQ(cache.stats().admissions, 1u);
  EXPECT_TRUE(cache.CheckConsistency().ok());
}

TEST_F(CacheControllerTest, InvalidateRangeKeepsBlocksBelowRange) {
  CacheController::Options options;
  options.capacity_blocks = 32;
  options.admission_threshold = 1;
  CacheController cache(&novafs_, &clock_, costs_, options);
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> data(kBlock, 0x77);
  std::vector<uint8_t> out(kBlock);

  for (uint64_t b = 0; b < 10; ++b) {
    cache.OnMiss(1, b, data.data());
  }
  ASSERT_EQ(cache.stats().admissions, 10u);

  // Open-ended range (the truncate shape) exercises the shard-scan path.
  cache.InvalidateRange(1, 5, UINT64_MAX);
  for (uint64_t b = 0; b < 5; ++b) {
    EXPECT_TRUE(cache.TryRead(1, b, 0, kBlock, out.data())) << b;
  }
  for (uint64_t b = 5; b < 10; ++b) {
    EXPECT_FALSE(cache.TryRead(1, b, 0, kBlock, out.data())) << b;
  }
  EXPECT_EQ(cache.stats().invalidations, 5u);

  // Small closed range exercises the per-block probe path.
  cache.InvalidateRange(1, 2, 3);
  EXPECT_TRUE(cache.TryRead(1, 0, 0, kBlock, out.data()));
  EXPECT_FALSE(cache.TryRead(1, 2, 0, kBlock, out.data()));
  EXPECT_FALSE(cache.TryRead(1, 3, 0, kBlock, out.data()));
  EXPECT_TRUE(cache.TryRead(1, 4, 0, kBlock, out.data()));
  EXPECT_TRUE(cache.CheckConsistency().ok());
}

TEST_F(CacheControllerTest, InvalidateRangeForgetsSketchInRange) {
  CacheController::Options options;
  options.capacity_blocks = 32;
  options.admission_threshold = 2;
  CacheController cache(&novafs_, &clock_, costs_, options);
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> data(kBlock, 0x88);

  cache.OnMiss(1, 600, data.data());  // count 1 in the sketch, not resident
  cache.OnMiss(1, 2, data.data());    // below the range: history survives
  cache.InvalidateRange(1, 500, UINT64_MAX);

  cache.OnMiss(1, 600, data.data());  // must start over
  EXPECT_EQ(cache.stats().admissions, 0u);
  cache.OnMiss(1, 600, data.data());
  EXPECT_EQ(cache.stats().admissions, 1u);
  cache.OnMiss(1, 2, data.data());    // second miss completes the pair
  EXPECT_EQ(cache.stats().admissions, 2u);
}

TEST_F(CacheControllerTest, StagedBlockReadableBeforeAndAfterFlush) {
  CacheController::Options options;
  options.capacity_blocks = 16;
  options.admission_threshold = 1;
  options.agg_buffer_bytes = 4 * kBlock;
  CacheController cache(&novafs_, &clock_, costs_, options);
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> data(kBlock, 0x99);
  std::vector<uint8_t> out(kBlock);

  pm_.ResetStats();
  cache.OnMiss(1, 0, data.data());
  EXPECT_EQ(cache.StagedBlocks(), 1u);
  EXPECT_EQ(pm_.stats().write_ops, 0u);  // staged: no DAX write yet

  // Readable and writable while staged.
  ASSERT_TRUE(cache.TryRead(1, 0, 0, kBlock, out.data()));
  EXPECT_EQ(std::memcmp(out.data(), data.data(), kBlock), 0);
  const uint8_t patch[4] = {7, 7, 7, 7};
  cache.OnWrite(1, 0, 64, sizeof(patch), patch);

  cache.FlushAggregationBuffer();
  EXPECT_EQ(cache.StagedBlocks(), 0u);
  EXPECT_EQ(cache.stats().agg_flushes, 1u);
  EXPECT_EQ(cache.stats().agg_flush_bytes, kBlock);
  EXPECT_EQ(pm_.stats().write_ops, 1u);  // ONE bulk DAX write

  // The staged-time write survived the flush.
  ASSERT_TRUE(cache.TryRead(1, 0, 64, sizeof(patch), out.data()));
  EXPECT_EQ(std::memcmp(out.data(), patch, sizeof(patch)), 0);
  EXPECT_TRUE(cache.CheckConsistency().ok());
}

// The tentpole's write-coalescing claim, measured at the device: admitting N
// blocks through the aggregation buffer issues far fewer, far larger DAX
// writes than block-at-a-time admission.
TEST_F(CacheControllerTest, AggregationCoalescesDaxWrites) {
  auto admit = [&](CacheController& cache, uint64_t blocks) {
    std::vector<uint8_t> data(kBlock, 0xAA);
    for (uint64_t b = 0; b < blocks; ++b) {
      cache.OnMiss(42, b, data.data());
    }
    cache.FlushAggregationBuffer();
  };
  constexpr uint64_t kAdmissions = 32;

  CacheController::Options direct;
  direct.capacity_blocks = 128;
  direct.admission_threshold = 1;
  direct.agg_buffer_bytes = 0;  // block-at-a-time ablation
  // One shard = one staging lane, so the flush geometry below is exact
  // (the per-shard split divides the buffer otherwise).
  direct.shards = 1;
  direct.cache_path = "/.cache_direct";
  CacheController direct_cache(&novafs_, &clock_, costs_, direct);
  ASSERT_TRUE(direct_cache.Init().ok());
  pm_.ResetStats();
  admit(direct_cache, kAdmissions);
  const uint64_t direct_writes = pm_.stats().write_ops;

  CacheController::Options agg = direct;
  agg.agg_buffer_bytes = 16 * kBlock;
  agg.cache_path = "/.cache_agg";
  CacheController agg_cache(&novafs_, &clock_, costs_, agg);
  ASSERT_TRUE(agg_cache.Init().ok());
  pm_.ResetStats();
  admit(agg_cache, kAdmissions);
  const uint64_t agg_writes = pm_.stats().write_ops;

  EXPECT_EQ(direct_writes, kAdmissions);
  EXPECT_EQ(agg_writes, kAdmissions / 16);  // 2 flushes of 16 blocks
  const auto stats = agg_cache.stats();
  ASSERT_EQ(stats.agg_flushes, kAdmissions / 16);
  EXPECT_EQ(stats.agg_flush_bytes / stats.agg_flushes, 16 * kBlock);
  EXPECT_EQ(direct_cache.stats().agg_flushes, 0u);
  // Both caches serve the same content.
  std::vector<uint8_t> out(kBlock);
  ASSERT_TRUE(agg_cache.TryRead(42, 0, 0, kBlock, out.data()));
  ASSERT_TRUE(direct_cache.TryRead(42, 0, 0, kBlock, out.data()));

  // Sharded staging splits the same budget into per-shard lanes: flushes
  // are smaller but coalescing survives (strictly fewer DAX writes than
  // block-at-a-time), and every staged block still lands.
  CacheController::Options sharded = agg;
  sharded.shards = 4;
  sharded.agg_buffer_bytes = 16 * kBlock;  // 4 blocks per lane
  sharded.cache_path = "/.cache_agg_sharded";
  CacheController sharded_cache(&novafs_, &clock_, costs_, sharded);
  ASSERT_TRUE(sharded_cache.Init().ok());
  pm_.ResetStats();
  admit(sharded_cache, kAdmissions);
  EXPECT_LT(pm_.stats().write_ops, kAdmissions / 2);
  EXPECT_EQ(sharded_cache.stats().admissions, kAdmissions);
  ASSERT_TRUE(sharded_cache.TryRead(42, 0, 0, kBlock, out.data()));
  EXPECT_TRUE(sharded_cache.CheckConsistency().ok());
}

// A staged block invalidated before its flush must not resurface when the
// flush runs (the cancelled entry's bytes would land in a slot that may
// already belong to a different key).
TEST_F(CacheControllerTest, InvalidatedStagedBlockDoesNotResurface) {
  CacheController::Options options;
  options.capacity_blocks = 16;
  options.admission_threshold = 1;
  options.agg_buffer_bytes = 8 * kBlock;
  CacheController cache(&novafs_, &clock_, costs_, options);
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> old_data(kBlock, 0x01);
  std::vector<uint8_t> new_data(kBlock, 0x02);
  std::vector<uint8_t> out(kBlock);

  cache.OnMiss(1, 0, old_data.data());  // staged
  cache.InvalidateBlock(1, 0);          // cancelled before flush
  EXPECT_EQ(cache.stats().agg_cancelled, 1u);
  EXPECT_FALSE(cache.TryRead(1, 0, 0, kBlock, out.data()));

  // Re-admit with NEW content; the cancelled entry must not clobber it.
  cache.OnMiss(1, 0, new_data.data());
  cache.FlushAggregationBuffer();
  ASSERT_TRUE(cache.TryRead(1, 0, 0, kBlock, out.data()));
  EXPECT_EQ(std::memcmp(out.data(), new_data.data(), kBlock), 0);
  EXPECT_TRUE(cache.CheckConsistency().ok());
}

TEST_F(CacheControllerTest, SingleShardAblationBehavesLikeSharded) {
  for (const uint32_t shards : {1u, 8u}) {
    CacheController::Options options;
    options.capacity_blocks = 64;
    options.admission_threshold = 2;
    options.shards = shards;
    options.cache_path = "/.cache_s" + std::to_string(shards);
    CacheController cache(&novafs_, &clock_, costs_, options);
    ASSERT_TRUE(cache.Init().ok());
    EXPECT_EQ(cache.ShardCount(), shards);

    std::vector<uint8_t> data(kBlock, 0xBB);
    std::vector<uint8_t> out(kBlock);
    for (uint64_t b = 0; b < 16; ++b) {
      cache.OnMiss(1, b, data.data());
      cache.OnMiss(1, b, data.data());
      ASSERT_TRUE(cache.TryRead(1, b, 0, kBlock, out.data())) << b;
    }
    const auto stats = cache.stats();
    EXPECT_EQ(stats.admissions, 16u);
    EXPECT_EQ(stats.hits, 16u);
    EXPECT_EQ(cache.ResidentBlocks(), 16u);
    EXPECT_TRUE(cache.CheckConsistency().ok());
  }
}

TEST_F(CacheControllerTest, EvictionLeavesGhostForFastReadmission) {
  CacheController::Options options;
  options.capacity_blocks = 4;
  options.shards = 1;
  options.admission_threshold = 2;
  options.agg_buffer_bytes = 0;
  CacheController cache(&novafs_, &clock_, costs_, options);
  ASSERT_TRUE(cache.Init().ok());
  std::vector<uint8_t> data(kBlock, 0xCC);
  std::vector<uint8_t> out(kBlock);

  // Fill the cache, then push enough new admissions through to evict the
  // oldest resident.
  for (uint64_t b = 0; b < 8; ++b) {
    cache.OnMiss(1, b, data.data());
    cache.OnMiss(1, b, data.data());
  }
  ASSERT_GE(cache.stats().evictions, 1u);
  // Find an evicted block: its ghost entry readmits it after ONE miss
  // instead of the threshold's two.
  for (uint64_t b = 0; b < 8; ++b) {
    if (cache.TryRead(1, b, 0, kBlock, out.data())) {
      continue;
    }
    const uint64_t admissions_before = cache.stats().admissions;
    cache.OnMiss(1, b, data.data());
    EXPECT_EQ(cache.stats().admissions, admissions_before + 1)
        << "ghost entry should readmit block " << b << " after one miss";
    break;
  }
  EXPECT_TRUE(cache.CheckConsistency().ok());
}

}  // namespace
}  // namespace mux::core
