// Tests for the Vfs mount router.
#include <gtest/gtest.h>

#include <cstring>

#include "src/common/clock.h"
#include "src/vfs/memfs.h"
#include "src/vfs/vfs.h"

namespace mux::vfs {
namespace {

class VfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(vfs_.Mount("/mnt/a", &a_).ok());
    ASSERT_TRUE(vfs_.Mount("/mnt/b", &b_).ok());
  }

  SimClock clock_;
  MemFs a_{&clock_};
  MemFs b_{&clock_};
  Vfs vfs_;
};

TEST_F(VfsTest, RoutesByMountPoint) {
  auto h = vfs_.Open("/mnt/a/file", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  uint8_t byte = 7;
  ASSERT_TRUE(vfs_.Write(*h, 0, &byte, 1).ok());
  ASSERT_TRUE(vfs_.Close(*h).ok());

  // The file exists inside fs a_ at the stripped path.
  auto st = a_.Stat("/file");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 1u);
  // And not in b_.
  EXPECT_EQ(b_.Stat("/file").status().code(), ErrorCode::kNotFound);
}

TEST_F(VfsTest, LongestPrefixWins) {
  MemFs nested(&clock_);
  ASSERT_TRUE(vfs_.Mount("/mnt/a/nested", &nested).ok());
  ASSERT_TRUE(vfs_.Mkdir("/mnt/a/nested/dir").ok());
  EXPECT_TRUE(nested.Stat("/dir").ok());
  EXPECT_FALSE(a_.Stat("/nested/dir").ok());
}

TEST_F(VfsTest, UnmountedPathFails) {
  auto h = vfs_.Open("/elsewhere/f", OpenFlags::kCreateRw);
  EXPECT_EQ(h.status().code(), ErrorCode::kNotFound);
}

TEST_F(VfsTest, DuplicateMountRejected) {
  MemFs other(&clock_);
  EXPECT_EQ(vfs_.Mount("/mnt/a", &other).code(), ErrorCode::kExists);
}

TEST_F(VfsTest, UnmountWithOpenHandlesBusy) {
  auto h = vfs_.Open("/mnt/a/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(vfs_.Unmount("/mnt/a").code(), ErrorCode::kBusy);
  ASSERT_TRUE(vfs_.Close(*h).ok());
  EXPECT_TRUE(vfs_.Unmount("/mnt/a").ok());
  EXPECT_EQ(vfs_.Open("/mnt/a/f", OpenFlags::kRead).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(VfsTest, CrossMountRenameRejected) {
  ASSERT_TRUE(vfs_.Open("/mnt/a/f", OpenFlags::kCreateRw).ok());
  EXPECT_EQ(vfs_.Rename("/mnt/a/f", "/mnt/b/f").code(),
            ErrorCode::kNotSupported);
  EXPECT_TRUE(vfs_.Rename("/mnt/a/f", "/mnt/a/g").ok());
}

TEST_F(VfsTest, ReadWriteThroughRouter) {
  auto h = vfs_.Open("/mnt/b/data", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  const char msg[] = "routed";
  ASSERT_TRUE(
      vfs_.Write(*h, 10, reinterpret_cast<const uint8_t*>(msg), 6).ok());
  uint8_t out[6];
  auto n = vfs_.Read(*h, 10, 6, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 6u);
  EXPECT_EQ(std::memcmp(out, msg, 6), 0);
  auto st = vfs_.FStat(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 16u);
  EXPECT_TRUE(vfs_.Fsync(*h).ok());
  EXPECT_TRUE(vfs_.Truncate(*h, 4).ok());
}

TEST_F(VfsTest, MountPointsListed) {
  auto points = vfs_.MountPoints();
  ASSERT_EQ(points.size(), 2u);
}

TEST_F(VfsTest, StatAndReadDirRouted) {
  ASSERT_TRUE(vfs_.Mkdir("/mnt/a/d").ok());
  ASSERT_TRUE(vfs_.Open("/mnt/a/d/f", OpenFlags::kCreateRw).ok());
  auto entries = vfs_.ReadDir("/mnt/a/d");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "f");
  EXPECT_TRUE(vfs_.Stat("/mnt/a/d/f").ok());
  EXPECT_TRUE(vfs_.Unlink("/mnt/a/d/f").ok());
  EXPECT_TRUE(vfs_.Rmdir("/mnt/a/d").ok());
}

TEST_F(VfsTest, MountRootAccess) {
  // Stat of the mount point itself resolves to the FS root.
  auto st = vfs_.Stat("/mnt/a");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->type, FileType::kDirectory);
}

}  // namespace
}  // namespace mux::vfs
