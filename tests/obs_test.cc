// Observability subsystem tests: MetricsRegistry, ScopedTimer, TraceBuffer,
// Histogram percentile edge cases, the Vfs entry-point instrumentation, and
// the end-to-end software/media decomposition through the full Mux stack.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/obs/metrics.h"
#include "src/obs/phase.h"
#include "src/obs/trace.h"
#include "src/vfs/memfs.h"
#include "src/vfs/types.h"
#include "src/vfs/vfs.h"
#include "tests/mux_rig.h"

namespace mux {
namespace {

using obs::MetricsRegistry;
using obs::ScopedTimer;
using obs::TraceBuffer;
using obs::TraceEvent;

std::string ReadHostFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- MetricsRegistry ----------------------------------------------------

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("never.touched"), 0u);
  registry.Add("a.ns", 5);
  registry.Add("a.ns", 7);
  registry.Increment("b.ops");
  EXPECT_EQ(registry.CounterValue("a.ns"), 12u);
  EXPECT_EQ(registry.CounterValue("b.ops"), 1u);
}

TEST(MetricsRegistryTest, ObserveBuildsHistograms) {
  MetricsRegistry registry;
  registry.Observe("lat", 100);
  registry.Observe("lat", 300);
  registry.Observe("lat", 200);
  const Histogram hist = registry.HistogramValue("lat");
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.min(), 100u);
  EXPECT_EQ(hist.max(), 300u);
  EXPECT_EQ(registry.HistogramValue("never.observed").count(), 0u);
}

TEST(MetricsRegistryTest, SnapshotsAreSorted) {
  MetricsRegistry registry;
  registry.Add("b", 1);
  registry.Add("a", 1);
  registry.Add("c", 1);
  const auto counters = registry.Counters();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].first, "a");
  EXPECT_EQ(counters[1].first, "b");
  EXPECT_EQ(counters[2].first, "c");
}

TEST(MetricsRegistryTest, ToJsonNamesEverything) {
  MetricsRegistry registry;
  registry.Add("device.pm.media_ns", 42);
  registry.Observe("mux.read.latency_ns", 1000);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"device.pm.media_ns\":42"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"mux.read.latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST(MetricsRegistryTest, DumpToFileWritesJson) {
  MetricsRegistry registry;
  registry.Add("some.counter", 7);
  const std::string path = ::testing::TempDir() + "/obs_metrics_dump.json";
  ASSERT_TRUE(registry.DumpToFile(path).ok());
  const std::string contents = ReadHostFile(path);
  EXPECT_NE(contents.find("\"some.counter\":7"), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsRegistryTest, ResetClears) {
  MetricsRegistry registry;
  registry.Add("a", 1);
  registry.Observe("h", 10);
  registry.Reset();
  EXPECT_EQ(registry.CounterValue("a"), 0u);
  EXPECT_TRUE(registry.Counters().empty());
  EXPECT_EQ(registry.HistogramValue("h").count(), 0u);
}

// ---- ScopedTimer --------------------------------------------------------

TEST(ScopedTimerTest, RecordsSimulatedElapsedOnDestruction) {
  SimClock clock;
  MetricsRegistry registry;
  {
    ScopedTimer timer(&registry, &clock, "op.ns");
    clock.Advance(500);
  }
  const Histogram hist = registry.HistogramValue("op.ns");
  ASSERT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.max(), 500u);
}

TEST(ScopedTimerTest, StopIsIdempotent) {
  SimClock clock;
  MetricsRegistry registry;
  ScopedTimer timer(&registry, &clock, "op.ns");
  clock.Advance(200);
  EXPECT_EQ(timer.Stop(), 200u);
  clock.Advance(999);
  timer.Stop();  // second Stop (and the destructor) must not re-record
  EXPECT_EQ(registry.HistogramValue("op.ns").count(), 1u);
  EXPECT_EQ(registry.HistogramValue("op.ns").max(), 200u);
}

TEST(ScopedTimerTest, NullRegistryIsANoOp) {
  SimClock clock;
  ScopedTimer timer(nullptr, &clock, "op.ns");
  clock.Advance(100);
  EXPECT_EQ(timer.Stop(), 100u);  // still measures, just records nowhere
}

// ---- TraceBuffer --------------------------------------------------------

TraceEvent Event(const char* op, SimTime start) {
  TraceEvent event;
  event.layer = "test";
  event.op = op;
  event.start_ns = start;
  return event;
}

TEST(TraceBufferTest, RingKeepsMostRecent) {
  TraceBuffer buffer(4);
  for (int i = 0; i < 6; ++i) {
    buffer.Record(Event(std::to_string(i).c_str(), i));
  }
  EXPECT_EQ(buffer.recorded(), 6u);
  EXPECT_EQ(buffer.dropped(), 2u);
  const auto events = buffer.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().op, "2");  // oldest retained
  EXPECT_EQ(events.back().op, "5");   // newest
}

TEST(TraceBufferTest, ToJsonHasCountsAndEvents) {
  TraceBuffer buffer(4);
  TraceEvent event = Event("read", 10);
  event.tier = 1;
  event.bytes = 4096;
  event.duration_ns = 99;
  buffer.Record(event);
  const std::string json = buffer.ToJson();
  EXPECT_NE(json.find("\"capacity\":4"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"read\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
}

TEST(TraceBufferTest, ClearEmptiesTheRing) {
  TraceBuffer buffer(4);
  buffer.Record(Event("x", 0));
  buffer.Clear();
  EXPECT_TRUE(buffer.Events().empty());
}

// ---- Histogram percentile edge cases ------------------------------------

TEST(HistogramPercentileTest, EmptyHistogramIsZero) {
  Histogram hist;
  EXPECT_EQ(hist.Percentile(50), 0.0);
}

TEST(HistogramPercentileTest, SingleValueEveryPercentile) {
  Histogram hist;
  hist.Add(1000);
  // One sample in the [512, 1024) bucket: interpolation would undershoot at
  // p0 and overshoot at p100 without the clamp to the observed range.
  EXPECT_EQ(hist.Percentile(0), 1000.0);
  EXPECT_EQ(hist.Percentile(50), 1000.0);
  EXPECT_EQ(hist.Percentile(100), 1000.0);
}

TEST(HistogramPercentileTest, PercentilesClampToObservedRange) {
  Histogram hist;
  hist.Add(600);
  hist.Add(1000);
  EXPECT_EQ(hist.Percentile(0), 600.0);     // not the bucket floor (512)
  EXPECT_EQ(hist.Percentile(100), 1000.0);  // not the bucket ceiling (1024)
  const double p50 = hist.Percentile(50);
  EXPECT_GE(p50, 600.0);
  EXPECT_LE(p50, 1000.0);
}

TEST(HistogramPercentileTest, MergeThenPercentile) {
  Histogram fast;
  Histogram slow;
  for (int i = 0; i < 10; ++i) {
    fast.Add(100);
    slow.Add(100000);
  }
  fast.Merge(slow);
  EXPECT_EQ(fast.count(), 20u);
  EXPECT_EQ(fast.Percentile(0), 100.0);
  EXPECT_EQ(fast.Percentile(100), 100000.0);
  EXPECT_LT(fast.Percentile(10), 1000.0);   // the fast half
  EXPECT_GT(fast.Percentile(90), 50000.0);  // the slow half
}

// ---- Vfs entry-point instrumentation ------------------------------------

TEST(VfsObsTest, RecordsPerOpLatencyAndTrace) {
  SimClock clock;
  vfs::MemFs memfs(&clock);
  vfs::Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/mnt/mem", &memfs).ok());
  obs::MetricsRegistry metrics;
  obs::TraceBuffer trace(64);
  vfs.SetObs(&metrics, &trace, &clock);

  auto handle = vfs.Open("/mnt/mem/f", vfs::OpenFlags::kCreateRw);
  ASSERT_TRUE(handle.ok());
  std::vector<uint8_t> data(4096, 0xCD);
  ASSERT_TRUE(vfs.Write(*handle, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(vfs.Read(*handle, 0, data.size(), data.data()).ok());
  ASSERT_TRUE(vfs.Fsync(*handle).ok());
  ASSERT_TRUE(vfs.Close(*handle).ok());

  EXPECT_EQ(metrics.HistogramValue("vfs.open.latency_ns").count(), 1u);
  EXPECT_EQ(metrics.HistogramValue("vfs.write.latency_ns").count(), 1u);
  EXPECT_EQ(metrics.HistogramValue("vfs.read.latency_ns").count(), 1u);
  EXPECT_EQ(metrics.HistogramValue("vfs.fsync.latency_ns").count(), 1u);
  EXPECT_EQ(metrics.HistogramValue("vfs.close.latency_ns").count(), 1u);

  bool saw_write = false;
  for (const auto& event : trace.Events()) {
    EXPECT_EQ(event.layer, "vfs");
    if (event.op == "write" && event.bytes == data.size()) {
      saw_write = true;
    }
  }
  EXPECT_TRUE(saw_write);
}

TEST(VfsObsTest, DetachStopsRecording) {
  SimClock clock;
  vfs::MemFs memfs(&clock);
  vfs::Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/mnt/mem", &memfs).ok());
  obs::MetricsRegistry metrics;
  vfs.SetObs(&metrics, nullptr, &clock);
  auto handle = vfs.Open("/mnt/mem/f", vfs::OpenFlags::kCreateRw);
  ASSERT_TRUE(handle.ok());
  vfs.SetObs(nullptr, nullptr, nullptr);
  ASSERT_TRUE(vfs.Close(*handle).ok());
  EXPECT_EQ(metrics.HistogramValue("vfs.open.latency_ns").count(), 1u);
  EXPECT_EQ(metrics.HistogramValue("vfs.close.latency_ns").count(), 0u);
}

// ---- End-to-end through the full Mux stack ------------------------------

TEST(MuxObsTest, DecomposesSoftwareAndMediaTime) {
  testing::MuxRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();

  auto handle = mux.Open("/f", vfs::OpenFlags::kCreateRw);
  ASSERT_TRUE(handle.ok());
  std::vector<uint8_t> data(256 * 1024, 0x5A);
  ASSERT_TRUE(mux.Write(*handle, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(mux.Fsync(*handle, false).ok());
  std::vector<uint8_t> out(4096);
  for (uint64_t off = 0; off < data.size(); off += 64 * 1024) {
    ASSERT_TRUE(mux.Read(*handle, off, out.size(), out.data()).ok());
  }

  const auto& metrics = mux.metrics();
  // Mux's own cost-model charges, decomposed per step.
  EXPECT_GT(metrics.CounterValue("mux.sw.total_ns"), 0u);
  EXPECT_GT(metrics.CounterValue("mux.sw.dispatch_ns"), 0u);
  EXPECT_GT(metrics.CounterValue("mux.sw.blt_ns"), 0u);
  // The devices published their media time into the same registry.
  const uint64_t media = metrics.CounterValue("device.pm.media_ns") +
                         metrics.CounterValue("device.ssd.media_ns") +
                         metrics.CounterValue("device.hdd.media_ns");
  EXPECT_GT(media, 0u);
  // Per-op latency distributions cover the ops we issued.
  EXPECT_GE(metrics.HistogramValue("mux.read.latency_ns").count(), 4u);
  EXPECT_GE(metrics.HistogramValue("mux.write.latency_ns").count(), 1u);
  // Software + media can never exceed total elapsed simulated time.
  EXPECT_LE(metrics.CounterValue("mux.sw.total_ns") + media,
            static_cast<uint64_t>(rig.clock().Now()));

  // The trace interleaves mux-level ops with the device ops they caused.
  bool saw_mux = false;
  bool saw_device = false;
  for (const auto& event : mux.trace().Events()) {
    saw_mux = saw_mux || event.layer == "mux";
    saw_device = saw_device || event.layer == "device";
  }
  EXPECT_GT(mux.trace().recorded(), 0u);
  EXPECT_TRUE(saw_mux);
  EXPECT_TRUE(saw_device);
}

TEST(MuxObsTest, MetricsReportAndDump) {
  testing::MuxRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto handle = mux.Open("/f", vfs::OpenFlags::kCreateRw);
  ASSERT_TRUE(handle.ok());
  std::vector<uint8_t> data(4096, 1);
  ASSERT_TRUE(mux.Write(*handle, 0, data.data(), data.size()).ok());

  const std::string report = mux.MetricsReport();
  EXPECT_NE(report.find("mux.sw.total_ns"), std::string::npos);
  EXPECT_NE(report.find("\"histograms\""), std::string::npos);

  const std::string path = ::testing::TempDir() + "/mux_obs_dump.json";
  ASSERT_TRUE(mux.DumpMetrics(path).ok());
  EXPECT_NE(ReadHostFile(path).find("mux.sw.total_ns"), std::string::npos);
  std::remove(path.c_str());
}

// PhaseRecorder splits an op's timeline at the dequeue instant: queue_ns +
// service_ns == total_ns for every op, published as three histograms.
TEST(PhaseRecorderTest, SplitsQueueingFromService) {
  MetricsRegistry registry;
  obs::PhaseRecorder recorder(&registry, "client");
  EXPECT_EQ(recorder.queue_name(), "client.queue_ns");
  EXPECT_EQ(recorder.service_name(), "client.service_ns");
  EXPECT_EQ(recorder.total_name(), "client.total_ns");

  // Op scheduled at t=100, dequeued at t=400, finished at t=900:
  // 300ns queueing, 500ns service.
  recorder.Record({100, 400, 900});
  // Op executed exactly on schedule: all service.
  recorder.Record({1000, 1000, 1250});

  const Histogram queue = registry.HistogramValue("client.queue_ns");
  const Histogram service = registry.HistogramValue("client.service_ns");
  const Histogram total = registry.HistogramValue("client.total_ns");
  EXPECT_EQ(queue.count(), 2u);
  EXPECT_EQ(service.count(), 2u);
  EXPECT_EQ(total.count(), 2u);
  EXPECT_EQ(queue.max(), 300u);
  EXPECT_EQ(queue.min(), 0u);
  EXPECT_EQ(service.max(), 500u);
  EXPECT_EQ(service.min(), 250u);
  EXPECT_EQ(total.max(), 800u);
  EXPECT_EQ(total.min(), 250u);
}

TEST(PhaseRecorderTest, ClampsRetimedSamplesAndNullRegistry) {
  // dispatch before scheduled arrival (merged/retimed recording): clamp to
  // zero rather than underflow.
  obs::OpPhases weird{500, 400, 450};
  EXPECT_EQ(weird.QueueNs(), 0u);
  EXPECT_EQ(weird.ServiceNs(), 50u);
  EXPECT_EQ(weird.TotalNs(), 0u);

  obs::PhaseRecorder disabled(nullptr, "off");
  disabled.Record({1, 2, 3});  // must not crash
}

}  // namespace
}  // namespace mux
