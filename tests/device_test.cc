// Tests for the simulated devices: latency model, crash cache, PM persist.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/device/block_device.h"
#include "src/device/device_profile.h"
#include "src/device/pm_device.h"

namespace mux::device {
namespace {

constexpr uint64_t kMiB = 1ULL << 20;

std::vector<uint8_t> Pattern(size_t n, uint8_t seed) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(seed + i);
  }
  return v;
}

TEST(DeviceProfileTest, PresetsAreSane) {
  auto pm = DeviceProfile::OptanePm(16 * kMiB);
  auto ssd = DeviceProfile::OptaneSsd(16 * kMiB);
  auto hdd = DeviceProfile::ExosHdd(16 * kMiB);
  EXPECT_TRUE(pm.byte_addressable);
  EXPECT_FALSE(ssd.byte_addressable);
  // The latency hierarchy the whole paper is about: PM << SSD << HDD.
  EXPECT_LT(pm.read_latency_ns, ssd.read_latency_ns);
  EXPECT_LT(ssd.read_latency_ns, hdd.read_latency_ns);
  EXPECT_EQ(pm.capacity_blocks(), 16 * kMiB / 4096);
}

TEST(DeviceProfileTest, EstimateScalesWithSize) {
  auto ssd = DeviceProfile::OptaneSsd(16 * kMiB);
  EXPECT_GT(ssd.EstimateReadNs(1 * kMiB), ssd.EstimateReadNs(4096));
  // Fixed latency dominates small transfers.
  EXPECT_GE(ssd.EstimateReadNs(1), ssd.read_latency_ns);
}

TEST(BlockDeviceTest, WriteThenReadRoundTrips) {
  SimClock clock;
  BlockDevice dev(DeviceProfile::TestRam(16 * kMiB), &clock);
  auto data = Pattern(4096 * 3, 7);
  ASSERT_TRUE(dev.WriteBlocks(10, 3, data.data()).ok());
  std::vector<uint8_t> out(4096 * 3, 0);
  ASSERT_TRUE(dev.ReadBlocks(10, 3, out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST(BlockDeviceTest, RejectsOutOfRange) {
  SimClock clock;
  BlockDevice dev(DeviceProfile::TestRam(1 * kMiB), &clock);  // 256 blocks
  std::vector<uint8_t> buf(4096);
  EXPECT_EQ(dev.ReadBlocks(256, 1, buf.data()).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(dev.WriteBlocks(255, 2, buf.data()).code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(dev.ReadBlocks(0, 0, buf.data()).code(),
            ErrorCode::kInvalidArgument);
}

TEST(BlockDeviceTest, ChargesSimulatedTime) {
  SimClock clock;
  BlockDevice dev(DeviceProfile::OptaneSsd(16 * kMiB), &clock);
  std::vector<uint8_t> buf(4096);
  const SimTime before = clock.Now();
  ASSERT_TRUE(dev.ReadBlocks(0, 1, buf.data()).ok());
  EXPECT_GT(clock.Now(), before);
  // At least the fixed per-op latency must have elapsed.
  EXPECT_GE(clock.Now() - before, dev.profile().read_latency_ns);
}

TEST(BlockDeviceTest, HddChargesSeeks) {
  SimClock clock;
  BlockDevice dev(DeviceProfile::ExosHdd(64 * kMiB), &clock);
  std::vector<uint8_t> buf(4096);
  ASSERT_TRUE(dev.ReadBlocks(0, 1, buf.data()).ok());
  const SimTime sequential_start = clock.Now();
  ASSERT_TRUE(dev.ReadBlocks(1, 1, buf.data()).ok());  // sequential: no seek
  const SimTime sequential_cost = clock.Now() - sequential_start;

  const SimTime random_start = clock.Now();
  ASSERT_TRUE(dev.ReadBlocks(16000, 1, buf.data()).ok());  // long seek
  const SimTime random_cost = clock.Now() - random_start;
  EXPECT_GT(random_cost, sequential_cost);
  EXPECT_GE(dev.stats().seeks, 1u);
}

TEST(BlockDeviceTest, SsdHasNoSeekPenalty) {
  SimClock clock;
  BlockDevice dev(DeviceProfile::OptaneSsd(64 * kMiB), &clock);
  std::vector<uint8_t> buf(4096);
  ASSERT_TRUE(dev.ReadBlocks(0, 1, buf.data()).ok());
  const SimTime t0 = clock.Now();
  ASSERT_TRUE(dev.ReadBlocks(1, 1, buf.data()).ok());
  const SimTime seq = clock.Now() - t0;
  const SimTime t1 = clock.Now();
  ASSERT_TRUE(dev.ReadBlocks(9000, 1, buf.data()).ok());
  const SimTime rnd = clock.Now() - t1;
  EXPECT_EQ(seq, rnd);
}

// Regression: seek cost used to scale linearly with LBA distance, so a
// one-track hop cost nearly nothing. Real disks pay settle time on every
// repositioning: the model is a quarter-stroke floor plus a sqrt term.
TEST(BlockDeviceTest, SeekCostSqrtModelWithQuarterStrokeFloor) {
  SimClock clock;
  BlockDevice dev(DeviceProfile::ExosHdd(256 * kMiB), &clock);
  const DeviceProfile& profile = dev.profile();
  const uint64_t span = dev.capacity_blocks();
  std::vector<uint8_t> buf(4096);

  uint64_t head = 0;  // mirrors the device's head position (lba + count)
  auto seek_cost_to = [&](uint64_t lba) -> uint64_t {
    const SimTime t0 = clock.Now();
    EXPECT_TRUE(dev.ReadBlocks(lba, 1, buf.data()).ok());
    head = lba + 1;
    return (clock.Now() - t0) - profile.EstimateReadNs(4096);
  };
  auto model = [&](uint64_t distance) -> uint64_t {
    const double frac =
        static_cast<double>(distance) / static_cast<double>(span);
    return static_cast<uint64_t>(static_cast<double>(profile.full_seek_ns) *
                                 (0.25 + 0.75 * std::sqrt(frac)));
  };

  // A one-block hop still pays at least a quarter stroke.
  const uint64_t short_seek = seek_cost_to(head + 1);
  EXPECT_EQ(short_seek, model(1));
  EXPECT_GE(short_seek, profile.full_seek_ns / 4);

  // Quarter-span distance: sqrt makes it well past half of a full stroke
  // (0.25 + 0.75 * 0.5), not the quarter a linear model would charge.
  const uint64_t quarter_seek = seek_cost_to(head + span / 4);
  EXPECT_EQ(quarter_seek, model(span / 4));
  EXPECT_GT(quarter_seek, profile.full_seek_ns / 2);

  // Sweeping back to LBA 0 approaches (and never exceeds) a full stroke.
  const uint64_t distance = head;
  const uint64_t long_seek = seek_cost_to(0);
  EXPECT_EQ(long_seek, model(distance));
  EXPECT_LE(long_seek, profile.full_seek_ns);
  EXPECT_GT(long_seek, quarter_seek);
}

TEST(BlockDeviceObsTest, PublishesMediaTimeAndTrace) {
  SimClock clock;
  BlockDevice dev(DeviceProfile::OptaneSsd(16 * kMiB), &clock);
  obs::MetricsRegistry metrics;
  obs::TraceBuffer trace(16);
  dev.AttachObs(&metrics, &trace, "ssd");
  std::vector<uint8_t> buf(4096);
  ASSERT_TRUE(dev.WriteBlocks(0, 1, buf.data()).ok());
  ASSERT_TRUE(dev.ReadBlocks(0, 1, buf.data()).ok());

  // Every nanosecond the device was busy is published as media time.
  EXPECT_EQ(metrics.CounterValue("device.ssd.media_ns"), dev.stats().busy_ns);
  EXPECT_EQ(metrics.HistogramValue("device.ssd.read_ns").count(), 1u);
  EXPECT_EQ(metrics.HistogramValue("device.ssd.write_ns").count(), 1u);
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].layer, "device");
  EXPECT_EQ(events[0].op, "ssd.write");
  EXPECT_EQ(events[0].bytes, 4096u);
  EXPECT_EQ(events[1].op, "ssd.read");

  // Detaching stops publication without disturbing the device.
  dev.AttachObs(nullptr, nullptr, "");
  ASSERT_TRUE(dev.ReadBlocks(0, 1, buf.data()).ok());
  EXPECT_EQ(metrics.HistogramValue("device.ssd.read_ns").count(), 1u);
}

TEST(PmDeviceObsTest, PublishesMediaTime) {
  SimClock clock;
  PmDevice pm(DeviceProfile::OptanePm(16 * kMiB), &clock);
  obs::MetricsRegistry metrics;
  pm.AttachObs(&metrics, nullptr, "pm");
  std::vector<uint8_t> buf(256);
  ASSERT_TRUE(pm.Store(0, buf.size(), buf.data()).ok());
  ASSERT_TRUE(pm.Load(0, buf.size(), buf.data()).ok());
  EXPECT_GT(metrics.CounterValue("device.pm.media_ns"), 0u);
  EXPECT_EQ(metrics.HistogramValue("device.pm.read_ns").count(), 1u);
  EXPECT_EQ(metrics.HistogramValue("device.pm.write_ns").count(), 1u);
}

TEST(BlockDeviceTest, StatsAccumulate) {
  SimClock clock;
  BlockDevice dev(DeviceProfile::TestRam(16 * kMiB), &clock);
  std::vector<uint8_t> buf(4096 * 2);
  ASSERT_TRUE(dev.WriteBlocks(0, 2, buf.data()).ok());
  ASSERT_TRUE(dev.ReadBlocks(0, 1, buf.data()).ok());
  auto stats = dev.stats();
  EXPECT_EQ(stats.write_ops, 1u);
  EXPECT_EQ(stats.read_ops, 1u);
  EXPECT_EQ(stats.bytes_written, 8192u);
  EXPECT_EQ(stats.bytes_read, 4096u);
  dev.ResetStats();
  EXPECT_EQ(dev.stats().read_ops, 0u);
}

TEST(BlockDeviceCrashTest, UnflushedWritesAreLost) {
  SimClock clock;
  BlockDevice dev(DeviceProfile::TestRam(16 * kMiB), &clock);
  dev.EnableCrashSim(true);
  auto data = Pattern(4096, 3);
  ASSERT_TRUE(dev.WriteBlocks(5, 1, data.data()).ok());
  EXPECT_EQ(dev.DirtyBlocks(), 1u);

  // Before the crash, reads see the cached write.
  std::vector<uint8_t> out(4096, 0xff);
  ASSERT_TRUE(dev.ReadBlocks(5, 1, out.data()).ok());
  EXPECT_EQ(out, data);

  dev.Crash();
  ASSERT_TRUE(dev.ReadBlocks(5, 1, out.data()).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(4096, 0));  // back to zeros
}

TEST(BlockDeviceCrashTest, FlushMakesWritesDurable) {
  SimClock clock;
  BlockDevice dev(DeviceProfile::TestRam(16 * kMiB), &clock);
  dev.EnableCrashSim(true);
  auto data = Pattern(4096, 9);
  ASSERT_TRUE(dev.WriteBlocks(7, 1, data.data()).ok());
  ASSERT_TRUE(dev.Flush().ok());
  EXPECT_EQ(dev.DirtyBlocks(), 0u);
  dev.Crash();
  std::vector<uint8_t> out(4096, 0);
  ASSERT_TRUE(dev.ReadBlocks(7, 1, out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST(BlockDeviceCrashTest, TornCrashPersistsSubset) {
  SimClock clock;
  BlockDevice dev(DeviceProfile::TestRam(16 * kMiB), &clock);
  dev.EnableCrashSim(true);
  auto data = Pattern(4096, 1);
  for (uint64_t lba = 0; lba < 64; ++lba) {
    ASSERT_TRUE(dev.WriteBlocks(lba, 1, data.data()).ok());
  }
  Rng rng(11);
  dev.CrashTorn(rng, 0.5);
  int survived = 0;
  std::vector<uint8_t> out(4096);
  for (uint64_t lba = 0; lba < 64; ++lba) {
    ASSERT_TRUE(dev.ReadBlocks(lba, 1, out.data()).ok());
    if (out == data) {
      survived++;
    }
  }
  EXPECT_GT(survived, 0);
  EXPECT_LT(survived, 64);
}

TEST(BlockDeviceCrashTest, DisablingCrashSimFlushes) {
  SimClock clock;
  BlockDevice dev(DeviceProfile::TestRam(16 * kMiB), &clock);
  dev.EnableCrashSim(true);
  auto data = Pattern(4096, 2);
  ASSERT_TRUE(dev.WriteBlocks(1, 1, data.data()).ok());
  dev.EnableCrashSim(false);
  dev.Crash();  // no-op now
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(dev.ReadBlocks(1, 1, out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST(PmDeviceTest, LoadStoreRoundTrips) {
  SimClock clock;
  PmDevice pm(DeviceProfile::OptanePm(16 * kMiB), &clock);
  auto data = Pattern(1000, 5);
  ASSERT_TRUE(pm.Store(123, data.size(), data.data()).ok());
  std::vector<uint8_t> out(1000);
  ASSERT_TRUE(pm.Load(123, out.size(), out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST(PmDeviceTest, ByteGranularityAccess) {
  SimClock clock;
  PmDevice pm(DeviceProfile::OptanePm(16 * kMiB), &clock);
  uint8_t b = 0x5a;
  ASSERT_TRUE(pm.Store(4097, 1, &b).ok());  // unaligned single byte
  uint8_t out = 0;
  ASSERT_TRUE(pm.Load(4097, 1, &out).ok());
  EXPECT_EQ(out, 0x5a);
}

TEST(PmDeviceTest, RejectsOutOfRange) {
  SimClock clock;
  PmDevice pm(DeviceProfile::OptanePm(1 * kMiB), &clock);
  uint8_t b = 0;
  EXPECT_EQ(pm.Store(kMiB, 1, &b).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(pm.Load(kMiB - 1, 2, &b).code(), ErrorCode::kOutOfRange);
}

TEST(PmDeviceTest, DaxSeesStores) {
  SimClock clock;
  PmDevice pm(DeviceProfile::OptanePm(16 * kMiB), &clock);
  auto data = Pattern(64, 8);
  ASSERT_TRUE(pm.Store(100, data.size(), data.data()).ok());
  EXPECT_EQ(std::memcmp(pm.DaxBase() + 100, data.data(), data.size()), 0);
}

TEST(PmDeviceCrashTest, UnpersistedStoresRollBack) {
  SimClock clock;
  PmDevice pm(DeviceProfile::OptanePm(16 * kMiB), &clock);
  // Establish a persisted baseline.
  auto base = Pattern(512, 1);
  ASSERT_TRUE(pm.Store(0, base.size(), base.data()).ok());
  ASSERT_TRUE(pm.Persist(0, base.size()).ok());

  pm.EnableCrashSim(true);
  auto update = Pattern(512, 99);
  ASSERT_TRUE(pm.Store(0, update.size(), update.data()).ok());
  EXPECT_GT(pm.UnpersistedLines(), 0u);
  pm.Crash();

  std::vector<uint8_t> out(512);
  ASSERT_TRUE(pm.Load(0, out.size(), out.data()).ok());
  EXPECT_EQ(out, base);  // rolled back to the persisted image
}

TEST(PmDeviceCrashTest, PersistedStoresSurvive) {
  SimClock clock;
  PmDevice pm(DeviceProfile::OptanePm(16 * kMiB), &clock);
  pm.EnableCrashSim(true);
  auto data = Pattern(300, 4);
  ASSERT_TRUE(pm.Store(1000, data.size(), data.data()).ok());
  ASSERT_TRUE(pm.Persist(1000, data.size()).ok());
  EXPECT_EQ(pm.UnpersistedLines(), 0u);
  pm.Crash();
  std::vector<uint8_t> out(300);
  ASSERT_TRUE(pm.Load(1000, out.size(), out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST(PmDeviceCrashTest, PartialPersistSplitsFate) {
  SimClock clock;
  PmDevice pm(DeviceProfile::OptanePm(16 * kMiB), &clock);
  pm.EnableCrashSim(true);
  // Two stores to distinct lines; persist only the first.
  auto a = Pattern(PmDevice::kLineSize, 1);
  auto b = Pattern(PmDevice::kLineSize, 2);
  ASSERT_TRUE(pm.Store(0, a.size(), a.data()).ok());
  ASSERT_TRUE(pm.Store(PmDevice::kLineSize, b.size(), b.data()).ok());
  ASSERT_TRUE(pm.Persist(0, PmDevice::kLineSize).ok());
  pm.Crash();
  std::vector<uint8_t> out(PmDevice::kLineSize);
  ASSERT_TRUE(pm.Load(0, out.size(), out.data()).ok());
  EXPECT_EQ(out, a);
  ASSERT_TRUE(pm.Load(PmDevice::kLineSize, out.size(), out.data()).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(PmDevice::kLineSize, 0));
}

TEST(PmDeviceTest, PersistChargesPerLine) {
  SimClock clock;
  PmDevice pm(DeviceProfile::OptanePm(16 * kMiB), &clock);
  const SimTime t0 = clock.Now();
  ASSERT_TRUE(pm.Persist(0, 4 * PmDevice::kLineSize).ok());
  const SimTime four_lines = clock.Now() - t0;
  const SimTime t1 = clock.Now();
  ASSERT_TRUE(pm.Persist(0, 1).ok());
  const SimTime one_line = clock.Now() - t1;
  EXPECT_EQ(four_lines, 4 * one_line);
}

TEST(PmDeviceTest, DaxChargeAccounting) {
  SimClock clock;
  PmDevice pm(DeviceProfile::OptanePm(16 * kMiB), &clock);
  const SimTime t0 = clock.Now();
  pm.ChargeDaxRead(4096);
  EXPECT_GT(clock.Now(), t0);
  EXPECT_EQ(pm.stats().bytes_read, 4096u);
}

TEST(BlockDeviceFaultTest, FailReadsInjectsErrors) {
  SimClock clock;
  BlockDevice dev(DeviceProfile::TestRam(16 * kMiB), &clock);
  std::vector<uint8_t> buf(4096);
  ASSERT_TRUE(dev.WriteBlocks(0, 1, buf.data()).ok());
  dev.FailReads(true);
  EXPECT_EQ(dev.ReadBlocks(0, 1, buf.data()).code(), ErrorCode::kIoError);
  EXPECT_TRUE(dev.WriteBlocks(0, 1, buf.data()).ok());  // writes unaffected
  dev.FailReads(false);
  EXPECT_TRUE(dev.ReadBlocks(0, 1, buf.data()).ok());
}

TEST(BlockDeviceFaultTest, FailAfterWritesCountsDown) {
  SimClock clock;
  BlockDevice dev(DeviceProfile::TestRam(16 * kMiB), &clock);
  std::vector<uint8_t> buf(4096);
  dev.FailAfterWrites(2);
  EXPECT_TRUE(dev.WriteBlocks(0, 1, buf.data()).ok());
  EXPECT_TRUE(dev.WriteBlocks(1, 1, buf.data()).ok());
  EXPECT_EQ(dev.WriteBlocks(2, 1, buf.data()).code(), ErrorCode::kIoError);
  EXPECT_EQ(dev.Flush().code(), ErrorCode::kIoError);
  dev.FailAfterWrites(-1);
  EXPECT_TRUE(dev.WriteBlocks(2, 1, buf.data()).ok());
}

TEST(PmDeviceFaultTest, FailAfterStoresCountsDown) {
  SimClock clock;
  PmDevice pm(DeviceProfile::OptanePm(16 * kMiB), &clock);
  uint8_t byte = 1;
  pm.FailAfterStores(1);
  EXPECT_TRUE(pm.Store(0, 1, &byte).ok());
  EXPECT_EQ(pm.Store(1, 1, &byte).code(), ErrorCode::kIoError);
  EXPECT_EQ(pm.Persist(0, 1).code(), ErrorCode::kIoError);
  pm.FailAfterStores(-1);
  EXPECT_TRUE(pm.Store(1, 1, &byte).ok());
  EXPECT_TRUE(pm.Persist(0, 1).ok());
}

}  // namespace
}  // namespace mux::device
