// Multi-residency failover + lazy-reconciliation stress (MOST).
//
// Every tier is wrapped in FaultInjectingFs and Mux runs with the default
// completion-based dispatch (async_dispatch=true). A chaos thread kills and
// revives tiers under concurrent read load: blocks with two clean copies
// must never fail a read (the data path fails over to the surviving copy),
// and after the dust settles lazy reconciliation must converge exactly once
// — a second SyncMirrors pass finds nothing, and Fsck reports a clean stack.
//
// Runs under TSan/ASan in CI: the failover bitmap (failing_tiers_), the
// mirror-sync bookkeeping, and the async submission rings are all exercised
// cross-thread here.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/core/mux.h"
#include "src/device/block_device.h"
#include "src/device/pm_device.h"
#include "src/fs/extlite/extlite.h"
#include "src/fs/novafs/novafs.h"
#include "src/fs/xfslite/xfslite.h"
#include "src/vfs/fault_injecting_fs.h"
#include "tests/mux_rig.h"

namespace mux::testing {
namespace {

using vfs::FaultInjectingFs;
using vfs::OpenFlags;

constexpr uint64_t kBlock = core::Mux::kBlockSize;

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Rng rng(seed);
  rng.Fill(v.data(), n);
  return v;
}

// MuxRig with every tier behind a FaultInjectingFs wrapper.
class MirrorStressRig {
 public:
  explicit MirrorStressRig(core::Mux::Options options = core::Mux::Options())
      : pm_dev_(device::DeviceProfile::OptanePm(sizes_.pm_bytes), &clock_),
        ssd_dev_(device::DeviceProfile::OptaneSsd(sizes_.ssd_bytes), &clock_),
        hdd_dev_(device::DeviceProfile::ExosHdd(sizes_.hdd_bytes), &clock_),
        novafs_(&pm_dev_, &clock_),
        xfslite_(&ssd_dev_, &clock_, XfsOptionsFor(sizes_)),
        extlite_(&hdd_dev_, &clock_, ExtOptionsFor(sizes_)),
        pm_(&novafs_, 201),
        ssd_(&xfslite_, 202),
        hdd_(&extlite_, 203),
        mux_(std::make_unique<core::Mux>(&clock_, std::move(options))) {
    ok_ = novafs_.Format().ok() && xfslite_.Format().ok() &&
          extlite_.Format().ok();
    auto pm = mux_->AddTier("pm", &pm_, pm_dev_.profile());
    auto ssd = mux_->AddTier("ssd", &ssd_, ssd_dev_.profile());
    auto hdd = mux_->AddTier("hdd", &hdd_, hdd_dev_.profile());
    ok_ = ok_ && pm.ok() && ssd.ok() && hdd.ok();
    pm_tier_ = pm.value_or(core::kInvalidTier);
    ssd_tier_ = ssd.value_or(core::kInvalidTier);
    hdd_tier_ = hdd.value_or(core::kInvalidTier);
  }

  bool ok() const { return ok_; }
  core::Mux& mux() { return *mux_; }
  FaultInjectingFs& pm() { return pm_; }
  FaultInjectingFs& ssd() { return ssd_; }
  FaultInjectingFs& hdd() { return hdd_; }
  core::TierId pm_tier() const { return pm_tier_; }
  core::TierId ssd_tier() const { return ssd_tier_; }
  core::TierId hdd_tier() const { return hdd_tier_; }

 private:
  MuxRigSizes sizes_;
  SimClock clock_;
  device::PmDevice pm_dev_;
  device::BlockDevice ssd_dev_;
  device::BlockDevice hdd_dev_;
  fs::NovaFs novafs_;
  fs::XfsLite xfslite_;
  fs::ExtLite extlite_;
  FaultInjectingFs pm_;
  FaultInjectingFs ssd_;
  FaultInjectingFs hdd_;
  std::unique_ptr<core::Mux> mux_;
  core::TierId pm_tier_ = core::kInvalidTier;
  core::TierId ssd_tier_ = core::kInvalidTier;
  core::TierId hdd_tier_ = core::kInvalidTier;
  bool ok_ = false;
};

// Kill one tier at a time under concurrent read load: every block has two
// clean copies (SSD primary + HDD mirror), so no read may ever fail.
TEST(MirrorStress, FailoverUnderConcurrentReadLoad) {
  MirrorStressRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();

  constexpr int kFiles = 4;
  constexpr uint64_t kBlocksPerFile = 48;
  std::vector<vfs::FileHandle> handles;
  std::vector<std::vector<uint8_t>> golden;
  for (int f = 0; f < kFiles; ++f) {
    const std::string path = "/f" + std::to_string(f);
    auto h = mux.Open(path, OpenFlags::kCreateRw);
    ASSERT_TRUE(h.ok());
    auto data = Pattern(kBlocksPerFile * kBlock, 1000 + f);
    ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
    ASSERT_TRUE(mux.MigrateFile(path, rig.ssd_tier()).ok());
    ASSERT_TRUE(mux.ReplicateFile(path, rig.hdd_tier()).ok());
    handles.push_back(*h);
    golden.push_back(std::move(data));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failed_reads{0};
  std::atomic<uint64_t> corrupt_reads{0};
  std::atomic<uint64_t> reads_done{0};

  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(7000 + r);
      std::vector<uint8_t> out;
      while (!stop.load(std::memory_order_relaxed)) {
        const int f = static_cast<int>(rng.Below(kFiles));
        const uint64_t lo = rng.Below(kBlocksPerFile * kBlock - 1);
        const uint64_t len =
            1 + rng.Below(std::min<uint64_t>(kBlocksPerFile * kBlock - lo,
                                             8 * kBlock));
        out.resize(len);
        auto got = mux.Read(handles[f], lo, len, out.data());
        if (!got.ok()) {
          failed_reads.fetch_add(1, std::memory_order_relaxed);
        } else if (std::memcmp(out.data(), golden[f].data() + lo, len) != 0) {
          corrupt_reads.fetch_add(1, std::memory_order_relaxed);
        }
        reads_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Chaos: alternate which copy is dead; never both at once.
  for (int round = 0; round < 6; ++round) {
    FaultInjectingFs& victim = (round % 2 == 0) ? rig.ssd() : rig.hdd();
    victim.KillDevice();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    victim.Revive();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& t : readers) {
    t.join();
  }

  EXPECT_EQ(failed_reads.load(), 0u)
      << "mirrored blocks must never fail a read while one copy survives";
  EXPECT_EQ(corrupt_reads.load(), 0u);
  EXPECT_GT(reads_done.load(), 0u);
  // The dead tier was actually hit and failed over from.
  EXPECT_GT(mux.metrics().CounterValue("mux.replica.failover"), 0u);
  for (auto h : handles) {
    EXPECT_TRUE(mux.Close(h).ok());
  }
}

// Writes absorb on one copy and dirty the mirrors; bounded SyncMirrors
// passes must reconcile every dirty copy exactly once and then go idle.
TEST(MirrorStress, LazyReconciliationConvergesExactlyOnce) {
  MirrorStressRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();

  auto h = mux.Open("/w", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(64 * kBlock, 5);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(mux.MigrateFile("/w", rig.ssd_tier()).ok());
  ASSERT_TRUE(mux.ReplicateFile("/w", rig.hdd_tier()).ok());

  // Overwrite a scattered set of ranges; each write absorbs on the SSD
  // primary and leaves the HDD mirror stale.
  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    const uint64_t lo = rng.Below(data.size() - 1);
    const uint64_t len = 1 + rng.Below(std::min<uint64_t>(
        data.size() - lo, 6 * kBlock));
    auto patch = Pattern(len, rng.Next());
    ASSERT_TRUE(mux.Write(*h, lo, patch.data(), len).ok());
    std::copy(patch.begin(), patch.end(), data.begin() + lo);
  }
  const uint64_t dirtied =
      mux.metrics().CounterValue("mux.mirror.dirty_blocks");
  ASSERT_GT(dirtied, 0u);

  // Reconcile with a deliberately small budget so convergence takes several
  // bounded passes, as it would ride on successive policy rounds.
  uint64_t total = 0;
  int passes = 0;
  for (; passes < 1000; ++passes) {
    auto synced = mux.SyncMirrors(8 * kBlock);
    ASSERT_TRUE(synced.ok()) << synced.status();
    if (*synced == 0) {
      break;
    }
    total += *synced;
  }
  EXPECT_GT(total, 0u);
  EXPECT_GT(passes, 1) << "budget should force multiple passes";
  // Exactly-once: cleaned copies equal the distinct dirtied copies, and a
  // further pass finds nothing.
  EXPECT_EQ(mux.metrics().CounterValue("mux.mirror.cleaned_blocks"),
            mux.metrics().CounterValue("mux.mirror.dirty_blocks"));
  auto again = mux.SyncMirrors();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);

  // Both physical copies now byte-match, and the HDD mirror can serve alone.
  auto report = mux.Fsck();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Clean()) << "mismatches=" << report->replica_mismatches
                               << " missing=" << report->missing_shadows;
  EXPECT_EQ(report->dirty_replicas, 0u);
  rig.ssd().KillDevice();
  std::vector<uint8_t> out(data.size());
  auto r = mux.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(out, data);
  rig.ssd().Revive();
  EXPECT_TRUE(mux.Close(*h).ok());
}

// Kill the mirror tier mid-reconciliation: the pass records failures and
// leaves the copies dirty; after revival the next pass converges and the
// stack checks out clean.
TEST(MirrorStress, ReconciliationSurvivesMirrorTierDeath) {
  MirrorStressRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();

  auto h = mux.Open("/x", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(32 * kBlock, 6);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(mux.MigrateFile("/x", rig.ssd_tier()).ok());
  ASSERT_TRUE(mux.ReplicateFile("/x", rig.hdd_tier()).ok());
  auto patch = Pattern(16 * kBlock, 7);
  ASSERT_TRUE(mux.Write(*h, 0, patch.data(), patch.size()).ok());
  std::copy(patch.begin(), patch.end(), data.begin());

  rig.hdd().KillDevice();
  auto blocked = mux.SyncMirrors();
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(*blocked, 0u);
  EXPECT_GT(mux.metrics().CounterValue("mux.mirror.sync_failures"), 0u);
  // Still dirty: Fsck reports the stale copies but stays "clean" — dirty
  // mirrors are an expected transient, not corruption.
  {
    auto report = mux.Fsck();
    ASSERT_TRUE(report.ok());
    EXPECT_GT(report->dirty_replicas, 0u);
  }

  rig.hdd().Revive();
  auto synced = mux.SyncMirrors();
  ASSERT_TRUE(synced.ok());
  EXPECT_GT(*synced, 0u);
  auto report = mux.Fsck();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Clean()) << "mismatches=" << report->replica_mismatches;
  EXPECT_EQ(report->dirty_replicas, 0u);
  EXPECT_TRUE(mux.Close(*h).ok());
}

// Concurrent writers + background reconciliation + chaos on the mirror
// tier: the bookkeeping never double-cleans, never loses a dirty bit, and
// converges once the chaos stops.
TEST(MirrorStress, ConcurrentWritesAndSyncUnderChaos) {
  MirrorStressRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();

  constexpr int kFiles = 3;
  constexpr uint64_t kBlocksPerFile = 32;
  std::vector<vfs::FileHandle> handles;
  for (int f = 0; f < kFiles; ++f) {
    const std::string path = "/c" + std::to_string(f);
    auto h = mux.Open(path, OpenFlags::kCreateRw);
    ASSERT_TRUE(h.ok());
    auto data = Pattern(kBlocksPerFile * kBlock, 300 + f);
    ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
    ASSERT_TRUE(mux.MigrateFile(path, rig.ssd_tier()).ok());
    ASSERT_TRUE(mux.ReplicateFile(path, rig.hdd_tier()).ok());
    handles.push_back(*h);
  }

  std::atomic<bool> stop{false};
  // One writer per file (disjoint ownership), one syncer, one chaos thread.
  std::vector<std::thread> workers;
  for (int f = 0; f < kFiles; ++f) {
    workers.emplace_back([&, f] {
      Rng rng(500 + f);
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t lo = rng.Below(kBlocksPerFile * kBlock - 1);
        const uint64_t len = 1 + rng.Below(std::min<uint64_t>(
            kBlocksPerFile * kBlock - lo, 4 * kBlock));
        auto patch = Pattern(len, rng.Next());
        (void)mux.Write(handles[f], lo, patch.data(), len);
      }
    });
  }
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)mux.SyncMirrors(16 * kBlock);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  workers.emplace_back([&] {
    for (int round = 0; round < 4; ++round) {
      rig.hdd().KillDevice();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      rig.hdd().Revive();
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
    }
    stop.store(true);
  });
  for (auto& t : workers) {
    t.join();
  }

  // Quiesce: converge reconciliation fully, then verify the stack.
  for (int i = 0; i < 1000; ++i) {
    auto synced = mux.SyncMirrors();
    ASSERT_TRUE(synced.ok()) << synced.status();
    if (*synced == 0) {
      break;
    }
  }
  auto report = mux.Fsck();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->replica_mismatches, 0u);
  EXPECT_EQ(report->missing_shadows, 0u);
  EXPECT_EQ(report->dirty_replicas, 0u);
  for (auto h : handles) {
    EXPECT_TRUE(mux.Close(h).ok());
  }
}

}  // namespace
}  // namespace mux::testing
