// Tests for both BlockLookupTable implementations, run as one parameterized
// suite since they must behave identically.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/random.h"
#include "src/core/block_lookup_table.h"

namespace mux::core {
namespace {

class BltTest : public ::testing::TestWithParam<BltKind> {
 protected:
  void SetUp() override { blt_ = MakeBlt(GetParam()); }
  std::unique_ptr<BlockLookupTable> blt_;
};

TEST_P(BltTest, EmptyIsAllHoles) {
  EXPECT_EQ(blt_->Lookup(0), kInvalidTier);
  EXPECT_EQ(blt_->Lookup(1000), kInvalidTier);
  EXPECT_EQ(blt_->TotalBlocks(), 0u);
  auto runs = blt_->Runs(0, 10);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].tier, kInvalidTier);
  EXPECT_EQ(runs[0].count, 10u);
}

TEST_P(BltTest, SetAndLookup) {
  blt_->SetRange(10, 5, 2);
  EXPECT_EQ(blt_->Lookup(9), kInvalidTier);
  EXPECT_EQ(blt_->Lookup(10), 2u);
  EXPECT_EQ(blt_->Lookup(14), 2u);
  EXPECT_EQ(blt_->Lookup(15), kInvalidTier);
  EXPECT_EQ(blt_->TotalBlocks(), 5u);
  EXPECT_EQ(blt_->BlocksOnTier(2), 5u);
  EXPECT_EQ(blt_->BlocksOnTier(1), 0u);
}

TEST_P(BltTest, OverwriteChangesTier) {
  blt_->SetRange(0, 10, 1);
  blt_->SetRange(3, 4, 2);
  EXPECT_EQ(blt_->Lookup(2), 1u);
  EXPECT_EQ(blt_->Lookup(3), 2u);
  EXPECT_EQ(blt_->Lookup(6), 2u);
  EXPECT_EQ(blt_->Lookup(7), 1u);
  EXPECT_EQ(blt_->BlocksOnTier(1), 6u);
  EXPECT_EQ(blt_->BlocksOnTier(2), 4u);
  EXPECT_EQ(blt_->TotalBlocks(), 10u);
}

TEST_P(BltTest, RunsSplitCorrectly) {
  blt_->SetRange(0, 4, 0);
  blt_->SetRange(4, 4, 1);
  // hole at 8..9
  blt_->SetRange(10, 2, 0);
  auto runs = blt_->Runs(0, 12);
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].tier, 0u);
  EXPECT_EQ(runs[0].count, 4u);
  EXPECT_EQ(runs[1].tier, 1u);
  EXPECT_EQ(runs[1].count, 4u);
  EXPECT_EQ(runs[2].tier, kInvalidTier);
  EXPECT_EQ(runs[2].count, 2u);
  EXPECT_EQ(runs[3].tier, 0u);
  EXPECT_EQ(runs[3].count, 2u);
}

TEST_P(BltTest, RunsRespectWindow) {
  blt_->SetRange(0, 100, 3);
  auto runs = blt_->Runs(10, 5);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].first_block, 10u);
  EXPECT_EQ(runs[0].count, 5u);
  EXPECT_EQ(runs[0].tier, 3u);
}

TEST_P(BltTest, AdjacentSameTierMergesInRuns) {
  blt_->SetRange(0, 4, 1);
  blt_->SetRange(4, 4, 1);
  auto runs = blt_->Runs(0, 8);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].count, 8u);
}

TEST_P(BltTest, ClearRangePunchesHole) {
  blt_->SetRange(0, 10, 1);
  blt_->ClearRange(3, 4);
  EXPECT_EQ(blt_->Lookup(2), 1u);
  EXPECT_EQ(blt_->Lookup(3), kInvalidTier);
  EXPECT_EQ(blt_->Lookup(6), kInvalidTier);
  EXPECT_EQ(blt_->Lookup(7), 1u);
  EXPECT_EQ(blt_->TotalBlocks(), 6u);
}

TEST_P(BltTest, TruncateFromDropsTail) {
  blt_->SetRange(0, 20, 1);
  blt_->TruncateFrom(5);
  EXPECT_EQ(blt_->Lookup(4), 1u);
  EXPECT_EQ(blt_->Lookup(5), kInvalidTier);
  EXPECT_EQ(blt_->TotalBlocks(), 5u);
}

TEST_P(BltTest, AllRunsEnumerates) {
  blt_->SetRange(0, 2, 0);
  blt_->SetRange(5, 3, 1);
  auto runs = blt_->AllRuns();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].first_block, 0u);
  EXPECT_EQ(runs[0].count, 2u);
  EXPECT_EQ(runs[1].first_block, 5u);
  EXPECT_EQ(runs[1].count, 3u);
}

TEST_P(BltTest, SparseFarBlock) {
  blt_->SetRange(1'000'000, 1, 2);
  EXPECT_EQ(blt_->Lookup(1'000'000), 2u);
  EXPECT_EQ(blt_->Lookup(999'999), kInvalidTier);
  EXPECT_EQ(blt_->TotalBlocks(), 1u);
}

// Property: both implementations must agree with each other under random
// operations.
// ---- multi-residency (MOST) -------------------------------------------------

TEST_P(BltTest, AddResidencyTracksMirrors) {
  blt_->SetRange(0, 10, 0);
  blt_->AddResidency(2, 4, 1);
  EXPECT_EQ(blt_->ReplicaBlocksOnTier(1), 4u);
  const ResidencySet set = blt_->LookupSet(3);
  EXPECT_EQ(set.primary, 0u);
  EXPECT_TRUE(set.ReplicaOn(1));
  EXPECT_TRUE(set.CleanOn(1));
  EXPECT_EQ(set.Copies(), 2u);
  // Holes and the primary tier never gain mirror residency.
  blt_->AddResidency(50, 5, 1);
  EXPECT_EQ(blt_->ReplicaBlocksOnTier(1), 4u);
  blt_->AddResidency(0, 10, 0);
  EXPECT_EQ(blt_->ReplicaBlocksOnTier(0), 0u);
}

TEST_P(BltTest, DirtyLifecycle) {
  blt_->SetRange(0, 8, 0);
  blt_->AddResidency(0, 8, 1);
  EXPECT_EQ(blt_->DirtyBlocks(), 0u);
  // Absorbing a write on the primary dirties every mirror exactly once.
  EXPECT_EQ(blt_->DirtyAll(2, 4), 4u);
  EXPECT_EQ(blt_->DirtyAll(2, 4), 0u);  // already dirty: no new copies
  EXPECT_EQ(blt_->DirtyBlocks(), 4u);
  EXPECT_EQ(blt_->DirtyBlocksOnTier(1), 4u);
  EXPECT_FALSE(blt_->LookupSet(3).CleanOn(1));
  EXPECT_TRUE(blt_->LookupSet(3).DirtyOn(1));
  // Reconciliation cleans the copy again.
  blt_->CleanOn(2, 4, 1);
  EXPECT_EQ(blt_->DirtyBlocks(), 0u);
  EXPECT_TRUE(blt_->LookupSet(3).CleanOn(1));
}

TEST_P(BltTest, AbsorbWritePromotesMirror) {
  blt_->SetRange(0, 8, 2);
  blt_->AddResidency(0, 8, 1);
  // The write landed on tier 1: it becomes the primary, the old primary
  // demotes to a dirty mirror.
  EXPECT_EQ(blt_->AbsorbWrite(0, 8, 1), 8u);
  const ResidencySet set = blt_->LookupSet(4);
  EXPECT_EQ(set.primary, 1u);
  EXPECT_TRUE(set.DirtyOn(2));
  EXPECT_FALSE(set.CleanOn(2));
  EXPECT_EQ(blt_->BlocksOnTier(1), 8u);
  EXPECT_EQ(blt_->ReplicaBlocksOnTier(2), 8u);
}

TEST_P(BltTest, SetRangeKeepsVerbatimMirrorsClean) {
  blt_->SetRange(0, 8, 0);
  blt_->AddResidency(0, 8, 1);
  // Migration copies bytes verbatim to tier 2: mirrors stay clean, and a
  // mirror on the destination dissolves into the primary.
  blt_->SetRange(0, 8, 2);
  const ResidencySet set = blt_->LookupSet(0);
  EXPECT_EQ(set.primary, 2u);
  EXPECT_TRUE(set.CleanOn(1));
  EXPECT_EQ(blt_->DirtyBlocks(), 0u);
  blt_->SetRange(0, 8, 1);  // onto the mirror tier: one physical copy
  EXPECT_EQ(blt_->ReplicaBlocksOnTier(1), 0u);
  EXPECT_EQ(blt_->LookupSet(0).Copies(), 1u);
}

TEST_P(BltTest, ResidencyRunsSplitAtStateChanges) {
  blt_->SetRange(0, 16, 0);
  blt_->AddResidency(4, 8, 1);
  blt_->DirtyOn(8, 4, 1);
  auto runs = blt_->ResidencyRuns(0, 16);
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].count, 4u);
  EXPECT_EQ(runs[0].set.extra, 0u);
  EXPECT_EQ(runs[1].first_block, 4u);
  EXPECT_EQ(runs[1].count, 4u);
  EXPECT_TRUE(runs[1].set.CleanOn(1));
  EXPECT_EQ(runs[2].first_block, 8u);
  EXPECT_EQ(runs[2].count, 4u);
  EXPECT_TRUE(runs[2].set.DirtyOn(1));
  EXPECT_EQ(runs[3].first_block, 12u);
  EXPECT_EQ(runs[3].set.extra, 0u);
}

TEST_P(BltTest, TruncateAndClearDropMirrors) {
  blt_->SetRange(0, 16, 0);
  blt_->AddResidency(0, 16, 1);
  blt_->ClearRange(2, 4);
  EXPECT_EQ(blt_->ReplicaBlocksOnTier(1), 12u);
  blt_->TruncateFrom(8);
  EXPECT_EQ(blt_->ReplicaBlocksOnTier(1), 4u);  // blocks 0,1 and 6,7 remain
  auto mruns = blt_->AllMirrorRuns();
  ASSERT_FALSE(mruns.empty());
  for (const auto& mrun : mruns) {
    EXPECT_LT(mrun.first_block + mrun.count, 9u);
  }
}

TEST_P(BltTest, MirrorBitmapCapsAtThirtyTwoTiers) {
  blt_->SetRange(0, 4, 0);
  blt_->AddResidency(0, 4, 40);  // beyond the bitmap: silently ignored
  EXPECT_EQ(blt_->ReplicaBlocksOnTier(40), 0u);
  EXPECT_FALSE(blt_->HasMirrors());
  EXPECT_EQ(ResidencySet::Bit(40), 0u);
}

TEST(BltCrossCheck, ImplementationsAgree) {
  auto tree = MakeBlt(BltKind::kExtentTree);
  auto array = MakeBlt(BltKind::kByteArray);
  Rng rng(99);
  constexpr uint64_t kSpace = 2048;
  for (int step = 0; step < 2000; ++step) {
    const uint64_t first = rng.Below(kSpace);
    const uint64_t count = 1 + rng.Below(64);
    switch (rng.Below(3)) {
      case 0: {
        const TierId tier = static_cast<TierId>(rng.Below(3));
        tree->SetRange(first, count, tier);
        array->SetRange(first, count, tier);
        break;
      }
      case 1:
        tree->ClearRange(first, count);
        array->ClearRange(first, count);
        break;
      case 2: {
        const uint64_t probe = rng.Below(kSpace + 64);
        ASSERT_EQ(tree->Lookup(probe), array->Lookup(probe)) << step;
        break;
      }
    }
  }
  ASSERT_EQ(tree->TotalBlocks(), array->TotalBlocks());
  for (TierId tier = 0; tier < 3; ++tier) {
    ASSERT_EQ(tree->BlocksOnTier(tier), array->BlocksOnTier(tier));
  }
  // Runs over the whole space must match exactly.
  const auto tree_runs = tree->Runs(0, kSpace + 64);
  const auto array_runs = array->Runs(0, kSpace + 64);
  ASSERT_EQ(tree_runs.size(), array_runs.size());
  for (size_t i = 0; i < tree_runs.size(); ++i) {
    EXPECT_EQ(tree_runs[i].first_block, array_runs[i].first_block) << i;
    EXPECT_EQ(tree_runs[i].count, array_runs[i].count) << i;
    EXPECT_EQ(tree_runs[i].tier, array_runs[i].tier) << i;
  }
}

// The paper's §2.3 space claim: one byte per 4 KB block ⇒ < 0.025% overhead.
TEST(BltSpace, ByteArrayMatchesPaperClaim) {
  auto blt = MakeBlt(BltKind::kByteArray);
  const uint64_t file_blocks = 256 * 1024;  // 1 GiB of 4K blocks
  blt->SetRange(0, file_blocks, 0);
  const double overhead = static_cast<double>(blt->MemoryBytes()) /
                          static_cast<double>(file_blocks * 4096);
  EXPECT_LT(overhead, 0.00025);
}

// The extent tree must be far smaller for contiguous files.
TEST(BltSpace, ExtentTreeCompactForContiguousFiles) {
  auto tree = MakeBlt(BltKind::kExtentTree);
  auto array = MakeBlt(BltKind::kByteArray);
  tree->SetRange(0, 256 * 1024, 0);
  array->SetRange(0, 256 * 1024, 0);
  EXPECT_LT(tree->MemoryBytes() * 100, array->MemoryBytes());
}

INSTANTIATE_TEST_SUITE_P(Kinds, BltTest,
                         ::testing::Values(BltKind::kExtentTree,
                                           BltKind::kByteArray),
                         [](const ::testing::TestParamInfo<BltKind>& info) {
                           return info.param == BltKind::kExtentTree
                                      ? "ExtentTree"
                                      : "ByteArray";
                         });

}  // namespace
}  // namespace mux::core
