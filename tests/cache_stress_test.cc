// Concurrent stress tests for the sharded SCM cache (ISSUE 8 tentpole):
// 8 threads of mixed TryRead/OnMiss/OnWrite racing whole-file invalidation
// and a streaming one-touch scan. Every test validates content against a
// deterministic per-key pattern (a torn or misdirected copy shows up as a
// byte mismatch), asserts exactly-once slot ownership via
// CacheController::CheckConsistency(), and runs under the CI TSan job.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/core/cache_controller.h"
#include "src/core/cost_model.h"
#include "src/device/pm_device.h"
#include "src/fs/novafs/novafs.h"

namespace mux::core {
namespace {

constexpr uint64_t kBlock = CacheController::kBlockSize;

// Deterministic full-block content for a key: every writer (OnMiss admission
// data and OnWrite updates) produces the same bytes for a given (file,
// block), so any successful TryRead must return exactly this pattern.
void FillPattern(uint64_t file_key, uint64_t block, uint8_t* out) {
  const uint64_t seed = file_key * 0x9e3779b97f4a7c15ULL + block * 0x85eb + 1;
  for (uint64_t i = 0; i < kBlock; ++i) {
    out[i] = static_cast<uint8_t>((seed + i * 131) >> 3);
  }
}

// Thread-local xorshift so the op mix needs no shared state.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed * 2654435761u + 1) {}
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

class CacheStressTest : public ::testing::Test {
 protected:
  CacheStressTest()
      : pm_(device::DeviceProfile::OptanePm(256ULL << 20), &clock_),
        novafs_(&pm_, &clock_) {
    EXPECT_TRUE(novafs_.Format().ok());
  }

  SimClock clock_;
  device::PmDevice pm_;
  fs::NovaFs novafs_;
  CostModel costs_;
};

// 8 worker threads issue a mixed read/admit/write load over a small hot key
// space while a 9th thread repeatedly invalidates whole files out from under
// them. Every hit's content is validated, and the directory must pass the
// exhaustive exactly-once ownership check afterwards.
TEST_F(CacheStressTest, MixedOpsRacingFileInvalidation) {
  CacheController::Options options;
  options.capacity_blocks = 512;
  options.shards = 16;
  options.admission_threshold = 2;
  CacheController cache(&novafs_, &clock_, costs_, options);
  ASSERT_TRUE(cache.Init().ok());

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  constexpr uint64_t kFiles = 4;
  constexpr uint64_t kBlocksPerFile = 96;
  std::atomic<uint64_t> corrupt_reads{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ScopedTimeCursor cursor(&clock_);
      Rng rng(t + 1);
      std::vector<uint8_t> block_data(kBlock);
      std::vector<uint8_t> out(kBlock);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const uint64_t file = 1 + rng.Next() % kFiles;
        const uint64_t block = rng.Next() % kBlocksPerFile;
        const uint64_t kind = rng.Next() % 100;
        if (kind < 50) {
          if (cache.TryRead(file, block, 0, kBlock, out.data())) {
            FillPattern(file, block, block_data.data());
            if (std::memcmp(out.data(), block_data.data(), kBlock) != 0) {
              corrupt_reads.fetch_add(1, std::memory_order_relaxed);
            }
          }
        } else if (kind < 85) {
          FillPattern(file, block, block_data.data());
          cache.OnMiss(file, block, block_data.data());
        } else if (kind < 95) {
          FillPattern(file, block, block_data.data());
          const uint64_t off = (rng.Next() % (kBlock / 64)) * 64;
          cache.OnWrite(file, block, off, 64, block_data.data() + off);
        } else {
          cache.InvalidateBlock(file, block);
        }
      }
    });
  }
  std::thread invalidator([&] {
    ScopedTimeCursor cursor(&clock_);
    Rng rng(99);
    while (!stop.load(std::memory_order_acquire)) {
      cache.InvalidateFile(1 + rng.Next() % kFiles);
      std::this_thread::yield();
    }
  });
  for (auto& w : workers) {
    w.join();
  }
  stop.store(true, std::memory_order_release);
  invalidator.join();

  EXPECT_EQ(corrupt_reads.load(), 0u);
  EXPECT_TRUE(cache.CheckConsistency().ok());
  // The structure is still fully operational: flush, then read back a block
  // admitted after the storm.
  std::vector<uint8_t> data(kBlock), out(kBlock);
  FillPattern(9, 0, data.data());
  cache.OnMiss(9, 0, data.data());
  cache.OnMiss(9, 0, data.data());
  cache.FlushAggregationBuffer();
  ASSERT_TRUE(cache.TryRead(9, 0, 0, kBlock, out.data()));
  EXPECT_EQ(std::memcmp(out.data(), data.data(), kBlock), 0);
  EXPECT_TRUE(cache.CheckConsistency().ok());
}

// All 8 threads race to admit the SAME key set: each slot must end up owned
// by exactly one key (CheckConsistency), each key resident at most once, and
// the resident count must match the index.
TEST_F(CacheStressTest, ConcurrentAdmissionIsExactlyOnce) {
  CacheController::Options options;
  // 32 slots/shard for 128 keys (~8 per shard expected): hash skew cannot
  // plausibly overflow a shard, so the final resident count is exact.
  options.capacity_blocks = 512;
  options.shards = 16;
  options.admission_threshold = 1;
  CacheController cache(&novafs_, &clock_, costs_, options);
  ASSERT_TRUE(cache.Init().ok());

  constexpr int kThreads = 8;
  constexpr uint64_t kKeys = 128;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ScopedTimeCursor cursor(&clock_);
      std::vector<uint8_t> block_data(kBlock);
      for (int round = 0; round < 20; ++round) {
        for (uint64_t k = 0; k < kKeys; ++k) {
          const uint64_t key = (k + t * 17) % kKeys;  // staggered order
          FillPattern(5, key, block_data.data());
          cache.OnMiss(5, key, block_data.data());
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  cache.FlushAggregationBuffer();

  EXPECT_TRUE(cache.CheckConsistency().ok());
  EXPECT_EQ(cache.ResidentBlocks(), kKeys);
  std::vector<uint8_t> expected(kBlock), out(kBlock);
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(cache.TryRead(5, k, 0, kBlock, out.data())) << k;
    FillPattern(5, k, expected.data());
    ASSERT_EQ(std::memcmp(out.data(), expected.data(), kBlock), 0) << k;
  }
}

// Readers hammer staged blocks while another thread forces flushes: the
// staged -> resident transition must never yield a torn or stale read.
TEST_F(CacheStressTest, ReadsStayCoherentAcrossAggregationFlushes) {
  CacheController::Options options;
  options.capacity_blocks = 512;
  options.shards = 16;
  options.admission_threshold = 1;
  options.agg_buffer_bytes = 8 * kBlock;
  CacheController cache(&novafs_, &clock_, costs_, options);
  ASSERT_TRUE(cache.Init().ok());

  constexpr uint64_t kKeys = 64;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> corrupt_reads{0};

  std::thread admitter([&] {
    ScopedTimeCursor cursor(&clock_);
    Rng rng(7);
    std::vector<uint8_t> block_data(kBlock);
    for (int i = 0; i < 30000; ++i) {
      const uint64_t key = rng.Next() % kKeys;
      FillPattern(3, key, block_data.data());
      cache.OnMiss(3, key, block_data.data());
      if (i % 64 == 0) {
        cache.InvalidateBlock(3, rng.Next() % kKeys);
      }
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread flusher([&] {
    ScopedTimeCursor cursor(&clock_);
    while (!stop.load(std::memory_order_acquire)) {
      cache.FlushAggregationBuffer();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      ScopedTimeCursor cursor(&clock_);
      Rng rng(100 + t);
      std::vector<uint8_t> expected(kBlock), out(kBlock);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t key = rng.Next() % kKeys;
        if (cache.TryRead(3, key, 0, kBlock, out.data())) {
          FillPattern(3, key, expected.data());
          if (std::memcmp(out.data(), expected.data(), kBlock) != 0) {
            corrupt_reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  admitter.join();
  flusher.join();
  for (auto& r : readers) {
    r.join();
  }
  EXPECT_EQ(corrupt_reads.load(), 0u);
  EXPECT_TRUE(cache.CheckConsistency().ok());
}

// Scan resistance end to end: a warmed hot set must keep (nearly) its full
// hit rate while another thread streams a one-touch scan 8x the cache size
// through the same cache.
TEST_F(CacheStressTest, StreamingScanLeavesHotSetIntact) {
  CacheController::Options options;
  options.capacity_blocks = 512;
  options.shards = 16;
  options.admission_threshold = 2;
  CacheController cache(&novafs_, &clock_, costs_, options);
  ASSERT_TRUE(cache.Init().ok());

  constexpr uint64_t kHotBlocks = 256;  // half the capacity
  std::vector<uint8_t> block_data(kBlock), out(kBlock);
  for (uint64_t b = 0; b < kHotBlocks; ++b) {
    FillPattern(1, b, block_data.data());
    cache.OnMiss(1, b, block_data.data());
    cache.OnMiss(1, b, block_data.data());
  }
  cache.FlushAggregationBuffer();

  // Baseline hit rate over the hot set (also sets the access bits that give
  // residents their second chance).
  uint64_t baseline_hits = 0;
  for (uint64_t b = 0; b < kHotBlocks; ++b) {
    baseline_hits += cache.TryRead(1, b, 0, kBlock, out.data()) ? 1 : 0;
  }
  ASSERT_EQ(baseline_hits, kHotBlocks);

  // Streaming scan: 8x capacity distinct one-touch blocks, racing a reader
  // that keeps the hot set warm (as zipfian traffic would).
  std::thread scanner([&] {
    ScopedTimeCursor cursor(&clock_);
    std::vector<uint8_t> scan_block(kBlock);
    for (uint64_t b = 0; b < 8 * 512; ++b) {
      if (!cache.TryRead(2, b, 0, kBlock, scan_block.data())) {
        FillPattern(2, b, scan_block.data());
        cache.OnMiss(2, b, scan_block.data());
      }
    }
  });
  std::thread hot_reader([&] {
    ScopedTimeCursor cursor(&clock_);
    std::vector<uint8_t> hot_block(kBlock);
    for (int round = 0; round < 4; ++round) {
      for (uint64_t b = 0; b < kHotBlocks; ++b) {
        (void)cache.TryRead(1, b, 0, kBlock, hot_block.data());
      }
    }
  });
  scanner.join();
  hot_reader.join();

  uint64_t post_scan_hits = 0;
  for (uint64_t b = 0; b < kHotBlocks; ++b) {
    post_scan_hits += cache.TryRead(1, b, 0, kBlock, out.data()) ? 1 : 0;
  }
  // ISSUE 8 acceptance: hot-set hit rate degrades < 10% under the scan.
  EXPECT_GE(post_scan_hits, kHotBlocks * 9 / 10)
      << "scan evicted " << (kHotBlocks - post_scan_hits) << " hot blocks";
  EXPECT_TRUE(cache.CheckConsistency().ok());
}

}  // namespace
}  // namespace mux::core
