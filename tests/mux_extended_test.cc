// Extended Mux battery: configuration variants, metadata edge cases,
// namespace operations over spanning files, bookkeeper round trips under
// churn, and the randomized ops+migration oracle property test.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/random.h"
#include "src/vfs/memfs.h"
#include "tests/mux_rig.h"

namespace mux::testing {
namespace {

using core::BltKind;
using core::Mux;
using vfs::OpenFlags;

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Rng rng(seed);
  rng.Fill(v.data(), n);
  return v;
}

TEST(MuxExtendedTest, ByteArrayBltWorksEndToEnd) {
  Mux::Options options;
  options.blt_kind = BltKind::kByteArray;
  MuxRig rig(std::move(options));
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto h = mux.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(24 * 4096, 1);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(mux.MigrateRange("/f", 8, 8, rig.ssd_tier()).ok());
  ASSERT_TRUE(mux.MigrateRange("/f", 16, 8, rig.hdd_tier()).ok());
  std::vector<uint8_t> out(data.size());
  auto r = mux.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
  // The byte-array BLT reports per-tier accounting identically.
  auto breakdown = mux.FileTierBreakdown("/f");
  ASSERT_TRUE(breakdown.ok());
  EXPECT_EQ((*breakdown)[rig.pm_tier()], 8u);
  EXPECT_EQ((*breakdown)[rig.ssd_tier()], 8u);
  EXPECT_EQ((*breakdown)[rig.hdd_tier()], 8u);
  EXPECT_GT(mux.BltMemoryBytes(), 0u);
}

TEST(MuxExtendedTest, SetAttrPropagatesLazilyToShadows) {
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto h = mux.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(4096, 2);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());

  vfs::AttrUpdate update;
  update.mode = 0600;
  update.mtime = 42'000'000'000;
  ASSERT_TRUE(mux.SetAttr(*h, update).ok());
  auto st = mux.FStat(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->mode, 0600u);
  EXPECT_EQ(st->mtime, 42'000'000'000u);
  // Lazy sync pushed the values to the PM shadow too.
  auto shadow = rig.novafs().Stat("/f");
  ASSERT_TRUE(shadow.ok());
  EXPECT_EQ(shadow->mode, 0600u);
  EXPECT_EQ(shadow->mtime, 42'000'000'000u);
}

TEST(MuxExtendedTest, DirectoryRenameMovesSpanningSubtree) {
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  ASSERT_TRUE(mux.Mkdir("/proj").ok());
  ASSERT_TRUE(mux.Mkdir("/proj/sub").ok());
  auto h = mux.Open("/proj/sub/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(8 * 4096, 3);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  // Spread the file over two tiers, then rename the whole directory.
  ASSERT_TRUE(mux.MigrateRange("/proj/sub/f", 4, 4, rig.hdd_tier()).ok());
  ASSERT_TRUE(mux.Close(*h).ok());
  ASSERT_TRUE(mux.Rename("/proj", "/renamed").ok());

  EXPECT_EQ(mux.Stat("/proj/sub/f").status().code(), ErrorCode::kNotFound);
  auto h2 = mux.Open("/renamed/sub/f", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok()) << h2.status();
  std::vector<uint8_t> out(data.size());
  auto r = mux.Read(*h2, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
  // Both shadow file systems followed the rename.
  EXPECT_TRUE(rig.novafs().Stat("/renamed/sub/f").ok());
  EXPECT_TRUE(rig.extlite().Stat("/renamed/sub/f").ok());
  EXPECT_FALSE(rig.novafs().Stat("/proj/sub/f").ok());
}

TEST(MuxExtendedTest, PunchHoleAcrossTiers) {
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto h = mux.Open("/holey", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(12 * 4096, 4);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(mux.MigrateRange("/holey", 6, 6, rig.ssd_tier()).ok());
  // Punch a hole straddling the PM/SSD boundary.
  ASSERT_TRUE(mux.PunchHole(*h, 4 * 4096, 4 * 4096).ok());
  auto breakdown = mux.FileTierBreakdown("/holey");
  ASSERT_TRUE(breakdown.ok());
  EXPECT_EQ((*breakdown)[rig.pm_tier()], 4u);
  EXPECT_EQ((*breakdown)[rig.ssd_tier()], 4u);
  std::vector<uint8_t> out(data.size());
  auto r = mux.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < out.size(); ++i) {
    const bool hole = i >= 4 * 4096 && i < 8 * 4096;
    ASSERT_EQ(out[i], hole ? 0 : data[i]) << i;
  }
}

TEST(MuxExtendedTest, FallocateOverMigratedDataKeepsIt) {
  // Regression: Fallocate used to remap every block in its range to the
  // preallocation tier, so data living on another tier silently started
  // reading the zero-filled preallocated shadow.
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto h = mux.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(8 * 4096, 31);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(mux.MigrateFile("/f", rig.ssd_tier()).ok());

  // Preallocate over the live data (homed on SSD) and two blocks past it;
  // the preallocation lands on the fastest tier (PM).
  ASSERT_TRUE(
      mux.Fallocate(*h, 0, 10 * 4096, /*keep_size=*/false).ok());

  std::vector<uint8_t> out(data.size());
  auto r = mux.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data) << "fallocate clobbered migrated data";

  // Live blocks stay on SSD; only the two new blocks are claimed on PM.
  auto breakdown = mux.FileTierBreakdown("/f");
  ASSERT_TRUE(breakdown.ok());
  EXPECT_EQ((*breakdown)[rig.ssd_tier()], 8u);
  EXPECT_EQ((*breakdown)[rig.pm_tier()], 2u);

  // The PM preallocation over the live range was punched back out, so the
  // PM shadow consumes space only for the claimed tail blocks.
  auto shadow_stat = rig.novafs().Stat("/f");
  ASSERT_TRUE(shadow_stat.ok());
  EXPECT_LE(shadow_stat->allocated_bytes, 3u * 4096);

  auto scrub = mux.Scrub();
  ASSERT_TRUE(scrub.ok());
  EXPECT_TRUE(scrub->Clean())
      << "missing=" << scrub->missing_shadows
      << " size=" << scrub->size_inconsistencies
      << " replicas=" << scrub->replica_mismatches;
}

TEST(MuxExtendedTest, RecoverRestoresPolicyHeat) {
  // Regression: Recover() used to drop temperature/last_access, so every
  // file looked ice-cold after a remount and heat-driven policies
  // immediately misplaced data.
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto h = mux.Open("/hot", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(4 * 4096, 32);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  std::vector<uint8_t> out(data.size());
  rig.clock().Advance(1000000);
  ASSERT_TRUE(mux.Read(*h, 0, out.size(), out.data()).ok());
  ASSERT_TRUE(mux.Close(*h).ok());

  auto before = mux.Heat("/hot");
  ASSERT_TRUE(before.ok());
  ASSERT_GT(before->temperature, 0.0);
  ASSERT_GT(before->last_access, 0u);

  ASSERT_TRUE(mux.Checkpoint().ok());
  ASSERT_TRUE(rig.Remount().ok());

  auto after = rig.mux().Heat("/hot");
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(after->temperature, before->temperature);
  EXPECT_EQ(after->last_access, before->last_access);
}

TEST(MuxExtendedTest, CheckpointAfterChurnRecoversExactly) {
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  // Build, delete, rename, migrate — then checkpoint and remount.
  ASSERT_TRUE(mux.Mkdir("/a").ok());
  ASSERT_TRUE(mux.Mkdir("/b").ok());
  for (int i = 0; i < 8; ++i) {
    auto h = mux.Open("/a/f" + std::to_string(i), OpenFlags::kCreateRw);
    ASSERT_TRUE(h.ok());
    auto data = Pattern(4096 * (i + 1), i);
    ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
    ASSERT_TRUE(mux.Close(*h).ok());
  }
  ASSERT_TRUE(mux.Unlink("/a/f0").ok());
  ASSERT_TRUE(mux.Rename("/a/f1", "/b/g").ok());
  ASSERT_TRUE(mux.MigrateFile("/a/f2", rig.hdd_tier()).ok());
  ASSERT_TRUE(mux.MigrateRange("/a/f3", 0, 2, rig.ssd_tier()).ok());
  ASSERT_TRUE(mux.Checkpoint().ok());

  ASSERT_TRUE(rig.Remount().ok());
  auto& mux2 = rig.mux();
  EXPECT_EQ(mux2.Stat("/a/f0").status().code(), ErrorCode::kNotFound);
  EXPECT_TRUE(mux2.Stat("/b/g").ok());
  auto f2 = mux2.FileTierBreakdown("/a/f2");
  ASSERT_TRUE(f2.ok());
  EXPECT_TRUE(f2->contains(rig.hdd_tier()));
  // All surviving files read back correctly.
  for (int i = 2; i < 8; ++i) {
    auto h = mux2.Open("/a/f" + std::to_string(i), OpenFlags::kRead);
    ASSERT_TRUE(h.ok()) << i;
    auto expected = Pattern(4096 * (i + 1), i);
    std::vector<uint8_t> out(expected.size());
    auto r = mux2.Read(*h, 0, out.size(), out.data());
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(out, expected) << i;
  }
}

TEST(MuxExtendedTest, RecoverWithoutCheckpointFails) {
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  EXPECT_EQ(rig.Remount().code(), ErrorCode::kNotFound);
}

TEST(MuxExtendedTest, RemoveTierErrorPaths) {
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  EXPECT_EQ(mux.RemoveTier("nope").code(), ErrorCode::kNotFound);
  ASSERT_TRUE(mux.RemoveTier("ssd").ok());
  ASSERT_TRUE(mux.RemoveTier("hdd").ok());
  // The last tier cannot be removed.
  EXPECT_EQ(mux.RemoveTier("pm").code(), ErrorCode::kInvalidArgument);
}

TEST(MuxExtendedTest, SwitchPolicyAtRuntime) {
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  EXPECT_EQ(mux.PolicyName(), "lru");
  ASSERT_TRUE(mux.SetPolicyByName("tpfs").ok());
  EXPECT_EQ(mux.PolicyName(), "tpfs");
  EXPECT_EQ(mux.SetPolicyByName("no-such").code(), ErrorCode::kNotFound);
  // Large async writes route per the new policy (TPFS: large -> slowest).
  auto h = mux.Open("/big", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(8 << 20, 5);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  auto breakdown = mux.FileTierBreakdown("/big");
  ASSERT_TRUE(breakdown.ok());
  EXPECT_TRUE(breakdown->contains(rig.hdd_tier()));
}

TEST(MuxExtendedTest, MigrateErrorPaths) {
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  EXPECT_EQ(mux.MigrateFile("/missing", rig.ssd_tier()).code(),
            ErrorCode::kNotFound);
  ASSERT_TRUE(mux.Mkdir("/d").ok());
  EXPECT_EQ(mux.MigrateFile("/d", rig.ssd_tier()).code(), ErrorCode::kIsDir);
  auto h = mux.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  uint8_t b = 1;
  ASSERT_TRUE(mux.Write(*h, 0, &b, 1).ok());
  EXPECT_EQ(mux.MigrateFile("/f", 777).code(), ErrorCode::kNotFound);
  // Migrating to the tier the data already lives on is a clean no-op.
  EXPECT_TRUE(mux.MigrateFile("/f", rig.pm_tier()).ok());
}

TEST(MuxExtendedTest, SizeAffinityFollowsTailOwner) {
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto h = mux.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(4 * 4096, 6);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  // Truncate into the middle, then append: size must stay exact throughout
  // even as the tail block changes tiers.
  ASSERT_TRUE(mux.Truncate(*h, 2 * 4096 + 100).ok());
  auto st = mux.FStat(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 2u * 4096 + 100);
  ASSERT_TRUE(mux.MigrateFile("/f", rig.hdd_tier()).ok());
  auto tail = Pattern(4096, 7);
  ASSERT_TRUE(mux.Write(*h, 2 * 4096 + 100, tail.data(), tail.size()).ok());
  st = mux.FStat(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 3u * 4096 + 100);
  // Readback across the truncate boundary: old prefix, zeros were never
  // exposed, new tail.
  std::vector<uint8_t> out(st->size);
  auto r = mux.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < 2 * 4096 + 100; ++i) {
    ASSERT_EQ(out[i], data[i]) << i;
  }
  for (size_t i = 0; i < tail.size(); ++i) {
    ASSERT_EQ(out[2 * 4096 + 100 + i], tail[i]) << i;
  }
}

TEST(MuxExtendedTest, FsyncSurvivesUnderlyingCrash) {
  // End-to-end crash consistency through the whole stack: fsync through Mux,
  // crash the SSD device, remount xfslite, recover Mux — data intact.
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  rig.ssd_dev().EnableCrashSim(true);

  auto h = mux.Open("/durable", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(64 * 1024, 8);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(mux.MigrateFile("/durable", rig.ssd_tier()).ok());
  ASSERT_TRUE(mux.Fsync(*h, false).ok());
  ASSERT_TRUE(mux.Checkpoint().ok());
  ASSERT_TRUE(mux.Close(*h).ok());

  rig.ssd_dev().Crash();
  rig.ssd_dev().EnableCrashSim(false);
  ASSERT_TRUE(rig.xfslite().Mount().ok());
  ASSERT_TRUE(rig.Remount().ok());

  auto& mux2 = rig.mux();
  auto h2 = mux2.Open("/durable", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok()) << h2.status();
  std::vector<uint8_t> out(data.size());
  auto r = mux2.Read(*h2, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

// ---- randomized oracle property: ops + migrations --------------------------
// Random file operations interleaved with random block-range migrations; the
// oracle (MemFs) sees only the file operations. Contents must match at every
// read and at the end — migrations must be perfectly transparent.
class MuxMigrationOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MuxMigrationOracle, MigrationsAreTransparent) {
  MuxRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  SimClock oracle_clock;
  vfs::MemFs oracle(&oracle_clock);
  Rng rng(GetParam());

  const core::TierId tiers[3] = {rig.pm_tier(), rig.ssd_tier(),
                                 rig.hdd_tier()};
  const std::vector<std::string> files = {"/x", "/y"};
  constexpr uint64_t kMaxFile = 96 * 4096;

  for (int step = 0; step < 300; ++step) {
    const std::string& path = files[rng.Below(files.size())];
    switch (rng.Below(6)) {
      case 0:
      case 1: {  // write
        const uint64_t offset = rng.Below(kMaxFile);
        const uint64_t len = 1 + rng.Below(8 * 4096);
        auto data = Pattern(len, rng.Next());
        auto h1 = mux.Open(path, OpenFlags::kCreateRw);
        auto h2 = oracle.Open(path, OpenFlags::kCreateRw);
        ASSERT_TRUE(h1.ok());
        ASSERT_TRUE(h2.ok());
        ASSERT_TRUE(mux.Write(*h1, offset, data.data(), len).ok());
        ASSERT_TRUE(oracle.Write(*h2, offset, data.data(), len).ok());
        ASSERT_TRUE(mux.Close(*h1).ok());
        ASSERT_TRUE(oracle.Close(*h2).ok());
        break;
      }
      case 2: {  // migrate a random range to a random tier
        const uint64_t first = rng.Below(kMaxFile / 4096);
        const uint64_t count = 1 + rng.Below(32);
        const core::TierId to = tiers[rng.Below(3)];
        Status s = mux.MigrateRange(path, first, count, to);
        ASSERT_TRUE(s.ok() || s.code() == ErrorCode::kNotFound) << s;
        break;
      }
      case 3: {  // truncate
        const uint64_t size = rng.Below(kMaxFile);
        auto h1 = mux.Open(path, OpenFlags::kCreateRw);
        auto h2 = oracle.Open(path, OpenFlags::kCreateRw);
        ASSERT_TRUE(h1.ok());
        ASSERT_TRUE(h2.ok());
        ASSERT_TRUE(mux.Truncate(*h1, size).ok());
        ASSERT_TRUE(oracle.Truncate(*h2, size).ok());
        ASSERT_TRUE(mux.Close(*h1).ok());
        ASSERT_TRUE(oracle.Close(*h2).ok());
        break;
      }
      case 4: {  // punch a hole (aligned)
        const uint64_t first = rng.Below(kMaxFile / 4096);
        const uint64_t count = 1 + rng.Below(8);
        auto h1 = mux.Open(path, OpenFlags::kCreateRw);
        auto h2 = oracle.Open(path, OpenFlags::kCreateRw);
        if (!h1.ok() || !h2.ok()) {
          break;
        }
        Status s1 = mux.PunchHole(*h1, first * 4096, count * 4096);
        Status s2 = oracle.PunchHole(*h2, first * 4096, count * 4096);
        ASSERT_EQ(s1.code(), s2.code()) << step;
        ASSERT_TRUE(mux.Close(*h1).ok());
        ASSERT_TRUE(oracle.Close(*h2).ok());
        break;
      }
      case 5: {  // read compare
        auto h1 = mux.Open(path, OpenFlags::kRead);
        auto h2 = oracle.Open(path, OpenFlags::kRead);
        ASSERT_EQ(h1.ok(), h2.ok());
        if (!h1.ok()) {
          break;
        }
        const uint64_t offset = rng.Below(kMaxFile);
        const uint64_t len = 1 + rng.Below(4 * 4096);
        std::vector<uint8_t> o1(len, 0xAA);
        std::vector<uint8_t> o2(len, 0xBB);
        auto r1 = mux.Read(*h1, offset, len, o1.data());
        auto r2 = oracle.Read(*h2, offset, len, o2.data());
        ASSERT_TRUE(r1.ok());
        ASSERT_TRUE(r2.ok());
        ASSERT_EQ(*r1, *r2) << "step " << step;
        o1.resize(*r1);
        o2.resize(*r2);
        ASSERT_EQ(o1, o2) << "step " << step;
        ASSERT_TRUE(mux.Close(*h1).ok());
        ASSERT_TRUE(oracle.Close(*h2).ok());
        break;
      }
    }
  }

  // Final byte-for-byte sweep.
  for (const auto& path : files) {
    auto st2 = oracle.Stat(path);
    auto st1 = mux.Stat(path);
    ASSERT_EQ(st1.ok(), st2.ok()) << path;
    if (!st2.ok()) {
      continue;
    }
    ASSERT_EQ(st1->size, st2->size) << path;
    if (st2->size == 0) {
      continue;
    }
    auto h1 = mux.Open(path, OpenFlags::kRead);
    auto h2 = oracle.Open(path, OpenFlags::kRead);
    ASSERT_TRUE(h1.ok());
    ASSERT_TRUE(h2.ok());
    std::vector<uint8_t> o1(st2->size);
    std::vector<uint8_t> o2(st2->size);
    ASSERT_TRUE(mux.Read(*h1, 0, o1.size(), o1.data()).ok());
    ASSERT_TRUE(oracle.Read(*h2, 0, o2.size(), o2.data()).ok());
    ASSERT_EQ(o1, o2) << path << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MuxMigrationOracle,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace mux::testing
