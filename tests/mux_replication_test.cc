// Tests for multi-residency replication (MOST): mirroring, write-absorb with
// lazy mirror reconciliation, fastest-copy reads, device-failure failover,
// interaction with truncate/punch/migration, and bookkeeper persistence.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/random.h"
#include "tests/mux_rig.h"

namespace mux::testing {
namespace {

using vfs::OpenFlags;

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Rng rng(seed);
  rng.Fill(v.data(), n);
  return v;
}

class MuxReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(rig_.ok());
    auto h = rig_.mux().Open("/r", OpenFlags::kCreateRw);
    ASSERT_TRUE(h.ok());
    handle_ = *h;
    data_ = Pattern(32 * 4096, 1);
    ASSERT_TRUE(rig_.mux().Write(handle_, 0, data_.data(), data_.size()).ok());
  }

  MuxRig rig_;
  vfs::FileHandle handle_ = 0;
  std::vector<uint8_t> data_;
};

TEST_F(MuxReplicationTest, ReplicateCreatesMirror) {
  auto& mux = rig_.mux();
  // Primary on PM; mirror on HDD.
  ASSERT_TRUE(mux.ReplicateFile("/r", rig_.hdd_tier()).ok());
  auto replicas = mux.ReplicaBreakdown("/r");
  ASSERT_TRUE(replicas.ok());
  EXPECT_EQ((*replicas)[rig_.hdd_tier()], 32u);
  // The mirror is a real shadow file on extlite with the same bytes.
  auto shadow = rig_.extlite().Open("/r", OpenFlags::kRead);
  ASSERT_TRUE(shadow.ok());
  std::vector<uint8_t> out(data_.size());
  auto r = rig_.extlite().Read(*shadow, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data_);
}

TEST_F(MuxReplicationTest, WritesAbsorbThenMirrorSyncReconciles) {
  auto& mux = rig_.mux();
  ASSERT_TRUE(mux.ReplicateFile("/r", rig_.ssd_tier()).ok());
  auto patch = Pattern(10000, 2);
  ASSERT_TRUE(mux.Write(handle_, 5000, patch.data(), patch.size()).ok());
  std::copy(patch.begin(), patch.end(), data_.begin() + 5000);

  // The write absorbed on one copy and marked the SSD mirror stale; the
  // lazy reconciliation pass copies the fresh bytes over.
  EXPECT_GT(mux.metrics().CounterValue("mux.mirror.dirty_blocks"), 0u);
  auto synced = mux.SyncMirrors();
  ASSERT_TRUE(synced.ok()) << synced.status();
  EXPECT_GT(*synced, 0u);
  // Exactly-once: a second pass finds nothing left to reconcile.
  auto again = mux.SyncMirrors();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);

  // Both physical copies carry the update now.
  for (vfs::FileSystem* fs :
       {static_cast<vfs::FileSystem*>(&rig_.novafs()),
        static_cast<vfs::FileSystem*>(&rig_.xfslite())}) {
    auto shadow = fs->Open("/r", OpenFlags::kRead);
    ASSERT_TRUE(shadow.ok());
    std::vector<uint8_t> out(data_.size());
    auto r = fs->Read(*shadow, 0, out.size(), out.data());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(out, data_) << fs->Name();
  }
  // And the reconciled stack checks out clean.
  auto report = mux.Fsck();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Clean()) << "mismatches=" << report->replica_mismatches;
  EXPECT_EQ(report->dirty_replicas, 0u);
}

TEST_F(MuxReplicationTest, ReadsPreferTheFasterCopy) {
  auto& mux = rig_.mux();
  // Move the primary to HDD, then mirror back onto PM.
  ASSERT_TRUE(mux.MigrateFile("/r", rig_.hdd_tier()).ok());
  const auto hdd_reads_before_replica = rig_.hdd_dev().stats().read_ops;
  ASSERT_TRUE(mux.ReplicateFile("/r", rig_.pm_tier()).ok());

  // Reads now come from the PM mirror, not the HDD primary.
  const auto hdd_reads_before = rig_.hdd_dev().stats().read_ops;
  const auto pm_reads_before = rig_.pm_dev().stats().read_ops;
  std::vector<uint8_t> out(data_.size());
  auto r = mux.Read(handle_, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data_);
  EXPECT_EQ(rig_.hdd_dev().stats().read_ops, hdd_reads_before);
  EXPECT_GT(rig_.pm_dev().stats().read_ops, pm_reads_before);
  (void)hdd_reads_before_replica;
}

TEST_F(MuxReplicationTest, FailoverWhenPrimaryDies) {
  auto& mux = rig_.mux();
  // Primary on SSD, mirror on HDD.
  ASSERT_TRUE(mux.MigrateFile("/r", rig_.ssd_tier()).ok());
  ASSERT_TRUE(mux.ReplicateFile("/r", rig_.hdd_tier()).ok());

  // The SSD dies.
  rig_.ssd_dev().FailReads(true);
  std::vector<uint8_t> out(data_.size());
  auto r = mux.Read(handle_, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(out, data_);
  rig_.ssd_dev().FailReads(false);
}

TEST_F(MuxReplicationTest, FailoverWhenReplicaDies) {
  auto& mux = rig_.mux();
  // Primary on HDD, (preferred) mirror on SSD — then the SSD dies and reads
  // must fall back to the slower primary.
  ASSERT_TRUE(mux.MigrateFile("/r", rig_.hdd_tier()).ok());
  ASSERT_TRUE(mux.ReplicateFile("/r", rig_.ssd_tier()).ok());
  rig_.ssd_dev().FailReads(true);
  std::vector<uint8_t> out(data_.size());
  auto r = mux.Read(handle_, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(out, data_);
  rig_.ssd_dev().FailReads(false);
}

TEST_F(MuxReplicationTest, NoReplicaMeansFailureSurfaces) {
  auto& mux = rig_.mux();
  ASSERT_TRUE(mux.MigrateFile("/r", rig_.ssd_tier()).ok());
  // Remount xfslite so its DRAM page cache cannot mask the dead device.
  ASSERT_TRUE(rig_.xfslite().Mount().ok());
  rig_.ssd_dev().FailReads(true);
  std::vector<uint8_t> out(4096);
  auto r = mux.Read(handle_, 0, out.size(), out.data());
  EXPECT_FALSE(r.ok());
  rig_.ssd_dev().FailReads(false);
}

TEST_F(MuxReplicationTest, DropReplicasFreesMirrorSpace) {
  auto& mux = rig_.mux();
  ASSERT_TRUE(mux.MigrateFile("/r", rig_.ssd_tier()).ok());
  auto before = rig_.extlite().StatFs();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(mux.ReplicateFile("/r", rig_.hdd_tier()).ok());
  auto during = rig_.extlite().StatFs();
  ASSERT_TRUE(during.ok());
  EXPECT_LT(during->free_bytes, before->free_bytes);
  ASSERT_TRUE(mux.DropReplicas("/r").ok());
  auto replicas = mux.ReplicaBreakdown("/r");
  ASSERT_TRUE(replicas.ok());
  EXPECT_TRUE(replicas->empty());
  auto after = rig_.extlite().StatFs();
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->free_bytes, during->free_bytes);
  // Data still intact from the primary.
  std::vector<uint8_t> out(data_.size());
  auto r = mux.Read(handle_, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data_);
}

TEST_F(MuxReplicationTest, TruncateShrinksReplicas) {
  auto& mux = rig_.mux();
  ASSERT_TRUE(mux.ReplicateFile("/r", rig_.hdd_tier()).ok());
  ASSERT_TRUE(mux.Truncate(handle_, 8 * 4096).ok());
  auto replicas = mux.ReplicaBreakdown("/r");
  ASSERT_TRUE(replicas.ok());
  EXPECT_EQ((*replicas)[rig_.hdd_tier()], 8u);
  // Grow again and verify zero-fill through the replica-aware read path.
  ASSERT_TRUE(mux.Truncate(handle_, 16 * 4096).ok());
  std::vector<uint8_t> out(16 * 4096);
  auto r = mux.Read(handle_, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  for (size_t i = 8 * 4096; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 0) << i;
  }
}

TEST_F(MuxReplicationTest, PunchHoleClearsReplicas) {
  auto& mux = rig_.mux();
  ASSERT_TRUE(mux.ReplicateFile("/r", rig_.hdd_tier()).ok());
  ASSERT_TRUE(mux.PunchHole(handle_, 4 * 4096, 8 * 4096).ok());
  auto replicas = mux.ReplicaBreakdown("/r");
  ASSERT_TRUE(replicas.ok());
  EXPECT_EQ((*replicas)[rig_.hdd_tier()], 24u);
  std::vector<uint8_t> out(data_.size());
  auto r = mux.Read(handle_, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < out.size(); ++i) {
    const bool hole = i >= 4 * 4096 && i < 12 * 4096;
    ASSERT_EQ(out[i], hole ? 0 : data_[i]) << i;
  }
}

TEST_F(MuxReplicationTest, MigrationOntoReplicaTierCollapses) {
  auto& mux = rig_.mux();
  ASSERT_TRUE(mux.ReplicateFile("/r", rig_.ssd_tier()).ok());
  // Migrate the primary onto the mirror's tier: one physical copy remains.
  ASSERT_TRUE(mux.MigrateFile("/r", rig_.ssd_tier()).ok());
  auto replicas = mux.ReplicaBreakdown("/r");
  ASSERT_TRUE(replicas.ok());
  EXPECT_TRUE(replicas->empty());
  auto primary = mux.FileTierBreakdown("/r");
  ASSERT_TRUE(primary.ok());
  EXPECT_EQ((*primary)[rig_.ssd_tier()], 32u);
  std::vector<uint8_t> out(data_.size());
  auto r = mux.Read(handle_, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data_);
}

TEST_F(MuxReplicationTest, ReplicasSurviveCheckpointRecover) {
  auto& mux = rig_.mux();
  ASSERT_TRUE(mux.MigrateFile("/r", rig_.hdd_tier()).ok());
  ASSERT_TRUE(mux.ReplicateFile("/r", rig_.pm_tier()).ok());
  ASSERT_TRUE(mux.Close(handle_).ok());
  ASSERT_TRUE(mux.Checkpoint().ok());

  ASSERT_TRUE(rig_.Remount().ok());
  auto& mux2 = rig_.mux();
  auto replicas = mux2.ReplicaBreakdown("/r");
  ASSERT_TRUE(replicas.ok());
  EXPECT_EQ((*replicas)[rig_.pm_tier()], 32u);
  // Failover still works after recovery.
  rig_.hdd_dev().FailReads(true);
  auto h = mux2.Open("/r", OpenFlags::kRead);
  ASSERT_TRUE(h.ok());
  std::vector<uint8_t> out(data_.size());
  auto r = mux2.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(out, data_);
  rig_.hdd_dev().FailReads(false);
}

TEST_F(MuxReplicationTest, PartialRangeReplication) {
  auto& mux = rig_.mux();
  ASSERT_TRUE(mux.MigrateFile("/r", rig_.hdd_tier()).ok());
  // Mirror only the hot prefix onto PM.
  ASSERT_TRUE(mux.ReplicateRange("/r", 0, 8, rig_.pm_tier()).ok());
  auto replicas = mux.ReplicaBreakdown("/r");
  ASSERT_TRUE(replicas.ok());
  EXPECT_EQ((*replicas)[rig_.pm_tier()], 8u);
  // A read spanning the replicated and unreplicated halves merges correctly.
  std::vector<uint8_t> out(16 * 4096);
  auto r = mux.Read(handle_, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::memcmp(out.data(), data_.data(), out.size()), 0);
}

TEST_F(MuxReplicationTest, ReplicationOracleUnderChurn) {
  // Random writes over a partially replicated file must keep both copies
  // coherent — verified by reading with each device alternately dead.
  auto& mux = rig_.mux();
  ASSERT_TRUE(mux.MigrateFile("/r", rig_.ssd_tier()).ok());
  ASSERT_TRUE(mux.ReplicateFile("/r", rig_.hdd_tier()).ok());
  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    const uint64_t offset = rng.Below(data_.size() - 1);
    const uint64_t len = 1 + rng.Below(8000);
    auto patch = Pattern(len, rng.Next());
    const uint64_t n = std::min<uint64_t>(len, data_.size() - offset);
    ASSERT_TRUE(mux.Write(handle_, offset, patch.data(), n).ok());
    std::copy(patch.begin(), patch.begin() + n, data_.begin() + offset);
  }
  // Writes absorbed on one copy; reconcile so every copy is current before
  // killing devices underneath.
  auto synced = mux.SyncMirrors();
  ASSERT_TRUE(synced.ok()) << synced.status();
  for (device::BlockDevice* dead : {&rig_.ssd_dev(), &rig_.hdd_dev()}) {
    dead->FailReads(true);
    std::vector<uint8_t> out(data_.size());
    auto r = mux.Read(handle_, 0, out.size(), out.data());
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_EQ(out, data_);
    dead->FailReads(false);
  }
}

TEST_F(MuxReplicationTest, ReadAcrossMirrorSeam) {
  // Mirror only the first half of the file, then read across the seam where
  // the mirrored prefix meets the unmirrored tail: the prefix may be served
  // from the PM mirror, the tail must come from the HDD primary, and the
  // caller sees one coherent byte stream.
  auto& mux = rig_.mux();
  ASSERT_TRUE(mux.MigrateFile("/r", rig_.hdd_tier()).ok());
  ASSERT_TRUE(mux.ReplicateRange("/r", 0, 16, rig_.pm_tier()).ok());
  const uint64_t hits_before =
      mux.metrics().CounterValue("mux.replica.read_hits");
  // Straddle the seam with unaligned bounds on both sides.
  const uint64_t lo = 15 * 4096 + 123;
  const uint64_t hi = 17 * 4096 + 991;
  std::vector<uint8_t> out(hi - lo);
  auto r = mux.Read(handle_, lo, out.size(), out.data());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(std::memcmp(out.data(), data_.data() + lo, out.size()), 0);
  // Whole-prefix read: the PM mirror serves at least part of it.
  std::vector<uint8_t> full(data_.size());
  ASSERT_TRUE(mux.Read(handle_, 0, full.size(), full.data()).ok());
  EXPECT_EQ(full, data_);
  EXPECT_GT(mux.metrics().CounterValue("mux.replica.read_hits"), hits_before);
}

TEST_F(MuxReplicationTest, FailoverIsCountedPerRead) {
  auto& mux = rig_.mux();
  ASSERT_TRUE(mux.MigrateFile("/r", rig_.ssd_tier()).ok());
  ASSERT_TRUE(mux.ReplicateFile("/r", rig_.hdd_tier()).ok());
  // Remount xfslite so its page cache cannot mask the dead device.
  ASSERT_TRUE(rig_.xfslite().Mount().ok());
  rig_.ssd_dev().FailReads(true);
  const uint64_t failovers_before =
      mux.metrics().CounterValue("mux.replica.failover");
  std::vector<uint8_t> out(data_.size());
  for (int i = 0; i < 3; ++i) {
    auto r = mux.Read(handle_, 0, out.size(), out.data());
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(out, data_);
  }
  // Every failed-over copy read bumps the counter (the *log* is rate-limited
  // to one line per failure episode; the metric is not).
  EXPECT_GT(mux.metrics().CounterValue("mux.replica.failover"),
            failovers_before);
  rig_.ssd_dev().FailReads(false);
  // Recovery: reads succeed from the revived tier again.
  auto r = mux.Read(handle_, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data_);
}

TEST_F(MuxReplicationTest, ScrubReportsCleanStack) {
  auto& mux = rig_.mux();
  ASSERT_TRUE(mux.MigrateRange("/r", 8, 8, rig_.ssd_tier()).ok());
  ASSERT_TRUE(mux.ReplicateFile("/r", rig_.hdd_tier()).ok());
  auto report = mux.Scrub();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->Clean());
  EXPECT_EQ(report->files_checked, 1u);
  EXPECT_GE(report->blocks_checked, 32u);
}

TEST_F(MuxReplicationTest, ScrubDetectsDivergedReplica) {
  auto& mux = rig_.mux();
  ASSERT_TRUE(mux.ReplicateFile("/r", rig_.hdd_tier()).ok());
  // Corrupt the mirror behind Mux's back by writing to the shadow directly.
  auto shadow = rig_.extlite().Open("/r", OpenFlags::kReadWrite);
  ASSERT_TRUE(shadow.ok());
  auto garbage = Pattern(4096, 99);
  ASSERT_TRUE(
      rig_.extlite().Write(*shadow, 4 * 4096, garbage.data(), 4096).ok());
  auto report = mux.Scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->Clean());
  EXPECT_GE(report->replica_mismatches, 1u);
}

TEST_F(MuxReplicationTest, ScrubDetectsMissingShadow) {
  auto& mux = rig_.mux();
  ASSERT_TRUE(mux.MigrateFile("/r", rig_.ssd_tier()).ok());
  // Delete the shadow behind Mux's back.
  ASSERT_TRUE(rig_.xfslite().Unlink("/r").ok());
  auto report = mux.Scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->missing_shadows, 1u);
}

}  // namespace
}  // namespace mux::testing
