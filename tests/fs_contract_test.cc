// The generic FileSystem contract battery plus a randomized-oracle property
// test. Instantiated for every file system in the repository; new file
// systems only add a registration block at the bottom.
#include "tests/fs_contract.h"

#include <cstring>
#include <map>
#include <vector>

#include "src/common/random.h"
#include "src/device/block_device.h"
#include "src/device/pm_device.h"
#include "src/fs/extlite/extlite.h"
#include "src/fs/novafs/novafs.h"
#include "src/fs/xfslite/xfslite.h"
#include "src/strata/strata.h"
#include "tests/mux_rig.h"
#include "src/vfs/memfs.h"
#include "src/vfs/path.h"

namespace mux::testing {
namespace {

using vfs::OpenFlags;

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Rng rng(seed);
  rng.Fill(v.data(), n);
  return v;
}

TEST_P(FsContractTest, CreateWriteReadBack) {
  auto h = fs_->Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok()) << h.status();
  auto data = Pattern(10000, 1);
  auto w = fs_->Write(*h, 0, data.data(), data.size());
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_EQ(*w, data.size());
  std::vector<uint8_t> out(data.size());
  auto r = fs_->Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, data.size());
  EXPECT_EQ(out, data);
  EXPECT_TRUE(fs_->Close(*h).ok());
}

TEST_P(FsContractTest, PersistsAcrossHandles) {
  auto h1 = fs_->Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h1.ok());
  auto data = Pattern(5000, 2);
  ASSERT_TRUE(fs_->Write(*h1, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_->Close(*h1).ok());
  auto h2 = fs_->Open("/f", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok());
  std::vector<uint8_t> out(data.size());
  auto r = fs_->Read(*h2, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

TEST_P(FsContractTest, UnalignedOffsets) {
  auto h = fs_->Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(9000, 3);
  // Write at an offset that is not page aligned and spans pages.
  ASSERT_TRUE(fs_->Write(*h, 4095, data.data(), data.size()).ok());
  std::vector<uint8_t> out(data.size());
  auto r = fs_->Read(*h, 4095, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, out.size());
  EXPECT_EQ(out, data);
  // The first 4095 bytes are a hole.
  std::vector<uint8_t> head(4095);
  ASSERT_TRUE(fs_->Read(*h, 0, head.size(), head.data()).ok());
  EXPECT_EQ(head, std::vector<uint8_t>(4095, 0));
}

TEST_P(FsContractTest, OverwriteMiddle) {
  auto h = fs_->Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto base = Pattern(16384, 4);
  ASSERT_TRUE(fs_->Write(*h, 0, base.data(), base.size()).ok());
  auto patch = Pattern(100, 5);
  ASSERT_TRUE(fs_->Write(*h, 6000, patch.data(), patch.size()).ok());
  std::vector<uint8_t> expected = base;
  std::copy(patch.begin(), patch.end(), expected.begin() + 6000);
  std::vector<uint8_t> out(base.size());
  ASSERT_TRUE(fs_->Read(*h, 0, out.size(), out.data()).ok());
  EXPECT_EQ(out, expected);
  auto st = fs_->FStat(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, base.size());  // overwrite does not grow the file
}

TEST_P(FsContractTest, SparseFilePreservesOffsets) {
  // The paper's §2.2 mechanism: a block written at offset X must read back
  // at offset X even when everything before it is a hole, and disk
  // consumption must reflect only the written block.
  auto h = fs_->Open("/sparse", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(4096, 6);
  const uint64_t far_offset = 10 * 1024 * 1024;  // 10 MiB
  ASSERT_TRUE(fs_->Write(*h, far_offset, data.data(), data.size()).ok());
  auto st = fs_->FStat(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, far_offset + data.size());
  EXPECT_LT(st->allocated_bytes, far_offset / 2)
      << "file system does not store holes sparsely";
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(fs_->Read(*h, far_offset, out.size(), out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST_P(FsContractTest, ReadShortAtEof) {
  auto h = fs_->Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(100, 7);
  ASSERT_TRUE(fs_->Write(*h, 0, data.data(), data.size()).ok());
  std::vector<uint8_t> out(200);
  auto r = fs_->Read(*h, 50, 200, out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 50u);
  auto r2 = fs_->Read(*h, 1000, 10, out.data());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, 0u);
}

TEST_P(FsContractTest, TruncateShrinkGrow) {
  auto h = fs_->Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(10000, 8);
  ASSERT_TRUE(fs_->Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_->Truncate(*h, 3000).ok());
  auto st = fs_->FStat(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 3000u);
  ASSERT_TRUE(fs_->Truncate(*h, 10000).ok());
  std::vector<uint8_t> out(10000);
  ASSERT_TRUE(fs_->Read(*h, 0, out.size(), out.data()).ok());
  for (size_t i = 0; i < 3000; ++i) {
    ASSERT_EQ(out[i], data[i]) << i;
  }
  for (size_t i = 3000; i < 10000; ++i) {
    ASSERT_EQ(out[i], 0) << "stale data after shrink+grow at " << i;
  }
}

TEST_P(FsContractTest, DirectoryLifecycle) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  ASSERT_TRUE(fs_->Mkdir("/d/e").ok());
  ASSERT_TRUE(fs_->Open("/d/f", OpenFlags::kCreateRw).ok());
  auto entries = fs_->ReadDir("/d");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
  EXPECT_EQ(fs_->Rmdir("/d").code(), ErrorCode::kNotEmpty);
  ASSERT_TRUE(fs_->Unlink("/d/f").ok());
  ASSERT_TRUE(fs_->Rmdir("/d/e").ok());
  ASSERT_TRUE(fs_->Rmdir("/d").ok());
  EXPECT_EQ(fs_->Stat("/d").status().code(), ErrorCode::kNotFound);
}

TEST_P(FsContractTest, NamespaceErrors) {
  EXPECT_EQ(fs_->Open("/nope", OpenFlags::kRead).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(fs_->Mkdir("/a/b").code(), ErrorCode::kNotFound);
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  EXPECT_EQ(fs_->Mkdir("/a").code(), ErrorCode::kExists);
  EXPECT_EQ(fs_->Open("/a", OpenFlags::kRead).status().code(),
            ErrorCode::kIsDir);
  EXPECT_EQ(fs_->Unlink("/a").code(), ErrorCode::kIsDir);
  ASSERT_TRUE(fs_->Open("/a/f", OpenFlags::kCreateRw).ok());
  EXPECT_EQ(fs_->Rmdir("/a/f").code(), ErrorCode::kNotDir);
  EXPECT_EQ(fs_->Open("/a/f/x", OpenFlags::kCreateRw).status().code(),
            ErrorCode::kNotDir);
}

TEST_P(FsContractTest, RenameFileAndDirectory) {
  ASSERT_TRUE(fs_->Mkdir("/d1").ok());
  ASSERT_TRUE(fs_->Mkdir("/d2").ok());
  auto h = fs_->Open("/d1/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(2000, 9);
  ASSERT_TRUE(fs_->Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_->Close(*h).ok());
  ASSERT_TRUE(fs_->Rename("/d1/f", "/d2/g").ok());
  EXPECT_EQ(fs_->Stat("/d1/f").status().code(), ErrorCode::kNotFound);
  auto h2 = fs_->Open("/d2/g", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(fs_->Read(*h2, 0, out.size(), out.data()).ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(fs_->Close(*h2).ok());
  // Directory rename.
  ASSERT_TRUE(fs_->Rename("/d2", "/d3").ok());
  EXPECT_TRUE(fs_->Stat("/d3/g").ok());
}

TEST_P(FsContractTest, RenameReplacesExistingFile) {
  auto a = fs_->Open("/a", OpenFlags::kCreateRw);
  auto b = fs_->Open("/b", OpenFlags::kCreateRw);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  uint8_t x = 7;
  ASSERT_TRUE(fs_->Write(*a, 0, &x, 1).ok());
  ASSERT_TRUE(fs_->Close(*a).ok());
  ASSERT_TRUE(fs_->Close(*b).ok());
  ASSERT_TRUE(fs_->Rename("/a", "/b").ok());
  auto st = fs_->Stat("/b");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 1u);
  EXPECT_EQ(fs_->Stat("/a").status().code(), ErrorCode::kNotFound);
}

TEST_P(FsContractTest, UnlinkReleasesSpace) {
  auto before = fs_->StatFs();
  ASSERT_TRUE(before.ok());
  auto h = fs_->Open("/big", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(1 << 20, 10);
  ASSERT_TRUE(fs_->Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_->Close(*h).ok());
  auto during = fs_->StatFs();
  ASSERT_TRUE(during.ok());
  EXPECT_LT(during->free_bytes, before->free_bytes);
  ASSERT_TRUE(fs_->Unlink("/big").ok());
  auto after = fs_->StatFs();
  ASSERT_TRUE(after.ok());
  // Allow for metadata overhead (logs, journals) but the megabyte of data
  // must come back.
  EXPECT_GT(after->free_bytes + (64 << 10), before->free_bytes);
}

TEST_P(FsContractTest, FsyncAndReadBack) {
  auto h = fs_->Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(30000, 11);
  ASSERT_TRUE(fs_->Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_->Fsync(*h, /*data_only=*/false).ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(fs_->Read(*h, 0, out.size(), out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST_P(FsContractTest, TimestampsBehave) {
  auto h = fs_->Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto st0 = fs_->FStat(*h);
  ASSERT_TRUE(st0.ok());
  clock_->Advance(1'000'000'000);
  uint8_t b = 1;
  ASSERT_TRUE(fs_->Write(*h, 0, &b, 1).ok());
  auto st1 = fs_->FStat(*h);
  ASSERT_TRUE(st1.ok());
  EXPECT_GE(st1->mtime, st0->mtime + 1'000'000'000 -
                            fs_->TimestampGranularityNs());
}

TEST_P(FsContractTest, DeepPathsWork) {
  std::string path;
  for (int depth = 0; depth < 8; ++depth) {
    path += "/dir" + std::to_string(depth);
    ASSERT_TRUE(fs_->Mkdir(path).ok());
  }
  auto h = fs_->Open(path + "/leaf", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  uint8_t b = 0x5c;
  ASSERT_TRUE(fs_->Write(*h, 0, &b, 1).ok());
  auto st = fs_->Stat(path + "/leaf");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 1u);
}

TEST_P(FsContractTest, ManyFilesInOneDirectory) {
  ASSERT_TRUE(fs_->Mkdir("/many").ok());
  constexpr int kFiles = 100;
  for (int i = 0; i < kFiles; ++i) {
    auto h = fs_->Open("/many/file" + std::to_string(i), OpenFlags::kCreateRw);
    ASSERT_TRUE(h.ok()) << i << ": " << h.status();
    const uint8_t b = static_cast<uint8_t>(i);
    ASSERT_TRUE(fs_->Write(*h, 0, &b, 1).ok());
    ASSERT_TRUE(fs_->Close(*h).ok());
  }
  auto entries = fs_->ReadDir("/many");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), static_cast<size_t>(kFiles));
  for (int i = 0; i < kFiles; ++i) {
    auto h = fs_->Open("/many/file" + std::to_string(i), OpenFlags::kRead);
    ASSERT_TRUE(h.ok());
    uint8_t out = 0xff;
    ASSERT_TRUE(fs_->Read(*h, 0, 1, &out).ok());
    EXPECT_EQ(out, static_cast<uint8_t>(i));
    ASSERT_TRUE(fs_->Close(*h).ok());
  }
}

TEST_P(FsContractTest, FallocatePreallocates) {
  auto h = fs_->Open("/pre", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->Fallocate(*h, 0, 64 * 1024, /*keep_size=*/true).ok());
  auto st = fs_->FStat(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 0u);
  EXPECT_GE(st->allocated_bytes, 64u * 1024);
}

TEST_P(FsContractTest, FallocateKeepsExistingData) {
  // Preallocating over a range that already holds data must not change what
  // reads back — fallocate reserves space, it never zeroes live bytes.
  auto h = fs_->Open("/pre_live", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(8 * 4096, 22);
  ASSERT_TRUE(fs_->Write(*h, 0, data.data(), data.size()).ok());

  // Covers the live data entirely and extends past it.
  ASSERT_TRUE(fs_->Fallocate(*h, 0, 16 * 4096, /*keep_size=*/true).ok());
  auto st = fs_->FStat(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, data.size());  // keep_size: logical size unchanged

  std::vector<uint8_t> out(data.size());
  auto r = fs_->Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data.size());
  EXPECT_EQ(out, data) << "fallocate clobbered live data";

  // A second, interior preallocation (fully inside live data) is a no-op
  // for content too.
  ASSERT_TRUE(fs_->Fallocate(*h, 2 * 4096, 4 * 4096, /*keep_size=*/true)
                  .ok());
  ASSERT_TRUE(fs_->Read(*h, 0, out.size(), out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST_P(FsContractTest, PunchHoleDeallocatesAndZeroes) {
  auto h = fs_->Open("/holey", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(16 * 4096, 21);
  ASSERT_TRUE(fs_->Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_->Fsync(*h, false).ok());
  auto st_before = fs_->FStat(*h);
  ASSERT_TRUE(st_before.ok());

  // Punch out blocks 4..7.
  auto punch = fs_->PunchHole(*h, 4 * 4096, 4 * 4096);
  ASSERT_TRUE(punch.ok()) << punch;
  auto st_after = fs_->FStat(*h);
  ASSERT_TRUE(st_after.ok());
  EXPECT_EQ(st_after->size, st_before->size);  // size unchanged
  EXPECT_LE(st_after->allocated_bytes + 4 * 4096, st_before->allocated_bytes);

  std::vector<uint8_t> out(data.size());
  auto r = fs_->Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data.size());
  for (size_t i = 0; i < out.size(); ++i) {
    const bool in_hole = i >= 4 * 4096 && i < 8 * 4096;
    ASSERT_EQ(out[i], in_hole ? 0 : data[i]) << i;
  }
  // Unaligned punches are rejected.
  EXPECT_EQ(fs_->PunchHole(*h, 100, 4096).code(),
            ErrorCode::kInvalidArgument);
}

TEST_P(FsContractTest, StatFsTracksUsage) {
  auto st = fs_->StatFs();
  ASSERT_TRUE(st.ok());
  EXPECT_GT(st->capacity_bytes, 0u);
  EXPECT_LE(st->free_bytes, st->capacity_bytes);
}

// ---- Randomized oracle property test --------------------------------------
// Applies a random operation sequence to the FS under test and to MemFs;
// final file contents, sizes, and directory listings must agree.
TEST_P(FsContractTest, RandomOpsMatchOracle) {
  SimClock oracle_clock;
  vfs::MemFs oracle(&oracle_clock);
  Rng rng(0xc0ffee);

  const std::vector<std::string> files = {"/p0", "/p1", "/p2", "/p3"};
  constexpr uint64_t kMaxFile = 256 * 1024;

  for (int step = 0; step < 400; ++step) {
    const std::string& path = files[rng.Below(files.size())];
    switch (rng.Below(5)) {
      case 0: {  // write
        const uint64_t offset = rng.Below(kMaxFile);
        const uint64_t len = 1 + rng.Below(16 * 1024);
        auto data = Pattern(len, rng.Next());
        auto h1 = fs_->Open(path, OpenFlags::kCreateRw);
        auto h2 = oracle.Open(path, OpenFlags::kCreateRw);
        ASSERT_TRUE(h1.ok()) << h1.status();
        ASSERT_TRUE(h2.ok());
        auto w1 = fs_->Write(*h1, offset, data.data(), len);
        auto w2 = oracle.Write(*h2, offset, data.data(), len);
        ASSERT_EQ(w1.ok(), w2.ok()) << step;
        ASSERT_TRUE(fs_->Close(*h1).ok());
        ASSERT_TRUE(oracle.Close(*h2).ok());
        break;
      }
      case 1: {  // truncate
        const uint64_t size = rng.Below(kMaxFile);
        auto h1 = fs_->Open(path, OpenFlags::kCreateRw);
        auto h2 = oracle.Open(path, OpenFlags::kCreateRw);
        ASSERT_TRUE(h1.ok());
        ASSERT_TRUE(h2.ok());
        ASSERT_TRUE(fs_->Truncate(*h1, size).ok());
        ASSERT_TRUE(oracle.Truncate(*h2, size).ok());
        ASSERT_TRUE(fs_->Close(*h1).ok());
        ASSERT_TRUE(oracle.Close(*h2).ok());
        break;
      }
      case 2: {  // unlink
        Status s1 = fs_->Unlink(path);
        Status s2 = oracle.Unlink(path);
        ASSERT_EQ(s1.code(), s2.code()) << step << " " << s1;
        break;
      }
      case 3: {  // rename to a rotated name
        const std::string& to = files[rng.Below(files.size())];
        if (to == path) {
          break;
        }
        Status s1 = fs_->Rename(path, to);
        Status s2 = oracle.Rename(path, to);
        ASSERT_EQ(s1.code(), s2.code()) << step << " " << s1;
        break;
      }
      case 4: {  // random read compare
        auto h1 = fs_->Open(path, OpenFlags::kRead);
        auto h2 = oracle.Open(path, OpenFlags::kRead);
        ASSERT_EQ(h1.ok(), h2.ok());
        if (!h1.ok()) {
          break;
        }
        const uint64_t offset = rng.Below(kMaxFile);
        const uint64_t len = 1 + rng.Below(8 * 1024);
        std::vector<uint8_t> o1(len, 0xAA);
        std::vector<uint8_t> o2(len, 0xBB);
        auto r1 = fs_->Read(*h1, offset, len, o1.data());
        auto r2 = oracle.Read(*h2, offset, len, o2.data());
        ASSERT_TRUE(r1.ok());
        ASSERT_TRUE(r2.ok());
        ASSERT_EQ(*r1, *r2) << step;
        o1.resize(*r1);
        o2.resize(*r2);
        ASSERT_EQ(o1, o2) << step;
        ASSERT_TRUE(fs_->Close(*h1).ok());
        ASSERT_TRUE(oracle.Close(*h2).ok());
        break;
      }
    }
  }

  // Final sweep: every oracle file must match byte for byte.
  for (const auto& path : files) {
    auto st2 = oracle.Stat(path);
    auto st1 = fs_->Stat(path);
    ASSERT_EQ(st1.ok(), st2.ok()) << path;
    if (!st2.ok()) {
      continue;
    }
    EXPECT_EQ(st1->size, st2->size) << path;
    auto h1 = fs_->Open(path, OpenFlags::kRead);
    auto h2 = oracle.Open(path, OpenFlags::kRead);
    ASSERT_TRUE(h1.ok());
    ASSERT_TRUE(h2.ok());
    std::vector<uint8_t> o1(st2->size);
    std::vector<uint8_t> o2(st2->size);
    if (st2->size > 0) {
      ASSERT_TRUE(fs_->Read(*h1, 0, o1.size(), o1.data()).ok());
      ASSERT_TRUE(oracle.Read(*h2, 0, o2.size(), o2.data()).ok());
    }
    EXPECT_EQ(o1, o2) << path;
  }
}

// ---- Fixture registrations -------------------------------------------------

class MemFsFixture : public FsFixture {
 public:
  MemFsFixture() : fs_(&clock_) {}
  vfs::FileSystem* fs() override { return &fs_; }
  SimClock* clock() override { return &clock_; }

 private:
  SimClock clock_;
  vfs::MemFs fs_;
};

class NovaFsFixture : public FsFixture {
 public:
  NovaFsFixture()
      : pm_(device::DeviceProfile::OptanePm(64ULL << 20), &clock_),
        fs_(&pm_, &clock_) {
    EXPECT_TRUE(fs_.Format().ok());
  }
  vfs::FileSystem* fs() override { return &fs_; }
  SimClock* clock() override { return &clock_; }

 private:
  SimClock clock_;
  device::PmDevice pm_;
  fs::NovaFs fs_;
};

class XfsLiteFixture : public FsFixture {
 public:
  XfsLiteFixture()
      : dev_(device::DeviceProfile::OptaneSsd(64ULL << 20), &clock_),
        fs_(&dev_, &clock_) {
    EXPECT_TRUE(fs_.Format().ok());
  }
  vfs::FileSystem* fs() override { return &fs_; }
  SimClock* clock() override { return &clock_; }

 private:
  SimClock clock_;
  device::BlockDevice dev_;
  fs::XfsLite fs_;
};

class ExtLiteFixture : public FsFixture {
 public:
  ExtLiteFixture()
      : dev_(device::DeviceProfile::ExosHdd(64ULL << 20), &clock_),
        fs_(&dev_, &clock_) {
    EXPECT_TRUE(fs_.Format().ok());
  }
  vfs::FileSystem* fs() override { return &fs_; }
  SimClock* clock() override { return &clock_; }

 private:
  SimClock clock_;
  device::BlockDevice dev_;
  fs::ExtLite fs_;
};

class StrataFixture : public FsFixture {
 public:
  StrataFixture()
      : pm_(device::DeviceProfile::OptanePm(32ULL << 20), &clock_),
        ssd_(device::DeviceProfile::OptaneSsd(64ULL << 20), &clock_),
        hdd_(device::DeviceProfile::ExosHdd(64ULL << 20), &clock_),
        fs_(&pm_, &ssd_, &hdd_, &clock_) {
    EXPECT_TRUE(fs_.Format().ok());
  }
  vfs::FileSystem* fs() override { return &fs_; }
  SimClock* clock() override { return &clock_; }

 private:
  SimClock clock_;
  device::PmDevice pm_;
  device::BlockDevice ssd_;
  device::BlockDevice hdd_;
  strata::StrataFs fs_;
};

// The headline fixture: Mux composing all three device-specific file
// systems must satisfy the same VFS contract as any single file system.
class MuxFixture : public FsFixture {
 public:
  vfs::FileSystem* fs() override { return &rig_.mux(); }
  SimClock* clock() override { return &rig_.clock(); }

 private:
  MuxRig rig_;
};

INSTANTIATE_TEST_SUITE_P(
    AllFileSystems, FsContractTest,
    ::testing::Values(
        FsContractParam{"MemFs",
                        [] { return std::make_unique<MemFsFixture>(); }},
        FsContractParam{"NovaFs",
                        [] { return std::make_unique<NovaFsFixture>(); }},
        FsContractParam{"XfsLite",
                        [] { return std::make_unique<XfsLiteFixture>(); }},
        FsContractParam{"ExtLite",
                        [] { return std::make_unique<ExtLiteFixture>(); }},
        FsContractParam{"Strata",
                        [] { return std::make_unique<StrataFixture>(); }},
        FsContractParam{"Mux",
                        [] { return std::make_unique<MuxFixture>(); }}),
    FsContractParamName);

}  // namespace
}  // namespace mux::testing
