// Tests for src/common: Status/Result, SimClock, Rng, Histogram.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/common/result.h"
#include "src/common/status.h"

namespace mux {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("no such file: /a");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "no such file: /a");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such file: /a");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(ExistsError("").code(), ErrorCode::kExists);
  EXPECT_EQ(InvalidArgumentError("").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(NoSpaceError("").code(), ErrorCode::kNoSpace);
  EXPECT_EQ(NotDirError("").code(), ErrorCode::kNotDir);
  EXPECT_EQ(IsDirError("").code(), ErrorCode::kIsDir);
  EXPECT_EQ(NotEmptyError("").code(), ErrorCode::kNotEmpty);
  EXPECT_EQ(BadHandleError("").code(), ErrorCode::kBadHandle);
  EXPECT_EQ(IoError("").code(), ErrorCode::kIoError);
  EXPECT_EQ(NotSupportedError("").code(), ErrorCode::kNotSupported);
  EXPECT_EQ(BusyError("").code(), ErrorCode::kBusy);
  EXPECT_EQ(PermissionError("").code(), ErrorCode::kPermission);
  EXPECT_EQ(OutOfRangeError("").code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(CorruptionError("").code(), ErrorCode::kCorruption);
  EXPECT_EQ(ConflictError("").code(), ErrorCode::kConflict);
  EXPECT_EQ(InternalError("").code(), ErrorCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return IoError("disk on fire"); };
  auto wrapper = [&]() -> Status {
    MUX_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), ErrorCode::kIoError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto makes = []() -> Result<std::string> { return std::string("hello"); };
  auto wrapper = [&]() -> Result<size_t> {
    MUX_ASSIGN_OR_RETURN(std::string s, makes());
    return s.size();
  };
  auto r = wrapper();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5u);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto fails = []() -> Result<std::string> { return IoError("nope"); };
  auto wrapper = [&]() -> Result<size_t> {
    MUX_ASSIGN_OR_RETURN(std::string s, fails());
    return s.size();
  };
  EXPECT_EQ(wrapper().status().code(), ErrorCode::kIoError);
}

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  EXPECT_EQ(clock.Now(), 0u);
  clock.Advance(100);
  clock.Advance(250);
  EXPECT_EQ(clock.Now(), 350u);
  clock.Reset();
  EXPECT_EQ(clock.Now(), 0u);
}

TEST(SimClockTest, ConcurrentAdvanceIsLossless) {
  SimClock clock;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < kIters; ++i) {
        clock.Advance(3);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(clock.Now(), static_cast<SimTime>(kThreads) * kIters * 3);
}

TEST(SimClockTest, TimerMeasuresElapsed) {
  SimClock clock;
  SimTimer timer(clock);
  clock.Advance(500);
  EXPECT_EQ(timer.Elapsed(), 500u);
  timer.Restart();
  EXPECT_EQ(timer.Elapsed(), 0u);
}

TEST(SimClockTest, ThroughputHelper) {
  // 1 MiB in 1 ms == 1024 MB/s.
  EXPECT_NEAR(ThroughputMBps(1 << 20, 1'000'000), 1000.0, 30.0);
  EXPECT_EQ(ThroughputMBps(123, 0), 0.0);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, FillCoversBuffer) {
  Rng rng(9);
  std::vector<uint8_t> buf(37, 0);
  rng.Fill(buf.data(), buf.size());
  int nonzero = 0;
  for (uint8_t b : buf) {
    nonzero += b != 0;
  }
  EXPECT_GT(nonzero, 20);  // all-zero output would mean Fill is broken
}

TEST(ZipfianTest, SkewsTowardsHead) {
  ZipfianGenerator gen(1000, 0.99, 3);
  uint64_t head_hits = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    uint64_t v = gen.Next();
    EXPECT_LT(v, 1000u);
    if (v < 10) {
      head_hits++;
    }
  }
  // With theta=0.99 the top-1% of keys should draw far more than 1% of
  // accesses.
  EXPECT_GT(head_hits, kSamples / 10);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v : {100, 200, 300, 400, 500}) {
    h.Add(v);
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 500u);
  EXPECT_DOUBLE_EQ(h.Mean(), 300.0);
  EXPECT_GT(h.Percentile(99), 250.0);
  EXPECT_LE(h.Percentile(99), 500.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(7);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

}  // namespace
}  // namespace mux
