// Tests for src/common: Status/Result, SimClock, Rng, Histogram.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/workload.h"

namespace mux {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("no such file: /a");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "no such file: /a");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such file: /a");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(ExistsError("").code(), ErrorCode::kExists);
  EXPECT_EQ(InvalidArgumentError("").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(NoSpaceError("").code(), ErrorCode::kNoSpace);
  EXPECT_EQ(NotDirError("").code(), ErrorCode::kNotDir);
  EXPECT_EQ(IsDirError("").code(), ErrorCode::kIsDir);
  EXPECT_EQ(NotEmptyError("").code(), ErrorCode::kNotEmpty);
  EXPECT_EQ(BadHandleError("").code(), ErrorCode::kBadHandle);
  EXPECT_EQ(IoError("").code(), ErrorCode::kIoError);
  EXPECT_EQ(NotSupportedError("").code(), ErrorCode::kNotSupported);
  EXPECT_EQ(BusyError("").code(), ErrorCode::kBusy);
  EXPECT_EQ(PermissionError("").code(), ErrorCode::kPermission);
  EXPECT_EQ(OutOfRangeError("").code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(CorruptionError("").code(), ErrorCode::kCorruption);
  EXPECT_EQ(ConflictError("").code(), ErrorCode::kConflict);
  EXPECT_EQ(InternalError("").code(), ErrorCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return IoError("disk on fire"); };
  auto wrapper = [&]() -> Status {
    MUX_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), ErrorCode::kIoError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto makes = []() -> Result<std::string> { return std::string("hello"); };
  auto wrapper = [&]() -> Result<size_t> {
    MUX_ASSIGN_OR_RETURN(std::string s, makes());
    return s.size();
  };
  auto r = wrapper();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5u);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto fails = []() -> Result<std::string> { return IoError("nope"); };
  auto wrapper = [&]() -> Result<size_t> {
    MUX_ASSIGN_OR_RETURN(std::string s, fails());
    return s.size();
  };
  EXPECT_EQ(wrapper().status().code(), ErrorCode::kIoError);
}

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  EXPECT_EQ(clock.Now(), 0u);
  clock.Advance(100);
  clock.Advance(250);
  EXPECT_EQ(clock.Now(), 350u);
  clock.Reset();
  EXPECT_EQ(clock.Now(), 0u);
}

TEST(SimClockTest, ConcurrentAdvanceIsLossless) {
  SimClock clock;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < kIters; ++i) {
        clock.Advance(3);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(clock.Now(), static_cast<SimTime>(kThreads) * kIters * 3);
}

TEST(SimClockTest, TimerMeasuresElapsed) {
  SimClock clock;
  SimTimer timer(clock);
  clock.Advance(500);
  EXPECT_EQ(timer.Elapsed(), 500u);
  timer.Restart();
  EXPECT_EQ(timer.Elapsed(), 0u);
}

TEST(SimClockTest, ThroughputHelper) {
  // 1 MiB in 1 ms == 1024 MB/s.
  EXPECT_NEAR(ThroughputMBps(1 << 20, 1'000'000), 1000.0, 30.0);
  EXPECT_EQ(ThroughputMBps(123, 0), 0.0);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, FillCoversBuffer) {
  Rng rng(9);
  std::vector<uint8_t> buf(37, 0);
  rng.Fill(buf.data(), buf.size());
  int nonzero = 0;
  for (uint8_t b : buf) {
    nonzero += b != 0;
  }
  EXPECT_GT(nonzero, 20);  // all-zero output would mean Fill is broken
}

TEST(ZipfianTest, SkewsTowardsHead) {
  ZipfianGenerator gen(1000, 0.99, 3);
  uint64_t head_hits = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    uint64_t v = gen.Next();
    EXPECT_LT(v, 1000u);
    if (v < 10) {
      head_hits++;
    }
  }
  // With theta=0.99 the top-1% of keys should draw far more than 1% of
  // accesses.
  EXPECT_GT(head_hits, kSamples / 10);
}

// Regression for the O(n)-zeta-per-construction bug: building a second
// generator over the same (n, theta) must reuse the process-wide cached
// normalisation constant instead of re-summing a million terms, and a larger
// n must extend the cached prefix rather than restart from 1.
TEST(ZipfianTest, ZetaCacheAvoidsRecomputation) {
  constexpr uint64_t kBig = 1'000'000;
  ZipfianGenerator warm(kBig, 0.97, 3);
  const uint64_t after_first = ZipfianGenerator::zeta_terms_computed();

  ZipfianGenerator repeat(kBig, 0.97, 4);
  EXPECT_EQ(ZipfianGenerator::zeta_terms_computed(), after_first)
      << "second generator at the same (n, theta) recomputed zeta";

  ZipfianGenerator bigger(kBig + 1000, 0.97, 5);
  const uint64_t after_extend = ZipfianGenerator::zeta_terms_computed();
  EXPECT_LE(after_extend - after_first, 1000u)
      << "growing n should extend the cached prefix, not restart from 1";
}

// Pins the theta=0.99 distribution against exact zeta-weighted frequencies,
// so the incremental-zeta rewrite provably did not change what the generator
// emits. Head ranks of a zipfian draw with probability (1/(k+1)^theta)/zeta(n).
TEST(ZipfianTest, MatchesExactZetaFrequencies) {
  constexpr uint64_t kN = 10'000;
  constexpr double kTheta = 0.99;
  double zeta = 0.0;
  for (uint64_t i = 1; i <= kN; ++i) {
    zeta += 1.0 / std::pow(static_cast<double>(i), kTheta);
  }
  ZipfianGenerator gen(kN, kTheta, 7);
  constexpr int kSamples = 200'000;
  std::map<uint64_t, int> counts;
  for (int i = 0; i < kSamples; ++i) {
    counts[gen.Next()]++;
  }
  // The two head ranks have special-cased draw paths; check both against the
  // analytic probability within 15% relative error.
  for (uint64_t rank : {0u, 1u}) {
    const double expected =
        kSamples / (std::pow(static_cast<double>(rank + 1), kTheta) * zeta);
    EXPECT_NEAR(counts[rank], expected, 0.15 * expected)
        << "rank " << rank;
  }
  // And the mass of the top-16 ranks collectively (less sampling noise).
  double expected_head = 0.0;
  int observed_head = 0;
  for (uint64_t rank = 0; rank < 16; ++rank) {
    expected_head +=
        kSamples / (std::pow(static_cast<double>(rank + 1), kTheta) * zeta);
    observed_head += counts[rank];
  }
  EXPECT_NEAR(observed_head, expected_head, 0.10 * expected_head);
}

TEST(PoissonArrivalsTest, MeanMatchesRate) {
  constexpr double kRate = 50'000.0;  // ops/s -> mean gap 20us
  PoissonArrivals arrivals(kRate, 11);
  constexpr int kSamples = 200'000;
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t delta = arrivals.NextDeltaNs();
    EXPECT_GE(delta, 1u);
    sum += static_cast<double>(delta);
  }
  const double mean = sum / kSamples;
  EXPECT_NEAR(mean, 1e9 / kRate, 0.02 * (1e9 / kRate));
}

TEST(WorkloadMixTest, FractionsRespected) {
  WorkloadMix mix(0.8, 0.15, 0.05);
  Rng rng(13);
  int reads = 0, writes = 0, stats = 0, readdirs = 0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    switch (mix.Pick(rng)) {
      case WorkloadOp::kRead: reads++; break;
      case WorkloadOp::kWrite: writes++; break;
      case WorkloadOp::kStat: stats++; break;
      case WorkloadOp::kReadDir: readdirs++; break;
    }
  }
  EXPECT_NEAR(reads, 0.8 * kSamples, 0.02 * kSamples);
  EXPECT_NEAR(writes, 0.15 * kSamples, 0.02 * kSamples);
  EXPECT_NEAR(stats + readdirs, 0.05 * kSamples, 0.01 * kSamples);
  EXPECT_GT(stats, 0);
  EXPECT_GT(readdirs, 0);
}

TEST(MpmcQueueTest, FifoSingleThread) {
  MpmcQueue<int> q(8);
  EXPECT_EQ(q.capacity(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(q.TryPush(i));
  }
  EXPECT_FALSE(q.TryPush(99));  // full -> drop
  EXPECT_EQ(q.dropped(), 1u);
  for (int i = 0; i < 8; ++i) {
    int v = -1;
    EXPECT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  int v;
  EXPECT_FALSE(q.TryPop(&v));  // empty
}

// Heavy concurrent push/pop: every pushed value is popped exactly once, and
// producer-side drops are counted, never silently lost.
TEST(MpmcQueueTest, ConcurrentExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr uint64_t kPerProducer = 20'000;
  MpmcQueue<uint64_t> q(256);
  std::atomic<uint64_t> popped_sum{0};
  std::atomic<uint64_t> popped_count{0};
  std::atomic<uint64_t> pushed_sum{0};
  std::atomic<uint64_t> pushed_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      uint64_t v;
      while (true) {
        if (q.TryPop(&v)) {
          popped_sum.fetch_add(v, std::memory_order_relaxed);
          popped_count.fetch_add(1, std::memory_order_relaxed);
        } else if (done.load(std::memory_order_acquire)) {
          // Drain fully after producers finish.
          while (q.TryPop(&v)) {
            popped_sum.fetch_add(v, std::memory_order_relaxed);
            popped_count.fetch_add(1, std::memory_order_relaxed);
          }
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t value = p * kPerProducer + i + 1;
        if (q.TryPush(value)) {
          pushed_sum.fetch_add(value, std::memory_order_relaxed);
          pushed_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : consumers) {
    t.join();
  }
  EXPECT_EQ(popped_count.load(), pushed_count.load());
  EXPECT_EQ(popped_sum.load(), pushed_sum.load());
  EXPECT_EQ(pushed_count.load() + q.dropped(),
            kProducers * kPerProducer);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v : {100, 200, 300, 400, 500}) {
    h.Add(v);
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 500u);
  EXPECT_DOUBLE_EQ(h.Mean(), 300.0);
  EXPECT_GT(h.Percentile(99), 250.0);
  EXPECT_LE(h.Percentile(99), 500.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(7);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

}  // namespace
}  // namespace mux
