// xfslite-specific tests: delayed allocation / extent behaviour, journaled
// crash consistency, remount, readahead.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/device/block_device.h"
#include "src/fs/xfslite/xfslite.h"

namespace mux::fs {
namespace {

using vfs::OpenFlags;

constexpr uint64_t kDevSize = 64ULL << 20;

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Rng rng(seed);
  rng.Fill(v.data(), n);
  return v;
}

class XfsLiteTest : public ::testing::Test {
 protected:
  XfsLiteTest()
      : dev_(device::DeviceProfile::OptaneSsd(kDevSize), &clock_),
        fs_(&dev_, &clock_) {
    EXPECT_TRUE(fs_.Format().ok());
  }

  SimClock clock_;
  device::BlockDevice dev_;
  XfsLite fs_;
};

TEST_F(XfsLiteTest, DelayedAllocationBatchesExtents) {
  auto h = fs_.Open("/seq", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  // 64 sequential 4K writes, then one fsync. Delayed allocation must place
  // them in very few extents (ideally one).
  auto data = Pattern(4096, 1);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        fs_.Write(*h, static_cast<uint64_t>(i) * 4096, data.data(), 4096).ok());
  }
  ASSERT_TRUE(fs_.Fsync(*h, false).ok());
  EXPECT_LE(fs_.ExtentCountOf("/seq"), 2u);
}

TEST_F(XfsLiteTest, WritesAreBufferedUntilFsync) {
  auto h = fs_.Open("/buf", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto before = dev_.stats().write_ops;
  auto data = Pattern(16384, 2);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  // No data writes hit the device yet (page cache absorbs them).
  EXPECT_EQ(dev_.stats().write_ops, before);
  ASSERT_TRUE(fs_.Fsync(*h, false).ok());
  EXPECT_GT(dev_.stats().write_ops, before);
}

TEST_F(XfsLiteTest, SurvivesRemountAfterSync) {
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  auto h = fs_.Open("/d/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(100000, 3);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_.Close(*h).ok());
  ASSERT_TRUE(fs_.Sync().ok());

  XfsLite remounted(&dev_, &clock_);
  ASSERT_TRUE(remounted.Mount().ok());
  auto h2 = remounted.Open("/d/f", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok()) << h2.status();
  std::vector<uint8_t> out(data.size());
  auto r = remounted.Read(*h2, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

TEST_F(XfsLiteTest, LargeFileSpillsToOverflowExtents) {
  auto h = fs_.Open("/frag", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(4096, 4);
  // Interleave writes to two files to force fragmentation beyond the inline
  // extent count.
  auto h2 = fs_.Open("/other", OpenFlags::kCreateRw);
  ASSERT_TRUE(h2.ok());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(
        fs_.Write(*h, static_cast<uint64_t>(i) * 4096, data.data(), 4096).ok());
    ASSERT_TRUE(fs_.Fsync(*h, false).ok());
    ASSERT_TRUE(fs_.Write(*h2, static_cast<uint64_t>(i) * 4096, data.data(),
                          4096).ok());
    ASSERT_TRUE(fs_.Fsync(*h2, false).ok());
  }
  ASSERT_TRUE(fs_.Sync().ok());
  // Remount and verify both files.
  XfsLite remounted(&dev_, &clock_);
  ASSERT_TRUE(remounted.Mount().ok());
  for (const char* path : {"/frag", "/other"}) {
    auto rh = remounted.Open(path, OpenFlags::kRead);
    ASSERT_TRUE(rh.ok());
    for (int i = 0; i < 32; ++i) {
      std::vector<uint8_t> out(4096);
      auto r = remounted.Read(*rh, static_cast<uint64_t>(i) * 4096, 4096,
                              out.data());
      ASSERT_TRUE(r.ok());
      ASSERT_EQ(out, data) << path << " page " << i;
    }
  }
}

TEST_F(XfsLiteTest, CrashBeforeFsyncLosesDataButStaysConsistent) {
  dev_.EnableCrashSim(true);
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_.Fsync(*h, false).ok());  // file creation durable
  auto data = Pattern(32768, 5);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  // No fsync: the write sits in the page cache. Crash.
  dev_.Crash();
  dev_.EnableCrashSim(false);

  XfsLite remounted(&dev_, &clock_);
  ASSERT_TRUE(remounted.Mount().ok());
  auto st = remounted.Stat("/f");
  ASSERT_TRUE(st.ok()) << st.status();
  EXPECT_EQ(st->size, 0u);  // data lost, metadata consistent
}

TEST_F(XfsLiteTest, CrashAfterFsyncKeepsData) {
  dev_.EnableCrashSim(true);
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(32768, 6);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_.Fsync(*h, false).ok());
  dev_.Crash();
  dev_.EnableCrashSim(false);

  XfsLite remounted(&dev_, &clock_);
  ASSERT_TRUE(remounted.Mount().ok());
  auto h2 = remounted.Open("/f", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok());
  std::vector<uint8_t> out(data.size());
  auto r = remounted.Read(*h2, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data.size());
  EXPECT_EQ(out, data);
}

// Crash sweep over fault-injection cutoffs during a metadata-heavy workload:
// whatever the crash point, mount must succeed and the tree must be one of
// the journal-consistent states.
class XfsCrashSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(XfsCrashSweep, MountAlwaysSucceeds) {
  SimClock clock;
  device::BlockDevice dev(device::DeviceProfile::OptaneSsd(kDevSize), &clock);
  XfsLite fs(&dev, &clock);
  ASSERT_TRUE(fs.Format().ok());

  // Durable baseline.
  auto h = fs.Open("/keep", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto keep_data = Pattern(8192, 7);
  ASSERT_TRUE(fs.Write(*h, 0, keep_data.data(), keep_data.size()).ok());
  ASSERT_TRUE(fs.Fsync(*h, false).ok());
  ASSERT_TRUE(fs.Close(*h).ok());

  // Crash window: metadata churn with fault injection.
  dev.EnableCrashSim(true);
  dev.FailAfterWrites(GetParam());
  (void)fs.Mkdir("/dir");
  auto h2 = fs.Open("/dir/new", OpenFlags::kCreateRw);
  if (h2.ok()) {
    auto data = Pattern(16384, 8);
    (void)fs.Write(*h2, 0, data.data(), data.size());
    (void)fs.Fsync(*h2, false);
  }
  (void)fs.Rename("/keep", "/dir/kept");
  dev.FailAfterWrites(-1);
  dev.Crash();
  dev.EnableCrashSim(false);

  XfsLite remounted(&dev, &clock);
  ASSERT_TRUE(remounted.Mount().ok()) << "cutoff " << GetParam();
  // /keep must exist at exactly one of its two names, with intact content.
  auto at_old = remounted.Stat("/keep");
  auto at_new = remounted.Stat("/dir/kept");
  ASSERT_TRUE(at_old.ok() || at_new.ok()) << "cutoff " << GetParam();
  const std::string path = at_new.ok() ? "/dir/kept" : "/keep";
  auto h3 = remounted.Open(path, OpenFlags::kRead);
  ASSERT_TRUE(h3.ok());
  std::vector<uint8_t> out(keep_data.size());
  auto r = remounted.Read(*h3, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, keep_data.size()) << "cutoff " << GetParam();
  EXPECT_EQ(out, keep_data) << "cutoff " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, XfsCrashSweep,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 12, 17, 23, 30));

TEST_F(XfsLiteTest, ReadaheadKicksInForSequentialReads) {
  auto h = fs_.Open("/ra", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(64 * 4096, 9);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_.Fsync(*h, false).ok());

  // Remount so the cache is cold.
  ASSERT_TRUE(fs_.Sync().ok());
  XfsLite cold(&dev_, &clock_);
  ASSERT_TRUE(cold.Mount().ok());
  auto h2 = cold.Open("/ra", OpenFlags::kRead);
  ASSERT_TRUE(h2.ok());
  std::vector<uint8_t> out(4096);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        cold.Read(*h2, static_cast<uint64_t>(i) * 4096, 4096, out.data()).ok());
  }
  auto stats = cold.CacheStats();
  // Readahead converts most sequential accesses into hits.
  EXPECT_GT(stats.hits, stats.misses);
}

TEST_F(XfsLiteTest, JournalStatsAdvance) {
  ASSERT_TRUE(fs_.Mkdir("/j").ok());
  auto stats = fs_.GetJournalStats();
  EXPECT_GT(stats.commits, 0u);
  EXPECT_GT(stats.blocks_logged, 0u);
}

TEST_F(XfsLiteTest, UnlinkedSpaceIsReusable) {
  for (int round = 0; round < 8; ++round) {
    auto h = fs_.Open("/cycle", OpenFlags::kCreateRw);
    ASSERT_TRUE(h.ok());
    std::vector<uint8_t> data(8 << 20, static_cast<uint8_t>(round));
    ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
    ASSERT_TRUE(fs_.Fsync(*h, false).ok());
    ASSERT_TRUE(fs_.Close(*h).ok());
    ASSERT_TRUE(fs_.Unlink("/cycle").ok());
  }
  // 8 rounds of 8 MiB on a 64 MiB device only works if space is recycled.
  auto st = fs_.StatFs();
  ASSERT_TRUE(st.ok());
  EXPECT_GT(st->free_bytes, st->capacity_bytes / 2);
}

TEST_F(XfsLiteTest, MountRejectsForeignContent) {
  SimClock clock;
  device::BlockDevice blank(device::DeviceProfile::OptaneSsd(8 << 20), &clock);
  XfsLite never_formatted(&blank, &clock);
  EXPECT_EQ(never_formatted.Mount().code(), ErrorCode::kCorruption);
}

}  // namespace
}  // namespace mux::fs
