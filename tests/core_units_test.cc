// Unit tests for the smaller Mux core components: metadata affinity, OCC
// state machine, policies, MGLRU, I/O scheduler, bookkeeper serialization.
#include <gtest/gtest.h>

#include <set>

#include "src/common/checksum.h"
#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/core/bookkeeper.h"
#include "src/core/io_scheduler.h"
#include "src/core/metadata.h"
#include "src/core/mglru.h"
#include "src/core/occ.h"
#include "src/core/policy.h"

namespace mux::core {
namespace {

// ---- CollectiveInode / affinity ------------------------------------------------

TEST(CollectiveInodeTest, OwnersFollowUpdates) {
  CollectiveInode inode;
  EXPECT_EQ(inode.Owner(Attr::kSize), kInvalidTier);
  inode.UpdateSize(100, 1);
  EXPECT_EQ(inode.size(), 100u);
  EXPECT_EQ(inode.Owner(Attr::kSize), 1u);
  inode.UpdateSize(200, 2);
  EXPECT_EQ(inode.Owner(Attr::kSize), 2u);
  // Other owners untouched.
  EXPECT_EQ(inode.Owner(Attr::kMtime), kInvalidTier);
}

TEST(CollectiveInodeTest, DirtyTracking) {
  CollectiveInode inode;
  EXPECT_FALSE(inode.Dirty(Attr::kAtime));
  inode.UpdateAtime(5, 0);
  EXPECT_TRUE(inode.Dirty(Attr::kAtime));
  inode.ClearDirty();
  EXPECT_FALSE(inode.Dirty(Attr::kAtime));
}

TEST(CollectiveInodeTest, TimestampNormalization) {
  // Feature imparity: a 1-second-granularity FS (extlite) stores truncated
  // stamps; normalization reproduces what it can represent.
  EXPECT_EQ(CollectiveInode::Normalize(1'700'000'123, 1), 1'700'000'123u);
  EXPECT_EQ(CollectiveInode::Normalize(1'999'999'999, 1'000'000'000),
            1'000'000'000u);
}

// ---- OCC state machine ------------------------------------------------------------

TEST(OccTest, CleanPassCommits) {
  OccState occ;
  const uint64_t v1 = occ.BeginPass();
  EXPECT_TRUE(occ.migrating());
  auto result = occ.ValidateAndEnd(v1, 0, 100);
  EXPECT_TRUE(result.clean);
  EXPECT_TRUE(result.conflicted.empty());
  EXPECT_FALSE(occ.migrating());
}

TEST(OccTest, WriteDuringPassConflictsOnlyOverlap) {
  OccState occ;
  const uint64_t v1 = occ.BeginPass();
  occ.NoteWrite(10, 5);   // inside the migrated range
  occ.NoteWrite(200, 3);  // outside
  auto result = occ.ValidateAndEnd(v1, 0, 100);
  EXPECT_FALSE(result.clean);
  EXPECT_EQ(result.conflicted, (std::vector<uint64_t>{10, 11, 12, 13, 14}));
}

TEST(OccTest, WriteOutsideRangeIsCleanCommit) {
  OccState occ;
  const uint64_t v1 = occ.BeginPass();
  occ.NoteWrite(500, 1);
  auto result = occ.ValidateAndEnd(v1, 0, 100);
  // Version changed but no overlapping dirty block: still committable.
  EXPECT_TRUE(result.clean);
}

TEST(OccTest, WritesOutsidePassAreNotRecorded) {
  OccState occ;
  occ.NoteWrite(1, 1);  // before any pass
  const uint64_t v1 = occ.BeginPass();
  auto result = occ.ValidateAndEnd(v1, 0, 100);
  EXPECT_TRUE(result.clean);
}

TEST(OccTest, VersionMonotonic) {
  OccState occ;
  const uint64_t v0 = occ.version();
  occ.NoteWrite(0, 1);
  occ.NoteWrite(0, 1);
  EXPECT_EQ(occ.version(), v0 + 2);
}

// ---- policies --------------------------------------------------------------------

std::vector<TierUsage> ThreeTiers(uint64_t pm_free, uint64_t ssd_free,
                                  uint64_t hdd_free) {
  std::vector<TierUsage> tiers(3);
  tiers[0] = TierUsage{0, "pm", 0, device::DeviceKind::kPm, 1 << 30, pm_free};
  tiers[1] =
      TierUsage{1, "ssd", 1, device::DeviceKind::kSsd, 4ULL << 30, ssd_free};
  tiers[2] =
      TierUsage{2, "hdd", 2, device::DeviceKind::kHdd, 16ULL << 30, hdd_free};
  return tiers;
}

TEST(PolicyRegistryTest, BuiltinsPresent) {
  auto names = PolicyRegistry::Global().Names();
  const std::set<std::string> set(names.begin(), names.end());
  EXPECT_TRUE(set.contains("lru"));
  EXPECT_TRUE(set.contains("tpfs"));
  EXPECT_TRUE(set.contains("hotcold"));
  EXPECT_TRUE(set.contains("pin"));
  EXPECT_FALSE(PolicyRegistry::Global().Create("no-such-policy").ok());
}

TEST(PolicyRegistryTest, UserRegistrationWorks) {
  // The "eBPF/kernel module" analogue: a user plugs in a policy at runtime.
  class NullPolicy : public TieringPolicy {
   public:
    std::string_view Name() const override { return "null"; }
    TierId PlaceWrite(const PlacementContext&) override { return 0; }
    std::vector<MigrationTask> PlanMigrations(const TieringView&) override {
      return {};
    }
  };
  ASSERT_TRUE(PolicyRegistry::Global()
                  .Register("test-null", [](const std::string&) {
                    return std::make_unique<NullPolicy>();
                  })
                  .ok());
  auto policy = PolicyRegistry::Global().Create("test-null");
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ((*policy)->Name(), "null");
  // Double registration rejected.
  EXPECT_EQ(PolicyRegistry::Global()
                .Register("test-null", [](const std::string&) {
                  return std::make_unique<NullPolicy>();
                })
                .code(),
            ErrorCode::kExists);
}

TEST(LruPolicyTest, PlacesOnFastestWithSpace) {
  auto policy = MakeLruPolicy();
  auto tiers = ThreeTiers(512 << 20, 2ULL << 30, 8ULL << 30);
  PlacementContext ctx;
  ctx.io_size = 4096;
  ctx.tiers = &tiers;
  EXPECT_EQ(policy->PlaceWrite(ctx), 0u);
  // PM full -> SSD.
  tiers[0].free_bytes = 0;
  EXPECT_EQ(policy->PlaceWrite(ctx), 1u);
}

TEST(LruPolicyTest, DemotesColdestWhenOverWatermark) {
  auto policy = MakeLruPolicy(0.9, 0.7);
  TieringView view;
  view.tiers = ThreeTiers(/*pm_free=*/1 << 20, 2ULL << 30, 8ULL << 30);
  view.now = 10'000'000'000;
  FileView cold;
  cold.path = "/cold";
  cold.last_access = 1'000'000'000;
  cold.blocks_per_tier[0] = 1000;
  FileView hot;
  hot.path = "/hot";
  hot.last_access = 9'900'000'000;
  hot.blocks_per_tier[0] = 1000;
  view.files = {hot, cold};
  auto tasks = policy->PlanMigrations(view);
  ASSERT_FALSE(tasks.empty());
  EXPECT_EQ(tasks[0].path, "/cold");  // coldest demoted first
  EXPECT_EQ(tasks[0].from, 0u);
  EXPECT_EQ(tasks[0].to, 1u);
}

TEST(LruPolicyTest, PromotesRecentlyAccessed) {
  auto policy = MakeLruPolicy(0.9, 0.7, /*promote_window_ns=*/1'000'000'000);
  TieringView view;
  view.tiers = ThreeTiers(900 << 20, 2ULL << 30, 8ULL << 30);  // PM has room
  view.now = 10'000'000'000;
  FileView recent;
  recent.path = "/hot";
  recent.last_access = view.now - 500'000'000;  // within the window
  recent.blocks_per_tier[2] = 64;
  view.files = {recent};
  auto tasks = policy->PlanMigrations(view);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].to, 0u);
  EXPECT_EQ(tasks[0].from, 2u);
}

TEST(TpfsPolicyTest, RoutesBySizeAndSync) {
  auto policy = MakeTpfsPolicy(/*small=*/256 * 1024, /*large=*/4 << 20, 4.0);
  auto tiers = ThreeTiers(512 << 20, 2ULL << 30, 8ULL << 30);
  PlacementContext ctx;
  ctx.tiers = &tiers;
  ctx.io_size = 4096;  // small -> PM
  EXPECT_EQ(policy->PlaceWrite(ctx), 0u);
  ctx.io_size = 16 << 20;  // large -> HDD
  EXPECT_EQ(policy->PlaceWrite(ctx), 2u);
  ctx.io_size = 1 << 20;  // medium -> middle tier
  EXPECT_EQ(policy->PlaceWrite(ctx), 1u);
  // Sync overrides size.
  ctx.io_size = 16 << 20;
  ctx.is_sync = true;
  EXPECT_EQ(policy->PlaceWrite(ctx), 0u);
  // Hot history overrides size.
  ctx.is_sync = false;
  ctx.temperature = 100.0;
  EXPECT_EQ(policy->PlaceWrite(ctx), 0u);
}

TEST(HotColdPolicyTest, ClassifiesByTemperature) {
  auto policy = MakeHotColdPolicy(8.0, 1.0);
  auto tiers = ThreeTiers(512 << 20, 2ULL << 30, 8ULL << 30);
  PlacementContext ctx;
  ctx.tiers = &tiers;
  ctx.io_size = 4096;
  ctx.temperature = 20.0;
  EXPECT_EQ(policy->PlaceWrite(ctx), 0u);
  ctx.temperature = 0.1;
  EXPECT_EQ(policy->PlaceWrite(ctx), 2u);
  ctx.temperature = 4.0;
  EXPECT_EQ(policy->PlaceWrite(ctx), 1u);
}

TEST(PinPolicyTest, ParsesRulesAndPins) {
  auto policy = MakePinPolicy("/logs=hdd,/db=pm");
  auto tiers = ThreeTiers(512 << 20, 2ULL << 30, 8ULL << 30);
  PlacementContext ctx;
  ctx.tiers = &tiers;
  ctx.io_size = 4096;
  ctx.path = "/logs/app.log";
  EXPECT_EQ(policy->PlaceWrite(ctx), 2u);
  ctx.path = "/db/table";
  EXPECT_EQ(policy->PlaceWrite(ctx), 0u);
  ctx.path = "/other";
  EXPECT_EQ(policy->PlaceWrite(ctx), 0u);  // default: fastest with space
}

// ---- MGLRU -----------------------------------------------------------------------

TEST(MglruTest, EvictsColdKeepsHot) {
  MglruPolicy policy;
  for (uint32_t slot = 0; slot < 8; ++slot) {
    policy.Inserted(slot);
  }
  // Heat slots 0..3.
  for (uint32_t slot = 0; slot < 4; ++slot) {
    policy.Touched(slot);
  }
  // Evict 4: all victims must come from the cold half.
  std::set<uint32_t> victims;
  for (int i = 0; i < 4; ++i) {
    auto victim = policy.Evict();
    ASSERT_TRUE(victim.ok());
    victims.insert(*victim);
  }
  for (uint32_t slot = 0; slot < 4; ++slot) {
    EXPECT_FALSE(victims.contains(slot)) << "hot slot evicted: " << slot;
  }
  EXPECT_EQ(policy.Size(), 4u);
}

TEST(MglruTest, RemovedEntriesAreGone) {
  MglruPolicy policy;
  policy.Inserted(1);
  policy.Inserted(2);
  policy.Removed(1);
  auto victim = policy.Evict();
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(*victim, 2u);
  EXPECT_FALSE(policy.Evict().ok());
}

TEST(PlainLruTest, EvictsLeastRecentlyUsed) {
  PlainLruPolicy policy;
  policy.Inserted(1);
  policy.Inserted(2);
  policy.Inserted(3);
  policy.Touched(1);  // 2 is now LRU
  auto victim = policy.Evict();
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(*victim, 2u);
}

TEST(MglruVsLru, MglruResistsScan) {
  // A hot working set + one scan pass: MGLRU's access bits protect the hot
  // set; plain LRU lets the scan flush it.
  constexpr uint32_t kCap = 64;
  constexpr uint32_t kHot = 32;
  auto run = [&](ReplacementPolicy& policy) {
    std::set<uint32_t> resident;
    auto access = [&](uint32_t key) {
      if (resident.contains(key)) {
        policy.Touched(key);
        return;
      }
      if (resident.size() >= kCap) {
        auto victim = policy.Evict();
        if (victim.ok()) {
          resident.erase(*victim);
        }
      }
      policy.Inserted(key);
      resident.insert(key);
    };
    // Build and reinforce a hot set.
    for (int round = 0; round < 8; ++round) {
      for (uint32_t key = 0; key < kHot; ++key) {
        access(key);
      }
    }
    // One cold scan of 3x capacity.
    for (uint32_t key = 1000; key < 1000 + 3 * kCap; ++key) {
      access(key);
    }
    // How much of the hot set survived?
    uint32_t survivors = 0;
    for (uint32_t key = 0; key < kHot; ++key) {
      survivors += resident.contains(key) ? 1 : 0;
    }
    return survivors;
  };
  MglruPolicy mglru;
  PlainLruPolicy lru;
  const uint32_t mglru_survivors = run(mglru);
  const uint32_t lru_survivors = run(lru);
  EXPECT_GT(mglru_survivors, lru_survivors);
  EXPECT_EQ(lru_survivors, 0u);  // classic LRU scan pollution
}

// ---- I/O scheduler ------------------------------------------------------------------

class SchedulerTest : public ::testing::Test {
 protected:
  TierInfo MakeTier(TierId id, device::DeviceProfile profile) {
    TierInfo tier;
    tier.id = id;
    tier.profile = std::move(profile);
    return tier;
  }
  SimClock clock_;
};

TEST_F(SchedulerTest, FifoPreservesOrder) {
  IoScheduler sched(SchedAlgo::kFifo, &clock_);
  sched.RegisterTier(MakeTier(0, device::DeviceProfile::OptaneSsd(1 << 20)));
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sched
                    .Submit(IoRequest{0, false, 0, 4096, 1,
                                      [&order, i] {
                                        order.push_back(i);
                                        return Status::Ok();
                                      }})
                    .ok());
  }
  auto ran = sched.RunAll();
  ASSERT_TRUE(ran.ok());
  EXPECT_EQ(*ran, 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(SchedulerTest, PriorityBeatsOrder) {
  IoScheduler sched(SchedAlgo::kFifo, &clock_);
  sched.RegisterTier(MakeTier(0, device::DeviceProfile::OptaneSsd(1 << 20)));
  std::vector<int> order;
  auto push = [&](int id, int priority) {
    ASSERT_TRUE(sched
                    .Submit(IoRequest{0, false, 0, 4096, priority,
                                      [&order, id] {
                                        order.push_back(id);
                                        return Status::Ok();
                                      }})
                    .ok());
  };
  push(0, 5);
  push(1, 0);  // high priority
  push(2, 5);
  ASSERT_TRUE(sched.RunAll().ok());
  EXPECT_EQ(order[0], 1);
}

TEST_F(SchedulerTest, CostBasedRunsShortJobsFirst) {
  IoScheduler sched(SchedAlgo::kCostBased, &clock_);
  sched.RegisterTier(MakeTier(0, device::DeviceProfile::OptaneSsd(1 << 20)));
  std::vector<int> order;
  auto push = [&](int id, uint64_t bytes) {
    ASSERT_TRUE(sched
                    .Submit(IoRequest{0, false, 0, bytes, 1,
                                      [&order, id] {
                                        order.push_back(id);
                                        return Status::Ok();
                                      }})
                    .ok());
  };
  push(0, 1 << 20);
  push(1, 4096);
  push(2, 64 << 10);
  ASSERT_TRUE(sched.RunAll().ok());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST_F(SchedulerTest, ElevatorSortsByOffset) {
  IoScheduler sched(SchedAlgo::kElevator, &clock_);
  sched.RegisterTier(MakeTier(0, device::DeviceProfile::ExosHdd(64 << 20)));
  std::vector<uint64_t> offsets;
  auto push = [&](uint64_t offset) {
    ASSERT_TRUE(sched
                    .Submit(IoRequest{0, false, offset, 4096, 1,
                                      [&offsets, offset] {
                                        offsets.push_back(offset);
                                        return Status::Ok();
                                      }})
                    .ok());
  };
  push(9 << 20);
  push(1 << 20);
  push(5 << 20);
  ASSERT_TRUE(sched.RunAll().ok());
  EXPECT_EQ(offsets, (std::vector<uint64_t>{1 << 20, 5 << 20, 9 << 20}));
}

TEST_F(SchedulerTest, UnregisteredTierRejected) {
  IoScheduler sched(SchedAlgo::kFifo, &clock_);
  EXPECT_EQ(sched.Submit(IoRequest{7, false, 0, 1, 1,
                                   [] { return Status::Ok(); }})
                .code(),
            ErrorCode::kNotFound);
}

TEST_F(SchedulerTest, FailuresSurfaceAndCount) {
  IoScheduler sched(SchedAlgo::kFifo, &clock_);
  sched.RegisterTier(MakeTier(0, device::DeviceProfile::OptaneSsd(1 << 20)));
  sched.RegisterTier(MakeTier(1, device::DeviceProfile::OptaneSsd(1 << 20)));
  ASSERT_TRUE(sched
                  .Submit(IoRequest{0, true, 0, 4096, 1,
                                    [] { return IoError("boom"); }})
                  .ok());
  bool other_ran = false;
  ASSERT_TRUE(sched
                  .Submit(IoRequest{1, true, 0, 4096, 1,
                                    [&other_ran] {
                                      other_ran = true;
                                      return Status::Ok();
                                    }})
                  .ok());
  // A failing request does not abort the batch: the other tier's request
  // still dispatches, and the failure is recorded with per-tier detail.
  auto ran = sched.RunAll();
  ASSERT_TRUE(ran.ok());
  EXPECT_EQ(*ran, 1u);
  EXPECT_TRUE(other_ran);
  EXPECT_EQ(sched.Pending(), 0u);
  const SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.failed_tiers.at(0), 1u);
  EXPECT_EQ(stats.failed_tiers.count(1), 0u);
  EXPECT_EQ(stats.last_error.code(), ErrorCode::kIoError);
}

// ---- bookkeeper serialization -------------------------------------------------------

TEST(BookkeeperTest, EncodeDecodeRoundTrip) {
  MuxSnapshot snapshot;
  FileSnapshot dir;
  dir.path = "/d";
  dir.is_directory = true;
  dir.mode = 0755;
  snapshot.files.push_back(dir);
  FileSnapshot file;
  file.path = "/d/f";
  file.size = 123456;
  file.mtime = 111;
  file.atime = 222;
  file.ctime = 333;
  file.mode = 0600;
  file.occ_version = 42;
  file.temperature = 3.25;
  file.last_access = 777;
  file.attr_owners = {0, 1, 2, 0};
  file.runs.push_back(BlockLookupTable::Run{0, 10, 0});
  file.runs.push_back(BlockLookupTable::Run{10, 20, 2});
  snapshot.files.push_back(file);

  auto bytes = EncodeSnapshot(snapshot);
  auto decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->files.size(), 2u);
  EXPECT_EQ(decoded->files[0].path, "/d");
  EXPECT_TRUE(decoded->files[0].is_directory);
  const FileSnapshot& f = decoded->files[1];
  EXPECT_EQ(f.path, "/d/f");
  EXPECT_EQ(f.size, 123456u);
  EXPECT_EQ(f.occ_version, 42u);
  EXPECT_DOUBLE_EQ(f.temperature, 3.25);
  EXPECT_EQ(f.last_access, 777u);
  EXPECT_EQ(f.attr_owners[1], 1u);
  ASSERT_EQ(f.runs.size(), 2u);
  EXPECT_EQ(f.runs[1].first_block, 10u);
  EXPECT_EQ(f.runs[1].tier, 2u);
}

TEST(BookkeeperTest, MirrorRunsRoundTripBitExact) {
  MuxSnapshot snapshot;
  FileSnapshot file;
  file.path = "/f";
  file.size = 64 * 4096;
  file.runs.push_back(BlockLookupTable::Run{0, 64, 2});
  // Mixed clean/dirty residency bitmaps must survive the v4 round trip
  // exactly: dirty copies stay dirty until reconciliation, never silently
  // cleaned (or dropped) by a checkpoint/recover cycle.
  file.mirror_runs.push_back(BlockLookupTable::MirrorRun{0, 16, 0b11, 0});
  file.mirror_runs.push_back(BlockLookupTable::MirrorRun{16, 8, 0b11, 0b01});
  file.mirror_runs.push_back(BlockLookupTable::MirrorRun{32, 4, 0b1, 0b1});
  snapshot.files.push_back(file);

  auto bytes = EncodeSnapshot(snapshot);
  auto decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->files.size(), 1u);
  const auto& mruns = decoded->files[0].mirror_runs;
  ASSERT_EQ(mruns.size(), 3u);
  for (size_t i = 0; i < mruns.size(); ++i) {
    EXPECT_EQ(mruns[i].first_block, file.mirror_runs[i].first_block) << i;
    EXPECT_EQ(mruns[i].count, file.mirror_runs[i].count) << i;
    EXPECT_EQ(mruns[i].extra, file.mirror_runs[i].extra) << i;
    EXPECT_EQ(mruns[i].dirty, file.mirror_runs[i].dirty) << i;
  }
}

// Hand-encodes a v3 snapshot (single-tier replica runs, no dirty bits) and
// checks the v4 decoder recovers it: replicas come back as *clean* mirror
// copies on their tier.
TEST(BookkeeperTest, V3SnapshotDecodesForwardCompatibly) {
  std::vector<uint8_t> body;
  auto put32 = [&](uint32_t v) {
    for (int i = 0; i < 4; ++i) body.push_back((v >> (8 * i)) & 0xff);
  };
  auto put64 = [&](uint64_t v) {
    for (int i = 0; i < 8; ++i) body.push_back((v >> (8 * i)) & 0xff);
  };
  put32(1);  // file count
  const std::string path = "/v3";
  put32(static_cast<uint32_t>(path.size()));
  body.insert(body.end(), path.begin(), path.end());
  put32(0);           // is_directory
  put64(32 * 4096);   // size
  put64(11);          // mtime
  put64(22);          // atime
  put64(33);          // ctime
  put32(0644);        // mode
  put64(7);           // occ_version
  put64(0);           // temperature bits
  put64(44);          // last_access
  for (int a = 0; a < kAttrCount; ++a) put32(0);  // attr owners
  put32(1);           // primary run count
  put64(0); put64(32); put32(2);   // run: blocks 0..31 on tier 2
  put32(1);           // replica run count (v3 format: u64,u64,u32 tier)
  put64(0); put64(32); put32(0);   // replica on tier 0

  std::vector<uint8_t> bytes;
  auto hdr32 = [&](uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back((v >> (8 * i)) & 0xff);
  };
  hdr32(0x4d555853);  // magic "MUXS"
  hdr32(3);           // version 3
  for (int i = 0; i < 8; ++i)
    bytes.push_back((static_cast<uint64_t>(body.size()) >> (8 * i)) & 0xff);
  hdr32(Crc32c(body.data(), body.size()));
  bytes.insert(bytes.end(), body.begin(), body.end());

  auto decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->files.size(), 1u);
  const FileSnapshot& f = decoded->files[0];
  EXPECT_EQ(f.path, "/v3");
  ASSERT_EQ(f.runs.size(), 1u);
  EXPECT_EQ(f.runs[0].tier, 2u);
  ASSERT_EQ(f.mirror_runs.size(), 1u);
  EXPECT_EQ(f.mirror_runs[0].first_block, 0u);
  EXPECT_EQ(f.mirror_runs[0].count, 32u);
  EXPECT_EQ(f.mirror_runs[0].extra, ResidencySet::Bit(0));
  EXPECT_EQ(f.mirror_runs[0].dirty, 0u);  // v3 replicas recover clean
}

TEST(BookkeeperTest, MalformedMirrorDirtyBitsRejected) {
  MuxSnapshot snapshot;
  FileSnapshot file;
  file.path = "/f";
  // dirty ⊄ extra is structurally impossible; a snapshot claiming it is
  // corrupt, not creative.
  file.mirror_runs.push_back(BlockLookupTable::MirrorRun{0, 4, 0b01, 0b10});
  snapshot.files.push_back(file);
  auto bytes = EncodeSnapshot(snapshot);
  EXPECT_EQ(DecodeSnapshot(bytes).status().code(), ErrorCode::kCorruption);
}

TEST(BookkeeperTest, CorruptionDetected) {
  MuxSnapshot snapshot;
  FileSnapshot file;
  file.path = "/f";
  snapshot.files.push_back(file);
  auto bytes = EncodeSnapshot(snapshot);
  bytes[bytes.size() - 1] ^= 0xff;
  EXPECT_EQ(DecodeSnapshot(bytes).status().code(), ErrorCode::kCorruption);
  // Truncation detected too.
  auto bytes2 = EncodeSnapshot(snapshot);
  bytes2.resize(bytes2.size() / 2);
  EXPECT_EQ(DecodeSnapshot(bytes2).status().code(), ErrorCode::kCorruption);
}

}  // namespace
}  // namespace mux::core
