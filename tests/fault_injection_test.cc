// Fault-injection battery: FaultInjectingFs unit behaviour, then the
// failure-hardened paths it exists to exercise — OCC migration retrying
// transient tier faults, clean aborts that leave the BLT untouched,
// replication failover off a dead device, policy rounds that complete their
// non-faulted tasks, and background migration that degrades instead of
// crashing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/vfs/fault_injecting_fs.h"
#include "src/vfs/memfs.h"
#include "tests/mux_rig.h"

namespace mux::testing {
namespace {

using core::Mux;
using vfs::FaultInjectingFs;
using vfs::FaultOp;
using vfs::OpenFlags;

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Rng rng(seed);
  rng.Fill(v.data(), n);
  return v;
}

// ---- wrapper unit behaviour -------------------------------------------------

class FaultInjectingFsTest : public ::testing::Test {
 protected:
  FaultInjectingFsTest() : base_(&clock_), fs_(&base_, /*seed=*/7) {}

  SimClock clock_;
  vfs::MemFs base_;
  FaultInjectingFs fs_;
};

TEST_F(FaultInjectingFsTest, DelegatesWhenNoFaultsProgrammed) {
  EXPECT_EQ(fs_.Name(), "fault(memfs)");
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(5000, 1);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  std::vector<uint8_t> out(data.size());
  auto r = fs_.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(fs_.fault_stats().injected, 0u);
}

TEST_F(FaultInjectingFsTest, FailNthFailsOnceThenRecovers) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  uint8_t b = 0;
  fs_.FailNth(FaultOp::kWrite, 2);
  EXPECT_TRUE(fs_.Write(*h, 0, &b, 1).ok());               // 1st: fine
  EXPECT_EQ(fs_.Write(*h, 0, &b, 1).status().code(),       // 2nd: EIO
            ErrorCode::kIoError);
  EXPECT_TRUE(fs_.Write(*h, 0, &b, 1).ok());               // recovered
  EXPECT_EQ(fs_.fault_stats().injected_eio, 1u);
}

TEST_F(FaultInjectingFsTest, FailNextFailsRunThenRecovers) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  uint8_t b = 0;
  fs_.FailNext(FaultOp::kWrite, 3, ErrorCode::kNoSpace);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(fs_.Write(*h, 0, &b, 1).status().code(), ErrorCode::kNoSpace);
  }
  EXPECT_TRUE(fs_.Write(*h, 0, &b, 1).ok());
  EXPECT_EQ(fs_.fault_stats().injected_enospc, 3u);
}

TEST_F(FaultInjectingFsTest, WriteByteBudgetEnforcesEnospc) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  std::vector<uint8_t> block(4096, 0xab);
  fs_.SetWriteByteBudget(2 * 4096);
  EXPECT_TRUE(fs_.Write(*h, 0, block.data(), block.size()).ok());
  EXPECT_TRUE(fs_.Write(*h, 4096, block.data(), block.size()).ok());
  EXPECT_EQ(fs_.Write(*h, 8192, block.data(), block.size()).status().code(),
            ErrorCode::kNoSpace);
  // Reads are never budget limited.
  std::vector<uint8_t> out(4096);
  EXPECT_TRUE(fs_.Read(*h, 0, out.size(), out.data()).ok());
  // Raising the budget recovers the tier.
  fs_.SetWriteByteBudget(1 << 20);
  EXPECT_TRUE(fs_.Write(*h, 8192, block.data(), block.size()).ok());
  fs_.ClearWriteByteBudget();
}

TEST_F(FaultInjectingFsTest, ProbabilityIsSeededAndDeterministic) {
  auto run_sequence = [this](uint64_t seed) {
    vfs::MemFs base(&clock_);
    FaultInjectingFs fs(&base, seed);
    auto h = fs.Open("/f", OpenFlags::kCreateRw);
    EXPECT_TRUE(h.ok());
    fs.SetErrorProbability(FaultOp::kWrite, 0.5);
    uint8_t b = 0;
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(fs.Write(*h, 0, &b, 1).ok());
    }
    return outcomes;
  };
  const auto a = run_sequence(42);
  const auto b = run_sequence(42);
  const auto c = run_sequence(43);
  EXPECT_EQ(a, b) << "same seed must reproduce the same fault sequence";
  EXPECT_NE(a, c);
  // p=0.5 over 64 ops: both outcomes occur.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(FaultInjectingFsTest, DeadDeviceFailsEverythingUntilRevived) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  uint8_t b = 0;
  ASSERT_TRUE(fs_.Write(*h, 0, &b, 1).ok());
  fs_.KillDevice();
  EXPECT_TRUE(fs_.dead());
  EXPECT_EQ(fs_.Open("/g", OpenFlags::kCreateRw).status().code(),
            ErrorCode::kIoError);
  EXPECT_EQ(fs_.Read(*h, 0, 1, &b).status().code(), ErrorCode::kIoError);
  EXPECT_EQ(fs_.Write(*h, 0, &b, 1).status().code(), ErrorCode::kIoError);
  EXPECT_EQ(fs_.Stat("/f").status().code(), ErrorCode::kIoError);
  EXPECT_EQ(fs_.Fsync(*h, true).code(), ErrorCode::kIoError);
  // Close still works: callers must always be able to release handles.
  EXPECT_TRUE(fs_.Close(*h).ok());
  fs_.Revive();
  EXPECT_FALSE(fs_.dead());
  auto h2 = fs_.Open("/f", OpenFlags::kRead);
  EXPECT_TRUE(h2.ok());
}

// ---- full-stack rig with every tier wrapped --------------------------------

class FaultRig {
 public:
  FaultRig()
      : pm_dev_(device::DeviceProfile::OptanePm(sizes_.pm_bytes), &clock_),
        ssd_dev_(device::DeviceProfile::OptaneSsd(sizes_.ssd_bytes), &clock_),
        hdd_dev_(device::DeviceProfile::ExosHdd(sizes_.hdd_bytes), &clock_),
        novafs_(&pm_dev_, &clock_),
        xfslite_(&ssd_dev_, &clock_, XfsOptionsFor(sizes_)),
        extlite_(&hdd_dev_, &clock_, ExtOptionsFor(sizes_)),
        pm_(&novafs_, 101),
        ssd_(&xfslite_, 102),
        hdd_(&extlite_, 103),
        mux_(std::make_unique<core::Mux>(&clock_)) {
    ok_ = novafs_.Format().ok() && xfslite_.Format().ok() &&
          extlite_.Format().ok();
    auto pm = mux_->AddTier("pm", &pm_, pm_dev_.profile());
    auto ssd = mux_->AddTier("ssd", &ssd_, ssd_dev_.profile());
    auto hdd = mux_->AddTier("hdd", &hdd_, hdd_dev_.profile());
    ok_ = ok_ && pm.ok() && ssd.ok() && hdd.ok();
    pm_tier_ = pm.value_or(core::kInvalidTier);
    ssd_tier_ = ssd.value_or(core::kInvalidTier);
    hdd_tier_ = hdd.value_or(core::kInvalidTier);
  }

  bool ok() const { return ok_; }
  core::Mux& mux() { return *mux_; }
  SimClock& clock() { return clock_; }
  FaultInjectingFs& pm() { return pm_; }
  FaultInjectingFs& ssd() { return ssd_; }
  FaultInjectingFs& hdd() { return hdd_; }
  core::TierId pm_tier() const { return pm_tier_; }
  core::TierId ssd_tier() const { return ssd_tier_; }
  core::TierId hdd_tier() const { return hdd_tier_; }

 private:
  MuxRigSizes sizes_;
  SimClock clock_;
  device::PmDevice pm_dev_;
  device::BlockDevice ssd_dev_;
  device::BlockDevice hdd_dev_;
  fs::NovaFs novafs_;
  fs::XfsLite xfslite_;
  fs::ExtLite extlite_;
  FaultInjectingFs pm_;
  FaultInjectingFs ssd_;
  FaultInjectingFs hdd_;
  std::unique_ptr<core::Mux> mux_;
  core::TierId pm_tier_ = core::kInvalidTier;
  core::TierId ssd_tier_ = core::kInvalidTier;
  core::TierId hdd_tier_ = core::kInvalidTier;
  bool ok_ = false;
};

void ExpectClean(core::Mux& mux) {
  auto scrub = mux.Scrub();
  ASSERT_TRUE(scrub.ok());
  EXPECT_TRUE(scrub->Clean())
      << "missing=" << scrub->missing_shadows
      << " size=" << scrub->size_inconsistencies
      << " replicas=" << scrub->replica_mismatches;
}

// ---- migration under faults -------------------------------------------------

// TSan regression: chaos threads reprogram the wrapper (FailNth / budget /
// KillDevice / ClearFaults) while worker threads hammer the unarmed fast
// path. The old code read fault-window state without synchronization on
// every Enter; now the fast path only acquire-loads the epoch word and the
// armed slow path serializes on the mutex. Wired into the CI tsan job.
TEST_F(FaultInjectingFsTest, ConcurrentReprogrammingIsRaceFree) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> attempts{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      uint8_t b = static_cast<uint8_t>(t);
      std::vector<uint8_t> out(1);
      while (!stop.load(std::memory_order_relaxed)) {
        (void)fs_.Write(*h, 0, &b, 1);
        (void)fs_.Read(*h, 0, 1, out.data());
        (void)fs_.FStat(*h);
        attempts.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread chaos([&] {
    for (int i = 0; i < 200; ++i) {
      fs_.FailNth(FaultOp::kWrite, 3);
      fs_.SetErrorProbability(FaultOp::kRead, 0.05);
      fs_.SetWriteByteBudget(1 << 20);
      if (i % 5 == 0) {
        fs_.KillDevice();
        fs_.Revive();
      }
      fs_.ClearFaults();
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_relaxed);
  });
  chaos.join();
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_GT(attempts.load(), 0u);
  // The ops counter never loses a bump: every Write/Read/FStat entered.
  EXPECT_GE(fs_.fault_stats().ops, 3 * attempts.load());
}

// FailNth fires exactly once even when the armed call races other entries
// of the same op class: concurrent writers, exactly one injected EIO.
TEST_F(FaultInjectingFsTest, FailNthFiresExactlyOnceUnderConcurrency) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 50;
  fs_.FailNth(FaultOp::kWrite, 10);

  std::atomic<uint64_t> eio{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      uint8_t b = 0;
      for (int i = 0; i < kWritesPerThread; ++i) {
        const auto result = fs_.Write(*h, 0, &b, 1);
        if (!result.ok() &&
            result.status().code() == ErrorCode::kIoError) {
          eio.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : writers) {
    w.join();
  }
  EXPECT_EQ(eio.load(), 1u);
  EXPECT_EQ(fs_.fault_stats().injected_eio, 1u);
  EXPECT_EQ(fs_.fault_stats().ops,
            static_cast<uint64_t>(kThreads * kWritesPerThread) + 1);
  // One-shot: the wrapper recovered after the single injection.
  uint8_t b = 0;
  EXPECT_TRUE(fs_.Write(*h, 0, &b, 1).ok());
}

TEST(FaultMigrationTest, TransientWriteFaultIsRetriedAndSucceeds) {
  FaultRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto h = mux.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(8 * 4096, 41);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());

  // The very next write to the destination tier fails once, then recovers —
  // the migration must absorb it within its capped retries.
  rig.ssd().FailNth(FaultOp::kWrite, 1);
  ASSERT_TRUE(mux.MigrateFile("/f", rig.ssd_tier()).ok());
  EXPECT_EQ(rig.ssd().fault_stats().injected_eio, 1u);

  auto breakdown = mux.FileTierBreakdown("/f");
  ASSERT_TRUE(breakdown.ok());
  EXPECT_EQ((*breakdown)[rig.ssd_tier()], 8u);
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(mux.Read(*h, 0, out.size(), out.data()).ok());
  EXPECT_EQ(out, data);
  ExpectClean(mux);
}

TEST(FaultMigrationTest, PersistentEnospcAbortsWithBltUntouched) {
  FaultRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto h = mux.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(8 * 4096, 42);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());

  // Destination permanently out of space: the migration exhausts its
  // retries and aborts — but Mux's metadata must be exactly as before.
  rig.ssd().SetWriteByteBudget(0);
  EXPECT_EQ(mux.MigrateFile("/f", rig.ssd_tier()).code(),
            ErrorCode::kNoSpace);

  auto breakdown = mux.FileTierBreakdown("/f");
  ASSERT_TRUE(breakdown.ok());
  EXPECT_EQ((*breakdown)[rig.pm_tier()], 8u);
  EXPECT_EQ(breakdown->count(rig.ssd_tier()), 0u);
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(mux.Read(*h, 0, out.size(), out.data()).ok());
  EXPECT_EQ(out, data);
  rig.ssd().ClearWriteByteBudget();
  ExpectClean(mux);

  // The tier recovered; the same migration now goes through.
  ASSERT_TRUE(mux.MigrateFile("/f", rig.ssd_tier()).ok());
  ASSERT_TRUE(mux.Read(*h, 0, out.size(), out.data()).ok());
  EXPECT_EQ(out, data);
  ExpectClean(mux);
}

TEST(FaultMigrationTest, TruncateDuringMigrationStaysConsistent) {
  // Regression for the stale-data-resurrection bug: Truncate used to mark
  // only one block dirty, so an in-flight OCC pass committed mappings past
  // the new EOF. The fault layer's write hook interleaves the truncate at
  // the exact middle of the migration's copy phase, deterministically.
  FaultRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto h = mux.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(8 * 4096, 43);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());

  std::atomic<bool> fired{false};
  rig.ssd().SetHook(FaultOp::kWrite, [&] {
    if (fired.exchange(true)) {
      return;  // only the first copy write interleaves
    }
    // Runs while the migration copy phase holds no locks: a user shrinks
    // the file under the pass.
    EXPECT_TRUE(mux.Truncate(*h, 100).ok());
  });
  ASSERT_TRUE(mux.MigrateFile("/f", rig.ssd_tier()).ok());
  rig.ssd().ClearHook(FaultOp::kWrite);
  ASSERT_TRUE(fired.load());

  auto st = mux.FStat(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 100u);
  std::vector<uint8_t> out(100);
  auto r = mux.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 100u);
  EXPECT_TRUE(std::memcmp(out.data(), data.data(), 100) == 0);
  // The decisive check: no BLT mapping survived past the new EOF.
  ExpectClean(mux);
}

// ---- replication failover ---------------------------------------------------

TEST(FaultReplicationTest, ReadFailsOverWhenPrimaryDeviceDies) {
  FaultRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  auto h = mux.Open("/r", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(8 * 4096, 44);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
  // Primary on PM, mirror on SSD.
  ASSERT_TRUE(mux.ReplicateFile("/r", rig.ssd_tier()).ok());

  rig.pm().KillDevice();
  std::vector<uint8_t> out(data.size());
  auto r = mux.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(r.ok()) << "read must fail over to the surviving mirror: "
                      << r.status();
  EXPECT_EQ(out, data);

  rig.pm().Revive();
  ExpectClean(mux);
}

// ---- policy rounds and background migration under faults --------------------

// The acceptance scenario: ENOSPC on one destination tier, EIO on one
// source tier — the round completes every non-faulted task, the scheduler
// stats carry the faulted ones, and the metadata stays clean.
TEST(FaultPolicyTest, RoundCompletesNonFaultedTasks) {
  FaultRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  ASSERT_TRUE(mux.Mkdir("/a").ok());
  ASSERT_TRUE(mux.Mkdir("/b").ok());

  auto write_file = [&](const std::string& path, uint64_t seed) {
    auto h = mux.Open(path, OpenFlags::kCreateRw);
    ASSERT_TRUE(h.ok());
    auto data = Pattern(4 * 4096, seed);
    ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());
    ASSERT_TRUE(mux.Close(*h).ok());
  };
  write_file("/a/to_ssd", 51);   // will be pinned to SSD (faulted dest)
  write_file("/b/to_hdd", 52);   // will be pinned to HDD (healthy path)
  write_file("/b/from_ssd", 53); // moved to SSD now, pinned to HDD later
  ASSERT_TRUE(mux.MigrateFile("/b/from_ssd", rig.ssd_tier()).ok());

  // Pin placement targets, then make the SSD tier misbehave both ways:
  // writes die with ENOSPC (destination fault for /a/to_ssd) and reads die
  // with EIO (source fault for /b/from_ssd).
  ASSERT_TRUE(mux.SetPolicyByName("pin", "/a=ssd,/b=hdd").ok());
  rig.ssd().SetWriteByteBudget(0);
  rig.ssd().FailNext(FaultOp::kRead, 1000000);

  ASSERT_TRUE(mux.RunPolicyMigrations().ok())
      << "per-task faults must not fail the round";

  const core::SchedulerStats round = mux.LastMigrationRoundStats();
  EXPECT_EQ(round.submitted, 3u);
  EXPECT_EQ(round.failures, 2u);
  EXPECT_EQ(round.failed_tiers.at(rig.ssd_tier()), 1u);  // dest ENOSPC
  EXPECT_EQ(round.failed_tiers.at(rig.hdd_tier()), 1u);  // source EIO
  EXPECT_FALSE(round.last_error.ok());
  EXPECT_EQ(mux.stats().migration_task_failures, 2u);

  // The non-faulted task completed...
  auto hdd_file = mux.FileTierBreakdown("/b/to_hdd");
  ASSERT_TRUE(hdd_file.ok());
  EXPECT_EQ((*hdd_file)[rig.hdd_tier()], 4u);
  // ...and the faulted ones were left exactly where they were.
  auto ssd_file = mux.FileTierBreakdown("/a/to_ssd");
  ASSERT_TRUE(ssd_file.ok());
  EXPECT_EQ((*ssd_file)[rig.pm_tier()], 4u);
  auto src_file = mux.FileTierBreakdown("/b/from_ssd");
  ASSERT_TRUE(src_file.ok());
  EXPECT_EQ((*src_file)[rig.ssd_tier()], 4u);

  rig.ssd().ClearFaults();
  ExpectClean(mux);

  // Once the tier recovers, the next round finishes the job.
  ASSERT_TRUE(mux.RunPolicyMigrations().ok());
  EXPECT_EQ(mux.LastMigrationRoundStats().failures, 0u);
  ssd_file = mux.FileTierBreakdown("/a/to_ssd");
  ASSERT_TRUE(ssd_file.ok());
  EXPECT_EQ((*ssd_file)[rig.ssd_tier()], 4u);
  src_file = mux.FileTierBreakdown("/b/from_ssd");
  ASSERT_TRUE(src_file.ok());
  EXPECT_EQ((*src_file)[rig.hdd_tier()], 4u);
  ExpectClean(mux);
}

TEST(FaultPolicyTest, BackgroundMigrationDegradesGracefully) {
  FaultRig rig;
  ASSERT_TRUE(rig.ok());
  auto& mux = rig.mux();
  ASSERT_TRUE(mux.Mkdir("/a").ok());
  auto h = mux.Open("/a/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto data = Pattern(4 * 4096, 61);
  ASSERT_TRUE(mux.Write(*h, 0, data.data(), data.size()).ok());

  // Pin the file toward a tier that keeps failing; the background thread
  // must log-and-skip every round, never crash, and never corrupt state.
  ASSERT_TRUE(mux.SetPolicyByName("pin", "/a=ssd").ok());
  rig.ssd().SetWriteByteBudget(0);
  mux.StartBackgroundMigration(/*interval_ms=*/1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // Foreground service continues while the background thread churns.
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(mux.Read(*h, 0, out.size(), out.data()).ok());
  EXPECT_EQ(out, data);

  // The tier recovers mid-flight; a later round completes the migration.
  rig.ssd().ClearWriteByteBudget();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  mux.StopBackgroundMigration();

  EXPECT_GT(mux.stats().migration_task_failures, 0u);
  auto breakdown = mux.FileTierBreakdown("/a/f");
  ASSERT_TRUE(breakdown.ok());
  EXPECT_EQ((*breakdown)[rig.ssd_tier()], 4u);
  ASSERT_TRUE(mux.Read(*h, 0, out.size(), out.data()).ok());
  EXPECT_EQ(out, data);
  ExpectClean(mux);
}

}  // namespace
}  // namespace mux::testing
