// Tests for MemFs — also the template for the generic file-system contract
// tests that every FS implementation must pass (see fs_contract_test.cc).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/clock.h"
#include "src/vfs/memfs.h"

namespace mux::vfs {
namespace {

class MemFsTest : public ::testing::Test {
 protected:
  SimClock clock_;
  MemFs fs_{&clock_, 64ULL << 20};
};

TEST_F(MemFsTest, CreateWriteReadBack) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw, 0644);
  ASSERT_TRUE(h.ok()) << h.status();
  const char msg[] = "hello tiered storage";
  ASSERT_TRUE(fs_.Write(*h, 0, reinterpret_cast<const uint8_t*>(msg),
                        sizeof(msg)).ok());
  std::vector<uint8_t> out(sizeof(msg));
  auto n = fs_.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, sizeof(msg));
  EXPECT_EQ(std::memcmp(out.data(), msg, sizeof(msg)), 0);
  EXPECT_TRUE(fs_.Close(*h).ok());
}

TEST_F(MemFsTest, OpenMissingFails) {
  auto h = fs_.Open("/missing", OpenFlags::kRead);
  EXPECT_EQ(h.status().code(), ErrorCode::kNotFound);
}

TEST_F(MemFsTest, ExclusiveCreateFailsOnExisting) {
  ASSERT_TRUE(fs_.Open("/f", OpenFlags::kCreateRw).ok());
  auto h = fs_.Open("/f", OpenFlags::kCreateRw | OpenFlags::kExclusive);
  EXPECT_EQ(h.status().code(), ErrorCode::kExists);
}

TEST_F(MemFsTest, TruncateOnOpenClearsContent) {
  auto h1 = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h1.ok());
  uint8_t b = 0xaa;
  ASSERT_TRUE(fs_.Write(*h1, 0, &b, 1).ok());
  ASSERT_TRUE(fs_.Close(*h1).ok());
  auto h2 = fs_.Open("/f", OpenFlags::kReadWrite | OpenFlags::kTruncate);
  ASSERT_TRUE(h2.ok());
  auto st = fs_.FStat(*h2);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 0u);
}

TEST_F(MemFsTest, SparseWriteCreatesHole) {
  auto h = fs_.Open("/sparse", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  uint8_t b = 0x77;
  // Write a single byte at 1 MiB.
  ASSERT_TRUE(fs_.Write(*h, 1 << 20, &b, 1).ok());
  auto st = fs_.FStat(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, (1u << 20) + 1);
  // Only one 4K page is allocated — the rest is hole.
  EXPECT_EQ(st->allocated_bytes, 4096u);
  // Hole reads as zeros.
  std::vector<uint8_t> out(16);
  auto n = fs_.Read(*h, 1000, out.size(), out.data());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, out.size());
  EXPECT_EQ(out, std::vector<uint8_t>(16, 0));
}

TEST_F(MemFsTest, ReadPastEofIsShort) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  uint8_t buf[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  ASSERT_TRUE(fs_.Write(*h, 0, buf, 10).ok());
  std::vector<uint8_t> out(20);
  auto n = fs_.Read(*h, 5, 20, out.data());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
  auto n2 = fs_.Read(*h, 100, 20, out.data());
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 0u);
}

TEST_F(MemFsTest, TruncateShrinkAndReextendReadsZeros) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  std::vector<uint8_t> data(8192, 0xbb);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_.Truncate(*h, 100).ok());
  ASSERT_TRUE(fs_.Truncate(*h, 8192).ok());
  std::vector<uint8_t> out(8192);
  auto n = fs_.Read(*h, 0, out.size(), out.data());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 8192u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out[i], 0xbb) << i;
  }
  for (size_t i = 100; i < 8192; ++i) {
    ASSERT_EQ(out[i], 0) << i;
  }
}

TEST_F(MemFsTest, MkdirAndReadDir) {
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  ASSERT_TRUE(fs_.Mkdir("/d/sub").ok());
  ASSERT_TRUE(fs_.Open("/d/file", OpenFlags::kCreateRw).ok());
  auto entries = fs_.ReadDir("/d");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].name, "file");
  EXPECT_EQ((*entries)[0].type, FileType::kRegular);
  EXPECT_EQ((*entries)[1].name, "sub");
  EXPECT_EQ((*entries)[1].type, FileType::kDirectory);
}

TEST_F(MemFsTest, MkdirExistingFails) {
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  EXPECT_EQ(fs_.Mkdir("/d").code(), ErrorCode::kExists);
}

TEST_F(MemFsTest, MkdirMissingParentFails) {
  EXPECT_EQ(fs_.Mkdir("/no/such").code(), ErrorCode::kNotFound);
}

TEST_F(MemFsTest, RmdirOnlyEmpty) {
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  ASSERT_TRUE(fs_.Open("/d/f", OpenFlags::kCreateRw).ok());
  EXPECT_EQ(fs_.Rmdir("/d").code(), ErrorCode::kNotEmpty);
  ASSERT_TRUE(fs_.Unlink("/d/f").ok());
  EXPECT_TRUE(fs_.Rmdir("/d").ok());
  EXPECT_EQ(fs_.Stat("/d").status().code(), ErrorCode::kNotFound);
}

TEST_F(MemFsTest, UnlinkFreesSpace) {
  auto before = fs_.StatFs();
  ASSERT_TRUE(before.ok());
  auto h = fs_.Open("/big", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  std::vector<uint8_t> data(1 << 20, 1);
  ASSERT_TRUE(fs_.Write(*h, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_.Close(*h).ok());
  auto during = fs_.StatFs();
  ASSERT_TRUE(during.ok());
  EXPECT_LT(during->free_bytes, before->free_bytes);
  ASSERT_TRUE(fs_.Unlink("/big").ok());
  auto after = fs_.StatFs();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->free_bytes, before->free_bytes);
}

TEST_F(MemFsTest, RenameMovesFile) {
  auto h = fs_.Open("/a", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  uint8_t b = 42;
  ASSERT_TRUE(fs_.Write(*h, 0, &b, 1).ok());
  ASSERT_TRUE(fs_.Close(*h).ok());
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  ASSERT_TRUE(fs_.Rename("/a", "/d/b").ok());
  EXPECT_EQ(fs_.Stat("/a").status().code(), ErrorCode::kNotFound);
  auto st = fs_.Stat("/d/b");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 1u);
}

TEST_F(MemFsTest, RenameReplacesTarget) {
  auto a = fs_.Open("/a", OpenFlags::kCreateRw);
  auto b = fs_.Open("/b", OpenFlags::kCreateRw);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  uint8_t x = 1;
  ASSERT_TRUE(fs_.Write(*a, 0, &x, 1).ok());
  ASSERT_TRUE(fs_.Close(*a).ok());
  ASSERT_TRUE(fs_.Close(*b).ok());
  ASSERT_TRUE(fs_.Rename("/a", "/b").ok());
  auto st = fs_.Stat("/b");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 1u);
}

TEST_F(MemFsTest, TimestampsAdvance) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  auto st0 = fs_.FStat(*h);
  ASSERT_TRUE(st0.ok());
  clock_.Advance(1000);
  uint8_t b = 1;
  ASSERT_TRUE(fs_.Write(*h, 0, &b, 1).ok());
  auto st1 = fs_.FStat(*h);
  ASSERT_TRUE(st1.ok());
  EXPECT_GT(st1->mtime, st0->mtime);
  clock_.Advance(1000);
  uint8_t out = 0;
  ASSERT_TRUE(fs_.Read(*h, 0, 1, &out).ok());
  auto st2 = fs_.FStat(*h);
  ASSERT_TRUE(st2.ok());
  EXPECT_GT(st2->atime, st1->atime);
}

TEST_F(MemFsTest, SetAttrUpdatesTimes) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  AttrUpdate update;
  update.mtime = 12345;
  update.mode = 0600;
  ASSERT_TRUE(fs_.SetAttr(*h, update).ok());
  auto st = fs_.FStat(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->mtime, 12345u);
  EXPECT_EQ(st->mode, 0600u);
}

TEST_F(MemFsTest, FallocateKeepSize) {
  auto h = fs_.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_.Fallocate(*h, 0, 1 << 20, /*keep_size=*/true).ok());
  auto st = fs_.FStat(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 0u);
  EXPECT_EQ(st->allocated_bytes, 1u << 20);
}

TEST_F(MemFsTest, NoSpaceReported) {
  MemFs tiny(&clock_, 16 * 4096);
  auto h = tiny.Open("/f", OpenFlags::kCreateRw);
  ASSERT_TRUE(h.ok());
  std::vector<uint8_t> data(17 * 4096, 1);
  auto n = tiny.Write(*h, 0, data.data(), data.size());
  EXPECT_EQ(n.status().code(), ErrorCode::kNoSpace);
}

TEST_F(MemFsTest, WriteWithoutWriteFlagFails) {
  ASSERT_TRUE(fs_.Open("/f", OpenFlags::kCreateRw).ok());
  auto h = fs_.Open("/f", OpenFlags::kRead);
  ASSERT_TRUE(h.ok());
  uint8_t b = 1;
  EXPECT_EQ(fs_.Write(*h, 0, &b, 1).status().code(), ErrorCode::kPermission);
}

TEST_F(MemFsTest, BadHandleRejected) {
  uint8_t b;
  EXPECT_EQ(fs_.Read(999, 0, 1, &b).status().code(), ErrorCode::kBadHandle);
  EXPECT_EQ(fs_.Close(999).code(), ErrorCode::kBadHandle);
}

}  // namespace
}  // namespace mux::vfs
