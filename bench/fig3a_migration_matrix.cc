// Figure 3(a): extensibility + migration throughput matrix.
//
// Paper result being reproduced:
//   * Strata's static routing supports only PM→SSD and PM→HDD; the other
//     four ordered pairs are "N/S" (not supported).
//   * Mux supports all six pairs through the uniform VFS interface.
//   * Mux's PM→SSD migration is ~2.59x faster than Strata's: Strata locks
//     its monolithic extent tree block-by-block and pays per-block digest
//     bookkeeping; Mux streams whole extents between file systems.
//
// Workload: a file is placed entirely on the source tier, then migrated to
// the target; throughput = bytes moved / simulated elapsed time.
#include <cstdio>

#include "bench/bench_util.h"

namespace mux::bench {
namespace {

constexpr uint64_t kFileBytes = 32ULL << 20;

struct Cell {
  bool supported = false;
  double mbps = 0.0;
};

Cell MuxMigrate(core::TierId from, core::TierId to) {
  MuxRig rig;
  if (!rig.ok()) {
    return {};
  }
  auto& mux = rig.mux();
  auto h = mux.Open("/data", vfs::OpenFlags::kCreateRw);
  if (!h.ok()) {
    return {};
  }
  if (!SequentialWrite(mux, *h, kFileBytes, 1 << 20, 1).ok()) {
    return {};
  }
  if (!mux.MigrateFile("/data", from).ok()) {  // stage onto the source tier
    return {};
  }
  (void)mux.Sync();
  SimTimer timer(rig.clock());
  // "supporting a migration path takes a single line of code to invoke the
  // migration function" — this is that line:
  if (!mux.MigrateFile("/data", to).ok()) {
    return {};
  }
  return Cell{true, ThroughputMBps(kFileBytes, timer.Elapsed())};
}

Cell StrataMigrate(strata::Tier from, strata::Tier to) {
  if (!strata::StrataFs::SupportsMigration(from, to)) {
    return {};  // N/S — the static routing table has no such path
  }
  StrataRig rig;
  if (!rig.ok()) {
    return {};
  }
  auto& fs = rig.fs();
  auto h = fs.Open("/data", vfs::OpenFlags::kCreateRw);
  if (!h.ok()) {
    return {};
  }
  if (!fs.SetFileTier("/data", from).ok()) {
    return {};
  }
  if (!SequentialWrite(fs, *h, kFileBytes, 1 << 20, 1).ok()) {
    return {};
  }
  if (!fs.DigestAll().ok()) {  // data now lives on the source tier
    return {};
  }
  SimTimer timer(rig.clock());
  if (!fs.MigrateFile("/data", from, to).ok()) {
    return {};
  }
  return Cell{true, ThroughputMBps(kFileBytes, timer.Elapsed())};
}

void PrintMatrix(const char* name, Cell cells[3][3]) {
  const char* tiers[3] = {"PM", "SSD", "HDD"};
  std::printf("\n%s migration throughput (MB/s), source -> target\n", name);
  std::printf("  %-8s", "src\\dst");
  for (int t = 0; t < 3; ++t) {
    std::printf("%10s", tiers[t]);
  }
  std::printf("\n");
  for (int s = 0; s < 3; ++s) {
    std::printf("  %-8s", tiers[s]);
    for (int t = 0; t < 3; ++t) {
      if (s == t) {
        std::printf("%10s", "-");
      } else if (!cells[s][t].supported) {
        std::printf("%10s", "N/S");
      } else {
        std::printf("%10.0f", cells[s][t].mbps);
      }
    }
    std::printf("\n");
  }
}

int Run() {
  PrintHeader("Figure 3a: migration extensibility and throughput");

  Cell mux_cells[3][3];
  Cell strata_cells[3][3];
  MuxRig probe;
  const core::TierId mux_tiers[3] = {probe.pm_tier(), probe.ssd_tier(),
                                     probe.hdd_tier()};
  const strata::Tier strata_tiers[3] = {strata::Tier::kPm, strata::Tier::kSsd,
                                        strata::Tier::kHdd};
  for (int s = 0; s < 3; ++s) {
    for (int t = 0; t < 3; ++t) {
      if (s == t) {
        continue;
      }
      mux_cells[s][t] = MuxMigrate(mux_tiers[s], mux_tiers[t]);
      strata_cells[s][t] = StrataMigrate(strata_tiers[s], strata_tiers[t]);
    }
  }
  PrintMatrix("Strata", strata_cells);
  PrintMatrix("Mux (NOVA, xfs, ext4)", mux_cells);

  int mux_paths = 0;
  int strata_paths = 0;
  for (int s = 0; s < 3; ++s) {
    for (int t = 0; t < 3; ++t) {
      mux_paths += mux_cells[s][t].supported;
      strata_paths += strata_cells[s][t].supported;
    }
  }
  std::printf("\nSupported migration paths: Strata %d/6, Mux %d/6\n",
              strata_paths, mux_paths);
  if (strata_cells[0][1].supported && mux_cells[0][1].supported) {
    std::printf("PM->SSD speedup (Mux/Strata): %.2fx  (paper: 2.59x)\n",
                mux_cells[0][1].mbps / strata_cells[0][1].mbps);
  }
  return 0;
}

}  // namespace
}  // namespace mux::bench

int main() { return mux::bench::Run(); }
