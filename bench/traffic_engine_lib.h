// Open-loop traffic engine: production-shaped load against the full Mux
// stack (ROADMAP item 1).
//
// Every other bench in this repo is closed-loop: N threads issue the next op
// as soon as the previous one returns, so when the system slows down the
// offered load politely slows down with it and tail latency looks flat. Real
// storage front-ends don't do that — requests keep arriving at whatever rate
// the fleet generates. This engine models that:
//
//   * A dispatcher thread draws Poisson inter-arrival gaps (PoissonArrivals)
//     for a fixed offered rate and pushes ops into a bounded lock-free MPMC
//     queue. A full queue DROPS the op (counted) instead of blocking — the
//     overload signal an open-loop system actually emits.
//   * Worker threads pop and execute ops against Mux: zipfian
//     open/read/close and open/write/close over a million-file namespace,
//     plus a small Stat/ReadDirPaged metadata mix.
//   * Latency is measured from the op's *scheduled* arrival time, not from
//     dequeue — an op that sat in the queue because the system was saturated
//     charges its wait to the system (coordinated-omission avoidance), and
//     queueing vs service time are attributed separately (obs::PhaseRecorder
//     into the Mux metrics registry, "client.queue_ns" / "client.service_ns"
//     / "client.total_ns").
//   * Offered load is stepped as fractions of a measured closed-loop
//     capacity, each step run quiescent and again under chaos: concurrent
//     policy-migration rounds, injected tier faults
//     (vfs::FaultInjectingFs), and checkpoints.
//
// Wall-clock measurement: like bench/metadata_scaling, this bench measures
// real elapsed time, not SimClock time — the phenomena under test (queueing,
// lock contention, drop behaviour) are invisible to the simulated clock,
// which only models device latencies. Acceptance checks are core-aware for
// the same reason.
//
// Header-only so tests/traffic_engine_test.cc drives the identical engine at
// reduced scale.
#ifndef MUX_BENCH_TRAFFIC_ENGINE_LIB_H_
#define MUX_BENCH_TRAFFIC_ENGINE_LIB_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/common/workload.h"
#include "src/core/async_io.h"
#include "src/core/mux.h"
#include "src/device/block_device.h"
#include "src/device/pm_device.h"
#include "src/fs/extlite/extlite.h"
#include "src/fs/novafs/novafs.h"
#include "src/fs/xfslite/xfslite.h"
#include "src/obs/phase.h"
#include "src/vfs/fault_injecting_fs.h"

namespace mux::bench {

struct TrafficConfig {
  // Namespace population. Files are spread dir_fanout per directory; the
  // first data_files of them are prepopulated with file_blocks blocks of
  // data (the zipfian hot set), the rest exist as metadata until the write
  // mix touches them.
  uint64_t files = 1'000'000;
  uint64_t dir_fanout = 1024;
  uint64_t data_files = 32'768;
  uint64_t file_blocks = 4;

  // Workload shape.
  double zipf_theta = 0.99;
  double read_fraction = 0.88;
  double write_fraction = 0.10;
  double meta_fraction = 0.02;

  // Client shape.
  int workers = 4;
  size_t queue_capacity = 1 << 16;

  // Completion-based client path (ROADMAP item 2): the dispatcher submits
  // each op into a bounded AsyncIoCore submission ring (capacity
  // queue_capacity, `workers` server threads) and a single completion
  // continuation does all accounting — no MPMC queue, no thread-per-op
  // worker pop loop. A full ring rejects the submission and the op counts
  // as dropped, same overload semantics as the queue path. When false, the
  // legacy MPMC + worker-threads path runs (kept as the ablation baseline).
  bool async_mode = false;

  // Continuation client path (the op state machine): the dispatcher issues
  // data ops straight into Mux::{Read,Write}Async and a done callback does
  // all accounting on whatever thread the op resumes on. In-flight ops are
  // bounded by a SEMAPHORE (16 * workers), not by worker threads — no
  // thread blocks per op, so one dispatcher sustains an in-flight window
  // far wider than the async ring's server count. A full window drops the
  // op (open-loop overload semantics, same as the other two paths).
  bool continuation_mode = false;
  // In-flight window per nominal worker for the continuation path.
  int continuation_window_per_worker = 16;
  // Worker counts for the in-flight-vs-workers scaling curve
  // (continuation mode only; lands in TrafficResult::inflight_curve and
  // BENCH_async.json).
  std::vector<int> curve_workers = {1, 2, 4};

  // Offered-load steps, as fractions of the measured closed-loop capacity
  // (so the same config stresses a laptop and a CI runner equally). Steps
  // past 1.0 deliberately overload the engine to exercise drop accounting.
  std::vector<double> load_fractions = {0.25, 0.5, 0.75, 1.0, 1.25};
  uint64_t calibrate_ms = 300;
  uint64_t step_ms = 2000;
  uint64_t warmup_ms = 200;  // leading slice excluded from percentiles
  uint64_t bucket_ms = 100;  // latency time-bucket width

  // Mirror mode (multi-residency BLT): the hot head of the data set is
  // migrated to the SSD tier and mirrored back onto PM, and the policy is
  // switched to "mirror", so reads exercise fastest-copy selection, writes
  // absorb on the fast copy and dirty the SSD one, and the chaos policy
  // rounds reconcile lazily (MirrorSyncRound). Per-step replica hit rates
  // land in StepResult::replica_hit_rate.
  bool mirror_mode = false;
  uint64_t mirror_files = 512;  // hot head given a PM mirror

  // Run each step a second time with policy migrations + injected faults +
  // checkpoints running concurrently.
  bool chaos = true;
  // Probability a tier op fails while the fault injector is in its active
  // window (windows rotate across tiers).
  double fault_probability = 0.005;

  uint64_t seed = 42;

  // Exactly-once accounting (tests): every op's seq is counted at execution
  // and cross-checked against generated/dropped at the end of each step.
  bool track_ops = false;
  uint64_t max_tracked_ops = 1 << 22;
};

struct StepResult {
  double load_fraction = 0.0;
  double offered_ops_s = 0.0;
  bool chaos = false;
  uint64_t generated = 0;
  uint64_t dropped = 0;
  uint64_t completed_ok = 0;
  uint64_t completed_err = 0;
  double goodput_ops_s = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  double mean_queue_ns = 0.0;
  double mean_service_ns = 0.0;
  // Exactly-once verification for this step (track_ops only).
  uint64_t lost_ops = 0;
  uint64_t duplicated_ops = 0;
  // Drops according to the per-op ledger, cross-checked against `dropped`
  // (track_ops only, and only when every generated op fit in the ledger).
  uint64_t ledger_dropped = 0;
  bool accounting_exact = true;
  // Client submission-ring occupancy over the step (async mode only).
  double mean_qdepth = 0.0;
  uint64_t max_qdepth = 0;
  // Ops in flight through the op state machine over the step (continuation
  // mode only): submitted to Mux::{Read,Write}Async, done not yet run.
  double mean_inflight = 0.0;
  uint64_t max_inflight = 0;
  // SCM cache behavior during this step (probe deltas over the step).
  double cache_hit_rate = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // Reads served from a non-primary copy during this step (mirror mode:
  // metric delta over the step, and the fraction of completed ops).
  uint64_t replica_read_hits = 0;
  double replica_hit_rate = 0.0;
};

// Offered-vs-completed progress sample, taken periodically by the
// dispatcher; the test asserts the sequence is monotonic.
struct ProgressSample {
  uint64_t generated = 0;
  uint64_t dropped = 0;
  uint64_t completed = 0;
};

struct TrafficResult {
  bool ok = false;
  std::string error;
  uint64_t files_created = 0;
  double populate_seconds = 0.0;
  double capacity_ops_s = 0.0;  // closed-loop calibration (worker threads)
  // Closed-loop capacity through the async submission path at the same
  // worker count (async mode only; the load steps scale off this one).
  double async_capacity_ops_s = 0.0;
  // Closed-loop capacity through Mux::{Read,Write}Async with the
  // semaphore-bounded window (continuation mode only; steps scale off it).
  double continuation_capacity_ops_s = 0.0;
  // In-flight-vs-workers scaling curve (continuation mode): for each worker
  // count, closed-loop capacity and mean ops-in-flight through the
  // submission-ring client (in-flight = ops occupying a server thread) vs
  // the continuation client (in-flight = ops suspended in the state
  // machine, bounded only by the semaphore).
  struct InflightPoint {
    int workers = 0;
    double async_ops_s = 0.0;
    double async_mean_inflight = 0.0;
    double cont_ops_s = 0.0;
    double cont_mean_inflight = 0.0;
  };
  std::vector<InflightPoint> inflight_curve;
  std::vector<StepResult> steps;
  std::vector<ProgressSample> progress;  // across all steps
  uint64_t policy_rounds = 0;
  uint64_t checkpoints_ok = 0;
  uint64_t checkpoints_failed = 0;
  uint64_t faults_injected = 0;
  uint64_t migrated_blocks = 0;

  // Highest load fraction whose QUIET step kept drops under 1% — the "last
  // passing step" the chaos-vs-quiet p99 acceptance compares at.
  const StepResult* quiet_step_at(double fraction) const {
    for (const auto& s : steps) {
      if (!s.chaos && s.load_fraction == fraction) {
        return &s;
      }
    }
    return nullptr;
  }
  const StepResult* chaos_step_at(double fraction) const {
    for (const auto& s : steps) {
      if (s.chaos && s.load_fraction == fraction) {
        return &s;
      }
    }
    return nullptr;
  }
};

// Full Mux stack with a FaultInjectingFs interposed on every tier — the
// MuxRig wiring plus fault decorators, sized for the configured population.
class TrafficRig {
 public:
  explicit TrafficRig(const TrafficConfig& config)
      : pm_dev_(device::DeviceProfile::OptanePm(PmBytes(config)), &clock_),
        ssd_dev_(device::DeviceProfile::OptaneSsd(2 * PmBytes(config)),
                 &clock_),
        hdd_dev_(device::DeviceProfile::ExosHdd(4 * PmBytes(config)),
                 &clock_),
        novafs_(&pm_dev_, &clock_, NovaOptions(config)),
        xfslite_(&ssd_dev_, &clock_, XfsOptions(config)),
        extlite_(&hdd_dev_, &clock_, ExtOptions(config)),
        pm_faults_(&novafs_, config.seed + 101),
        ssd_faults_(&xfslite_, config.seed + 102),
        hdd_faults_(&extlite_, config.seed + 103),
        mux_(std::make_unique<core::Mux>(&clock_, MuxOptions(config))) {
    ok_ = novafs_.Format().ok() && xfslite_.Format().ok() &&
          extlite_.Format().ok();
    auto pm = mux_->AddTier("pm", &pm_faults_, pm_dev_.profile());
    auto ssd = mux_->AddTier("ssd", &ssd_faults_, ssd_dev_.profile());
    auto hdd = mux_->AddTier("hdd", &hdd_faults_, hdd_dev_.profile());
    ok_ = ok_ && pm.ok() && ssd.ok() && hdd.ok();
    pm_tier_ = pm.value_or(core::kInvalidTier);
    ssd_tier_ = ssd.value_or(core::kInvalidTier);
    pm_dev_.AttachObs(&mux_->metrics(), &mux_->trace(), "pm");
    ssd_dev_.AttachObs(&mux_->metrics(), &mux_->trace(), "ssd");
    hdd_dev_.AttachObs(&mux_->metrics(), &mux_->trace(), "hdd");
  }

  ~TrafficRig() {
    pm_dev_.AttachObs(nullptr, nullptr, "pm");
    ssd_dev_.AttachObs(nullptr, nullptr, "ssd");
    hdd_dev_.AttachObs(nullptr, nullptr, "hdd");
  }

  bool ok() const { return ok_; }
  core::Mux& mux() { return *mux_; }
  SimClock& clock() { return clock_; }
  core::TierId pm_tier() const { return pm_tier_; }
  core::TierId ssd_tier() const { return ssd_tier_; }
  vfs::FaultInjectingFs& faults(size_t tier) {
    switch (tier % 3) {
      case 0: return pm_faults_;
      case 1: return ssd_faults_;
      default: return hdd_faults_;
    }
  }
  static constexpr size_t kTierCount = 3;

 private:
  // Device/table sizing from the population: the hot data set must fit the
  // PM tier with room for checkpoint snapshots, and the underlying inode
  // tables must hold every shadow file the run can create (data files can
  // land on any tier once migrations run).
  static uint64_t CacheBlocks(const TrafficConfig& c) {
    // A quarter of the data set, floored at 1024 blocks: big enough that the
    // zipfian head fits, small enough that the scan-shaped tail cannot.
    return std::max<uint64_t>(1024, c.data_files * c.file_blocks / 4);
  }
  static uint64_t PmBytes(const TrafficConfig& c) {
    const uint64_t data = c.data_files * c.file_blocks * core::Mux::kBlockSize;
    const uint64_t snapshot = c.files * 256 * 2 + (64ULL << 20);
    const uint64_t cache = CacheBlocks(c) * core::Mux::kBlockSize;
    return std::max<uint64_t>(2 * data + snapshot + cache, 256ULL << 20);
  }
  static uint64_t InodeTarget(const TrafficConfig& c) {
    return 4 * c.data_files + c.files / std::max<uint64_t>(1, c.dir_fanout) +
           4096;
  }
  static fs::NovaFs::Options NovaOptions(const TrafficConfig& c) {
    fs::NovaFs::Options options;
    options.inode_table_pages = InodeTarget(c) / 16 + 1;  // >= 16 slots/page
    return options;
  }
  static fs::XfsLite::Options XfsOptions(const TrafficConfig& c) {
    fs::XfsLite::Options options;
    options.inode_table_blocks = InodeTarget(c) / 16 + 1;
    return options;
  }
  static fs::ExtLite::Options ExtOptions(const TrafficConfig& c) {
    fs::ExtLite::Options options;
    options.inode_blocks_per_group =
        InodeTarget(c) / (16 * options.group_count) + 1;
    return options;
  }
  static core::Mux::Options MuxOptions(const TrafficConfig& c) {
    core::Mux::Options options;
    options.policy = c.mirror_mode ? "mirror" : "hotcold";
    // The SCM cache fronts the slower tiers under traffic; per-step hit
    // rates land in StepResult::cache_hit_rate / BENCH_traffic.json.
    options.enable_scm_cache = true;
    options.cache.capacity_blocks = CacheBlocks(c);
    if (c.continuation_mode) {
      // The continuation client's "workers" are the Mux resume pool: ops
      // suspend and resume there instead of holding a client thread each.
      options.resume_workers = std::max(2, c.workers);
    }
    return options;
  }

  SimClock clock_;
  device::PmDevice pm_dev_;
  device::BlockDevice ssd_dev_;
  device::BlockDevice hdd_dev_;
  fs::NovaFs novafs_;
  fs::XfsLite xfslite_;
  fs::ExtLite extlite_;
  vfs::FaultInjectingFs pm_faults_;
  vfs::FaultInjectingFs ssd_faults_;
  vfs::FaultInjectingFs hdd_faults_;
  std::unique_ptr<core::Mux> mux_;
  core::TierId pm_tier_ = core::kInvalidTier;
  core::TierId ssd_tier_ = core::kInvalidTier;
  bool ok_ = false;
};

class TrafficEngine {
 public:
  explicit TrafficEngine(TrafficConfig config)
      : config_(std::move(config)),
        queue_(config_.queue_capacity),
        phases_(nullptr, "client") {}

  // Builds the rig, populates the namespace, calibrates, and runs every
  // load step (quiet, then chaos if configured).
  TrafficResult Run() {
    TrafficResult result;
    rig_ = std::make_unique<TrafficRig>(config_);
    if (!rig_->ok()) {
      result.error = "rig setup failed";
      return result;
    }
    phases_ = obs::PhaseRecorder(&rig_->mux().metrics(), "client");
    if (config_.track_ops) {
      op_counts_ = std::make_unique<std::atomic<uint8_t>[]>(
          config_.max_tracked_ops);
    }

    const auto pop_start = Clock::now();
    Status populated = Populate();
    if (!populated.ok()) {
      result.error = "populate failed: " + std::string(populated.message());
      return result;
    }
    result.files_created = config_.files;
    result.populate_seconds = SecondsSince(pop_start);
    if (config_.mirror_mode) {
      Status mirrored = SeedMirrors();
      if (!mirrored.ok()) {
        result.error = "mirror seeding failed: " +
                       std::string(mirrored.message());
        return result;
      }
    }

    result.capacity_ops_s = Calibrate();
    if (result.capacity_ops_s <= 0.0) {
      result.error = "calibration produced zero capacity";
      return result;
    }
    // The steps scale off the capacity of the client path under test, so
    // async mode stresses itself, not the thread-per-op baseline.
    double step_capacity = result.capacity_ops_s;
    if (config_.async_mode) {
      result.async_capacity_ops_s = CalibrateAsync();
      if (result.async_capacity_ops_s > 0.0) {
        step_capacity = result.async_capacity_ops_s;
      }
    }
    if (config_.continuation_mode) {
      const ProbePoint cont = ProbeContinuationClient(config_.workers);
      result.continuation_capacity_ops_s = cont.ops_s;
      if (cont.ops_s > 0.0) {
        step_capacity = cont.ops_s;
      }
    }

    for (double fraction : config_.load_fractions) {
      const double rate = fraction * step_capacity;
      result.steps.push_back(RunStep(fraction, rate, /*chaos=*/false,
                                     &result));
      if (config_.chaos) {
        result.steps.push_back(RunStep(fraction, rate, /*chaos=*/true,
                                       &result));
      }
    }
    if (config_.continuation_mode) {
      for (int w : config_.curve_workers) {
        TrafficResult::InflightPoint point;
        point.workers = w;
        const ProbePoint a = ProbeAsyncClient(w);
        point.async_ops_s = a.ops_s;
        point.async_mean_inflight = a.mean_inflight;
        const ProbePoint c = ProbeContinuationClient(w);
        point.cont_ops_s = c.ops_s;
        point.cont_mean_inflight = c.mean_inflight;
        result.inflight_curve.push_back(point);
      }
    }
    result.migrated_blocks = rig_->mux().stats().migrated_blocks;
    result.progress = progress_;
    result.ok = true;
    return result;
  }

  core::Mux* mux() { return rig_ == nullptr ? nullptr : &rig_->mux(); }

  // ---- per-op ledger ----------------------------------------------------
  // Each tracked seq accumulates marks: +1 per execution, +kDropMark when
  // the claim/drop handoff drops it. Legal end states are exactly 1
  // (executed once) and kDropMark (dropped once); everything else is an
  // engine bug the tally surfaces. Additive marks are the satellite fix:
  // the old dispatcher STORED a drop sentinel, which would have silently
  // overwritten an execution mark — an op double-counted as both dropped
  // and executed scored as a clean drop instead of a duplicate.
  static constexpr uint8_t kDropMark = 128;

  struct LedgerTally {
    uint64_t lost = 0;        // never executed, never dropped
    uint64_t duplicated = 0;  // any illegal mark combination
    uint64_t dropped = 0;     // clean drops (== kDropMark exactly)
  };

  static LedgerTally TallyLedger(const std::atomic<uint8_t>* counts,
                                 uint64_t tracked) {
    LedgerTally tally;
    for (uint64_t i = 0; i < tracked; ++i) {
      const uint8_t count = counts[i].load(std::memory_order_relaxed);
      if (count == 1) {
        continue;
      } else if (count == kDropMark) {
        tally.dropped++;
      } else if (count == 0) {
        tally.lost++;
      } else {
        tally.duplicated++;  // incl. kDropMark+1: dropped AND executed
      }
    }
    return tally;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Op {
    uint64_t seq = 0;
    uint64_t sched_ns = 0;  // relative to the step epoch
    uint32_t file_id = 0;
    WorkloadOp kind = WorkloadOp::kRead;
  };

  static double SecondsSince(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
  }
  uint64_t RelNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             epoch_)
            .count());
  }

  std::string DirPath(uint64_t file_id) const {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "/d%05llu",
                  static_cast<unsigned long long>(file_id /
                                                  config_.dir_fanout));
    return buf;
  }
  std::string FilePath(uint64_t file_id) const {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "/d%05llu/f%08llu",
                  static_cast<unsigned long long>(file_id /
                                                  config_.dir_fanout),
                  static_cast<unsigned long long>(file_id));
    return buf;
  }

  Status Populate() {
    core::Mux& mux = rig_->mux();
    const uint64_t dirs =
        (config_.files + config_.dir_fanout - 1) / config_.dir_fanout;
    for (uint64_t d = 0; d < dirs; ++d) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "/d%05llu",
                    static_cast<unsigned long long>(d));
      MUX_RETURN_IF_ERROR(mux.Mkdir(buf));
    }
    // Create every file (cheap: no shadow file until first write)...
    for (uint64_t f = 0; f < config_.files; ++f) {
      MUX_ASSIGN_OR_RETURN(
          vfs::FileHandle handle,
          mux.Open(FilePath(f), vfs::OpenFlags::kCreateRw));
      MUX_RETURN_IF_ERROR(mux.Close(handle));
    }
    // ... then lay down data for the zipfian hot set.
    const uint64_t bytes = config_.file_blocks * core::Mux::kBlockSize;
    auto data = Pattern(bytes, config_.seed);
    for (uint64_t f = 0; f < std::min(config_.data_files, config_.files);
         ++f) {
      MUX_ASSIGN_OR_RETURN(vfs::FileHandle handle,
                           mux.Open(FilePath(f), vfs::OpenFlags::kWrite));
      MUX_RETURN_IF_ERROR(
          mux.Write(handle, 0, data.data(), bytes).status());
      MUX_RETURN_IF_ERROR(mux.Close(handle));
    }
    return Status::Ok();
  }

  // Mirror mode: the zipfian head (low ids are the hot ranks) moves its
  // authoritative copy to the SSD tier and gains a clean PM mirror, so the
  // read mix hits fastest-copy selection from the first quiet step and the
  // write mix exercises absorb + lazy reconciliation.
  Status SeedMirrors() {
    core::Mux& mux = rig_->mux();
    const uint64_t head = std::min(
        {config_.mirror_files, config_.data_files, config_.files});
    for (uint64_t f = 0; f < head; ++f) {
      const std::string path = FilePath(f);
      MUX_RETURN_IF_ERROR(mux.MigrateFile(path, rig_->ssd_tier()));
      MUX_RETURN_IF_ERROR(mux.ReplicateFile(path, rig_->pm_tier()));
    }
    return Status::Ok();
  }

  Status ExecuteOp(const Op& op, uint8_t* block_buf) {
    core::Mux& mux = rig_->mux();
    const uint64_t offset =
        (op.file_id % config_.file_blocks) * core::Mux::kBlockSize;
    switch (op.kind) {
      case WorkloadOp::kRead: {
        MUX_ASSIGN_OR_RETURN(
            vfs::FileHandle handle,
            mux.Open(FilePath(op.file_id), vfs::OpenFlags::kRead));
        auto read =
            mux.Read(handle, offset, core::Mux::kBlockSize, block_buf);
        (void)mux.Close(handle);
        return read.status();
      }
      case WorkloadOp::kWrite: {
        MUX_ASSIGN_OR_RETURN(
            vfs::FileHandle handle,
            mux.Open(FilePath(op.file_id), vfs::OpenFlags::kWrite));
        auto wrote =
            mux.Write(handle, offset, block_buf, core::Mux::kBlockSize);
        (void)mux.Close(handle);
        return wrote.status();
      }
      case WorkloadOp::kStat:
        return mux.Stat(FilePath(op.file_id)).status();
      case WorkloadOp::kReadDir:
        return mux.ReadDirPaged(DirPath(op.file_id), "", 32).status();
    }
    return Status::Ok();
  }

  // Closed-loop capacity probe: every worker back-to-back executes the same
  // mix it will see open-loop. The offered-load steps are fractions of this,
  // so the bench self-scales to the machine (and to sanitizer slowdowns).
  double Calibrate() {
    std::atomic<uint64_t> completed{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    threads.reserve(config_.workers);
    for (int w = 0; w < config_.workers; ++w) {
      threads.emplace_back([this, w, &completed, &stop] {
        ZipfianGenerator zipf(config_.files, config_.zipf_theta,
                              config_.seed + 7 * w + 1);
        WorkloadMix mix(config_.read_fraction, config_.write_fraction,
                        config_.meta_fraction);
        Rng rng(config_.seed ^ (0x51ed2700 + w));
        std::vector<uint8_t> buf(core::Mux::kBlockSize, 0xa5);
        uint64_t local = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          Op op;
          op.file_id = static_cast<uint32_t>(zipf.Next());
          op.kind = mix.Pick(rng);
          (void)ExecuteOp(op, buf.data());
          ++local;
        }
        completed.fetch_add(local, std::memory_order_relaxed);
      });
    }
    const auto start = Clock::now();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.calibrate_ms));
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : threads) {
      t.join();
    }
    const double seconds = SecondsSince(start);
    return seconds > 0 ? static_cast<double>(completed.load()) / seconds : 0;
  }

  void ResetStepCounters() {
    generated_.store(0, std::memory_order_relaxed);
    // The drop counter is the engine's own: the claim/drop handoff bumps it
    // exactly where the ledger gets its kDropMark, so the two cannot skew
    // (the old code rebased the MPMC queue's lifetime drop counter, a
    // second source of truth that drifted from the ledger).
    dropped_.store(0, std::memory_order_relaxed);
    completed_ok_.store(0, std::memory_order_relaxed);
    completed_err_.store(0, std::memory_order_relaxed);
    done_generating_.store(false, std::memory_order_relaxed);
    if (op_counts_ != nullptr) {
      for (uint64_t i = 0; i < config_.max_tracked_ops; ++i) {
        op_counts_[i].store(0, std::memory_order_relaxed);
      }
    }
  }

  // Progress samples are cumulative across the whole run (per-step counters
  // are rebased onto the running totals), so the monotonicity invariant the
  // test asserts holds across step boundaries too.
  void SampleProgress() {
    ProgressSample sample;
    sample.generated =
        cum_.generated + generated_.load(std::memory_order_relaxed);
    sample.dropped = cum_.dropped + dropped_.load(std::memory_order_relaxed);
    sample.completed = cum_.completed +
                       completed_ok_.load(std::memory_order_relaxed) +
                       completed_err_.load(std::memory_order_relaxed);
    progress_.push_back(sample);
  }

  void DispatcherLoop(double rate, uint64_t step_ns) {
    PoissonArrivals arrivals(rate, config_.seed + 17);
    ZipfianGenerator zipf(config_.files, config_.zipf_theta,
                          config_.seed + 23);
    WorkloadMix mix(config_.read_fraction, config_.write_fraction,
                    config_.meta_fraction);
    Rng rng(config_.seed + 29);
    uint64_t sched = 0;
    uint64_t seq = 0;
    uint64_t last_sample_ns = 0;
    while (true) {
      sched += arrivals.NextDeltaNs();
      if (sched >= step_ns) {
        break;
      }
      // Wait for the scheduled instant. When the system (or this 1-core
      // machine) falls behind, the schedule does NOT slip: sched keeps its
      // Poisson timeline and latency is measured against it.
      while (RelNs() + 100'000 < sched) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      while (RelNs() < sched) {
        // spin the last <=100us
      }
      Op op;
      op.seq = seq;
      op.sched_ns = sched;
      op.file_id = static_cast<uint32_t>(zipf.Next());
      op.kind = mix.Pick(rng);
      if (async_ != nullptr) {
        // Drop accounting lives in the continuation: a full ring rejects
        // the submission and the continuation runs inline as cancelled.
        SubmitAsync(op);
      } else if (cont_state_ != nullptr) {
        // The in-flight bound is the semaphore, not a worker pool: a full
        // window drops the op instead of blocking the dispatcher.
        if (cont_inflight_.load(std::memory_order_relaxed) >= cont_window_) {
          DropOp(op.seq);
        } else {
          SubmitContinuation(op);
        }
      } else if (!queue_.TryPush(op)) {
        DropOp(op.seq);
      }
      ++seq;
      generated_.fetch_add(1, std::memory_order_relaxed);
      const uint64_t now = RelNs();
      if (now - last_sample_ns > 50'000'000) {
        last_sample_ns = now;
        SampleProgress();
        if (async_ != nullptr && async_state_ != nullptr) {
          const uint64_t depth = async_->QueueDepth(kOpsQueue);
          async_state_->qdepth_sum += depth;
          async_state_->qdepth_samples++;
          async_state_->qdepth_max =
              std::max(async_state_->qdepth_max, depth);
        }
        if (cont_state_ != nullptr) {
          const uint64_t depth = static_cast<uint64_t>(std::max<int64_t>(
              0, cont_inflight_.load(std::memory_order_relaxed)));
          cont_state_->inflight_sum += depth;
          cont_state_->inflight_samples++;
          cont_state_->inflight_max =
              std::max(cont_state_->inflight_max, depth);
        }
      }
    }
    done_generating_.store(true, std::memory_order_release);
  }

  // The single place an op is dropped: the counter and the ledger mark move
  // together, so the per-step "generated == executed + dropped" assertion
  // and the ledger tally can never disagree about what a drop was. (The old
  // handoff counted drops inside the MPMC queue and separately STORED a
  // ledger sentinel — an op that was both dropped and executed scored as a
  // clean drop, and the two drop counts could drift.)
  void DropOp(uint64_t seq) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (op_counts_ != nullptr && seq < config_.max_tracked_ops) {
      op_counts_[seq].fetch_add(kDropMark, std::memory_order_relaxed);
    }
  }

  // Submits one op into the client submission ring. The server thread runs
  // the op; the core's completion dispatcher (one thread) runs the
  // continuation, which does ALL per-op accounting — so the recorder and
  // sums in async_state_ need no locks.
  void SubmitAsync(const Op& op) {
    auto dispatch_ns = std::make_shared<uint64_t>(0);
    core::AsyncIoRequest request;
    request.queue = kOpsQueue;
    request.is_write = op.kind == WorkloadOp::kWrite;
    request.bytes = core::Mux::kBlockSize;
    request.fn = [this, op, dispatch_ns]() -> Status {
      *dispatch_ns = RelNs();
      thread_local std::vector<uint8_t> buf(core::Mux::kBlockSize, 0x5a);
      return ExecuteOp(op, buf.data());
    };
    AsyncStepState* state = async_state_.get();
    request.on_complete = [this, op, dispatch_ns,
                           state](const core::AsyncCompletion& completion) {
      if (completion.cancelled) {
        DropOp(op.seq);
      } else {
        obs::OpPhases phase;
        phase.arrival_ns = op.sched_ns;
        phase.dispatch_ns = *dispatch_ns;
        phase.completion_ns = RelNs();
        phases_.Record(phase);
        state->recorder->Record(op.sched_ns, phase.TotalNs());
        state->queue_sum += phase.QueueNs();
        state->service_sum += phase.ServiceNs();
        state->ops++;
        (completion.status.ok() ? completed_ok_ : completed_err_)
            .fetch_add(1, std::memory_order_relaxed);
        if (op_counts_ != nullptr && op.seq < config_.max_tracked_ops) {
          op_counts_[op.seq].fetch_add(1, std::memory_order_relaxed);
        }
      }
      state->delivered.fetch_add(1, std::memory_order_release);
    };
    (void)async_->Submit(std::move(request));
  }

  struct WorkerState {
    std::unique_ptr<TimedLatencyRecorder> recorder;
    uint64_t queue_sum = 0;
    uint64_t service_sum = 0;
    uint64_t ops = 0;
  };

  // Per-step accounting for the continuation client path. Done callbacks
  // run on Mux resume workers (plural) or inline on the dispatcher, so the
  // recorder/sums take a mutex; the inflight_* fields are dispatcher-only;
  // `delivered` is the join barrier.
  struct ContStepState {
    std::mutex mu;
    std::unique_ptr<TimedLatencyRecorder> recorder;
    uint64_t queue_sum = 0;
    uint64_t service_sum = 0;
    uint64_t ops = 0;
    uint64_t inflight_sum = 0;
    uint64_t inflight_samples = 0;
    uint64_t inflight_max = 0;
    std::atomic<uint64_t> delivered{0};  // done callbacks run (any outcome)
  };

  // Completion accounting for one continuation-mode op; runs on whatever
  // thread the op's done callback fires on.
  void FinishContinuationOp(const Op& op, uint64_t dispatch_ns,
                            const Status& status) {
    ContStepState* state = cont_state_.get();
    obs::OpPhases phase;
    phase.arrival_ns = op.sched_ns;
    phase.dispatch_ns = dispatch_ns;
    phase.completion_ns = RelNs();
    phases_.Record(phase);
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->recorder->Record(op.sched_ns, phase.TotalNs());
      state->queue_sum += phase.QueueNs();
      state->service_sum += phase.ServiceNs();
      state->ops++;
    }
    (status.ok() ? completed_ok_ : completed_err_)
        .fetch_add(1, std::memory_order_relaxed);
    if (op_counts_ != nullptr && op.seq < config_.max_tracked_ops) {
      op_counts_[op.seq].fetch_add(1, std::memory_order_relaxed);
    }
    cont_inflight_.fetch_sub(1, std::memory_order_release);
    state->delivered.fetch_add(1, std::memory_order_release);
  }

  // Issues one op through the op state machine: Open runs sync on the
  // dispatcher (metadata, no device wait), the data transfer suspends in
  // Mux::{Read,Write}Async, and the done callback closes and accounts.
  // Metadata ops have no async variant and run inline. The per-op buffer
  // is heap-held until done (Mux requires it valid across suspension).
  void SubmitContinuation(const Op& op) {
    cont_inflight_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t dispatch_ns = RelNs();
    core::Mux& mux = rig_->mux();
    const uint64_t offset =
        (op.file_id % config_.file_blocks) * core::Mux::kBlockSize;
    switch (op.kind) {
      case WorkloadOp::kRead: {
        auto handle = mux.Open(FilePath(op.file_id), vfs::OpenFlags::kRead);
        if (!handle.ok()) {
          FinishContinuationOp(op, dispatch_ns, handle.status());
          return;
        }
        const vfs::FileHandle h = *handle;
        auto buf = std::make_shared<std::vector<uint8_t>>(
            core::Mux::kBlockSize);
        mux.ReadAsync(h, offset, core::Mux::kBlockSize, buf->data(),
                      [this, op, dispatch_ns, h, buf](Result<uint64_t> r) {
                        (void)rig_->mux().Close(h);
                        FinishContinuationOp(op, dispatch_ns, r.status());
                      });
        return;
      }
      case WorkloadOp::kWrite: {
        auto handle = mux.Open(FilePath(op.file_id), vfs::OpenFlags::kWrite);
        if (!handle.ok()) {
          FinishContinuationOp(op, dispatch_ns, handle.status());
          return;
        }
        const vfs::FileHandle h = *handle;
        auto buf = std::make_shared<std::vector<uint8_t>>(
            core::Mux::kBlockSize, 0x5a);
        mux.WriteAsync(h, offset, buf->data(), core::Mux::kBlockSize,
                       [this, op, dispatch_ns, h, buf](Result<uint64_t> r) {
                         (void)rig_->mux().Close(h);
                         FinishContinuationOp(op, dispatch_ns, r.status());
                       });
        return;
      }
      case WorkloadOp::kStat:
        FinishContinuationOp(op, dispatch_ns,
                             mux.Stat(FilePath(op.file_id)).status());
        return;
      case WorkloadOp::kReadDir:
        FinishContinuationOp(
            op, dispatch_ns,
            mux.ReadDirPaged(DirPath(op.file_id), "", 32).status());
        return;
    }
  }

  // Per-step accounting for the async client path. The recorder/sums are
  // touched only by the core's completion dispatcher thread; the qdepth
  // fields only by the engine dispatcher; `delivered` is the join barrier.
  struct AsyncStepState {
    std::unique_ptr<TimedLatencyRecorder> recorder;
    uint64_t queue_sum = 0;
    uint64_t service_sum = 0;
    uint64_t ops = 0;
    uint64_t qdepth_sum = 0;
    uint64_t qdepth_samples = 0;
    uint64_t qdepth_max = 0;
    std::atomic<uint64_t> delivered{0};  // continuations run (any outcome)
  };

  void StartAsyncClient() {
    async_ = std::make_unique<core::AsyncIoCore>(&rig_->clock(),
                                                 &rig_->mux().metrics());
    async_->RegisterQueue(kOpsQueue, "client_ops",
                          static_cast<uint32_t>(config_.workers),
                          /*servers=*/config_.workers,
                          /*bound=*/config_.queue_capacity);
  }

  void StopAsyncClient() {
    async_->Shutdown();
    async_.reset();
  }

  // Closed-loop capacity probe through the async submission path at the
  // same worker (server) count: one submitting loop keeps a small in-flight
  // window saturated, so throughput is bounded by the servers, exactly as
  // Calibrate() is bounded by its worker threads. The async-vs-sync
  // capacity ratio the bench reports compares the two.
  double CalibrateAsync() {
    StartAsyncClient();
    std::atomic<uint64_t> completed{0};
    std::atomic<int64_t> in_flight{0};
    const int64_t window = static_cast<int64_t>(config_.workers) * 4;
    ZipfianGenerator zipf(config_.files, config_.zipf_theta,
                          config_.seed + 301);
    WorkloadMix mix(config_.read_fraction, config_.write_fraction,
                    config_.meta_fraction);
    Rng rng(config_.seed + 307);
    const auto start = Clock::now();
    const auto deadline =
        start + std::chrono::milliseconds(config_.calibrate_ms);
    while (Clock::now() < deadline) {
      if (in_flight.load(std::memory_order_relaxed) >= window) {
        std::this_thread::yield();
        continue;
      }
      Op op;
      op.file_id = static_cast<uint32_t>(zipf.Next());
      op.kind = mix.Pick(rng);
      in_flight.fetch_add(1, std::memory_order_relaxed);
      core::AsyncIoRequest request;
      request.queue = kOpsQueue;
      request.fn = [this, op]() -> Status {
        thread_local std::vector<uint8_t> buf(core::Mux::kBlockSize, 0x5a);
        return ExecuteOp(op, buf.data());
      };
      request.on_complete =
          [&completed, &in_flight](const core::AsyncCompletion&) {
            completed.fetch_add(1, std::memory_order_relaxed);
            in_flight.fetch_sub(1, std::memory_order_release);
          };
      (void)async_->Submit(std::move(request));
    }
    // Every continuation references the stack state above; drain before it
    // goes out of scope.
    while (in_flight.load(std::memory_order_acquire) > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const double seconds = SecondsSince(start);
    StopAsyncClient();
    return seconds > 0 ? static_cast<double>(completed.load()) / seconds : 0;
  }

  struct ProbePoint {
    double ops_s = 0.0;
    double mean_inflight = 0.0;
  };

  // Closed-loop capacity + mean in-flight through the submission-ring
  // client at `servers` ring servers. "In flight" here is the number of ops
  // EXECUTING inside a server fn — the quantity the old path bounds at one
  // blocked thread per op, so mean_inflight <= servers by construction.
  ProbePoint ProbeAsyncClient(int servers) {
    auto async = std::make_unique<core::AsyncIoCore>(&rig_->clock(),
                                                     &rig_->mux().metrics());
    async->RegisterQueue(kOpsQueue, "curve_ops",
                         static_cast<uint32_t>(servers), servers,
                         config_.queue_capacity);
    std::atomic<uint64_t> completed{0};
    std::atomic<int64_t> in_flight{0};
    std::atomic<int64_t> executing{0};
    const int64_t window = static_cast<int64_t>(servers) * 4;
    ZipfianGenerator zipf(config_.files, config_.zipf_theta,
                          config_.seed + 401);
    WorkloadMix mix(config_.read_fraction, config_.write_fraction,
                    config_.meta_fraction);
    Rng rng(config_.seed + 409);
    uint64_t sample_sum = 0;
    uint64_t samples = 0;
    const auto start = Clock::now();
    const auto deadline =
        start + std::chrono::milliseconds(config_.calibrate_ms);
    while (Clock::now() < deadline) {
      sample_sum += static_cast<uint64_t>(
          std::max<int64_t>(0, executing.load(std::memory_order_relaxed)));
      samples++;
      if (in_flight.load(std::memory_order_relaxed) >= window) {
        std::this_thread::yield();
        continue;
      }
      Op op;
      op.file_id = static_cast<uint32_t>(zipf.Next());
      op.kind = mix.Pick(rng);
      in_flight.fetch_add(1, std::memory_order_relaxed);
      core::AsyncIoRequest request;
      request.queue = kOpsQueue;
      request.fn = [this, op, &executing]() -> Status {
        executing.fetch_add(1, std::memory_order_relaxed);
        thread_local std::vector<uint8_t> buf(core::Mux::kBlockSize, 0x5a);
        const Status status = ExecuteOp(op, buf.data());
        executing.fetch_sub(1, std::memory_order_relaxed);
        return status;
      };
      request.on_complete =
          [&completed, &in_flight](const core::AsyncCompletion&) {
            completed.fetch_add(1, std::memory_order_relaxed);
            in_flight.fetch_sub(1, std::memory_order_release);
          };
      (void)async->Submit(std::move(request));
    }
    while (in_flight.load(std::memory_order_acquire) > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const double seconds = SecondsSince(start);
    async->Shutdown();
    ProbePoint point;
    point.ops_s =
        seconds > 0 ? static_cast<double>(completed.load()) / seconds : 0;
    point.mean_inflight =
        samples > 0 ? static_cast<double>(sample_sum) / samples : 0;
    return point;
  }

  // Closed-loop capacity + mean in-flight through Mux::{Read,Write}Async
  // with the semaphore window (16 per nominal worker). No thread blocks per
  // op: in-flight counts ops suspended inside the op state machine, so the
  // mean tracks the window, not a thread count.
  ProbePoint ProbeContinuationClient(int workers) {
    std::atomic<uint64_t> completed{0};
    std::atomic<int64_t> in_flight{0};
    const int64_t window =
        static_cast<int64_t>(workers) *
        std::max(1, config_.continuation_window_per_worker);
    core::Mux& mux = rig_->mux();
    ZipfianGenerator zipf(config_.files, config_.zipf_theta,
                          config_.seed + 501);
    WorkloadMix mix(config_.read_fraction, config_.write_fraction,
                    config_.meta_fraction);
    Rng rng(config_.seed + 509);
    uint64_t sample_sum = 0;
    uint64_t samples = 0;
    const auto start = Clock::now();
    const auto deadline =
        start + std::chrono::milliseconds(config_.calibrate_ms);
    while (Clock::now() < deadline) {
      sample_sum += static_cast<uint64_t>(
          std::max<int64_t>(0, in_flight.load(std::memory_order_relaxed)));
      samples++;
      if (in_flight.load(std::memory_order_relaxed) >= window) {
        std::this_thread::yield();
        continue;
      }
      Op op;
      op.file_id = static_cast<uint32_t>(zipf.Next());
      op.kind = mix.Pick(rng);
      const uint64_t offset =
          (op.file_id % config_.file_blocks) * core::Mux::kBlockSize;
      switch (op.kind) {
        case WorkloadOp::kRead: {
          auto handle = mux.Open(FilePath(op.file_id), vfs::OpenFlags::kRead);
          if (!handle.ok()) {
            completed.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          const vfs::FileHandle h = *handle;
          auto buf = std::make_shared<std::vector<uint8_t>>(
              core::Mux::kBlockSize);
          in_flight.fetch_add(1, std::memory_order_relaxed);
          mux.ReadAsync(h, offset, core::Mux::kBlockSize, buf->data(),
                        [this, h, buf, &completed,
                         &in_flight](Result<uint64_t>) {
                          (void)rig_->mux().Close(h);
                          completed.fetch_add(1, std::memory_order_relaxed);
                          in_flight.fetch_sub(1, std::memory_order_release);
                        });
          break;
        }
        case WorkloadOp::kWrite: {
          auto handle =
              mux.Open(FilePath(op.file_id), vfs::OpenFlags::kWrite);
          if (!handle.ok()) {
            completed.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          const vfs::FileHandle h = *handle;
          auto buf = std::make_shared<std::vector<uint8_t>>(
              core::Mux::kBlockSize, 0x5a);
          in_flight.fetch_add(1, std::memory_order_relaxed);
          mux.WriteAsync(h, offset, buf->data(), core::Mux::kBlockSize,
                         [this, h, buf, &completed,
                          &in_flight](Result<uint64_t>) {
                           (void)rig_->mux().Close(h);
                           completed.fetch_add(1, std::memory_order_relaxed);
                           in_flight.fetch_sub(1, std::memory_order_release);
                         });
          break;
        }
        case WorkloadOp::kStat:
          (void)mux.Stat(FilePath(op.file_id));
          completed.fetch_add(1, std::memory_order_relaxed);
          break;
        case WorkloadOp::kReadDir:
          (void)mux.ReadDirPaged(DirPath(op.file_id), "", 32);
          completed.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
    // Done callbacks reference the stack state above; drain before return.
    while (in_flight.load(std::memory_order_acquire) > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const double seconds = SecondsSince(start);
    ProbePoint point;
    point.ops_s =
        seconds > 0 ? static_cast<double>(completed.load()) / seconds : 0;
    point.mean_inflight =
        samples > 0 ? static_cast<double>(sample_sum) / samples : 0;
    return point;
  }

  void WorkerLoop(WorkerState* state) {
    std::vector<uint8_t> buf(core::Mux::kBlockSize, 0x5a);
    Op op;
    while (true) {
      if (!queue_.TryPop(&op)) {
        if (done_generating_.load(std::memory_order_acquire)) {
          return;
        }
        std::this_thread::yield();
        continue;
      }
      obs::OpPhases phase;
      phase.arrival_ns = op.sched_ns;
      phase.dispatch_ns = RelNs();
      const Status status = ExecuteOp(op, buf.data());
      phase.completion_ns = RelNs();
      phases_.Record(phase);
      state->recorder->Record(op.sched_ns, phase.TotalNs());
      state->queue_sum += phase.QueueNs();
      state->service_sum += phase.ServiceNs();
      state->ops++;
      (status.ok() ? completed_ok_ : completed_err_)
          .fetch_add(1, std::memory_order_relaxed);
      if (op_counts_ != nullptr && op.seq < config_.max_tracked_ops) {
        op_counts_[op.seq].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // Chaos: policy rounds in a tight-ish loop, rotating per-tier fault
  // windows, and periodic checkpoints — all while the open-loop traffic
  // flows.
  void ChaosLoop(std::atomic<bool>* stop, TrafficResult* result) {
    core::Mux& mux = rig_->mux();
    // One checkpoint and one policy round run to completion per chaos step
    // even if the offered window ends first — at full scale on few cores
    // (or under sanitizer slowdowns) a single namespace-wide pass can
    // outlast a short step, and the point of the chaos variant is that
    // both race the traffic at least once.
    if (mux.Checkpoint().ok()) {
      result->checkpoints_ok++;
    } else {
      result->checkpoints_failed++;
    }
    (void)mux.RunPolicyMigrations();
    result->policy_rounds++;
    size_t fault_tier = 0;
    uint64_t rounds = 0;
    while (!stop->load(std::memory_order_acquire)) {
      // Checkpoint every other cycle.
      if (rounds++ % 2 == 0) {
        if (mux.Checkpoint().ok()) {
          result->checkpoints_ok++;
        } else {
          result->checkpoints_failed++;
        }
        if (stop->load(std::memory_order_acquire)) {
          break;
        }
      }
      // Fault window on a rotating tier.
      vfs::FaultInjectingFs& faults = rig_->faults(fault_tier++);
      const auto before = faults.fault_stats();
      faults.SetErrorProbability(vfs::FaultOp::kRead,
                                 config_.fault_probability);
      faults.SetErrorProbability(vfs::FaultOp::kWrite,
                                 config_.fault_probability);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      faults.ClearFaults();
      result->faults_injected +=
          faults.fault_stats().injected - before.injected;
      if (stop->load(std::memory_order_acquire)) {
        break;
      }
      // One policy round.
      (void)mux.RunPolicyMigrations();
      result->policy_rounds++;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  StepResult RunStep(double fraction, double rate, bool chaos,
                     TrafficResult* result) {
    StepResult step;
    step.load_fraction = fraction;
    step.offered_ops_s = rate;
    step.chaos = chaos;

    ResetStepCounters();
    const core::ScmCacheStats cache_before = rig_->mux().CacheStats();
    const uint64_t replica_hits_before =
        rig_->mux().metrics().CounterValue("mux.replica.read_hits");
    const uint64_t step_ns = config_.step_ms * 1'000'000ULL;
    const uint64_t bucket_ns = config_.bucket_ms * 1'000'000ULL;
    const size_t buckets = config_.step_ms / config_.bucket_ms + 2;

    std::vector<WorkerState> states;
    if (config_.async_mode) {
      async_state_ = std::make_unique<AsyncStepState>();
      async_state_->recorder =
          std::make_unique<TimedLatencyRecorder>(bucket_ns, buckets);
      StartAsyncClient();
    } else if (config_.continuation_mode) {
      cont_state_ = std::make_unique<ContStepState>();
      cont_state_->recorder =
          std::make_unique<TimedLatencyRecorder>(bucket_ns, buckets);
      cont_window_ = static_cast<int64_t>(config_.workers) *
                     std::max(1, config_.continuation_window_per_worker);
      cont_inflight_.store(0, std::memory_order_relaxed);
    } else {
      states.resize(config_.workers);
      for (auto& state : states) {
        state.recorder =
            std::make_unique<TimedLatencyRecorder>(bucket_ns, buckets);
      }
    }

    epoch_ = Clock::now();
    std::atomic<bool> chaos_stop{false};
    std::thread chaos_thread;
    if (chaos) {
      chaos_thread =
          std::thread([this, &chaos_stop, result] { ChaosLoop(&chaos_stop,
                                                              result); });
    }
    std::vector<std::thread> workers;
    if (!config_.async_mode && !config_.continuation_mode) {
      workers.reserve(config_.workers);
      for (int w = 0; w < config_.workers; ++w) {
        workers.emplace_back([this, &states, w] { WorkerLoop(&states[w]); });
      }
    }
    DispatcherLoop(rate, step_ns);
    for (auto& t : workers) {
      t.join();  // workers drain the queue before exiting
    }
    if (config_.async_mode) {
      // Await the completion dispatcher: every generated op was submitted,
      // and every submission delivers its continuation exactly once
      // (rejections included), so this terminates.
      const uint64_t target = generated_.load(std::memory_order_relaxed);
      while (async_state_->delivered.load(std::memory_order_acquire) <
             target) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      StopAsyncClient();
    }
    if (cont_state_ != nullptr) {
      // Await the op state machine: every non-dropped op's done callback
      // fires exactly once, and drops are counted at submission time, so
      // delivered + dropped converges on generated.
      const uint64_t target = generated_.load(std::memory_order_relaxed);
      while (cont_state_->delivered.load(std::memory_order_acquire) +
                 dropped_.load(std::memory_order_relaxed) <
             target) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (chaos) {
      chaos_stop.store(true, std::memory_order_release);
      chaos_thread.join();
    }
    // Make sure every programmed fault window is off before the next step.
    for (size_t t = 0; t < TrafficRig::kTierCount; ++t) {
      rig_->faults(t).ClearFaults();
    }
    SampleProgress();
    // Workers drain past the nominal window; charge goodput against the
    // time traffic actually flowed, not the offered window.
    const double elapsed_s = static_cast<double>(RelNs()) / 1e9;

    step.generated = generated_.load(std::memory_order_relaxed);
    step.dropped = dropped_.load(std::memory_order_relaxed);
    step.completed_ok = completed_ok_.load(std::memory_order_relaxed);
    step.completed_err = completed_err_.load(std::memory_order_relaxed);
    step.goodput_ops_s =
        elapsed_s > 0 ? static_cast<double>(step.completed_ok) / elapsed_s
                      : 0.0;
    cum_.generated += step.generated;
    cum_.dropped += step.dropped;
    cum_.completed += step.completed_ok + step.completed_err;

    TimedLatencyRecorder merged(bucket_ns, buckets);
    uint64_t queue_sum = 0;
    uint64_t service_sum = 0;
    uint64_t ops = 0;
    if (async_state_ != nullptr) {
      merged.MergeFrom(*async_state_->recorder);
      queue_sum = async_state_->queue_sum;
      service_sum = async_state_->service_sum;
      ops = async_state_->ops;
      if (async_state_->qdepth_samples > 0) {
        step.mean_qdepth =
            static_cast<double>(async_state_->qdepth_sum) /
            static_cast<double>(async_state_->qdepth_samples);
      }
      step.max_qdepth = async_state_->qdepth_max;
      async_state_.reset();
    } else if (cont_state_ != nullptr) {
      merged.MergeFrom(*cont_state_->recorder);
      queue_sum = cont_state_->queue_sum;
      service_sum = cont_state_->service_sum;
      ops = cont_state_->ops;
      if (cont_state_->inflight_samples > 0) {
        step.mean_inflight =
            static_cast<double>(cont_state_->inflight_sum) /
            static_cast<double>(cont_state_->inflight_samples);
      }
      step.max_inflight = cont_state_->inflight_max;
      cont_state_.reset();
    } else {
      for (const auto& state : states) {
        merged.MergeFrom(*state.recorder);
        queue_sum += state.queue_sum;
        service_sum += state.service_sum;
        ops += state.ops;
      }
    }
    const size_t skip = config_.warmup_ms / config_.bucket_ms;
    const FineHistogram hist = merged.Merged(skip);
    step.p50_ns = hist.Percentile(0.50);
    step.p99_ns = hist.Percentile(0.99);
    step.p999_ns = hist.Percentile(0.999);
    if (ops > 0) {
      step.mean_queue_ns = static_cast<double>(queue_sum) / ops;
      step.mean_service_ns = static_cast<double>(service_sum) / ops;
    }

    // Exactly-once accounting: generated == executed + dropped, every
    // tracked seq ran exactly once or was dropped exactly once, and the
    // ledger's drop count agrees with the drop counter (the two are bumped
    // together in DropOp, so a mismatch means a claim/drop handoff bug).
    const uint64_t executed = step.completed_ok + step.completed_err;
    step.accounting_exact = executed + step.dropped == step.generated;
    if (op_counts_ != nullptr) {
      const uint64_t tracked =
          std::min<uint64_t>(step.generated, config_.max_tracked_ops);
      const LedgerTally tally = TallyLedger(op_counts_.get(), tracked);
      step.lost_ops = tally.lost;
      step.duplicated_ops = tally.duplicated;
      step.ledger_dropped = tally.dropped;
      if (tally.lost != 0 || tally.duplicated != 0) {
        step.accounting_exact = false;
      }
      if (tracked == step.generated && tally.dropped != step.dropped) {
        step.accounting_exact = false;
      }
    }

    const core::ScmCacheStats cache_after = rig_->mux().CacheStats();
    step.cache_hits = cache_after.hits - cache_before.hits;
    step.cache_misses = cache_after.misses - cache_before.misses;
    const uint64_t probes = step.cache_hits + step.cache_misses;
    step.cache_hit_rate =
        probes > 0 ? static_cast<double>(step.cache_hits) / probes : 0.0;
    step.replica_read_hits =
        rig_->mux().metrics().CounterValue("mux.replica.read_hits") -
        replica_hits_before;
    step.replica_hit_rate =
        step.completed_ok > 0
            ? static_cast<double>(step.replica_read_hits) / step.completed_ok
            : 0.0;
    return step;
  }

  // The client submission ring lives under an id far above any tier id.
  static constexpr core::TierId kOpsQueue = 1000;

  const TrafficConfig config_;
  std::unique_ptr<TrafficRig> rig_;
  MpmcQueue<Op> queue_;
  std::unique_ptr<core::AsyncIoCore> async_;  // async_mode client path
  std::unique_ptr<AsyncStepState> async_state_;
  std::unique_ptr<ContStepState> cont_state_;  // continuation_mode path
  std::atomic<int64_t> cont_inflight_{0};      // the in-flight semaphore
  int64_t cont_window_ = 0;
  obs::PhaseRecorder phases_;
  Clock::time_point epoch_{};
  std::atomic<uint64_t> generated_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> completed_ok_{0};
  std::atomic<uint64_t> completed_err_{0};
  std::atomic<bool> done_generating_{false};
  ProgressSample cum_;  // totals from completed steps (dispatcher-only)
  std::unique_ptr<std::atomic<uint8_t>[]> op_counts_;
  std::vector<ProgressSample> progress_;
};

}  // namespace mux::bench

#endif  // MUX_BENCH_TRAFFIC_ENGINE_LIB_H_
