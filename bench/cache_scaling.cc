// SCM cache concurrency + admission benchmarks (ISSUE 8).
//
// Exercises CacheController directly over a PM device — no Mux data path —
// so the measured quantity is the cache itself. Three experiments:
//
//   1. probe_scaling   — 1..8 threads of zipfian (theta 0.99) TryRead/OnMiss
//                        traffic over a warmed cache, sharded (16) vs the
//                        global-lock ablation (shards = 1). Like
//                        bench/metadata_scaling, the contention under test
//                        is mutex convoying, invisible to the simulated
//                        clock, so throughput is wall-clock ops/s.
//   2. scan_resistance — warm a hot set to half capacity, stream a one-touch
//                        scan 8x the capacity through the cache, and compare
//                        the hot set's hit rate before/after. The frequency
//                        sketch (admission threshold) plus MGLRU's
//                        oldest-generation insertion must keep the drop
//                        under 10%.
//   3. agg_ablation    — admit a block stream with the aggregation buffer on
//                        (1 MiB across 16 per-shard lanes) vs off, counting
//                        DAX write ops at the device: staging must produce
//                        FEWER, LARGER writes (cache.agg.{flushes,bytes}
//                        metrics).
//   4. staging_scaling — 1..8 threads of admission-heavy traffic (threshold
//                        1, fresh keys), per-shard staging lanes (16 shards)
//                        vs the single-lane ablation (shards = 1, the old
//                        global aggregation buffer). Admissions used to
//                        serialize on one global agg_mu_; per-shard lanes
//                        must scale (wall ops/s).
//
// --check applies core-aware floors (sharded >= 1.3x global and per-shard
// staging >= 1.2x single-lane at max threads, both waived below 4 hardware
// threads; the scan and aggregation checks are not core-dependent). Results
// go to stdout and BENCH_cache.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/core/cache_controller.h"
#include "src/device/pm_device.h"
#include "src/fs/novafs/novafs.h"

namespace mux::bench {
namespace {

using core::CacheController;

constexpr uint64_t kBlock = CacheController::kBlockSize;
constexpr int kMaxThreads = 8;
constexpr uint64_t kCapacityBlocks = 4096;  // 16 MiB cache
constexpr uint64_t kKeySpace = kCapacityBlocks * 4;
constexpr auto kProbeDuration = std::chrono::milliseconds(250);

using WallClock = std::chrono::steady_clock;

double Seconds(WallClock::duration d) {
  return std::chrono::duration<double>(d).count();
}

// One self-contained PM + NovaFs + cache stack per experiment, so device
// stats and sim-clock state never leak between runs.
struct CacheRig {
  SimClock clock;
  device::PmDevice pm;
  fs::NovaFs novafs;
  core::CostModel costs;
  CacheController cache;

  explicit CacheRig(CacheController::Options options)
      : pm(device::DeviceProfile::OptanePm(256ULL << 20), &clock),
        novafs(&pm, &clock),
        cache(&novafs, &clock, costs, std::move(options)) {
    if (!novafs.Format().ok() || !cache.Init().ok()) {
      std::fprintf(stderr, "cache rig setup failed\n");
      std::exit(1);
    }
  }
};

CacheController::Options BaseOptions(uint32_t shards) {
  CacheController::Options options;
  options.capacity_blocks = kCapacityBlocks;
  options.shards = shards;
  options.admission_threshold = 2;
  return options;
}

// Warm the cache with the zipfian head so the sweep measures a realistic
// hit-dominated mix rather than pure admission churn.
void Warm(CacheController& cache) {
  std::vector<uint8_t> data(kBlock, 0x5A);
  for (uint64_t b = 0; b < kCapacityBlocks / 2; ++b) {
    cache.OnMiss(1, b, data.data());
    cache.OnMiss(1, b, data.data());
  }
  cache.FlushAggregationBuffer();
}

// N threads of zipfian probe traffic; returns aggregate wall ops/s.
double ProbeOpsPerSec(CacheRig& rig, int threads) {
  std::atomic<uint64_t> total_ops{0};
  std::atomic<bool> stop{false};
  const auto start_line = WallClock::now() + std::chrono::milliseconds(20);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ScopedTimeCursor cursor(&rig.clock);
      ZipfianGenerator zipf(kKeySpace, 0.99, /*seed=*/17 + t);
      std::vector<uint8_t> data(kBlock, 0x5A);
      std::vector<uint8_t> out(kBlock);
      std::this_thread::sleep_until(start_line);
      uint64_t ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t block = zipf.Next();
        if (!rig.cache.TryRead(1, block, 0, kBlock, out.data())) {
          rig.cache.OnMiss(1, block, data.data());
        }
        ++ops;
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_until(start_line + kProbeDuration);
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  return static_cast<double>(total_ops.load()) / Seconds(kProbeDuration);
}

void RunProbeSweep(uint32_t shards, JsonReport& report, double* ops_max) {
  CacheRig rig(BaseOptions(shards));
  Warm(rig.cache);
  const std::string scenario =
      shards > 1 ? "probe_sharded" : "probe_global";
  for (int threads : {1, 2, 4, 8}) {
    const double ops = ProbeOpsPerSec(rig, threads);
    char label[64];
    std::snprintf(label, sizeof(label), "%d thread(s), %s", threads,
                  shards > 1 ? "sharded(16)" : "global(1)");
    PrintRow(label, ops / 1e6, "Mops/s (wall)");
    char key[64];
    std::snprintf(key, sizeof(key), "threads_%d_ops_per_sec", threads);
    report.Add(scenario, key, ops);
    if (threads == kMaxThreads) {
      *ops_max = ops;
    }
  }
  const auto stats = rig.cache.stats();
  const double total = static_cast<double>(stats.hits + stats.misses);
  report.Add(scenario, "hit_rate",
             total > 0 ? static_cast<double>(stats.hits) / total : 0.0);
  if (!rig.cache.CheckConsistency().ok()) {
    std::fprintf(stderr, "cache inconsistent after probe sweep\n");
    std::exit(1);
  }
}

double HotSetHitRate(CacheController& cache, uint64_t hot_blocks) {
  std::vector<uint8_t> out(kBlock);
  uint64_t hits = 0;
  for (uint64_t b = 0; b < hot_blocks; ++b) {
    hits += cache.TryRead(1, b, 0, kBlock, out.data()) ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(hot_blocks);
}

// Warm hot set, stream one-touch scan, compare hot hit rates.
void RunScanResistance(JsonReport& report, double* drop) {
  CacheRig rig(BaseOptions(16));
  constexpr uint64_t kHotBlocks = kCapacityBlocks / 2;
  std::vector<uint8_t> data(kBlock, 0x5A);
  for (uint64_t b = 0; b < kHotBlocks; ++b) {
    rig.cache.OnMiss(1, b, data.data());
    rig.cache.OnMiss(1, b, data.data());
  }
  rig.cache.FlushAggregationBuffer();
  const double before = HotSetHitRate(rig.cache, kHotBlocks);

  std::vector<uint8_t> out(kBlock);
  for (uint64_t b = 0; b < 8 * kCapacityBlocks; ++b) {
    if (!rig.cache.TryRead(2, b, 0, kBlock, out.data())) {
      rig.cache.OnMiss(2, b, data.data());
    }
  }
  const double after = HotSetHitRate(rig.cache, kHotBlocks);
  *drop = before - after;

  PrintRow("hot-set hit rate before scan", before * 100.0, "%");
  PrintRow("hot-set hit rate after 8x scan", after * 100.0, "%");
  PrintRow("drop", *drop * 100.0, "% (acceptance: < 10)");
  report.Add("scan_resistance", "hit_rate_before", before);
  report.Add("scan_resistance", "hit_rate_after", after);
  report.Add("scan_resistance", "drop", *drop);
  const auto stats = rig.cache.stats();
  report.Add("scan_resistance", "scan_admissions",
             static_cast<double>(stats.admissions) - kHotBlocks);
  if (!rig.cache.CheckConsistency().ok()) {
    std::fprintf(stderr, "cache inconsistent after scan\n");
    std::exit(1);
  }
}

// Admission write coalescing: DAX write ops with the aggregation buffer on
// vs off, for the same admitted-block stream.
void RunAggAblation(JsonReport& report, uint64_t* direct_writes,
                    uint64_t* agg_writes, double* mean_flush_bytes) {
  constexpr uint64_t kAdmissions = 2048;
  // 1 MiB across 16 shards = 16-block (64 KiB) lanes, so coalescing stays
  // well above the 4x floor even with partial end-of-run flushes.
  constexpr uint64_t kAggBytes = 1024 * 1024;
  auto run = [&](uint64_t agg_bytes) -> uint64_t {
    auto options = BaseOptions(16);
    options.admission_threshold = 1;
    options.agg_buffer_bytes = agg_bytes;
    CacheRig rig(options);
    std::vector<uint8_t> data(kBlock, 0x5A);
    rig.pm.ResetStats();
    for (uint64_t b = 0; b < kAdmissions; ++b) {
      rig.cache.OnMiss(1, b, data.data());
    }
    rig.cache.FlushAggregationBuffer();
    const auto stats = rig.cache.stats();
    if (agg_bytes > 0 && stats.agg_flushes > 0) {
      *mean_flush_bytes = static_cast<double>(stats.agg_flush_bytes) /
                          static_cast<double>(stats.agg_flushes);
    }
    return rig.pm.stats().write_ops;
  };
  *direct_writes = run(0);
  *agg_writes = run(kAggBytes);

  PrintRow("DAX writes, block-at-a-time", static_cast<double>(*direct_writes),
           "ops");
  PrintRow("DAX writes, 1 MiB agg buffer (16 lanes)",
           static_cast<double>(*agg_writes), "ops");
  PrintRow("mean flush size", *mean_flush_bytes / 1024.0, "KiB");
  report.Add("agg_ablation", "admissions", static_cast<double>(kAdmissions));
  report.Add("agg_ablation", "direct_dax_writes",
             static_cast<double>(*direct_writes));
  report.Add("agg_ablation", "agg_dax_writes",
             static_cast<double>(*agg_writes));
  report.Add("agg_ablation", "mean_flush_bytes", *mean_flush_bytes);
}

// N threads of admission-heavy traffic (threshold 1, fresh keys per thread
// so every op takes the staging path); returns aggregate wall ops/s.
double AdmitOpsPerSec(CacheRig& rig, int threads) {
  std::atomic<uint64_t> total_ops{0};
  std::atomic<bool> stop{false};
  const auto start_line = WallClock::now() + std::chrono::milliseconds(20);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ScopedTimeCursor cursor(&rig.clock);
      std::vector<uint8_t> data(kBlock, 0x5A);
      std::this_thread::sleep_until(start_line);
      uint64_t ops = 0;
      uint64_t block = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Fresh key every op: always admitted, always staged.
        rig.cache.OnMiss(/*file_key=*/100 + t, block++, data.data());
        ++ops;
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_until(start_line + kProbeDuration);
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  return static_cast<double>(total_ops.load()) / Seconds(kProbeDuration);
}

void RunStagingSweep(uint32_t shards, JsonReport& report, double* ops_max) {
  auto options = BaseOptions(shards);
  options.admission_threshold = 1;
  // Same total staging budget in both configs; with 16 shards it splits
  // into 16 independent lanes, with 1 shard it is the old global buffer.
  options.agg_buffer_bytes = 1024 * 1024;
  const std::string scenario =
      shards > 1 ? "staging_sharded" : "staging_single";
  for (int threads : {1, 2, 4, 8}) {
    CacheRig rig(options);  // fresh rig per point: admission-state reset
    const double ops = AdmitOpsPerSec(rig, threads);
    char label[64];
    std::snprintf(label, sizeof(label), "%d thread(s), %s", threads,
                  shards > 1 ? "16 lanes" : "single lane");
    PrintRow(label, ops / 1e6, "Mops/s (wall)");
    char key[64];
    std::snprintf(key, sizeof(key), "threads_%d_ops_per_sec", threads);
    report.Add(scenario, key, ops);
    if (threads == kMaxThreads) {
      *ops_max = ops;
    }
    if (!rig.cache.CheckConsistency().ok()) {
      std::fprintf(stderr, "cache inconsistent after staging sweep\n");
      std::exit(1);
    }
  }
}

int Run(bool check) {
  JsonReport report("cache_scaling");
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  report.Add("env", "hardware_threads", static_cast<double>(cores));

  PrintHeader("Zipfian probe throughput: 16 shards vs global lock");
  double sharded_max = 0, global_max = 0;
  RunProbeSweep(/*shards=*/16, report, &sharded_max);
  RunProbeSweep(/*shards=*/1, report, &global_max);
  const double vs_global = global_max > 0 ? sharded_max / global_max : 0.0;
  PrintRow("sharded / global @ 8 threads", vs_global, "x");
  report.Add("probe_summary", "sharded_vs_global_at_8", vs_global);

  PrintHeader("Scan resistance: hot-set hit rate under a streaming scan");
  double drop = 1.0;
  RunScanResistance(report, &drop);

  PrintHeader("Aggregation-buffer admission: DAX write coalescing");
  uint64_t direct_writes = 0, agg_writes = 0;
  double mean_flush_bytes = 0.0;
  RunAggAblation(report, &direct_writes, &agg_writes, &mean_flush_bytes);

  PrintHeader("Admission staging: per-shard lanes vs single global lane");
  double staging_sharded_max = 0, staging_single_max = 0;
  RunStagingSweep(/*shards=*/16, report, &staging_sharded_max);
  RunStagingSweep(/*shards=*/1, report, &staging_single_max);
  const double staging_speedup = staging_single_max > 0
                                     ? staging_sharded_max / staging_single_max
                                     : 0.0;
  PrintRow("per-shard / single-lane @ 8 threads", staging_speedup, "x");
  report.Add("staging_summary", "sharded_vs_single_at_8", staging_speedup);

  if (!report.WriteTo("BENCH_cache.json")) {
    std::fprintf(stderr, "failed to write BENCH_cache.json\n");
    return 1;
  }
  if (!check) {
    return 0;
  }

  int failures = 0;
  // Wall-clock speedup from sharding needs real parallelism: below 4
  // hardware threads the 8-thread convoy never materializes, so the floor
  // is waived (same policy as bench/metadata_scaling).
  if (cores >= 4) {
    if (vs_global < 1.3) {
      std::fprintf(stderr,
                   "CHECK FAILED: sharded %.2fx global at %d threads "
                   "(< 1.30x floor, %u cores)\n",
                   vs_global, kMaxThreads, cores);
      failures++;
    }
  } else {
    std::fprintf(stderr,
                 "CHECK WAIVED: %u hardware thread(s), sharded-vs-global "
                 "wall speedup not measurable (got %.2fx)\n",
                 cores, vs_global);
  }
  if (cores >= 4) {
    if (staging_speedup < 1.2) {
      std::fprintf(stderr,
                   "CHECK FAILED: per-shard staging %.2fx single lane at %d "
                   "threads (< 1.20x floor, %u cores)\n",
                   staging_speedup, kMaxThreads, cores);
      failures++;
    }
  } else {
    std::fprintf(stderr,
                 "CHECK WAIVED: %u hardware thread(s), per-shard staging "
                 "speedup not measurable (got %.2fx)\n",
                 cores, staging_speedup);
  }
  if (drop >= 0.10) {
    std::fprintf(stderr,
                 "CHECK FAILED: hot-set hit rate dropped %.1f%% under the "
                 "scan (>= 10%%)\n",
                 drop * 100.0);
    failures++;
  }
  if (agg_writes * 4 > direct_writes) {
    std::fprintf(stderr,
                 "CHECK FAILED: aggregation produced %llu DAX writes vs "
                 "%llu direct (expected <= 1/4)\n",
                 static_cast<unsigned long long>(agg_writes),
                 static_cast<unsigned long long>(direct_writes));
    failures++;
  }
  if (mean_flush_bytes <= static_cast<double>(kBlock)) {
    std::fprintf(stderr,
                 "CHECK FAILED: mean flush %.0f bytes, not larger than one "
                 "block\n",
                 mean_flush_bytes);
    failures++;
  }
  if (failures == 0) {
    std::fprintf(stderr, "CHECK OK\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mux::bench

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") {
      check = true;
    }
  }
  return mux::bench::Run(check);
}
