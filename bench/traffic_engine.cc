// Open-loop traffic bench: throughput-vs-offered-load and tail-latency
// curves for a 1M-file Mux namespace under concurrent migrations, injected
// faults, and checkpoints. See bench/traffic_engine_lib.h for the engine and
// EXPERIMENTS.md ("Traffic methodology") for why this is open-loop.
//
// Usage:
//   traffic_engine [--check] [--async] [--continuation] [--mirror]
//                  [--files=N] [--data-files=N] [--workers=N] [--step-ms=N]
//                  [--calibrate-ms=N] [--no-chaos] [--seed=N]
//
// --async drives the completion-based client path (submission ring +
// completion dispatcher) instead of the thread-per-op worker pool, and
// reports per-step submission-ring queue depth plus the async-vs-sync
// closed-loop capacity ratio.
//
// --continuation drives the op state machine directly: the dispatcher
// issues Mux::{Read,Write}Async and no thread blocks per op — in-flight is
// bounded by a semaphore (16 per worker), not by worker threads. Reports
// per-step ops-in-flight and writes BENCH_async.json with the
// in-flight-vs-workers scaling curve (continuation vs submission-ring
// client at 1/2/4 workers); --check floors: continuation capacity >= the
// ring client's at every worker count and >= 4x its in-flight per worker,
// both waived below 4 hardware threads.
//
// --mirror gives the zipfian hot head an SSD primary plus a PM mirror and
// runs the "mirror" policy, so the steps exercise fastest-copy reads,
// write absorption, and lazy reconciliation; per-step replica hit rates
// are reported and --check asserts every quiet step served reads from a
// mirror.
//
// Writes BENCH_traffic.json. With --check, enforces the acceptance floors
// from ISSUE 6/7 (core-aware: wall-clock concurrency checks are waived on a
// single hardware thread, metadata_scaling style).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "bench/traffic_engine_lib.h"

namespace mux::bench {
namespace {

uint64_t FlagValue(const char* arg, const char* name, uint64_t fallback) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return std::strtoull(arg + len + 1, nullptr, 10);
  }
  return fallback;
}

void PrintStep(const StepResult& s, bool mirror, bool continuation) {
  std::printf(
      "  %4.2fx %-5s offered %9.0f/s goodput %9.0f/s drop %5.2f%% "
      "p50 %7.0fus p99 %8.0fus p999 %8.0fus q/s %5.0f/%5.0fus "
      "cache %5.1f%%",
      s.load_fraction, s.chaos ? "chaos" : "quiet", s.offered_ops_s,
      s.goodput_ops_s,
      s.generated > 0 ? 100.0 * s.dropped / s.generated : 0.0, s.p50_ns / 1e3,
      s.p99_ns / 1e3, s.p999_ns / 1e3, s.mean_queue_ns / 1e3,
      s.mean_service_ns / 1e3, s.cache_hit_rate * 100.0);
  if (mirror) {
    std::printf(" mirror %5.1f%%", s.replica_hit_rate * 100.0);
  }
  if (continuation) {
    std::printf(" inflight %5.1f/%llu", s.mean_inflight,
                static_cast<unsigned long long>(s.max_inflight));
  }
  std::printf("\n");
}

int Run(const TrafficConfig& config, bool check) {
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("traffic_engine: %llu files (%llu data), %d workers, "
              "%u hardware threads\n",
              static_cast<unsigned long long>(config.files),
              static_cast<unsigned long long>(config.data_files),
              config.workers, cores);

  TrafficEngine engine(config);
  TrafficResult result = engine.Run();
  if (!result.ok) {
    std::fprintf(stderr, "traffic_engine failed: %s\n", result.error.c_str());
    return 1;
  }

  PrintHeader("Population and calibration");
  PrintRow("files created", static_cast<double>(result.files_created), "");
  PrintRow("populate time", result.populate_seconds, "s (wall)");
  PrintRow("closed-loop capacity", result.capacity_ops_s, "ops/s (wall)");
  if (config.async_mode) {
    PrintRow("async capacity", result.async_capacity_ops_s, "ops/s (wall)");
    if (result.capacity_ops_s > 0) {
      PrintRow("async/sync capacity",
               result.async_capacity_ops_s / result.capacity_ops_s, "x");
    }
  }

  if (config.continuation_mode) {
    PrintRow("continuation capacity", result.continuation_capacity_ops_s,
             "ops/s (wall)");
    if (result.capacity_ops_s > 0) {
      PrintRow("continuation/sync capacity",
               result.continuation_capacity_ops_s / result.capacity_ops_s,
               "x");
    }
  }

  PrintHeader("Offered-load sweep (open-loop, wall-clock latency)");
  for (const auto& step : result.steps) {
    PrintStep(step, config.mirror_mode, config.continuation_mode);
  }

  if (!result.inflight_curve.empty()) {
    PrintHeader("In-flight vs workers: continuation client vs ring client");
    for (const auto& p : result.inflight_curve) {
      char label[96];
      std::snprintf(label, sizeof(label),
                    "w=%d ring %5.0f ops/s inflight %4.1f | cont %5.0f "
                    "ops/s inflight",
                    p.workers, p.async_ops_s, p.async_mean_inflight,
                    p.cont_ops_s);
      PrintRow(label, p.cont_mean_inflight, "ops");
    }
  }

  PrintHeader("Chaos totals");
  PrintRow("policy rounds", static_cast<double>(result.policy_rounds), "");
  PrintRow("checkpoints ok", static_cast<double>(result.checkpoints_ok), "");
  PrintRow("checkpoints failed",
           static_cast<double>(result.checkpoints_failed), "");
  PrintRow("faults injected", static_cast<double>(result.faults_injected),
           "");
  PrintRow("blocks migrated", static_cast<double>(result.migrated_blocks),
           "");

  if (engine.mux() != nullptr) {
    MaybeDumpMetrics(*engine.mux(), "traffic");
  }

  JsonReport report("traffic_engine");
  report.Add("config", "files", static_cast<double>(config.files));
  report.Add("config", "data_files", static_cast<double>(config.data_files));
  report.Add("config", "workers", config.workers);
  report.Add("config", "zipf_theta", config.zipf_theta);
  report.Add("config", "step_ms", static_cast<double>(config.step_ms));
  report.Add("config", "hardware_threads", cores);
  report.Add("config", "async_mode", config.async_mode ? 1.0 : 0.0);
  report.Add("config", "continuation_mode",
             config.continuation_mode ? 1.0 : 0.0);
  report.Add("config", "mirror_mode", config.mirror_mode ? 1.0 : 0.0);
  report.Add("calibration", "capacity_ops_s", result.capacity_ops_s);
  report.Add("calibration", "populate_seconds", result.populate_seconds);
  if (config.async_mode) {
    report.Add("calibration", "async_capacity_ops_s",
               result.async_capacity_ops_s);
    report.Add("calibration", "async_vs_sync_capacity",
               result.capacity_ops_s > 0
                   ? result.async_capacity_ops_s / result.capacity_ops_s
                   : 0.0);
  }
  if (config.continuation_mode) {
    report.Add("calibration", "continuation_capacity_ops_s",
               result.continuation_capacity_ops_s);
  }
  for (const auto& s : result.steps) {
    char name[64];
    std::snprintf(name, sizeof(name), "step_%.2fx_%s", s.load_fraction,
                  s.chaos ? "chaos" : "quiet");
    report.Add(name, "offered_ops_s", s.offered_ops_s);
    report.Add(name, "goodput_ops_s", s.goodput_ops_s);
    report.Add(name, "generated", static_cast<double>(s.generated));
    report.Add(name, "dropped", static_cast<double>(s.dropped));
    report.Add(name, "completed_ok", static_cast<double>(s.completed_ok));
    report.Add(name, "completed_err", static_cast<double>(s.completed_err));
    report.Add(name, "p50_ns", s.p50_ns);
    report.Add(name, "p99_ns", s.p99_ns);
    report.Add(name, "p999_ns", s.p999_ns);
    report.Add(name, "mean_queue_ns", s.mean_queue_ns);
    report.Add(name, "mean_service_ns", s.mean_service_ns);
    report.Add(name, "accounting_exact", s.accounting_exact ? 1.0 : 0.0);
    report.Add(name, "cache_hit_rate", s.cache_hit_rate);
    report.Add(name, "cache_hits", static_cast<double>(s.cache_hits));
    report.Add(name, "cache_misses", static_cast<double>(s.cache_misses));
    if (config.async_mode) {
      report.Add(name, "qdepth_mean", s.mean_qdepth);
      report.Add(name, "qdepth_max", static_cast<double>(s.max_qdepth));
    }
    if (config.continuation_mode) {
      report.Add(name, "inflight_mean", s.mean_inflight);
      report.Add(name, "inflight_max", static_cast<double>(s.max_inflight));
    }
    if (config.mirror_mode) {
      report.Add(name, "replica_read_hits",
                 static_cast<double>(s.replica_read_hits));
      report.Add(name, "replica_hit_rate", s.replica_hit_rate);
    }
  }
  if (config.mirror_mode && engine.mux() != nullptr) {
    auto& metrics = engine.mux()->metrics();
    report.Add("mirror", "sync_rounds",
               static_cast<double>(
                   metrics.CounterValue("mux.mirror.sync_rounds")));
    report.Add("mirror", "sync_bytes",
               static_cast<double>(
                   metrics.CounterValue("mux.mirror.sync_bytes")));
    report.Add("mirror", "failovers",
               static_cast<double>(
                   metrics.CounterValue("mux.replica.failover")));
  }
  report.Add("chaos", "policy_rounds",
             static_cast<double>(result.policy_rounds));
  report.Add("chaos", "checkpoints_ok",
             static_cast<double>(result.checkpoints_ok));
  report.Add("chaos", "checkpoints_failed",
             static_cast<double>(result.checkpoints_failed));
  report.Add("chaos", "faults_injected",
             static_cast<double>(result.faults_injected));
  report.Add("chaos", "migrated_blocks",
             static_cast<double>(result.migrated_blocks));
  if (!report.WriteTo("BENCH_traffic.json")) {
    std::fprintf(stderr, "failed to write BENCH_traffic.json\n");
    return 1;
  }
  if (config.continuation_mode) {
    JsonReport async_report("async_scaling");
    async_report.Add("env", "hardware_threads", cores);
    async_report.Add("calibration", "sync_capacity_ops_s",
                     result.capacity_ops_s);
    async_report.Add("calibration", "continuation_capacity_ops_s",
                     result.continuation_capacity_ops_s);
    for (const auto& p : result.inflight_curve) {
      char name[32];
      std::snprintf(name, sizeof(name), "curve_w%d", p.workers);
      const double w = static_cast<double>(p.workers);
      async_report.Add(name, "async_ops_s", p.async_ops_s);
      async_report.Add(name, "async_mean_inflight", p.async_mean_inflight);
      async_report.Add(name, "async_inflight_per_worker",
                       p.async_mean_inflight / w);
      async_report.Add(name, "cont_ops_s", p.cont_ops_s);
      async_report.Add(name, "cont_mean_inflight", p.cont_mean_inflight);
      async_report.Add(name, "cont_inflight_per_worker",
                       p.cont_mean_inflight / w);
      async_report.Add(name, "capacity_ratio",
                       p.async_ops_s > 0 ? p.cont_ops_s / p.async_ops_s
                                         : 0.0);
      // The ring client holds at most one executing op per server thread,
      // so its per-worker in-flight is floored at 1 — robust to the
      // sampler undercounting short service times.
      async_report.Add(name, "inflight_per_worker_ratio",
                       (p.cont_mean_inflight / w) /
                           std::max(p.async_mean_inflight / w, 1.0));
    }
    if (!async_report.WriteTo("BENCH_async.json")) {
      std::fprintf(stderr, "failed to write BENCH_async.json\n");
      return 1;
    }
  }
  if (!check) {
    return 0;
  }

  // ---- acceptance -------------------------------------------------------
  int failures = 0;

  // 1. Accounting must be exact at every step, on any machine: offered ==
  //    completed + dropped. This is a logic property, not a speed property.
  for (const auto& s : result.steps) {
    if (!s.accounting_exact) {
      std::fprintf(stderr,
                   "CHECK FAILED: %.2fx %s step accounting not exact "
                   "(generated %llu, completed %llu, dropped %llu)\n",
                   s.load_fraction, s.chaos ? "chaos" : "quiet",
                   static_cast<unsigned long long>(s.generated),
                   static_cast<unsigned long long>(s.completed_ok +
                                                   s.completed_err),
                   static_cast<unsigned long long>(s.dropped));
      failures++;
    }
  }

  // 2. Offered-vs-completed progress must be monotonic.
  for (size_t i = 1; i < result.progress.size(); ++i) {
    const auto& a = result.progress[i - 1];
    const auto& b = result.progress[i];
    if (b.completed < a.completed) {
      std::fprintf(stderr, "CHECK FAILED: completed count went backwards\n");
      failures++;
      break;
    }
  }

  // 3. At half the calibrated capacity the engine should keep up: <1% drops
  //    and goodput >= 70% of offered. Below 2 cores the dispatcher, the
  //    workers, and the chaos threads timeshare one CPU, so "keeping up" is
  //    not measurable — waive, metadata_scaling style.
  const StepResult* half_quiet = result.quiet_step_at(0.5);
  if (half_quiet != nullptr) {
    const double drop_rate =
        half_quiet->generated > 0
            ? static_cast<double>(half_quiet->dropped) / half_quiet->generated
            : 0.0;
    const double goodput_ratio =
        half_quiet->offered_ops_s > 0
            ? half_quiet->goodput_ops_s / half_quiet->offered_ops_s
            : 0.0;
    if (cores >= 2) {
      if (drop_rate >= 0.01) {
        std::fprintf(stderr,
                     "CHECK FAILED: %.2f%% drops at 0.5x capacity\n",
                     100.0 * drop_rate);
        failures++;
      }
      if (goodput_ratio < 0.70) {
        std::fprintf(stderr,
                     "CHECK FAILED: goodput %.0f%% of offered at 0.5x "
                     "capacity (< 70%%)\n",
                     100.0 * goodput_ratio);
        failures++;
      }
    } else if (drop_rate >= 0.01 || goodput_ratio < 0.70) {
      std::fprintf(stderr,
                   "CHECK WAIVED: 0.5x step drops %.2f%%, goodput %.0f%% on "
                   "a single hardware thread\n",
                   100.0 * drop_rate, 100.0 * goodput_ratio);
    }
  }

  // 4. ISSUE 6 acceptance: at the highest load step where both variants
  //    kept drops under 5%, p99 with concurrent migrations/faults/
  //    checkpoints stays within 2x of quiescent p99.
  const StepResult* best_quiet = nullptr;
  const StepResult* best_chaos = nullptr;
  for (double fraction : config.load_fractions) {
    const StepResult* quiet = result.quiet_step_at(fraction);
    const StepResult* chaos = result.chaos_step_at(fraction);
    if (quiet == nullptr || chaos == nullptr) {
      continue;
    }
    const bool quiet_ok =
        quiet->generated == 0 ||
        static_cast<double>(quiet->dropped) / quiet->generated < 0.05;
    const bool chaos_ok =
        chaos->generated == 0 ||
        static_cast<double>(chaos->dropped) / chaos->generated < 0.05;
    if (quiet_ok && chaos_ok) {
      best_quiet = quiet;
      best_chaos = chaos;
    }
  }
  if (best_quiet != nullptr && best_quiet->p99_ns > 0) {
    const double ratio = best_chaos->p99_ns / best_quiet->p99_ns;
    std::printf("\np99 chaos/quiet at %.2fx load: %.2f (acceptance: < 2.0)\n",
                best_quiet->load_fraction, ratio);
    report.Add("acceptance", "p99_chaos_over_quiet", ratio);
    (void)report.WriteTo("BENCH_traffic.json");
    if (cores >= 2) {
      if (ratio >= 2.0) {
        std::fprintf(stderr,
                     "CHECK FAILED: chaos p99 %.2fx quiescent (>= 2.0) at "
                     "%.2fx load\n",
                     ratio, best_quiet->load_fraction);
        failures++;
      }
    } else if (ratio >= 2.0) {
      std::fprintf(stderr,
                   "CHECK WAIVED: chaos p99 ratio %.2f on a single hardware "
                   "thread (chaos and clients share one core)\n",
                   ratio);
    }
  } else if (config.chaos) {
    std::fprintf(stderr,
                 "CHECK WAIVED: no load step kept drops under 5%% in both "
                 "variants (overloaded machine)\n");
  }

  // 5. ISSUE 7 acceptance: no drops while offered load is below the
  //    measured capacity (fractions < 1.0). Drops below saturation mean the
  //    submission path itself sheds load. The dispatcher and servers
  //    timeshare on a single hardware thread, so the drop-free floor is
  //    only enforceable with >= 2 cores.
  for (const auto& s : result.steps) {
    if (s.chaos || s.load_fraction >= 1.0 || s.dropped == 0) {
      continue;
    }
    if (cores >= 2) {
      std::fprintf(stderr,
                   "CHECK FAILED: %llu drops at %.2fx offered load (< 1.0x "
                   "must be drop-free)\n",
                   static_cast<unsigned long long>(s.dropped),
                   s.load_fraction);
      failures++;
    } else {
      std::fprintf(stderr,
                   "CHECK WAIVED: %llu drops at %.2fx offered load on a "
                   "single hardware thread\n",
                   static_cast<unsigned long long>(s.dropped),
                   s.load_fraction);
    }
  }

  // 6. ISSUE 7 acceptance (async mode): the completion-based path sustains
  //    >= 2x the thread-per-op closed-loop capacity at equal workers. The
  //    win comes from servers running ops back-to-back while submission and
  //    completion handling overlap on other cores — with fewer than 4
  //    hardware threads those stages timeshare and the ratio is not
  //    measurable, so the check is waived (metadata_scaling style).
  if (config.async_mode && result.capacity_ops_s > 0) {
    const double ratio = result.async_capacity_ops_s / result.capacity_ops_s;
    std::printf("async/sync closed-loop capacity: %.2fx (acceptance: >= 2.0)\n",
                ratio);
    if (cores >= 4) {
      if (ratio < 2.0) {
        std::fprintf(stderr,
                     "CHECK FAILED: async capacity %.2fx sync (< 2.0x)\n",
                     ratio);
        failures++;
      }
    } else if (ratio < 2.0) {
      std::fprintf(stderr,
                   "CHECK WAIVED: async/sync capacity %.2fx on %u hardware "
                   "thread(s)\n",
                   ratio, cores);
    }
  }

  // 7. PR 10 acceptance (continuation mode): at every worker count on the
  //    curve, the op state machine must (a) match or beat the
  //    submission-ring client's closed-loop capacity (10% measurement-noise
  //    margin on "match") and (b) hold >= 4x its in-flight ops per worker —
  //    the ring client blocks one server thread per executing op, the
  //    continuation client suspends ops in the state machine and is bounded
  //    only by the semaphore. Both floors need the client stages to
  //    actually overlap on separate cores, so they are waived below 4
  //    hardware threads (metadata_scaling style).
  for (const auto& p : result.inflight_curve) {
    const double capacity_ratio =
        p.async_ops_s > 0 ? p.cont_ops_s / p.async_ops_s : 0.0;
    // Per-worker in-flight, ring baseline floored at 1 (one blocked
    // thread per executing op is the most the ring client can hold; the
    // sampler can undercount it on short service times).
    const double w = static_cast<double>(p.workers);
    const double inflight_ratio =
        (p.cont_mean_inflight / w) /
        std::max(p.async_mean_inflight / w, 1.0);
    std::printf("w=%d continuation/ring capacity %.2fx, in-flight per "
                "worker %.1fx\n",
                p.workers, capacity_ratio, inflight_ratio);
    if (cores < 4) {
      if (capacity_ratio < 0.9 || inflight_ratio < 4.0) {
        std::fprintf(stderr,
                     "CHECK WAIVED: w=%d capacity %.2fx / in-flight %.1fx "
                     "on %u hardware thread(s)\n",
                     p.workers, capacity_ratio, inflight_ratio, cores);
      }
      continue;
    }
    if (capacity_ratio < 0.9) {
      std::fprintf(stderr,
                   "CHECK FAILED: continuation capacity %.2fx ring client "
                   "at w=%d (< 0.9x)\n",
                   capacity_ratio, p.workers);
      failures++;
    }
    if (inflight_ratio < 4.0) {
      std::fprintf(stderr,
                   "CHECK FAILED: continuation in-flight per worker %.1fx "
                   "ring client at w=%d (< 4x)\n",
                   inflight_ratio, p.workers);
      failures++;
    }
  }

  // 8. ISSUE 9 acceptance (mirror mode): every quiet step must serve some
  //    reads from a non-primary copy. The hot head is mirrored before the
  //    first step and zipfian reads concentrate there, so this is a logic
  //    property of copy selection, not a speed property — no core waiver.
  if (config.mirror_mode) {
    for (const auto& s : result.steps) {
      if (s.chaos) {
        continue;
      }
      if (s.completed_ok > 0 && s.replica_read_hits == 0) {
        std::fprintf(stderr,
                     "CHECK FAILED: %.2fx quiet step served no reads from a "
                     "mirror (replica hit rate 0)\n",
                     s.load_fraction);
        failures++;
      }
    }
  }

  if (failures == 0) {
    std::fprintf(stderr, "CHECK OK\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mux::bench

int main(int argc, char** argv) {
  mux::bench::TrafficConfig config;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0) {
      check = true;
    } else if (std::strcmp(arg, "--async") == 0) {
      config.async_mode = true;
    } else if (std::strcmp(arg, "--continuation") == 0) {
      config.continuation_mode = true;
    } else if (std::strcmp(arg, "--mirror") == 0) {
      config.mirror_mode = true;
    } else if (std::strcmp(arg, "--no-chaos") == 0) {
      config.chaos = false;
    } else {
      config.files = mux::bench::FlagValue(arg, "--files", config.files);
      config.data_files =
          mux::bench::FlagValue(arg, "--data-files", config.data_files);
      config.workers = static_cast<int>(
          mux::bench::FlagValue(arg, "--workers", config.workers));
      config.step_ms = mux::bench::FlagValue(arg, "--step-ms", config.step_ms);
      config.calibrate_ms =
          mux::bench::FlagValue(arg, "--calibrate-ms", config.calibrate_ms);
      config.seed = mux::bench::FlagValue(arg, "--seed", config.seed);
    }
  }
  if (config.async_mode && config.continuation_mode) {
    std::fprintf(stderr,
                 "--async and --continuation are mutually exclusive\n");
    return 2;
  }
  config.data_files = std::min(config.data_files, config.files);
  return mux::bench::Run(config, check);
}
