// §3.2 software-vs-media overhead decomposition, per tier.
//
// The observability layer makes the paper's overhead argument measurable
// directly: every device charge lands in "device.<tier>.media_ns" and every
// Mux cost-model charge in "mux.sw.total_ns", all on the one simulated
// clock. Replaying the *identical* workload (sequential load + random 4 KiB
// reads) against a file pinned to each tier decomposes total elapsed time
// into media time and everything-else ("software": Mux dispatch/BLT/
// affinity, FS bookkeeping, page-cache logic).
//
// The shape to reproduce: software share is largest on PM — the media is so
// fast that the fixed per-op software tax dominates — and smallest on HDD,
// where multi-millisecond seeks drown it (§3.2: "the software overhead is
// relatively small on slower devices").
//
// Set MUX_METRICS_DUMP=<prefix> to also write the full per-tier metrics
// JSON next to the run.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/common/histogram.h"

namespace mux::bench {
namespace {

// Bigger than the 16 MiB DRAM page caches of xfslite/extlite, so the SSD
// and HDD runs keep a real miss rate and their media time is not
// cache-hidden.
constexpr uint64_t kFileBytes = 24ULL << 20;
constexpr int kWarmupReads = 5000;
constexpr int kReads = 20000;

struct Row {
  std::string label;
  double total_ms = 0;
  double media_ms = 0;
  double mux_sw_ms = 0;  // explicit Mux cost-model charges
  double sw_share = 0;   // (total - media) / total
  double p50_ns = 0;
  double p99_ns = 0;
  bool ok = false;
};

uint64_t MediaNs(const obs::MetricsRegistry& metrics) {
  return metrics.CounterValue("device.pm.media_ns") +
         metrics.CounterValue("device.ssd.media_ns") +
         metrics.CounterValue("device.hdd.media_ns");
}

Row RunTier(const char* tier_name, const char* label) {
  Row row;
  row.label = label;

  core::Mux::Options options;
  options.policy = "pin";
  options.policy_args = std::string("/=") + tier_name;
  // No SCM cache: its PM-side traffic would blur the per-tier attribution
  // (the cache is ablated separately in ablation_cache).
  options.enable_scm_cache = false;
  MuxRig rig(options);
  if (!rig.ok()) {
    return row;
  }
  auto& mux = rig.mux();

  auto handle = mux.Open("/breakdown", vfs::OpenFlags::kCreateRw);
  if (!handle.ok()) {
    return row;
  }
  if (!SequentialWrite(mux, *handle, kFileBytes, 1 << 20, 7).ok() ||
      !mux.Fsync(*handle, false).ok()) {
    return row;
  }

  Rng rng(13);
  std::vector<uint8_t> buf(4096);
  for (int i = 0; i < kWarmupReads; ++i) {
    (void)mux.Read(*handle, rng.Below(kFileBytes - buf.size()), buf.size(),
                   buf.data());
  }

  // Measured phase: counter deltas against the shared registry.
  const auto& metrics = mux.metrics();
  const SimTime t0 = rig.clock().Now();
  const uint64_t media0 = MediaNs(metrics);
  const uint64_t sw0 = metrics.CounterValue("mux.sw.total_ns");
  Histogram latencies;
  for (int i = 0; i < kReads; ++i) {
    const uint64_t off = rng.Below(kFileBytes - buf.size());
    const SimTime start = rig.clock().Now();
    (void)mux.Read(*handle, off, buf.size(), buf.data());
    latencies.Add(rig.clock().Now() - start);
  }
  const double total_ns = static_cast<double>(rig.clock().Now() - t0);
  const double media_ns = static_cast<double>(MediaNs(metrics) - media0);
  const double sw_ns =
      static_cast<double>(metrics.CounterValue("mux.sw.total_ns") - sw0);

  row.total_ms = total_ns / 1e6;
  row.media_ms = media_ns / 1e6;
  row.mux_sw_ms = sw_ns / 1e6;
  row.sw_share = total_ns > 0 ? (total_ns - media_ns) / total_ns * 100.0 : 0;
  row.p50_ns = latencies.Percentile(50);
  row.p99_ns = latencies.Percentile(99);
  row.ok = true;

  MaybeDumpMetrics(mux, std::string("overhead_breakdown.") + tier_name);
  return row;
}

int Run() {
  PrintHeader(
      "Sec 3.2: software vs media time, identical 4KiB-random-read workload");
  std::printf("  %-16s %10s %10s %10s %9s %10s %12s\n", "tier", "total ms",
              "media ms", "sw ms", "sw share", "p50 ns", "p99 ns");
  const char* tiers[3] = {"pm", "ssd", "hdd"};
  const char* labels[3] = {"PM (novafs)", "SSD (xfslite)", "HDD (extlite)"};
  Row rows[3];
  for (int i = 0; i < 3; ++i) {
    rows[i] = RunTier(tiers[i], labels[i]);
    if (!rows[i].ok) {
      std::printf("  %-16s FAILED\n", labels[i]);
      continue;
    }
    std::printf("  %-16s %10.2f %10.2f %10.2f %8.1f%% %10.0f %12.0f\n",
                rows[i].label.c_str(), rows[i].total_ms, rows[i].media_ms,
                rows[i].mux_sw_ms, rows[i].sw_share, rows[i].p50_ns,
                rows[i].p99_ns);
  }
  if (rows[0].ok && rows[1].ok && rows[2].ok) {
    const bool ordered = rows[0].sw_share > rows[1].sw_share &&
                         rows[1].sw_share > rows[2].sw_share;
    std::printf("  software share PM > SSD > HDD: %s\n",
                ordered ? "yes (matches Sec 3.2)" : "NO — check cost model");
    return ordered ? 0 : 1;
  }
  return 1;
}

}  // namespace
}  // namespace mux::bench

int main() { return mux::bench::Run(); }
