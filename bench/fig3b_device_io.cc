// Figure 3(b): per-device I/O throughput, Strata vs Mux.
//
// Paper result being reproduced: with the I/O request stream directed at a
// single target device (random writes; the paper uses Strata's
// microbenchmark with 90 GB, scaled down here), Mux beats Strata by 1.08x
// (PM), 1.46x (SSD), and 1.07x (HDD). The causes the paper identifies:
// Strata logs every write to PM first (write amplification — fatal for the
// PM target where NOVA writes direct via DAX, and an extra copy for
// SSD/HDD), while Mux delegates to the device-specialized file system.
#include <cstdio>

#include "bench/bench_util.h"

namespace mux::bench {
namespace {

constexpr uint64_t kTotalBytes = 48ULL << 20;  // paper: 90 GB, scaled
constexpr uint64_t kIoSize = 16 << 10;         // random 16K writes
constexpr uint64_t kFileSpan = 48ULL << 20;

// Random writes across the file span, all blocks landing on one tier.
template <typename Fs>
Status RandomWrites(Fs& fs, vfs::FileHandle handle, uint64_t seed) {
  Rng rng(seed);
  auto data = Pattern(kIoSize, seed);
  const uint64_t slots = kFileSpan / kIoSize;
  for (uint64_t written = 0; written < kTotalBytes; written += kIoSize) {
    const uint64_t off = rng.Below(slots) * kIoSize;
    MUX_RETURN_IF_ERROR(fs.Write(handle, off, data.data(), kIoSize).status());
  }
  return fs.Fsync(handle, /*data_only=*/false);
}

double MuxThroughput(const char* tier_name) {
  core::Mux::Options options;
  options.policy = "pin";
  options.policy_args = std::string("/=") + tier_name;
  MuxRigSizes sizes;
  sizes.pm_bytes = 96ULL << 20;
  sizes.ssd_bytes = 128ULL << 20;
  sizes.hdd_bytes = 192ULL << 20;
  MuxRig rig(options, sizes);
  if (!rig.ok()) {
    return 0;
  }
  auto& mux = rig.mux();
  auto h = mux.Open("/target", vfs::OpenFlags::kCreateRw);
  if (!h.ok()) {
    return 0;
  }
  SimTimer timer(rig.clock());
  if (!RandomWrites(mux, *h, 7).ok()) {
    return 0;
  }
  return ThroughputMBps(kTotalBytes, timer.Elapsed());
}

double StrataThroughput(strata::Tier tier) {
  MuxRigSizes sizes;
  sizes.pm_bytes = 96ULL << 20;
  sizes.ssd_bytes = 128ULL << 20;
  sizes.hdd_bytes = 192ULL << 20;
  StrataRig rig(sizes);
  if (!rig.ok()) {
    return 0;
  }
  auto& fs = rig.fs();
  auto h = fs.Open("/target", vfs::OpenFlags::kCreateRw);
  if (!h.ok()) {
    return 0;
  }
  if (!fs.SetFileTier("/target", tier).ok()) {
    return 0;
  }
  SimTimer timer(rig.clock());
  if (!RandomWrites(fs, *h, 7).ok()) {
    return 0;
  }
  if (!fs.DigestAll().ok()) {  // drain to the target device
    return 0;
  }
  return ThroughputMBps(kTotalBytes, timer.Elapsed());
}

int Run() {
  PrintHeader("Figure 3b: single-device I/O throughput, Strata vs Mux");
  const char* names[3] = {"pm", "ssd", "hdd"};
  const char* labels[3] = {"PM", "SSD", "HDD"};
  const strata::Tier tiers[3] = {strata::Tier::kPm, strata::Tier::kSsd,
                                 strata::Tier::kHdd};
  const double paper_speedup[3] = {1.08, 1.46, 1.07};
  std::printf("  %-6s %14s %14s %10s %14s\n", "device", "Strata MB/s",
              "Mux MB/s", "Mux/Strata", "paper");
  for (int i = 0; i < 3; ++i) {
    const double strata_mbps = StrataThroughput(tiers[i]);
    const double mux_mbps = MuxThroughput(names[i]);
    std::printf("  %-6s %14.0f %14.0f %9.2fx %13.2fx\n", labels[i],
                strata_mbps, mux_mbps,
                strata_mbps > 0 ? mux_mbps / strata_mbps : 0.0,
                paper_speedup[i]);
  }
  return 0;
}

}  // namespace
}  // namespace mux::bench

int main() { return mux::bench::Run(); }
