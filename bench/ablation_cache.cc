// §2.5 ablation: the SCM cache — off vs plain-LRU vs MGLRU.
//
// The paper: Mux uses SCM (PM) as a shared cache above the per-FS DRAM page
// caches, DAX-mapped, with Multi-generational LRU replacement ("the
// algorithm Linux uses for its page caches"). Two workloads:
//   1. Zipfian reads over an HDD-resident file — a skewed working set the
//      cache should capture (hit rate + mean latency reported).
//   2. The same, with a periodic full scan mixed in — MGLRU's
//      scan-resistance vs plain LRU's pollution.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/histogram.h"

namespace mux::bench {
namespace {

constexpr uint64_t kFileBlocks = 8192;           // 32 MiB on HDD
constexpr uint64_t kCacheBlocks = 1024;          // 4 MiB SCM cache
constexpr int kReads = 40000;

struct CacheResult {
  double mean_ns = 0;
  double hit_rate = 0;
};

enum class CacheMode { kOff, kLru, kMglru };

CacheResult RunWorkload(CacheMode mode, bool with_scans) {
  core::Mux::Options options;
  options.policy = "pin";
  options.policy_args = "/=hdd";
  if (mode != CacheMode::kOff) {
    options.enable_scm_cache = true;
    options.cache.capacity_blocks = kCacheBlocks;
    options.cache.use_mglru = mode == CacheMode::kMglru;
    options.cache.admission_threshold = 2;
  }
  // The paper's premise (§2.5): DRAM is hard to scale, so the per-FS DRAM
  // page cache is small and SCM takes over the caching role.
  MuxRigSizes sizes;
  sizes.extlite_cache_pages = 128;  // 512 KiB of DRAM cache on the HDD FS
  MuxRig rig(options, sizes);
  if (!rig.ok()) {
    return {};
  }
  auto& mux = rig.mux();
  auto h = mux.Open("/data", vfs::OpenFlags::kCreateRw);
  if (!h.ok()) {
    return {};
  }
  if (!SequentialWrite(mux, *h, kFileBlocks * 4096, 1 << 20, 1).ok()) {
    return {};
  }
  if (!mux.Fsync(*h, false).ok()) {
    return {};
  }

  ZipfianGenerator zipf(kFileBlocks, 0.99, 42);
  std::vector<uint8_t> out(4096);
  // Warm up the cache on the skewed distribution.
  for (int i = 0; i < kReads / 2; ++i) {
    (void)mux.Read(*h, zipf.Next() * 4096, 4096, out.data());
  }
  Histogram latencies;
  int scan_cursor = 0;
  for (int i = 0; i < kReads; ++i) {
    uint64_t block;
    if (with_scans && i % 4 == 3) {
      // A streaming scan touches every block exactly once per sweep.
      block = scan_cursor++ % kFileBlocks;
    } else {
      block = zipf.Next();
    }
    const SimTime t0 = rig.clock().Now();
    (void)mux.Read(*h, block * 4096, 4096, out.data());
    latencies.Add(rig.clock().Now() - t0);
  }
  CacheResult result;
  result.mean_ns = latencies.Mean();
  auto stats = mux.CacheStats();
  const uint64_t lookups = stats.hits + stats.misses;
  result.hit_rate =
      lookups > 0 ? static_cast<double>(stats.hits) / lookups : 0.0;
  const char* mode_name = mode == CacheMode::kOff
                              ? "off"
                              : mode == CacheMode::kLru ? "lru" : "mglru";
  MaybeDumpMetrics(mux, std::string("ablation_cache.") + mode_name +
                            (with_scans ? ".scans" : ""));
  return result;
}

int Run() {
  PrintHeader("Sec 2.5 ablation: SCM cache (off / LRU / MGLRU)");
  struct Row {
    const char* label;
    CacheMode mode;
    bool scans;
  };
  const Row rows[] = {
      {"zipfian, cache off", CacheMode::kOff, false},
      {"zipfian, LRU cache", CacheMode::kLru, false},
      {"zipfian, MGLRU cache", CacheMode::kMglru, false},
      {"zipfian + scans, LRU cache", CacheMode::kLru, true},
      {"zipfian + scans, MGLRU cache", CacheMode::kMglru, true},
  };
  std::printf("  %-32s %14s %10s\n", "workload", "mean read ns", "hit rate");
  for (const Row& row : rows) {
    const CacheResult result = RunWorkload(row.mode, row.scans);
    std::printf("  %-32s %14.0f %9.1f%%\n", row.label, result.mean_ns,
                result.hit_rate * 100.0);
  }
  std::printf(
      "\n  (MGLRU admits one-touch scan blocks into the oldest generation,\n"
      "   so sweeps do not flush the zipfian working set the way they do\n"
      "   under plain LRU.)\n");
  return 0;
}

}  // namespace
}  // namespace mux::bench

int main() { return mux::bench::Run(); }
