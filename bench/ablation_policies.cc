// §2.1 ablation: user-defined tiering policies on one mixed workload.
//
// "All the placement and migration policies in existing tiered file systems
// can be expressed using simple functions" — this harness runs the same
// mixed workload under each registered built-in policy and reports where
// the data ended up and what the workload cost:
//   * lru      — the paper's evaluation policy (fastest-first + demotion),
//   * tpfs     — size/synchronicity/history placement (TPFS),
//   * hotcold  — temperature classification,
//   * pin      — static prefix rules.
//
// Workload: a small hot database file with frequent 4K sync writes and
// reads, a large cold archive written once, and a medium log appended in
// 1 MiB chunks.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/histogram.h"

namespace mux::bench {
namespace {

struct PolicyResult {
  SimTime total_ns = 0;
  double db_write_mean_ns = 0;
  std::map<std::string, std::map<core::TierId, uint64_t>> placement;
};

PolicyResult RunWorkload(const std::string& policy,
                         const std::string& args) {
  core::Mux::Options options;
  options.policy = policy;
  options.policy_args = args;
  MuxRigSizes sizes;
  sizes.pm_bytes = 48ULL << 20;
  MuxRig rig(options, sizes);
  if (!rig.ok()) {
    return {};
  }
  auto& mux = rig.mux();

  auto db = mux.Open("/db", vfs::OpenFlags::kCreateRw | vfs::OpenFlags::kSync);
  auto archive = mux.Open("/archive", vfs::OpenFlags::kCreateRw);
  auto log = mux.Open("/log", vfs::OpenFlags::kCreateRw);
  if (!db.ok() || !archive.ok() || !log.ok()) {
    return {};
  }

  PolicyResult result;
  SimTimer total(rig.clock());
  Rng rng(5);
  auto small = Pattern(4096, 1);
  auto big = Pattern(1 << 20, 2);
  Histogram db_writes;

  // Cold archive: 24 MiB written once.
  for (int i = 0; i < 24; ++i) {
    (void)mux.Write(*archive, static_cast<uint64_t>(i) << 20, big.data(),
                    big.size());
  }
  // Interleaved: hot DB traffic + log appends + periodic migration rounds.
  uint64_t log_off = 0;
  for (int round = 0; round < 12; ++round) {
    for (int i = 0; i < 200; ++i) {
      const uint64_t off = rng.Below(4 << 20);
      const SimTime t0 = rig.clock().Now();
      (void)mux.Write(*db, off & ~uint64_t{4095}, small.data(), small.size());
      db_writes.Add(rig.clock().Now() - t0);
      std::vector<uint8_t> out(4096);
      (void)mux.Read(*db, rng.Below(4 << 20) & ~uint64_t{4095}, 4096,
                     out.data());
    }
    (void)mux.Write(*log, log_off, big.data(), big.size());
    log_off += 1 << 20;
    rig.clock().Advance(500'000'000);
    (void)mux.RunPolicyMigrations();
  }
  (void)mux.Sync();
  result.total_ns = total.Elapsed();
  result.db_write_mean_ns = db_writes.Mean();
  for (const char* path : {"/db", "/archive", "/log"}) {
    auto breakdown = mux.FileTierBreakdown(path);
    if (breakdown.ok()) {
      result.placement[path] = *breakdown;
    }
  }
  return result;
}

void PrintPlacement(const std::map<core::TierId, uint64_t>& tiers) {
  const char* names[] = {"pm", "ssd", "hdd"};
  bool first = true;
  std::printf("{");
  for (const auto& [tier, blocks] : tiers) {
    std::printf("%s%s:%lluM", first ? "" : " ",
                tier < 3 ? names[tier] : "?",
                static_cast<unsigned long long>(blocks * 4096 >> 20));
    first = false;
  }
  std::printf("}");
}

int Run() {
  PrintHeader("Sec 2.1 ablation: tiering policies on a mixed workload");
  struct Row {
    const char* label;
    const char* policy;
    const char* args;
  };
  const Row rows[] = {
      {"lru (paper's evaluation policy)", "lru", ""},
      {"tpfs (size/sync/history)", "tpfs", ""},
      {"hotcold (temperature)", "hotcold", ""},
      {"pin (/db=pm,/archive=hdd,/log=ssd)", "pin",
       "/db=pm,/archive=hdd,/log=ssd"},
  };
  std::printf("  %-36s %12s %14s\n", "policy", "total ms", "db write ns");
  std::vector<PolicyResult> results;
  for (const Row& row : rows) {
    results.push_back(RunWorkload(row.policy, row.args));
    std::printf("  %-36s %12.1f %14.0f\n", row.label,
                static_cast<double>(results.back().total_ns) / 1e6,
                results.back().db_write_mean_ns);
  }
  std::printf("\n  final placement (MiB per tier):\n");
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("  %-36s ", rows[i].label);
    for (const char* path : {"/db", "/archive", "/log"}) {
      std::printf(" %s=", path + 1);
      PrintPlacement(results[i].placement[path]);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace mux::bench

int main() { return mux::bench::Run(); }
