// Parallel split-I/O dispatch scaling (ISSUE 3).
//
// Two experiments, both on the full Mux stack rig:
//   1. split_read     — one file striped across PM/SSD/HDD (segment sizes
//                       balanced inversely to tier speed so no single tier
//                       dominates), read end-to-end in one call. Serial
//                       dispatch charges the sum of the per-tier chains;
//                       parallel dispatch charges the max. The ratio is the
//                       headline number (acceptance: < 0.6).
//   2. reader_scaling — N threads concurrently re-reading a PM-resident
//                       file. Readers hold the inode lock shared and their
//                       per-op time cursors overlap, so simulated elapsed
//                       time should stay near the single-thread time as N
//                       grows (ideal: flat).
//
// Results go to stdout and BENCH_parallel.json.
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace mux::bench {
namespace {

constexpr uint64_t kBlockSize = core::Mux::kBlockSize;
constexpr uint64_t kMiB = 1ULL << 20;

// Segment sizes chosen so each tier's chain costs a few ms: a balanced
// split shows the overlap win; an equal split would be HDD-dominated and
// hide it (see DESIGN.md "Concurrency model").
constexpr uint64_t kPmBytes = 40 * kMiB;
constexpr uint64_t kSsdBytes = 4 * kMiB;
constexpr uint64_t kHddBytes = 768 * 1024;
constexpr uint64_t kTotalBytes = kPmBytes + kSsdBytes + kHddBytes;

// Builds the striped file and times one full-span read. Returns simulated ms.
double SplitReadMs(bool parallel_dispatch) {
  core::Mux::Options options;
  options.parallel_dispatch = parallel_dispatch;
  // Shrink the block FSes' DRAM page caches so the SSD/HDD segments actually
  // hit media — with the default 16 MiB caches the freshly migrated segments
  // would be read back from DRAM and the experiment would only measure PM.
  MuxRigSizes sizes;
  sizes.xfslite_cache_pages = 64;
  sizes.extlite_cache_pages = 64;
  MuxRig rig(options, sizes);
  if (!rig.ok()) {
    std::fprintf(stderr, "rig setup failed\n");
    std::exit(1);
  }
  auto& mux = rig.mux();
  auto handle = mux.Open("/split", vfs::OpenFlags::kCreateRw);
  if (!handle.ok() ||
      !SequentialWrite(mux, *handle, kTotalBytes, kMiB, /*seed=*/42).ok()) {
    std::fprintf(stderr, "split file setup failed\n");
    std::exit(1);
  }
  // Fresh writes land on the fastest tier; carve the tail out to SSD/HDD.
  Status ssd = mux.MigrateRange("/split", kPmBytes / kBlockSize,
                                kSsdBytes / kBlockSize, rig.ssd_tier());
  Status hdd = mux.MigrateRange("/split", (kPmBytes + kSsdBytes) / kBlockSize,
                                kHddBytes / kBlockSize, rig.hdd_tier());
  if (!ssd.ok() || !hdd.ok()) {
    std::fprintf(stderr, "migration failed\n");
    std::exit(1);
  }
  std::vector<uint8_t> buf(kTotalBytes);
  const SimTime start = rig.clock().Now();
  auto got = mux.Read(*handle, 0, kTotalBytes, buf.data());
  if (!got.ok() || *got != kTotalBytes) {
    std::fprintf(stderr, "split read failed\n");
    std::exit(1);
  }
  (void)mux.Close(*handle);
  MaybeDumpMetrics(mux, parallel_dispatch ? "split_parallel" : "split_serial");
  return NsToSeconds(rig.clock().Now() - start) * 1e3;
}

constexpr uint64_t kHotFileBytes = 48 * kMiB;

// Times `threads` concurrent readers each reading the whole PM-resident file
// in one call. One big op per reader is deliberate: the op spends several
// milliseconds of *real* time inside the PM file system, so even on a single
// core every reader has installed its per-op time cursor (all anchored at
// the same origin) before the first one finishes, and the cursors merge via
// CAS-max — the overlap being measured is structural, not a scheduling
// accident. Returns simulated ms until the last reader finishes.
double ConcurrentReadMs(MuxRig& rig, int threads) {
  auto& mux = rig.mux();
  // Start line: a common wall-clock deadline instead of a spin barrier. A
  // spinner burns a whole scheduler slice before the next thread gets the
  // CPU; sleepers all wake at the deadline, install their cursors within
  // microseconds, and block on the PM file system's lock (yielding the CPU
  // to the next reader).
  const auto start_line =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
  const SimTime start = rig.clock().Now();
  std::vector<std::thread> readers;
  readers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    readers.emplace_back([&mux, start_line] {
      auto handle = mux.Open("/hot", vfs::OpenFlags::kRead);
      if (!handle.ok()) {
        std::fprintf(stderr, "reader open failed\n");
        std::exit(1);
      }
      std::vector<uint8_t> buf(kHotFileBytes);
      std::this_thread::sleep_until(start_line);
      auto got = mux.Read(*handle, 0, kHotFileBytes, buf.data());
      if (!got.ok() || *got != kHotFileBytes) {
        std::fprintf(stderr, "reader read failed\n");
        std::exit(1);
      }
      (void)mux.Close(*handle);
    });
  }
  for (auto& r : readers) {
    r.join();
  }
  return NsToSeconds(rig.clock().Now() - start) * 1e3;
}

int Run(bool check) {
  JsonReport report("parallel_scaling");

  PrintHeader("Split read: serial vs parallel dispatch (PM 40M / SSD 4M / HDD 0.75M)");
  const double serial_ms = SplitReadMs(/*parallel_dispatch=*/false);
  const double parallel_ms = SplitReadMs(/*parallel_dispatch=*/true);
  const double ratio = serial_ms > 0 ? parallel_ms / serial_ms : 0.0;
  PrintRow("serial dispatch", serial_ms, "ms (simulated)");
  PrintRow("parallel dispatch", parallel_ms, "ms (simulated)");
  PrintRow("parallel / serial", ratio, "(acceptance: < 0.6)");
  report.Add("split_read", "serial_ms", serial_ms);
  report.Add("split_read", "parallel_ms", parallel_ms);
  report.Add("split_read", "ratio", ratio);

  PrintHeader("Concurrent readers of a PM-resident 48 MiB file");
  MuxRig rig;
  if (!rig.ok()) {
    std::fprintf(stderr, "rig setup failed\n");
    return 1;
  }
  {
    auto handle = rig.mux().Open("/hot", vfs::OpenFlags::kCreateRw);
    if (!handle.ok() ||
        !SequentialWrite(rig.mux(), *handle, kHotFileBytes, kMiB, /*seed=*/7)
             .ok()) {
      std::fprintf(stderr, "hot file setup failed\n");
      return 1;
    }
    (void)rig.mux().Close(*handle);
  }
  double one_thread_ms = 0;
  for (int threads : {1, 2, 4, 8}) {
    const double ms = ConcurrentReadMs(rig, threads);
    if (threads == 1) {
      one_thread_ms = ms;
    }
    // Ideal concurrent-reader scaling is flat: N threads re-reading the same
    // cached data take the same simulated time as one.
    const double vs_ideal = one_thread_ms > 0 ? ms / one_thread_ms : 0.0;
    char label[64];
    std::snprintf(label, sizeof(label), "%d reader(s)", threads);
    PrintRow(label, ms, "ms (simulated)");
    char key[64];
    std::snprintf(key, sizeof(key), "readers_%d_ms", threads);
    report.Add("reader_scaling", key, ms);
    std::snprintf(key, sizeof(key), "readers_%d_vs_ideal", threads);
    report.Add("reader_scaling", key, vs_ideal);
  }

  if (!report.WriteTo("BENCH_parallel.json")) {
    std::fprintf(stderr, "failed to write BENCH_parallel.json\n");
    return 1;
  }
  if (check) {
    // Acceptance gate (simulated time, so machine-independent): parallel
    // dispatch must beat serial by the documented margin.
    if (ratio >= 0.6) {
      std::fprintf(stderr,
                   "CHECK FAILED: parallel/serial split-read ratio %.3f "
                   ">= 0.6\n",
                   ratio);
      return 1;
    }
    std::fprintf(stderr, "CHECK OK\n");
  }
  return 0;
}

}  // namespace
}  // namespace mux::bench

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") {
      check = true;
    }
  }
  return mux::bench::Run(check);
}
