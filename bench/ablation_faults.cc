// Failure-hardening ablation: what fault tolerance costs and what it buys.
//
// The migration engine retries transient destination faults (EIO/ENOSPC)
// with capped attempts and the policy runner completes non-faulted tasks
// while recording the rest. This bench sweeps a per-write EIO probability
// on the destination tier and reports how round time, retry absorption and
// task failures move; a final scenario pins the destination at ENOSPC to
// show partial progress instead of an aborted round.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/vfs/fault_injecting_fs.h"
#include "tests/mux_rig.h"

namespace mux::bench {
namespace {

using testing::ExtOptionsFor;
using testing::XfsOptionsFor;
using vfs::FaultInjectingFs;
using vfs::FaultOp;

constexpr int kFiles = 16;
constexpr uint64_t kFileBytes = 64 * 4096;

// MuxRig with every tier file system behind a fault-injecting decorator.
class FaultBenchRig {
 public:
  FaultBenchRig()
      : pm_dev_(device::DeviceProfile::OptanePm(sizes_.pm_bytes), &clock_),
        ssd_dev_(device::DeviceProfile::OptaneSsd(sizes_.ssd_bytes), &clock_),
        hdd_dev_(device::DeviceProfile::ExosHdd(sizes_.hdd_bytes), &clock_),
        novafs_(&pm_dev_, &clock_),
        xfslite_(&ssd_dev_, &clock_, XfsOptionsFor(sizes_)),
        extlite_(&hdd_dev_, &clock_, ExtOptionsFor(sizes_)),
        pm_(&novafs_, 101),
        ssd_(&xfslite_, 102),
        hdd_(&extlite_, 103),
        mux_(std::make_unique<core::Mux>(&clock_)) {
    ok_ = novafs_.Format().ok() && xfslite_.Format().ok() &&
          extlite_.Format().ok();
    auto pm = mux_->AddTier("pm", &pm_, pm_dev_.profile());
    auto ssd = mux_->AddTier("ssd", &ssd_, ssd_dev_.profile());
    auto hdd = mux_->AddTier("hdd", &hdd_, hdd_dev_.profile());
    ok_ = ok_ && pm.ok() && ssd.ok() && hdd.ok();
    ssd_tier_ = ssd.value_or(core::kInvalidTier);
  }

  bool ok() const { return ok_; }
  core::Mux& mux() { return *mux_; }
  SimClock& clock() { return clock_; }
  FaultInjectingFs& ssd() { return ssd_; }
  core::TierId ssd_tier() const { return ssd_tier_; }

 private:
  testing::MuxRigSizes sizes_;
  SimClock clock_;
  device::PmDevice pm_dev_;
  device::BlockDevice ssd_dev_;
  device::BlockDevice hdd_dev_;
  fs::NovaFs novafs_;
  fs::XfsLite xfslite_;
  fs::ExtLite extlite_;
  FaultInjectingFs pm_;
  FaultInjectingFs ssd_;
  FaultInjectingFs hdd_;
  std::unique_ptr<core::Mux> mux_;
  core::TierId ssd_tier_ = core::kInvalidTier;
  bool ok_ = false;
};

struct RoundResult {
  double round_ms = 0.0;
  uint64_t failures = 0;
  uint64_t injected = 0;
  uint64_t clean = 0;  // files fully on the destination tier afterwards
};

// Seeds /mig/0../N-1 on PM, arms the fault, runs one pin-policy round.
bool RunRound(double eio_probability, uint64_t write_budget, bool cap_budget,
              RoundResult* out) {
  FaultBenchRig rig;
  if (!rig.ok()) {
    return false;
  }
  auto& mux = rig.mux();
  if (!mux.Mkdir("/mig").ok()) {
    return false;
  }
  for (int i = 0; i < kFiles; ++i) {
    auto h = mux.Open("/mig/" + std::to_string(i), vfs::OpenFlags::kCreateRw);
    if (!h.ok() ||
        !SequentialWrite(mux, *h, kFileBytes, kFileBytes, 100 + i).ok() ||
        !mux.Close(*h).ok()) {
      return false;
    }
  }
  if (!mux.SetPolicyByName("pin", "/mig=ssd").ok()) {
    return false;
  }
  if (eio_probability > 0.0) {
    rig.ssd().SetErrorProbability(FaultOp::kWrite, eio_probability);
  }
  if (cap_budget) {
    rig.ssd().SetWriteByteBudget(write_budget);
  }

  SimTimer timer(rig.clock());
  (void)mux.RunPolicyMigrations();
  out->round_ms = static_cast<double>(timer.Elapsed()) / 1e6;
  out->failures = mux.LastMigrationRoundStats().failures;
  {
    char tag[64];
    std::snprintf(tag, sizeof(tag), "ablation_faults.p%.3f%s", eio_probability,
                  cap_budget ? ".enospc" : "");
    MaybeDumpMetrics(mux, tag);
  }
  out->injected = rig.ssd().fault_stats().injected;
  out->clean = 0;
  for (int i = 0; i < kFiles; ++i) {
    auto breakdown = mux.FileTierBreakdown("/mig/" + std::to_string(i));
    if (breakdown.ok() && breakdown->size() == 1 &&
        breakdown->begin()->first == rig.ssd_tier() &&
        breakdown->begin()->second == kFileBytes / 4096) {
      out->clean++;
    }
  }
  return true;
}

int Run() {
  PrintHeader("Ablation: migration under injected tier faults");
  std::printf("  %d files x %llu KiB, pin policy PM -> SSD, one round\n\n",
              kFiles, static_cast<unsigned long long>(kFileBytes >> 10));
  std::printf("  %-28s %10s %9s %9s %10s\n", "destination fault", "round ms",
              "injected", "failed", "migrated");

  const double probabilities[] = {0.0, 0.05, 0.2, 0.5};
  for (double p : probabilities) {
    RoundResult r;
    if (!RunRound(p, 0, false, &r)) {
      return 1;
    }
    char label[64];
    std::snprintf(label, sizeof(label), "EIO p=%.3f per write", p);
    std::printf("  %-28s %10.2f %9llu %9llu %7llu/%d\n", label, r.round_ms,
                static_cast<unsigned long long>(r.injected),
                static_cast<unsigned long long>(r.failures),
                static_cast<unsigned long long>(r.clean), kFiles);
  }

  // Destination runs out of space halfway through the round: the tasks that
  // fit complete, the rest are recorded as failures — no aborted round.
  {
    RoundResult r;
    if (!RunRound(0.0, kFiles / 2 * kFileBytes, true, &r)) {
      return 1;
    }
    std::printf("  %-28s %10.2f %9llu %9llu %7llu/%d\n",
                "ENOSPC after 50% budget", r.round_ms,
                static_cast<unsigned long long>(r.injected),
                static_cast<unsigned long long>(r.failures),
                static_cast<unsigned long long>(r.clean), kFiles);
  }

  std::printf(
      "\n  (Transient faults are absorbed by capped OCC retries at a small\n"
      "   round-time cost; persistent ENOSPC degrades to partial progress\n"
      "   with the shortfall reported in SchedulerStats, never a torn BLT.)\n");
  return 0;
}

}  // namespace
}  // namespace mux::bench

int main() { return mux::bench::Run(); }
