// Metadata control-plane scaling (ISSUE 5).
//
// Unlike the other benches, the quantity under test here is *software*
// contention — mutex convoys in op setup — which the simulated clock cannot
// see (blocking on a pthread mutex charges no simulated time). Both
// experiments therefore measure wall-clock:
//
//   1. op_setup      — N threads, each FStat-ing its own open handle in a
//                      tight loop. Under the old design every op serialized
//                      on the global ns_mu_ and copied the tier vector; the
//                      sharded table + pinned snapshot make op setup touch
//                      only the handle's shard. Reported both for the
//                      sharded path and the legacy global-mutex ablation
//                      (Options::sharded_op_setup = false).
//   2. policy_round  — foreground 4 KiB read latency (p99) while
//                      RunPolicyMigrations loops in a background thread,
//                      vs a quiescent baseline. The baseline runs a pure
//                      busy-spinner thread instead, so both measurements
//                      see identical CPU competition and the ratio isolates
//                      *lock* interference: planning now runs off ns_mu_.
//
// Wall-clock scaling is physically bounded by the core count, so --check
// applies core-aware thresholds (a 1-core runner can't exhibit parallel
// speedup no matter how contention-free the code is; it is waived with a
// note rather than silently passed).
//
// Results go to stdout and BENCH_metadata.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace mux::bench {
namespace {

constexpr uint64_t kBlockSize = core::Mux::kBlockSize;
constexpr uint64_t kMiB = 1ULL << 20;
constexpr int kMaxThreads = 8;
constexpr auto kOpSetupDuration = std::chrono::milliseconds(300);

using Clock = std::chrono::steady_clock;

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

// N threads hammering FStat on private handles; returns aggregate ops/s.
double OpSetupOpsPerSec(core::Mux& mux,
                        const std::vector<vfs::FileHandle>& handles,
                        int threads) {
  std::atomic<uint64_t> total_ops{0};
  std::atomic<bool> stop{false};
  const auto start_line = Clock::now() + std::chrono::milliseconds(20);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const vfs::FileHandle h = handles[t];
      std::this_thread::sleep_until(start_line);
      uint64_t ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!mux.FStat(h).ok()) {
          std::fprintf(stderr, "FStat failed mid-bench\n");
          std::exit(1);
        }
        ++ops;
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_until(start_line + kOpSetupDuration);
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  return static_cast<double>(total_ops.load()) /
         Seconds(kOpSetupDuration);
}

// Builds a rig with per-thread files and runs the thread sweep.
void RunOpSetupSweep(bool sharded, JsonReport& report,
                     double* ops_1t, double* ops_max) {
  core::Mux::Options options;
  options.sharded_op_setup = sharded;
  MuxRig rig(options);
  if (!rig.ok()) {
    std::fprintf(stderr, "rig setup failed\n");
    std::exit(1);
  }
  auto& mux = rig.mux();
  std::vector<vfs::FileHandle> handles;
  const auto block = Pattern(kBlockSize, 5);
  for (int t = 0; t < kMaxThreads; ++t) {
    auto h = mux.Open("/op" + std::to_string(t), vfs::OpenFlags::kCreateRw);
    if (!h.ok() || !mux.Write(*h, 0, block.data(), block.size()).ok()) {
      std::fprintf(stderr, "op file setup failed\n");
      std::exit(1);
    }
    handles.push_back(*h);
  }

  const std::string scenario =
      sharded ? "op_setup_sharded" : "op_setup_legacy";
  for (int threads : {1, 2, 4, 8}) {
    const double ops = OpSetupOpsPerSec(mux, handles, threads);
    char label[64];
    std::snprintf(label, sizeof(label), "%d thread(s), %s", threads,
                  sharded ? "sharded" : "legacy");
    PrintRow(label, ops / 1e3, "kops/s (wall)");
    char key[64];
    std::snprintf(key, sizeof(key), "threads_%d_ops_per_sec", threads);
    report.Add(scenario, key, ops);
    if (threads == 1) {
      *ops_1t = ops;
    }
    if (threads == kMaxThreads) {
      *ops_max = ops;
    }
  }
  for (auto h : handles) {
    (void)mux.Close(h);
  }
}

// Foreground read-latency samples (wall ns) while `background` runs.
std::vector<uint64_t> ForegroundReadLatencies(bool policy_rounds,
                                              int samples) {
  MuxRig rig;
  if (!rig.ok()) {
    std::fprintf(stderr, "rig setup failed\n");
    std::exit(1);
  }
  auto& mux = rig.mux();
  // Enough files with enough data that a planning round has real work: the
  // hotcold policy scans every file and the round dispatches migrations.
  constexpr int kFiles = 24;
  constexpr uint64_t kFileBytes = 1 * kMiB;
  for (int i = 0; i < kFiles; ++i) {
    auto h = mux.Open("/bg" + std::to_string(i), vfs::OpenFlags::kCreateRw);
    if (!h.ok() ||
        !SequentialWrite(mux, *h, kFileBytes, kFileBytes, 20 + i).ok() ||
        !mux.Close(*h).ok()) {
      std::fprintf(stderr, "bg file setup failed\n");
      std::exit(1);
    }
  }
  if (!mux.SetPolicyByName("hotcold").ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    std::exit(1);
  }
  auto fg = mux.Open("/fg", vfs::OpenFlags::kCreateRw);
  const auto data = Pattern(64 * kBlockSize, 77);
  if (!fg.ok() || !mux.Write(*fg, 0, data.data(), data.size()).ok()) {
    std::fprintf(stderr, "fg file setup failed\n");
    std::exit(1);
  }

  std::atomic<bool> stop{false};
  // Same CPU pressure in both runs: either a planner or a pure spinner.
  std::thread background([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (policy_rounds) {
        if (!mux.RunPolicyMigrations().ok()) {
          std::fprintf(stderr, "policy round failed\n");
          std::exit(1);
        }
      } else {
        for (volatile int i = 0; i < 4096; ++i) {
        }
      }
    }
  });

  std::vector<uint64_t> lat;
  lat.reserve(samples);
  std::vector<uint8_t> buf(kBlockSize);
  Rng rng(99);
  for (int i = 0; i < samples; ++i) {
    const uint64_t off = (rng.Next() % 64) * kBlockSize;
    const auto t0 = Clock::now();
    auto got = mux.Read(*fg, off, buf.size(), buf.data());
    const auto t1 = Clock::now();
    if (!got.ok()) {
      std::fprintf(stderr, "fg read failed\n");
      std::exit(1);
    }
    lat.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  stop.store(true);
  background.join();
  (void)mux.Close(*fg);
  return lat;
}

uint64_t Percentile(std::vector<uint64_t> v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(v.size() - 1,
                              static_cast<size_t>(p * (v.size() - 1)));
  return v[idx];
}

int Run(bool check) {
  JsonReport report("metadata_scaling");
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  report.Add("env", "hardware_threads", static_cast<double>(cores));

  PrintHeader("Op setup throughput: sharded handle table vs legacy ns_mu_");
  double sharded_1t = 0, sharded_max = 0, legacy_1t = 0, legacy_max = 0;
  RunOpSetupSweep(/*sharded=*/true, report, &sharded_1t, &sharded_max);
  RunOpSetupSweep(/*sharded=*/false, report, &legacy_1t, &legacy_max);
  const double scaling = sharded_1t > 0 ? sharded_max / sharded_1t : 0.0;
  const double legacy_scaling = legacy_1t > 0 ? legacy_max / legacy_1t : 0.0;
  const double vs_legacy = legacy_max > 0 ? sharded_max / legacy_max : 0.0;
  PrintRow("sharded scaling 1 -> 8 threads", scaling, "x");
  PrintRow("legacy scaling 1 -> 8 threads", legacy_scaling, "x");
  PrintRow("sharded / legacy @ 8 threads", vs_legacy, "x");
  report.Add("op_setup_summary", "sharded_scaling_1_to_8", scaling);
  report.Add("op_setup_summary", "legacy_scaling_1_to_8", legacy_scaling);
  report.Add("op_setup_summary", "sharded_vs_legacy_at_8", vs_legacy);

  PrintHeader("Foreground p99 read latency during a policy round (wall)");
  constexpr int kSamples = 4000;
  const uint64_t p99_quiet =
      Percentile(ForegroundReadLatencies(/*policy_rounds=*/false, kSamples),
                 0.99);
  const uint64_t p99_round =
      Percentile(ForegroundReadLatencies(/*policy_rounds=*/true, kSamples),
                 0.99);
  const double p99_ratio =
      p99_quiet > 0 ? static_cast<double>(p99_round) / p99_quiet : 0.0;
  PrintRow("quiescent p99", p99_quiet / 1e3, "us (wall)");
  PrintRow("during policy rounds p99", p99_round / 1e3, "us (wall)");
  PrintRow("ratio", p99_ratio, "(acceptance: < 2.0)");
  report.Add("policy_round", "quiescent_p99_ns",
             static_cast<double>(p99_quiet));
  report.Add("policy_round", "during_round_p99_ns",
             static_cast<double>(p99_round));
  report.Add("policy_round", "p99_ratio", p99_ratio);

  if (!report.WriteTo("BENCH_metadata.json")) {
    std::fprintf(stderr, "failed to write BENCH_metadata.json\n");
    return 1;
  }
  if (!check) {
    return 0;
  }

  // Core-aware acceptance: parallel wall-clock speedup is capped by the
  // machine. Thresholds are deliberately below the ideal (8x / cores) to
  // tolerate shared runners.
  int failures = 0;
  double scaling_floor = 0.0;
  if (cores >= 8) {
    scaling_floor = 3.0;
  } else if (cores >= 4) {
    scaling_floor = 2.0;
  } else if (cores >= 2) {
    scaling_floor = 1.2;
  }
  if (scaling_floor > 0.0) {
    if (scaling < scaling_floor) {
      std::fprintf(stderr,
                   "CHECK FAILED: op-setup scaling %.2fx < %.2fx floor "
                   "(%u cores)\n",
                   scaling, scaling_floor, cores);
      failures++;
    }
  } else {
    std::fprintf(stderr,
                 "CHECK WAIVED: single hardware thread, wall-clock scaling "
                 "not measurable (got %.2fx)\n",
                 scaling);
  }
  if (cores >= 2) {
    if (p99_ratio >= 2.0) {
      std::fprintf(stderr,
                   "CHECK FAILED: p99 during policy round %.2fx quiescent "
                   "(>= 2.0)\n",
                   p99_ratio);
      failures++;
    }
  } else if (p99_ratio >= 2.0) {
    std::fprintf(stderr,
                 "CHECK WAIVED: p99 ratio %.2f on a single hardware thread "
                 "(planner and foreground share one core)\n",
                 p99_ratio);
  }
  if (failures == 0) {
    std::fprintf(stderr, "CHECK OK\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mux::bench

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") {
      check = true;
    }
  }
  return mux::bench::Run(check);
}
