// §2.4 ablation: the OCC Synchronizer vs lock-based migration.
//
// The paper's claim: OCC keeps conflict checking off the critical path — a
// migration copies without blocking writers, validates versions, retries
// the few conflicted blocks, and only falls back to a lock when retries are
// exhausted; "this scheme minimizes the critical path of user requests and
// enables the parallel execution of migration without pessimistic blocking".
//
// The experiment runs real threads: a writer hammers a file while the file
// migrates between tiers, once against Mux (OCC) and once against Strata
// (per-block file locking). Reported:
//   * writer throughput achieved DURING migration (wall-clock ops/s),
//   * Mux's OCC telemetry: passes, clean commits, conflicts, retried
//     blocks, lock fallbacks.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"

namespace mux::bench {
namespace {

constexpr uint64_t kBlocks = 2048;  // 8 MiB file
constexpr int kMigrationRounds = 6;

struct RunResult {
  double writer_ops_per_sec = 0;
  uint64_t migrations = 0;
};

template <typename MigrateFn, typename Fs>
RunResult RunContended(Fs& fs, vfs::FileHandle handle, MigrateFn migrate) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writes{0};
  std::thread writer([&] {
    Rng rng(21);
    uint8_t stamp[64];
    rng.Fill(stamp, sizeof(stamp));
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t block = rng.Below(kBlocks);
      if (!fs.Write(handle, block * 4096, stamp, sizeof(stamp)).ok()) {
        break;
      }
      writes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Writer throughput is sampled strictly INSIDE migration windows — the
  // paper's point is what happens to user requests while data moves.
  uint64_t migrations = 0;
  uint64_t ops_during = 0;
  double seconds_during = 0;
  for (int round = 0; round < kMigrationRounds; ++round) {
    const uint64_t ops_before = writes.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    const bool ok = migrate(round).ok();
    const auto t1 = std::chrono::steady_clock::now();
    if (ok) {
      migrations++;
      ops_during += writes.load(std::memory_order_relaxed) - ops_before;
      seconds_during += std::chrono::duration<double>(t1 - t0).count();
    }
  }
  stop.store(true);
  writer.join();

  RunResult result;
  result.writer_ops_per_sec =
      seconds_during > 0 ? static_cast<double>(ops_during) / seconds_during
                         : 0;
  result.migrations = migrations;
  return result;
}

int Run() {
  PrintHeader("Sec 2.4 ablation: OCC synchronizer vs lock-based migration");

  // --- Mux: OCC migration ----------------------------------------------
  MuxRig rig;
  if (!rig.ok()) {
    return 1;
  }
  auto& mux = rig.mux();
  auto mh = mux.Open("/contended", vfs::OpenFlags::kCreateRw);
  if (!mh.ok()) {
    return 1;
  }
  if (!SequentialWrite(mux, *mh, kBlocks * 4096, 1 << 20, 1).ok()) {
    return 1;
  }
  const core::TierId ring[3] = {rig.ssd_tier(), rig.hdd_tier(),
                                rig.pm_tier()};
  auto mux_result = RunContended(mux, *mh, [&](int round) {
    return mux.MigrateFile("/contended", ring[round % 3]);
  });
  auto occ = mux.stats().occ;

  // --- Strata: lock-based migration --------------------------------------
  StrataRig srig;
  if (!srig.ok()) {
    return 1;
  }
  auto& strata_fs = srig.fs();
  auto sh = strata_fs.Open("/contended", vfs::OpenFlags::kCreateRw);
  if (!sh.ok()) {
    return 1;
  }
  if (!SequentialWrite(strata_fs, *sh, kBlocks * 4096, 1 << 20, 1).ok()) {
    return 1;
  }
  // Strata only migrates PM->{SSD,HDD}; round-trip by rewriting to PM.
  auto strata_result = RunContended(strata_fs, *sh, [&](int round) -> Status {
    MUX_RETURN_IF_ERROR(strata_fs.DigestAll());
    return strata_fs.MigrateFile("/contended", strata::Tier::kPm,
                                 round % 2 == 0 ? strata::Tier::kSsd
                                                : strata::Tier::kHdd);
  });

  std::printf("  %-34s %14s %12s\n", "system",
              "ops/s in-mig", "migrations");
  std::printf("  %-34s %14.0f %12llu\n", "Mux (OCC synchronizer)",
              mux_result.writer_ops_per_sec,
              static_cast<unsigned long long>(mux_result.migrations));
  std::printf("  %-34s %14.0f %12llu\n", "Strata (per-block file lock)",
              strata_result.writer_ops_per_sec,
              static_cast<unsigned long long>(strata_result.migrations));

  std::printf("\n  Mux OCC telemetry:\n");
  PrintRow("validation passes", static_cast<double>(occ.passes), "");
  PrintRow("clean commits", static_cast<double>(occ.clean_commits), "");
  PrintRow("conflicting passes", static_cast<double>(occ.conflicts), "");
  PrintRow("blocks retried", static_cast<double>(occ.retried_blocks), "");
  PrintRow("lock fallbacks", static_cast<double>(occ.lock_fallbacks), "");
  std::printf(
      "\n  (OCC lets the writer run during the copy phase; conflicts are\n"
      "   resolved by re-copying only the dirtied blocks, and the lock\n"
      "   fallback bounds the retry count, so migration always finishes.)\n");
  return 0;
}

}  // namespace
}  // namespace mux::bench

int main() { return mux::bench::Run(); }
