// Shared helpers for the benchmark binaries: the full Mux stack rig (reused
// from the tests), a Strata rig, and table formatting. Every benchmark
// reports *simulated* time from the shared SimClock, so results are
// deterministic and hardware-independent (see DESIGN.md).
#ifndef MUX_BENCH_BENCH_UTIL_H_
#define MUX_BENCH_BENCH_UTIL_H_

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/strata/strata.h"
#include "tests/mux_rig.h"

namespace mux::bench {

using testing::MuxRig;
using testing::MuxRigSizes;

// Strata over the same simulated device triple.
class StrataRig {
 public:
  explicit StrataRig(MuxRigSizes sizes = MuxRigSizes())
      : pm_(device::DeviceProfile::OptanePm(sizes.pm_bytes), &clock_),
        ssd_(device::DeviceProfile::OptaneSsd(sizes.ssd_bytes), &clock_),
        hdd_(device::DeviceProfile::ExosHdd(sizes.hdd_bytes), &clock_),
        fs_(&pm_, &ssd_, &hdd_, &clock_) {
    ok_ = fs_.Format().ok();
  }

  bool ok() const { return ok_; }
  strata::StrataFs& fs() { return fs_; }
  SimClock& clock() { return clock_; }

 private:
  SimClock clock_;
  device::PmDevice pm_;
  device::BlockDevice ssd_;
  device::BlockDevice hdd_;
  strata::StrataFs fs_;
  bool ok_ = false;
};

inline std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Rng rng(seed);
  rng.Fill(v.data(), n);
  return v;
}

// Writes `total` bytes in `chunk`-sized sequential pieces.
inline Status SequentialWrite(vfs::FileSystem& fs, vfs::FileHandle handle,
                              uint64_t total, uint64_t chunk, uint64_t seed) {
  auto data = Pattern(chunk, seed);
  for (uint64_t off = 0; off < total; off += chunk) {
    MUX_RETURN_IF_ERROR(
        fs.Write(handle, off, data.data(), std::min(chunk, total - off))
            .status());
  }
  return Status::Ok();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Metrics dump hook: when the MUX_METRICS_DUMP environment variable is set,
// writes the rig's full metrics JSON (Mux::MetricsReport) to
// "<$MUX_METRICS_DUMP>.<tag>.json" — one file per bench scenario, so
// ablation runs can be diffed offline. A no-op otherwise.
inline void MaybeDumpMetrics(const core::Mux& mux, const std::string& tag) {
  const char* base = std::getenv("MUX_METRICS_DUMP");
  if (base == nullptr || base[0] == '\0') {
    return;
  }
  const std::string path = std::string(base) + "." + tag + ".json";
  Status status = mux.DumpMetrics(path);
  if (status.ok()) {
    std::fprintf(stderr, "[metrics] wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "[metrics] dump to %s failed: %s\n", path.c_str(),
                 status.message().c_str());
  }
}

inline void PrintRow(const char* label, double value, const char* unit) {
  std::printf("  %-38s %12.2f %s\n", label, value, unit);
}

// Log-linear latency histogram: 16 minor buckets per power of two, ~6%
// relative resolution across the full ns range. src/common/histogram.h's
// pure power-of-two buckets are fine for p50/p99 of device latencies but
// too coarse for the p999 curves the traffic engine reports — at 2x bucket
// width, a p999 read interpolates across a bucket spanning half the value.
class FineHistogram {
 public:
  static constexpr int kMinorBits = 4;  // 16 minors per major
  static constexpr int kMinors = 1 << kMinorBits;
  static constexpr int kMajors = 64;

  void Add(uint64_t value) {
    buckets_[Index(value)]++;
    count_++;
    sum_ += value;
  }

  void Merge(const FineHistogram& other) {
    for (size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }

  uint64_t count() const { return count_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  // Value at quantile q in [0, 1], interpolated within the bucket.
  double Percentile(double q) const {
    if (count_ == 0) {
      return 0.0;
    }
    const double target = q * static_cast<double>(count_);
    double seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] == 0) {
        continue;
      }
      const double next = seen + static_cast<double>(buckets_[i]);
      if (next >= target) {
        const double lo = LowerBound(i);
        const double hi = UpperBound(i);
        const double frac =
            (target - seen) / static_cast<double>(buckets_[i]);
        return lo + (hi - lo) * frac;
      }
      seen = next;
    }
    return UpperBound(buckets_.size() - 1);
  }

 private:
  static size_t Index(uint64_t value) {
    if (value < kMinors) {
      return static_cast<size_t>(value);  // exact below 16
    }
    const int major = 63 - __builtin_clzll(value);
    const int minor =
        static_cast<int>((value >> (major - kMinorBits)) & (kMinors - 1));
    return static_cast<size_t>(major) * kMinors + minor;
  }

  static double LowerBound(size_t index) {
    const size_t major = index / kMinors;
    const size_t minor = index % kMinors;
    if (major == 0) {
      return static_cast<double>(index);
    }
    const double base = std::pow(2.0, static_cast<double>(major));
    return base + base / kMinors * static_cast<double>(minor);
  }

  static double UpperBound(size_t index) {
    const size_t major = index / kMinors;
    if (major == 0) {
      return static_cast<double>(index + 1);
    }
    const double base = std::pow(2.0, static_cast<double>(major));
    return LowerBound(index) + base / kMinors;
  }

  std::array<uint64_t, static_cast<size_t>(kMajors) * kMinors> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

// Time-bucketed latency recording: one FineHistogram per fixed-width time
// bucket, keyed by when the op was *scheduled* (not when it completed), so
// a warmup prefix can be sliced off and a load step's steady state read in
// isolation. Not thread-safe — the traffic engine keeps one per worker and
// merges at the end of each step.
class TimedLatencyRecorder {
 public:
  TimedLatencyRecorder(uint64_t bucket_ns, size_t max_buckets)
      : bucket_ns_(bucket_ns == 0 ? 1 : bucket_ns), buckets_(max_buckets) {}

  // `rel_ns` is the op's scheduled time relative to the recording epoch.
  // Ops past the last bucket land in the last bucket (the engine sizes
  // buckets to cover the step).
  void Record(uint64_t rel_ns, uint64_t latency_ns) {
    size_t index = static_cast<size_t>(rel_ns / bucket_ns_);
    if (index >= buckets_.size()) {
      index = buckets_.size() - 1;
    }
    buckets_[index].Add(latency_ns);
  }

  void MergeFrom(const TimedLatencyRecorder& other) {
    for (size_t i = 0; i < buckets_.size() && i < other.buckets_.size(); ++i) {
      buckets_[i].Merge(other.buckets_[i]);
    }
  }

  // Histogram over buckets [skip_leading, end) — i.e. with warmup excluded.
  FineHistogram Merged(size_t skip_leading) const {
    FineHistogram merged;
    for (size_t i = skip_leading; i < buckets_.size(); ++i) {
      merged.Merge(buckets_[i]);
    }
    return merged;
  }

  size_t bucket_count() const { return buckets_.size(); }
  const FineHistogram& bucket(size_t i) const { return buckets_[i]; }

 private:
  uint64_t bucket_ns_;
  std::vector<FineHistogram> buckets_;
};

// Tiny structured-result emitter: benchmarks append named scalar results
// grouped by scenario and dump one JSON file the analysis scripts (and CI)
// can diff across runs. Insertion order is preserved; values print with
// enough precision to round-trip doubles.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void Add(const std::string& scenario, const std::string& key, double value) {
    for (auto& s : scenarios_) {
      if (s.name == scenario) {
        s.values.emplace_back(key, value);
        return;
      }
    }
    scenarios_.push_back({scenario, {{key, value}}});
  }

  std::string ToJson() const {
    std::string out = "{\n  \"bench\": \"" + bench_name_ + "\",\n";
    out += "  \"scenarios\": {\n";
    for (size_t i = 0; i < scenarios_.size(); ++i) {
      out += "    \"" + scenarios_[i].name + "\": {";
      const auto& values = scenarios_[i].values;
      for (size_t j = 0; j < values.size(); ++j) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", values[j].second);
        out += "\n      \"" + values[j].first + "\": " + buf;
        out += j + 1 < values.size() ? "," : "\n    ";
      }
      out += i + 1 < scenarios_.size() ? "},\n" : "}\n";
    }
    out += "  }\n}\n";
    return out;
  }

  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    const std::string json = ToJson();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    if (ok) {
      std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    }
    return ok;
  }

 private:
  struct Scenario {
    std::string name;
    std::vector<std::pair<std::string, double>> values;
  };
  std::string bench_name_;
  std::vector<Scenario> scenarios_;
};

}  // namespace mux::bench

#endif  // MUX_BENCH_BENCH_UTIL_H_
