// Shared helpers for the benchmark binaries: the full Mux stack rig (reused
// from the tests), a Strata rig, and table formatting. Every benchmark
// reports *simulated* time from the shared SimClock, so results are
// deterministic and hardware-independent (see DESIGN.md).
#ifndef MUX_BENCH_BENCH_UTIL_H_
#define MUX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/strata/strata.h"
#include "tests/mux_rig.h"

namespace mux::bench {

using testing::MuxRig;
using testing::MuxRigSizes;

// Strata over the same simulated device triple.
class StrataRig {
 public:
  explicit StrataRig(MuxRigSizes sizes = MuxRigSizes())
      : pm_(device::DeviceProfile::OptanePm(sizes.pm_bytes), &clock_),
        ssd_(device::DeviceProfile::OptaneSsd(sizes.ssd_bytes), &clock_),
        hdd_(device::DeviceProfile::ExosHdd(sizes.hdd_bytes), &clock_),
        fs_(&pm_, &ssd_, &hdd_, &clock_) {
    ok_ = fs_.Format().ok();
  }

  bool ok() const { return ok_; }
  strata::StrataFs& fs() { return fs_; }
  SimClock& clock() { return clock_; }

 private:
  SimClock clock_;
  device::PmDevice pm_;
  device::BlockDevice ssd_;
  device::BlockDevice hdd_;
  strata::StrataFs fs_;
  bool ok_ = false;
};

inline std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Rng rng(seed);
  rng.Fill(v.data(), n);
  return v;
}

// Writes `total` bytes in `chunk`-sized sequential pieces.
inline Status SequentialWrite(vfs::FileSystem& fs, vfs::FileHandle handle,
                              uint64_t total, uint64_t chunk, uint64_t seed) {
  auto data = Pattern(chunk, seed);
  for (uint64_t off = 0; off < total; off += chunk) {
    MUX_RETURN_IF_ERROR(
        fs.Write(handle, off, data.data(), std::min(chunk, total - off))
            .status());
  }
  return Status::Ok();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Metrics dump hook: when the MUX_METRICS_DUMP environment variable is set,
// writes the rig's full metrics JSON (Mux::MetricsReport) to
// "<$MUX_METRICS_DUMP>.<tag>.json" — one file per bench scenario, so
// ablation runs can be diffed offline. A no-op otherwise.
inline void MaybeDumpMetrics(const core::Mux& mux, const std::string& tag) {
  const char* base = std::getenv("MUX_METRICS_DUMP");
  if (base == nullptr || base[0] == '\0') {
    return;
  }
  const std::string path = std::string(base) + "." + tag + ".json";
  Status status = mux.DumpMetrics(path);
  if (status.ok()) {
    std::fprintf(stderr, "[metrics] wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "[metrics] dump to %s failed: %s\n", path.c_str(),
                 status.message().c_str());
  }
}

inline void PrintRow(const char* label, double value, const char* unit) {
  std::printf("  %-38s %12.2f %s\n", label, value, unit);
}

// Tiny structured-result emitter: benchmarks append named scalar results
// grouped by scenario and dump one JSON file the analysis scripts (and CI)
// can diff across runs. Insertion order is preserved; values print with
// enough precision to round-trip doubles.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void Add(const std::string& scenario, const std::string& key, double value) {
    for (auto& s : scenarios_) {
      if (s.name == scenario) {
        s.values.emplace_back(key, value);
        return;
      }
    }
    scenarios_.push_back({scenario, {{key, value}}});
  }

  std::string ToJson() const {
    std::string out = "{\n  \"bench\": \"" + bench_name_ + "\",\n";
    out += "  \"scenarios\": {\n";
    for (size_t i = 0; i < scenarios_.size(); ++i) {
      out += "    \"" + scenarios_[i].name + "\": {";
      const auto& values = scenarios_[i].values;
      for (size_t j = 0; j < values.size(); ++j) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", values[j].second);
        out += "\n      \"" + values[j].first + "\": " + buf;
        out += j + 1 < values.size() ? "," : "\n    ";
      }
      out += i + 1 < scenarios_.size() ? "},\n" : "}\n";
    }
    out += "  }\n}\n";
    return out;
  }

  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    const std::string json = ToJson();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    if (ok) {
      std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    }
    return ok;
  }

 private:
  struct Scenario {
    std::string name;
    std::vector<std::pair<std::string, double>> values;
  };
  std::string bench_name_;
  std::vector<Scenario> scenarios_;
};

}  // namespace mux::bench

#endif  // MUX_BENCH_BENCH_UTIL_H_
