// §3.2 worst-case read latency overhead: Mux vs direct access to the native
// file systems (no tiering).
//
// Paper workload: "repeatedly reads one single byte from a 10GB file
// randomly"; paper result: Mux adds 52.4% (PM), 87.3% (SSD), 6.6% (HDD).
// The shape to reproduce: the overhead is pure software indirection
// (dispatch + BLT lookup + affinity update + SCM-cache probe), so it is
// proportionally largest where the native path is fastest (DRAM page-cache
// hits on SSD), moderate on PM (DAX loads are fast but slower than DRAM,
// and the PM path skips the SCM-cache probe), and lost in the noise on HDD
// where occasional multi-millisecond misses dominate the average.
//
// Sizing (scaled from 10 GB / 256 GB DRAM): the SSD file fits its page
// cache entirely after warm-up; the HDD file slightly exceeds its cache so
// a small miss rate survives warm-up.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/histogram.h"

namespace mux::bench {
namespace {

constexpr uint64_t kSsdFileBytes = 12ULL << 20;  // < page cache (16 MiB)
constexpr uint64_t kHddFileBytes = 20ULL << 20;  // > page cache (16 MiB)
constexpr uint64_t kPmFileBytes = 16ULL << 20;
constexpr int kWarmupReads = 30000;
constexpr int kReads = 50000;

uint64_t FileBytesFor(int tier_idx) {
  switch (tier_idx) {
    case 0:
      return kPmFileBytes;
    case 1:
      return kSsdFileBytes;
    default:
      return kHddFileBytes;
  }
}

// Mean ns per 1-byte random read after warm-up.
template <typename Fs>
double MeasureReads(Fs& fs, SimClock& clock, vfs::FileHandle handle,
                    uint64_t file_bytes, uint64_t seed) {
  Rng rng(seed);
  uint8_t byte = 0;
  for (int i = 0; i < kWarmupReads; ++i) {
    (void)fs.Read(handle, rng.Below(file_bytes), 1, &byte);
  }
  Histogram latencies;
  for (int i = 0; i < kReads; ++i) {
    const uint64_t off = rng.Below(file_bytes);
    const SimTime t0 = clock.Now();
    (void)fs.Read(handle, off, 1, &byte);
    latencies.Add(clock.Now() - t0);
  }
  return latencies.Mean();
}

// Native path: the device-specific file system accessed directly.
double NativeLatency(int tier_idx) {
  MuxRig rig;  // devices + formatted file systems; Mux unused on this path
  if (!rig.ok()) {
    return 0;
  }
  vfs::FileSystem* fs = tier_idx == 0
                            ? static_cast<vfs::FileSystem*>(&rig.novafs())
                            : tier_idx == 1
                                  ? static_cast<vfs::FileSystem*>(&rig.xfslite())
                                  : static_cast<vfs::FileSystem*>(&rig.extlite());
  const uint64_t file_bytes = FileBytesFor(tier_idx);
  auto h = fs->Open("/native", vfs::OpenFlags::kCreateRw);
  if (!h.ok()) {
    return 0;
  }
  if (!SequentialWrite(*fs, *h, file_bytes, 1 << 20, 3).ok()) {
    return 0;
  }
  if (!fs->Fsync(*h, false).ok()) {
    return 0;
  }
  return MeasureReads(*fs, rig.clock(), *h, file_bytes, 11);
}

// Mux path: same file system underneath, reached through Mux.
double MuxLatency(int tier_idx, const char* tier_name) {
  core::Mux::Options options;
  options.policy = "pin";
  options.policy_args = std::string("/=") + tier_name;
  // The full Mux stack including the SCM cache controller — the "worst
  // case" the paper measures is the whole indirection layer. For a uniform
  // random workload far larger than the cache, the probe + admission
  // machinery on the SSD/HDD paths is pure cost (nothing stays hot enough
  // to earn admission), which is why the overhead peaks on the SSD path:
  // its native latency is tiny (page-cache hits) but it pays the full
  // dispatch + BLT + affinity + cache-probe tax. The PM path skips the
  // cache (PM is never cached into PM), so its tax is smaller.
  options.enable_scm_cache = true;
  options.cache.capacity_blocks = 512;
  options.cache.admission_threshold = 32;
  MuxRig rig(options);
  if (!rig.ok()) {
    return 0;
  }
  auto& mux = rig.mux();
  const uint64_t file_bytes = FileBytesFor(tier_idx);
  auto h = mux.Open("/muxed", vfs::OpenFlags::kCreateRw);
  if (!h.ok()) {
    return 0;
  }
  if (!SequentialWrite(mux, *h, file_bytes, 1 << 20, 3).ok()) {
    return 0;
  }
  if (!mux.Fsync(*h, false).ok()) {
    return 0;
  }
  return MeasureReads(mux, rig.clock(), *h, file_bytes, 11);
}

int Run() {
  PrintHeader("Sec 3.2: worst-case read latency overhead (1-byte random reads)");
  const char* names[3] = {"pm", "ssd", "hdd"};
  const char* labels[3] = {"PM (novafs)", "SSD (xfslite)", "HDD (extlite)"};
  const double paper[3] = {52.4, 87.3, 6.6};
  std::printf("  %-16s %12s %12s %10s %10s\n", "device", "native ns",
              "mux ns", "overhead", "paper");
  for (int i = 0; i < 3; ++i) {
    const double native_ns = NativeLatency(i);
    const double mux_ns = MuxLatency(i, names[i]);
    const double overhead =
        native_ns > 0 ? (mux_ns - native_ns) / native_ns * 100.0 : 0.0;
    std::printf("  %-16s %12.0f %12.0f %+9.1f%% %+9.1f%%\n", labels[i],
                native_ns, mux_ns, overhead, paper[i]);
  }
  return 0;
}

}  // namespace
}  // namespace mux::bench

int main() { return mux::bench::Run(); }
