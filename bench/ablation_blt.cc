// §2.2/§2.3 ablation: Block Lookup Table implementations.
//
// The paper mentions both an extent tree ("a high-performance data
// structure", §2.2) and a byte array ("one byte per 4 KB … less than
// 0.025% of space overhead", §2.3). This google-benchmark binary measures
// real CPU time for lookups, updates, and run decomposition on both, for a
// contiguous file and a fragmented one, and prints the memory footprints.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "src/common/random.h"
#include "src/core/block_lookup_table.h"

namespace mux::core {
namespace {

constexpr uint64_t kFileBlocks = 256 * 1024;  // 1 GiB of 4K blocks

std::unique_ptr<BlockLookupTable> MakeContiguous(BltKind kind) {
  auto blt = MakeBlt(kind);
  blt->SetRange(0, kFileBlocks, 0);
  return blt;
}

std::unique_ptr<BlockLookupTable> MakeFragmented(BltKind kind) {
  auto blt = MakeBlt(kind);
  // Alternate tiers every few blocks: a worst case for the extent tree.
  Rng rng(3);
  uint64_t pos = 0;
  while (pos < kFileBlocks) {
    const uint64_t len = 1 + rng.Below(4);
    blt->SetRange(pos, len, static_cast<TierId>(rng.Below(3)));
    pos += len;
  }
  return blt;
}

template <BltKind kKind, bool kFragmented>
void BM_Lookup(benchmark::State& state) {
  auto blt = kFragmented ? MakeFragmented(kKind) : MakeContiguous(kKind);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blt->Lookup(rng.Below(kFileBlocks)));
  }
}
BENCHMARK(BM_Lookup<BltKind::kExtentTree, false>)->Name("Lookup/extent/contig");
BENCHMARK(BM_Lookup<BltKind::kByteArray, false>)->Name("Lookup/byte/contig");
BENCHMARK(BM_Lookup<BltKind::kExtentTree, true>)->Name("Lookup/extent/frag");
BENCHMARK(BM_Lookup<BltKind::kByteArray, true>)->Name("Lookup/byte/frag");

template <BltKind kKind>
void BM_SetRange(benchmark::State& state) {
  auto blt = MakeContiguous(kKind);
  Rng rng(9);
  for (auto _ : state) {
    const uint64_t first = rng.Below(kFileBlocks - 64);
    blt->SetRange(first, 1 + rng.Below(64), static_cast<TierId>(rng.Below(3)));
  }
}
BENCHMARK(BM_SetRange<BltKind::kExtentTree>)->Name("SetRange/extent");
BENCHMARK(BM_SetRange<BltKind::kByteArray>)->Name("SetRange/byte");

template <BltKind kKind, bool kFragmented>
void BM_Runs(benchmark::State& state) {
  auto blt = kFragmented ? MakeFragmented(kKind) : MakeContiguous(kKind);
  Rng rng(11);
  for (auto _ : state) {
    const uint64_t first = rng.Below(kFileBlocks - 256);
    benchmark::DoNotOptimize(blt->Runs(first, 256));
  }
}
BENCHMARK(BM_Runs<BltKind::kExtentTree, false>)->Name("Runs256/extent/contig");
BENCHMARK(BM_Runs<BltKind::kByteArray, false>)->Name("Runs256/byte/contig");
BENCHMARK(BM_Runs<BltKind::kExtentTree, true>)->Name("Runs256/extent/frag");
BENCHMARK(BM_Runs<BltKind::kByteArray, true>)->Name("Runs256/byte/frag");

void PrintMemoryFootprints() {
  auto report = [](const char* label, const BlockLookupTable& blt) {
    const double overhead = static_cast<double>(blt.MemoryBytes()) /
                            static_cast<double>(kFileBlocks * 4096) * 100.0;
    std::printf("  %-24s %10.1f KiB  (%.5f%% of 1 GiB file; paper bound "
                "0.025%%)\n",
                label, static_cast<double>(blt.MemoryBytes()) / 1024.0,
                overhead);
  };
  std::printf("\nBLT memory footprint, 1 GiB file:\n");
  report("extent tree, contiguous", *MakeContiguous(BltKind::kExtentTree));
  report("byte array,  contiguous", *MakeContiguous(BltKind::kByteArray));
  report("extent tree, fragmented", *MakeFragmented(BltKind::kExtentTree));
  report("byte array,  fragmented", *MakeFragmented(BltKind::kByteArray));
}

}  // namespace
}  // namespace mux::core

int main(int argc, char** argv) {
  std::printf("=== Sec 2.2/2.3 ablation: Block Lookup Table structures ===\n");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  mux::core::PrintMemoryFootprints();
  return 0;
}
