// §4 extension: multi-residency mirroring (MOST) across devices.
//
// The paper: "a much stronger crash consistency guarantee can be designed
// for Mux ... by the opportunity for data replication across devices." With
// the multi-residency BLT a block's residency is a *set* of tiers, reads are
// served from the fastest idle copy, and writes absorb on the fastest
// resident tier while other copies go dirty and reconcile lazily. This bench
// quantifies the four claims and writes BENCH_replication.json:
//   1. read_accel — mirroring the hot subset onto PM turns HDD-latency reads
//      into PM-latency reads at a bounded capacity overhead (<= 1.5x here).
//   2. contended_fast_tier — load-aware copy selection (projected-completion
//      balancing across the residency set) beats static speed-rank order,
//      which chains every stripe of a large read onto the fastest copy.
//   3. write_absorb — absorbing writes on the fastest resident copy makes a
//      mirrored file cost ~the same per write as an unmirrored one; the
//      deferred bytes move later in SyncMirrors and Fsck ends clean.
//   4. failover — reads survive the death of the serving device by failing
//      over to a surviving replica, at the surviving tier's speed.
//
// All times are simulated (SimClock): copy selection happens before any
// segment is dispatched, so single-stream results are deterministic and the
// --check floors hold on any core count.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/histogram.h"

namespace mux::bench {
namespace {

constexpr uint64_t kBlock = 4096;
constexpr uint64_t kMiB = 1ULL << 20;

double Mbps(uint64_t bytes, SimTime elapsed_ns) {
  return elapsed_ns == 0 ? 0.0
                         : static_cast<double>(bytes) * 1000.0 /
                               static_cast<double>(elapsed_ns);
}

// ---- 1. read_accel: hot-subset mirror vs exclusive placement -------------

struct ReadAccelResult {
  double exclusive_mbps = 0;
  double mirror_mbps = 0;
  double capacity_overhead = 0;
  uint64_t replica_hits = 0;
  bool ok = false;
};

// 8000 4K reads, 80% of them on the hot 3/8 of the files.
double SkewedReadPass(core::Mux& mux, SimClock& clock,
                      const std::vector<vfs::FileHandle>& handles,
                      uint64_t file_bytes, int hot_files, uint64_t seed) {
  constexpr int kReads = 8000;
  Rng rng(seed);
  std::vector<uint8_t> out(kBlock);
  SimTimer timer(clock);
  for (int i = 0; i < kReads; ++i) {
    const size_t file = rng.Below(10) < 8
                            ? rng.Below(hot_files)
                            : hot_files + rng.Below(handles.size() - hot_files);
    const uint64_t block = rng.Below(file_bytes / kBlock);
    if (!mux.Read(handles[file], block * kBlock, kBlock, out.data()).ok()) {
      return -1.0;
    }
  }
  return Mbps(uint64_t{kReads} * kBlock, timer.Elapsed());
}

ReadAccelResult RunReadAccel(JsonReport& report) {
  ReadAccelResult r;
  MuxRigSizes sizes;
  sizes.extlite_cache_pages = 128;  // small DRAM cache: the disk is visible
  MuxRig rig(sizes);
  if (!rig.ok()) {
    return r;
  }
  auto& mux = rig.mux();

  constexpr int kFiles = 8;
  constexpr int kHotFiles = 3;
  constexpr uint64_t kFileBytes = 8 * kMiB;
  std::vector<vfs::FileHandle> handles;
  for (int i = 0; i < kFiles; ++i) {
    const std::string path = "/f" + std::to_string(i);
    auto h = mux.Open(path, vfs::OpenFlags::kCreateRw);
    if (!h.ok() ||
        !SequentialWrite(mux, *h, kFileBytes, kMiB, 100 + i).ok() ||
        !mux.MigrateFile(path, rig.hdd_tier()).ok()) {
      return r;
    }
    handles.push_back(*h);
  }
  (void)mux.Sync();

  // Exclusive placement: every read pays HDD latency.
  r.exclusive_mbps =
      SkewedReadPass(mux, rig.clock(), handles, kFileBytes, kHotFiles, 21);

  // Mirror the hot subset onto PM: 24 MiB of replicas over 64 MiB logical.
  uint64_t replica_blocks = 0;
  for (int i = 0; i < kHotFiles; ++i) {
    const std::string path = "/f" + std::to_string(i);
    if (!mux.ReplicateFile(path, rig.pm_tier()).ok()) {
      return r;
    }
    auto breakdown = mux.ReplicaBreakdown(path);
    if (!breakdown.ok()) {
      return r;
    }
    for (const auto& [tier, blocks] : *breakdown) {
      replica_blocks += blocks;
    }
  }
  const uint64_t hits_before =
      mux.metrics().CounterValue("mux.replica.read_hits");
  r.mirror_mbps =
      SkewedReadPass(mux, rig.clock(), handles, kFileBytes, kHotFiles, 22);
  r.replica_hits =
      mux.metrics().CounterValue("mux.replica.read_hits") - hits_before;

  const uint64_t logical = uint64_t{kFiles} * kFileBytes;
  r.capacity_overhead =
      static_cast<double>(logical + replica_blocks * kBlock) /
      static_cast<double>(logical);
  r.ok = r.exclusive_mbps > 0 && r.mirror_mbps > 0;

  PrintRow("4K skewed reads, HDD exclusive", r.exclusive_mbps, "MB/s");
  PrintRow("4K skewed reads, hot set mirrored on PM", r.mirror_mbps, "MB/s");
  PrintRow("capacity overhead", r.capacity_overhead, "x");
  report.Add("read_accel", "exclusive_mbps", r.exclusive_mbps);
  report.Add("read_accel", "mirror_mbps", r.mirror_mbps);
  report.Add("read_accel", "speedup",
             r.exclusive_mbps > 0 ? r.mirror_mbps / r.exclusive_mbps : 0.0);
  report.Add("read_accel", "capacity_overhead_x", r.capacity_overhead);
  report.Add("read_accel", "replica_read_hits",
             static_cast<double>(r.replica_hits));
  return r;
}

// ---- 2. contended_fast_tier: load-aware vs static copy selection ---------

// Large reads of a file resident on BOTH PM and SSD. Static speed-rank
// sends every 1 MiB stripe to PM, so the stripes serialize into one chain;
// load-aware selection spills stripes to the SSD copy whenever PM's chained
// backlog exceeds the SSD's projected completion, and the dispatch charges
// max-of-chains.
double ContendedReadPass(bool load_aware) {
  core::Mux::Options options;
  options.load_aware_reads = load_aware;
  MuxRig rig((core::Mux::Options(options)));
  if (!rig.ok()) {
    return -1.0;
  }
  auto& mux = rig.mux();
  constexpr uint64_t kFileBytes = 32 * kMiB;
  auto h = mux.Open("/big", vfs::OpenFlags::kCreateRw);
  if (!h.ok() || !SequentialWrite(mux, *h, kFileBytes, kMiB, 7).ok() ||
      !mux.MigrateFile("/big", rig.ssd_tier()).ok() ||
      !mux.ReplicateFile("/big", rig.pm_tier()).ok()) {
    return -1.0;
  }
  (void)mux.Sync();

  constexpr uint64_t kReadBytes = 8 * kMiB;
  constexpr int kReads = 64;
  std::vector<uint8_t> out(kReadBytes);
  SimTimer timer(rig.clock());
  for (int i = 0; i < kReads; ++i) {
    const uint64_t off = (uint64_t{static_cast<uint64_t>(i)} * kReadBytes) %
                         (kFileBytes - kReadBytes + kBlock);
    if (!mux.Read(*h, off & ~(kBlock - 1), kReadBytes, out.data()).ok()) {
      return -1.0;
    }
  }
  return Mbps(uint64_t{kReads} * kReadBytes, timer.Elapsed());
}

// ---- 3. write_absorb: mirrored writes cost like plain writes -------------

struct WriteAbsorbResult {
  double plain_us = 0;
  double mirrored_us = 0;
  uint64_t resync_bytes = 0;
  uint64_t second_pass_bytes = 0;
  bool fsck_clean = false;
  uint64_t dirty_replicas_after = 1;
  bool ok = false;
};

WriteAbsorbResult RunWriteAbsorb(JsonReport& report) {
  WriteAbsorbResult r;
  MuxRig rig;
  if (!rig.ok()) {
    return r;
  }
  auto& mux = rig.mux();
  constexpr uint64_t kFileBytes = 4 * kMiB;
  auto plain = mux.Open("/plain", vfs::OpenFlags::kCreateRw);
  auto mirrored = mux.Open("/mirrored", vfs::OpenFlags::kCreateRw);
  if (!plain.ok() || !mirrored.ok() ||
      !SequentialWrite(mux, *plain, kFileBytes, kMiB, 3).ok() ||
      !SequentialWrite(mux, *mirrored, kFileBytes, kMiB, 3).ok() ||
      !mux.ReplicateFile("/mirrored", rig.ssd_tier()).ok()) {
    return r;
  }

  auto payload = Pattern(64 << 10, 2);
  Histogram plain_writes;
  Histogram mirrored_writes;
  Rng rng(14);
  for (int i = 0; i < 200; ++i) {
    const uint64_t off =
        rng.Below(kFileBytes - payload.size()) & ~(kBlock - 1);
    SimTime t0 = rig.clock().Now();
    if (!mux.Write(*plain, off, payload.data(), payload.size()).ok()) {
      return r;
    }
    plain_writes.Add(rig.clock().Now() - t0);
    t0 = rig.clock().Now();
    if (!mux.Write(*mirrored, off, payload.data(), payload.size()).ok()) {
      return r;
    }
    mirrored_writes.Add(rig.clock().Now() - t0);
  }
  r.plain_us = plain_writes.Mean() / 1000.0;
  r.mirrored_us = mirrored_writes.Mean() / 1000.0;

  // The deferred half of the mirrored writes: reconcile, then verify the
  // second pass finds nothing left and the scrub ends clean.
  auto synced = mux.SyncMirrors();
  auto second = mux.SyncMirrors();
  auto fsck = mux.Fsck();
  if (!synced.ok() || !second.ok() || !fsck.ok()) {
    return r;
  }
  r.resync_bytes = *synced;
  r.second_pass_bytes = *second;
  r.fsck_clean = fsck->Clean();
  r.dirty_replicas_after = fsck->dirty_replicas;
  r.ok = true;

  PrintRow("64K write, PM primary only", r.plain_us, "us");
  PrintRow("64K write, + dirty SSD mirror (absorb)", r.mirrored_us, "us");
  PrintRow("deferred mirror sync", static_cast<double>(r.resync_bytes) / kMiB,
           "MiB");
  report.Add("write_absorb", "plain_write_us", r.plain_us);
  report.Add("write_absorb", "mirrored_write_us", r.mirrored_us);
  report.Add("write_absorb", "ratio",
             r.plain_us > 0 ? r.mirrored_us / r.plain_us : 0.0);
  report.Add("write_absorb", "resync_bytes",
             static_cast<double>(r.resync_bytes));
  report.Add("write_absorb", "resync_second_pass_bytes",
             static_cast<double>(r.second_pass_bytes));
  report.Add("write_absorb", "fsck_clean", r.fsck_clean ? 1.0 : 0.0);
  report.Add("write_absorb", "fsck_dirty_replicas",
             static_cast<double>(r.dirty_replicas_after));
  return r;
}

// ---- 4. failover: reads survive the serving device's death ---------------

struct FailoverResult {
  double healthy_us = 0;
  double degraded_us = 0;
  uint64_t failed_reads = 1;
  uint64_t failover_events = 0;
  bool ok = false;
};

FailoverResult RunFailover(JsonReport& report) {
  FailoverResult r;
  MuxRigSizes sizes;
  sizes.xfslite_cache_pages = 64;  // defeat the DRAM cache: faults reach SSD
  sizes.extlite_cache_pages = 128;
  MuxRig rig(sizes);
  if (!rig.ok()) {
    return r;
  }
  auto& mux = rig.mux();
  constexpr uint64_t kFileBytes = 16 * kMiB;
  auto h = mux.Open("/data", vfs::OpenFlags::kCreateRw);
  if (!h.ok() || !SequentialWrite(mux, *h, kFileBytes, kMiB, 5).ok() ||
      !mux.MigrateFile("/data", rig.hdd_tier()).ok() ||
      !mux.ReplicateFile("/data", rig.ssd_tier()).ok()) {
    return r;
  }
  (void)mux.Sync();

  constexpr int kReads = 2000;
  auto pass = [&](uint64_t seed, Histogram& hist) -> uint64_t {
    Rng rng(seed);
    std::vector<uint8_t> out(kBlock);
    uint64_t failures = 0;
    for (int i = 0; i < kReads; ++i) {
      const uint64_t block = rng.Below(kFileBytes / kBlock);
      const SimTime t0 = rig.clock().Now();
      if (!mux.Read(*h, block * kBlock, kBlock, out.data()).ok()) {
        failures++;
      }
      hist.Add(rig.clock().Now() - t0);
    }
    return failures;
  };

  Histogram healthy;
  Histogram degraded;
  r.failed_reads = pass(31, healthy);  // served from the SSD mirror
  const uint64_t failover_before =
      mux.metrics().CounterValue("mux.replica.failover");
  rig.ssd_dev().FailReads(true);
  r.failed_reads += pass(32, degraded);  // every read fails over to HDD
  rig.ssd_dev().FailReads(false);
  r.failover_events =
      mux.metrics().CounterValue("mux.replica.failover") - failover_before;
  r.healthy_us = healthy.Mean() / 1000.0;
  r.degraded_us = degraded.Mean() / 1000.0;
  r.ok = true;

  PrintRow("4K read, SSD mirror healthy", r.healthy_us, "us");
  PrintRow("4K read during SSD outage (failover)", r.degraded_us, "us");
  report.Add("failover", "healthy_read_us", r.healthy_us);
  report.Add("failover", "degraded_read_us", r.degraded_us);
  report.Add("failover", "failed_reads", static_cast<double>(r.failed_reads));
  report.Add("failover", "failover_events",
             static_cast<double>(r.failover_events));
  return r;
}

int Run(bool check) {
  JsonReport report("ablation_replication");
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  report.Add("env", "hardware_threads", static_cast<double>(cores));

  PrintHeader("Sec 4 extension: multi-residency mirroring (MOST)");
  std::printf("  %-38s %12s\n", "metric", "value");

  const ReadAccelResult accel = RunReadAccel(report);

  const double static_mbps = ContendedReadPass(/*load_aware=*/false);
  const double load_aware_mbps = ContendedReadPass(/*load_aware=*/true);
  PrintRow("8M mirrored reads, static speed-rank", static_mbps, "MB/s");
  PrintRow("8M mirrored reads, load-aware", load_aware_mbps, "MB/s");
  report.Add("contended_fast_tier", "static_mbps", static_mbps);
  report.Add("contended_fast_tier", "load_aware_mbps", load_aware_mbps);
  report.Add("contended_fast_tier", "speedup",
             static_mbps > 0 ? load_aware_mbps / static_mbps : 0.0);

  const WriteAbsorbResult absorb = RunWriteAbsorb(report);
  const FailoverResult failover = RunFailover(report);

  std::printf(
      "\n  (The hot-set mirror turns HDD reads into PM reads at a bounded\n"
      "   capacity premium, large reads stripe across the residency set,\n"
      "   writes absorb at the fast copy and reconcile lazily, and a dead\n"
      "   device degrades reads instead of failing them.)\n");

  if (!report.WriteTo("BENCH_replication.json")) {
    std::fprintf(stderr, "failed to write BENCH_replication.json\n");
    return 1;
  }
  if (!check) {
    return 0;
  }

  // All floors are on simulated-time ratios: copy selection is decided
  // before dispatch and the clock charges max-of-chains, so the numbers are
  // reproducible on any machine, 1 core included.
  int failures = 0;
  if (!accel.ok || accel.mirror_mbps < 2.0 * accel.exclusive_mbps) {
    std::fprintf(stderr,
                 "CHECK FAILED: hot-set mirror %.1f MB/s vs exclusive %.1f "
                 "MB/s (< 2.0x floor)\n",
                 accel.mirror_mbps, accel.exclusive_mbps);
    failures++;
  }
  if (accel.capacity_overhead > 1.5) {
    std::fprintf(stderr,
                 "CHECK FAILED: capacity overhead %.2fx exceeds 1.5x\n",
                 accel.capacity_overhead);
    failures++;
  }
  if (accel.replica_hits == 0) {
    std::fprintf(stderr, "CHECK FAILED: no reads served from a mirror\n");
    failures++;
  }
  if (static_mbps <= 0 || load_aware_mbps < 1.1 * static_mbps) {
    std::fprintf(stderr,
                 "CHECK FAILED: load-aware %.1f MB/s vs static %.1f MB/s "
                 "(< 1.10x floor)\n",
                 load_aware_mbps, static_mbps);
    failures++;
  }
  if (!absorb.ok || absorb.mirrored_us > 1.25 * absorb.plain_us) {
    std::fprintf(stderr,
                 "CHECK FAILED: mirrored write %.2f us vs plain %.2f us "
                 "(> 1.25x: absorb is not absorbing)\n",
                 absorb.mirrored_us, absorb.plain_us);
    failures++;
  }
  if (!absorb.ok || absorb.resync_bytes == 0 || absorb.second_pass_bytes != 0 ||
      !absorb.fsck_clean || absorb.dirty_replicas_after != 0) {
    std::fprintf(stderr,
                 "CHECK FAILED: lazy reconciliation did not converge "
                 "(synced %llu, second pass %llu, clean=%d, dirty=%llu)\n",
                 static_cast<unsigned long long>(absorb.resync_bytes),
                 static_cast<unsigned long long>(absorb.second_pass_bytes),
                 absorb.fsck_clean ? 1 : 0,
                 static_cast<unsigned long long>(absorb.dirty_replicas_after));
    failures++;
  }
  if (!failover.ok || failover.failed_reads != 0 ||
      failover.failover_events == 0) {
    std::fprintf(stderr,
                 "CHECK FAILED: failover (%llu failed reads, %llu failover "
                 "events)\n",
                 static_cast<unsigned long long>(failover.failed_reads),
                 static_cast<unsigned long long>(failover.failover_events));
    failures++;
  }
  if (failures == 0) {
    std::fprintf(stderr, "CHECK OK\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mux::bench

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") {
      check = true;
    }
  }
  return mux::bench::Run(check);
}
