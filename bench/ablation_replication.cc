// §4 extension: data replication across devices.
//
// The paper: "a much stronger crash consistency guarantee can be designed
// for Mux ... by the opportunity for data replication across devices." This
// bench quantifies what the implemented extension buys:
//   1. Read acceleration — a PM mirror of HDD-resident data serves reads at
//      PM speed while the authoritative copy stays on the capacity tier.
//   2. Availability — with a mirror, reads survive a dead device; the
//      failover path is exercised with read-fault injection.
//   3. The cost — synchronous mirroring taxes every write.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/histogram.h"

namespace mux::bench {
namespace {

constexpr uint64_t kFileBytes = 16ULL << 20;
constexpr int kReads = 20000;

double MeanReadNs(core::Mux& mux, SimClock& clock, vfs::FileHandle handle,
                  uint64_t seed) {
  Rng rng(seed);
  Histogram hist;
  std::vector<uint8_t> out(4096);
  for (int i = 0; i < kReads; ++i) {
    const uint64_t block = rng.Below(kFileBytes / 4096);
    const SimTime t0 = clock.Now();
    (void)mux.Read(handle, block * 4096, 4096, out.data());
    hist.Add(clock.Now() - t0);
  }
  return hist.Mean();
}

int Run() {
  PrintHeader("Sec 4 extension: replication across devices");
  MuxRigSizes sizes;
  sizes.extlite_cache_pages = 128;  // small DRAM cache: the disk is visible
  MuxRig rig(sizes);
  if (!rig.ok()) {
    return 1;
  }
  auto& mux = rig.mux();
  auto h = mux.Open("/data", vfs::OpenFlags::kCreateRw);
  if (!h.ok()) {
    return 1;
  }
  if (!SequentialWrite(mux, *h, kFileBytes, 1 << 20, 1).ok()) {
    return 1;
  }
  if (!mux.MigrateFile("/data", rig.hdd_tier()).ok()) {
    return 1;
  }
  (void)mux.Sync();

  // 1. Reads before replication: HDD speed.
  const double before_ns = MeanReadNs(mux, rig.clock(), *h, 11);

  // 2. Mirror onto PM; reads now serve from the fast copy.
  SimTimer replicate_timer(rig.clock());
  if (!mux.ReplicateFile("/data", rig.pm_tier()).ok()) {
    return 1;
  }
  const double replicate_ms =
      static_cast<double>(replicate_timer.Elapsed()) / 1e6;
  const double after_ns = MeanReadNs(mux, rig.clock(), *h, 12);

  // 3. Failover: the PM mirror keeps serving when the HDD dies — and
  //    vice versa.
  rig.hdd_dev().FailReads(true);
  const double failover_ns = MeanReadNs(mux, rig.clock(), *h, 13);
  rig.hdd_dev().FailReads(false);

  // 4. Write cost of synchronous mirroring — measured on two files whose
  //    PRIMARY lives on PM; one additionally mirrors onto the SSD.
  Histogram unreplicated_writes;
  Histogram replicated_writes;
  {
    auto plain = mux.Open("/plain", vfs::OpenFlags::kCreateRw);
    auto mirrored = mux.Open("/mirrored", vfs::OpenFlags::kCreateRw);
    if (!plain.ok() || !mirrored.ok()) {
      return 1;
    }
    auto payload = Pattern(64 << 10, 2);
    if (!mux.Write(*plain, 0, payload.data(), payload.size()).ok() ||
        !mux.Write(*mirrored, 0, payload.data(), payload.size()).ok()) {
      return 1;
    }
    if (!SequentialWrite(mux, *plain, 4 << 20, 1 << 20, 3).ok() ||
        !SequentialWrite(mux, *mirrored, 4 << 20, 1 << 20, 3).ok()) {
      return 1;
    }
    if (!mux.ReplicateFile("/mirrored", rig.ssd_tier()).ok()) {
      return 1;
    }
    Rng rng(14);
    for (int i = 0; i < 200; ++i) {
      const uint64_t off = rng.Below((4 << 20) - payload.size());
      SimTime t0 = rig.clock().Now();
      (void)mux.Write(*plain, off & ~uint64_t{4095}, payload.data(),
                      payload.size());
      unreplicated_writes.Add(rig.clock().Now() - t0);
      t0 = rig.clock().Now();
      (void)mux.Write(*mirrored, off & ~uint64_t{4095}, payload.data(),
                      payload.size());
      replicated_writes.Add(rig.clock().Now() - t0);
    }
  }

  std::printf("  %-44s %14s\n", "metric", "value");
  PrintRow("mirror build (16 MiB HDD -> PM)", replicate_ms, "ms");
  PrintRow("4K read, HDD primary only", before_ns / 1000.0, "us");
  PrintRow("4K read, + PM mirror (fastest copy)", after_ns / 1000.0, "us");
  PrintRow("4K read during HDD outage (failover)", failover_ns / 1000.0,
           "us");
  PrintRow("64K write, PM primary only", unreplicated_writes.Mean() / 1000.0,
           "us");
  PrintRow("64K write, PM primary + SSD mirror",
           replicated_writes.Mean() / 1000.0, "us");
  std::printf(
      "\n  (The mirror turns HDD-latency reads into PM-latency reads and\n"
      "   keeps the file readable through a device failure; the price is\n"
      "   the doubled write path.)\n");
  return 0;
}

}  // namespace
}  // namespace mux::bench

int main() { return mux::bench::Run(); }
