// §4 ablation ("Improving The I/O Scheduler"): dispatch orders on a
// seek-bound device.
//
// The same batch of requests — a scattered mix of small reads/writes plus a
// few large streaming transfers, with one high-priority request — is
// dispatched to the HDD-backed tier under each algorithm. Reported: total
// simulated completion time and the finishing position of the
// high-priority request.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/io_scheduler.h"

namespace mux::bench {
namespace {

constexpr int kSmallRequests = 96;
constexpr int kLargeRequests = 4;

struct SchedResult {
  SimTime completion_ns = 0;
  double mean_finish_ns = 0;   // mean per-request completion time (wait)
  int priority_position = -1;  // dispatch index of the priority request
};

SchedResult RunAlgo(core::SchedAlgo algo) {
  SimClock clock;
  device::BlockDevice hdd(device::DeviceProfile::ExosHdd(512ULL << 20),
                          &clock);
  obs::MetricsRegistry metrics;
  hdd.AttachObs(&metrics, nullptr, "hdd");
  core::IoScheduler sched(algo, &clock, &metrics);
  core::TierInfo tier;
  tier.id = 0;
  tier.name = "hdd";
  tier.profile = hdd.profile();
  sched.RegisterTier(tier);

  Rng rng(17);
  int dispatch_counter = 0;
  SchedResult result;
  auto buf = std::make_shared<std::vector<uint8_t>>(1 << 20);
  auto finish_sum = std::make_shared<double>(0.0);

  auto submit = [&](uint64_t offset, uint64_t bytes, bool is_write,
                    int priority, bool is_priority_probe) {
    core::IoRequest request;
    request.tier = 0;
    request.is_write = is_write;
    request.offset = offset;
    request.bytes = bytes;
    request.priority = priority;
    request.execute = [&hdd, &clock, &dispatch_counter, &result, offset,
                       bytes, is_write, is_priority_probe, buf,
                       finish_sum]() -> Status {
      const uint64_t lba = offset / 4096;
      const uint32_t blocks = static_cast<uint32_t>(bytes / 4096);
      Status s = is_write ? hdd.WriteBlocks(lba, blocks, buf->data())
                          : hdd.ReadBlocks(lba, blocks, buf->data());
      *finish_sum += static_cast<double>(clock.Now());
      if (is_priority_probe && result.priority_position < 0) {
        result.priority_position = dispatch_counter;
      }
      dispatch_counter++;
      return s;
    };
    return sched.Submit(std::move(request));
  };

  for (int i = 0; i < kSmallRequests; ++i) {
    const uint64_t offset = rng.Below(100000) * 4096;
    (void)submit(offset, 4096, rng.OneIn(2), 1, false);
  }
  for (int i = 0; i < kLargeRequests; ++i) {
    (void)submit(rng.Below(1000) * 4096, 1 << 20, false, 1, false);
  }
  // One latency-critical request, submitted last.
  (void)submit(rng.Below(100000) * 4096, 4096, false, 0, true);

  SimTimer timer(clock);
  (void)sched.RunAll();
  result.completion_ns = timer.Elapsed();
  result.mean_finish_ns =
      dispatch_counter > 0 ? *finish_sum / dispatch_counter : 0;
  const char* dump = std::getenv("MUX_METRICS_DUMP");
  if (dump != nullptr && dump[0] != '\0') {
    (void)metrics.DumpToFile(std::string(dump) + ".ablation_scheduler." +
                             std::string(core::SchedAlgoName(algo)) + ".json");
  }
  return result;
}

int Run() {
  PrintHeader("Sec 4 ablation: I/O scheduler dispatch orders (HDD tier)");
  struct Row {
    const char* label;
    core::SchedAlgo algo;
  };
  const Row rows[] = {
      {"fifo (arrival order)", core::SchedAlgo::kFifo},
      {"cost-based (cheapest first)", core::SchedAlgo::kCostBased},
      {"elevator (offset order)", core::SchedAlgo::kElevator},
  };
  std::printf("  %-30s %14s %14s %16s\n", "algorithm", "total ms",
              "mean wait ms", "priority pos");
  for (const Row& row : rows) {
    const SchedResult result = RunAlgo(row.algo);
    std::printf("  %-30s %14.1f %14.1f %13d/%d\n", row.label,
                static_cast<double>(result.completion_ns) / 1e6,
                result.mean_finish_ns / 1e6, result.priority_position + 1,
                kSmallRequests + kLargeRequests + 1);
  }
  std::printf(
      "\n  (The elevator cuts seek time on the HDD; priorities dispatch\n"
      "   first under every algorithm — the hooks §4's 'Configuring Mux'\n"
      "   asks for.)\n");
  return 0;
}

}  // namespace
}  // namespace mux::bench

int main() { return mux::bench::Run(); }
