// §3.2 write throughput overhead: sequential 4 MB writes through Mux vs
// direct access to the native file systems.
//
// Paper result: Mux costs 1.6% (PM), 2.2% (SSD), 3.5% (HDD) of write
// throughput. Shape: the per-call indirection is fixed, so on multi-
// millisecond 4 MB transfers it amounts to a few percent at most.
#include <cstdio>

#include "bench/bench_util.h"

namespace mux::bench {
namespace {

constexpr uint64_t kIoSize = 4 << 20;           // the paper's 4 MB writes
constexpr uint64_t kTotalBytes = 48ULL << 20;

template <typename Fs>
double MeasureWrites(Fs& fs, SimClock& clock, vfs::FileHandle handle) {
  auto data = Pattern(kIoSize, 5);
  SimTimer timer(clock);
  for (uint64_t off = 0; off < kTotalBytes; off += kIoSize) {
    auto w = fs.Write(handle, off, data.data(), kIoSize);
    if (!w.ok()) {
      return 0;
    }
  }
  if (!fs.Fsync(handle, false).ok()) {
    return 0;
  }
  return ThroughputMBps(kTotalBytes, timer.Elapsed());
}

double NativeThroughput(int tier_idx) {
  MuxRigSizes sizes;
  sizes.pm_bytes = 96ULL << 20;
  MuxRig rig(sizes);
  if (!rig.ok()) {
    return 0;
  }
  vfs::FileSystem* fs =
      tier_idx == 0 ? static_cast<vfs::FileSystem*>(&rig.novafs())
      : tier_idx == 1 ? static_cast<vfs::FileSystem*>(&rig.xfslite())
                      : static_cast<vfs::FileSystem*>(&rig.extlite());
  auto h = fs->Open("/native", vfs::OpenFlags::kCreateRw);
  if (!h.ok()) {
    return 0;
  }
  return MeasureWrites(*fs, rig.clock(), *h);
}

double MuxThroughput(const char* tier_name) {
  core::Mux::Options options;
  options.policy = "pin";
  options.policy_args = std::string("/=") + tier_name;
  MuxRigSizes sizes;
  sizes.pm_bytes = 96ULL << 20;
  MuxRig rig(options, sizes);
  if (!rig.ok()) {
    return 0;
  }
  auto h = rig.mux().Open("/muxed", vfs::OpenFlags::kCreateRw);
  if (!h.ok()) {
    return 0;
  }
  return MeasureWrites(rig.mux(), rig.clock(), *h);
}

int Run() {
  PrintHeader(
      "Sec 3.2: write throughput overhead (sequential 4 MB writes)");
  const char* names[3] = {"pm", "ssd", "hdd"};
  const char* labels[3] = {"PM (novafs)", "SSD (xfslite)", "HDD (extlite)"};
  const double paper[3] = {1.6, 2.2, 3.5};
  std::printf("  %-16s %14s %14s %10s %10s\n", "device", "native MB/s",
              "mux MB/s", "overhead", "paper");
  for (int i = 0; i < 3; ++i) {
    const double native_mbps = NativeThroughput(i);
    const double mux_mbps = MuxThroughput(names[i]);
    const double overhead =
        native_mbps > 0 ? (native_mbps - mux_mbps) / native_mbps * 100.0 : 0.0;
    std::printf("  %-16s %14.0f %14.0f %9.1f%% %9.1f%%\n", labels[i],
                native_mbps, mux_mbps, overhead, paper[i]);
  }
  return 0;
}

}  // namespace
}  // namespace mux::bench

int main() { return mux::bench::Run(); }
