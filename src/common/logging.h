// Minimal leveled logging. Off by default so tests and benchmarks stay quiet;
// enable with mux::SetLogLevel(LogLevel::kDebug) when debugging.
#ifndef MUX_COMMON_LOGGING_H_
#define MUX_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mux {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

namespace internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mux

#define MUX_LOG(level)                                              \
  if (::mux::LogLevel::level < ::mux::GetLogLevel()) {              \
  } else                                                            \
    ::mux::internal::LogLine(::mux::LogLevel::level, __FILE__, __LINE__)

// Fatal invariant check: prints and aborts. Used for programmer errors only
// (never for I/O failures, which surface as Status).
#define MUX_CHECK(cond)                                                   \
  if (cond) {                                                             \
  } else                                                                  \
    ::mux::internal::FatalLine(__FILE__, __LINE__, #cond)

namespace mux::internal {

class FatalLine {
 public:
  FatalLine(const char* file, int line, const char* cond);
  [[noreturn]] ~FatalLine();

  template <typename T>
  FatalLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace mux::internal

#endif  // MUX_COMMON_LOGGING_H_
