// Little-endian fixed-width encode/decode for on-"disk" structures.
// All persistent formats in this repo use these helpers so layouts are
// explicit and independent of host struct padding.
#ifndef MUX_COMMON_ENCODING_H_
#define MUX_COMMON_ENCODING_H_

#include <cstdint>
#include <cstring>

namespace mux {

inline void Put16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
inline void Put32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}
inline void Put64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

inline uint16_t Get16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}
inline uint32_t Get32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}
inline uint64_t Get64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace mux

#endif  // MUX_COMMON_ENCODING_H_
