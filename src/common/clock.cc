#include "src/common/clock.h"

namespace mux {

// Per-thread top of the cursor stack (see ScopedTimeCursor). One variable
// serves every SimClock instance; FindCursor() filters by clock identity.
thread_local SimClock::Cursor* SimClock::tls_top_ = nullptr;

}  // namespace mux
