#include "src/common/clock.h"

// SimClock is header-only today; this translation unit anchors the library
// and keeps room for future vtable-carrying clock variants.
