// Simulated time base.
//
// All device latencies and modelled CPU costs are charged to a SimClock
// instead of wall-clock time. This makes every benchmark deterministic and
// independent of host hardware: throughput = bytes / (end - start) in
// simulated nanoseconds.
//
// The clock is shared by every component of one simulated machine (devices,
// file systems, Mux). Threads advance it with atomic adds, so concurrent
// stress tests remain safe; single-threaded benchmarks remain exactly
// reproducible.
//
// Time cursors. A split request's segments execute on different devices
// concurrently, so their latencies must overlap (max) rather than accumulate
// (sum). ScopedTimeCursor gives the current thread a private view of the
// clock: while installed, Now()/Advance() on that thread read and charge a
// thread-local accumulator instead of the shared counter. When the cursor is
// destroyed it merges — a nested cursor adds its elapsed time to the
// enclosing cursor for the same clock, the outermost cursor pushes the shared
// clock forward to `origin + local` with a monotonic CAS-max (AdvanceTo).
// Executor workers instead call Release() to pop without merging and report
// their elapsed time to the dispatcher, which charges the max over the
// concurrent chains. A strictly single-threaded charge sequence produces
// bit-identical clock values with or without cursors.
#ifndef MUX_COMMON_CLOCK_H_
#define MUX_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace mux {

// Nanoseconds of simulated time.
using SimTime = uint64_t;

class ScopedTimeCursor;

class SimClock {
 public:
  SimClock() = default;
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  // Current simulated time as seen by this thread: the innermost cursor view
  // when one is installed for this clock, the shared counter otherwise.
  SimTime Now() const {
    if (const Cursor* c = FindCursor()) {
      return c->origin + c->local;
    }
    return now_.load(std::memory_order_relaxed);
  }

  // Charges `ns` of elapsed simulated time and returns the new time. With a
  // cursor installed the charge lands in the cursor's private accumulator.
  SimTime Advance(SimTime ns) {
    if (Cursor* c = FindCursor()) {
      c->local += ns;
      return c->origin + c->local;
    }
    return now_.fetch_add(ns, std::memory_order_relaxed) + ns;
  }

  // Monotonically raises the shared counter to at least `target` and returns
  // the resulting time. Never consults cursors: this is the merge primitive
  // concurrent chains use to publish their private end times.
  SimTime AdvanceTo(SimTime target) {
    SimTime cur = now_.load(std::memory_order_relaxed);
    while (cur < target &&
           !now_.compare_exchange_weak(cur, target, std::memory_order_relaxed)) {
    }
    return cur < target ? target : cur;
  }

  void Reset() { now_.store(0, std::memory_order_relaxed); }

 private:
  friend class ScopedTimeCursor;

  // One stack frame of the per-thread cursor stack. Frames live inside
  // ScopedTimeCursor objects (automatic storage), linked LIFO through prev.
  struct Cursor {
    const SimClock* clock = nullptr;
    SimTime origin = 0;  // shared-clock (or parent-cursor) time at install
    SimTime local = 0;   // simulated ns charged through this cursor
    Cursor* prev = nullptr;
  };

  // Innermost cursor on this thread belonging to this clock, or nullptr.
  // Cursors of unrelated clocks (common in tests running several rigs) are
  // skipped.
  Cursor* FindCursor() const {
    for (Cursor* c = tls_top_; c != nullptr; c = c->prev) {
      if (c->clock == this) {
        return c;
      }
    }
    return nullptr;
  }

  static thread_local Cursor* tls_top_;
  std::atomic<SimTime> now_{0};
};

// RAII installation of a private time cursor for `clock` on this thread.
class ScopedTimeCursor {
 public:
  // Starts the cursor at the current (cursor-aware) time, so nesting works:
  // a nested cursor begins where the enclosing one currently stands.
  explicit ScopedTimeCursor(SimClock* clock)
      : ScopedTimeCursor(clock, clock->Now()) {}

  // Starts the cursor at an explicit origin — used by executor workers to
  // continue a chain from the dispatcher's submit-time clock value.
  ScopedTimeCursor(SimClock* clock, SimTime origin) : clock_(clock) {
    frame_.clock = clock;
    frame_.origin = origin;
    frame_.prev = SimClock::tls_top_;
    parent_ = clock->FindCursor();
    SimClock::tls_top_ = &frame_;
  }

  ScopedTimeCursor(const ScopedTimeCursor&) = delete;
  ScopedTimeCursor& operator=(const ScopedTimeCursor&) = delete;

  ~ScopedTimeCursor() {
    if (active_) {
      Merge();
    }
  }

  // Simulated ns charged through this cursor so far.
  SimTime local() const { return frame_.local; }

  // Pops the cursor without publishing its time anywhere; returns the
  // accumulated charge. The caller owns merging (e.g. max over chains).
  SimTime Release() {
    Pop();
    return frame_.local;
  }

 private:
  void Merge() {
    Pop();
    if (parent_ != nullptr) {
      parent_->local += frame_.local;
    } else {
      clock_->AdvanceTo(frame_.origin + frame_.local);
    }
  }

  void Pop() {
    // Scoped objects destruct in LIFO order, so this frame is the top.
    SimClock::tls_top_ = frame_.prev;
    active_ = false;
  }

  SimClock* clock_;
  SimClock::Cursor frame_;
  SimClock::Cursor* parent_ = nullptr;  // enclosing cursor for the same clock
  bool active_ = true;
};

// A stopwatch over simulated time.
class SimTimer {
 public:
  explicit SimTimer(const SimClock& clock)
      : clock_(clock), start_(clock.Now()) {}

  SimTime Elapsed() const { return clock_.Now() - start_; }
  void Restart() { start_ = clock_.Now(); }

 private:
  const SimClock& clock_;
  SimTime start_;
};

// Conversions used when reporting results.
constexpr double NsToSeconds(SimTime ns) {
  return static_cast<double>(ns) / 1e9;
}
constexpr double ThroughputMBps(uint64_t bytes, SimTime elapsed_ns) {
  if (elapsed_ns == 0) {
    return 0.0;
  }
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / NsToSeconds(elapsed_ns);
}

}  // namespace mux

#endif  // MUX_COMMON_CLOCK_H_
