// Simulated time base.
//
// All device latencies and modelled CPU costs are charged to a SimClock
// instead of wall-clock time. This makes every benchmark deterministic and
// independent of host hardware: throughput = bytes / (end - start) in
// simulated nanoseconds.
//
// The clock is shared by every component of one simulated machine (devices,
// file systems, Mux). Threads advance it with atomic adds, so concurrent
// stress tests remain safe; single-threaded benchmarks remain exactly
// reproducible.
#ifndef MUX_COMMON_CLOCK_H_
#define MUX_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace mux {

// Nanoseconds of simulated time.
using SimTime = uint64_t;

class SimClock {
 public:
  SimClock() = default;
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  SimTime Now() const { return now_.load(std::memory_order_relaxed); }

  // Charges `ns` of elapsed simulated time and returns the new time.
  SimTime Advance(SimTime ns) {
    return now_.fetch_add(ns, std::memory_order_relaxed) + ns;
  }

  void Reset() { now_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<SimTime> now_{0};
};

// A stopwatch over simulated time.
class SimTimer {
 public:
  explicit SimTimer(const SimClock& clock)
      : clock_(clock), start_(clock.Now()) {}

  SimTime Elapsed() const { return clock_.Now() - start_; }
  void Restart() { start_ = clock_.Now(); }

 private:
  const SimClock& clock_;
  SimTime start_;
};

// Conversions used when reporting results.
constexpr double NsToSeconds(SimTime ns) {
  return static_cast<double>(ns) / 1e9;
}
constexpr double ThroughputMBps(uint64_t bytes, SimTime elapsed_ns) {
  if (elapsed_ns == 0) {
    return 0.0;
  }
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / NsToSeconds(elapsed_ns);
}

}  // namespace mux

#endif  // MUX_COMMON_CLOCK_H_
