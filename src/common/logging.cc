#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace mux {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kOff)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line,
               message.c_str());
}

namespace internal {

FatalLine::FatalLine(const char* file, int line, const char* cond)
    : file_(file), line_(line) {
  stream_ << "CHECK failed: " << cond << " ";
}

FatalLine::~FatalLine() {
  std::fprintf(stderr, "[F %s:%d] %s\n", file_, line_, stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace mux
