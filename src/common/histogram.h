// Latency histogram with power-of-two buckets; used by benchmarks to report
// avg / p50 / p99 over simulated-time samples.
#ifndef MUX_COMMON_HISTOGRAM_H_
#define MUX_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mux {

class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;
  // Approximate percentile (p in [0, 100]) via bucket interpolation.
  double Percentile(double p) const;

  // One-line summary, e.g. "n=1000 mean=1523.2 p50=1400 p99=9800 max=12000".
  std::string Summary() const;

 private:
  static constexpr int kNumBuckets = 64;
  static int BucketFor(uint64_t value);
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace mux

#endif  // MUX_COMMON_HISTOGRAM_H_
