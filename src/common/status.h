// Status and error codes for the whole library.
//
// The library does not use exceptions (os-systems style): every fallible
// operation returns a Status, or a Result<T> (see result.h) when it also
// produces a value. Codes intentionally mirror errno names so that callers
// porting POSIX code find the mapping obvious.
#ifndef MUX_COMMON_STATUS_H_
#define MUX_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mux {

enum class ErrorCode : uint8_t {
  kOk = 0,
  kNotFound,          // ENOENT
  kExists,            // EEXIST
  kInvalidArgument,   // EINVAL
  kNoSpace,           // ENOSPC
  kNotDir,            // ENOTDIR
  kIsDir,             // EISDIR
  kNotEmpty,          // ENOTEMPTY
  kBadHandle,         // EBADF
  kIoError,           // EIO
  kNotSupported,      // ENOTSUP
  kBusy,              // EBUSY
  kPermission,        // EACCES
  kOutOfRange,        // ERANGE / out-of-device access
  kCorruption,        // on-"disk" structure failed validation
  kConflict,          // OCC validation failed (internal; retried)
  kInternal,          // invariant violation
};

std::string_view ErrorCodeName(ErrorCode code);

// A cheap value type: one machine word when OK (the common case), a small
// string payload only on error.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  explicit Status(ErrorCode code) : code_(code) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" rendering.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors, e.g. NotFoundError("no such file: " + path).
Status NotFoundError(std::string message);
Status ExistsError(std::string message);
Status InvalidArgumentError(std::string message);
Status NoSpaceError(std::string message);
Status NotDirError(std::string message);
Status IsDirError(std::string message);
Status NotEmptyError(std::string message);
Status BadHandleError(std::string message);
Status IoError(std::string message);
Status NotSupportedError(std::string message);
Status BusyError(std::string message);
Status PermissionError(std::string message);
Status OutOfRangeError(std::string message);
Status CorruptionError(std::string message);
Status ConflictError(std::string message);
Status InternalError(std::string message);

}  // namespace mux

// Propagates a non-OK Status to the caller.
#define MUX_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::mux::Status _status = (expr);                \
    if (!_status.ok()) {                           \
      return _status;                              \
    }                                              \
  } while (0)

#endif  // MUX_COMMON_STATUS_H_
