// Deterministic random number generation for tests and workload generators.
#ifndef MUX_COMMON_RANDOM_H_
#define MUX_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace mux {

// SplitMix64: tiny, fast, and good enough for workload generation.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound).
  uint64_t Below(uint64_t bound) {
    assert(bound > 0);
    return Next() % bound;
  }

  // Uniform in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool OneIn(uint64_t n) { return Below(n) == 0; }

  // Fills `out` with pseudo-random bytes.
  void Fill(uint8_t* out, size_t n) {
    size_t i = 0;
    while (i + 8 <= n) {
      uint64_t v = Next();
      for (int b = 0; b < 8; ++b) {
        out[i++] = static_cast<uint8_t>(v >> (8 * b));
      }
    }
    if (i < n) {
      uint64_t v = Next();
      while (i < n) {
        out[i++] = static_cast<uint8_t>(v);
        v >>= 8;
      }
    }
  }

 private:
  uint64_t state_;
};

// Zipfian distribution over [0, n) with skew theta (0 = uniform-ish,
// 0.99 = YCSB default). Used by cache and policy benchmarks and the traffic
// engine, which constructs one generator per client thread over millions of
// keys — so the zeta normalisation constant must not be recomputed from
// scratch per instance. A process-wide cache keyed by theta remembers
// partial sums; zeta(n) extends incrementally from the largest cached
// n' <= n (the YCSB recurrence zeta(n) = zeta(n') + sum_{n'+1..n} i^-theta),
// making repeat construction O(1) and first construction at a new larger n
// O(n - n').
class ZipfianGenerator {
 public:
  // Terms actually summed across all CachedZeta calls; lets tests assert the
  // cache avoids recomputation (a second 1M-key generator must add 0 terms).
  static uint64_t zeta_terms_computed() {
    std::lock_guard<std::mutex> lock(CacheMu());
    return TermsComputed();
  }

  ZipfianGenerator(uint64_t n, double theta, uint64_t seed = 1)
      : rng_(seed), n_(n), theta_(theta) {
    assert(n > 0);
    zetan_ = CachedZeta(n, theta);
    zeta2_ = CachedZeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    double u = rng_.NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    return static_cast<uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static std::mutex& CacheMu() {
    static std::mutex mu;
    return mu;
  }
  // theta -> (n -> zeta(n, theta)). A handful of (n, theta) pairs per
  // process, so an exact-compare double key is fine: callers pass the same
  // literal theta.
  static std::map<double, std::map<uint64_t, double>>& Cache() {
    static std::map<double, std::map<uint64_t, double>> cache;
    return cache;
  }
  static uint64_t& TermsComputed() {
    static uint64_t terms = 0;
    return terms;
  }

  static double CachedZeta(uint64_t n, double theta) {
    std::lock_guard<std::mutex> lock(CacheMu());
    std::map<uint64_t, double>& by_n = Cache()[theta];
    // Resume from the largest cached prefix <= n.
    uint64_t from = 0;
    double sum = 0.0;
    auto it = by_n.upper_bound(n);
    if (it != by_n.begin()) {
      --it;
      from = it->first;
      sum = it->second;
      if (from == n) {
        return sum;
      }
    }
    for (uint64_t i = from + 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    TermsComputed() += n - from;
    by_n[n] = sum;
    return sum;
  }

  Rng rng_;
  uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace mux

#endif  // MUX_COMMON_RANDOM_H_
