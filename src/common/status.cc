#include "src/common/status.h"

namespace mux {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kExists:
      return "EXISTS";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNoSpace:
      return "NO_SPACE";
    case ErrorCode::kNotDir:
      return "NOT_DIR";
    case ErrorCode::kIsDir:
      return "IS_DIR";
    case ErrorCode::kNotEmpty:
      return "NOT_EMPTY";
    case ErrorCode::kBadHandle:
      return "BAD_HANDLE";
    case ErrorCode::kIoError:
      return "IO_ERROR";
    case ErrorCode::kNotSupported:
      return "NOT_SUPPORTED";
    case ErrorCode::kBusy:
      return "BUSY";
    case ErrorCode::kPermission:
      return "PERMISSION";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kCorruption:
      return "CORRUPTION";
    case ErrorCode::kConflict:
      return "CONFLICT";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status NotFoundError(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status ExistsError(std::string message) {
  return Status(ErrorCode::kExists, std::move(message));
}
Status InvalidArgumentError(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status NoSpaceError(std::string message) {
  return Status(ErrorCode::kNoSpace, std::move(message));
}
Status NotDirError(std::string message) {
  return Status(ErrorCode::kNotDir, std::move(message));
}
Status IsDirError(std::string message) {
  return Status(ErrorCode::kIsDir, std::move(message));
}
Status NotEmptyError(std::string message) {
  return Status(ErrorCode::kNotEmpty, std::move(message));
}
Status BadHandleError(std::string message) {
  return Status(ErrorCode::kBadHandle, std::move(message));
}
Status IoError(std::string message) {
  return Status(ErrorCode::kIoError, std::move(message));
}
Status NotSupportedError(std::string message) {
  return Status(ErrorCode::kNotSupported, std::move(message));
}
Status BusyError(std::string message) {
  return Status(ErrorCode::kBusy, std::move(message));
}
Status PermissionError(std::string message) {
  return Status(ErrorCode::kPermission, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(ErrorCode::kOutOfRange, std::move(message));
}
Status CorruptionError(std::string message) {
  return Status(ErrorCode::kCorruption, std::move(message));
}
Status ConflictError(std::string message) {
  return Status(ErrorCode::kConflict, std::move(message));
}
Status InternalError(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}

}  // namespace mux
