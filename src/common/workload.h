// Open-loop workload generation: arrival processes, op-mix selection, and a
// lock-free bounded op queue with drop accounting.
//
// The traffic engine (bench/traffic_engine) is open-loop: operations arrive
// on a fixed schedule regardless of whether the system keeps up, the way a
// front-end fleet keeps sending requests to a storage backend. That shape
// needs three pieces the closed-loop benches don't have:
//
//   * PoissonArrivals — exponential inter-arrival deltas for a given offered
//     rate. The dispatcher adds deltas to a *scheduled* timeline; when the
//     system falls behind, the schedule keeps advancing, so latency measured
//     against it includes the queueing the system actually caused
//     (coordinated-omission avoidance).
//   * WorkloadMix — picks read/write/metadata per op from configured
//     fractions, deterministically from the caller's Rng.
//   * MpmcQueue — a bounded lock-free multi-producer/multi-consumer ring
//     (Vyukov-style sequence numbers). When the ring is full the push FAILS
//     and the caller counts a drop instead of blocking: an open-loop
//     generator that blocks on a full queue silently degrades into a
//     closed-loop one and under-reports overload.
#ifndef MUX_COMMON_WORKLOAD_H_
#define MUX_COMMON_WORKLOAD_H_

#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <memory>
#include <new>

#include "src/common/random.h"

namespace mux {

// Exponential inter-arrival deltas for a Poisson process at `rate_per_sec`.
class PoissonArrivals {
 public:
  PoissonArrivals(double rate_per_sec, uint64_t seed)
      : rng_(seed), mean_ns_(1e9 / rate_per_sec) {
    assert(rate_per_sec > 0);
  }

  // Next inter-arrival gap in nanoseconds (>= 1 so schedules always advance).
  uint64_t NextDeltaNs() {
    // 1 - u in (0, 1]: log() never sees 0.
    double u = 1.0 - rng_.NextDouble();
    double delta = -std::log(u) * mean_ns_;
    if (delta < 1.0) {
      return 1;
    }
    return static_cast<uint64_t>(delta);
  }

  double mean_ns() const { return mean_ns_; }

 private:
  Rng rng_;
  double mean_ns_;
};

enum class WorkloadOp : uint8_t {
  kRead = 0,
  kWrite,
  kStat,
  kReadDir,
};

// Picks the op class for each arrival from configured fractions. Metadata
// ops split evenly between Stat and ReadDir.
class WorkloadMix {
 public:
  WorkloadMix(double read_fraction, double write_fraction,
              double meta_fraction)
      : read_cut_(read_fraction),
        write_cut_(read_fraction + write_fraction) {
    assert(read_fraction >= 0 && write_fraction >= 0 && meta_fraction >= 0);
    assert(read_fraction + write_fraction + meta_fraction <= 1.0 + 1e-9);
    (void)meta_fraction;
  }

  WorkloadOp Pick(Rng& rng) const {
    double u = rng.NextDouble();
    if (u < read_cut_) {
      return WorkloadOp::kRead;
    }
    if (u < write_cut_) {
      return WorkloadOp::kWrite;
    }
    return rng.OneIn(2) ? WorkloadOp::kStat : WorkloadOp::kReadDir;
  }

 private:
  double read_cut_;
  double write_cut_;
};

// Bounded lock-free MPMC ring buffer (Dmitry Vyukov's sequence-number
// design). TryPush returns false when full — the producer counts the drop;
// TryPop returns false when empty — the consumer spins or parks. T must be
// trivially movable; cells are padded to avoid false sharing on the
// head/tail counters.
template <typename T>
class MpmcQueue {
 public:
  // Capacity is rounded up to a power of two (sequence arithmetic needs it).
  explicit MpmcQueue(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
  }

  size_t capacity() const { return mask_ + 1; }

  bool TryPush(T value) {
    Cell* cell;
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->seq.load(std::memory_order_acquire);
      intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool TryPop(T* out) {
    Cell* cell;
    size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->seq.load(std::memory_order_acquire);
      intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    *out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  // Pushes rejected because the ring was full. Monotonic; the producer folds
  // this into its offered-vs-completed accounting.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Approximate occupancy (racy; for monitoring only).
  size_t ApproxSize() const {
    size_t tail = tail_.load(std::memory_order_relaxed);
    size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<size_t> seq;
    T value;
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
  alignas(64) std::atomic<uint64_t> dropped_{0};
};

}  // namespace mux

#endif  // MUX_COMMON_WORKLOAD_H_
