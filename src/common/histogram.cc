#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace mux {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value == 0) {
    return 0;
  }
  return std::min(kNumBuckets - 1, 64 - std::countl_zero(value));
}

void Histogram::Add(uint64_t value) {
  buckets_[BucketFor(value)]++;
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  max_ = std::max(max_, value);
  sum_ += value;
  count_++;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

double Histogram::Mean() const {
  if (count_ == 0) {
    return 0.0;
  }
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const uint64_t next = seen + buckets_[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within [2^(i-1), 2^i).
      const double lo = i == 0 ? 0.0 : static_cast<double>(1ULL << (i - 1));
      const double hi = static_cast<double>(1ULL << std::min(i, 62));
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets_[i]);
      // Bucket interpolation can undershoot the smallest recorded sample
      // (e.g. p0 of one value in a [2^(i-1), 2^i) bucket) or overshoot the
      // largest; clamp to the observed range.
      return std::min(std::max(lo + frac * (hi - lo),
                               static_cast<double>(min_)),
                      static_cast<double>(max_));
    }
    seen = next;
  }
  return static_cast<double>(max_);
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f p50=%.0f p99=%.0f max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                Percentile(50), Percentile(99),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace mux
