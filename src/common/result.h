// Result<T>: value-or-Status, the library's StatusOr equivalent.
#ifndef MUX_COMMON_RESULT_H_
#define MUX_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace mux {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit conversions from T and Status keep call sites terse:
  //   Result<int> F() { if (bad) return InvalidArgumentError("…"); return 7; }
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Status status) : status_(std::move(status)) {     // NOLINT
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace mux

// ASSIGN_OR_RETURN equivalent. Usage:
//   MUX_ASSIGN_OR_RETURN(auto handle, fs.Open(path));
#define MUX_ASSIGN_OR_RETURN(decl, expr)                        \
  MUX_ASSIGN_OR_RETURN_IMPL_(                                   \
      MUX_RESULT_CONCAT_(_mux_result_, __LINE__), decl, expr)

#define MUX_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  decl = std::move(tmp).value()

#define MUX_RESULT_CONCAT_(a, b) MUX_RESULT_CONCAT_2_(a, b)
#define MUX_RESULT_CONCAT_2_(a, b) a##b

#endif  // MUX_COMMON_RESULT_H_
