// CRC32 (Castagnoli polynomial, table-driven) for on-disk structure
// validation in journals and superblocks.
#ifndef MUX_COMMON_CHECKSUM_H_
#define MUX_COMMON_CHECKSUM_H_

#include <array>
#include <cstdint>
#include <cstddef>

namespace mux {

namespace internal {
constexpr uint32_t kCrc32cPoly = 0x82f63b78u;

constexpr std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kCrc32cPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrcTable = MakeCrcTable();
}  // namespace internal

inline uint32_t Crc32c(const uint8_t* data, size_t n, uint32_t seed = 0) {
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ internal::kCrcTable[(crc ^ data[i]) & 0xff];
  }
  return ~crc;
}

}  // namespace mux

#endif  // MUX_COMMON_CHECKSUM_H_
