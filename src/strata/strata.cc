#include "src/strata/strata.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"
#include "src/vfs/path.h"

namespace mux::strata {

std::string_view TierName(Tier tier) {
  switch (tier) {
    case Tier::kPm:
      return "PM";
    case Tier::kSsd:
      return "SSD";
    case Tier::kHdd:
      return "HDD";
  }
  return "?";
}

StrataFs::StrataFs(device::PmDevice* pm, device::BlockDevice* ssd,
                   device::BlockDevice* hdd, SimClock* clock)
    : StrataFs(pm, ssd, hdd, clock, Options()) {}

StrataFs::StrataFs(device::PmDevice* pm, device::BlockDevice* ssd,
                   device::BlockDevice* hdd, SimClock* clock, Options options)
    : pm_(pm), ssd_(ssd), hdd_(hdd), clock_(clock), options_(options) {
  pm_pages_ = pm_->capacity() / kPageSize;
  log_pages_ = std::max<uint64_t>(
      8, static_cast<uint64_t>(static_cast<double>(pm_pages_) *
                               options_.log_fraction));
}

Status StrataFs::Format() {
  std::lock_guard<std::mutex> lock(mu_);
  inodes_.clear();
  open_files_.clear();
  file_locks_.clear();
  pm_alloc_ = fs::ExtentAllocator(0, pm_pages_);
  ssd_alloc_ = fs::ExtentAllocator(0, ssd_->capacity_blocks());
  hdd_alloc_ = fs::ExtentAllocator(0, hdd_->capacity_blocks());
  log_pages_used_ = 0;
  stats_ = StrataStats{};

  Inode root;
  root.ino = 1;
  root.type = vfs::FileType::kDirectory;
  root.mode = 0755;
  root.ctime = root.mtime = root.atime = clock_->Now();
  inodes_.emplace(root.ino, std::move(root));
  return Status::Ok();
}

// ---- internals -------------------------------------------------------------

Result<StrataFs::Inode*> StrataFs::ResolveLocked(const std::string& path) {
  if (!vfs::IsValidPath(path)) {
    return InvalidArgumentError("invalid path: " + path);
  }
  Inode* cur = &inodes_.at(1);
  for (const auto& part : vfs::SplitPath(path)) {
    if (cur->type != vfs::FileType::kDirectory) {
      return NotDirError(path);
    }
    auto it = cur->children.find(part);
    if (it == cur->children.end()) {
      return NotFoundError(path);
    }
    cur = &inodes_.at(it->second);
  }
  return cur;
}

Result<StrataFs::Inode*> StrataFs::ResolveDirLocked(const std::string& path) {
  MUX_ASSIGN_OR_RETURN(Inode * node, ResolveLocked(path));
  if (node->type != vfs::FileType::kDirectory) {
    return NotDirError(path);
  }
  return node;
}

Result<StrataFs::Inode*> StrataFs::HandleInodeLocked(vfs::FileHandle handle,
                                                     uint32_t needed_flags) {
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    return BadHandleError("unknown handle");
  }
  if ((it->second.flags & needed_flags) != needed_flags) {
    return PermissionError("handle lacks required access mode");
  }
  auto node = inodes_.find(it->second.ino);
  if (node == inodes_.end()) {
    return BadHandleError("file was removed");
  }
  return &node->second;
}

Result<uint64_t> StrataFs::AllocOnTierLocked(Tier tier) {
  switch (tier) {
    case Tier::kPm:
      return pm_alloc_.AllocContiguous(1);
    case Tier::kSsd:
      return ssd_alloc_.AllocContiguous(1);
    case Tier::kHdd:
      return hdd_alloc_.AllocContiguous(1);
  }
  return InternalError("bad tier");
}

Status StrataFs::FreeOnTierLocked(Tier tier, uint64_t block) {
  switch (tier) {
    case Tier::kPm:
      return pm_alloc_.Free(block, 1);
    case Tier::kSsd:
      return ssd_alloc_.Free(block, 1);
    case Tier::kHdd:
      return hdd_alloc_.Free(block, 1);
  }
  return InternalError("bad tier");
}

Status StrataFs::DropBlockLocked(Inode& inode, uint64_t file_page) {
  auto log_it = inode.in_log.find(file_page);
  if (log_it != inode.in_log.end()) {
    MUX_RETURN_IF_ERROR(pm_alloc_.Free(log_it->second, 1));
    log_pages_used_--;
    inode.in_log.erase(log_it);
  }
  auto tree_it = inode.tree.find(file_page);
  if (tree_it != inode.tree.end()) {
    MUX_RETURN_IF_ERROR(
        FreeOnTierLocked(tree_it->second.tier, tree_it->second.block));
    inode.tree.erase(tree_it);
  }
  return Status::Ok();
}

Status StrataFs::AppendLogBlockLocked(Inode& inode, uint64_t file_page,
                                      const uint8_t* data) {
  // The log budget bounds undigested data; hitting it forces a synchronous
  // digest (Strata's digest stall).
  if (log_pages_used_ >= log_pages_) {
    MUX_RETURN_IF_ERROR(DigestAllLocked());
  }
  auto page = pm_alloc_.AllocContiguous(1);
  if (!page.ok()) {
    MUX_RETURN_IF_ERROR(DigestAllLocked());
    MUX_ASSIGN_OR_RETURN(page, pm_alloc_.AllocContiguous(1));
  }
  // Record header (metadata describing the write) + payload, both persisted
  // — the paper's write-amplification point: this happens even when the
  // data's final home is PM itself.
  clock_->Advance(options_.log_record_ns);
  const uint64_t addr = *page * kPageSize;
  MUX_RETURN_IF_ERROR(pm_->Store(addr, kLogRecordHeader, data));  // header
  MUX_RETURN_IF_ERROR(pm_->Store(addr, kPageSize, data));         // payload
  MUX_RETURN_IF_ERROR(pm_->Persist(addr, kPageSize));
  log_pages_used_++;
  stats_.log_appends++;
  stats_.log_bytes += kPageSize + kLogRecordHeader;

  // Newest version wins; retire any older log copy of the same page.
  auto old = inode.in_log.find(file_page);
  if (old != inode.in_log.end()) {
    MUX_RETURN_IF_ERROR(pm_alloc_.Free(old->second, 1));
    log_pages_used_--;
    old->second = *page;
  } else {
    inode.in_log.emplace(file_page, *page);
  }

  // Digest watermark.
  if (static_cast<double>(log_pages_used_) >
      options_.digest_watermark * static_cast<double>(log_pages_)) {
    MUX_RETURN_IF_ERROR(DigestAllLocked());
  }
  return Status::Ok();
}

Status StrataFs::DigestInodeLocked(Inode& inode) {
  if (inode.in_log.empty()) {
    return Status::Ok();
  }
  // The per-file lock is held for the whole digest of this inode — the
  // extent tree is "partially locked" and readers of unrelated blocks wait.
  std::mutex* file_lock = nullptr;
  auto lock_it = file_locks_.find(inode.ino);
  if (lock_it != file_locks_.end()) {
    file_lock = lock_it->second.get();
  }
  if (file_lock != nullptr) {
    file_lock->lock();
    stats_.lock_acquisitions++;
  }

  // Digest in file order, coalescing contiguous target allocations into
  // batched device writes up to Strata's digest granularity.
  constexpr uint64_t kDigestBatchBlocks = 64;  // 256 KiB
  std::vector<uint8_t> buf(kDigestBatchBlocks * kPageSize);
  Status s = Status::Ok();
  for (auto it = inode.in_log.begin(); s.ok() && it != inode.in_log.end();) {
    const uint64_t file_page = it->first;
    const uint64_t log_page = it->second;
    clock_->Advance(options_.digest_block_ns);

    // Retire the old committed block, if any.
    auto tree_it = inode.tree.find(file_page);
    if (tree_it != inode.tree.end()) {
      s = FreeOnTierLocked(tree_it->second.tier, tree_it->second.block);
      if (!s.ok()) {
        break;
      }
      inode.tree.erase(tree_it);
    }

    if (inode.target == Tier::kPm) {
      // Metadata-only digest: the log page is adopted as the file block
      // (Strata's NVM fast path); the page just moves out of the log budget.
      inode.tree[file_page] = BlockLoc{Tier::kPm, log_page};
      log_pages_used_--;
      it = inode.in_log.erase(it);
      stats_.digested_blocks++;
      continue;
    }

    // Gather a batch: consecutive file pages whose target allocations come
    // out contiguous.
    auto target_block = AllocOnTierLocked(inode.target);
    if (!target_block.ok()) {
      s = target_block.status();
      break;
    }
    std::vector<std::pair<uint64_t, uint64_t>> batch;  // (file_page, log_page)
    batch.emplace_back(file_page, log_page);
    auto probe = std::next(it);
    while (batch.size() < kDigestBatchBlocks && probe != inode.in_log.end() &&
           probe->first == batch.back().first + 1 &&
           !inode.tree.contains(probe->first)) {
      auto next_block = AllocOnTierLocked(inode.target);
      if (!next_block.ok() ||
          *next_block != *target_block + batch.size()) {
        if (next_block.ok()) {
          // Non-contiguous: return it and stop the batch.
          s = FreeOnTierLocked(inode.target, *next_block);
          if (!s.ok()) {
            break;
          }
        }
        break;
      }
      clock_->Advance(options_.digest_block_ns);
      batch.emplace_back(probe->first, probe->second);
      ++probe;
    }
    if (!s.ok()) {
      break;
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      s = pm_->Load(batch[i].second * kPageSize, kPageSize,
                    buf.data() + i * kPageSize);
      if (!s.ok()) {
        break;
      }
    }
    if (!s.ok()) {
      break;
    }
    s = inode.target == Tier::kSsd
            ? ssd_->WriteBlocks(*target_block,
                                static_cast<uint32_t>(batch.size()),
                                buf.data())
            : hdd_->WriteBlocks(*target_block,
                                static_cast<uint32_t>(batch.size()),
                                buf.data());
    if (!s.ok()) {
      break;
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      inode.tree[batch[i].first] =
          BlockLoc{inode.target, *target_block + i};
      s = pm_alloc_.Free(batch[i].second, 1);
      if (!s.ok()) {
        break;
      }
      log_pages_used_--;
      stats_.digested_blocks++;
    }
    if (!s.ok()) {
      break;
    }
    it = inode.in_log.erase(it, probe);
  }
  if (!s.ok()) {
    if (file_lock != nullptr) {
      file_lock->unlock();
    }
    return s;
  }
  if (file_lock != nullptr) {
    file_lock->unlock();
  }
  stats_.digests++;
  return Status::Ok();
}

Status StrataFs::DigestAllLocked() {
  for (auto& [ino, inode] : inodes_) {
    MUX_RETURN_IF_ERROR(DigestInodeLocked(inode));
  }
  return Status::Ok();
}

Status StrataFs::ReadBlockLocked(const Inode& inode, uint64_t file_page,
                                 uint8_t* out) {
  auto log_it = inode.in_log.find(file_page);
  if (log_it != inode.in_log.end()) {
    return pm_->Load(log_it->second * kPageSize, kPageSize, out);
  }
  auto tree_it = inode.tree.find(file_page);
  if (tree_it == inode.tree.end()) {
    std::memset(out, 0, kPageSize);
    return Status::Ok();
  }
  switch (tree_it->second.tier) {
    case Tier::kPm:
      return pm_->Load(tree_it->second.block * kPageSize, kPageSize, out);
    case Tier::kSsd:
      return ssd_->ReadBlocks(tree_it->second.block, 1, out);
    case Tier::kHdd:
      return hdd_->ReadBlocks(tree_it->second.block, 1, out);
  }
  return InternalError("bad tier in extent tree");
}

Status StrataFs::FreeInodeLocked(Inode& inode) {
  while (!inode.in_log.empty() || !inode.tree.empty()) {
    const uint64_t page = !inode.in_log.empty() ? inode.in_log.begin()->first
                                                : inode.tree.begin()->first;
    MUX_RETURN_IF_ERROR(DropBlockLocked(inode, page));
  }
  file_locks_.erase(inode.ino);
  inodes_.erase(inode.ino);
  return Status::Ok();
}

// ---- tiering controls ----------------------------------------------------------

Status StrataFs::SetFileTier(const std::string& path, Tier tier) {
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node, ResolveLocked(path));
  node->target = tier;
  return Status::Ok();
}

bool StrataFs::SupportsMigration(Tier from, Tier to) {
  // The static routing table (Fig. 3a): only these two paths are wired.
  return from == Tier::kPm && (to == Tier::kSsd || to == Tier::kHdd);
}

Status StrataFs::MigrateFile(const std::string& path, Tier from, Tier to) {
  if (!SupportsMigration(from, to)) {
    return NotSupportedError(
        std::string("strata has no migration path ") +
        std::string(TierName(from)) + "->" + std::string(TierName(to)));
  }
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node, ResolveLocked(path));
  // Everything must be digested before the tree can be rewritten.
  MUX_RETURN_IF_ERROR(DigestInodeLocked(*node));

  auto& lock_slot = file_locks_[node->ino];
  if (lock_slot == nullptr) {
    lock_slot = std::make_unique<std::mutex>();
  }
  std::vector<uint8_t> buf(kPageSize);
  for (auto& [file_page, loc] : node->tree) {
    if (loc.tier != from) {
      continue;
    }
    // Lock-based migration: the file lock is taken per block, and the block
    // is copied while it is held.
    lock_slot->lock();
    stats_.lock_acquisitions++;
    clock_->Advance(options_.migrate_block_ns);
    auto target_block = AllocOnTierLocked(to);
    Status s = target_block.status();
    if (s.ok()) {
      s = pm_->Load(loc.block * kPageSize, kPageSize, buf.data());
    }
    if (s.ok()) {
      s = to == Tier::kSsd ? ssd_->WriteBlocks(*target_block, 1, buf.data())
                           : hdd_->WriteBlocks(*target_block, 1, buf.data());
    }
    if (s.ok()) {
      // PM blocks adopted from the log live in the log allocator.
      s = pm_alloc_.Free(loc.block, 1);
    }
    if (s.ok()) {
      loc = BlockLoc{to, *target_block};
      stats_.migrated_blocks++;
    }
    lock_slot->unlock();
    MUX_RETURN_IF_ERROR(s);
  }
  return Status::Ok();
}

Status StrataFs::DigestAll() {
  std::lock_guard<std::mutex> lock(mu_);
  return DigestAllLocked();
}

StrataStats StrataFs::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t StrataFs::LogBytesUsed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_pages_used_ * kPageSize;
}

// ---- vfs::FileSystem -------------------------------------------------------------

Result<vfs::FileHandle> StrataFs::Open(const std::string& path, uint32_t flags,
                                       uint32_t mode) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  auto resolved = ResolveLocked(path);
  Inode* node = nullptr;
  if (resolved.ok()) {
    if ((flags & vfs::OpenFlags::kExclusive) &&
        (flags & vfs::OpenFlags::kCreate)) {
      return ExistsError(path);
    }
    node = *resolved;
    if (node->type == vfs::FileType::kDirectory) {
      return IsDirError(path);
    }
    if (flags & vfs::OpenFlags::kTruncate) {
      while (!node->in_log.empty() || !node->tree.empty()) {
        const uint64_t page = !node->in_log.empty()
                                  ? node->in_log.begin()->first
                                  : node->tree.begin()->first;
        MUX_RETURN_IF_ERROR(DropBlockLocked(*node, page));
      }
      node->size = 0;
      node->mtime = clock_->Now();
    }
  } else if (resolved.status().code() == ErrorCode::kNotFound &&
             (flags & vfs::OpenFlags::kCreate)) {
    MUX_ASSIGN_OR_RETURN(Inode * parent,
                         ResolveDirLocked(vfs::Dirname(path)));
    const vfs::InodeNum parent_ino = parent->ino;
    Inode inode;
    inode.ino = next_ino_++;
    inode.type = vfs::FileType::kRegular;
    inode.mode = mode;
    inode.ctime = inode.mtime = inode.atime = clock_->Now();
    const vfs::InodeNum ino = inode.ino;
    inodes_.emplace(ino, std::move(inode));
    file_locks_.emplace(ino, std::make_unique<std::mutex>());
    Inode& parent_ref = inodes_.at(parent_ino);
    parent_ref.children.emplace(vfs::Basename(path), ino);
    parent_ref.mtime = clock_->Now();
    node = &inodes_.at(ino);
  } else {
    return resolved.status();
  }
  const vfs::FileHandle handle = next_handle_++;
  open_files_.emplace(handle, OpenFile{node->ino, flags});
  return handle;
}

Status StrataFs::Close(vfs::FileHandle handle) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  if (open_files_.erase(handle) == 0) {
    return BadHandleError("close of unknown handle");
  }
  return Status::Ok();
}

Status StrataFs::Mkdir(const std::string& path, uint32_t mode) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  if (!vfs::IsValidPath(path) || vfs::NormalizePath(path) == "/") {
    return InvalidArgumentError("invalid mkdir path: " + path);
  }
  if (ResolveLocked(path).ok()) {
    return ExistsError(path);
  }
  MUX_ASSIGN_OR_RETURN(Inode * parent, ResolveDirLocked(vfs::Dirname(path)));
  const vfs::InodeNum parent_ino = parent->ino;
  Inode inode;
  inode.ino = next_ino_++;
  inode.type = vfs::FileType::kDirectory;
  inode.mode = mode;
  inode.ctime = inode.mtime = inode.atime = clock_->Now();
  const vfs::InodeNum ino = inode.ino;
  inodes_.emplace(ino, std::move(inode));
  Inode& parent_ref = inodes_.at(parent_ino);
  parent_ref.children.emplace(vfs::Basename(path), ino);
  parent_ref.mtime = clock_->Now();
  return Status::Ok();
}

Status StrataFs::Rmdir(const std::string& path) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  if (vfs::NormalizePath(path) == "/") {
    return InvalidArgumentError("cannot remove root");
  }
  MUX_ASSIGN_OR_RETURN(Inode * node, ResolveLocked(path));
  if (node->type != vfs::FileType::kDirectory) {
    return NotDirError(path);
  }
  if (!node->children.empty()) {
    return NotEmptyError(path);
  }
  MUX_ASSIGN_OR_RETURN(Inode * parent, ResolveDirLocked(vfs::Dirname(path)));
  parent->children.erase(vfs::Basename(path));
  parent->mtime = clock_->Now();
  return FreeInodeLocked(*node);
}

Status StrataFs::Unlink(const std::string& path) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node, ResolveLocked(path));
  if (node->type == vfs::FileType::kDirectory) {
    return IsDirError(path);
  }
  MUX_ASSIGN_OR_RETURN(Inode * parent, ResolveDirLocked(vfs::Dirname(path)));
  parent->children.erase(vfs::Basename(path));
  parent->mtime = clock_->Now();
  return FreeInodeLocked(*node);
}

Status StrataFs::Rename(const std::string& from, const std::string& to) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node, ResolveLocked(from));
  if (!vfs::IsValidPath(to)) {
    return InvalidArgumentError("invalid rename target: " + to);
  }
  if (vfs::PathHasPrefix(to, from) &&
      vfs::NormalizePath(to) != vfs::NormalizePath(from)) {
    return InvalidArgumentError("cannot rename a directory into itself");
  }
  auto existing = ResolveLocked(to);
  if (existing.ok()) {
    Inode* target = *existing;
    if (target->type == vfs::FileType::kDirectory &&
        !target->children.empty()) {
      return NotEmptyError(to);
    }
    MUX_ASSIGN_OR_RETURN(Inode * to_parent, ResolveDirLocked(vfs::Dirname(to)));
    to_parent->children.erase(vfs::Basename(to));
    MUX_RETURN_IF_ERROR(FreeInodeLocked(*target));
  }
  MUX_ASSIGN_OR_RETURN(Inode * from_parent,
                       ResolveDirLocked(vfs::Dirname(from)));
  from_parent->children.erase(vfs::Basename(from));
  from_parent->mtime = clock_->Now();
  MUX_ASSIGN_OR_RETURN(Inode * to_parent, ResolveDirLocked(vfs::Dirname(to)));
  to_parent->children[vfs::Basename(to)] = node->ino;
  to_parent->mtime = clock_->Now();
  return Status::Ok();
}

Result<vfs::FileStat> StrataFs::Stat(const std::string& path) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node, ResolveLocked(path));
  vfs::FileStat st;
  st.ino = node->ino;
  st.type = node->type;
  st.size = node->size;
  st.allocated_bytes = (node->tree.size() + node->in_log.size()) * kPageSize;
  st.atime = node->atime;
  st.mtime = node->mtime;
  st.ctime = node->ctime;
  st.mode = node->mode;
  return st;
}

Result<std::vector<vfs::DirEntry>> StrataFs::ReadDir(const std::string& path) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * dir, ResolveDirLocked(path));
  std::vector<vfs::DirEntry> entries;
  entries.reserve(dir->children.size());
  for (const auto& [name, ino] : dir->children) {
    entries.push_back(vfs::DirEntry{name, inodes_.at(ino).type, ino});
  }
  return entries;
}

Result<uint64_t> StrataFs::Read(vfs::FileHandle handle, uint64_t offset,
                                uint64_t length, uint8_t* out) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kRead));
  if (offset >= node->size) {
    return uint64_t{0};
  }
  const uint64_t n = std::min(length, node->size - offset);
  std::vector<uint8_t> page_buf(kPageSize);
  uint64_t done = 0;
  while (done < n) {
    const uint64_t pos = offset + done;
    const uint64_t page = pos / kPageSize;
    const uint64_t in_page = pos % kPageSize;
    const uint64_t chunk = std::min(n - done, kPageSize - in_page);
    MUX_RETURN_IF_ERROR(ReadBlockLocked(*node, page, page_buf.data()));
    std::memcpy(out + done, page_buf.data() + in_page, chunk);
    done += chunk;
  }
  node->atime = clock_->Now();
  return n;
}

Result<uint64_t> StrataFs::Write(vfs::FileHandle handle, uint64_t offset,
                                 const uint8_t* data, uint64_t length) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kWrite));
  if (length == 0) {
    return uint64_t{0};
  }
  std::vector<uint8_t> staging(kPageSize);
  uint64_t done = 0;
  while (done < length) {
    const uint64_t pos = offset + done;
    const uint64_t page = pos / kPageSize;
    const uint64_t in_page = pos % kPageSize;
    const uint64_t chunk = std::min(length - done, kPageSize - in_page);
    if (chunk < kPageSize) {
      // Partial page: read-modify-write through the log.
      MUX_RETURN_IF_ERROR(ReadBlockLocked(*node, page, staging.data()));
      std::memcpy(staging.data() + in_page, data + done, chunk);
      MUX_RETURN_IF_ERROR(AppendLogBlockLocked(*node, page, staging.data()));
    } else {
      MUX_RETURN_IF_ERROR(AppendLogBlockLocked(*node, page, data + done));
    }
    done += chunk;
  }
  node->size = std::max(node->size, offset + length);
  node->mtime = clock_->Now();
  return length;
}

Status StrataFs::Truncate(vfs::FileHandle handle, uint64_t new_size) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kWrite));
  if (new_size < node->size) {
    const uint64_t first_dead = (new_size + kPageSize - 1) / kPageSize;
    std::vector<uint64_t> dead;
    for (const auto& [page, loc] : node->tree) {
      if (page >= first_dead) {
        dead.push_back(page);
      }
    }
    for (const auto& [page, log_page] : node->in_log) {
      if (page >= first_dead) {
        dead.push_back(page);
      }
    }
    for (uint64_t page : dead) {
      MUX_RETURN_IF_ERROR(DropBlockLocked(*node, page));
    }
    // Zero the retained tail through the write path.
    if (new_size % kPageSize != 0 &&
        (node->tree.contains(new_size / kPageSize) ||
         node->in_log.contains(new_size / kPageSize))) {
      std::vector<uint8_t> staging(kPageSize);
      MUX_RETURN_IF_ERROR(
          ReadBlockLocked(*node, new_size / kPageSize, staging.data()));
      std::memset(staging.data() + new_size % kPageSize, 0,
                  kPageSize - new_size % kPageSize);
      MUX_RETURN_IF_ERROR(
          AppendLogBlockLocked(*node, new_size / kPageSize, staging.data()));
    }
  }
  node->size = new_size;
  node->mtime = clock_->Now();
  return Status::Ok();
}

Status StrataFs::Fsync(vfs::FileHandle handle, bool data_only) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  // The log is persisted at write time; fsync has nothing to flush.
  return HandleInodeLocked(handle, 0).status();
}

Status StrataFs::Fallocate(vfs::FileHandle handle, uint64_t offset,
                           uint64_t length, bool keep_size) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kWrite));
  if (length == 0) {
    return InvalidArgumentError("zero-length fallocate");
  }
  std::vector<uint8_t> zeros(kPageSize, 0);
  const uint64_t first = offset / kPageSize;
  const uint64_t last = (offset + length - 1) / kPageSize;
  for (uint64_t page = first; page <= last; ++page) {
    if (node->tree.contains(page) || node->in_log.contains(page)) {
      continue;
    }
    MUX_RETURN_IF_ERROR(AppendLogBlockLocked(*node, page, zeros.data()));
  }
  if (!keep_size) {
    node->size = std::max(node->size, offset + length);
  }
  return Status::Ok();
}

Status StrataFs::PunchHole(vfs::FileHandle handle, uint64_t offset,
                           uint64_t length) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kWrite));
  if (offset % kPageSize != 0 || length % kPageSize != 0 || length == 0) {
    return InvalidArgumentError("hole punch must be block aligned");
  }
  const uint64_t first = offset / kPageSize;
  const uint64_t last = first + length / kPageSize;
  std::vector<uint64_t> dead;
  for (const auto& [page, loc] : node->tree) {
    if (page >= first && page < last) {
      dead.push_back(page);
    }
  }
  for (const auto& [page, log_page] : node->in_log) {
    if (page >= first && page < last) {
      dead.push_back(page);
    }
  }
  for (uint64_t page : dead) {
    MUX_RETURN_IF_ERROR(DropBlockLocked(*node, page));
  }
  node->mtime = clock_->Now();
  return Status::Ok();
}

Result<vfs::FileStat> StrataFs::FStat(vfs::FileHandle handle) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node, HandleInodeLocked(handle, 0));
  vfs::FileStat st;
  st.ino = node->ino;
  st.type = node->type;
  st.size = node->size;
  st.allocated_bytes = (node->tree.size() + node->in_log.size()) * kPageSize;
  st.atime = node->atime;
  st.mtime = node->mtime;
  st.ctime = node->ctime;
  st.mode = node->mode;
  return st;
}

Status StrataFs::SetAttr(vfs::FileHandle handle,
                         const vfs::AttrUpdate& update) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node, HandleInodeLocked(handle, 0));
  if (update.atime) {
    node->atime = *update.atime;
  }
  if (update.mtime) {
    node->mtime = *update.mtime;
  }
  if (update.mode) {
    node->mode = *update.mode;
  }
  return Status::Ok();
}

Result<vfs::FsStats> StrataFs::StatFs() {
  std::lock_guard<std::mutex> lock(mu_);
  vfs::FsStats st;
  st.capacity_bytes = pm_pages_ * kPageSize +
                      ssd_->profile().capacity_bytes +
                      hdd_->profile().capacity_bytes;
  st.free_bytes = (pm_alloc_.FreeUnits() + ssd_alloc_.FreeUnits() +
                   hdd_alloc_.FreeUnits()) *
                  kPageSize;
  st.total_inodes = 1u << 20;
  st.free_inodes = st.total_inodes - inodes_.size();
  return st;
}

Status StrataFs::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return DigestAllLocked();
}

}  // namespace mux::strata
