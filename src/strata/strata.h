// StrataFs — reimplementation of the paper's baseline: a monolithic tiered
// file system in the style of Strata (SOSP '17).
//
// Faithful-to-the-critique properties (the two §3.1 attributes the paper
// blames for Strata's losses):
//
//  1. Log-then-digest writes. EVERY write first appends a record (header +
//     payload) to an operation log on PM and is only later "digested" into
//     file blocks on its target device. For PM-resident data the digest is
//     metadata-only (the log block is adopted as the file block), but the
//     per-record header/persist traffic and digest stalls remain — write
//     amplification relative to NOVA's direct DAX path.
//
//  2. Monolithic extent tree + lock-based migration. Each file has one
//     extent tree holding (device, block) pairs, protected by a per-file
//     lock that migration holds while it moves blocks; concurrent access to
//     ANY block of the file stalls during that window.
//
//  3. Static routing. Only the PM→SSD and PM→HDD movement paths are wired
//     (Figure 3a); every other pair returns kNotSupported, including all
//     promotions.
//
// The namespace lives in DRAM (Strata's kernel FS holds it; recovery from
// the log is out of scope for the benchmarks this baseline serves, which is
// also true of the original artifact's evaluation setup).
#ifndef MUX_STRATA_STRATA_H_
#define MUX_STRATA_STRATA_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/device/block_device.h"
#include "src/device/pm_device.h"
#include "src/fs/fscommon/extent_allocator.h"
#include "src/vfs/file_system.h"

namespace mux::strata {

enum class Tier : uint8_t { kPm = 0, kSsd = 1, kHdd = 2 };
inline constexpr int kTierCount = 3;

std::string_view TierName(Tier tier);

struct StrataStats {
  uint64_t log_appends = 0;
  uint64_t log_bytes = 0;
  uint64_t digests = 0;
  uint64_t digested_blocks = 0;
  uint64_t migrated_blocks = 0;
  uint64_t lock_acquisitions = 0;
};

class StrataFs : public vfs::FileSystem {
 public:
  struct Options {
    // Share of PM reserved for the operation log.
    double log_fraction = 0.25;
    // Digest triggers when the log is this full.
    double digest_watermark = 0.8;
    // Modelled software cost of one VFS call into Strata.
    SimTime op_software_ns = 400;
    // Per-record log bookkeeping cost (header build, index update).
    SimTime log_record_ns = 250;
    // Per-block digest cost (extent-tree update under lock).
    SimTime digest_block_ns = 400;
    // Per-block migration cost: lock hand-off, tree surgery, context
    // matching between device paths (the "manual wiring" the paper
    // describes). Calibrated so the PM->SSD migration gap lands near the
    // paper's measured 2.59x (see EXPERIMENTS.md).
    SimTime migrate_block_ns = 4200;
  };

  StrataFs(device::PmDevice* pm, device::BlockDevice* ssd,
           device::BlockDevice* hdd, SimClock* clock, Options options);
  StrataFs(device::PmDevice* pm, device::BlockDevice* ssd,
           device::BlockDevice* hdd, SimClock* clock);

  Status Format();

  std::string_view Name() const override { return "strata"; }

  // ---- tiering controls ------------------------------------------------
  // Placement target for new blocks of the file (digest destination).
  Status SetFileTier(const std::string& path, Tier tier);
  // True when the monolithic implementation has the movement path wired.
  static bool SupportsMigration(Tier from, Tier to);
  // Moves all blocks of `path` currently on `from` to `to`. Holds the file
  // lock block-by-block (lock-based migration).
  Status MigrateFile(const std::string& path, Tier from, Tier to);
  // Drains the operation log into file blocks.
  Status DigestAll();

  StrataStats stats() const;
  uint64_t LogBytesUsed() const;

  // ---- vfs::FileSystem ---------------------------------------------------
  Result<vfs::FileHandle> Open(const std::string& path, uint32_t flags,
                               uint32_t mode = 0644) override;
  Status Close(vfs::FileHandle handle) override;
  Status Mkdir(const std::string& path, uint32_t mode = 0755) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<vfs::FileStat> Stat(const std::string& path) override;
  Result<std::vector<vfs::DirEntry>> ReadDir(const std::string& path) override;

  Result<uint64_t> Read(vfs::FileHandle handle, uint64_t offset,
                        uint64_t length, uint8_t* out) override;
  Result<uint64_t> Write(vfs::FileHandle handle, uint64_t offset,
                         const uint8_t* data, uint64_t length) override;
  Status Truncate(vfs::FileHandle handle, uint64_t new_size) override;
  Status Fsync(vfs::FileHandle handle, bool data_only) override;
  Status Fallocate(vfs::FileHandle handle, uint64_t offset, uint64_t length,
                   bool keep_size) override;
  Status PunchHole(vfs::FileHandle handle, uint64_t offset,
                   uint64_t length) override;
  Result<vfs::FileStat> FStat(vfs::FileHandle handle) override;
  Status SetAttr(vfs::FileHandle handle,
                 const vfs::AttrUpdate& update) override;

  Result<vfs::FsStats> StatFs() override;
  Status Sync() override;

 private:
  static constexpr uint64_t kPageSize = 4096;
  static constexpr uint64_t kLogRecordHeader = 64;

  // Where a committed (digested) block lives.
  struct BlockLoc {
    Tier tier = Tier::kPm;
    uint64_t block = 0;  // PM page number or device LBA
  };

  struct Inode {
    vfs::InodeNum ino = vfs::kInvalidInode;
    vfs::FileType type = vfs::FileType::kRegular;
    uint32_t mode = 0644;
    uint64_t size = 0;
    SimTime atime = 0;
    SimTime mtime = 0;
    SimTime ctime = 0;
    Tier target = Tier::kPm;
    // The monolithic extent tree: file page -> committed location.
    std::map<uint64_t, BlockLoc> tree;
    // Blocks still sitting in the log (newest wins): file page -> log page.
    std::map<uint64_t, uint64_t> in_log;
    std::map<std::string, vfs::InodeNum> children;
  };

  struct OpenFile {
    vfs::InodeNum ino = vfs::kInvalidInode;
    uint32_t flags = 0;
  };

  // mu_ held for all of these.
  Result<Inode*> ResolveLocked(const std::string& path);
  Result<Inode*> ResolveDirLocked(const std::string& path);
  Result<Inode*> HandleInodeLocked(vfs::FileHandle handle,
                                   uint32_t needed_flags);
  Status FreeInodeLocked(Inode& inode);
  Status AppendLogBlockLocked(Inode& inode, uint64_t file_page,
                              const uint8_t* data);
  Status DigestInodeLocked(Inode& inode);
  Status DigestAllLocked();
  Result<uint64_t> AllocOnTierLocked(Tier tier);
  Status FreeOnTierLocked(Tier tier, uint64_t block);
  Status ReadBlockLocked(const Inode& inode, uint64_t file_page,
                         uint8_t* out);
  Status DropBlockLocked(Inode& inode, uint64_t file_page);

  void ChargeOp() const { clock_->Advance(options_.op_software_ns); }

  device::PmDevice* const pm_;
  device::BlockDevice* const ssd_;
  device::BlockDevice* const hdd_;
  SimClock* const clock_;
  const Options options_;

  uint64_t pm_pages_ = 0;
  uint64_t log_pages_ = 0;  // log budget in pages

  mutable std::mutex mu_;  // namespace + allocators + log
  std::unordered_map<vfs::InodeNum, Inode> inodes_;
  std::unordered_map<vfs::FileHandle, OpenFile> open_files_;
  // Per-file locks; migration and digest hold them block-by-block.
  std::unordered_map<vfs::InodeNum, std::unique_ptr<std::mutex>> file_locks_;
  // One allocator covers all PM pages; the operation log is a *budget*
  // (log_pages_ cap on log_pages_used_) rather than a fixed region, so
  // metadata-only digestion can adopt log pages as file blocks without
  // starving the log.
  fs::ExtentAllocator pm_alloc_;
  fs::ExtentAllocator ssd_alloc_;
  fs::ExtentAllocator hdd_alloc_;
  vfs::InodeNum next_ino_ = 2;
  vfs::FileHandle next_handle_ = 1;
  uint64_t log_pages_used_ = 0;
  StrataStats stats_;
};

}  // namespace mux::strata

#endif  // MUX_STRATA_STRATA_H_
