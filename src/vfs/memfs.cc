#include "src/vfs/memfs.h"

#include <algorithm>
#include <cstring>

namespace mux::vfs {

MemFs::MemFs(SimClock* clock, uint64_t capacity_bytes)
    : clock_(clock), capacity_bytes_(capacity_bytes) {
  Inode root;
  root.ino = 1;
  root.type = FileType::kDirectory;
  root.mode = 0755;
  root.ctime = root.mtime = root.atime = clock_->Now();
  inodes_.emplace(root.ino, std::move(root));
}

Result<MemFs::Inode*> MemFs::GetLocked(InodeNum ino) {
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) {
    return InternalError("dangling inode reference");
  }
  return &it->second;
}

Result<InodeNum> MemFs::ResolveLocked(const std::string& path) {
  if (!IsValidPath(path)) {
    return InvalidArgumentError("invalid path: " + path);
  }
  InodeNum cur = 1;
  for (const auto& part : SplitPath(path)) {
    MUX_ASSIGN_OR_RETURN(Inode * node, GetLocked(cur));
    if (node->type != FileType::kDirectory) {
      return NotDirError(path);
    }
    auto it = node->children.find(part);
    if (it == node->children.end()) {
      return NotFoundError(path);
    }
    cur = it->second;
  }
  return cur;
}

Result<MemFs::Inode*> MemFs::ResolveDirLocked(const std::string& path) {
  MUX_ASSIGN_OR_RETURN(InodeNum ino, ResolveLocked(path));
  MUX_ASSIGN_OR_RETURN(Inode * node, GetLocked(ino));
  if (node->type != FileType::kDirectory) {
    return NotDirError(path);
  }
  return node;
}

Result<MemFs::Inode*> MemFs::HandleInodeLocked(FileHandle handle,
                                               uint32_t needed_flags) {
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    return BadHandleError("unknown handle");
  }
  if ((it->second.flags & needed_flags) != needed_flags) {
    return PermissionError("handle lacks required access mode");
  }
  return GetLocked(it->second.ino);
}

FileStat MemFs::StatForLocked(const Inode& inode) const {
  FileStat st;
  st.ino = inode.ino;
  st.type = inode.type;
  st.size = inode.size;
  st.allocated_bytes = inode.pages.size() * kPageSize;
  st.atime = inode.atime;
  st.mtime = inode.mtime;
  st.ctime = inode.ctime;
  st.mode = inode.mode;
  return st;
}

Result<FileHandle> MemFs::Open(const std::string& path, uint32_t flags,
                               uint32_t mode) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!IsValidPath(path)) {
    return InvalidArgumentError("invalid path: " + path);
  }
  auto resolved = ResolveLocked(path);
  InodeNum ino = kInvalidInode;
  if (resolved.ok()) {
    if ((flags & OpenFlags::kExclusive) && (flags & OpenFlags::kCreate)) {
      return ExistsError(path);
    }
    ino = *resolved;
    MUX_ASSIGN_OR_RETURN(Inode * node, GetLocked(ino));
    if (node->type == FileType::kDirectory) {
      return IsDirError(path);
    }
    if (flags & OpenFlags::kTruncate) {
      allocated_pages_ -= node->pages.size();
      node->pages.clear();
      node->size = 0;
      node->mtime = clock_->Now();
    }
  } else if (resolved.status().code() == ErrorCode::kNotFound &&
             (flags & OpenFlags::kCreate)) {
    MUX_ASSIGN_OR_RETURN(Inode * parent, ResolveDirLocked(Dirname(path)));
    Inode node;
    node.ino = next_ino_++;
    node.type = FileType::kRegular;
    node.mode = mode;
    node.ctime = node.mtime = node.atime = clock_->Now();
    ino = node.ino;
    parent->children.emplace(Basename(path), ino);
    parent->mtime = clock_->Now();
    inodes_.emplace(ino, std::move(node));
  } else {
    return resolved.status();
  }
  const FileHandle handle = next_handle_++;
  open_files_.emplace(handle, OpenFile{ino, flags});
  return handle;
}

Status MemFs::Close(FileHandle handle) {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_files_.erase(handle) == 0) {
    return BadHandleError("close of unknown handle");
  }
  return Status::Ok();
}

Status MemFs::Mkdir(const std::string& path, uint32_t mode) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!IsValidPath(path) || path == "/") {
    return InvalidArgumentError("invalid mkdir path: " + path);
  }
  if (ResolveLocked(path).ok()) {
    return ExistsError(path);
  }
  MUX_ASSIGN_OR_RETURN(Inode * parent, ResolveDirLocked(Dirname(path)));
  Inode node;
  node.ino = next_ino_++;
  node.type = FileType::kDirectory;
  node.mode = mode;
  node.ctime = node.mtime = node.atime = clock_->Now();
  parent->children.emplace(Basename(path), node.ino);
  parent->mtime = clock_->Now();
  inodes_.emplace(node.ino, std::move(node));
  return Status::Ok();
}

Status MemFs::Rmdir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (NormalizePath(path) == "/") {
    return InvalidArgumentError("cannot remove root");
  }
  MUX_ASSIGN_OR_RETURN(InodeNum ino, ResolveLocked(path));
  MUX_ASSIGN_OR_RETURN(Inode * node, GetLocked(ino));
  if (node->type != FileType::kDirectory) {
    return NotDirError(path);
  }
  if (!node->children.empty()) {
    return NotEmptyError(path);
  }
  MUX_ASSIGN_OR_RETURN(Inode * parent, ResolveDirLocked(Dirname(path)));
  parent->children.erase(Basename(path));
  parent->mtime = clock_->Now();
  inodes_.erase(ino);
  return Status::Ok();
}

Status MemFs::Unlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(InodeNum ino, ResolveLocked(path));
  MUX_ASSIGN_OR_RETURN(Inode * node, GetLocked(ino));
  if (node->type == FileType::kDirectory) {
    return IsDirError(path);
  }
  MUX_ASSIGN_OR_RETURN(Inode * parent, ResolveDirLocked(Dirname(path)));
  parent->children.erase(Basename(path));
  parent->mtime = clock_->Now();
  allocated_pages_ -= node->pages.size();
  inodes_.erase(ino);
  // Open handles to the inode keep working in POSIX; for simplicity (and
  // because every caller in this repo closes before unlinking) the handles
  // are left dangling and report errors on use.
  return Status::Ok();
}

Status MemFs::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(InodeNum ino, ResolveLocked(from));
  if (!IsValidPath(to)) {
    return InvalidArgumentError("invalid rename target: " + to);
  }
  if (PathHasPrefix(to, from) && NormalizePath(to) != NormalizePath(from)) {
    return InvalidArgumentError("cannot rename a directory into itself");
  }
  auto existing = ResolveLocked(to);
  if (existing.ok()) {
    MUX_ASSIGN_OR_RETURN(Inode * target, GetLocked(*existing));
    if (target->type == FileType::kDirectory) {
      if (!target->children.empty()) {
        return NotEmptyError(to);
      }
    }
    MUX_ASSIGN_OR_RETURN(Inode * to_parent, ResolveDirLocked(Dirname(to)));
    to_parent->children.erase(Basename(to));
    allocated_pages_ -= target->pages.size();
    inodes_.erase(*existing);
  }
  MUX_ASSIGN_OR_RETURN(Inode * from_parent, ResolveDirLocked(Dirname(from)));
  from_parent->children.erase(Basename(from));
  from_parent->mtime = clock_->Now();
  MUX_ASSIGN_OR_RETURN(Inode * to_parent, ResolveDirLocked(Dirname(to)));
  to_parent->children[Basename(to)] = ino;
  to_parent->mtime = clock_->Now();
  return Status::Ok();
}

Result<FileStat> MemFs::Stat(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(InodeNum ino, ResolveLocked(path));
  MUX_ASSIGN_OR_RETURN(Inode * node, GetLocked(ino));
  return StatForLocked(*node);
}

Result<std::vector<DirEntry>> MemFs::ReadDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * dir, ResolveDirLocked(path));
  std::vector<DirEntry> entries;
  entries.reserve(dir->children.size());
  for (const auto& [name, child_ino] : dir->children) {
    MUX_ASSIGN_OR_RETURN(Inode * child, GetLocked(child_ino));
    entries.push_back(DirEntry{name, child->type, child_ino});
  }
  return entries;
}

Result<uint64_t> MemFs::Read(FileHandle handle, uint64_t offset,
                             uint64_t length, uint8_t* out) {
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node, HandleInodeLocked(handle, OpenFlags::kRead));
  if (offset >= node->size) {
    return uint64_t{0};
  }
  const uint64_t n = std::min(length, node->size - offset);
  uint64_t done = 0;
  while (done < n) {
    const uint64_t pos = offset + done;
    const uint64_t page = pos / kPageSize;
    const uint64_t in_page = pos % kPageSize;
    const uint64_t chunk = std::min(n - done, kPageSize - in_page);
    auto it = node->pages.find(page);
    if (it == node->pages.end()) {
      std::memset(out + done, 0, chunk);  // hole
    } else {
      std::memcpy(out + done, it->second.data() + in_page, chunk);
    }
    done += chunk;
  }
  node->atime = clock_->Now();
  return n;
}

Result<uint64_t> MemFs::Write(FileHandle handle, uint64_t offset,
                              const uint8_t* data, uint64_t length) {
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node,
                       HandleInodeLocked(handle, OpenFlags::kWrite));
  uint64_t done = 0;
  while (done < length) {
    const uint64_t pos = offset + done;
    const uint64_t page = pos / kPageSize;
    const uint64_t in_page = pos % kPageSize;
    const uint64_t chunk = std::min(length - done, kPageSize - in_page);
    auto it = node->pages.find(page);
    if (it == node->pages.end()) {
      if ((allocated_pages_ + 1) * kPageSize > capacity_bytes_) {
        return NoSpaceError("memfs capacity exhausted");
      }
      it = node->pages.emplace(page, std::vector<uint8_t>(kPageSize, 0)).first;
      allocated_pages_++;
    }
    std::memcpy(it->second.data() + in_page, data + done, chunk);
    done += chunk;
  }
  node->size = std::max(node->size, offset + length);
  node->mtime = clock_->Now();
  return length;
}

Status MemFs::Truncate(FileHandle handle, uint64_t new_size) {
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node,
                       HandleInodeLocked(handle, OpenFlags::kWrite));
  if (new_size < node->size) {
    const uint64_t first_dead_page = (new_size + kPageSize - 1) / kPageSize;
    for (auto it = node->pages.lower_bound(first_dead_page);
         it != node->pages.end();) {
      it = node->pages.erase(it);
      allocated_pages_--;
    }
    // Zero the tail of the last surviving page so re-extension reads zeros.
    if (new_size % kPageSize != 0) {
      auto it = node->pages.find(new_size / kPageSize);
      if (it != node->pages.end()) {
        std::memset(it->second.data() + new_size % kPageSize, 0,
                    kPageSize - new_size % kPageSize);
      }
    }
  }
  node->size = new_size;
  node->mtime = clock_->Now();
  return Status::Ok();
}

Status MemFs::Fsync(FileHandle handle, bool data_only) {
  std::lock_guard<std::mutex> lock(mu_);
  return HandleInodeLocked(handle, 0).status();
}

Status MemFs::Fallocate(FileHandle handle, uint64_t offset, uint64_t length,
                        bool keep_size) {
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node,
                       HandleInodeLocked(handle, OpenFlags::kWrite));
  const uint64_t first = offset / kPageSize;
  const uint64_t last = (offset + length + kPageSize - 1) / kPageSize;
  for (uint64_t page = first; page < last; ++page) {
    if (!node->pages.contains(page)) {
      if ((allocated_pages_ + 1) * kPageSize > capacity_bytes_) {
        return NoSpaceError("memfs capacity exhausted");
      }
      node->pages.emplace(page, std::vector<uint8_t>(kPageSize, 0));
      allocated_pages_++;
    }
  }
  if (!keep_size) {
    node->size = std::max(node->size, offset + length);
  }
  return Status::Ok();
}

Status MemFs::PunchHole(FileHandle handle, uint64_t offset, uint64_t length) {
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node,
                       HandleInodeLocked(handle, OpenFlags::kWrite));
  if (offset % kPageSize != 0 || length % kPageSize != 0 || length == 0) {
    return InvalidArgumentError("hole punch must be block aligned");
  }
  const uint64_t first = offset / kPageSize;
  const uint64_t last = (offset + length) / kPageSize;
  for (auto it = node->pages.lower_bound(first);
       it != node->pages.end() && it->first < last;) {
    it = node->pages.erase(it);
    allocated_pages_--;
  }
  node->mtime = clock_->Now();
  return Status::Ok();
}

Result<FileStat> MemFs::FStat(FileHandle handle) {
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node, HandleInodeLocked(handle, 0));
  return StatForLocked(*node);
}

Status MemFs::SetAttr(FileHandle handle, const AttrUpdate& update) {
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Inode * node, HandleInodeLocked(handle, 0));
  if (update.atime) {
    node->atime = *update.atime;
  }
  if (update.mtime) {
    node->mtime = *update.mtime;
  }
  if (update.mode) {
    node->mode = *update.mode;
  }
  return Status::Ok();
}

Result<FsStats> MemFs::StatFs() {
  std::lock_guard<std::mutex> lock(mu_);
  FsStats st;
  st.capacity_bytes = capacity_bytes_;
  st.free_bytes = capacity_bytes_ - allocated_pages_ * kPageSize;
  st.total_inodes = 1u << 20;
  st.free_inodes = st.total_inodes - inodes_.size();
  return st;
}

Status MemFs::Sync() { return Status::Ok(); }

}  // namespace mux::vfs
