#include "src/vfs/path.h"

namespace mux::vfs {

std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      ++i;
    }
    size_t start = i;
    while (i < path.size() && path[i] != '/') {
      ++i;
    }
    if (i > start) {
      parts.emplace_back(path.substr(start, i - start));
    }
  }
  return parts;
}

std::string NormalizePath(std::string_view path) {
  std::string out = "/";
  for (const auto& part : SplitPath(path)) {
    if (out.back() != '/') {
      out += '/';
    }
    out += part;
  }
  return out;
}

std::string Dirname(std::string_view path) {
  auto parts = SplitPath(path);
  if (parts.size() <= 1) {
    return "/";
  }
  std::string out;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    out += '/';
    out += parts[i];
  }
  return out;
}

std::string Basename(std::string_view path) {
  auto parts = SplitPath(path);
  if (parts.empty()) {
    return "";
  }
  return parts.back();
}

std::string JoinPath(std::string_view dir, std::string_view name) {
  std::string out(dir);
  while (!out.empty() && out.back() == '/') {
    out.pop_back();
  }
  out += '/';
  size_t start = 0;
  while (start < name.size() && name[start] == '/') {
    ++start;
  }
  out += name.substr(start);
  return out;
}

bool PathHasPrefix(std::string_view path, std::string_view prefix) {
  const std::string norm_path = NormalizePath(path);
  const std::string norm_prefix = NormalizePath(prefix);
  if (norm_prefix == "/") {
    return true;
  }
  if (norm_path == norm_prefix) {
    return true;
  }
  return norm_path.size() > norm_prefix.size() &&
         norm_path.compare(0, norm_prefix.size(), norm_prefix) == 0 &&
         norm_path[norm_prefix.size()] == '/';
}

bool IsValidPath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return false;
  }
  PathComponents cursor(path);
  std::string_view part;
  while (cursor.Next(&part)) {
    if (part == "." || part == "..") {
      return false;
    }
  }
  return true;
}

}  // namespace mux::vfs
