// MemFs: a plain in-memory file system.
//
// Two jobs in this repository:
//  1. Oracle for property-based tests — random operation sequences are
//     applied to both a real file system (or the whole Mux stack) and a
//     MemFs; results must agree.
//  2. A fourth pluggable tier demonstrating Mux's extensibility claim: any
//     FileSystem can be registered, not just the three built-in ones.
//
// Data is stored as sparse 4K pages, so allocated_bytes reflects real
// consumption just like the device-backed file systems. MemFs charges no
// simulated time.
#ifndef MUX_VFS_MEMFS_H_
#define MUX_VFS_MEMFS_H_

#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/vfs/file_system.h"
#include "src/vfs/path.h"

namespace mux::vfs {

class MemFs : public FileSystem {
 public:
  // `clock` supplies timestamps; capacity bounds StatFs and allocation.
  explicit MemFs(SimClock* clock,
                 uint64_t capacity_bytes = 1ULL << 40);

  std::string_view Name() const override { return "memfs"; }

  Result<FileHandle> Open(const std::string& path, uint32_t flags,
                          uint32_t mode = 0644) override;
  Status Close(FileHandle handle) override;
  Status Mkdir(const std::string& path, uint32_t mode = 0755) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<FileStat> Stat(const std::string& path) override;
  Result<std::vector<DirEntry>> ReadDir(const std::string& path) override;

  Result<uint64_t> Read(FileHandle handle, uint64_t offset, uint64_t length,
                        uint8_t* out) override;
  Result<uint64_t> Write(FileHandle handle, uint64_t offset,
                         const uint8_t* data, uint64_t length) override;
  Status Truncate(FileHandle handle, uint64_t new_size) override;
  Status Fsync(FileHandle handle, bool data_only) override;
  Status Fallocate(FileHandle handle, uint64_t offset, uint64_t length,
                   bool keep_size) override;
  Status PunchHole(FileHandle handle, uint64_t offset,
                   uint64_t length) override;
  Result<FileStat> FStat(FileHandle handle) override;
  Status SetAttr(FileHandle handle, const AttrUpdate& update) override;

  Result<FsStats> StatFs() override;
  Status Sync() override;

 private:
  static constexpr uint64_t kPageSize = 4096;

  struct Inode {
    InodeNum ino = kInvalidInode;
    FileType type = FileType::kRegular;
    uint64_t size = 0;
    SimTime atime = 0;
    SimTime mtime = 0;
    SimTime ctime = 0;
    uint32_t mode = 0644;
    // Regular files: sparse pages, page index -> content.
    std::map<uint64_t, std::vector<uint8_t>> pages;
    // Directories: name -> child inode.
    std::map<std::string, InodeNum> children;
  };

  struct OpenFile {
    InodeNum ino = kInvalidInode;
    uint32_t flags = 0;
  };

  // All helpers require mu_ held.
  Result<InodeNum> ResolveLocked(const std::string& path);
  Result<Inode*> ResolveDirLocked(const std::string& path);
  Result<Inode*> GetLocked(InodeNum ino);
  Result<Inode*> HandleInodeLocked(FileHandle handle, uint32_t needed_flags);
  FileStat StatForLocked(const Inode& inode) const;
  uint64_t AllocatedBytesLocked() const;

  SimClock* const clock_;
  const uint64_t capacity_bytes_;

  std::mutex mu_;
  std::unordered_map<InodeNum, Inode> inodes_;
  std::unordered_map<FileHandle, OpenFile> open_files_;
  InodeNum next_ino_ = 2;  // 1 is the root
  FileHandle next_handle_ = 1;
  uint64_t allocated_pages_ = 0;
};

}  // namespace mux::vfs

#endif  // MUX_VFS_MEMFS_H_
