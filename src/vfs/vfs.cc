#include "src/vfs/vfs.h"

#include <algorithm>

#include "src/vfs/path.h"

namespace mux::vfs {

Status Vfs::Mount(const std::string& mount_point, FileSystem* fs) {
  if (fs == nullptr) {
    return InvalidArgumentError("null file system");
  }
  if (!IsValidPath(mount_point)) {
    return InvalidArgumentError("invalid mount point: " + mount_point);
  }
  const std::string norm = NormalizePath(mount_point);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& m : mounts_) {
    if (m.mount_point == norm) {
      return ExistsError("mount point in use: " + norm);
    }
  }
  mounts_.push_back(Mounted{norm, fs});
  std::sort(mounts_.begin(), mounts_.end(),
            [](const Mounted& a, const Mounted& b) {
              return a.mount_point.size() > b.mount_point.size();
            });
  return Status::Ok();
}

Status Vfs::Unmount(const std::string& mount_point) {
  const std::string norm = NormalizePath(mount_point);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = mounts_.begin(); it != mounts_.end(); ++it) {
    if (it->mount_point == norm) {
      for (const auto& [h, routed] : handles_) {
        if (routed.fs == it->fs) {
          return BusyError("open handles on " + norm);
        }
      }
      mounts_.erase(it);
      return Status::Ok();
    }
  }
  return NotFoundError("not mounted: " + norm);
}

std::vector<std::string> Vfs::MountPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(mounts_.size());
  for (const auto& m : mounts_) {
    out.push_back(m.mount_point);
  }
  return out;
}

Result<std::pair<FileSystem*, std::string>> Vfs::Route(
    const std::string& path) const {
  if (!IsValidPath(path)) {
    return InvalidArgumentError("invalid path: " + path);
  }
  const std::string norm = NormalizePath(path);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& m : mounts_) {  // sorted longest-first
    if (PathHasPrefix(norm, m.mount_point)) {
      std::string inner = norm.substr(m.mount_point.size());
      if (inner.empty()) {
        inner = "/";
      }
      return std::make_pair(m.fs, inner);
    }
  }
  return NotFoundError("no file system mounted for " + norm);
}

void Vfs::SetObs(obs::MetricsRegistry* metrics, obs::TraceBuffer* trace,
                 const SimClock* clock) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
  trace_ = trace;
  obs_clock_ = clock;
}

void Vfs::RecordOp(const char* op, uint64_t bytes, SimTime start_ns) const {
  if (obs_clock_ == nullptr) {
    return;
  }
  const SimTime now = obs_clock_->Now();
  const SimTime elapsed = now - start_ns;
  if (metrics_ != nullptr) {
    metrics_->Observe(std::string("vfs.") + op + ".latency_ns", elapsed);
  }
  if (trace_ != nullptr) {
    obs::TraceEvent event;
    event.layer = "vfs";
    event.op = op;
    event.bytes = bytes;
    event.start_ns = start_ns;
    event.duration_ns = elapsed;
    trace_->Record(std::move(event));
  }
}

Result<Vfs::RoutedHandle> Vfs::Lookup(FileHandle handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return BadHandleError("unknown vfs handle");
  }
  return it->second;
}

Result<FileHandle> Vfs::Open(const std::string& path, uint32_t flags,
                             uint32_t mode) {
  const SimTime start = obs_clock_ != nullptr ? obs_clock_->Now() : 0;
  MUX_ASSIGN_OR_RETURN(auto routed, Route(path));
  MUX_ASSIGN_OR_RETURN(FileHandle fs_handle,
                       routed.first->Open(routed.second, flags, mode));
  {
    std::lock_guard<std::mutex> lock(mu_);
    const FileHandle handle = next_handle_++;
    handles_.emplace(handle, RoutedHandle{routed.first, fs_handle});
    RecordOp("open", 0, start);
    return handle;
  }
}

Status Vfs::Close(FileHandle handle) {
  const SimTime start = obs_clock_ != nullptr ? obs_clock_->Now() : 0;
  RoutedHandle routed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handles_.find(handle);
    if (it == handles_.end()) {
      return BadHandleError("unknown vfs handle");
    }
    routed = it->second;
    handles_.erase(it);
  }
  Status status = routed.fs->Close(routed.fs_handle);
  RecordOp("close", 0, start);
  return status;
}

Status Vfs::Mkdir(const std::string& path, uint32_t mode) {
  MUX_ASSIGN_OR_RETURN(auto routed, Route(path));
  return routed.first->Mkdir(routed.second, mode);
}

Status Vfs::Rmdir(const std::string& path) {
  MUX_ASSIGN_OR_RETURN(auto routed, Route(path));
  return routed.first->Rmdir(routed.second);
}

Status Vfs::Unlink(const std::string& path) {
  MUX_ASSIGN_OR_RETURN(auto routed, Route(path));
  return routed.first->Unlink(routed.second);
}

Status Vfs::Rename(const std::string& from, const std::string& to) {
  MUX_ASSIGN_OR_RETURN(auto routed_from, Route(from));
  MUX_ASSIGN_OR_RETURN(auto routed_to, Route(to));
  if (routed_from.first != routed_to.first) {
    return NotSupportedError("cross-mount rename (EXDEV)");
  }
  return routed_from.first->Rename(routed_from.second, routed_to.second);
}

Result<FileStat> Vfs::Stat(const std::string& path) {
  MUX_ASSIGN_OR_RETURN(auto routed, Route(path));
  return routed.first->Stat(routed.second);
}

Result<std::vector<DirEntry>> Vfs::ReadDir(const std::string& path) {
  MUX_ASSIGN_OR_RETURN(auto routed, Route(path));
  return routed.first->ReadDir(routed.second);
}

Result<uint64_t> Vfs::Read(FileHandle handle, uint64_t offset, uint64_t length,
                           uint8_t* out) {
  const SimTime start = obs_clock_ != nullptr ? obs_clock_->Now() : 0;
  MUX_ASSIGN_OR_RETURN(RoutedHandle routed, Lookup(handle));
  Result<uint64_t> result = routed.fs->Read(routed.fs_handle, offset, length, out);
  RecordOp("read", result.ok() ? *result : 0, start);
  return result;
}

Result<uint64_t> Vfs::Write(FileHandle handle, uint64_t offset,
                            const uint8_t* data, uint64_t length) {
  const SimTime start = obs_clock_ != nullptr ? obs_clock_->Now() : 0;
  MUX_ASSIGN_OR_RETURN(RoutedHandle routed, Lookup(handle));
  Result<uint64_t> result = routed.fs->Write(routed.fs_handle, offset, data, length);
  RecordOp("write", result.ok() ? *result : 0, start);
  return result;
}

Status Vfs::Truncate(FileHandle handle, uint64_t new_size) {
  MUX_ASSIGN_OR_RETURN(RoutedHandle routed, Lookup(handle));
  return routed.fs->Truncate(routed.fs_handle, new_size);
}

Status Vfs::Fsync(FileHandle handle, bool data_only) {
  const SimTime start = obs_clock_ != nullptr ? obs_clock_->Now() : 0;
  MUX_ASSIGN_OR_RETURN(RoutedHandle routed, Lookup(handle));
  Status status = routed.fs->Fsync(routed.fs_handle, data_only);
  RecordOp("fsync", 0, start);
  return status;
}

Result<FileStat> Vfs::FStat(FileHandle handle) {
  MUX_ASSIGN_OR_RETURN(RoutedHandle routed, Lookup(handle));
  return routed.fs->FStat(routed.fs_handle);
}

}  // namespace mux::vfs
