// The VFS mount router.
//
// Applications talk to a Vfs; file systems (including Mux, which is "a
// standalone file system" from the OS's point of view, §2.1) are mounted at
// mount points and calls are routed by longest-prefix match. In the tiered
// setup the underlying device-specific file systems are mounted at
// /mnt/<tier> and Mux itself at /mux — exactly Figure 1(b)'s stack.
#ifndef MUX_VFS_VFS_H_
#define MUX_VFS_VFS_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/vfs/file_system.h"

namespace mux::vfs {

class Vfs {
 public:
  Vfs() = default;
  Vfs(const Vfs&) = delete;
  Vfs& operator=(const Vfs&) = delete;

  // Mounts `fs` (not owned) at `mount_point` (e.g. "/mnt/pm"). Nested mount
  // points are allowed; the longest matching prefix wins.
  Status Mount(const std::string& mount_point, FileSystem* fs);
  Status Unmount(const std::string& mount_point);
  std::vector<std::string> MountPoints() const;

  // ---- Application-facing file API (global paths) ---------------------
  Result<FileHandle> Open(const std::string& path, uint32_t flags,
                          uint32_t mode = 0644);
  Status Close(FileHandle handle);
  Status Mkdir(const std::string& path, uint32_t mode = 0755);
  Status Rmdir(const std::string& path);
  Status Unlink(const std::string& path);
  Status Rename(const std::string& from, const std::string& to);
  Result<FileStat> Stat(const std::string& path);
  Result<std::vector<DirEntry>> ReadDir(const std::string& path);

  Result<uint64_t> Read(FileHandle handle, uint64_t offset, uint64_t length,
                        uint8_t* out);
  Result<uint64_t> Write(FileHandle handle, uint64_t offset,
                         const uint8_t* data, uint64_t length);
  Status Truncate(FileHandle handle, uint64_t new_size);
  Status Fsync(FileHandle handle, bool data_only = false);
  Result<FileStat> FStat(FileHandle handle);

  // Wires the VFS entry points into the shared observability sinks: each
  // Open/Read/Write/Fsync/Close observes "vfs.<op>.latency_ns" (simulated
  // time across the whole downstream stack) and records a trace event
  // (layer "vfs"). All three pointers are optional; pass nullptr to detach.
  void SetObs(obs::MetricsRegistry* metrics, obs::TraceBuffer* trace,
              const SimClock* clock);

 private:
  struct Mounted {
    std::string mount_point;  // normalized
    FileSystem* fs = nullptr;
  };
  struct RoutedHandle {
    FileSystem* fs = nullptr;
    FileHandle fs_handle = 0;
  };

  // Returns the owning file system and the path inside it.
  Result<std::pair<FileSystem*, std::string>> Route(
      const std::string& path) const;
  Result<RoutedHandle> Lookup(FileHandle handle) const;
  // Records latency + trace for one completed entry point (no lock needed:
  // the obs pointers are set once at wiring time).
  void RecordOp(const char* op, uint64_t bytes, SimTime start_ns) const;

  mutable std::mutex mu_;
  std::vector<Mounted> mounts_;  // sorted by descending prefix length
  std::unordered_map<FileHandle, RoutedHandle> handles_;
  FileHandle next_handle_ = 1;

  obs::MetricsRegistry* metrics_ = nullptr;  // not owned
  obs::TraceBuffer* trace_ = nullptr;        // not owned
  const SimClock* obs_clock_ = nullptr;      // not owned
};

}  // namespace mux::vfs

#endif  // MUX_VFS_VFS_H_
