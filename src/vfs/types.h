// Shared VFS value types: handles, stat structures, directory entries.
#ifndef MUX_VFS_TYPES_H_
#define MUX_VFS_TYPES_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/common/clock.h"

namespace mux::vfs {

// Opaque per-file-system open-file identifier.
using FileHandle = uint64_t;
using InodeNum = uint64_t;

constexpr InodeNum kInvalidInode = 0;

// Open flags (combinable).
struct OpenFlags {
  static constexpr uint32_t kRead = 1u << 0;
  static constexpr uint32_t kWrite = 1u << 1;
  static constexpr uint32_t kCreate = 1u << 2;
  static constexpr uint32_t kTruncate = 1u << 3;
  static constexpr uint32_t kExclusive = 1u << 4;
  // O_SYNC-like hint: the caller needs durability promptly. Tiering policies
  // use it for placement (e.g. TPFS routes small sync writes to PM).
  static constexpr uint32_t kSync = 1u << 5;

  static constexpr uint32_t kReadWrite = kRead | kWrite;
  static constexpr uint32_t kCreateRw = kRead | kWrite | kCreate;
};

enum class FileType : uint8_t {
  kRegular,
  kDirectory,
};

struct FileStat {
  InodeNum ino = kInvalidInode;
  FileType type = FileType::kRegular;
  uint64_t size = 0;             // logical size in bytes
  uint64_t allocated_bytes = 0;  // disk consumption (sparse-aware)
  SimTime atime = 0;
  SimTime mtime = 0;
  SimTime ctime = 0;
  uint32_t mode = 0644;
  uint32_t nlink = 1;
};

struct DirEntry {
  std::string name;
  FileType type = FileType::kRegular;
  InodeNum ino = kInvalidInode;
};

struct FsStats {
  uint64_t capacity_bytes = 0;
  uint64_t free_bytes = 0;
  uint64_t total_inodes = 0;
  uint64_t free_inodes = 0;
};

// Partial metadata update (used by Mux's lazy attribute synchronization).
struct AttrUpdate {
  std::optional<SimTime> atime;
  std::optional<SimTime> mtime;
  std::optional<uint32_t> mode;

  bool empty() const { return !atime && !mtime && !mode; }
};

// A direct-access window into PM-backed file data (DAX).
struct DaxMapping {
  uint8_t* data = nullptr;
  uint64_t length = 0;
};

}  // namespace mux::vfs

#endif  // MUX_VFS_TYPES_H_
