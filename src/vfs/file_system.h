// The VFS interface.
//
// Every file system in this repository — the three device-specific file
// systems (novafs, xfslite, extlite), the in-memory reference MemFs, the
// Strata baseline, and Mux itself — implements this interface. That is the
// paper's central structural idea: Mux sits *between* two instances of the
// same interface, receiving VFS calls from above and issuing VFS calls to
// the device-specific file systems below ("calls the same VFS function that
// invokes it, but with different file handles, lengths, and offsets", §2.1).
//
// Conventions:
//  * Paths are absolute within the file system ("/dir/file").
//  * Files are sparse: writes at any offset succeed, holes read as zeros,
//    and allocated_bytes tracks real disk consumption. Mux depends on this
//    to preserve a block's file offset across tiers (§2.2).
//  * Read returns the number of bytes read; reads beyond EOF return short
//    counts (possibly 0).
//  * No exceptions: everything fallible returns Status / Result<T>.
//  * Implementations must be thread-safe.
#ifndef MUX_VFS_FILE_SYSTEM_H_
#define MUX_VFS_FILE_SYSTEM_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/vfs/types.h"

namespace mux::vfs {

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual std::string_view Name() const = 0;

  // ---- Namespace operations ------------------------------------------
  virtual Result<FileHandle> Open(const std::string& path, uint32_t flags,
                                  uint32_t mode = 0644) = 0;
  virtual Status Close(FileHandle handle) = 0;
  virtual Status Mkdir(const std::string& path, uint32_t mode = 0755) = 0;
  virtual Status Rmdir(const std::string& path) = 0;
  virtual Status Unlink(const std::string& path) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Result<FileStat> Stat(const std::string& path) = 0;
  virtual Result<std::vector<DirEntry>> ReadDir(const std::string& path) = 0;

  // ---- Handle operations ---------------------------------------------
  virtual Result<uint64_t> Read(FileHandle handle, uint64_t offset,
                                uint64_t length, uint8_t* out) = 0;
  virtual Result<uint64_t> Write(FileHandle handle, uint64_t offset,
                                 const uint8_t* data, uint64_t length) = 0;
  virtual Status Truncate(FileHandle handle, uint64_t new_size) = 0;
  virtual Status Fsync(FileHandle handle, bool data_only) = 0;
  // Preallocates [offset, offset+length); with keep_size the logical size is
  // unchanged (used by Mux to preallocate the SCM cache file, §2.5).
  virtual Status Fallocate(FileHandle handle, uint64_t offset, uint64_t length,
                           bool keep_size) = 0;
  // Deallocates the blocks fully contained in [offset, offset+length); the
  // range reads back as zeros and stops consuming space. Mux punches holes
  // into the migration source after a block moves tiers — this is what makes
  // demotion actually relieve pressure on the fast device. Offset and length
  // must be block aligned.
  virtual Status PunchHole(FileHandle handle, uint64_t offset,
                           uint64_t length) {
    return NotSupportedError("hole punching not supported");
  }
  virtual Result<FileStat> FStat(FileHandle handle) = 0;
  virtual Status SetAttr(FileHandle handle, const AttrUpdate& update) = 0;

  // ---- File-system-wide operations -----------------------------------
  virtual Result<FsStats> StatFs() = 0;
  // Flushes everything; called before unmount / tier removal.
  virtual Status Sync() = 0;

  // ---- Optional capabilities -----------------------------------------
  // Granularity of stored timestamps in ns (feature imparity, paper §4:
  // e.g. FAT records 2-second timestamps). 1 = full nanosecond fidelity.
  virtual SimTime TimestampGranularityNs() const { return 1; }

  // Direct access mapping for byte-addressable media; only PM-backed file
  // systems support it.
  virtual Result<DaxMapping> DaxMap(FileHandle handle, uint64_t offset,
                                    uint64_t length) {
    return NotSupportedError("DAX not supported by this file system");
  }
  // Releases a mapping previously returned by DaxMap. File systems that
  // track live mappings (novafs) override this; the default is a no-op so
  // non-DAX file systems stay trivially correct.
  virtual Status DaxUnmap(const DaxMapping& mapping) { return Status::Ok(); }
  virtual bool SupportsDax() const { return false; }
  // Accounts simulated media time for direct loads/stores a caller performed
  // through a DaxMap pointer (real PM stalls the CPU on media access; the
  // simulation charges it explicitly).
  virtual void ChargeDax(uint64_t bytes, bool is_write) {}
};

}  // namespace mux::vfs

#endif  // MUX_VFS_FILE_SYSTEM_H_
