#include "src/vfs/fault_injecting_fs.h"

namespace mux::vfs {

namespace {

Status MakeFault(ErrorCode code, const char* what) {
  if (code == ErrorCode::kNoSpace) {
    return NoSpaceError(std::string("injected ENOSPC: ") + what);
  }
  return Status(code, std::string("injected fault: ") + what);
}

const char* OpName(FaultOp op) {
  switch (op) {
    case FaultOp::kOpen:
      return "open";
    case FaultOp::kRead:
      return "read";
    case FaultOp::kWrite:
      return "write";
    case FaultOp::kTruncate:
      return "truncate";
    case FaultOp::kFallocate:
      return "fallocate";
    case FaultOp::kPunchHole:
      return "punch_hole";
    case FaultOp::kFsync:
      return "fsync";
    case FaultOp::kMeta:
      return "meta";
  }
  return "?";
}

}  // namespace

FaultInjectingFs::FaultInjectingFs(FileSystem* base, uint64_t seed)
    : base_(base),
      name_("fault(" + std::string(base->Name()) + ")"),
      rng_(seed) {}

void FaultInjectingFs::PublishWordLocked() {
  uint64_t word = 0;
  if (dead_) {
    word |= kDeadBit;
  }
  if (has_budget_) {
    word |= kBudgetBit;
  }
  for (int op = 0; op < kFaultOpCount; ++op) {
    const OpFault& fault = faults_[op];
    if (fault.fail_at != 0 || fault.fail_next > 0 || fault.probability > 0.0) {
      word |= FaultBit(op);
    }
    if (hooks_[op]) {
      word |= HookBit(op);
    }
  }
  const uint64_t epoch =
      (fault_word_.load(std::memory_order_relaxed) >> kEpochShift) + 1;
  word |= epoch << kEpochShift;
  fault_word_.store(word, std::memory_order_release);
}

void FaultInjectingFs::FailNth(FaultOp op, uint64_t nth, ErrorCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  OpFault& fault = faults_[static_cast<int>(op)];
  fault.fail_at =
      nth == 0 ? 0 : fault.calls.load(std::memory_order_relaxed) + nth;
  fault.code = code;
  PublishWordLocked();
}

void FaultInjectingFs::FailNext(FaultOp op, uint64_t count, ErrorCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  OpFault& fault = faults_[static_cast<int>(op)];
  fault.fail_next = count;
  fault.code = code;
  PublishWordLocked();
}

void FaultInjectingFs::SetErrorProbability(FaultOp op, double p,
                                           ErrorCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  OpFault& fault = faults_[static_cast<int>(op)];
  fault.probability = p;
  fault.code = code;
  PublishWordLocked();
}

void FaultInjectingFs::SetWriteByteBudget(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  has_budget_ = true;
  budget_remaining_ = bytes;
  PublishWordLocked();
}

void FaultInjectingFs::ClearWriteByteBudget() {
  std::lock_guard<std::mutex> lock(mu_);
  has_budget_ = false;
  budget_remaining_ = 0;
  PublishWordLocked();
}

void FaultInjectingFs::KillDevice() {
  std::lock_guard<std::mutex> lock(mu_);
  dead_ = true;
  PublishWordLocked();
}

void FaultInjectingFs::Revive() {
  std::lock_guard<std::mutex> lock(mu_);
  dead_ = false;
  PublishWordLocked();
}

bool FaultInjectingFs::dead() const {
  return (fault_word_.load(std::memory_order_acquire) & kDeadBit) != 0;
}

void FaultInjectingFs::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  for (OpFault& fault : faults_) {
    fault.fail_at = 0;
    fault.fail_next = 0;
    fault.probability = 0.0;
  }
  has_budget_ = false;
  budget_remaining_ = 0;
  dead_ = false;
  PublishWordLocked();
}

void FaultInjectingFs::SetHook(FaultOp op, std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  hooks_[static_cast<int>(op)] = std::move(hook);
  PublishWordLocked();
}

void FaultInjectingFs::ClearHook(FaultOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  hooks_[static_cast<int>(op)] = nullptr;
  PublishWordLocked();
}

FaultStats FaultInjectingFs::fault_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FaultStats stats = stats_;
  stats.ops = ops_.load(std::memory_order_relaxed);
  return stats;
}

void FaultInjectingFs::CountInjected(ErrorCode code) {
  stats_.injected++;
  if (code == ErrorCode::kNoSpace) {
    stats_.injected_enospc++;
  } else if (code == ErrorCode::kIoError) {
    stats_.injected_eio++;
  }
}

Status FaultInjectingFs::Enter(FaultOp op, uint64_t bytes) {
  const int idx = static_cast<int>(op);
  OpFault& fault = faults_[idx];

  // One acquire load of the epoch word decides this call's fate. If nothing
  // armed can touch it — no death, no window on this op class, no hook, and
  // no byte budget (or no bytes to count) — the call only bumps two relaxed
  // counters and delegates. This is the hot path under load: the old code
  // took mu_ on EVERY op, and before that read window state that chaos
  // threads reprogram concurrently.
  uint64_t armed = kDeadBit | FaultBit(idx) | HookBit(idx);
  if (bytes > 0) {
    armed |= kBudgetBit;
  }
  if ((fault_word_.load(std::memory_order_acquire) & armed) == 0) {
    ops_.fetch_add(1, std::memory_order_relaxed);
    fault.calls.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }

  // Armed slow path. Hooks run outside mu_ so they may reenter the
  // file-system stack (tests use this to interleave a user op at an exact
  // point inside a migration).
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = hooks_[idx];
  }
  if (hook) {
    hook();
  }

  std::lock_guard<std::mutex> lock(mu_);
  ops_.fetch_add(1, std::memory_order_relaxed);
  // Claim a call number. fetch_add keeps the count exact against concurrent
  // fast-path entries of the same class (their window is not armed, but the
  // counter is shared).
  const uint64_t my_call = fault.calls.fetch_add(1, std::memory_order_relaxed) + 1;
  if (dead_) {
    CountInjected(ErrorCode::kIoError);
    return IoError(std::string("injected fault: device died (") + OpName(op) +
                   ")");
  }
  // >= rather than ==: unarmed calls racing with the FailNth programming may
  // have pushed the counter past the captured target; the first armed call
  // at-or-past it fires, and the reset (serialized by mu_) keeps it one-shot.
  if (fault.fail_at != 0 && my_call >= fault.fail_at) {
    fault.fail_at = 0;  // one-shot: recover after this failure
    PublishWordLocked();
    CountInjected(fault.code);
    return MakeFault(fault.code, OpName(op));
  }
  if (fault.fail_next > 0) {
    fault.fail_next--;
    if (fault.fail_next == 0) {
      PublishWordLocked();  // window exhausted — rearm the fast path
    }
    CountInjected(fault.code);
    return MakeFault(fault.code, OpName(op));
  }
  if (fault.probability > 0.0 && rng_.NextDouble() < fault.probability) {
    CountInjected(fault.code);
    return MakeFault(fault.code, OpName(op));
  }
  if (has_budget_ && bytes > 0) {
    if (bytes > budget_remaining_) {
      CountInjected(ErrorCode::kNoSpace);
      return NoSpaceError("injected ENOSPC: write byte budget exhausted");
    }
    budget_remaining_ -= bytes;
  }
  return Status::Ok();
}

Result<FileHandle> FaultInjectingFs::Open(const std::string& path,
                                          uint32_t flags, uint32_t mode) {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kOpen));
  return base_->Open(path, flags, mode);
}

Status FaultInjectingFs::Close(FileHandle handle) {
  // Close never faults: callers must always be able to release handles.
  return base_->Close(handle);
}

Status FaultInjectingFs::Mkdir(const std::string& path, uint32_t mode) {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kMeta));
  return base_->Mkdir(path, mode);
}

Status FaultInjectingFs::Rmdir(const std::string& path) {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kMeta));
  return base_->Rmdir(path);
}

Status FaultInjectingFs::Unlink(const std::string& path) {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kMeta));
  return base_->Unlink(path);
}

Status FaultInjectingFs::Rename(const std::string& from,
                                const std::string& to) {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kMeta));
  return base_->Rename(from, to);
}

Result<FileStat> FaultInjectingFs::Stat(const std::string& path) {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kMeta));
  return base_->Stat(path);
}

Result<std::vector<DirEntry>> FaultInjectingFs::ReadDir(
    const std::string& path) {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kMeta));
  return base_->ReadDir(path);
}

Result<uint64_t> FaultInjectingFs::Read(FileHandle handle, uint64_t offset,
                                        uint64_t length, uint8_t* out) {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kRead));
  return base_->Read(handle, offset, length, out);
}

Result<uint64_t> FaultInjectingFs::Write(FileHandle handle, uint64_t offset,
                                         const uint8_t* data,
                                         uint64_t length) {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kWrite, length));
  return base_->Write(handle, offset, data, length);
}

Status FaultInjectingFs::Truncate(FileHandle handle, uint64_t new_size) {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kTruncate));
  return base_->Truncate(handle, new_size);
}

Status FaultInjectingFs::Fsync(FileHandle handle, bool data_only) {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kFsync));
  return base_->Fsync(handle, data_only);
}

Status FaultInjectingFs::Fallocate(FileHandle handle, uint64_t offset,
                                   uint64_t length, bool keep_size) {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kFallocate, length));
  return base_->Fallocate(handle, offset, length, keep_size);
}

Status FaultInjectingFs::PunchHole(FileHandle handle, uint64_t offset,
                                   uint64_t length) {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kPunchHole));
  return base_->PunchHole(handle, offset, length);
}

Result<FileStat> FaultInjectingFs::FStat(FileHandle handle) {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kMeta));
  return base_->FStat(handle);
}

Status FaultInjectingFs::SetAttr(FileHandle handle, const AttrUpdate& update) {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kMeta));
  return base_->SetAttr(handle, update);
}

Result<FsStats> FaultInjectingFs::StatFs() {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kMeta));
  return base_->StatFs();
}

Status FaultInjectingFs::Sync() {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kFsync));
  return base_->Sync();
}

Result<DaxMapping> FaultInjectingFs::DaxMap(FileHandle handle, uint64_t offset,
                                            uint64_t length) {
  MUX_RETURN_IF_ERROR(Enter(FaultOp::kRead));
  return base_->DaxMap(handle, offset, length);
}

}  // namespace mux::vfs
