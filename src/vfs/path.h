// Path manipulation helpers shared by all file systems.
#ifndef MUX_VFS_PATH_H_
#define MUX_VFS_PATH_H_

#include <string>
#include <string_view>
#include <vector>

namespace mux::vfs {

// Splits "/a/b/c" into {"a", "b", "c"}. Empty components are dropped.
std::vector<std::string> SplitPath(std::string_view path);

// Collapses duplicate slashes and trailing slashes: "//a//b/" -> "/a/b".
// The root stays "/".
std::string NormalizePath(std::string_view path);

// "/a/b/c" -> "/a/b"; "/a" -> "/"; "/" -> "/".
std::string Dirname(std::string_view path);

// "/a/b/c" -> "c"; "/" -> "".
std::string Basename(std::string_view path);

// Joins with exactly one slash: ("/a", "b") -> "/a/b".
std::string JoinPath(std::string_view dir, std::string_view name);

// True if `path` is `prefix` or lives under it ("/a/b" under "/a").
bool PathHasPrefix(std::string_view path, std::string_view prefix);

// Validates an absolute path: must start with '/', no empty or "."/".."
// components.
bool IsValidPath(std::string_view path);

}  // namespace mux::vfs

#endif  // MUX_VFS_PATH_H_
