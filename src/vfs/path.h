// Path manipulation helpers shared by all file systems.
#ifndef MUX_VFS_PATH_H_
#define MUX_VFS_PATH_H_

#include <string>
#include <string_view>
#include <vector>

namespace mux::vfs {

// Splits "/a/b/c" into {"a", "b", "c"}. Empty components are dropped.
// Allocates one std::string per component — fine for cold paths (rename,
// recovery); resolution hot paths should iterate PathComponents instead.
std::vector<std::string> SplitPath(std::string_view path);

// Zero-allocation forward cursor over the components of a path. Views
// returned by Next() point into the caller's buffer and are valid as long
// as that buffer is. Empty components (duplicate slashes) are skipped, same
// as SplitPath.
//
//   PathComponents cursor(path);
//   std::string_view part;
//   while (cursor.Next(&part)) { ... }
class PathComponents {
 public:
  explicit PathComponents(std::string_view path) : path_(path) {}

  // Advances to the next component; returns false at the end.
  bool Next(std::string_view* out) {
    while (pos_ < path_.size() && path_[pos_] == '/') {
      ++pos_;
    }
    if (pos_ >= path_.size()) {
      return false;
    }
    size_t start = pos_;
    while (pos_ < path_.size() && path_[pos_] != '/') {
      ++pos_;
    }
    *out = path_.substr(start, pos_ - start);
    return true;
  }

 private:
  std::string_view path_;
  size_t pos_ = 0;
};

// Collapses duplicate slashes and trailing slashes: "//a//b/" -> "/a/b".
// The root stays "/".
std::string NormalizePath(std::string_view path);

// "/a/b/c" -> "/a/b"; "/a" -> "/"; "/" -> "/".
std::string Dirname(std::string_view path);

// "/a/b/c" -> "c"; "/" -> "".
std::string Basename(std::string_view path);

// Joins with exactly one slash: ("/a", "b") -> "/a/b".
std::string JoinPath(std::string_view dir, std::string_view name);

// True if `path` is `prefix` or lives under it ("/a/b" under "/a").
bool PathHasPrefix(std::string_view path, std::string_view prefix);

// Validates an absolute path: must start with '/', no empty or "."/".."
// components.
bool IsValidPath(std::string_view path);

}  // namespace mux::vfs

#endif  // MUX_VFS_PATH_H_
