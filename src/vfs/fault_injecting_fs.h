// FaultInjectingFs: a vfs::FileSystem decorator that injects deterministic,
// seedable faults into any tier file system.
//
// The paper's robustness story (§4 "Crash Consistency", replication and
// degraded-mode behaviour) only means something if the failure paths are
// exercised. This wrapper sits between Mux and a device-specific file system
// and makes a tier misbehave on demand:
//
//   * FailNth(op, n[, code])   — the n-th future call of that op class fails
//                                once, then the tier recovers (n = 1 fails
//                                the very next call).
//   * FailNext(op, count)      — the next `count` calls fail, then recover.
//   * SetErrorProbability(...) — every call of the class fails with
//                                probability p, driven by a seeded RNG so a
//                                given seed reproduces the exact fault
//                                sequence.
//   * SetWriteByteBudget(b)    — writes (and fallocates) succeed until the
//                                cumulative written bytes exceed the budget;
//                                after that they fail ENOSPC until the budget
//                                is raised or cleared (a tier filling up).
//   * KillDevice() / Revive()  — every operation fails EIO ("device died");
//                                feeds Mux's replication failover.
//   * SetHook(op, fn)          — runs fn before delegating each call of the
//                                class; tests use this to interleave
//                                operations at exact points (e.g. truncate a
//                                file in the middle of a migration copy).
//
// Injection decisions are made before delegation, so the wrapped file system
// never sees a faulted call.
//
// Synchronization: programming calls publish the armed state as ONE atomic
// epoch word (release-store) — low bits say which op classes currently have
// a fault window, hook, death, or byte budget armed; the high bits carry an
// epoch bumped on every reprogramming. Enter() acquire-loads the word once:
// when nothing relevant is armed it only bumps two relaxed counters and
// delegates — no mutex on the hot path, and no torn window-bounds reads (the
// old code read window state that chaos threads reprogram concurrently).
// Armed calls fall back to the mutex-guarded slow path, which keeps the
// exactly-once FailNth semantics and the seeded RNG sequence.
#ifndef MUX_VFS_FAULT_INJECTING_FS_H_
#define MUX_VFS_FAULT_INJECTING_FS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/vfs/file_system.h"

namespace mux::vfs {

// Operation classes faults are keyed on. kMeta covers the namespace and
// attribute calls (Mkdir/Rmdir/Unlink/Rename/Stat/ReadDir/FStat/SetAttr/
// StatFs); everything with its own failure semantics gets its own class.
enum class FaultOp : int {
  kOpen = 0,
  kRead,
  kWrite,
  kTruncate,
  kFallocate,
  kPunchHole,
  kFsync,
  kMeta,
};
inline constexpr int kFaultOpCount = 8;

struct FaultStats {
  uint64_t ops = 0;             // calls seen (including faulted ones)
  uint64_t injected = 0;        // total faults injected
  uint64_t injected_eio = 0;    // ... of which EIO
  uint64_t injected_enospc = 0; // ... of which ENOSPC
};

class FaultInjectingFs : public FileSystem {
 public:
  // Does not take ownership of `base`, matching how Mux borrows tier file
  // systems.
  explicit FaultInjectingFs(FileSystem* base, uint64_t seed = 1);

  std::string_view Name() const override { return name_; }

  // ---- fault programming ----------------------------------------------
  // Fails the nth future call of `op` (1 = the very next call) once, then
  // recovers. Replaces any previously scheduled nth-call fault for `op`.
  void FailNth(FaultOp op, uint64_t nth, ErrorCode code = ErrorCode::kIoError);
  // Fails the next `count` calls of `op`, then recovers.
  void FailNext(FaultOp op, uint64_t count,
                ErrorCode code = ErrorCode::kIoError);
  // Every call of `op` fails with probability `p` (0 disables).
  void SetErrorProbability(FaultOp op, double p,
                           ErrorCode code = ErrorCode::kIoError);
  // Writes/fallocates succeed until `bytes` cumulative bytes have been
  // written through this wrapper, then fail ENOSPC.
  void SetWriteByteBudget(uint64_t bytes);
  void ClearWriteByteBudget();
  // Device-died mode: everything fails EIO until Revive().
  void KillDevice();
  void Revive();
  bool dead() const;
  // Clears all programmed faults (budget, probabilities, scheduled
  // failures, death) but not stats or hooks.
  void ClearFaults();

  // Test hook: runs before each call of `op` is delegated (outside the
  // fault-state mutex, so the hook may reenter the file system stack).
  void SetHook(FaultOp op, std::function<void()> hook);
  void ClearHook(FaultOp op);

  FaultStats fault_stats() const;

  FileSystem* base() const { return base_; }

  // ---- vfs::FileSystem -------------------------------------------------
  Result<FileHandle> Open(const std::string& path, uint32_t flags,
                          uint32_t mode = 0644) override;
  Status Close(FileHandle handle) override;
  Status Mkdir(const std::string& path, uint32_t mode = 0755) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<FileStat> Stat(const std::string& path) override;
  Result<std::vector<DirEntry>> ReadDir(const std::string& path) override;

  Result<uint64_t> Read(FileHandle handle, uint64_t offset, uint64_t length,
                        uint8_t* out) override;
  Result<uint64_t> Write(FileHandle handle, uint64_t offset,
                         const uint8_t* data, uint64_t length) override;
  Status Truncate(FileHandle handle, uint64_t new_size) override;
  Status Fsync(FileHandle handle, bool data_only) override;
  Status Fallocate(FileHandle handle, uint64_t offset, uint64_t length,
                   bool keep_size) override;
  Status PunchHole(FileHandle handle, uint64_t offset,
                   uint64_t length) override;
  Result<FileStat> FStat(FileHandle handle) override;
  Status SetAttr(FileHandle handle, const AttrUpdate& update) override;

  Result<FsStats> StatFs() override;
  Status Sync() override;

  SimTime TimestampGranularityNs() const override {
    return base_->TimestampGranularityNs();
  }
  Result<DaxMapping> DaxMap(FileHandle handle, uint64_t offset,
                            uint64_t length) override;
  Status DaxUnmap(const DaxMapping& mapping) override {
    return base_->DaxUnmap(mapping);
  }
  bool SupportsDax() const override { return base_->SupportsDax(); }
  void ChargeDax(uint64_t bytes, bool is_write) override {
    base_->ChargeDax(bytes, is_write);
  }

 private:
  struct OpFault {
    // Calls of this class seen so far. Atomic: the unarmed fast path counts
    // it without mu_; the slow path claims a call number with fetch_add so
    // FailNth fires exactly once even under concurrent entries.
    std::atomic<uint64_t> calls{0};
    uint64_t fail_at = 0;    // absolute call number to fail once (0 = none)
    uint64_t fail_next = 0;  // remaining consecutive failures
    double probability = 0.0;
    ErrorCode code = ErrorCode::kIoError;
  };

  // ---- the epoch word ---------------------------------------------------
  // bit 0              — device dead
  // bit 1              — write byte budget armed
  // bits  8..8+N-1     — op class has a fault window armed
  //                      (fail_at || fail_next || probability > 0)
  // bits 16..16+N-1    — op class has a hook installed
  // bits 32..63        — epoch, bumped on every reprogramming
  static constexpr uint64_t kDeadBit = 1ull << 0;
  static constexpr uint64_t kBudgetBit = 1ull << 1;
  static constexpr int kFaultBitShift = 8;
  static constexpr int kHookBitShift = 16;
  static constexpr int kEpochShift = 32;
  static constexpr uint64_t FaultBit(int op) {
    return 1ull << (kFaultBitShift + op);
  }
  static constexpr uint64_t HookBit(int op) {
    return 1ull << (kHookBitShift + op);
  }
  // Rebuilds the armed bits from the programmed state, bumps the epoch, and
  // release-stores the word. mu_ held.
  void PublishWordLocked();

  // Runs the hook, then decides whether this call faults. `bytes` is the
  // write volume counted against the byte budget (0 for non-writes).
  Status Enter(FaultOp op, uint64_t bytes = 0);
  void CountInjected(ErrorCode code);  // mu_ held

  FileSystem* const base_;
  std::string name_;

  // Armed-state summary; see the bit layout above. The ONLY fault state the
  // fast path reads.
  std::atomic<uint64_t> fault_word_{0};
  std::atomic<uint64_t> ops_{0};  // FaultStats::ops

  mutable std::mutex mu_;
  Rng rng_;
  std::array<OpFault, kFaultOpCount> faults_;
  std::array<std::function<void()>, kFaultOpCount> hooks_;
  bool has_budget_ = false;
  uint64_t budget_remaining_ = 0;
  bool dead_ = false;
  FaultStats stats_;
};

}  // namespace mux::vfs

#endif  // MUX_VFS_FAULT_INJECTING_FS_H_
