// SCM cache controller (§2.5).
//
// Mux offloads the DRAM page-cache role to storage-class memory: one cache
// file is created and preallocated on the PM tier ("Mux can create one file
// for all caches … preallocate the cache file to ensure cache availability
// and reduce block allocation overhead") and DAX-mapped, so cache hits are
// direct loads from PM with no block I/O. Replacement is Multi-generational
// LRU by default, plain LRU for the ablation.
//
// The cache holds blocks of files whose home is a *slower* tier; PM-resident
// blocks are already as fast as the cache. User writes update a cached copy
// in place (write-through), so the cache never holds data newer than the
// home tier — which keeps migration's OCC reasoning sound: content on the
// home tier is always current. (The paper also allows write-back; see
// DESIGN.md for the tradeoff.)
//
// Admission control: a block is only inserted after `admission_threshold`
// misses, so one-touch scans do not pay the PM-copy cost for nothing.
#ifndef MUX_CORE_CACHE_CONTROLLER_H_
#define MUX_CORE_CACHE_CONTROLLER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/core/cost_model.h"
#include "src/core/mglru.h"
#include "src/obs/metrics.h"
#include "src/vfs/file_system.h"

namespace mux::core {

struct ScmCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t admissions = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
};

class CacheController {
 public:
  static constexpr uint64_t kBlockSize = 4096;

  struct Options {
    uint64_t capacity_blocks = 1024;  // 4 MiB default
    bool use_mglru = true;
    uint32_t admission_threshold = 2;  // misses before a block is admitted
    std::string cache_path = "/.mux_cache";
  };

  // `scm_fs` must support DAX (the PM tier's file system).
  CacheController(vfs::FileSystem* scm_fs, SimClock* clock,
                  const CostModel& costs, Options options);
  ~CacheController();

  // Creates, preallocates, and DAX-maps the cache file.
  Status Init();

  // Copies [offset_in_block, offset_in_block+n) of the cached block into
  // `out` if present. Charges the cache probe and, on hit, the DAX read.
  bool TryRead(uint64_t file_key, uint64_t block, uint64_t offset_in_block,
               uint64_t n, uint8_t* out);

  // Reports a miss; once the block's miss count reaches the admission
  // threshold, `block_data` (a full block) is copied into the cache.
  void OnMiss(uint64_t file_key, uint64_t block, const uint8_t* block_data);

  // Write-through update of a cached copy (no-op if not cached).
  void OnWrite(uint64_t file_key, uint64_t block, uint64_t offset_in_block,
               uint64_t n, const uint8_t* data);

  void InvalidateFile(uint64_t file_key);
  void InvalidateBlock(uint64_t file_key, uint64_t block);

  ScmCacheStats stats() const;
  size_t ResidentBlocks() const;
  std::string_view ReplacementName() const { return replacement_->Name(); }

  // Optional: observe per-op latency into "cache.{hit,miss,admission}_ns".
  void SetObs(obs::MetricsRegistry* metrics);

 private:
  struct Key {
    uint64_t file_key;
    uint64_t block;
    bool operator==(const Key& other) const {
      return file_key == other.file_key && block == other.block;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.file_key * 0x9e3779b97f4a7c15ULL ^
                                   k.block);
    }
  };

  uint8_t* SlotPtr(uint32_t slot) const {
    return dax_base_ + static_cast<uint64_t>(slot) * kBlockSize;
  }
  void EvictOneLocked();

  vfs::FileSystem* const scm_fs_;
  SimClock* const clock_;
  const CostModel costs_;
  const Options options_;

  mutable std::mutex mu_;
  vfs::FileHandle cache_handle_ = 0;
  bool initialized_ = false;
  uint8_t* dax_base_ = nullptr;
  vfs::DaxMapping mapping_;  // kept so the destructor can DaxUnmap it
  obs::MetricsRegistry* metrics_ = nullptr;  // optional, not owned
  std::unique_ptr<ReplacementPolicy> replacement_;
  std::unordered_map<Key, uint32_t, KeyHash> index_;   // key -> slot
  std::vector<Key> slot_owner_;                        // slot -> key
  std::vector<uint32_t> free_slots_;
  std::unordered_map<Key, uint32_t, KeyHash> miss_counts_;
  ScmCacheStats stats_;
};

}  // namespace mux::core

#endif  // MUX_CORE_CACHE_CONTROLLER_H_
