// SCM cache controller (§2.5) — production-grade concurrent edition.
//
// Mux offloads the DRAM page-cache role to storage-class memory: one cache
// file is created and preallocated on the PM tier ("Mux can create one file
// for all caches … preallocate the cache file to ensure cache availability
// and reduce block allocation overhead") and DAX-mapped, so cache hits are
// direct loads from PM with no block I/O. Replacement is Multi-generational
// LRU by default, plain LRU for the ablation.
//
// The cache holds blocks of files whose home is a *slower* tier; PM-resident
// blocks are already as fast as the cache. User writes update a cached copy
// in place (write-through), so the cache never holds data newer than the
// home tier — which keeps migration's OCC reasoning sound: content on the
// home tier is always current. (The paper also allows write-back; see
// DESIGN.md for the tradeoff.)
//
// Concurrency (Traffic Server's disk-cache shape, iocore/cache):
//   * The directory is hash-sharded: `Options::shards` (power of two,
//     default 16) shards, each owning a contiguous slice of the cache-file
//     slots with its own shared_mutex, index, free list, replacement policy
//     instance, and admission sketch. Hits take the shard lock *shared* and
//     record recency in a per-slot atomic access bit (MGLRU A-bit style);
//     eviction gives accessed slots a second chance under the exclusive
//     lock. `shards = 1` is the globally-serialized ablation baseline.
//   * Stats are per-shard relaxed atomics, aggregated lock-free by stats().
//
// Admission (scan resistance + write coalescing):
//   * A block is only inserted after `admission_threshold` misses, counted
//     in a per-shard fixed-size frequency sketch (open-addressed, bounded
//     probe window) with periodic *halving decay* — a streaming one-touch
//     scan can neither admit its blocks nor wipe the counted history of
//     legitimate hot candidates (the fmcfs per-block access-history idea in
//     compact form). Evicted residents leave a ghost entry one miss short
//     of the threshold so a re-reference readmits them quickly.
//   * Admitted blocks are staged into a PER-SHARD sequential aggregation
//     buffer (the 256 KiB default divides across the shards) and flushed as
//     ONE bulk DAX write when it fills — Traffic Server's aggregation-buffer
//     write path, one staging lane per directory shard so admissions on
//     different shards never serialize on a global staging mutex. An
//     in-buffer index keeps staged blocks readable, writable, and
//     invalidatable before the flush. `agg_buffer_bytes = 0` is the
//     block-at-a-time ablation; `shards = 1` reproduces the old single
//     global buffer exactly.
//
// Lock hierarchy (see DESIGN.md "SCM cache"): shard mutex -> that shard's
// agg_mu -> device mutex (slots are statically partitioned, so no path ever
// needs two shards' staging locks at once). Shard locks are leaves of the
// Mux hierarchy: callers hold inode locks when they enter, the cache never
// calls back up.
#ifndef MUX_CORE_CACHE_CONTROLLER_H_
#define MUX_CORE_CACHE_CONTROLLER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/core/cost_model.h"
#include "src/core/mglru.h"
#include "src/obs/metrics.h"
#include "src/vfs/file_system.h"

namespace mux::core {

struct ScmCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t admissions = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  // Aggregation-buffer admission: bulk flushes and the bytes they wrote as
  // single DAX writes (0/0 with agg_buffer_bytes = 0).
  uint64_t agg_flushes = 0;
  uint64_t agg_flush_bytes = 0;
  // Staged blocks invalidated or evicted before their flush.
  uint64_t agg_cancelled = 0;
  // Halving-decay events across all shard sketches.
  uint64_t sketch_decays = 0;
};

// Fixed-size frequency/ghost sketch for admission control: open-addressed
// (file, block) -> saturating 8-bit count with a bounded probe window. When
// the window is full the minimum-count entry is stolen (one-touch scan
// entries lose to counted hot candidates), and every `decay_interval`
// updates all counts halve and zeros are freed — history fades instead of
// being wiped, so a candidate one miss short of admission survives a decay
// event with half its progress. Externally synchronized (per-shard lock).
class FrequencySketch {
 public:
  static constexpr uint32_t kProbeWindow = 16;
  static constexpr uint8_t kMaxCount = 255;

  // `entries_hint` is rounded up to a power of two (min 64). A
  // `decay_interval` of 0 picks 4x the table size.
  void Reset(uint64_t entries_hint, uint32_t decay_interval);

  // Bumps the count for (file_key, block) and returns it. Sets *decayed
  // when this update triggered a halving pass.
  uint32_t Increment(uint64_t file_key, uint64_t block, bool* decayed);
  // Ghost history: remember `count` for a key without bumping (used for
  // evicted residents). Never triggers decay.
  void Note(uint64_t file_key, uint64_t block, uint8_t count);
  void Erase(uint64_t file_key, uint64_t block);
  // Drops every entry of `file_key` whose block is in [first, last].
  void EraseRange(uint64_t file_key, uint64_t first_block,
                  uint64_t last_block);

  size_t entries() const { return used_; }

 private:
  struct Entry {
    uint64_t file_key = 0;
    uint64_t block = 0;
    uint8_t count = 0;  // 0 = free slot
  };

  size_t Bucket(uint64_t file_key, uint64_t block) const;
  Entry* Find(uint64_t file_key, uint64_t block);
  void Decay();

  std::vector<Entry> table_;
  size_t mask_ = 0;
  size_t used_ = 0;
  uint32_t decay_interval_ = 0;
  uint32_t ops_since_decay_ = 0;
};

class CacheController {
 public:
  static constexpr uint64_t kBlockSize = 4096;

  struct Options {
    uint64_t capacity_blocks = 1024;  // 4 MiB default
    bool use_mglru = true;
    uint32_t admission_threshold = 2;  // misses before a block is admitted
    std::string cache_path = "/.mux_cache";
    // Directory shards (rounded down to a power of two, clamped to
    // [1, capacity_blocks]). 1 = the global-lock ablation.
    uint32_t shards = 16;
    // Total aggregation-buffer size, divided evenly across the shards
    // (each shard stages at least one block, clamped to its slot count).
    // 0 disables staging: admissions write one block at a time, the
    // pre-sharding behavior.
    uint64_t agg_buffer_bytes = 256 * 1024;
    // Sketch updates per shard between halving-decay passes; 0 = auto
    // (4x the sketch table size).
    uint32_t sketch_decay_interval = 0;
  };

  // `scm_fs` must support DAX (the PM tier's file system).
  CacheController(vfs::FileSystem* scm_fs, SimClock* clock,
                  const CostModel& costs, Options options);
  ~CacheController();

  // Creates, preallocates, and DAX-maps the cache file.
  Status Init();

  // Copies [offset_in_block, offset_in_block+n) of the cached block into
  // `out` if present (resident or staged). Charges the cache probe and, on
  // a resident hit, the DAX read.
  bool TryRead(uint64_t file_key, uint64_t block, uint64_t offset_in_block,
               uint64_t n, uint8_t* out);

  // Reports a miss; once the block's sketch count reaches the admission
  // threshold, `block_data` (a full block) is admitted — staged into the
  // aggregation buffer, or copied straight to DAX when staging is off.
  void OnMiss(uint64_t file_key, uint64_t block, const uint8_t* block_data);

  // Write-through update of a cached copy (no-op if not cached).
  void OnWrite(uint64_t file_key, uint64_t block, uint64_t offset_in_block,
               uint64_t n, const uint8_t* data);

  void InvalidateFile(uint64_t file_key);
  void InvalidateBlock(uint64_t file_key, uint64_t block);
  // Drops cached copies and sketch history for blocks of `file_key` in
  // [first_block, last_block] (inclusive; pass UINT64_MAX for "to end").
  void InvalidateRange(uint64_t file_key, uint64_t first_block,
                       uint64_t last_block);

  // Flushes every shard's staged blocks to their slots, one bulk DAX write
  // per non-empty shard buffer. Per-shard flushes happen automatically when
  // a buffer fills; public for tests and shutdown.
  void FlushAggregationBuffer();

  ScmCacheStats stats() const;       // lock-free aggregate over shards
  size_t ResidentBlocks() const;     // includes staged blocks
  size_t StagedBlocks() const;
  uint32_t ShardCount() const { return shard_count_; }
  std::string_view ReplacementName() const;

  // Exhaustive invariant check for stress tests: every index entry owns a
  // valid in-shard slot, no slot is owned twice or both free and owned,
  // per-shard occupancy sums match, and every staged entry's key/slot agree
  // with its shard. Takes every lock; not for hot paths.
  Status CheckConsistency() const;

  // Optional: observe per-op latency into "cache.{hit,miss,admission}_ns"
  // and the cache.agg.* / cache.sketch.* counters.
  void SetObs(obs::MetricsRegistry* metrics);

 private:
  struct Key {
    uint64_t file_key = 0;
    uint64_t block = 0;
    bool operator==(const Key& other) const {
      return file_key == other.file_key && block == other.block;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.file_key * 0x9e3779b97f4a7c15ULL ^
                                   k.block);
    }
  };

  // Slot residency state: kResident, or the index of the aggregation-buffer
  // entry holding the block's bytes until the next flush.
  static constexpr uint32_t kResident = UINT32_MAX;

  struct AggEntry {
    Key key;
    uint32_t slot = 0;
    bool valid = false;  // false once cancelled (invalidation/eviction)
  };

  struct alignas(64) Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<Key, uint32_t, KeyHash> index;  // key -> global slot
    std::vector<uint32_t> free_slots;
    std::unique_ptr<ReplacementPolicy> replacement;
    FrequencySketch sketch;
    // Per-shard aggregation staging (below mu, above the device): this
    // shard's admitted blocks stage here and flush as one bulk DAX write.
    // Slot -> entry back-pointers live in slot_state_ and only ever name
    // entries of the slot's owning shard (slots are statically
    // partitioned).
    mutable std::mutex agg_mu;
    std::vector<uint8_t> agg_buffer;
    std::vector<AggEntry> agg_entries;
    // Stats: written under mu (any mode), read lock-free by stats().
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> admissions{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> invalidations{0};
    std::atomic<uint64_t> sketch_decays{0};
  };

  Shard& ShardFor(const Key& key) {
    const size_t h = KeyHash()(key);
    return shards_[(h ^ (h >> 32)) & shard_mask_];
  }
  const Shard& ShardForConst(const Key& key) const {
    return const_cast<CacheController*>(this)->ShardFor(key);
  }

  uint8_t* SlotPtr(uint32_t slot) const {
    return dax_base_ + static_cast<uint64_t>(slot) * kBlockSize;
  }

  // Takes a free slot, evicting (with access-bit second chance) if needed.
  // Returns kResident when the shard has no usable slot. Shard lock held
  // exclusively.
  uint32_t TakeSlotLocked(Shard& shard);
  // Returns `slot` to the shard's free list, cancelling its staged entry
  // first so a later flush cannot clobber a reused slot. Shard lock held
  // exclusively; takes the shard's agg_mu when the slot is staged.
  void ReleaseSlotLocked(Shard& shard, uint32_t slot);
  // Removes one resident key under the exclusive shard lock (shared helper
  // of the invalidation paths). Returns false if not present.
  bool InvalidateKeyLocked(Shard& shard, const Key& key);
  // Flush one shard's staging buffer, its agg_mu already held.
  void FlushAggLocked(Shard& shard);
  void ObserveCounter(std::string_view name, uint64_t delta);

  vfs::FileSystem* const scm_fs_;
  SimClock* const clock_;
  const CostModel costs_;
  const Options options_;

  uint32_t shard_count_ = 1;
  size_t shard_mask_ = 0;
  uint64_t slots_per_shard_ = 0;
  uint64_t usable_slots_ = 0;
  std::vector<Shard> shards_;

  std::atomic<bool> initialized_{false};
  vfs::FileHandle cache_handle_ = 0;
  uint8_t* dax_base_ = nullptr;
  vfs::DaxMapping mapping_;  // kept so the destructor can DaxUnmap it
  std::atomic<obs::MetricsRegistry*> metrics_{nullptr};  // optional, not owned

  // slot -> owning key; written only under the owning shard's exclusive
  // lock (slots are statically partitioned by shard).
  std::vector<Key> slot_owner_;
  // Per-slot MGLRU-style access bit, set by shared-lock hits, consumed by
  // the eviction second-chance scan under the exclusive lock.
  std::unique_ptr<std::atomic<uint8_t>[]> accessed_;
  // Per-slot residency state; staged -> resident flips are release stores
  // so readers that skip agg_mu_ still see flushed bytes.
  std::unique_ptr<std::atomic<uint32_t>[]> slot_state_;

  // Per-shard staging capacity in blocks (0 = staging disabled). The
  // buffers themselves live in the shards; only the aggregate counters are
  // global (relaxed atomics, read by stats()).
  uint64_t agg_shard_capacity_blocks_ = 0;
  std::atomic<uint64_t> agg_flushes_{0};
  std::atomic<uint64_t> agg_flush_bytes_{0};
  std::atomic<uint64_t> agg_cancelled_{0};
};

}  // namespace mux::core

#endif  // MUX_CORE_CACHE_CONTROLLER_H_
