#include "src/core/mux.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "src/common/logging.h"
#include "src/core/mux_internal.h"
#include "src/vfs/path.h"

namespace mux::core {

using internal::Decay;
using internal::kRootIno;

Mux::Mux(SimClock* clock) : Mux(clock, Options()) {}

Mux::Mux(SimClock* clock, Options options)
    : clock_(clock), options_(std::move(options)),
      trace_(options_.trace_capacity) {
  auto root = std::make_shared<MuxInode>();
  root->ino = kRootIno;
  root->type = vfs::FileType::kDirectory;
  root->path = "/";
  root->attrs.set_ctime(clock_->Now());
  root_ = root;
  inodes_.emplace(kRootIno, std::move(root));
  auto policy = PolicyRegistry::Global().Create(options_.policy,
                                                options_.policy_args);
  if (policy.ok()) {
    policy_ = std::move(*policy);
  } else {
    policy_ = MakeLruPolicy();
  }
  PublishTierSetLocked();  // single-threaded in the constructor
  if (options_.parallel_dispatch) {
    executor_ =
        std::make_unique<IoExecutor>(clock_, options_.io_threads_per_tier);
    if (options_.async_dispatch) {
      async_ = std::make_unique<AsyncIoCore>(
          clock_, &metrics_,
          options_.continuation_ops ? std::max(0, options_.resume_workers)
                                    : 0);
    }
  }
}

void Mux::PublishTierSetLocked() {
  auto snapshot = std::make_shared<TierSet>();
  snapshot->tiers = tiers_;
  snapshot->policy = policy_;
  std::lock_guard<std::mutex> lock(tier_set_mu_);
  tier_set_ = std::move(snapshot);
}

void Mux::RecordOp(const char* op, std::string_view hist, uint64_t bytes,
                   SimTime start_ns) const {
  RecordOpElapsed(op, hist, bytes, start_ns, clock_->Now() - start_ns);
}

void Mux::RecordOpElapsed(const char* op, std::string_view hist,
                          uint64_t bytes, SimTime start_ns,
                          SimTime elapsed) const {
  metrics_.Observe(hist, elapsed);
  obs::TraceEvent event;
  event.layer = "mux";
  event.op = op;
  event.bytes = bytes;
  event.start_ns = start_ns;
  event.duration_ns = elapsed;
  trace_.Record(std::move(event));
}

Mux::~Mux() {
  StopBackgroundMigration();
  // Quiesce the executor before tearing down state its workers reference.
  if (async_ != nullptr) {
    async_->Shutdown();
  }
  if (executor_ != nullptr) {
    executor_->Shutdown();
  }
  // Close every shadow handle still open.
  std::lock_guard<std::shared_mutex> lock(ns_mu_);
  for (auto& [ino, inode] : inodes_) {
    std::lock_guard<OpGate> file_lock(inode->mu);
    (void)CloseShadowsLocked(*inode);
  }
}

// ---- tier registry ---------------------------------------------------------

Result<TierId> Mux::AddTier(const std::string& name, vfs::FileSystem* fs,
                            const device::DeviceProfile& profile) {
  if (fs == nullptr) {
    return InvalidArgumentError("null file system");
  }
  std::lock_guard<std::shared_mutex> lock(ns_mu_);
  for (const TierInfo& tier : tiers_) {
    if (tier.name == name) {
      return ExistsError("tier name in use: " + name);
    }
  }
  TierInfo tier;
  tier.id = next_tier_id_++;
  tier.name = name;
  tier.fs = fs;
  tier.profile = profile;
  tier.speed_rank = static_cast<uint32_t>(tiers_.size());
  const TierId id = tier.id;
  tiers_.push_back(std::move(tier));
  PublishTierSetLocked();
  if (executor_ != nullptr) {
    executor_->AddTier(id);
  }
  if (async_ != nullptr) {
    // Channel count comes straight from the device profile: this is where
    // SSD queue_depth 16 vs HDD queue_depth 1 becomes a simulated quantity.
    async_->RegisterQueue(id, name, profile.queue_depth,
                          options_.io_threads_per_tier);
  }

  // The SCM cache wants the (first) DAX-capable tier.
  if (options_.enable_scm_cache && cache_ == nullptr && fs->SupportsDax()) {
    cache_ = std::make_unique<CacheController>(fs, clock_, options_.costs,
                                               options_.cache);
    cache_->SetObs(&metrics_);
    Status init = cache_->Init();
    if (!init.ok()) {
      MUX_LOG(kWarning) << "SCM cache init failed: " << init;
      cache_.reset();
    }
  }
  return id;
}

Status Mux::RemoveTier(const std::string& name) {
  TierId removed = kInvalidTier;
  TierId target = kInvalidTier;
  std::vector<std::shared_ptr<MuxInode>> files;
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    for (const TierInfo& tier : tiers_) {
      if (tier.name == name) {
        removed = tier.id;
      }
    }
    if (removed == kInvalidTier) {
      return NotFoundError("no such tier: " + name);
    }
    if (tiers_.size() < 2) {
      return InvalidArgumentError("cannot remove the last tier");
    }
    for (const TierInfo& tier : tiers_) {
      if (tier.id != removed) {
        target = tier.id;
        break;
      }
    }
    for (const auto& [ino, inode] : inodes_) {
      if (inode->type == vfs::FileType::kRegular) {
        files.push_back(inode);
      }
    }
  }
  // Drain the tier.
  for (const auto& inode : files) {
    uint64_t blocks = 0;
    {
      std::lock_guard<OpGate> file_lock(inode->mu);
      blocks = (inode->attrs.size() + kBlockSize - 1) / kBlockSize;
      if (inode->blt->BlocksOnTier(removed) == 0) {
        continue;
      }
    }
    MUX_RETURN_IF_ERROR(
        MigrateRangeInternal(inode, 0, blocks, target, removed));
  }
  std::lock_guard<std::shared_mutex> lock(ns_mu_);
  for (const auto& [ino, inode] : inodes_) {
    std::lock_guard<OpGate> file_lock(inode->mu);
    if (inode->blt != nullptr && inode->blt->BlocksOnTier(removed) != 0) {
      return BusyError("tier still holds data: " + name);
    }
    std::lock_guard<std::mutex> shadow_lock(inode->shadow_mu);
    auto it = inode->shadows.find(removed);
    if (it != inode->shadows.end()) {
      for (const TierInfo& tier : tiers_) {
        if (tier.id == removed) {
          (void)tier.fs->Close(it->second);
        }
      }
      inode->shadows.erase(it);
    }
    inode->touched_tiers.erase(removed);
  }
  tiers_.erase(std::remove_if(tiers_.begin(), tiers_.end(),
                              [&](const TierInfo& t) {
                                return t.id == removed;
                              }),
               tiers_.end());
  PublishTierSetLocked();
  if (async_ != nullptr) {
    async_->UnregisterQueue(removed);
  }
  if (executor_ != nullptr) {
    executor_->RemoveTier(removed);
  }
  return Status::Ok();
}

Result<TierId> Mux::TierByName(const std::string& name) const {
  const auto tier_set = SnapshotTierSet();
  for (const TierInfo& tier : tier_set->tiers) {
    if (tier.name == name) {
      return tier.id;
    }
  }
  return NotFoundError("no such tier: " + name);
}

std::vector<TierUsage> Mux::TierUsagesFor(const std::vector<TierInfo>& tiers) {
  std::vector<TierUsage> usages;
  usages.reserve(tiers.size());
  for (const TierInfo& tier : tiers) {
    TierUsage usage;
    usage.id = tier.id;
    usage.name = tier.name;
    usage.speed_rank = tier.speed_rank;
    usage.kind = tier.profile.kind;
    auto st = tier.fs->StatFs();
    if (st.ok()) {
      usage.capacity_bytes = st->capacity_bytes;
      usage.free_bytes = st->free_bytes;
    }
    usages.push_back(std::move(usage));
  }
  std::sort(usages.begin(), usages.end(),
            [](const TierUsage& a, const TierUsage& b) {
              return a.speed_rank < b.speed_rank;
            });
  return usages;
}

std::vector<TierUsage> Mux::TierUsages() const {
  return TierUsagesFor(SnapshotTierSet()->tiers);
}

TierId Mux::FastestTierOf(const std::vector<TierInfo>& tiers) {
  TierId best = kInvalidTier;
  uint32_t best_rank = UINT32_MAX;
  for (const TierInfo& tier : tiers) {
    if (tier.speed_rank < best_rank) {
      best_rank = tier.speed_rank;
      best = tier.id;
    }
  }
  return best;
}

TierId Mux::FastestTierLocked() const { return FastestTierOf(tiers_); }

// ---- policy ------------------------------------------------------------------

Status Mux::SetPolicy(std::unique_ptr<TieringPolicy> policy) {
  if (policy == nullptr) {
    return InvalidArgumentError("null policy");
  }
  std::lock_guard<std::shared_mutex> lock(ns_mu_);
  policy_ = std::move(policy);
  PublishTierSetLocked();
  return Status::Ok();
}

Status Mux::SetPolicyByName(const std::string& name, const std::string& args) {
  MUX_ASSIGN_OR_RETURN(auto policy,
                       PolicyRegistry::Global().Create(name, args));
  return SetPolicy(std::move(policy));
}

std::string_view Mux::PolicyName() const {
  // Policies return literal names, so the view outlives the snapshot.
  return SnapshotTierSet()->policy->Name();
}

// ---- file index ------------------------------------------------------------

void Mux::IndexInsertLocked(const std::shared_ptr<MuxInode>& inode) {
  std::lock_guard<std::mutex> lock(file_index_mu_);
  // Compact when unlinks have left the index mostly dead — but never while a
  // chunked scan holds a cursor (compaction shifts slots under it). The
  // creation order of survivors is preserved, which is the invariant scans
  // rely on (parents before children).
  if (index_active_scans_ == 0 && index_dead_hint_ > 64 &&
      index_dead_hint_ > file_index_.size() / 2) {
    std::vector<std::weak_ptr<MuxInode>> live;
    live.reserve(file_index_.size() - index_dead_hint_ / 2);
    for (const auto& weak : file_index_) {
      auto node = weak.lock();
      if (node != nullptr && !node->unlinked.load(std::memory_order_acquire)) {
        live.push_back(weak);
      }
    }
    file_index_ = std::move(live);
    index_dead_hint_ = 0;
  }
  file_index_.push_back(inode);
}

bool Mux::CollectIndexChunk(
    size_t* cursor, size_t chunk,
    std::vector<std::shared_ptr<MuxInode>>* out) const {
  out->clear();
  std::lock_guard<std::mutex> lock(file_index_mu_);
  if (*cursor >= file_index_.size()) {
    return false;
  }
  const size_t end = std::min(file_index_.size(), *cursor + chunk);
  for (size_t i = *cursor; i < end; ++i) {
    auto node = file_index_[i].lock();
    if (node != nullptr && !node->unlinked.load(std::memory_order_acquire)) {
      out->push_back(std::move(node));
    }
  }
  *cursor = end;
  return true;
}

Mux::IndexScanGuard::IndexScanGuard(const Mux* mux) : mux_(mux) {
  std::lock_guard<std::mutex> lock(mux_->file_index_mu_);
  ++mux_->index_active_scans_;
}

Mux::IndexScanGuard::~IndexScanGuard() {
  std::lock_guard<std::mutex> lock(mux_->file_index_mu_);
  --mux_->index_active_scans_;
}

// ---- namespace helpers ----------------------------------------------------------

Result<std::shared_ptr<Mux::MuxInode>> Mux::ResolveLocked(
    const std::string& path) const {
  // The resolve hot path runs once per Open/Stat/ReadDir at whatever rate
  // the clients offer, so it allocates nothing on success: components are
  // cursored as string_views (validated inline, same rules as IsValidPath)
  // and looked up through the transparent children comparator.
  if (path.empty() || path[0] != '/') {
    return InvalidArgumentError("invalid path: " + path);
  }
  std::shared_ptr<MuxInode> cur = root_;
  vfs::PathComponents cursor(path);
  std::string_view part;
  while (cursor.Next(&part)) {
    if (part == "." || part == "..") {
      return InvalidArgumentError("invalid path: " + path);
    }
    if (cur->type != vfs::FileType::kDirectory) {
      return NotDirError(path);
    }
    auto it = cur->children.find(part);
    if (it == cur->children.end()) {
      return NotFoundError(path);
    }
    auto node = inodes_.find(it->second);
    if (node == inodes_.end()) {
      return InternalError("dangling mux dentry");
    }
    cur = node->second;
  }
  return cur;
}

Result<std::shared_ptr<Mux::MuxInode>> Mux::ResolveDirLocked(
    const std::string& path) const {
  MUX_ASSIGN_OR_RETURN(auto node, ResolveLocked(path));
  if (node->type != vfs::FileType::kDirectory) {
    return NotDirError(path);
  }
  return node;
}

Result<Mux::OpCtx> Mux::BeginOp(vfs::FileHandle handle,
                                uint32_t needed_flags) const {
  if (!options_.sharded_op_setup) {
    // Ablation baseline: one global mutex around the lookup plus a full
    // tier-vector copy per op — the pre-sharding behavior, kept so
    // bench/metadata_scaling can measure what the sharded path buys.
    std::lock_guard<std::mutex> lock(legacy_op_mu_);
    HandleShard& shard = ShardFor(handle);
    auto it = shard.files.find(handle);
    if (it == shard.files.end()) {
      return BadHandleError("unknown handle");
    }
    if ((it->second.flags & needed_flags) != needed_flags) {
      return PermissionError("handle lacks required access mode");
    }
    OpCtx ctx;
    ctx.file = it->second;
    auto legacy = std::make_shared<TierSet>();
    const auto current = SnapshotTierSet();
    legacy->tiers = current->tiers;  // the per-op vector copy being ablated
    legacy->policy = current->policy;
    ctx.tier_set = std::move(legacy);
    return ctx;
  }

  // Hot path: one shard shared-lock for the handle, one shared_ptr copy for
  // the tier snapshot. No global mutex, no vector copy.
  OpCtx ctx;
  {
    HandleShard& shard = ShardFor(handle);
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.files.find(handle);
    if (it == shard.files.end()) {
      return BadHandleError("unknown handle");
    }
    if ((it->second.flags & needed_flags) != needed_flags) {
      return PermissionError("handle lacks required access mode");
    }
    ctx.file = it->second;
  }
  ctx.tier_set = SnapshotTierSet();
  return ctx;
}

vfs::FileHandle Mux::InsertOpenFile(const std::shared_ptr<MuxInode>& inode,
                                    uint32_t flags) {
  const vfs::FileHandle handle =
      next_handle_.fetch_add(1, std::memory_order_relaxed);
  inode->open_count.fetch_add(1, std::memory_order_relaxed);
  HandleShard& shard = ShardFor(handle);
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  shard.files.emplace(handle, OpenFile{inode, flags});
  return handle;
}

// ---- shadow plumbing ----------------------------------------------------------

Status Mux::EnsureShadowDirs(const TierInfo& tier, const std::string& path) {
  // mkdir -p on the tier for every ancestor of `path`.
  const auto parts = vfs::SplitPath(path);
  std::string prefix;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    prefix += '/';
    prefix += parts[i];
    Status s = tier.fs->Mkdir(prefix, 0755);
    if (!s.ok() && s.code() != ErrorCode::kExists) {
      return s;
    }
  }
  return Status::Ok();
}

Result<vfs::FileHandle> Mux::ShadowHandleLocked(MuxInode& inode,
                                                const TierInfo& tier,
                                                bool create) {
  // shadow_mu (not inode.mu) owns the map: shared-lock readers open handles
  // lazily and the migration copy phase reads them with no file lock, so
  // every access funnels through here. Held across the underlying Open so
  // two racing readers cannot double-open the same shadow.
  std::lock_guard<std::mutex> shadow_lock(inode.shadow_mu);
  auto it = inode.shadows.find(tier.id);
  if (it != inode.shadows.end()) {
    return it->second;
  }
  uint32_t flags = vfs::OpenFlags::kReadWrite;
  if (create) {
    flags |= vfs::OpenFlags::kCreate;
    MUX_RETURN_IF_ERROR(EnsureShadowDirs(tier, inode.path));
  }
  MUX_ASSIGN_OR_RETURN(vfs::FileHandle handle,
                       tier.fs->Open(inode.path, flags, inode.attrs.mode()));
  inode.shadows.emplace(tier.id, handle);
  inode.touched_tiers.insert(tier.id);
  return handle;
}

Status Mux::CloseShadowsLocked(MuxInode& inode) {
  // Callers hold inode.mu; tier table access via tiers_ snapshot captured
  // by the caller is not needed here because the destructor and unlink paths
  // hold ns_mu_ as well. To stay safe, look up through the member directly —
  // every caller of this function holds ns_mu_.
  std::lock_guard<std::mutex> shadow_lock(inode.shadow_mu);
  for (const auto& [tier_id, handle] : inode.shadows) {
    for (const TierInfo& tier : tiers_) {
      if (tier.id == tier_id) {
        (void)tier.fs->Close(handle);
      }
    }
  }
  inode.shadows.clear();
  return Status::Ok();
}

void Mux::Touch(MuxInode& inode) {
  const SimTime now = clock_->Now();
  // meta_mu: Touch runs under a merely-shared file lock on the read path, so
  // two readers of one file can race here without it.
  std::lock_guard<std::mutex> meta_lock(inode.meta_mu);
  inode.temperature = Decay(inode.temperature, now - inode.last_access) + 1.0;
  inode.last_access = now;
}

// ---- vfs namespace operations -----------------------------------------------------

Result<vfs::FileHandle> Mux::Open(const std::string& path, uint32_t flags,
                                  uint32_t mode) {
  ChargeDispatch();
  std::unique_lock<std::mutex> legacy_lock;
  if (!options_.sharded_op_setup) {
    legacy_lock = std::unique_lock<std::mutex>(legacy_op_mu_);
  }
  // Opening an existing file mutates nothing under ns_mu_ (open_count is
  // atomic, the handle lives in its shard), so the common case holds the
  // namespace lock shared. Only an actual create upgrades to exclusive.
  const auto open_resolved =
      [&](const std::shared_ptr<MuxInode>& inode) -> Result<vfs::FileHandle> {
    if ((flags & vfs::OpenFlags::kExclusive) &&
        (flags & vfs::OpenFlags::kCreate)) {
      return ExistsError(path);
    }
    if (inode->type == vfs::FileType::kDirectory) {
      return IsDirError(path);
    }
    if (flags & vfs::OpenFlags::kTruncate) {
      std::lock_guard<OpGate> file_lock(inode->mu);
      MUX_RETURN_IF_ERROR(TruncateLocked(*inode, 0, tiers_));
    }
    return InsertOpenFile(inode, flags);
  };
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    if (tiers_.empty()) {
      return InternalError("mux has no registered tiers");
    }
    auto resolved = ResolveLocked(path);
    if (resolved.ok()) {
      return open_resolved(*resolved);
    }
    if (resolved.status().code() != ErrorCode::kNotFound ||
        (flags & vfs::OpenFlags::kCreate) == 0) {
      return resolved.status();
    }
  }

  // Create path: retake exclusive and re-resolve — another creator may have
  // won the race between the two lock holds.
  std::lock_guard<std::shared_mutex> lock(ns_mu_);
  auto resolved = ResolveLocked(path);
  if (resolved.ok()) {
    return open_resolved(*resolved);
  }
  if (resolved.status().code() != ErrorCode::kNotFound) {
    return resolved.status();
  }
  MUX_ASSIGN_OR_RETURN(auto parent, ResolveDirLocked(vfs::Dirname(path)));
  auto inode = std::make_shared<MuxInode>();
  inode->ino = next_ino_++;
  inode->type = vfs::FileType::kRegular;
  inode->path = vfs::NormalizePath(path);
  inode->blt = MakeBlt(options_.blt_kind);
  const TierId fastest = FastestTierLocked();
  const SimTime now = clock_->Now();
  inode->attrs.set_ctime(now);
  inode->attrs.UpdateSize(0, fastest);
  inode->attrs.UpdateMtime(now, fastest);
  inode->attrs.UpdateAtime(now, fastest);
  inode->attrs.UpdateMode(mode, fastest);
  inode->last_access = now;
  inodes_.emplace(inode->ino, inode);
  IndexInsertLocked(inode);
  parent->children.emplace(vfs::Basename(path), inode->ino);
  return InsertOpenFile(inode, flags);
}

Status Mux::Close(vfs::FileHandle handle) {
  ChargeDispatch();
  std::unique_lock<std::mutex> legacy_lock;
  if (!options_.sharded_op_setup) {
    legacy_lock = std::unique_lock<std::mutex>(legacy_op_mu_);
  }
  // Handle teardown touches only the shard and the inode's atomic count —
  // no namespace lock at all.
  HandleShard& shard = ShardFor(handle);
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  auto it = shard.files.find(handle);
  if (it == shard.files.end()) {
    return BadHandleError("close of unknown handle");
  }
  it->second.inode->open_count.fetch_sub(1, std::memory_order_relaxed);
  shard.files.erase(it);
  return Status::Ok();
}

Status Mux::Mkdir(const std::string& path, uint32_t mode) {
  ChargeDispatch();
  std::lock_guard<std::shared_mutex> lock(ns_mu_);
  if (!vfs::IsValidPath(path) || vfs::NormalizePath(path) == "/") {
    return InvalidArgumentError("invalid mkdir path: " + path);
  }
  if (ResolveLocked(path).ok()) {
    return ExistsError(path);
  }
  MUX_ASSIGN_OR_RETURN(auto parent, ResolveDirLocked(vfs::Dirname(path)));
  auto inode = std::make_shared<MuxInode>();
  inode->ino = next_ino_++;
  inode->type = vfs::FileType::kDirectory;
  inode->path = vfs::NormalizePath(path);
  const SimTime now = clock_->Now();
  inode->attrs.set_ctime(now);
  inode->attrs.UpdateMode(mode, FastestTierLocked());
  inodes_.emplace(inode->ino, inode);
  IndexInsertLocked(inode);
  parent->children.emplace(vfs::Basename(path), inode->ino);
  return Status::Ok();
}

Status Mux::Rmdir(const std::string& path) {
  ChargeDispatch();
  std::lock_guard<std::shared_mutex> lock(ns_mu_);
  if (vfs::NormalizePath(path) == "/") {
    return InvalidArgumentError("cannot remove root");
  }
  MUX_ASSIGN_OR_RETURN(auto inode, ResolveLocked(path));
  if (inode->type != vfs::FileType::kDirectory) {
    return NotDirError(path);
  }
  if (!inode->children.empty()) {
    return NotEmptyError(path);
  }
  MUX_ASSIGN_OR_RETURN(auto parent, ResolveDirLocked(vfs::Dirname(path)));
  NamespaceMutationGuard mutation(this);
  // Remove the shadow directory wherever it materialized.
  for (const TierInfo& tier : tiers_) {
    Status s = tier.fs->Rmdir(inode->path);
    if (!s.ok() && s.code() != ErrorCode::kNotFound) {
      return s;
    }
  }
  inode->unlinked.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> index_lock(file_index_mu_);
    ++index_dead_hint_;
  }
  parent->children.erase(vfs::Basename(path));
  inodes_.erase(inode->ino);
  return Status::Ok();
}

Status Mux::UnlinkInodeLocked(const std::shared_ptr<MuxInode>& inode) {
  // ns_mu_ held. Drop shadows, shadow files, cache entries, namespace entry.
  std::lock_guard<OpGate> file_lock(inode->mu);
  MUX_RETURN_IF_ERROR(CloseShadowsLocked(*inode));
  for (const TierId tier_id : inode->touched_tiers) {
    for (const TierInfo& tier : tiers_) {
      if (tier.id == tier_id) {
        Status s = tier.fs->Unlink(inode->path);
        if (!s.ok() && s.code() != ErrorCode::kNotFound) {
          return s;
        }
      }
    }
  }
  if (cache_ != nullptr) {
    cache_->InvalidateFile(inode->ino);
  }
  inode->unlinked.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> index_lock(file_index_mu_);
    ++index_dead_hint_;
  }
  inodes_.erase(inode->ino);
  return Status::Ok();
}

Status Mux::Unlink(const std::string& path) {
  ChargeDispatch();
  std::lock_guard<std::shared_mutex> lock(ns_mu_);
  MUX_ASSIGN_OR_RETURN(auto inode, ResolveLocked(path));
  if (inode->type == vfs::FileType::kDirectory) {
    return IsDirError(path);
  }
  MUX_ASSIGN_OR_RETURN(auto parent, ResolveDirLocked(vfs::Dirname(path)));
  NamespaceMutationGuard mutation(this);
  MUX_RETURN_IF_ERROR(UnlinkInodeLocked(inode));
  parent->children.erase(vfs::Basename(path));
  return Status::Ok();
}

Status Mux::Rename(const std::string& from, const std::string& to) {
  ChargeDispatch();
  std::lock_guard<std::shared_mutex> lock(ns_mu_);
  MUX_ASSIGN_OR_RETURN(auto inode, ResolveLocked(from));
  if (!vfs::IsValidPath(to)) {
    return InvalidArgumentError("invalid rename target: " + to);
  }
  const std::string norm_from = vfs::NormalizePath(from);
  const std::string norm_to = vfs::NormalizePath(to);
  if (vfs::PathHasPrefix(norm_to, norm_from) && norm_to != norm_from) {
    return InvalidArgumentError("cannot rename a directory into itself");
  }
  NamespaceMutationGuard mutation(this);
  // Replace an existing target.
  auto existing = ResolveLocked(to);
  if (existing.ok()) {
    auto target = *existing;
    if (target->type == vfs::FileType::kDirectory) {
      if (!target->children.empty()) {
        return NotEmptyError(to);
      }
      MUX_ASSIGN_OR_RETURN(auto to_parent, ResolveDirLocked(vfs::Dirname(to)));
      for (const TierInfo& tier : tiers_) {
        Status s = tier.fs->Rmdir(target->path);
        if (!s.ok() && s.code() != ErrorCode::kNotFound) {
          return s;
        }
      }
      target->unlinked.store(true, std::memory_order_release);
      {
        std::lock_guard<std::mutex> index_lock(file_index_mu_);
        ++index_dead_hint_;
      }
      to_parent->children.erase(vfs::Basename(to));
      inodes_.erase(target->ino);
    } else {
      MUX_ASSIGN_OR_RETURN(auto to_parent, ResolveDirLocked(vfs::Dirname(to)));
      MUX_RETURN_IF_ERROR(UnlinkInodeLocked(target));
      to_parent->children.erase(vfs::Basename(to));
    }
  }

  std::string old_path;
  {
    std::lock_guard<OpGate> file_lock(inode->mu);
    MUX_RETURN_IF_ERROR(CloseShadowsLocked(*inode));
    // Rename the shadow on every tier that may hold it (file: touched
    // tiers; directory: any tier — shadow dirs are not tracked per tier).
    for (const TierInfo& tier : tiers_) {
      if (inode->type == vfs::FileType::kRegular &&
          !inode->touched_tiers.contains(tier.id)) {
        continue;
      }
      if (tier.fs->Stat(inode->path).ok()) {
        MUX_RETURN_IF_ERROR(EnsureShadowDirs(tier, norm_to));
        MUX_RETURN_IF_ERROR(tier.fs->Rename(inode->path, norm_to));
      }
    }
    // The path swap happens under the exclusive file lock: the lock-free
    // index scans (policy planning, chunked checkpoint) read inode->path
    // under a shared file lock with no ns_mu_, so an unlocked assignment
    // here would race with them.
    old_path = inode->path;
    inode->path = norm_to;
  }

  // Update the mux namespace.
  MUX_ASSIGN_OR_RETURN(auto from_parent, ResolveDirLocked(vfs::Dirname(from)));
  from_parent->children.erase(vfs::Basename(from));
  MUX_ASSIGN_OR_RETURN(auto to_parent, ResolveDirLocked(vfs::Dirname(to)));
  to_parent->children[vfs::Basename(to)] = inode->ino;

  // Rewrite descendant paths (directory rename moves the whole subtree) by
  // walking the subtree's children maps — O(subtree), where the old
  // full-inodes_ sweep was O(namespace) with ns_mu_ held exclusive: a rename
  // of a 10-entry directory in a 1M-file namespace paid a million
  // PathHasPrefix probes.
  if (inode->type == vfs::FileType::kDirectory) {
    std::vector<std::shared_ptr<MuxInode>> stack = {inode};
    while (!stack.empty()) {
      auto dir = stack.back();
      stack.pop_back();
      for (const auto& [name, child_ino] : dir->children) {
        auto it = inodes_.find(child_ino);
        if (it == inodes_.end()) {
          continue;
        }
        const std::shared_ptr<MuxInode>& node = it->second;
        std::lock_guard<OpGate> file_lock(node->mu);
        // Shadow handles hold pre-rename paths on the underlying FSes; the
        // handles stay valid (handle-based I/O), but fresh opens need the
        // new path, so drop the cached ones.
        MUX_RETURN_IF_ERROR(CloseShadowsLocked(*node));
        node->path = norm_to + node->path.substr(old_path.size());
        if (node->type == vfs::FileType::kDirectory) {
          stack.push_back(node);
        }
      }
    }
  }
  return Status::Ok();
}

Result<vfs::FileStat> Mux::Stat(const std::string& path) {
  ChargeDispatch();
  std::shared_lock<std::shared_mutex> lock(ns_mu_);
  MUX_ASSIGN_OR_RETURN(auto inode, ResolveLocked(path));
  std::shared_lock<OpGate> file_lock(inode->mu);
  return StatForLocked(*inode);
}

vfs::FileStat Mux::StatForLocked(const MuxInode& inode) const {
  // Served entirely from the collective inode — no fan-out (§2.3). Callers
  // hold at least a shared file lock; meta_mu keeps the atime read coherent
  // against concurrent shared-lock readers updating it.
  vfs::FileStat st;
  st.ino = inode.ino;
  st.type = inode.type;
  st.allocated_bytes =
      inode.blt != nullptr ? inode.blt->TotalBlocks() * kBlockSize : 0;
  std::lock_guard<std::mutex> meta_lock(inode.meta_mu);
  st.size = inode.attrs.size();
  st.atime = inode.attrs.atime();
  st.mtime = inode.attrs.mtime();
  st.ctime = inode.attrs.ctime();
  st.mode = inode.attrs.mode();
  return st;
}

Result<std::vector<vfs::DirEntry>> Mux::ReadDir(const std::string& path) {
  ChargeDispatch();
  std::shared_lock<std::shared_mutex> lock(ns_mu_);
  MUX_ASSIGN_OR_RETURN(auto dir, ResolveDirLocked(path));
  std::vector<vfs::DirEntry> entries;
  entries.reserve(dir->children.size());
  for (const auto& [name, ino] : dir->children) {
    auto it = inodes_.find(ino);
    if (it == inodes_.end()) {
      continue;
    }
    entries.push_back(vfs::DirEntry{name, it->second->type, ino});
  }
  return entries;
}

Result<std::vector<vfs::DirEntry>> Mux::ReadDirPaged(
    const std::string& path, std::string_view start_after,
    size_t max_entries) {
  ChargeDispatch();
  std::shared_lock<std::shared_mutex> lock(ns_mu_);
  MUX_ASSIGN_OR_RETURN(auto dir, ResolveDirLocked(path));
  std::vector<vfs::DirEntry> entries;
  entries.reserve(std::min(max_entries, dir->children.size()));
  // Transparent comparator: the cursor probe allocates nothing.
  auto it = start_after.empty() ? dir->children.begin()
                                : dir->children.upper_bound(start_after);
  for (; it != dir->children.end() && entries.size() < max_entries; ++it) {
    auto node = inodes_.find(it->second);
    if (node == inodes_.end()) {
      continue;
    }
    entries.push_back(vfs::DirEntry{it->first, node->second->type, it->second});
  }
  return entries;
}

Result<vfs::FileStat> Mux::FStat(vfs::FileHandle handle) {
  ChargeDispatch();
  MUX_ASSIGN_OR_RETURN(OpCtx ctx, BeginOp(handle, 0));
  std::shared_lock<OpGate> file_lock(ctx.file.inode->mu);
  return StatForLocked(*ctx.file.inode);
}

Status Mux::SetAttr(vfs::FileHandle handle, const vfs::AttrUpdate& update) {
  ChargeDispatch();
  MUX_ASSIGN_OR_RETURN(OpCtx ctx, BeginOp(handle, 0));
  MuxInode& inode = *ctx.file.inode;
  std::lock_guard<OpGate> file_lock(inode.mu);
  // The caller dictates values; ownership moves to the fastest tier that
  // holds part of the file (or the fastest overall for empty files).
  TierId owner = kInvalidTier;
  for (const TierInfo& tier : ctx.tiers()) {
    if (inode.blt != nullptr && inode.blt->BlocksOnTier(tier.id) > 0) {
      owner = tier.id;
      break;
    }
  }
  if (owner == kInvalidTier && !ctx.tiers().empty()) {
    owner = ctx.tiers().front().id;
  }
  if (update.atime) {
    inode.attrs.UpdateAtime(*update.atime, owner);
  }
  if (update.mtime) {
    inode.attrs.UpdateMtime(*update.mtime, owner);
  }
  if (update.mode) {
    inode.attrs.UpdateMode(*update.mode, owner);
  }
  ChargeSw("mux.sw.affinity_ns", options_.costs.affinity_update_ns);
  // Lazy sync: push the values to every shadow so non-owners don't drift.
  for (const TierInfo& tier : ctx.tiers()) {
    auto it = inode.shadows.find(tier.id);
    if (it != inode.shadows.end()) {
      (void)tier.fs->SetAttr(it->second, update);
    }
  }
  return Status::Ok();
}

Result<vfs::FsStats> Mux::StatFs() {
  const auto tier_set = SnapshotTierSet();
  vfs::FsStats total;
  for (const TierInfo& tier : tier_set->tiers) {
    auto st = tier.fs->StatFs();
    if (st.ok()) {
      total.capacity_bytes += st->capacity_bytes;
      total.free_bytes += st->free_bytes;
      total.total_inodes += st->total_inodes;
      total.free_inodes += st->free_inodes;
    }
  }
  return total;
}

Status Mux::Sync() {
  const auto tier_set = SnapshotTierSet();
  for (const TierInfo& tier : tier_set->tiers) {
    MUX_RETURN_IF_ERROR(tier.fs->Sync());
  }
  return Status::Ok();
}

}  // namespace mux::core
