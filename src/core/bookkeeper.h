// StateBookkeeper: persistence of Mux's own metadata (Figure 1c).
//
// Mux keeps global state no underlying file system knows about: the
// namespace, per-file block lookup tables, metadata-affinity owners, and OCC
// versions. The bookkeeper serializes a snapshot of that state into a meta
// file stored on the fastest tier and restores it at mount. The format is a
// simple length-prefixed, CRC-guarded binary record stream.
#ifndef MUX_CORE_BOOKKEEPER_H_
#define MUX_CORE_BOOKKEEPER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/core/block_lookup_table.h"
#include "src/core/metadata.h"
#include "src/vfs/file_system.h"

namespace mux::core {

struct FileSnapshot {
  std::string path;
  bool is_directory = false;
  uint64_t size = 0;
  SimTime mtime = 0;
  SimTime atime = 0;
  SimTime ctime = 0;
  uint32_t mode = 0644;
  uint64_t occ_version = 0;
  // Policy heat state: without these every file looks ice-cold after a
  // recovery and temperature-driven policies immediately misplace data.
  double temperature = 0.0;
  SimTime last_access = 0;
  std::array<TierId, kAttrCount> attr_owners{};
  std::vector<BlockLookupTable::Run> runs;  // primary residency
  // Extra residency (MOST multi-residency): tier bitmaps of mirror copies
  // with their per-copy dirty bits. v3 snapshots stored single-tier
  // replica_runs instead; the decoder converts those to clean mirror runs.
  std::vector<BlockLookupTable::MirrorRun> mirror_runs;
};

struct MuxSnapshot {
  std::vector<FileSnapshot> files;  // directories included
};

// Serialization (exposed for tests).
std::vector<uint8_t> EncodeSnapshot(const MuxSnapshot& snapshot);
Result<MuxSnapshot> DecodeSnapshot(const std::vector<uint8_t>& bytes);

// Writes the snapshot to `meta_path` on `fs` (atomically: temp file +
// rename) and fsyncs.
Status SaveSnapshot(vfs::FileSystem* fs, const std::string& meta_path,
                    const MuxSnapshot& snapshot);
// Loads and validates; kNotFound when no snapshot exists.
Result<MuxSnapshot> LoadSnapshot(vfs::FileSystem* fs,
                                 const std::string& meta_path);

}  // namespace mux::core

#endif  // MUX_CORE_BOOKKEEPER_H_
