// Cross-tier block replication (§4 "Crash Consistency").
//
// The paper notes that composing file systems opens "the opportunity for
// data replication across devices" as a path to stronger crash-consistency
// guarantees. This module implements that extension:
//
//  * ReplicateRange mirrors blocks onto a second tier, through the same
//    shadow-file mechanism the primary copies use (same path, same offsets).
//  * Writes update primary and replica synchronously (both file systems see
//    the bytes before the call returns), so either copy is current.
//  * Reads are served from the FASTER of the two copies — a replica on PM of
//    HDD-resident data doubles as a read accelerator — and fail over to the
//    surviving copy when a device errors out.
//  * Migration of the primary leaves replicas in place; if the primary lands
//    on the replica's tier the replica entry dissolves (one physical copy).
#include <algorithm>
#include <cstring>

#include "src/common/logging.h"
#include "src/core/mux.h"
#include "src/core/mux_internal.h"

namespace mux::core {

Status Mux::ReadWithReplicaLocked(MuxInode& inode,
                                  const std::vector<TierInfo>& tiers,
                                  TierId primary_tier, uint64_t offset,
                                  uint64_t length, uint8_t* out) {
  // Pick the faster copy first.
  TierId replica_tier = kInvalidTier;
  if (inode.replicas != nullptr) {
    replica_tier = inode.replicas->Lookup(offset / kBlockSize);
    if (replica_tier == primary_tier) {
      replica_tier = kInvalidTier;
    }
  }
  TierId order[2] = {primary_tier, replica_tier};
  if (replica_tier != kInvalidTier) {
    auto primary = FindTier(tiers, primary_tier);
    auto replica = FindTier(tiers, replica_tier);
    if (primary.ok() && replica.ok() &&
        (*replica)->speed_rank < (*primary)->speed_rank) {
      std::swap(order[0], order[1]);
    }
  }

  Status last = NotFoundError("no copy available");
  for (TierId tier_id : order) {
    if (tier_id == kInvalidTier) {
      continue;
    }
    auto tier = FindTier(tiers, tier_id);
    if (!tier.ok()) {
      last = tier.status();
      continue;
    }
    auto shadow = ShadowHandleLocked(inode, **tier, /*create=*/false);
    if (!shadow.ok()) {
      last = shadow.status();
      continue;
    }
    auto got = (*tier)->fs->Read(*shadow, offset, length, out);
    if (got.ok()) {
      if (*got < length) {
        std::memset(out + *got, 0, length - *got);
      }
      return Status::Ok();
    }
    last = got.status();
    MUX_LOG(kWarning) << "mux: copy on tier " << tier_id << " unreadable ("
                      << last << "), trying the other copy";
  }
  return last;
}

Status Mux::UpdateReplicasLocked(MuxInode& inode,
                                 const std::vector<TierInfo>& tiers,
                                 uint64_t offset, const uint8_t* data,
                                 uint64_t length, TierId primary_tier) {
  if (inode.replicas == nullptr || length == 0) {
    return Status::Ok();
  }
  const uint64_t first_block = offset / kBlockSize;
  const uint64_t last_block = (offset + length - 1) / kBlockSize;
  for (const auto& run :
       inode.replicas->Runs(first_block, last_block - first_block + 1)) {
    if (run.tier == kInvalidTier) {
      continue;
    }
    const uint64_t run_lo = std::max(offset, run.first_block * kBlockSize);
    const uint64_t run_hi =
        std::min(offset + length, (run.first_block + run.count) * kBlockSize);
    if (run.tier == primary_tier) {
      // Primary and replica collapsed onto one tier: the mirror entry no
      // longer buys anything; dissolve it.
      inode.replicas->ClearRange(run_lo / kBlockSize,
                                 (run_hi - 1) / kBlockSize - run_lo / kBlockSize +
                                     1);
      continue;
    }
    MUX_ASSIGN_OR_RETURN(const TierInfo* tier, FindTier(tiers, run.tier));
    MUX_ASSIGN_OR_RETURN(vfs::FileHandle shadow,
                         ShadowHandleLocked(inode, *tier, /*create=*/true));
    MUX_RETURN_IF_ERROR(
        tier->fs->Write(shadow, run_lo, data + (run_lo - offset),
                        run_hi - run_lo)
            .status());
  }
  return Status::Ok();
}

Status Mux::ReplicateRange(const std::string& path, uint64_t first_block,
                           uint64_t count, TierId replica_tier) {
  std::shared_ptr<MuxInode> inode;
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    MUX_ASSIGN_OR_RETURN(inode, ResolveLocked(path));
  }
  if (inode->type != vfs::FileType::kRegular) {
    return IsDirError(path);
  }
  const auto tier_set = SnapshotTierSet();
  const std::vector<TierInfo>& tiers = tier_set->tiers;
  MUX_ASSIGN_OR_RETURN(const TierInfo* replica, FindTier(tiers, replica_tier));

  std::lock_guard<std::shared_mutex> file_lock(inode->mu);
  if (inode->replicas == nullptr) {
    inode->replicas = MakeBlt(options_.blt_kind);
  }
  MUX_ASSIGN_OR_RETURN(vfs::FileHandle replica_shadow,
                       ShadowHandleLocked(*inode, *replica, /*create=*/true));
  std::vector<uint8_t> buf;
  for (const auto& run : inode->blt->Runs(first_block, count)) {
    if (run.tier == kInvalidTier) {
      continue;  // holes have no content to mirror
    }
    if (run.tier == replica_tier) {
      continue;  // the primary already lives there
    }
    MUX_ASSIGN_OR_RETURN(const TierInfo* src, FindTier(tiers, run.tier));
    MUX_ASSIGN_OR_RETURN(vfs::FileHandle src_shadow,
                         ShadowHandleLocked(*inode, *src, /*create=*/false));
    constexpr uint64_t kSlice = 256;  // 1 MiB copies
    for (uint64_t done = 0; done < run.count; done += kSlice) {
      const uint64_t blocks = std::min(kSlice, run.count - done);
      const uint64_t off = (run.first_block + done) * kBlockSize;
      buf.resize(blocks * kBlockSize);
      MUX_ASSIGN_OR_RETURN(uint64_t got, src->fs->Read(src_shadow, off,
                                                       buf.size(), buf.data()));
      if (got < buf.size()) {
        std::memset(buf.data() + got, 0, buf.size() - got);
      }
      MUX_RETURN_IF_ERROR(
          replica->fs->Write(replica_shadow, off, buf.data(), buf.size())
              .status());
    }
    inode->replicas->SetRange(run.first_block, run.count, replica_tier);
  }
  // The mirror is only a crash-consistency improvement once durable.
  return replica->fs->Fsync(replica_shadow, /*data_only=*/true);
}

Status Mux::ReplicateFile(const std::string& path, TierId replica_tier) {
  uint64_t blocks = 0;
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    MUX_ASSIGN_OR_RETURN(auto inode, ResolveLocked(path));
    if (inode->type != vfs::FileType::kRegular) {
      return IsDirError(path);
    }
    std::lock_guard<std::shared_mutex> file_lock(inode->mu);
    blocks = (inode->attrs.size() + kBlockSize - 1) / kBlockSize;
  }
  if (blocks == 0) {
    return Status::Ok();
  }
  return ReplicateRange(path, 0, blocks, replica_tier);
}

Status Mux::DropReplicas(const std::string& path) {
  std::shared_ptr<MuxInode> inode;
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    MUX_ASSIGN_OR_RETURN(inode, ResolveLocked(path));
  }
  const auto tier_set = SnapshotTierSet();
  const std::vector<TierInfo>& tiers = tier_set->tiers;
  std::lock_guard<std::shared_mutex> file_lock(inode->mu);
  if (inode->replicas == nullptr) {
    return Status::Ok();
  }
  for (const auto& run : inode->replicas->AllRuns()) {
    auto tier = FindTier(tiers, run.tier);
    if (!tier.ok()) {
      continue;
    }
    auto shadow = ShadowHandleLocked(*inode, **tier, /*create=*/false);
    if (!shadow.ok()) {
      continue;
    }
    // Free the mirror space — but never punch blocks the primary owns on
    // that tier.
    uint64_t piece_start = run.first_block;
    auto flush = [&](uint64_t start, uint64_t end) {
      if (start < end) {
        (void)(*tier)->fs->PunchHole(*shadow, start * kBlockSize,
                                     (end - start) * kBlockSize);
      }
    };
    for (uint64_t b = run.first_block; b < run.first_block + run.count; ++b) {
      if (inode->blt->Lookup(b) == run.tier) {
        flush(piece_start, b);
        piece_start = b + 1;
      }
    }
    flush(piece_start, run.first_block + run.count);
  }
  inode->replicas.reset();
  return Status::Ok();
}

Result<std::map<TierId, uint64_t>> Mux::ReplicaBreakdown(
    const std::string& path) const {
  std::shared_ptr<MuxInode> inode;
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    MUX_ASSIGN_OR_RETURN(inode, ResolveLocked(path));
  }
  const auto tier_set = SnapshotTierSet();
  std::shared_lock<std::shared_mutex> file_lock(inode->mu);
  std::map<TierId, uint64_t> breakdown;
  if (inode->replicas != nullptr) {
    for (const TierInfo& tier : tier_set->tiers) {
      const uint64_t blocks = inode->replicas->BlocksOnTier(tier.id);
      if (blocks > 0) {
        breakdown[tier.id] = blocks;
      }
    }
  }
  return breakdown;
}



// ---- consistency scrub -------------------------------------------------------

Result<Mux::ScrubReport> Mux::Scrub() {
  std::vector<std::shared_ptr<MuxInode>> files;
  const auto tier_set = SnapshotTierSet();
  const std::vector<TierInfo>& tiers = tier_set->tiers;
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    for (const auto& [ino, inode] : inodes_) {
      if (inode->type == vfs::FileType::kRegular) {
        files.push_back(inode);
      }
    }
  }

  ScrubReport report;
  std::vector<uint8_t> primary_buf(kBlockSize);
  std::vector<uint8_t> replica_buf(kBlockSize);
  for (const auto& inode : files) {
    std::lock_guard<std::shared_mutex> file_lock(inode->mu);
    report.files_checked++;
    const uint64_t size_blocks =
        (inode->attrs.size() + kBlockSize - 1) / kBlockSize;
    for (const auto& run : inode->blt->AllRuns()) {
      report.blocks_checked += run.count;
      // 1. No mapping may extend past the logical size.
      if (run.first_block + run.count > size_blocks) {
        report.size_inconsistencies++;
      }
      // 2. The tier the BLT names must hold a shadow file.
      auto tier = FindTier(tiers, run.tier);
      if (!tier.ok() || !(*tier)->fs->Stat(inode->path).ok()) {
        report.missing_shadows++;
        continue;
      }
      // 3. Replica bytes must equal primary bytes.
      if (inode->replicas == nullptr) {
        continue;
      }
      for (const auto& rrun : inode->replicas->Runs(run.first_block,
                                                    run.count)) {
        if (rrun.tier == kInvalidTier || rrun.tier == run.tier) {
          continue;
        }
        auto replica_tier = FindTier(tiers, rrun.tier);
        if (!replica_tier.ok()) {
          report.missing_shadows++;
          continue;
        }
        auto primary_shadow = ShadowHandleLocked(*inode, **tier, false);
        auto replica_shadow =
            ShadowHandleLocked(*inode, **replica_tier, false);
        if (!primary_shadow.ok() || !replica_shadow.ok()) {
          report.missing_shadows++;
          continue;
        }
        for (uint64_t block = rrun.first_block;
             block < rrun.first_block + rrun.count; ++block) {
          auto primary_read =
              (*tier)->fs->Read(*primary_shadow, block * kBlockSize,
                                kBlockSize, primary_buf.data());
          auto replica_read = (*replica_tier)
                                  ->fs->Read(*replica_shadow,
                                             block * kBlockSize, kBlockSize,
                                             replica_buf.data());
          if (!primary_read.ok() || !replica_read.ok()) {
            report.replica_mismatches++;
            continue;
          }
          if (*primary_read < kBlockSize) {
            std::memset(primary_buf.data() + *primary_read, 0,
                        kBlockSize - *primary_read);
          }
          if (*replica_read < kBlockSize) {
            std::memset(replica_buf.data() + *replica_read, 0,
                        kBlockSize - *replica_read);
          }
          if (primary_buf != replica_buf) {
            report.replica_mismatches++;
          }
        }
      }
    }
  }
  return report;
}

}  // namespace mux::core
