// Per-tier worker pools for cross-tier parallel dispatch.
//
// Mux's split I/O turns one request into segments that land on different
// devices; the executor lets those segments run concurrently, one small
// worker pool per registered tier. A submitted job carries the dispatcher's
// clock value as its chain origin: the worker installs a private time cursor
// there (see ScopedTimeCursor), runs the closure, and reports the simulated
// ns the chain consumed. The dispatcher joins the futures and charges the
// *max* over the per-tier chains — concurrent chains overlap instead of
// summing, which is the whole point of splitting across devices.
//
// Jobs submitted to an unknown tier (or after Stop) execute inline on the
// caller's thread so shutdown never strands work.
#ifndef MUX_CORE_IO_EXECUTOR_H_
#define MUX_CORE_IO_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/core/tier.h"

namespace mux::core {

// Result of one executed chain: its status plus the simulated time the chain
// consumed (private cursor charge, not yet merged into the shared clock).
struct IoCompletion {
  Status status;
  SimTime elapsed_ns = 0;
};

class IoExecutor {
 public:
  // `threads_per_tier` workers are spawned lazily per AddTier call.
  IoExecutor(SimClock* clock, int threads_per_tier);
  ~IoExecutor();

  IoExecutor(const IoExecutor&) = delete;
  IoExecutor& operator=(const IoExecutor&) = delete;

  // Registers a tier and spins up its worker pool. Idempotent.
  void AddTier(TierId tier);

  // Drains and joins the tier's pool. Subsequent submits run inline.
  void RemoveTier(TierId tier);

  // Stops every pool (called from the destructor as well).
  void Shutdown();

  // Schedules `fn` on `tier`'s pool. The worker installs a time cursor at
  // `origin` so the chain's simulated charges stay private; the completion
  // carries the accumulated ns. Falls back to inline execution (with the
  // same cursor discipline) when the tier has no pool.
  std::future<IoCompletion> Submit(TierId tier, SimTime origin,
                                   std::function<Status()> fn);

  // Completion-callback submission: the worker invokes `done` with the
  // chain's completion instead of fulfilling a future, so the caller can
  // join via a CompletionGroup-style latch (submit-all-then-await) rather
  // than blocking in per-chain future.get() order. `done` runs exactly once,
  // on the worker thread (or inline on the unknown-tier/shutdown fallback).
  void SubmitWithCallback(TierId tier, SimTime origin,
                          std::function<Status()> fn,
                          std::function<void(const IoCompletion&)> done);

  bool HasPool(TierId tier) const;

 private:
  struct Job {
    SimTime origin = 0;
    std::function<Status()> fn;
    std::promise<IoCompletion> done;
    // When set, the completion goes through the callback and the promise is
    // left untouched.
    std::function<void(const IoCompletion&)> callback;
  };

  struct TierPool {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Job> queue;
    std::vector<std::thread> workers;
    bool stop = false;
  };

  static IoCompletion RunJob(SimClock* clock, SimTime origin,
                             const std::function<Status()>& fn);
  static void Deliver(Job* job, IoCompletion completion);
  void WorkerLoop(TierPool* pool);
  void StopPool(TierPool* pool);

  SimClock* clock_;
  const int threads_per_tier_;
  mutable std::mutex mu_;  // guards pools_ map shape only
  std::map<TierId, std::unique_ptr<TierPool>> pools_;
};

}  // namespace mux::core

#endif  // MUX_CORE_IO_EXECUTOR_H_
