// Tier registry types: what Mux knows about each underlying file system.
#ifndef MUX_CORE_TIER_H_
#define MUX_CORE_TIER_H_

#include <cstdint>
#include <string>

#include "src/device/device_profile.h"
#include "src/vfs/file_system.h"

namespace mux::core {

using TierId = uint32_t;
inline constexpr TierId kInvalidTier = UINT32_MAX;

// A registered tier: a device-specific file system plus the device profile
// Mux's policies and scheduler reason about. Registration is the paper's
// "mount the new file system and register it with Mux" (§2.1).
struct TierInfo {
  TierId id = kInvalidTier;
  std::string name;                 // e.g. "pm", "ssd", "hdd"
  vfs::FileSystem* fs = nullptr;    // not owned
  device::DeviceProfile profile;
  // Policy-facing ordering: lower rank = faster tier.
  uint32_t speed_rank = 0;
};

}  // namespace mux::core

#endif  // MUX_CORE_TIER_H_
