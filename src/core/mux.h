// Mux — the tiered file system that talks to file systems, not device
// drivers (the paper's core contribution).
//
// Mux implements vfs::FileSystem and is mounted like any other file system
// (Figure 1b): it receives VFS calls from above, consults its Block Lookup
// Table and tiering policy, splits each call along block→tier mappings, and
// re-issues the pieces to the registered device-specific file systems as
// ordinary VFS calls on *shadow files* — sparse files with the same path and
// the same block offsets on every participating tier (§2.2, Figure 2).
//
// Component map (Figure 1c):
//   FS Multiplexer / tier registry  — AddTier / RemoveTier
//   VFS Call Processor / Maker      — Read/Write/... split-and-merge logic
//   File Blk. Tracker               — BlockLookupTable per file
//   Metadata Tracker                — CollectiveInode + attribute affinity
//   OCC Synchronizer                — OccState per file + MigrateRange
//   Policy Runner                   — TieringPolicy + RunPolicyMigrations
//   Cache Controller                — SCM cache (DAX file on the PM tier)
//   State Bookkeeper                — Checkpoint / Recover
//   (the I/O scheduler serves the background migration path; see
//    io_scheduler.h)
#ifndef MUX_CORE_MUX_H_
#define MUX_CORE_MUX_H_

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/core/block_lookup_table.h"
#include "src/core/bookkeeper.h"
#include "src/core/cache_controller.h"
#include "src/core/async_io.h"
#include "src/core/cost_model.h"
#include "src/core/io_executor.h"
#include "src/core/io_scheduler.h"
#include "src/core/metadata.h"
#include "src/core/occ.h"
#include "src/core/op_gate.h"
#include "src/core/policy.h"
#include "src/core/tier.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/vfs/file_system.h"

namespace mux::core {

// Immutable snapshot of the tier table plus the active policy. Mux keeps the
// master copies under ns_mu_ (exclusive) and republishes a fresh TierSet via
// an atomic shared_ptr swap on every AddTier/RemoveTier/SetPolicy. Op setup
// pins one snapshot for the op's whole lifetime, so the data path reads tier
// metadata with no lock and no vector copy, and a concurrent tier swap can
// never pull the table out from under an in-flight op.
struct TierSet {
  std::vector<TierInfo> tiers;  // sorted by speed_rank (= insertion order)
  std::shared_ptr<TieringPolicy> policy;
};

struct MuxStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t split_segments = 0;   // extra per-tier pieces beyond 1 per call
  uint64_t migration_passes = 0;
  uint64_t migrated_blocks = 0;
  // Policy migration tasks that failed against a faulted tier (the round
  // itself keeps going; see RunPolicyMigrations).
  uint64_t migration_task_failures = 0;
  OccStats occ;
};

class Mux : public vfs::FileSystem {
 public:
  static constexpr uint64_t kBlockSize = 4096;

  struct Options {
    BltKind blt_kind = BltKind::kExtentTree;
    CostModel costs;
    std::string policy = "lru";
    std::string policy_args;
    bool enable_scm_cache = false;
    CacheController::Options cache;
    std::string meta_path = "/.mux_meta";
    // Capacity of the per-op trace ring buffer (oldest events overwritten).
    size_t trace_capacity = 8192;
    // Cross-tier parallel dispatch: split-request segments on different
    // tiers run on per-tier executor pools and their simulated latencies
    // overlap (max over tiers) instead of accumulating. Single-tier requests
    // always take the serial path, so disabling this only affects multi-tier
    // splits.
    bool parallel_dispatch = true;
    // Worker threads per tier in the I/O executor (min 1).
    int io_threads_per_tier = 2;
    // Completion-based dispatch (ROADMAP item 2): per-tier submission rings
    // with simulated queue-depth channels replace the blocking thread-per-op
    // handoff. Split I/O submits every segment chain and awaits one
    // completion group; policy migration rounds drain the scheduler with
    // DrainMode::kAsync. When false, the legacy executor-future path and
    // kParallel/kSerial drains run instead (kept as ablations). Requires
    // parallel_dispatch for the data path (the async core is created
    // alongside the executor).
    bool async_dispatch = true;
    // Policy migration rounds drain the scheduler with one thread per tier
    // (per-tier ordering preserved) so source reads overlap destination
    // writes. Serial round-robin drain when false.
    bool parallel_migration_drain = true;
    // Contention-free op setup: handle lookups go through a sharded
    // shared-mutex table and the tier table is pinned as an immutable
    // snapshot. When false, every BeginOp/Open/Close serializes on one
    // global mutex and copies the tier vector — the pre-sharding behavior,
    // kept as an ablation knob for bench/metadata_scaling.
    bool sharded_op_setup = true;
    // Migration copy loop double-buffers its slices over the per-tier
    // executor pools: the source read of slice N+1 overlaps the destination
    // write of slice N, so a copy costs ~max(read chain, write chain)
    // instead of the sum. Serial slice-at-a-time copy when false (or when
    // the executor is absent).
    bool pipelined_migration_copy = true;
    // Load-aware replica selection (MOST): a read of a multi-resident block
    // is served from the fastest copy whose simulated device channel is
    // free (AsyncIoCore queue depth + the segments this very op already
    // assigned there), falling back to the least-loaded copy. When false,
    // the fastest clean copy always wins (static speed-rank selection, kept
    // as the ablation baseline).
    bool load_aware_reads = true;
    // Per-policy-round budget for the lazy mirror reconciliation pass (see
    // SyncMirrors). 0 disables the pass entirely.
    uint64_t mirror_sync_budget_bytes = 32ull << 20;
    // Op state machine (PR 10): data-path ops are resumable phase chains
    // (resolve -> plan -> per-tier submissions -> commit) resumed by the
    // AsyncIoCore resume pool. Synchronous Read/Write join their fan-in via
    // OpEvent (never CompletionGroup::Await) and ReadAsync/WriteAsync never
    // block at all. When false, split dispatch reverts to the PR 7
    // submit-all-then-Await compat shim (ablation baseline) and the async
    // entry points degrade to sync-inline.
    bool continuation_ops = true;
    // Size of the AsyncIoCore continuation-resumption pool. 0 keeps the
    // legacy mode where the completion dispatcher invokes continuations
    // itself (and disables the non-blocking async entry points).
    int resume_workers = 2;
  };

  Mux(SimClock* clock, Options options);
  explicit Mux(SimClock* clock);
  ~Mux() override;

  // ---- FS Multiplexer: tier registry ------------------------------------
  // Tiers must be added fastest-first (speed_rank = registration order).
  // Returns the TierId.
  Result<TierId> AddTier(const std::string& name, vfs::FileSystem* fs,
                         const device::DeviceProfile& profile);
  // Migrates all data off the tier (to the next-fastest remaining one) and
  // deregisters it. Runtime removal per §2.1.
  Status RemoveTier(const std::string& name);
  Result<TierId> TierByName(const std::string& name) const;
  std::vector<TierUsage> TierUsages() const;

  // ---- Policy Runner ------------------------------------------------------
  Status SetPolicy(std::unique_ptr<TieringPolicy> policy);
  Status SetPolicyByName(const std::string& name,
                         const std::string& args = "");
  std::string_view PolicyName() const;
  // One synchronous round of policy-driven migration. Tasks that fail
  // against a misbehaving tier (ENOSPC/EIO after the capped per-task
  // retries) are recorded — see LastMigrationRoundStats() and
  // MuxStats::migration_task_failures — but do not stop the other tasks or
  // fail the round.
  Status RunPolicyMigrations();
  // Scheduler stats of the most recent policy migration round (failures,
  // failed_tiers, last_error).
  SchedulerStats LastMigrationRoundStats() const;
  // Background migration thread (real thread; interval is wall time).
  void StartBackgroundMigration(uint32_t interval_ms = 10);
  void StopBackgroundMigration();

  // ---- Data movement (OCC Synchronizer, §2.4) -----------------------------
  // Moves the file's blocks currently on `from` (kInvalidTier = any tier
  // except `to`) onto `to`. Optimistic: user writes proceed during the copy;
  // conflicting blocks are retried and, after OccState::kMaxRetries, moved
  // under the file lock.
  Status MigrateFile(const std::string& path, TierId to,
                     TierId from = kInvalidTier);
  Status MigrateRange(const std::string& path, uint64_t first_block,
                      uint64_t count, TierId to);

  // ---- Replication (§4 "Crash Consistency" + MOST multi-residency) --------
  // Mirrors the file's blocks onto `replica_tier` (in addition to their
  // primary homes): residency is *added* in the block lookup table, not
  // moved. Reads are served from the fastest idle clean copy and FAIL OVER
  // to surviving copies when a device dies; writes are absorbed on the
  // fastest resident copy and other copies go dirty until the lazy mirror
  // sync reconciles them.
  Status ReplicateFile(const std::string& path, TierId replica_tier);
  Status ReplicateRange(const std::string& path, uint64_t first_block,
                        uint64_t count, TierId replica_tier);
  // Drops the mirror copies on one tier (punching their shadow blocks).
  // Primary copies are never dropped.
  Status DropReplica(const std::string& path, TierId replica_tier);
  // Drops all mirror copies of the file.
  Status DropReplicas(const std::string& path);
  Result<std::map<TierId, uint64_t>> ReplicaBreakdown(
      const std::string& path) const;
  // One bounded pass of lazy mirror reconciliation: copies primary bytes
  // over every dirty mirror copy, oldest file first, until `max_bytes` have
  // been moved. Returns the bytes actually synced. RunPolicyMigrations runs
  // this automatically with Options::mirror_sync_budget_bytes.
  Result<uint64_t> SyncMirrors(uint64_t max_bytes = ~0ull);

  // ---- State Bookkeeper ----------------------------------------------------
  // Persists Mux's metadata to the fastest tier.
  Status Checkpoint();
  // Rebuilds Mux state from the last checkpoint. Tiers must already be
  // registered in the same order as when the checkpoint was taken.
  Status Recover();

  // ---- Consistency scrub ------------------------------------------------
  struct ScrubReport {
    uint64_t files_checked = 0;
    uint64_t blocks_checked = 0;
    uint64_t missing_shadows = 0;      // BLT points at a tier with no shadow
    uint64_t size_inconsistencies = 0; // BLT maps blocks beyond logical size
    uint64_t replica_mismatches = 0;   // CLEAN mirror bytes differ from primary
    // Mirror copies currently marked dirty (awaiting lazy reconciliation).
    // Not a failure: dirty copies are expected to diverge until SyncMirrors
    // catches up, so they are reported but excluded from Clean().
    uint64_t dirty_replicas = 0;

    bool Clean() const {
      return missing_shadows == 0 && size_inconsistencies == 0 &&
             replica_mismatches == 0;
    }
  };
  // Walks every file and validates Mux's global metadata against the
  // underlying file systems: shadows exist where the BLT says data lives
  // (every resident copy, mirrors included), no mapping extends past the
  // logical size, and every CLEAN mirror byte equals its primary. Dirty
  // mirrors are counted, not flagged. Read-only; safe to run online.
  Result<ScrubReport> Fsck();
  Result<ScrubReport> Scrub() { return Fsck(); }  // legacy name

  // ---- Observability (§3.2 software-overhead decomposition) -------------
  // Always-on registry: software charges land in "mux.sw.<step>_ns"
  // counters (+ "mux.sw.total_ns"), op latencies in "mux.<op>.latency_ns"
  // histograms. Devices and the VFS share it via AttachObs/SetObs (see
  // tests/mux_rig.h for the full wiring).
  obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::TraceBuffer& trace() const { return trace_; }
  // JSON snapshot of every counter and histogram.
  std::string MetricsReport() const { return metrics_.ToJson(); }
  // Writes MetricsReport() to `path` on the host file system (the bench
  // dump hook; see bench/bench_util.h MaybeDumpMetrics).
  Status DumpMetrics(const std::string& path) const {
    return metrics_.DumpToFile(path);
  }

  // ---- Introspection ---------------------------------------------------------
  MuxStats stats() const;
  ScmCacheStats CacheStats() const;
  // Policy heat state for one file (persisted across Checkpoint/Recover).
  struct FileHeat {
    double temperature = 0.0;
    SimTime last_access = 0;
  };
  Result<FileHeat> Heat(const std::string& path) const;
  // Blocks per tier for one file (Figure 2's "user view" of distribution).
  Result<std::map<TierId, uint64_t>> FileTierBreakdown(
      const std::string& path) const;
  uint64_t BltMemoryBytes() const;

  // ---- vfs::FileSystem --------------------------------------------------------
  std::string_view Name() const override { return "mux"; }

  Result<vfs::FileHandle> Open(const std::string& path, uint32_t flags,
                               uint32_t mode = 0644) override;
  Status Close(vfs::FileHandle handle) override;
  Status Mkdir(const std::string& path, uint32_t mode = 0755) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<vfs::FileStat> Stat(const std::string& path) override;
  Result<std::vector<vfs::DirEntry>> ReadDir(const std::string& path) override;
  // Bounded directory listing: at most `max_entries` entries, starting
  // strictly after `start_after` (empty = from the beginning), in name
  // order. ReadDir materialises the whole directory in one vector — fine for
  // small directories, quadratic pain when a 1M-file population puts tens of
  // thousands of entries in one directory. Callers page with:
  //
  //   std::string cursor;
  //   for (;;) {
  //     auto page = mux.ReadDirPaged(path, cursor, 512);
  //     if (page->empty()) break;
  //     cursor = page->back().name;
  //   }
  Result<std::vector<vfs::DirEntry>> ReadDirPaged(const std::string& path,
                                                  std::string_view start_after,
                                                  size_t max_entries);

  Result<uint64_t> Read(vfs::FileHandle handle, uint64_t offset,
                        uint64_t length, uint8_t* out) override;
  Result<uint64_t> Write(vfs::FileHandle handle, uint64_t offset,
                         const uint8_t* data, uint64_t length) override;
  // Non-blocking data path (op state machine). The call returns as soon as
  // the op is planned and its device requests are in the submission rings
  // (or queued on the inode gate); `done` runs exactly once from a resume
  // worker when the op commits — the caller thread never parks between
  // submission and completion. `out`/`data` must stay valid until `done`
  // runs. Falls back to sync-inline (done invoked before returning) when
  // continuation_ops is off or the async core/resume pool is absent.
  void ReadAsync(vfs::FileHandle handle, uint64_t offset, uint64_t length,
                 uint8_t* out, std::function<void(Result<uint64_t>)> done);
  void WriteAsync(vfs::FileHandle handle, uint64_t offset, const uint8_t* data,
                  uint64_t length, std::function<void(Result<uint64_t>)> done);
  Status Truncate(vfs::FileHandle handle, uint64_t new_size) override;
  Status Fsync(vfs::FileHandle handle, bool data_only) override;
  Status Fallocate(vfs::FileHandle handle, uint64_t offset, uint64_t length,
                   bool keep_size) override;
  Status PunchHole(vfs::FileHandle handle, uint64_t offset,
                   uint64_t length) override;
  Result<vfs::FileStat> FStat(vfs::FileHandle handle) override;
  Status SetAttr(vfs::FileHandle handle,
                 const vfs::AttrUpdate& update) override;

  Result<vfs::FsStats> StatFs() override;
  Status Sync() override;

 private:
  struct MuxInode {
    vfs::InodeNum ino = vfs::kInvalidInode;
    vfs::FileType type = vfs::FileType::kRegular;
    std::string path;  // canonical mux path == shadow path on every tier
    CollectiveInode attrs;
    // Owns ALL residency: the primary copy of every block plus any mirror
    // copies (tier bitmaps + dirty bits). Mirror shadow offsets match the
    // primary's.
    std::unique_ptr<BlockLookupTable> blt;
    OccState occ;
    std::map<TierId, vfs::FileHandle> shadows;  // lazily opened
    std::set<TierId> touched_tiers;  // tiers where a shadow file may exist
    // Directories. Transparent comparator: the resolve hot path looks names
    // up by string_view without materialising a std::string per component.
    std::map<std::string, vfs::InodeNum, std::less<>> children;
    double temperature = 0.0;
    SimTime last_access = 0;
    // Set (under ns_mu_ exclusive, before the namespace entry goes away) when
    // the inode is unlinked/rmdir'd. The creation-ordered file index keeps a
    // weak_ptr to every inode ever created; index scans — which run with NO
    // namespace lock — use this flag to skip entries that are still pinned
    // alive by an open handle but no longer reachable by path.
    std::atomic<bool> unlinked{false};
    // Atomic: Open bumps it under a merely-shared ns_mu_ and Close touches
    // only the handle shard, so two opens (or an open and a close) of one
    // file can race on the count.
    std::atomic<uint32_t> open_count{0};
    // File lock: shared for Read/Stat/FStat, exclusive for anything that
    // mutates the BLT, size, or shadow layout. See DESIGN.md "Concurrency
    // model" for the full hierarchy (ns_mu_ -> migrate_mu -> mu ->
    // shadow_mu/meta_mu). An OpGate, not a shared_mutex: its ownership is
    // acquisition-scoped, so an op state machine can take it in the plan
    // phase on one thread and release it in the commit phase on a resume
    // worker (and queue for it without blocking via TryLock*OrQueue).
    OpGate mu;
    // Guards `shadows` and `touched_tiers`: shared-lock readers lazily open
    // shadow handles, and migration's copy phase reads handles with no file
    // lock at all, so the map needs its own lock.
    mutable std::mutex shadow_mu;
    // Guards the fields shared-lock holders WRITE: atime (+ its owner),
    // temperature, last_access. Exclusive holders exclude shared holders and
    // may touch them lock-free, but take it anyway via Touch().
    mutable std::mutex meta_mu;
    // Serializes migration passes per inode: OccState has a single
    // migrating/dirty set, so two concurrent passes would corrupt it.
    std::mutex migrate_mu;
  };

  struct OpenFile {
    std::shared_ptr<MuxInode> inode;
    uint32_t flags = 0;
  };

  // Everything one data-path call needs. BeginOp assembles it with no
  // global lock: a shard shared-lock for the handle lookup plus one
  // shared_ptr copy pinning the current TierSet snapshot, so the hot path
  // never touches ns_mu_ and never copies the tier vector (lock order is
  // always ns_mu_ -> inode.mu, never the reverse).
  struct OpCtx {
    OpenFile file;
    std::shared_ptr<const TierSet> tier_set;

    const std::vector<TierInfo>& tiers() const { return tier_set->tiers; }
    TieringPolicy* policy() const { return tier_set->policy.get(); }
  };

  // ---- open-file table (sharded; no ns_mu_) -------------------------------
  // Handles are sharded across kHandleShards independent shared-mutex maps,
  // so op setup of unrelated handles never contends: BeginOp/FStat take one
  // shard's lock shared, Open/Close take it exclusive.
  static constexpr size_t kHandleShards = 16;
  struct HandleShard {
    mutable std::shared_mutex mu;
    std::unordered_map<vfs::FileHandle, OpenFile> files;
  };
  HandleShard& ShardFor(vfs::FileHandle handle) const {
    return handle_shards_[handle % kHandleShards];
  }
  // Allocates a handle and publishes it in its shard.
  vfs::FileHandle InsertOpenFile(const std::shared_ptr<MuxInode>& inode,
                                 uint32_t flags);

  // ---- tier snapshot ------------------------------------------------------
  // Republishes tiers_/policy_ as a fresh immutable TierSet. Caller holds
  // ns_mu_ exclusive (it reads the master copies).
  void PublishTierSetLocked();
  std::shared_ptr<const TierSet> SnapshotTierSet() const {
    // tier_set_mu_ is a leaf lock held only for this copy (and the assign in
    // PublishTierSetLocked) — never across I/O or while any other lock is
    // taken, so op setup pays two uncontended atomic RMWs, nothing more.
    // (std::atomic<shared_ptr> would do, but libstdc++'s _Sp_atomic spinlock
    // is invisible to TSan, and the stress tests must stay TSan-clean.)
    std::lock_guard<std::mutex> lock(tier_set_mu_);
    return tier_set_;
  }

  // ---- namespace (ns_mu_ held, shared is enough for the read-only ones) ---
  Result<std::shared_ptr<MuxInode>> ResolveLocked(const std::string& path) const;
  Result<std::shared_ptr<MuxInode>> ResolveDirLocked(
      const std::string& path) const;
  Result<OpCtx> BeginOp(vfs::FileHandle handle, uint32_t needed_flags) const;
  Status UnlinkInodeLocked(const std::shared_ptr<MuxInode>& inode);
  vfs::FileStat StatForLocked(const MuxInode& inode) const;

  // ---- shadow plumbing (inode.mu held) --------------------------------------
  Result<vfs::FileHandle> ShadowHandleLocked(MuxInode& inode,
                                             const TierInfo& tier,
                                             bool create);
  Status CloseShadowsLocked(MuxInode& inode);  // also needs ns_mu_
  Status EnsureShadowDirs(const TierInfo& tier, const std::string& path);

  // ---- tier helpers -------------------------------------------------------
  // Occupancy snapshot for an explicit tier vector (no lock needed — works
  // on a pinned TierSet as well as on tiers_ under ns_mu_).
  static std::vector<TierUsage> TierUsagesFor(
      const std::vector<TierInfo>& tiers);
  TierId FastestTierLocked() const;  // ns_mu_ held (reads tiers_)
  static TierId FastestTierOf(const std::vector<TierInfo>& tiers);
  static Result<const TierInfo*> FindTier(const std::vector<TierInfo>& tiers,
                                          TierId id);

  // ---- data-path internals (inode.mu held) --------------------------------------
  void Touch(MuxInode& inode);
  // One split-request segment bound for one tier. DispatchSegments groups
  // jobs per tier (preserving submission order within a tier), fans the
  // per-tier chains out to the executor, joins them, and charges the MAX of
  // the chains' simulated times to the caller's clock/cursor — concurrent
  // tiers overlap. Falls back to running the jobs serially in order (bit-
  // identical to the pre-parallel code) when parallel dispatch is off, the
  // executor is absent, or every job targets the same tier.
  struct SegmentJob {
    TierId tier = kInvalidTier;
    std::function<Status()> fn;
  };
  Status DispatchSegments(std::vector<SegmentJob> jobs) const;
  // Orders the copies of a uniformly-resident piece for serving a read:
  // candidates are the primary plus every CLEAN mirror, fastest-first. With
  // load_aware_reads the serving copy (front of the returned order) is the
  // candidate with the earliest projected completion for `bytes`: device
  // ring backlog (AsyncIoCore queue depth over the profile's channel count)
  // plus the simulated nanoseconds this op has already chained onto that
  // tier (`local_load`, updated by the caller per assignment) plus the
  // piece's estimated service time — so one large read of a mirrored range
  // stripes across the copies instead of piling onto the fastest tier. The
  // returned order is also the failover order.
  std::vector<const TierInfo*> RankReadCopies(
      const ResidencySet& set, const std::vector<TierInfo>& tiers,
      const std::map<TierId, uint64_t>& local_load, uint64_t bytes) const;
  // Reads [offset, offset+length) from copies.front()'s shadow, failing
  // over down the list on I/O error. Failovers bump "mux.replica.failover";
  // the warning log is rate-limited to one per tier-failure episode via
  // failing_tiers_. Short reads are zero-filled (sparse shadow tails).
  Status ReadFromCopies(MuxInode& inode,
                        const std::vector<const TierInfo*>& copies,
                        uint64_t offset, uint64_t length, uint8_t* out);
  // Serves one uniformly-resident run of a read: SCM-cache path (with
  // coalesced miss fill) or plain shadow read with replica failover.
  // copies.front() is the serving tier. Thread-safe under a shared inode
  // lock; writes only its own disjoint slice of `out`.
  Status ReadRunSegment(MuxInode& inode, const OpCtx& ctx,
                        const std::vector<const TierInfo*>& copies,
                        uint64_t run_lo, uint64_t run_hi,
                        uint64_t offset, uint8_t* out);
  // The SCM-cache read path for one run: probes the cache per block, then
  // coalesces adjacent missed blocks into run-sized tier reads and admits
  // every block from that buffer.
  Status CachedRunRead(MuxInode& inode, const OpCtx& ctx,
                       const std::vector<const TierInfo*>& copies,
                       uint64_t run_lo, uint64_t run_hi, uint64_t offset,
                       uint8_t* out);
  // Punches the mirror copies on `tier` (kInvalidTier = every mirror tier)
  // and drops their residency. inode.mu held exclusive.
  Status DropReplicasLocked(MuxInode& inode,
                            const std::vector<TierInfo>& tiers, TierId tier);
  // Reconciles dirty mirror copies of one file: copies primary bytes over
  // each dirty run and marks it clean, stopping once *budget is exhausted.
  // Takes inode.mu exclusive itself. Returns bytes synced.
  Result<uint64_t> MirrorSyncFile(const std::shared_ptr<MuxInode>& inode,
                                  const std::vector<TierInfo>& tiers,
                                  uint64_t* budget);
  // SyncMirrors with Options::mirror_sync_budget_bytes (no-op when zero);
  // tail of every policy round.
  Status MirrorSyncRound();
  Result<uint64_t> WriteLocked(MuxInode& inode, const OpCtx& ctx,
                               uint64_t offset, const uint8_t* data,
                               uint64_t length, bool is_sync);
  Result<uint64_t> ReadLocked(MuxInode& inode, const OpCtx& ctx,
                              uint64_t offset, uint64_t length, uint8_t* out);
  Status TruncateLocked(MuxInode& inode, uint64_t new_size,
                        const std::vector<TierInfo>& tiers);

  // ---- op state machine (continuation-resumed data path) -------------------
  // Every Mux read/write decomposes into phases:
  //   resolve (BeginOp) -> gate acquire -> plan (split/stripe + cache probe)
  //   -> per-tier ring submissions -> commit (absorb/bookkeep) -> finish.
  // The sync wrappers run the same pieces inline (single-tier) or park in an
  // OpEvent while the commit runs on a resume worker; ReadAsync/WriteAsync
  // never block — completions resume the op via FanIn on the AsyncIoCore
  // resume pool. Per-op simulated time lives in {start_ns, local_ns}: each
  // phase installs ScopedTimeCursor(clock_, start+local) and accumulates
  // local += cursor.Release(), so phases hopping threads never contaminate
  // a foreign thread's cursor; the finish phase publishes via AdvanceTo.
  struct ReadPlan {
    uint64_t n = 0;  // bytes the op will return (0 = past-EOF no-op)
    TierId last_tier = kInvalidTier;
    std::vector<SegmentJob> jobs;
  };
  struct WriteSegment {
    uint64_t first_block = 0;
    uint64_t count = 0;
    TierId target = kInvalidTier;  // kInvalidTier = hole, placed at commit
    ResidencySet set;
  };
  struct WritePlan {
    std::vector<WriteSegment> segments;
    std::vector<TierUsage> usages;  // occupancy snapshot (holes only)
    // Parallel overwrite fast path: home-tier attempt jobs whose results
    // land in the slots below; the commit loop adopts them. `jobs` closures
    // point into the slot vectors, so a WritePlan must not move once
    // planned (it lives in the op struct / the wrapper's frame).
    std::vector<Status> parallel_status;
    std::vector<char> parallel_open_failed;
    std::vector<SegmentJob> jobs;
    bool parallel_attempted = false;
  };
  // Plan phase: split + stripe + hole memsets + the software charges up
  // front. Never touches a device. `out`-directed hole fills happen here.
  Result<ReadPlan> PlanReadLocked(MuxInode& inode, const OpCtx& ctx,
                                  uint64_t offset, uint64_t length,
                                  uint8_t* out);
  // Finish phase of a successful read: atime affinity, Touch, counters.
  void FinishReadLocked(MuxInode& inode, TierId last_tier);
  // Plan phase of a write: segments, occupancy, parallel-eligibility jobs.
  Status PlanWriteLocked(MuxInode& inode, const OpCtx& ctx, uint64_t offset,
                         const uint8_t* data, uint64_t length, bool is_sync,
                         WritePlan* plan);
  // Commit + finish of a write: the serial per-segment loop (placement,
  // ENOSPC fall-down, residency bookkeeping, cache write-through — adopting
  // parallel slot results when plan.parallel_attempted) and the trailing
  // OCC/affinity/Touch bookkeeping.
  Result<uint64_t> ExecuteWriteTail(MuxInode& inode, const OpCtx& ctx,
                                    uint64_t offset, const uint8_t* data,
                                    uint64_t length, bool is_sync,
                                    WritePlan& plan);
  struct ReadOp;
  struct WriteOp;
  void ReadOpLocked(std::shared_ptr<ReadOp> op);
  void ReadOpCommit(std::shared_ptr<ReadOp> op, const AsyncJoined& joined);
  void FinishReadOp(std::shared_ptr<ReadOp> op, Result<uint64_t> result);
  void WriteOpLocked(std::shared_ptr<WriteOp> op);
  void WriteOpCommit(std::shared_ptr<WriteOp> op, const AsyncJoined& joined);
  void WriteOpSerialCommit(std::shared_ptr<WriteOp> op,
                           const AsyncCompletion& completion);
  void FinishWriteOp(std::shared_ptr<WriteOp> op, Result<uint64_t> result);
  // True when the non-blocking entry points can actually suspend.
  bool ContinuationPathEnabled() const {
    return options_.continuation_ops && async_ != nullptr &&
           async_->resume_workers() > 0;
  }
  // Tracks concurrently in-flight data ops ("mux.op.inflight" histogram,
  // observed at op admission): with the state machine this exceeds every
  // thread-pool size, which is the PR's acceptance metric.
  void OpAdmit() {
    const int64_t now = ops_inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    metrics_.Observe("mux.op.inflight", static_cast<uint64_t>(now));
  }
  void OpRetire() { ops_inflight_.fetch_sub(1, std::memory_order_relaxed); }

  // ---- migration internals ------------------------------------------------------
  Status MigrateRangeInternal(const std::shared_ptr<MuxInode>& inode,
                              uint64_t first_block, uint64_t count, TierId to,
                              TierId only_from);
  // Copies the given runs to `to` through the shadow files (no lock held).
  // With `pipelined_migration_copy` and an executor, slices are
  // double-buffered over the per-tier pools (see CopyRunsPipelined).
  Status CopyRuns(MuxInode& inode, const std::vector<TierInfo>& tiers,
                  const std::vector<BlockLookupTable::Run>& runs, TierId to);
  // Double-buffered copy: the source pool reads slice N+1 while the
  // destination pool writes slice N. Chains are anchored at a common origin
  // and the copy charges max(read chain, write chain) — the two devices
  // overlap, matching the split-I/O time-cursor model.
  Status CopyRunsPipelined(MuxInode& inode,
                           const std::vector<TierInfo>& tiers,
                           const std::vector<BlockLookupTable::Run>& runs,
                           const TierInfo& dst);
  // Commits runs into the BLT and punches holes at the sources, skipping
  // `skip_blocks` (inode.mu held).
  Status CommitRuns(MuxInode& inode, const std::vector<TierInfo>& tiers,
                    const std::vector<BlockLookupTable::Run>& runs, TierId to,
                    const std::vector<uint64_t>& skip_blocks);
  // Runs currently needing migration for [first, first+count) (inode.mu
  // held).
  std::vector<BlockLookupTable::Run> PendingRunsLocked(
      const MuxInode& inode, uint64_t first_block, uint64_t count, TierId to,
      TierId only_from) const;

  // ---- creation-ordered file index ---------------------------------------
  // The namespace-wide scans (policy planning, checkpoint) used to iterate
  // the whole inodes_ map under ns_mu_ — at 1M inodes that stalls every
  // create/rename for the duration of the walk. Instead, every inode is
  // appended to file_index_ at creation; scans walk the index in bounded
  // chunks under its own leaf mutex (lock order: ns_mu_ -> file_index_mu_)
  // and never touch ns_mu_ at all. Creation order gives the one invariant
  // chunking needs: a parent directory always sits at a smaller index than
  // any child created inside it, so a chunked snapshot can never capture a
  // child whose parent it missed.
  static constexpr size_t kIndexScanChunk = 4096;
  // Appends a freshly created inode (caller holds ns_mu_ exclusive).
  void IndexInsertLocked(const std::shared_ptr<MuxInode>& inode);
  // Copies the next <= `chunk` live, non-unlinked inodes starting at
  // *cursor into `out` (cleared first) and advances *cursor. Returns false
  // once the cursor has passed the end of the index. Entries appended while
  // a scan is in flight are picked up (the end is re-read per chunk).
  bool CollectIndexChunk(size_t* cursor, size_t chunk,
                         std::vector<std::shared_ptr<MuxInode>>* out) const;
  // RAII scan pin: compaction is deferred while any chunked scan holds a
  // cursor into the index (compaction reorders slots).
  class IndexScanGuard {
   public:
    explicit IndexScanGuard(const Mux* mux);
    ~IndexScanGuard();

   private:
    const Mux* mux_;
  };

  // Seqlock-style generation for destructive namespace ops (unlink, rmdir,
  // rename, recover): odd while one is in flight, bumped again when it
  // commits. Lock-free checkpoint scans snapshot the generation before and
  // after; a change (or an odd start) means the scan may have seen a
  // half-applied rename/unlink and must retry. Creates don't bump it —
  // fuzzy inclusion of a file created mid-checkpoint is a valid recovery
  // point; a file whose path changed mid-scan is not.
  class NamespaceMutationGuard {
   public:
    explicit NamespaceMutationGuard(Mux* mux) : mux_(mux) {
      mux_->ns_generation_.fetch_add(1, std::memory_order_release);
    }
    ~NamespaceMutationGuard() {
      mux_->ns_generation_.fetch_add(1, std::memory_order_release);
    }

   private:
    Mux* const mux_;
  };

  // ---- bookkeeping ---------------------------------------------------------------
  // Chunked, ns_mu_-free snapshot build over the file index. Callers
  // validate via ns_generation_ (see Checkpoint) or hold ns_mu_.
  MuxSnapshot BuildSnapshotChunked() const;

  // Advances the simulated clock by `ns` of Mux software work and attributes
  // it: `counter` is a full metric name like "mux.sw.dispatch_ns" (callers
  // pass compile-time literals so the hot path never builds strings), and
  // every charge also lands in "mux.sw.total_ns" — the numerator of the
  // §3.2 software-overhead share.
  void ChargeSw(std::string_view counter, SimTime ns) const {
    clock_->Advance(ns);
    metrics_.Add(counter, ns);
    metrics_.Add("mux.sw.total_ns", ns);
  }
  void ChargeDispatch() const {
    ChargeSw("mux.sw.dispatch_ns", options_.costs.dispatch_ns);
  }
  // Observes one completed top-level op into "mux.<op>.latency_ns" and the
  // trace ring (layer "mux").
  void RecordOp(const char* op, std::string_view hist, uint64_t bytes,
                SimTime start_ns) const;
  // Same, but with the elapsed time supplied explicitly — async ops account
  // their own {start, local} time and must not read the shared clock (other
  // ops advance it concurrently).
  void RecordOpElapsed(const char* op, std::string_view hist, uint64_t bytes,
                       SimTime start_ns, SimTime elapsed_ns) const;

  SimClock* const clock_;
  const Options options_;
  mutable obs::MetricsRegistry metrics_;
  mutable obs::TraceBuffer trace_;

  // Namespace lock, now a shared_mutex: Resolve/Stat/ReadDir/StatFs (and
  // the brief planning snapshot) take it shared, only namespace mutations
  // (create/unlink/rename/mkdir) and tier-table swaps take it exclusive.
  // Open-file handles live in handle_shards_, not under ns_mu_.
  mutable std::shared_mutex ns_mu_;
  std::vector<TierInfo> tiers_;  // master copy; snapshot in tier_set_
  std::unordered_map<vfs::InodeNum, std::shared_ptr<MuxInode>> inodes_;
  // Root inode, cached so the resolve hot path skips the hash lookup. Only
  // Recover() replaces it (under ns_mu_ exclusive).
  std::shared_ptr<MuxInode> root_;
  // Creation-ordered index of every non-root inode (see IndexInsertLocked).
  // file_index_mu_ is a leaf below ns_mu_: scans take it alone, mutators
  // take it while holding ns_mu_ exclusive.
  mutable std::mutex file_index_mu_;
  std::vector<std::weak_ptr<MuxInode>> file_index_;
  uint64_t index_dead_hint_ = 0;          // unlinks since last compaction
  mutable uint64_t index_active_scans_ = 0;  // both guarded by file_index_mu_
  std::atomic<uint64_t> ns_generation_{0};
  std::shared_ptr<TieringPolicy> policy_;  // master copy; snapshot in tier_set_
  // Current immutable snapshot of {tiers_, policy_}; swapped by
  // PublishTierSetLocked, pinned by BeginOp and friends via SnapshotTierSet.
  mutable std::mutex tier_set_mu_;  // leaf: guards only the pointer swap
  std::shared_ptr<const TierSet> tier_set_;
  mutable std::array<HandleShard, kHandleShards> handle_shards_;
  // Serializes op setup when sharded_op_setup is off (ablation baseline).
  mutable std::mutex legacy_op_mu_;
  std::unique_ptr<CacheController> cache_;
  std::unique_ptr<IoExecutor> executor_;  // created when parallel_dispatch
  // Completion-based submission/completion core: one ring per tier, channel
  // count = DeviceProfile::queue_depth. Created when async_dispatch (and
  // parallel_dispatch) are on.
  std::unique_ptr<AsyncIoCore> async_;
  TierId next_tier_id_ = 0;
  vfs::InodeNum next_ino_ = 2;
  std::atomic<vfs::FileHandle> next_handle_{1};

  // Hot-path counters are lock-free so concurrent readers never serialize on
  // stats_mu_; the mutex remains only for the cold aggregates (OCC pass
  // stats, last migration round) and for snapshot reads.
  struct HotStats {
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> writes{0};
    std::atomic<uint64_t> split_segments{0};
    std::atomic<uint64_t> migration_passes{0};
    std::atomic<uint64_t> migrated_blocks{0};
    std::atomic<uint64_t> migration_task_failures{0};
  };
  mutable HotStats hot_stats_;
  // Data ops admitted but not yet finished (sync and async alike).
  mutable std::atomic<int64_t> ops_inflight_{0};
  // Bitmap of tiers currently inside a read-failure episode: the failover
  // warning logs once per 0->1 transition of a tier's bit; a later
  // successful read from that tier clears it (ending the episode). Every
  // individual failover still counts in "mux.replica.failover".
  mutable std::atomic<uint32_t> failing_tiers_{0};
  mutable std::mutex stats_mu_;
  OccStats occ_stats_;
  SchedulerStats last_round_sched_stats_;

  std::thread migration_thread_;
  std::atomic<bool> migration_running_{false};
};

}  // namespace mux::core

#endif  // MUX_CORE_MUX_H_
