#include "src/core/bookkeeper.h"

#include <cstring>

#include "src/common/checksum.h"
#include "src/common/encoding.h"

namespace mux::core {

namespace {

constexpr uint32_t kSnapshotMagic = 0x4d555853;  // "MUXS"
// v3: + temperature, last_access; v4: replica_runs -> mirror_runs (residency
// bitmaps with per-copy dirty bits). v3 snapshots are still readable: their
// single-tier replica runs decode to clean mirror runs.
constexpr uint32_t kSnapshotVersion = 4;
constexpr uint32_t kMinSnapshotVersion = 3;

void AppendU32(std::vector<uint8_t>& out, uint32_t v) {
  uint8_t buf[4];
  Put32(buf, v);
  out.insert(out.end(), buf, buf + 4);
}
void AppendU64(std::vector<uint8_t>& out, uint64_t v) {
  uint8_t buf[8];
  Put64(buf, v);
  out.insert(out.end(), buf, buf + 8);
}
void AppendString(std::vector<uint8_t>& out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) {
      return false;
    }
    *v = Get32(bytes_.data() + pos_);
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) {
      return false;
    }
    *v = Get64(bytes_.data() + pos_);
    pos_ += 8;
    return true;
  }
  bool ReadString(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len) || pos_ + len > bytes_.size()) {
      return false;
    }
    s->assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return true;
  }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> EncodeSnapshot(const MuxSnapshot& snapshot) {
  std::vector<uint8_t> body;
  AppendU32(body, static_cast<uint32_t>(snapshot.files.size()));
  for (const FileSnapshot& file : snapshot.files) {
    AppendString(body, file.path);
    AppendU32(body, file.is_directory ? 1 : 0);
    AppendU64(body, file.size);
    AppendU64(body, file.mtime);
    AppendU64(body, file.atime);
    AppendU64(body, file.ctime);
    AppendU32(body, file.mode);
    AppendU64(body, file.occ_version);
    uint64_t temp_bits = 0;
    static_assert(sizeof(temp_bits) == sizeof(file.temperature));
    std::memcpy(&temp_bits, &file.temperature, sizeof(temp_bits));
    AppendU64(body, temp_bits);
    AppendU64(body, file.last_access);
    for (TierId owner : file.attr_owners) {
      AppendU32(body, owner);
    }
    AppendU32(body, static_cast<uint32_t>(file.runs.size()));
    for (const auto& run : file.runs) {
      AppendU64(body, run.first_block);
      AppendU64(body, run.count);
      AppendU32(body, run.tier);
    }
    AppendU32(body, static_cast<uint32_t>(file.mirror_runs.size()));
    for (const auto& run : file.mirror_runs) {
      AppendU64(body, run.first_block);
      AppendU64(body, run.count);
      AppendU32(body, run.extra);
      AppendU32(body, run.dirty);
    }
  }

  std::vector<uint8_t> out;
  AppendU32(out, kSnapshotMagic);
  AppendU32(out, kSnapshotVersion);
  AppendU64(out, body.size());
  AppendU32(out, Crc32c(body.data(), body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Result<MuxSnapshot> DecodeSnapshot(const std::vector<uint8_t>& bytes) {
  Reader reader(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t body_len = 0;
  uint32_t crc = 0;
  if (!reader.ReadU32(&magic) || magic != kSnapshotMagic) {
    return CorruptionError("mux snapshot magic mismatch");
  }
  if (!reader.ReadU32(&version) || version < kMinSnapshotVersion ||
      version > kSnapshotVersion) {
    return CorruptionError("mux snapshot version mismatch");
  }
  if (!reader.ReadU64(&body_len) || !reader.ReadU32(&crc)) {
    return CorruptionError("mux snapshot header truncated");
  }
  constexpr size_t kHeaderSize = 4 + 4 + 8 + 4;
  if (bytes.size() < kHeaderSize + body_len) {
    return CorruptionError("mux snapshot body truncated");
  }
  if (Crc32c(bytes.data() + kHeaderSize, body_len) != crc) {
    return CorruptionError("mux snapshot checksum mismatch");
  }

  MuxSnapshot snapshot;
  uint32_t file_count = 0;
  if (!reader.ReadU32(&file_count)) {
    return CorruptionError("mux snapshot malformed");
  }
  snapshot.files.reserve(file_count);
  for (uint32_t i = 0; i < file_count; ++i) {
    FileSnapshot file;
    uint32_t is_dir = 0;
    uint32_t run_count = 0;
    if (!reader.ReadString(&file.path) || !reader.ReadU32(&is_dir) ||
        !reader.ReadU64(&file.size) || !reader.ReadU64(&file.mtime) ||
        !reader.ReadU64(&file.atime) || !reader.ReadU64(&file.ctime) ||
        !reader.ReadU32(&file.mode) || !reader.ReadU64(&file.occ_version)) {
      return CorruptionError("mux snapshot file record malformed");
    }
    uint64_t temp_bits = 0;
    if (!reader.ReadU64(&temp_bits) || !reader.ReadU64(&file.last_access)) {
      return CorruptionError("mux snapshot heat state malformed");
    }
    std::memcpy(&file.temperature, &temp_bits, sizeof(temp_bits));
    file.is_directory = is_dir != 0;
    for (size_t a = 0; a < file.attr_owners.size(); ++a) {
      uint32_t owner = 0;
      if (!reader.ReadU32(&owner)) {
        return CorruptionError("mux snapshot owners malformed");
      }
      file.attr_owners[a] = owner;
    }
    if (!reader.ReadU32(&run_count)) {
      return CorruptionError("mux snapshot run count malformed");
    }
    file.runs.reserve(run_count);
    for (uint32_t r = 0; r < run_count; ++r) {
      BlockLookupTable::Run run;
      uint32_t tier = 0;
      if (!reader.ReadU64(&run.first_block) || !reader.ReadU64(&run.count) ||
          !reader.ReadU32(&tier)) {
        return CorruptionError("mux snapshot run malformed");
      }
      run.tier = tier;
      file.runs.push_back(run);
    }
    uint32_t mirror_count = 0;
    if (!reader.ReadU32(&mirror_count)) {
      return CorruptionError("mux snapshot mirror count malformed");
    }
    file.mirror_runs.reserve(mirror_count);
    for (uint32_t r = 0; r < mirror_count; ++r) {
      BlockLookupTable::MirrorRun run;
      if (version == 3) {
        // v3 stored single-tier replica runs; a recovered replica becomes a
        // clean mirror copy on that tier.
        uint32_t tier = 0;
        if (!reader.ReadU64(&run.first_block) || !reader.ReadU64(&run.count) ||
            !reader.ReadU32(&tier)) {
          return CorruptionError("mux snapshot replica run malformed");
        }
        run.extra = ResidencySet::Bit(tier);
        run.dirty = 0;
        if (run.extra == 0) {
          continue;  // tier id beyond the bitmap range; nothing to restore
        }
      } else {
        if (!reader.ReadU64(&run.first_block) || !reader.ReadU64(&run.count) ||
            !reader.ReadU32(&run.extra) || !reader.ReadU32(&run.dirty)) {
          return CorruptionError("mux snapshot mirror run malformed");
        }
        if ((run.dirty & ~run.extra) != 0) {
          return CorruptionError("mux snapshot mirror dirty bits malformed");
        }
      }
      file.mirror_runs.push_back(run);
    }
    snapshot.files.push_back(std::move(file));
  }
  return snapshot;
}

Status SaveSnapshot(vfs::FileSystem* fs, const std::string& meta_path,
                    const MuxSnapshot& snapshot) {
  const std::vector<uint8_t> bytes = EncodeSnapshot(snapshot);
  const std::string tmp_path = meta_path + ".tmp";
  MUX_ASSIGN_OR_RETURN(
      vfs::FileHandle handle,
      fs->Open(tmp_path,
               vfs::OpenFlags::kCreateRw | vfs::OpenFlags::kTruncate, 0600));
  auto written = fs->Write(handle, 0, bytes.data(), bytes.size());
  if (!written.ok()) {
    (void)fs->Close(handle);
    return written.status();
  }
  Status sync = fs->Fsync(handle, /*data_only=*/false);
  (void)fs->Close(handle);
  MUX_RETURN_IF_ERROR(sync);
  return fs->Rename(tmp_path, meta_path);
}

Result<MuxSnapshot> LoadSnapshot(vfs::FileSystem* fs,
                                 const std::string& meta_path) {
  auto stat = fs->Stat(meta_path);
  if (!stat.ok()) {
    return stat.status();
  }
  MUX_ASSIGN_OR_RETURN(vfs::FileHandle handle,
                       fs->Open(meta_path, vfs::OpenFlags::kRead));
  std::vector<uint8_t> bytes(stat->size);
  auto read = fs->Read(handle, 0, bytes.size(), bytes.data());
  (void)fs->Close(handle);
  if (!read.ok()) {
    return read.status();
  }
  if (*read != bytes.size()) {
    return CorruptionError("mux snapshot short read");
  }
  return DecodeSnapshot(bytes);
}

}  // namespace mux::core
