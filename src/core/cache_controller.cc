#include "src/core/cache_controller.h"

#include <cstring>

#include "src/common/logging.h"

namespace mux::core {

CacheController::CacheController(vfs::FileSystem* scm_fs, SimClock* clock,
                                 const CostModel& costs, Options options)
    : scm_fs_(scm_fs), clock_(clock), costs_(costs),
      options_(std::move(options)) {
  replacement_ = options_.use_mglru
                     ? std::unique_ptr<ReplacementPolicy>(
                           std::make_unique<MglruPolicy>())
                     : std::make_unique<PlainLruPolicy>();
}

CacheController::~CacheController() {
  if (initialized_) {
    // Release the DAX mapping before closing the file: leaking it leaves
    // the PM file system believing a consumer still holds a pointer into
    // the (now reusable) cache extent.
    (void)scm_fs_->DaxUnmap(mapping_);
    (void)scm_fs_->Close(cache_handle_);
  }
}

void CacheController::SetObs(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
}

Status CacheController::Init() {
  std::lock_guard<std::mutex> lock(mu_);
  if (initialized_) {
    return Status::Ok();
  }
  if (!scm_fs_->SupportsDax()) {
    return NotSupportedError("SCM cache needs a DAX-capable file system");
  }
  MUX_ASSIGN_OR_RETURN(
      cache_handle_,
      scm_fs_->Open(options_.cache_path, vfs::OpenFlags::kCreateRw, 0600));
  const uint64_t bytes = options_.capacity_blocks * kBlockSize;
  Status fallocate = scm_fs_->Fallocate(cache_handle_, 0, bytes,
                                        /*keep_size=*/false);
  if (!fallocate.ok()) {
    (void)scm_fs_->Close(cache_handle_);
    return fallocate;
  }
  auto mapping = scm_fs_->DaxMap(cache_handle_, 0, bytes);
  if (!mapping.ok()) {
    (void)scm_fs_->Close(cache_handle_);
    return mapping.status();
  }
  dax_base_ = mapping->data;
  mapping_ = *mapping;
  slot_owner_.assign(options_.capacity_blocks, Key{0, 0});
  free_slots_.clear();
  for (uint32_t slot = 0; slot < options_.capacity_blocks; ++slot) {
    free_slots_.push_back(options_.capacity_blocks - 1 - slot);
  }
  initialized_ = true;
  return Status::Ok();
}

bool CacheController::TryRead(uint64_t file_key, uint64_t block,
                              uint64_t offset_in_block, uint64_t n,
                              uint8_t* out) {
  const SimTime start = clock_->Now();
  clock_->Advance(costs_.cache_lookup_ns);
  std::lock_guard<std::mutex> lock(mu_);
  if (!initialized_) {
    return false;
  }
  auto it = index_.find(Key{file_key, block});
  if (it == index_.end()) {
    stats_.misses++;
    if (metrics_ != nullptr) {
      metrics_->Observe("cache.miss_ns", clock_->Now() - start);
    }
    return false;
  }
  std::memcpy(out, SlotPtr(it->second) + offset_in_block, n);
  scm_fs_->ChargeDax(n, /*is_write=*/false);
  replacement_->Touched(it->second);
  stats_.hits++;
  if (metrics_ != nullptr) {
    metrics_->Observe("cache.hit_ns", clock_->Now() - start);
  }
  return true;
}

void CacheController::EvictOneLocked() {
  auto victim = replacement_->Evict();
  if (!victim.ok()) {
    return;
  }
  index_.erase(slot_owner_[*victim]);
  free_slots_.push_back(*victim);
  stats_.evictions++;
}

void CacheController::OnMiss(uint64_t file_key, uint64_t block,
                             const uint8_t* block_data) {
  const SimTime start = clock_->Now();
  clock_->Advance(costs_.cache_admission_ns);
  std::lock_guard<std::mutex> lock(mu_);
  if (!initialized_) {
    return;
  }
  const Key key{file_key, block};
  if (index_.contains(key)) {
    return;  // raced in already
  }
  const uint32_t count = ++miss_counts_[key];
  if (count < options_.admission_threshold) {
    // Bound the sketch: decay by clearing when it outgrows the cache 8x.
    if (miss_counts_.size() > options_.capacity_blocks * 8) {
      miss_counts_.clear();
    }
    return;
  }
  miss_counts_.erase(key);
  if (free_slots_.empty()) {
    EvictOneLocked();
  }
  if (free_slots_.empty()) {
    return;
  }
  const uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  std::memcpy(SlotPtr(slot), block_data, kBlockSize);
  scm_fs_->ChargeDax(kBlockSize, /*is_write=*/true);
  index_[key] = slot;
  slot_owner_[slot] = key;
  replacement_->Inserted(slot);
  stats_.admissions++;
  if (metrics_ != nullptr) {
    metrics_->Observe("cache.admission_ns", clock_->Now() - start);
  }
}

void CacheController::OnWrite(uint64_t file_key, uint64_t block,
                              uint64_t offset_in_block, uint64_t n,
                              const uint8_t* data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!initialized_) {
    return;
  }
  auto it = index_.find(Key{file_key, block});
  if (it == index_.end()) {
    return;
  }
  std::memcpy(SlotPtr(it->second) + offset_in_block, data, n);
  scm_fs_->ChargeDax(n, /*is_write=*/true);
  replacement_->Touched(it->second);
}

void CacheController::InvalidateBlock(uint64_t file_key, uint64_t block) {
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{file_key, block};
  // The admission sketch must forget the block too: its counted misses
  // refer to content that just changed, and carrying them over lets a
  // single post-invalidation miss re-admit stale-history blocks early.
  miss_counts_.erase(key);
  auto it = index_.find(key);
  if (it == index_.end()) {
    return;
  }
  replacement_->Removed(it->second);
  free_slots_.push_back(it->second);
  index_.erase(it);
  stats_.invalidations++;
}

void CacheController::InvalidateFile(uint64_t file_key) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = miss_counts_.begin(); it != miss_counts_.end();) {
    if (it->first.file_key == file_key) {
      it = miss_counts_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = index_.begin(); it != index_.end();) {
    if (it->first.file_key == file_key) {
      replacement_->Removed(it->second);
      free_slots_.push_back(it->second);
      stats_.invalidations++;
      it = index_.erase(it);
    } else {
      ++it;
    }
  }
}

ScmCacheStats CacheController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t CacheController::ResidentBlocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

}  // namespace mux::core
