#include "src/core/cache_controller.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"

namespace mux::core {
namespace {

uint64_t RoundUpPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

uint64_t RoundDownPow2(uint64_t v) {
  uint64_t p = 1;
  while (p * 2 <= v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

// ---- FrequencySketch -------------------------------------------------------

void FrequencySketch::Reset(uint64_t entries_hint, uint32_t decay_interval) {
  const uint64_t entries = RoundUpPow2(std::max<uint64_t>(entries_hint, 64));
  table_.assign(entries, Entry{});
  mask_ = entries - 1;
  used_ = 0;
  decay_interval_ = decay_interval == 0
                        ? static_cast<uint32_t>(
                              std::min<uint64_t>(entries * 4, UINT32_MAX))
                        : decay_interval;
  ops_since_decay_ = 0;
}

size_t FrequencySketch::Bucket(uint64_t file_key, uint64_t block) const {
  uint64_t h = file_key * 0x9e3779b97f4a7c15ULL ^ block;
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return static_cast<size_t>(h) & mask_;
}

FrequencySketch::Entry* FrequencySketch::Find(uint64_t file_key,
                                              uint64_t block) {
  const size_t base = Bucket(file_key, block);
  for (uint32_t i = 0; i < kProbeWindow; ++i) {
    Entry& entry = table_[(base + i) & mask_];
    if (entry.count != 0 && entry.file_key == file_key &&
        entry.block == block) {
      return &entry;
    }
  }
  return nullptr;
}

uint32_t FrequencySketch::Increment(uint64_t file_key, uint64_t block,
                                    bool* decayed) {
  *decayed = false;
  if (++ops_since_decay_ >= decay_interval_) {
    Decay();
    *decayed = true;
  }
  if (Entry* entry = Find(file_key, block)) {
    if (entry->count < kMaxCount) {
      entry->count++;
    }
    return entry->count;
  }
  // Claim a free slot in the probe window, else steal the minimum-count
  // entry: a one-touch scan entry (count 1) always loses to a counted hot
  // candidate, which is what makes the window scan-resistant.
  const size_t base = Bucket(file_key, block);
  Entry* victim = nullptr;
  for (uint32_t i = 0; i < kProbeWindow; ++i) {
    Entry& entry = table_[(base + i) & mask_];
    if (entry.count == 0) {
      victim = &entry;
      used_++;
      break;
    }
    if (victim == nullptr || entry.count < victim->count) {
      victim = &entry;
    }
  }
  victim->file_key = file_key;
  victim->block = block;
  victim->count = 1;
  return 1;
}

void FrequencySketch::Note(uint64_t file_key, uint64_t block, uint8_t count) {
  if (count == 0) {
    return;
  }
  if (Entry* entry = Find(file_key, block)) {
    entry->count = std::max(entry->count, count);
    return;
  }
  const size_t base = Bucket(file_key, block);
  for (uint32_t i = 0; i < kProbeWindow; ++i) {
    Entry& entry = table_[(base + i) & mask_];
    if (entry.count == 0) {
      entry.file_key = file_key;
      entry.block = block;
      entry.count = count;
      used_++;
      return;
    }
  }
  // Ghost entries never steal: live miss counts outrank eviction history.
}

void FrequencySketch::Erase(uint64_t file_key, uint64_t block) {
  if (Entry* entry = Find(file_key, block)) {
    entry->count = 0;
    used_--;
  }
}

void FrequencySketch::EraseRange(uint64_t file_key, uint64_t first_block,
                                 uint64_t last_block) {
  for (Entry& entry : table_) {
    if (entry.count != 0 && entry.file_key == file_key &&
        entry.block >= first_block && entry.block <= last_block) {
      entry.count = 0;
      used_--;
    }
  }
}

void FrequencySketch::Decay() {
  ops_since_decay_ = 0;
  for (Entry& entry : table_) {
    if (entry.count != 0) {
      entry.count >>= 1;
      if (entry.count == 0) {
        used_--;
      }
    }
  }
}

// ---- CacheController -------------------------------------------------------

CacheController::CacheController(vfs::FileSystem* scm_fs, SimClock* clock,
                                 const CostModel& costs, Options options)
    : scm_fs_(scm_fs), clock_(clock), costs_(costs),
      options_(std::move(options)) {
  const uint64_t capacity = std::max<uint64_t>(options_.capacity_blocks, 1);
  shard_count_ = static_cast<uint32_t>(RoundDownPow2(std::clamp<uint64_t>(
      options_.shards == 0 ? 1 : options_.shards, 1, capacity)));
  shard_mask_ = shard_count_ - 1;
  slots_per_shard_ = capacity / shard_count_;
  usable_slots_ = slots_per_shard_ * shard_count_;
  shards_ = std::vector<Shard>(shard_count_);
  for (Shard& shard : shards_) {
    shard.replacement = MakeReplacementPolicy(options_.use_mglru);
    shard.sketch.Reset(slots_per_shard_ * 8, options_.sketch_decay_interval);
  }
  // Split the staging budget across the shards: each shard gets at least
  // one block (so a tiny budget still exercises the staged path) clamped to
  // its slot count. shards == 1 reproduces the old single global buffer.
  const uint64_t total_agg_blocks = options_.agg_buffer_bytes / kBlockSize;
  if (total_agg_blocks == 0) {
    agg_shard_capacity_blocks_ = 0;
  } else {
    agg_shard_capacity_blocks_ = std::min<uint64_t>(
        std::max<uint64_t>(total_agg_blocks / shard_count_, 1),
        slots_per_shard_);
  }
}

CacheController::~CacheController() {
  if (initialized_.load(std::memory_order_acquire)) {
    // Release the DAX mapping before closing the file: leaking it leaves
    // the PM file system believing a consumer still holds a pointer into
    // the (now reusable) cache extent.
    (void)scm_fs_->DaxUnmap(mapping_);
    (void)scm_fs_->Close(cache_handle_);
  }
}

void CacheController::SetObs(obs::MetricsRegistry* metrics) {
  metrics_.store(metrics, std::memory_order_release);
}

void CacheController::ObserveCounter(std::string_view name, uint64_t delta) {
  if (obs::MetricsRegistry* m = metrics_.load(std::memory_order_acquire)) {
    m->Add(name, delta);
  }
}

Status CacheController::Init() {
  if (initialized_.load(std::memory_order_acquire)) {
    return Status::Ok();
  }
  if (!scm_fs_->SupportsDax()) {
    return NotSupportedError("SCM cache needs a DAX-capable file system");
  }
  MUX_ASSIGN_OR_RETURN(
      cache_handle_,
      scm_fs_->Open(options_.cache_path, vfs::OpenFlags::kCreateRw, 0600));
  const uint64_t bytes = std::max<uint64_t>(options_.capacity_blocks, 1) *
                         kBlockSize;
  Status fallocate = scm_fs_->Fallocate(cache_handle_, 0, bytes,
                                        /*keep_size=*/false);
  if (!fallocate.ok()) {
    (void)scm_fs_->Close(cache_handle_);
    return fallocate;
  }
  auto mapping = scm_fs_->DaxMap(cache_handle_, 0, bytes);
  if (!mapping.ok()) {
    (void)scm_fs_->Close(cache_handle_);
    return mapping.status();
  }
  dax_base_ = mapping->data;
  mapping_ = *mapping;

  slot_owner_.assign(usable_slots_, Key{});
  accessed_ = std::make_unique<std::atomic<uint8_t>[]>(usable_slots_);
  slot_state_ = std::make_unique<std::atomic<uint32_t>[]>(usable_slots_);
  for (uint64_t slot = 0; slot < usable_slots_; ++slot) {
    accessed_[slot].store(0, std::memory_order_relaxed);
    slot_state_[slot].store(kResident, std::memory_order_relaxed);
  }
  for (uint32_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    const uint32_t lo = static_cast<uint32_t>(s * slots_per_shard_);
    shard.free_slots.clear();
    for (uint64_t i = 0; i < slots_per_shard_; ++i) {
      // Descending, so pop_back hands out the shard's slots in order.
      shard.free_slots.push_back(
          lo + static_cast<uint32_t>(slots_per_shard_ - 1 - i));
    }
  }
  for (Shard& shard : shards_) {
    shard.agg_buffer.assign(agg_shard_capacity_blocks_ * kBlockSize, 0);
    shard.agg_entries.clear();
    shard.agg_entries.reserve(agg_shard_capacity_blocks_);
  }
  initialized_.store(true, std::memory_order_release);
  return Status::Ok();
}

bool CacheController::TryRead(uint64_t file_key, uint64_t block,
                              uint64_t offset_in_block, uint64_t n,
                              uint8_t* out) {
  const SimTime start = clock_->Now();
  clock_->Advance(costs_.cache_lookup_ns);
  if (!initialized_.load(std::memory_order_acquire)) {
    return false;
  }
  const Key key{file_key, block};
  Shard& shard = ShardFor(key);
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    if (obs::MetricsRegistry* m = metrics_.load(std::memory_order_acquire)) {
      m->Observe("cache.miss_ns", clock_->Now() - start);
    }
    return false;
  }
  const uint32_t slot = it->second;
  const uint32_t state = slot_state_[slot].load(std::memory_order_acquire);
  if (state == kResident) {
    std::memcpy(out, SlotPtr(slot) + offset_in_block, n);
    scm_fs_->ChargeDax(n, /*is_write=*/false);
  } else {
    // Staged in this shard's aggregation buffer. Under its agg_mu the
    // entry either still matches (copy from the buffer — a DRAM read, no
    // DAX charge) or a flush beat us here (the mutex ordered its slot
    // memcpy before us, so the DAX bytes are current).
    std::lock_guard<std::mutex> agg_lock(shard.agg_mu);
    if (state < shard.agg_entries.size() && shard.agg_entries[state].valid &&
        shard.agg_entries[state].key == key &&
        shard.agg_entries[state].slot == slot) {
      std::memcpy(out, shard.agg_buffer.data() + state * kBlockSize +
                           offset_in_block, n);
      ObserveCounter("cache.agg.staged_hits", 1);
    } else {
      std::memcpy(out, SlotPtr(slot) + offset_in_block, n);
      scm_fs_->ChargeDax(n, /*is_write=*/false);
    }
  }
  accessed_[slot].store(1, std::memory_order_relaxed);
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  if (obs::MetricsRegistry* m = metrics_.load(std::memory_order_acquire)) {
    m->Observe("cache.hit_ns", clock_->Now() - start);
  }
  return true;
}

uint32_t CacheController::TakeSlotLocked(Shard& shard) {
  if (shard.free_slots.empty()) {
    // Second-chance eviction scan: a set access bit (shared-lock hits)
    // buys the slot a reinsertion instead of eviction. Hits are excluded
    // while we hold the exclusive lock, so every retry clears one bit and
    // the scan is bounded by the resident count.
    size_t budget = shard.index.size() + 1;
    while (budget-- > 0) {
      auto victim = shard.replacement->Evict();
      if (!victim.ok()) {
        break;
      }
      const uint32_t slot = *victim;
      if (accessed_[slot].exchange(0, std::memory_order_relaxed) != 0) {
        shard.replacement->Inserted(slot);
        continue;
      }
      const Key vkey = slot_owner_[slot];
      // Ghost history: an evicted resident re-enters one miss short of the
      // threshold, so a re-reference readmits it ahead of scan traffic.
      if (options_.admission_threshold > 1) {
        shard.sketch.Note(vkey.file_key, vkey.block,
                          static_cast<uint8_t>(std::min<uint32_t>(
                              options_.admission_threshold - 1, 255)));
      }
      shard.index.erase(vkey);
      ReleaseSlotLocked(shard, slot);
      shard.evictions.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  if (shard.free_slots.empty()) {
    return kResident;
  }
  const uint32_t slot = shard.free_slots.back();
  shard.free_slots.pop_back();
  return slot;
}

void CacheController::ReleaseSlotLocked(Shard& shard, uint32_t slot) {
  if (slot_state_[slot].load(std::memory_order_relaxed) != kResident) {
    // Cancel the staged entry under the shard's agg_mu so a later flush
    // cannot write stale bytes into this (about to be reused) slot. If a
    // flush ran while we waited for the lock the entry no longer matches
    // and there is nothing to cancel.
    std::lock_guard<std::mutex> agg_lock(shard.agg_mu);
    const uint32_t state = slot_state_[slot].load(std::memory_order_relaxed);
    if (state != kResident && state < shard.agg_entries.size() &&
        shard.agg_entries[state].valid &&
        shard.agg_entries[state].slot == slot) {
      shard.agg_entries[state].valid = false;
      agg_cancelled_.fetch_add(1, std::memory_order_relaxed);
      ObserveCounter("cache.agg.cancelled", 1);
    }
    slot_state_[slot].store(kResident, std::memory_order_release);
  }
  accessed_[slot].store(0, std::memory_order_relaxed);
  shard.free_slots.push_back(slot);
}

void CacheController::OnMiss(uint64_t file_key, uint64_t block,
                             const uint8_t* block_data) {
  const SimTime start = clock_->Now();
  clock_->Advance(costs_.cache_admission_ns);
  if (!initialized_.load(std::memory_order_acquire)) {
    return;
  }
  const Key key{file_key, block};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  if (shard.index.contains(key)) {
    return;  // raced in already
  }
  bool decayed = false;
  const uint32_t count = shard.sketch.Increment(file_key, block, &decayed);
  if (decayed) {
    shard.sketch_decays.fetch_add(1, std::memory_order_relaxed);
    ObserveCounter("cache.sketch.decays", 1);
  }
  if (count < options_.admission_threshold) {
    return;
  }
  const uint32_t slot = TakeSlotLocked(shard);
  if (slot == kResident) {
    return;
  }
  shard.sketch.Erase(file_key, block);
  if (agg_shard_capacity_blocks_ > 0) {
    // Stage into the shard's aggregation buffer (a DRAM copy — the DAX
    // write is charged in bulk at flush time).
    clock_->Advance(costs_.cache_stage_ns);
    std::lock_guard<std::mutex> agg_lock(shard.agg_mu);
    if (shard.agg_entries.size() >= agg_shard_capacity_blocks_) {
      FlushAggLocked(shard);
    }
    const uint32_t idx = static_cast<uint32_t>(shard.agg_entries.size());
    std::memcpy(shard.agg_buffer.data() + idx * kBlockSize, block_data,
                kBlockSize);
    shard.agg_entries.push_back(AggEntry{key, slot, /*valid=*/true});
    slot_state_[slot].store(idx, std::memory_order_release);
  } else {
    std::memcpy(SlotPtr(slot), block_data, kBlockSize);
    scm_fs_->ChargeDax(kBlockSize, /*is_write=*/true);
    slot_state_[slot].store(kResident, std::memory_order_release);
  }
  shard.index[key] = slot;
  slot_owner_[slot] = key;
  accessed_[slot].store(0, std::memory_order_relaxed);
  shard.replacement->Inserted(slot);
  shard.admissions.fetch_add(1, std::memory_order_relaxed);
  if (obs::MetricsRegistry* m = metrics_.load(std::memory_order_acquire)) {
    m->Observe("cache.admission_ns", clock_->Now() - start);
  }
}

void CacheController::FlushAggLocked(Shard& shard) {
  uint64_t bytes = 0;
  for (size_t i = 0; i < shard.agg_entries.size(); ++i) {
    const AggEntry& entry = shard.agg_entries[i];
    if (!entry.valid) {
      continue;
    }
    std::memcpy(SlotPtr(entry.slot), shard.agg_buffer.data() + i * kBlockSize,
                kBlockSize);
    // Release: a reader that sees kResident without taking agg_mu must
    // also see the bytes the memcpy above just wrote.
    slot_state_[entry.slot].store(kResident, std::memory_order_release);
    bytes += kBlockSize;
  }
  shard.agg_entries.clear();
  if (bytes == 0) {
    return;
  }
  // The whole buffer goes down as ONE sequential DAX write.
  scm_fs_->ChargeDax(bytes, /*is_write=*/true);
  clock_->Advance(costs_.cache_agg_flush_ns);
  agg_flushes_.fetch_add(1, std::memory_order_relaxed);
  agg_flush_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  ObserveCounter("cache.agg.flushes", 1);
  ObserveCounter("cache.agg.bytes", bytes);
}

void CacheController::FlushAggregationBuffer() {
  if (!initialized_.load(std::memory_order_acquire)) {
    return;
  }
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> agg_lock(shard.agg_mu);
    FlushAggLocked(shard);
  }
}

void CacheController::OnWrite(uint64_t file_key, uint64_t block,
                              uint64_t offset_in_block, uint64_t n,
                              const uint8_t* data) {
  if (!initialized_.load(std::memory_order_acquire)) {
    return;
  }
  const Key key{file_key, block};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    return;
  }
  const uint32_t slot = it->second;
  const uint32_t state = slot_state_[slot].load(std::memory_order_acquire);
  if (state == kResident) {
    std::memcpy(SlotPtr(slot) + offset_in_block, data, n);
    scm_fs_->ChargeDax(n, /*is_write=*/true);
  } else {
    std::lock_guard<std::mutex> agg_lock(shard.agg_mu);
    if (state < shard.agg_entries.size() && shard.agg_entries[state].valid &&
        shard.agg_entries[state].key == key &&
        shard.agg_entries[state].slot == slot) {
      std::memcpy(shard.agg_buffer.data() + state * kBlockSize +
                      offset_in_block, data, n);
    } else {
      std::memcpy(SlotPtr(slot) + offset_in_block, data, n);
      scm_fs_->ChargeDax(n, /*is_write=*/true);
    }
  }
  accessed_[slot].store(1, std::memory_order_relaxed);
  shard.replacement->Touched(slot);
}

bool CacheController::InvalidateKeyLocked(Shard& shard, const Key& key) {
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    return false;
  }
  const uint32_t slot = it->second;
  shard.replacement->Removed(slot);
  ReleaseSlotLocked(shard, slot);
  shard.index.erase(it);
  shard.invalidations.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void CacheController::InvalidateBlock(uint64_t file_key, uint64_t block) {
  if (!initialized_.load(std::memory_order_acquire)) {
    return;
  }
  const Key key{file_key, block};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  // The admission sketch must forget the block too: its counted misses
  // refer to content that just changed, and carrying them over lets a
  // single post-invalidation miss re-admit stale-history blocks early.
  shard.sketch.Erase(file_key, block);
  (void)InvalidateKeyLocked(shard, key);
}

void CacheController::InvalidateRange(uint64_t file_key, uint64_t first_block,
                                      uint64_t last_block) {
  if (!initialized_.load(std::memory_order_acquire) ||
      last_block < first_block) {
    return;
  }
  // Small ranges probe block by block; large (or open-ended) ranges scan
  // each shard's index instead, which is bounded by the resident count.
  constexpr uint64_t kProbeLimit = 256;
  if (last_block - first_block < kProbeLimit) {
    for (uint64_t b = first_block; b <= last_block; ++b) {
      InvalidateBlock(file_key, b);
    }
    return;
  }
  for (Shard& shard : shards_) {
    std::lock_guard<std::shared_mutex> lock(shard.mu);
    shard.sketch.EraseRange(file_key, first_block, last_block);
    for (auto it = shard.index.begin(); it != shard.index.end();) {
      if (it->first.file_key == file_key && it->first.block >= first_block &&
          it->first.block <= last_block) {
        const uint32_t slot = it->second;
        shard.replacement->Removed(slot);
        ReleaseSlotLocked(shard, slot);
        shard.invalidations.fetch_add(1, std::memory_order_relaxed);
        it = shard.index.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void CacheController::InvalidateFile(uint64_t file_key) {
  InvalidateRange(file_key, 0, UINT64_MAX);
}

ScmCacheStats CacheController::stats() const {
  ScmCacheStats stats;
  for (const Shard& shard : shards_) {
    stats.hits += shard.hits.load(std::memory_order_relaxed);
    stats.misses += shard.misses.load(std::memory_order_relaxed);
    stats.admissions += shard.admissions.load(std::memory_order_relaxed);
    stats.evictions += shard.evictions.load(std::memory_order_relaxed);
    stats.invalidations +=
        shard.invalidations.load(std::memory_order_relaxed);
    stats.sketch_decays +=
        shard.sketch_decays.load(std::memory_order_relaxed);
  }
  stats.agg_flushes = agg_flushes_.load(std::memory_order_relaxed);
  stats.agg_flush_bytes = agg_flush_bytes_.load(std::memory_order_relaxed);
  stats.agg_cancelled = agg_cancelled_.load(std::memory_order_relaxed);
  return stats;
}

size_t CacheController::ResidentBlocks() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    total += shard.index.size();
  }
  return total;
}

size_t CacheController::StagedBlocks() const {
  size_t staged = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> agg_lock(shard.agg_mu);
    for (const AggEntry& entry : shard.agg_entries) {
      staged += entry.valid ? 1 : 0;
    }
  }
  return staged;
}

std::string_view CacheController::ReplacementName() const {
  return shards_[0].replacement->Name();
}

Status CacheController::CheckConsistency() const {
  if (!initialized_.load(std::memory_order_acquire)) {
    return Status::Ok();
  }
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shard_count_);
  for (const Shard& shard : shards_) {
    locks.emplace_back(shard.mu);
  }
  std::vector<std::unique_lock<std::mutex>> agg_locks;
  agg_locks.reserve(shard_count_);
  for (const Shard& shard : shards_) {
    agg_locks.emplace_back(shard.agg_mu);
  }

  std::vector<uint8_t> seen(usable_slots_, 0);  // 1 = owned, 2 = free
  for (uint32_t s = 0; s < shard_count_; ++s) {
    const Shard& shard = shards_[s];
    const uint64_t lo = s * slots_per_shard_;
    const uint64_t hi = lo + slots_per_shard_;
    if (shard.index.size() + shard.free_slots.size() != slots_per_shard_) {
      return IoError("cache shard occupancy does not sum to its slot count");
    }
    if (shard.replacement->Size() != shard.index.size()) {
      return IoError("cache replacement policy size != shard index size");
    }
    for (const auto& [key, slot] : shard.index) {
      if (slot < lo || slot >= hi) {
        return IoError("cache index entry maps outside its shard's slots");
      }
      if (seen[slot] != 0) {
        return IoError("cache slot owned twice");
      }
      seen[slot] = 1;
      if (!(slot_owner_[slot] == key)) {
        return IoError("cache slot_owner does not match index key");
      }
    }
    for (const uint32_t slot : shard.free_slots) {
      if (slot < lo || slot >= hi) {
        return IoError("cache free slot outside its shard's slots");
      }
      if (seen[slot] != 0) {
        return IoError("cache slot both free and owned (or freed twice)");
      }
      seen[slot] = 2;
    }
  }
  for (uint32_t s = 0; s < shard_count_; ++s) {
    const Shard& shard = shards_[s];
    const uint64_t lo = s * slots_per_shard_;
    const uint64_t hi = lo + slots_per_shard_;
    for (size_t i = 0; i < shard.agg_entries.size(); ++i) {
      const AggEntry& entry = shard.agg_entries[i];
      if (!entry.valid) {
        continue;
      }
      if (entry.slot < lo || entry.slot >= hi) {
        return IoError("staged aggregation entry outside its shard's slots");
      }
      if (seen[entry.slot] != 1) {
        return IoError("staged aggregation entry points at an unowned slot");
      }
      if (slot_state_[entry.slot].load(std::memory_order_relaxed) !=
          static_cast<uint32_t>(i)) {
        return IoError("staged slot state does not point back at its entry");
      }
      if (!(slot_owner_[entry.slot] == entry.key)) {
        return IoError("staged aggregation entry key mismatch");
      }
    }
  }
  return Status::Ok();
}

}  // namespace mux::core
