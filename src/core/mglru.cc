#include "src/core/mglru.h"

namespace mux::core {

// ---- MglruPolicy -----------------------------------------------------------

void MglruPolicy::Inserted(uint32_t slot) {
  // New entries start in the OLDEST generation — the MGLRU trait that makes
  // it scan-resistant: a one-touch streaming page is evicted before anything
  // the workload has re-referenced (re-referenced entries promote to the
  // youngest generation at eviction scan time).
  constexpr int kInsertGen = kGenerations - 1;
  gens_[kInsertGen].push_front(slot);
  entries_[slot] = Entry{kInsertGen, false, gens_[kInsertGen].begin()};
}

void MglruPolicy::Touched(uint32_t slot) {
  // Cheap on access: only the access bit is set (like hardware A-bits);
  // promotion happens lazily at eviction scan.
  auto it = entries_.find(slot);
  if (it != entries_.end()) {
    it->second.accessed = true;
  }
}

Result<uint32_t> MglruPolicy::Evict() {
  // Scan from the oldest generation; accessed entries are promoted to the
  // youngest generation instead of being evicted (second chance).
  for (int scan_budget = 0; scan_budget < 3; ++scan_budget) {
    for (int g = kGenerations - 1; g >= 0; --g) {
      auto& gen = gens_[g];
      while (!gen.empty()) {
        const uint32_t slot = gen.back();
        Entry& entry = entries_.at(slot);
        if (entry.accessed) {
          gen.pop_back();
          gens_[0].push_front(slot);
          entry.generation = 0;
          entry.accessed = false;
          entry.pos = gens_[0].begin();
          continue;
        }
        if (g == 0 && entries_.size() > 1 && scan_budget == 0) {
          // Prefer to age rather than evict from the youngest generation on
          // the first pass.
          break;
        }
        gen.pop_back();
        entries_.erase(slot);
        return slot;
      }
    }
    AgeGenerations();
  }
  if (entries_.empty()) {
    return NotFoundError("cache empty");
  }
  // Degenerate fallback: evict the tail of the youngest generation.
  for (int g = kGenerations - 1; g >= 0; --g) {
    if (!gens_[g].empty()) {
      const uint32_t slot = gens_[g].back();
      gens_[g].pop_back();
      entries_.erase(slot);
      return slot;
    }
  }
  return NotFoundError("cache empty");
}

void MglruPolicy::Removed(uint32_t slot) {
  auto it = entries_.find(slot);
  if (it == entries_.end()) {
    return;
  }
  gens_[it->second.generation].erase(it->second.pos);
  entries_.erase(it);
}

void MglruPolicy::AgeGenerations() {
  // Shift generations one step older; the oldest two merge.
  gens_[kGenerations - 1].splice(gens_[kGenerations - 1].begin(),
                                 gens_[kGenerations - 2]);
  for (int g = kGenerations - 2; g > 0; --g) {
    gens_[g] = std::move(gens_[g - 1]);
    gens_[g - 1].clear();
  }
  // Fix entry bookkeeping (generation indexes only; iterators stay valid
  // because std::list splice/move preserves them).
  for (int g = 0; g < kGenerations; ++g) {
    for (auto it = gens_[g].begin(); it != gens_[g].end(); ++it) {
      Entry& entry = entries_.at(*it);
      entry.generation = g;
      entry.pos = it;
    }
  }
}

// ---- PlainLruPolicy --------------------------------------------------------

void PlainLruPolicy::Inserted(uint32_t slot) {
  lru_.push_front(slot);
  entries_[slot] = lru_.begin();
}

void PlainLruPolicy::Touched(uint32_t slot) {
  auto it = entries_.find(slot);
  if (it == entries_.end()) {
    return;
  }
  lru_.erase(it->second);
  lru_.push_front(slot);
  it->second = lru_.begin();
}

Result<uint32_t> PlainLruPolicy::Evict() {
  if (lru_.empty()) {
    return NotFoundError("cache empty");
  }
  const uint32_t slot = lru_.back();
  lru_.pop_back();
  entries_.erase(slot);
  return slot;
}

void PlainLruPolicy::Removed(uint32_t slot) {
  auto it = entries_.find(slot);
  if (it == entries_.end()) {
    return;
  }
  lru_.erase(it->second);
  entries_.erase(it);
}

std::unique_ptr<ReplacementPolicy> MakeReplacementPolicy(bool use_mglru) {
  if (use_mglru) {
    return std::make_unique<MglruPolicy>();
  }
  return std::make_unique<PlainLruPolicy>();
}

}  // namespace mux::core
