// Shared internals of the two Mux translation units (mux.cc, mux_data.cc).
#ifndef MUX_CORE_MUX_INTERNAL_H_
#define MUX_CORE_MUX_INTERNAL_H_

#include <cmath>

#include "src/common/clock.h"
#include "src/vfs/types.h"

namespace mux::core::internal {

inline constexpr vfs::InodeNum kRootIno = 1;

// File temperature decays by half every simulated second.
inline double Decay(double temperature, SimTime dt_ns) {
  if (dt_ns == 0) {
    return temperature;
  }
  return temperature * std::pow(0.5, static_cast<double>(dt_ns) / 1e9);
}

}  // namespace mux::core::internal

#endif  // MUX_CORE_MUX_INTERNAL_H_
