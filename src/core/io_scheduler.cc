#include "src/core/io_scheduler.h"

#include <algorithm>
#include <thread>

namespace mux::core {

std::string_view SchedAlgoName(SchedAlgo algo) {
  switch (algo) {
    case SchedAlgo::kFifo:
      return "fifo";
    case SchedAlgo::kCostBased:
      return "cost";
    case SchedAlgo::kElevator:
      return "elevator";
  }
  return "?";
}

IoScheduler::IoScheduler(SchedAlgo algo, SimClock* clock,
                         obs::MetricsRegistry* metrics)
    : algo_(algo), clock_(clock), metrics_(metrics) {}

void IoScheduler::RegisterTier(const TierInfo& tier) {
  std::lock_guard<std::mutex> lock(mu_);
  profiles_[tier.id] = tier.profile;
  queues_[tier.id];
  head_positions_[tier.id] = 0;
}

SimTime IoScheduler::Estimate(const IoRequest& request) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = profiles_.find(request.tier);
  if (it == profiles_.end()) {
    return 0;
  }
  const auto& profile = it->second;
  SimTime cost = request.is_write ? profile.EstimateWriteNs(request.bytes)
                                  : profile.EstimateReadNs(request.bytes);
  if (profile.full_seek_ns > 0) {
    // Half-stroke expected seek for a random request.
    cost += profile.full_seek_ns / 2;
  }
  return cost;
}

Status IoScheduler::Submit(IoRequest request) {
  if (request.execute == nullptr) {
    return InvalidArgumentError("request without an execute function");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queues_.find(request.tier);
  if (it == queues_.end()) {
    return NotFoundError("tier not registered with scheduler");
  }
  request.enqueue_ns = clock_->Now();
  it->second.push_back(std::move(request));
  stats_.submitted++;
  return Status::Ok();
}

size_t IoScheduler::PickLocked(const std::deque<IoRequest>& queue,
                               uint64_t head_position) const {
  size_t best = 0;
  // Priority first, always.
  int best_priority = queue[0].priority;
  for (size_t i = 1; i < queue.size(); ++i) {
    if (queue[i].priority < best_priority) {
      best_priority = queue[i].priority;
    }
  }
  auto eligible = [&](const IoRequest& r) {
    return r.priority == best_priority;
  };
  switch (algo_) {
    case SchedAlgo::kFifo: {
      for (size_t i = 0; i < queue.size(); ++i) {
        if (eligible(queue[i])) {
          return i;
        }
      }
      return 0;
    }
    case SchedAlgo::kCostBased: {
      SimTime best_cost = UINT64_MAX;
      for (size_t i = 0; i < queue.size(); ++i) {
        if (!eligible(queue[i])) {
          continue;
        }
        const auto& profile = profiles_.at(queue[i].tier);
        const SimTime cost =
            queue[i].is_write ? profile.EstimateWriteNs(queue[i].bytes)
                              : profile.EstimateReadNs(queue[i].bytes);
        if (cost < best_cost) {
          best_cost = cost;
          best = i;
        }
      }
      return best;
    }
    case SchedAlgo::kElevator: {
      // Closest offset at or after the head position; wrap to the smallest.
      // Explicit found/have_wrap flags instead of UINT64_MAX sentinels: a
      // request sitting at offset UINT64_MAX can never win a strict `<`
      // against the sentinel, so the sentinel version fell through to
      // index 0 even when that request was ineligible (priority inversion).
      bool found = false;
      uint64_t best_offset = 0;
      bool have_wrap = false;
      size_t wrap = 0;
      uint64_t wrap_offset = 0;
      for (size_t i = 0; i < queue.size(); ++i) {
        if (!eligible(queue[i])) {
          continue;
        }
        if (queue[i].offset >= head_position &&
            (!found || queue[i].offset < best_offset)) {
          best_offset = queue[i].offset;
          best = i;
          found = true;
        }
        if (!have_wrap || queue[i].offset < wrap_offset) {
          wrap_offset = queue[i].offset;
          wrap = i;
          have_wrap = true;
        }
      }
      // At least one request carries best_priority, so wrap is always set.
      return found ? best : wrap;
    }
  }
  return best;
}

Result<bool> IoScheduler::RunOne(TierId tier) {
  IoRequest request;
  SimTime est_cost = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queues_.find(tier);
    if (it == queues_.end()) {
      return NotFoundError("tier not registered with scheduler");
    }
    if (it->second.empty()) {
      return false;
    }
    const size_t idx = PickLocked(it->second, head_positions_[tier]);
    request = std::move(it->second[idx]);
    it->second.erase(it->second.begin() + static_cast<long>(idx));
    const auto& profile = profiles_.at(tier);
    est_cost = request.is_write ? profile.EstimateWriteNs(request.bytes)
                                : profile.EstimateReadNs(request.bytes);
    if (metrics_ != nullptr) {
      metrics_->Observe("sched.queue_wait_ns",
                        clock_->Now() - request.enqueue_ns);
    }
  }
  const SimTime service_start = clock_->Now();
  Status status = request.execute();
  if (metrics_ != nullptr) {
    metrics_->Observe("sched.service_ns", clock_->Now() - service_start);
  }
  std::lock_guard<std::mutex> lock(mu_);
  // dispatched is counted here, after execute(), so a stats() snapshot taken
  // mid-flight never shows a request as dispatched before its failure or
  // cost has been recorded (tear-free counters for concurrent observers).
  stats_.dispatched++;
  if (!status.ok()) {
    // A failed request did no media work: the elevator head has not moved
    // and no estimated cost was actually dispatched. Updating those before
    // execute() (as this used to) skewed head scheduling and the cost
    // accounting on faulting tiers.
    stats_.failures++;
    stats_.failed_tiers[tier]++;
    stats_.last_error = status;
    return status;
  }
  head_positions_[tier] = request.offset + request.bytes;
  stats_.est_cost_dispatched_ns += est_cost;
  return true;
}

// One kAsync round: drain every queue through the submission rings and
// await the completions. Returns the number of successfully executed
// requests; stats are recorded by the continuations as completions arrive.
uint64_t IoScheduler::RunAllAsyncRound() {
  const SimTime start = clock_->Now();
  struct Picked {
    IoRequest request;
    SimTime est_cost = 0;
  };
  std::vector<Picked> picked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [tier, queue] : queues_) {
      // Pop in algorithm order, tracking a provisional elevator head so the
      // pick sequence matches what serial dispatch would choose. The real
      // head still only moves on *successful* completion.
      uint64_t head = head_positions_[tier];
      while (!queue.empty()) {
        const size_t idx = PickLocked(queue, head);
        Picked p;
        p.request = std::move(queue[idx]);
        queue.erase(queue.begin() + static_cast<long>(idx));
        const auto& profile = profiles_.at(tier);
        p.est_cost = p.request.is_write
                         ? profile.EstimateWriteNs(p.request.bytes)
                         : profile.EstimateReadNs(p.request.bytes);
        head = p.request.offset + p.request.bytes;
        if (metrics_ != nullptr) {
          metrics_->Observe("sched.queue_wait_ns",
                            start - p.request.enqueue_ns);
        }
        picked.push_back(std::move(p));
      }
    }
  }
  if (picked.empty()) {
    return 0;
  }

  uint64_t executed = 0;
  std::vector<AsyncIoRequest> submissions;
  submissions.reserve(picked.size());
  for (Picked& p : picked) {
    AsyncIoRequest submission;
    submission.queue = p.request.tier;
    submission.is_write = p.request.is_write;
    submission.bytes = p.request.bytes;
    submission.origin = start;
    submission.fn = std::move(p.request.execute);
    const TierId tier = p.request.tier;
    const uint64_t head_end = p.request.offset + p.request.bytes;
    const SimTime est_cost = p.est_cost;
    submission.on_complete =
        [this, tier, head_end, est_cost, &executed](
            const AsyncCompletion& completion) {
          // Runs on a resume worker (or the dispatcher in legacy mode);
          // `executed` is safe to touch because the round join below orders
          // it after every continuation.
          std::lock_guard<std::mutex> lock(mu_);
          stats_.dispatched++;
          if (!completion.status.ok()) {
            stats_.failures++;
            stats_.failed_tiers[tier]++;
            stats_.last_error = completion.status;
            return;
          }
          executed++;
          head_positions_[tier] = head_end;
          stats_.est_cost_dispatched_ns += est_cost;
          if (metrics_ != nullptr) {
            metrics_->Observe("sched.service_ns", completion.service_ns());
          }
        };
    submissions.push_back(std::move(submission));
  }
  // Join the round's completions. Default: non-blocking FanIn whose final
  // continuation signals a plain OpEvent the drain thread waits on — no
  // CompletionGroup::Await on this path. The blocking group survives only
  // for the legacy no-resume-pool configuration.
  // Tier rings are unbounded, so submits cannot reject; if one ever did,
  // the continuation contract still fires the join continuation (as a
  // cancelled completion), so neither join below can hang.
  AsyncJoined joined;
  if (async_->resume_workers() > 0) {
    OpEvent event;
    auto fan = FanIn::Create(submissions.size(),
                             [&joined, &event](const AsyncJoined& j) {
                               joined = j;
                               event.Signal();
                             });
    for (AsyncIoRequest& submission : submissions) {
      submission.on_complete = fan->Add(std::move(submission.on_complete));
      (void)async_->Submit(std::move(submission));
    }
    event.Wait();
  } else {
    CompletionGroup group;
    for (AsyncIoRequest& submission : submissions) {
      submission.on_complete = group.Add(std::move(submission.on_complete));
      (void)async_->Submit(std::move(submission));
    }
    joined = group.Await();
  }
  // Same doctrine as the kParallel fix below: only requests that actually
  // dispatched successfully performed media work, so the round clock
  // advances by the slowest *successful* completion.
  clock_->AdvanceTo(start + joined.max_ok_total_ns);
  if (metrics_ != nullptr) {
    metrics_->Increment("sched.async_drain.rounds");
    metrics_->Add("sched.async_drain.requests", picked.size());
    metrics_->Observe("sched.async_drain.max_ns", joined.max_ok_total_ns);
    metrics_->Observe("sched.async_drain.sum_ns", joined.sum_service_ns);
  }
  return executed;
}

Result<uint64_t> IoScheduler::RunAll(DrainMode mode) {
  if (mode == DrainMode::kAsync && async_ == nullptr) {
    mode = DrainMode::kParallel;  // closest blocking semantics
  }
  uint64_t executed = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    std::vector<TierId> tiers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [tier, queue] : queues_) {
        if (!queue.empty()) {
          tiers.push_back(tier);
        }
      }
    }
    if (mode == DrainMode::kAsync && !tiers.empty()) {
      executed += RunAllAsyncRound();
      progress = true;
      continue;
    }
    if (mode == DrainMode::kParallel && tiers.size() > 1) {
      // One drain thread per busy tier. Each thread charges its simulated
      // time to a private cursor anchored at the common start, so the
      // per-tier drains overlap: the shared clock moves by max, not sum.
      const SimTime start = clock_->Now();
      std::vector<SimTime> elapsed(tiers.size(), 0);
      std::vector<uint64_t> ran_counts(tiers.size(), 0);
      std::vector<std::thread> drains;
      drains.reserve(tiers.size());
      for (size_t i = 0; i < tiers.size(); ++i) {
        drains.emplace_back([this, &tiers, &elapsed, &ran_counts, start, i] {
          ScopedTimeCursor cursor(clock_, start);
          for (;;) {
            auto ran = RunOne(tiers[i]);
            if (!ran.ok()) {
              continue;  // failure already recorded in stats_; keep draining
            }
            if (!*ran) {
              break;  // tier queue empty
            }
            ran_counts[i]++;
          }
          elapsed[i] = cursor.Release();
        });
      }
      SimTime max_ns = 0;
      SimTime sum_ns = 0;
      for (size_t i = 0; i < drains.size(); ++i) {
        drains[i].join();
        executed += ran_counts[i];
        // The round clock advances by the slowest tier that actually
        // dispatched. A tier whose requests all FAILED still accumulated
        // cursor time inside the failing execute() calls, but per the
        // RunOne doctrine a failed request did no media work — letting its
        // elapsed time win the max inflated the round for every other tier
        // (e.g. a faulted HDD drain stretching an SSD-only round).
        if (ran_counts[i] > 0) {
          max_ns = std::max(max_ns, elapsed[i]);
        }
        sum_ns += elapsed[i];
        progress = true;
      }
      clock_->AdvanceTo(start + max_ns);
      if (metrics_ != nullptr) {
        metrics_->Increment("sched.parallel_drain.rounds");
        metrics_->Add("sched.parallel_drain.tiers", tiers.size());
        metrics_->Observe("sched.parallel_drain.max_ns", max_ns);
        metrics_->Observe("sched.parallel_drain.sum_ns", sum_ns);
      }
      continue;
    }
    for (TierId tier : tiers) {
      auto ran = RunOne(tier);
      if (!ran.ok()) {
        // The request was consumed and its failure recorded in stats_;
        // keep draining so one bad tier cannot starve the others' work.
        progress = true;
        continue;
      }
      if (*ran) {
        executed++;
        progress = true;
      }
    }
  }
  return executed;
}

size_t IoScheduler::Pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [tier, queue] : queues_) {
    total += queue.size();
  }
  return total;
}

SchedulerStats IoScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mux::core
