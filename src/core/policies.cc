// Built-in tiering policies and the policy registry.
#include <algorithm>

#include "src/core/policy.h"
#include "src/vfs/path.h"

namespace mux::core {

PolicyRegistry& PolicyRegistry::Global() {
  static PolicyRegistry* registry = new PolicyRegistry();
  return *registry;
}

Status PolicyRegistry::Register(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = factories_.emplace(name, std::move(factory));
  if (!inserted) {
    return ExistsError("policy already registered: " + name);
  }
  return Status::Ok();
}

Result<std::unique_ptr<TieringPolicy>> PolicyRegistry::Create(
    const std::string& name, const std::string& args) {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      return NotFoundError("unknown policy: " + name);
    }
    factory = it->second;
  }
  return factory(args);
}

std::vector<std::string> PolicyRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

namespace {

// Fastest tier whose free space can absorb `need` bytes plus slack.
TierId FastestWithSpace(const std::vector<TierUsage>& tiers, uint64_t need) {
  for (const TierUsage& tier : tiers) {
    if (tier.free_bytes > need + tier.capacity_bytes / 64) {
      return tier.id;
    }
  }
  return tiers.empty() ? kInvalidTier : tiers.back().id;
}

// ---- LRU demote/promote (the paper's evaluation policy, §3.1) -------------
// "a simple LRU policy that evicts cold data to the slower device if no
// space is left on faster devices, and promotes data back upon access."
class LruPolicy : public TieringPolicy {
 public:
  LruPolicy(double high, double low, SimTime promote_window)
      : high_(high), low_(low), promote_window_(promote_window) {}

  std::string_view Name() const override { return "lru"; }

  TierId PlaceWrite(const PlacementContext& ctx) override {
    return FastestWithSpace(*ctx.tiers, ctx.io_size);
  }

  std::vector<MigrationTask> PlanMigrations(const TieringView& view) override {
    std::vector<MigrationTask> tasks;
    // Demotion: per over-watermark tier, evict coldest files downward.
    for (size_t t = 0; t < view.tiers.size(); ++t) {
      const TierUsage& tier = view.tiers[t];
      if (tier.UsedFraction() <= high_ || t + 1 >= view.tiers.size()) {
        continue;
      }
      const TierId below = view.tiers[t + 1].id;
      // Coldest first.
      std::vector<const FileView*> on_tier;
      for (const FileView& file : view.files) {
        auto it = file.blocks_per_tier.find(tier.id);
        if (it != file.blocks_per_tier.end() && it->second > 0) {
          on_tier.push_back(&file);
        }
      }
      std::sort(on_tier.begin(), on_tier.end(),
                [](const FileView* a, const FileView* b) {
                  return a->last_access < b->last_access;
                });
      uint64_t to_free =
          static_cast<uint64_t>((tier.UsedFraction() - low_) *
                                static_cast<double>(tier.capacity_bytes));
      for (const FileView* file : on_tier) {
        if (to_free == 0) {
          break;
        }
        tasks.push_back(MigrationTask{file->path, tier.id, below, 0, 0});
        const uint64_t bytes = file->blocks_per_tier.at(tier.id) * 4096;
        to_free -= std::min(to_free, bytes);
      }
    }
    // Promotion: recently accessed files with blocks below a tier that has
    // room move back up.
    if (!view.tiers.empty()) {
      const TierUsage& fastest = view.tiers.front();
      if (fastest.UsedFraction() < low_) {
        for (const FileView& file : view.files) {
          if (view.now - file.last_access > promote_window_) {
            continue;
          }
          for (const auto& [tier_id, blocks] : file.blocks_per_tier) {
            if (tier_id != fastest.id && blocks > 0) {
              tasks.push_back(
                  MigrationTask{file.path, tier_id, fastest.id, 0, 0});
            }
          }
        }
      }
    }
    return tasks;
  }

 private:
  const double high_;
  const double low_;
  const SimTime promote_window_;
};

// ---- TPFS-style placement ---------------------------------------------------
// "the data placement policy of TPFS can be simply implemented by a function
// that returns different device IDs based on the I/O size, synchronicity,
// and access history" (§2.1).
class TpfsPolicy : public TieringPolicy {
 public:
  TpfsPolicy(uint64_t small_io, uint64_t large_io, double hot_threshold)
      : small_io_(small_io), large_io_(large_io),
        hot_threshold_(hot_threshold) {}

  std::string_view Name() const override { return "tpfs"; }

  TierId PlaceWrite(const PlacementContext& ctx) override {
    const auto& tiers = *ctx.tiers;
    if (tiers.empty()) {
      return kInvalidTier;
    }
    // Rank selection: sync/small/hot data to PM, large streaming writes to
    // the slow device, the rest to the middle.
    size_t rank;
    if (ctx.is_sync || ctx.io_size <= small_io_ ||
        ctx.temperature >= hot_threshold_) {
      rank = 0;
    } else if (ctx.io_size >= large_io_) {
      rank = tiers.size() - 1;
    } else {
      rank = tiers.size() / 2;
    }
    // Fall downward if the chosen tier is out of space.
    for (size_t i = rank; i < tiers.size(); ++i) {
      if (tiers[i].free_bytes > ctx.io_size + tiers[i].capacity_bytes / 64) {
        return tiers[i].id;
      }
    }
    return tiers.back().id;
  }

  std::vector<MigrationTask> PlanMigrations(const TieringView& view) override {
    // TPFS is placement-driven; keep a safety demotion for full fast tiers.
    std::vector<MigrationTask> tasks;
    for (size_t t = 0; t + 1 < view.tiers.size(); ++t) {
      const TierUsage& tier = view.tiers[t];
      if (tier.UsedFraction() <= 0.95) {
        continue;
      }
      for (const FileView& file : view.files) {
        auto it = file.blocks_per_tier.find(tier.id);
        if (it != file.blocks_per_tier.end() && it->second > 0 &&
            file.temperature < hot_threshold_) {
          tasks.push_back(MigrationTask{file.path, tier.id,
                                        view.tiers[t + 1].id, 0, 0});
        }
      }
    }
    return tasks;
  }

 private:
  const uint64_t small_io_;
  const uint64_t large_io_;
  const double hot_threshold_;
};

// ---- Hot/cold classification ------------------------------------------------
class HotColdPolicy : public TieringPolicy {
 public:
  HotColdPolicy(double hot, double cold) : hot_(hot), cold_(cold) {}

  std::string_view Name() const override { return "hotcold"; }

  TierId PlaceWrite(const PlacementContext& ctx) override {
    const auto& tiers = *ctx.tiers;
    if (tiers.empty()) {
      return kInvalidTier;
    }
    if (ctx.temperature >= hot_) {
      return FastestWithSpace(tiers, ctx.io_size);
    }
    if (ctx.temperature <= cold_) {
      return tiers.back().id;
    }
    return tiers[tiers.size() / 2].id;
  }

  std::vector<MigrationTask> PlanMigrations(const TieringView& view) override {
    std::vector<MigrationTask> tasks;
    if (view.tiers.size() < 2) {
      return tasks;
    }
    const TierId fastest = view.tiers.front().id;
    const TierId slowest = view.tiers.back().id;
    for (const FileView& file : view.files) {
      if (file.temperature >= hot_) {
        // Everything not already on the fastest tier moves up.
        for (const auto& [tier_id, blocks] : file.blocks_per_tier) {
          if (tier_id != fastest && blocks > 0) {
            tasks.push_back(MigrationTask{file.path, tier_id, fastest, 0, 0});
          }
        }
      } else if (file.temperature <= cold_) {
        for (const auto& [tier_id, blocks] : file.blocks_per_tier) {
          if (tier_id != slowest && blocks > 0) {
            tasks.push_back(MigrationTask{file.path, tier_id, slowest, 0, 0});
          }
        }
      }
    }
    return tasks;
  }

 private:
  const double hot_;
  const double cold_;
};

// ---- Static pinning ----------------------------------------------------------
class PinPolicy : public TieringPolicy {
 public:
  explicit PinPolicy(const std::string& rules) {
    // "prefix=tier_name,prefix=tier_name"
    size_t pos = 0;
    while (pos < rules.size()) {
      const size_t comma = rules.find(',', pos);
      const std::string rule =
          rules.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
      const size_t eq = rule.find('=');
      if (eq != std::string::npos) {
        rules_.emplace_back(rule.substr(0, eq), rule.substr(eq + 1));
      }
      if (comma == std::string::npos) {
        break;
      }
      pos = comma + 1;
    }
  }

  std::string_view Name() const override { return "pin"; }

  TierId PlaceWrite(const PlacementContext& ctx) override {
    for (const auto& [prefix, tier_name] : rules_) {
      if (vfs::PathHasPrefix(std::string(ctx.path), prefix)) {
        for (const TierUsage& tier : *ctx.tiers) {
          if (tier.name == tier_name) {
            return tier.id;
          }
        }
      }
    }
    return FastestWithSpace(*ctx.tiers, ctx.io_size);
  }

  std::vector<MigrationTask> PlanMigrations(const TieringView& view) override {
    // Pins are absolute: move misplaced blocks to their pinned tier.
    std::vector<MigrationTask> tasks;
    for (const FileView& file : view.files) {
      TierId pinned = kInvalidTier;
      for (const auto& [prefix, tier_name] : rules_) {
        if (vfs::PathHasPrefix(file.path, prefix)) {
          for (const TierUsage& tier : view.tiers) {
            if (tier.name == tier_name) {
              pinned = tier.id;
            }
          }
          break;
        }
      }
      if (pinned == kInvalidTier) {
        continue;
      }
      for (const auto& [tier_id, blocks] : file.blocks_per_tier) {
        if (tier_id != pinned && blocks > 0) {
          tasks.push_back(MigrationTask{file.path, tier_id, pinned, 0, 0});
        }
      }
    }
    return tasks;
  }

 private:
  std::vector<std::pair<std::string, std::string>> rules_;
};

// ---- Mirror-optimized tiering (MOST) ----------------------------------------
// Multi-residency-aware policy: cold primaries demote LRU-style, but hot
// files gain an *additional* copy on the fastest tier instead of moving —
// the slow copy keeps capacity pressure off the fast tier while the fast
// copy serves reads. Replica bytes are budgeted separately from primaries so
// mirrors never starve real placement.
class MirrorPolicy : public TieringPolicy {
 public:
  MirrorPolicy(double hot_threshold, double high_watermark,
               double replica_budget_fraction)
      : hot_(hot_threshold), high_(high_watermark),
        replica_budget_(replica_budget_fraction) {}

  std::string_view Name() const override { return "mirror"; }

  TierId PlaceWrite(const PlacementContext& ctx) override {
    return FastestWithSpace(*ctx.tiers, ctx.io_size);
  }

  std::vector<MigrationTask> PlanMigrations(const TieringView& view) override {
    std::vector<MigrationTask> tasks;
    if (view.tiers.size() < 2) {
      return tasks;
    }
    const TierUsage& fastest = view.tiers.front();
    constexpr uint64_t kBlock = 4096;

    // Current replica load on the fastest tier, and the budget it may grow
    // to (a fraction of capacity; mirrors are a cache, not a tenant).
    uint64_t replica_bytes = 0;
    for (const FileView& file : view.files) {
      auto it = file.replica_blocks_per_tier.find(fastest.id);
      if (it != file.replica_blocks_per_tier.end()) {
        replica_bytes += it->second * kBlock;
      }
    }
    const uint64_t budget = static_cast<uint64_t>(
        replica_budget_ * static_cast<double>(fastest.capacity_bytes));

    // 1. Over budget or over watermark: drop the coldest mirrored files'
    //    extra copies first — reclaim is a punch, not a copy.
    if (replica_bytes > budget || fastest.UsedFraction() > high_) {
      std::vector<const FileView*> mirrored;
      for (const FileView& file : view.files) {
        auto it = file.replica_blocks_per_tier.find(fastest.id);
        if (it != file.replica_blocks_per_tier.end() && it->second > 0) {
          mirrored.push_back(&file);
        }
      }
      std::sort(mirrored.begin(), mirrored.end(),
                [](const FileView* a, const FileView* b) {
                  return a->last_access < b->last_access;
                });
      uint64_t over = replica_bytes > budget ? replica_bytes - budget : 0;
      if (fastest.UsedFraction() > high_) {
        over = std::max(over, static_cast<uint64_t>(
            (fastest.UsedFraction() - high_) *
            static_cast<double>(fastest.capacity_bytes)));
      }
      for (const FileView* file : mirrored) {
        if (over == 0) {
          break;
        }
        tasks.push_back(MigrationTask{file->path, kInvalidTier, fastest.id, 0,
                                      0, MigrationKind::kDropReplica});
        const uint64_t bytes =
            file->replica_blocks_per_tier.at(fastest.id) * kBlock;
        over -= std::min(over, bytes);
        replica_bytes -= std::min(replica_bytes, bytes);
      }
    }

    // 2. Hot files whose primaries live below gain a mirror copy on the
    //    fastest tier, hottest first, while space and budget allow.
    std::vector<const FileView*> hot;
    for (const FileView& file : view.files) {
      if (file.temperature < hot_) {
        continue;
      }
      auto mirrored = file.replica_blocks_per_tier.find(fastest.id);
      if (mirrored != file.replica_blocks_per_tier.end() &&
          mirrored->second > 0) {
        continue;  // already mirrored up
      }
      uint64_t below_blocks = 0;
      for (const auto& [tier_id, blocks] : file.blocks_per_tier) {
        if (tier_id != fastest.id) {
          below_blocks += blocks;
        }
      }
      if (below_blocks > 0) {
        hot.push_back(&file);
      }
    }
    std::sort(hot.begin(), hot.end(),
              [](const FileView* a, const FileView* b) {
                return a->temperature > b->temperature;
              });
    uint64_t free = fastest.free_bytes;
    const uint64_t floor = fastest.capacity_bytes / 64;
    for (const FileView* file : hot) {
      const uint64_t bytes = file->size;
      if (replica_bytes + bytes > budget || free < bytes + floor) {
        continue;
      }
      tasks.push_back(MigrationTask{file->path, kInvalidTier, fastest.id, 0,
                                    0, MigrationKind::kAddReplica});
      replica_bytes += bytes;
      free -= bytes;
    }

    // 3. Safety demotion of cold primaries when a tier overfills, same shape
    //    as LRU (mirrors alone cannot fix primary capacity pressure).
    for (size_t t = 0; t + 1 < view.tiers.size(); ++t) {
      const TierUsage& tier = view.tiers[t];
      if (tier.UsedFraction() <= high_) {
        continue;
      }
      const TierId below = view.tiers[t + 1].id;
      std::vector<const FileView*> on_tier;
      for (const FileView& file : view.files) {
        auto it = file.blocks_per_tier.find(tier.id);
        if (it != file.blocks_per_tier.end() && it->second > 0 &&
            file.temperature < hot_) {
          on_tier.push_back(&file);
        }
      }
      std::sort(on_tier.begin(), on_tier.end(),
                [](const FileView* a, const FileView* b) {
                  return a->last_access < b->last_access;
                });
      uint64_t to_free = static_cast<uint64_t>(
          (tier.UsedFraction() - high_) *
          static_cast<double>(tier.capacity_bytes));
      for (const FileView* file : on_tier) {
        if (to_free == 0) {
          break;
        }
        tasks.push_back(MigrationTask{file->path, tier.id, below, 0, 0,
                                      MigrationKind::kMove});
        const uint64_t bytes = file->blocks_per_tier.at(tier.id) * kBlock;
        to_free -= std::min(to_free, bytes);
      }
    }
    return tasks;
  }

 private:
  const double hot_;
  const double high_;
  const double replica_budget_;
};

// Registers the built-ins exactly once, on first registry use.
struct BuiltinRegistrar {
  BuiltinRegistrar() {
    auto& registry = PolicyRegistry::Global();
    (void)registry.Register("lru", [](const std::string&) {
      return MakeLruPolicy();
    });
    (void)registry.Register("tpfs", [](const std::string&) {
      return MakeTpfsPolicy();
    });
    (void)registry.Register("hotcold", [](const std::string&) {
      return MakeHotColdPolicy();
    });
    (void)registry.Register("pin", [](const std::string& args) {
      return MakePinPolicy(args);
    });
    (void)registry.Register("mirror", [](const std::string&) {
      return MakeMirrorPolicy();
    });
  }
};
const BuiltinRegistrar g_builtin_registrar;

}  // namespace

std::unique_ptr<TieringPolicy> MakeLruPolicy(double high_watermark,
                                             double low_watermark,
                                             SimTime promote_window_ns) {
  return std::make_unique<LruPolicy>(high_watermark, low_watermark,
                                     promote_window_ns);
}

std::unique_ptr<TieringPolicy> MakeTpfsPolicy(uint64_t small_io_bytes,
                                              uint64_t large_io_bytes,
                                              double hot_threshold) {
  return std::make_unique<TpfsPolicy>(small_io_bytes, large_io_bytes,
                                      hot_threshold);
}

std::unique_ptr<TieringPolicy> MakeHotColdPolicy(double hot_threshold,
                                                 double cold_threshold) {
  return std::make_unique<HotColdPolicy>(hot_threshold, cold_threshold);
}

std::unique_ptr<TieringPolicy> MakePinPolicy(const std::string& rules) {
  return std::make_unique<PinPolicy>(rules);
}

std::unique_ptr<TieringPolicy> MakeMirrorPolicy(
    double hot_threshold, double high_watermark,
    double replica_budget_fraction) {
  return std::make_unique<MirrorPolicy>(hot_threshold, high_watermark,
                                        replica_budget_fraction);
}

}  // namespace mux::core
