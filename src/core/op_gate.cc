#include "src/core/op_gate.h"

#include <utility>

namespace mux::core {

void OpGate::lock() {
  std::unique_lock<std::mutex> lock(mu_);
  if (CanAcquireLocked(/*exclusive=*/true)) {
    writer_ = true;
    return;
  }
  bool granted = false;
  waiters_.push_back(Waiter{/*exclusive=*/true, &granted, nullptr});
  cv_.wait(lock, [&granted] { return granted; });
}

bool OpGate::try_lock() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!CanAcquireLocked(/*exclusive=*/true)) {
    return false;
  }
  writer_ = true;
  return true;
}

void OpGate::unlock() { ReleaseExclusive(); }

void OpGate::lock_shared() {
  std::unique_lock<std::mutex> lock(mu_);
  if (CanAcquireLocked(/*exclusive=*/false)) {
    readers_++;
    return;
  }
  bool granted = false;
  waiters_.push_back(Waiter{/*exclusive=*/false, &granted, nullptr});
  cv_.wait(lock, [&granted] { return granted; });
}

bool OpGate::try_lock_shared() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!CanAcquireLocked(/*exclusive=*/false)) {
    return false;
  }
  readers_++;
  return true;
}

void OpGate::unlock_shared() { ReleaseShared(); }

bool OpGate::TryLockOrQueue(GrantFn grant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (CanAcquireLocked(/*exclusive=*/true)) {
    writer_ = true;
    return true;
  }
  waiters_.push_back(Waiter{/*exclusive=*/true, nullptr, std::move(grant)});
  return false;
}

bool OpGate::TryLockSharedOrQueue(GrantFn grant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (CanAcquireLocked(/*exclusive=*/false)) {
    readers_++;
    return true;
  }
  waiters_.push_back(Waiter{/*exclusive=*/false, nullptr, std::move(grant)});
  return false;
}

std::vector<OpGate::GrantFn> OpGate::GrantLocked() {
  std::vector<GrantFn> fire;
  if (waiters_.empty() || writer_) {
    return fire;
  }
  if (waiters_.front().exclusive) {
    if (readers_ != 0) {
      return fire;  // writer waits for the last reader's release
    }
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    writer_ = true;
    if (w.granted != nullptr) {
      *w.granted = true;
      cv_.notify_all();
    } else {
      fire.push_back(std::move(w.grant));
    }
    return fire;
  }
  // Batch: grant every consecutive shared waiter at the head in one pass.
  bool notify = false;
  while (!waiters_.empty() && !waiters_.front().exclusive) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    readers_++;
    if (w.granted != nullptr) {
      *w.granted = true;
      notify = true;
    } else {
      fire.push_back(std::move(w.grant));
    }
  }
  if (notify) {
    cv_.notify_all();
  }
  return fire;
}

void OpGate::ReleaseExclusive() {
  std::vector<GrantFn> fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    writer_ = false;
    fire = GrantLocked();
  }
  for (GrantFn& fn : fire) {
    fn();
  }
}

void OpGate::ReleaseShared() {
  std::vector<GrantFn> fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    readers_--;
    if (readers_ == 0) {
      fire = GrantLocked();
    }
  }
  for (GrantFn& fn : fire) {
    fn();
  }
}

}  // namespace mux::core
