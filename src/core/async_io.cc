#include "src/core/async_io.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace mux::core {

namespace {

// Min-heap helpers over a vector of channel free times.
struct ChannelGreater {
  bool operator()(SimTime a, SimTime b) const { return a > b; }
};

}  // namespace

uint64_t AsyncIoCore::WallNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

AsyncIoCore::AsyncIoCore(SimClock* clock, obs::MetricsRegistry* metrics,
                         int resume_workers)
    : clock_(clock),
      metrics_(metrics),
      resume_worker_count_(resume_workers < 0 ? 0 : resume_workers) {
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  resume_pool_.reserve(static_cast<size_t>(resume_worker_count_));
  for (int i = 0; i < resume_worker_count_; ++i) {
    resume_pool_.emplace_back([this] { ResumeLoop(); });
  }
}

AsyncIoCore::~AsyncIoCore() { Shutdown(); }

void AsyncIoCore::RegisterQueue(TierId queue, std::string name,
                                uint32_t queue_depth, int servers,
                                size_t bound) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = rings_[queue];
  if (slot != nullptr) {
    return;  // idempotent
  }
  slot = std::make_unique<Ring>();
  Ring* ring = slot.get();
  ring->name = std::move(name);
  ring->qdepth_metric = "sched.qdepth." + ring->name;
  ring->depth = queue_depth < 1 ? 1 : queue_depth;
  ring->bound = bound;
  ring->channels.assign(ring->depth, 0);  // all channels free at t=0
  const int n = servers < 1 ? 1 : servers;
  ring->servers.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ring->servers.emplace_back([this, ring] { ServerLoop(ring); });
  }
}

void AsyncIoCore::UnregisterQueue(TierId queue) {
  std::unique_ptr<Ring> ring;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rings_.find(queue);
    if (it == rings_.end()) {
      return;
    }
    ring = std::move(it->second);
    rings_.erase(it);
  }
  StopRing(ring.get());
}

void AsyncIoCore::Shutdown() {
  std::map<TierId, std::unique_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings.swap(rings_);
  }
  for (auto& [queue, ring] : rings) {
    StopRing(ring.get());
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    if (done_stop_) {
      return;  // second Shutdown (e.g. explicit call then destructor)
    }
    done_stop_ = true;
  }
  done_cv_.notify_all();
  if (dispatcher_.joinable()) {
    dispatcher_.join();
  }
  // The dispatcher has drained; nothing feeds the resume queue any more
  // except inline fallbacks (which bypass it). Workers drain what is queued
  // before exiting, so no resumption is ever dropped.
  {
    std::lock_guard<std::mutex> lock(resume_mu_);
    resume_stop_ = true;
  }
  resume_cv_.notify_all();
  for (std::thread& t : resume_pool_) {
    t.join();
  }
}

void AsyncIoCore::StopRing(Ring* ring) {
  {
    std::lock_guard<std::mutex> lock(ring->mu);
    ring->stop = true;
  }
  ring->cv.notify_all();
  for (std::thread& t : ring->servers) {
    t.join();
  }
  // Servers drain the ring before exiting; belt-and-braces for anything that
  // slipped in between their last check and the map erase: run inline.
  std::deque<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lock(ring->mu);
    leftovers.swap(ring->queue);
  }
  for (Pending& p : leftovers) {
    RunInline(std::move(p.request));
  }
}

Result<AsyncTicket> AsyncIoCore::Submit(AsyncIoRequest request) {
  if (request.fn == nullptr) {
    return InvalidArgumentError("async submit without a request function");
  }
  if (request.on_complete == nullptr) {
    return InvalidArgumentError("async submit without a continuation");
  }
  AsyncTicket ticket;
  bool reject = false;
  {
    // mu_ is held across the ring push (lock order mu_ -> ring->mu, same as
    // Cancel/QueueDepth) so the ring cannot be unregistered out from under
    // the submit.
    std::lock_guard<std::mutex> lock(mu_);
    ticket.queue = request.queue;
    ticket.seq = next_seq_++;
    auto it = rings_.find(request.queue);
    if (it != rings_.end()) {
      Ring* ring = it->second.get();
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      if (!ring->stop) {
        if (ring->bound != 0 && ring->queue.size() >= ring->bound) {
          stats_.rejected++;
          reject = true;
        } else {
          stats_.submitted++;
          if (metrics_ != nullptr) {
            metrics_->Observe(ring->qdepth_metric, ring->queue.size() + 1);
          }
          ring->queue.push_back(Pending{ticket.seq, std::move(request)});
          ring->cv.notify_one();
          return ticket;
        }
      }
    }
    if (!reject) {
      stats_.submitted++;
    }
  }
  if (reject) {
    // The continuation contract is exactly-once in every outcome: a
    // rejected request completes inline as cancelled-with-kBusy so awaiters
    // (CompletionGroup) never hang on a completion that was never queued.
    AsyncCompletion completion;
    completion.status = BusyError("submission ring full");
    completion.cancelled = true;
    completion.submit_ns = request.origin;
    completion.start_ns = request.origin;
    completion.complete_ns = request.origin;
    request.on_complete(completion);
    return BusyError("submission ring full");
  }
  // Unknown queue (or already shut down): complete inline so the request is
  // never stranded. The continuation still runs exactly once.
  RunInline(std::move(request));
  return ticket;
}

bool AsyncIoCore::Cancel(const AsyncTicket& ticket) {
  if (!ticket.ok()) {
    return false;
  }
  AsyncIoRequest cancelled_request;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rings_.find(ticket.queue);
    if (it == rings_.end()) {
      return false;
    }
    Ring* ring = it->second.get();
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    for (auto q = ring->queue.begin(); q != ring->queue.end(); ++q) {
      if (q->seq == ticket.seq) {
        cancelled_request = std::move(q->request);
        ring->queue.erase(q);
        break;
      }
    }
  }
  if (cancelled_request.on_complete == nullptr) {
    return false;  // already claimed by a server (or ticket unknown)
  }
  AsyncCompletion completion;
  completion.status = BusyError("cancelled before dispatch");
  completion.cancelled = true;
  completion.submit_ns = cancelled_request.origin;
  completion.start_ns = cancelled_request.origin;
  completion.complete_ns = cancelled_request.origin;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.cancelled++;
  }
  PushDone(Done{std::move(cancelled_request.on_complete), completion,
                WallNs()});
  return true;
}

size_t AsyncIoCore::QueueDepth(TierId queue) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rings_.find(queue);
  if (it == rings_.end()) {
    return 0;
  }
  std::lock_guard<std::mutex> ring_lock(it->second->mu);
  return it->second->queue.size();
}

AsyncCoreStats AsyncIoCore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AsyncIoCore::ServerLoop(Ring* ring) {
  for (;;) {
    Pending pending;
    SimTime start = 0;
    {
      std::unique_lock<std::mutex> lock(ring->mu);
      // A request needs both a queued entry and a free channel. Channels go
      // missing while another server is mid-service (it reserved one), so
      // wait for either to appear; stop only once the ring is drained.
      ring->cv.wait(lock, [ring] {
        return (ring->stop && ring->queue.empty()) ||
               (!ring->queue.empty() && !ring->channels.empty());
      });
      if (ring->queue.empty()) {
        return;  // stop requested and nothing left to drain
      }
      pending = std::move(ring->queue.front());
      ring->queue.pop_front();
      // Claim the earliest-free simulated channel: service starts when both
      // the request has arrived and a channel is idle. This is where
      // queue_depth bites — a single-channel HDD serializes a burst that a
      // 16-deep SSD absorbs with zero added wait.
      std::pop_heap(ring->channels.begin(), ring->channels.end(),
                    ChannelGreater{});
      const SimTime channel_free = ring->channels.back();
      ring->channels.pop_back();
      start = std::max(pending.request.origin, channel_free);
    }

    AsyncCompletion completion;
    completion.submit_ns = pending.request.origin;
    completion.start_ns = start;
    {
      ScopedTimeCursor cursor(clock_, start);
      completion.status = pending.request.fn();
      completion.complete_ns = start + cursor.Release();
    }

    {
      std::lock_guard<std::mutex> lock(ring->mu);
      ring->channels.push_back(completion.complete_ns);
      std::push_heap(ring->channels.begin(), ring->channels.end(),
                     ChannelGreater{});
    }
    // A channel came free: wake a server that may be parked waiting for one.
    ring->cv.notify_one();

    if (metrics_ != nullptr) {
      metrics_->Observe("sched.qdepth.wait_ns", completion.wait_ns());
    }
    PushDone(Done{std::move(pending.request.on_complete), completion,
                  WallNs()});
  }
}

void AsyncIoCore::RunInline(AsyncIoRequest request) {
  AsyncCompletion completion;
  completion.submit_ns = request.origin;
  completion.start_ns = request.origin;
  {
    ScopedTimeCursor cursor(clock_, request.origin);
    completion.status = request.fn();
    completion.complete_ns = request.origin + cursor.Release();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.completed++;
    if (!completion.status.ok()) {
      stats_.failed++;
    }
  }
  request.on_complete(completion);
}

void AsyncIoCore::PushDone(Done done) {
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    if (!done_stop_) {
      done_queue_.push_back(std::move(done));
      done_cv_.notify_one();
      return;
    }
  }
  // Dispatcher already stopped (shutdown path): deliver inline. Exactly-once
  // holds — the entry was never queued.
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.completed++;
    if (!done.completion.status.ok() && !done.completion.cancelled) {
      stats_.failed++;
    }
  }
  done.on_complete(done.completion);
}

void AsyncIoCore::Deliver(Done done) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.completed++;
    if (!done.completion.status.ok() && !done.completion.cancelled) {
      stats_.failed++;
    }
  }
  // The continuation runs with no AsyncIoCore lock held; it may Submit()
  // or Cancel() re-entrantly but must never Await() a group fed by this
  // core (see the lock rules in the header).
  done.on_complete(done.completion);
}

void AsyncIoCore::DispatcherLoop() {
  for (;;) {
    Done done;
    {
      std::unique_lock<std::mutex> lock(done_mu_);
      done_cv_.wait(lock,
                    [this] { return done_stop_ || !done_queue_.empty(); });
      if (done_queue_.empty()) {
        return;  // stopped and drained
      }
      done = std::move(done_queue_.front());
      done_queue_.pop_front();
    }
    const uint64_t dispatched_ns = WallNs();
    if (metrics_ != nullptr) {
      metrics_->Observe("sched.dispatch_ns",
                        dispatched_ns - done.wall_enqueue_ns);
    }
    if (resume_worker_count_ == 0) {
      // Legacy mode: the dispatcher invokes continuations itself. The
      // resume-pool wait is definitionally zero.
      if (metrics_ != nullptr) {
        metrics_->Observe("sched.resume_wait_ns", 0);
        metrics_->Observe("sched.completion_wait_ns",
                          dispatched_ns - done.wall_enqueue_ns);
      }
      Deliver(std::move(done));
      continue;
    }
    // Hand the completion to the resume pool; the dispatcher goes straight
    // back to draining so a slow continuation cannot stall completions.
    const uint64_t enqueue_wall = done.wall_enqueue_ns;
    auto task = [this, done = std::move(done), dispatched_ns,
                 enqueue_wall]() mutable {
      if (metrics_ != nullptr) {
        const uint64_t now = WallNs();
        metrics_->Observe("sched.resume_wait_ns", now - dispatched_ns);
        metrics_->Observe("sched.completion_wait_ns", now - enqueue_wall);
      }
      Deliver(std::move(done));
    };
    Resume(std::move(task));
  }
}

void AsyncIoCore::Resume(std::function<void()> fn) {
  if (resume_worker_count_ > 0) {
    std::unique_lock<std::mutex> lock(resume_mu_);
    if (!resume_stop_) {
      if (metrics_ != nullptr) {
        metrics_->Observe("mux.op.pool_depth", resume_queue_.size() + 1);
      }
      resume_queue_.push_back(ResumeTask{std::move(fn), WallNs()});
      lock.unlock();
      resume_cv_.notify_one();
      return;
    }
  }
  // No pool (ablation) or already shut down: run on the caller.
  fn();
}

void AsyncIoCore::ResumeLoop() {
  for (;;) {
    ResumeTask task;
    {
      std::unique_lock<std::mutex> lock(resume_mu_);
      resume_cv_.wait(lock,
                      [this] { return resume_stop_ || !resume_queue_.empty(); });
      if (resume_queue_.empty()) {
        return;  // stopped and drained
      }
      task = std::move(resume_queue_.front());
      resume_queue_.pop_front();
    }
    if (metrics_ != nullptr) {
      metrics_->Increment("mux.op.resumes");
    }
    task.fn();
  }
}

size_t AsyncIoCore::ResumeQueueDepth() const {
  std::lock_guard<std::mutex> lock(resume_mu_);
  return resume_queue_.size();
}

// ---- FanIn ----------------------------------------------------------------

std::shared_ptr<FanIn> FanIn::Create(size_t expected, DoneFn done) {
  std::shared_ptr<FanIn> fan(new FanIn(expected, std::move(done)));
  if (expected == 0) {
    DoneFn fire;
    fire.swap(fan->done_);
    if (fire) {
      fire(fan->joined_);
    }
  }
  return fan;
}

AsyncContinuation FanIn::Add() { return Add(nullptr); }

AsyncContinuation FanIn::Add(AsyncContinuation inner) {
  return [self = shared_from_this(),
          inner = std::move(inner)](const AsyncCompletion& completion) {
    if (inner) {
      inner(completion);
    }
    self->Arrive(completion);
  };
}

void FanIn::Arrive(const AsyncCompletion& completion) {
  Joined fire_with;
  DoneFn fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    joined_.completed++;
    joined_.max_total_ns = std::max(joined_.max_total_ns,
                                    completion.total_ns());
    joined_.max_wait_ns = std::max(joined_.max_wait_ns, completion.wait_ns());
    joined_.sum_service_ns += completion.service_ns();
    if (completion.cancelled) {
      joined_.cancelled++;
    }
    if (completion.status.ok()) {
      joined_.max_ok_total_ns = std::max(joined_.max_ok_total_ns,
                                         completion.total_ns());
    } else {
      if (!completion.cancelled) {
        joined_.failed++;
      }
      if (joined_.status.ok()) {
        joined_.status = completion.status;
      }
    }
    if (joined_.completed < expected_) {
      return;
    }
    // Last arrival: fire the join inline on this (delivering) thread. The
    // callback is moved out so its captures die with it, not with the
    // shared state.
    fire_with = joined_;
    fire.swap(done_);
  }
  if (fire) {
    fire(fire_with);
  }
}

// ---- CompletionGroup ------------------------------------------------------

std::atomic<uint64_t> CompletionGroup::awaits_{0};

AsyncContinuation CompletionGroup::Add() { return Add(nullptr); }

AsyncContinuation CompletionGroup::Add(AsyncContinuation inner) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    expected_++;
  }
  return [this, inner = std::move(inner)](const AsyncCompletion& completion) {
    if (inner) {
      inner(completion);
    }
    std::lock_guard<std::mutex> lock(mu_);
    joined_.completed++;
    joined_.max_total_ns = std::max(joined_.max_total_ns,
                                    completion.total_ns());
    joined_.max_wait_ns = std::max(joined_.max_wait_ns, completion.wait_ns());
    joined_.sum_service_ns += completion.service_ns();
    if (completion.cancelled) {
      joined_.cancelled++;
    }
    if (completion.status.ok()) {
      joined_.max_ok_total_ns = std::max(joined_.max_ok_total_ns,
                                         completion.total_ns());
    } else {
      if (!completion.cancelled) {
        joined_.failed++;
      }
      if (joined_.status.ok()) {
        joined_.status = completion.status;
      }
    }
    cv_.notify_all();
  };
}

CompletionGroup::Joined CompletionGroup::Await() {
  awaits_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return joined_.completed == expected_; });
  return joined_;
}

}  // namespace mux::core
