// Block Lookup Table (BLT): per-file map from block index to the tier that
// stores the current version of the block (paper §2.2, Figure 2).
//
// Two implementations, both mentioned in the paper:
//  * ExtentTreeBlt — runs of blocks on the same tier stored as extents in an
//    ordered tree; the default ("we use an extent tree as a high-performance
//    data structure").
//  * ByteArrayBlt — "one byte per 4 KB of user data is sufficient with a
//    simple byte array, leading to less than 0.025% of space overhead"
//    (§2.3). Kept for the space/speed ablation bench.
#ifndef MUX_CORE_BLOCK_LOOKUP_TABLE_H_
#define MUX_CORE_BLOCK_LOOKUP_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/core/tier.h"

namespace mux::core {

class BlockLookupTable {
 public:
  struct Run {
    uint64_t first_block = 0;
    uint64_t count = 0;
    TierId tier = kInvalidTier;
  };

  virtual ~BlockLookupTable() = default;

  // Tier storing `block`; kInvalidTier for holes.
  virtual TierId Lookup(uint64_t block) const = 0;
  virtual void SetRange(uint64_t first_block, uint64_t count, TierId tier) = 0;
  void Set(uint64_t block, TierId tier) { SetRange(block, 1, tier); }
  // Clears mappings at and beyond `first_block` (truncate).
  virtual void TruncateFrom(uint64_t first_block) = 0;
  // Clears mappings in a range (hole punch).
  virtual void ClearRange(uint64_t first_block, uint64_t count) = 0;

  // Decomposes [first_block, first_block+count) into maximal runs of equal
  // tier (holes appear as kInvalidTier runs). This is what the VFS call
  // processor uses to split one user request into per-file-system requests.
  virtual std::vector<Run> Runs(uint64_t first_block, uint64_t count) const = 0;
  // Every mapped run in the file, in order.
  virtual std::vector<Run> AllRuns() const = 0;

  // Mapped blocks on a given tier / in total.
  virtual uint64_t BlocksOnTier(TierId tier) const = 0;
  virtual uint64_t TotalBlocks() const = 0;
  // Approximate DRAM footprint, for the paper's space-overhead claim.
  virtual uint64_t MemoryBytes() const = 0;
};

// Extent-tree implementation (default).
class ExtentTreeBlt : public BlockLookupTable {
 public:
  TierId Lookup(uint64_t block) const override;
  void SetRange(uint64_t first_block, uint64_t count, TierId tier) override;
  void TruncateFrom(uint64_t first_block) override;
  void ClearRange(uint64_t first_block, uint64_t count) override;
  std::vector<Run> Runs(uint64_t first_block, uint64_t count) const override;
  std::vector<Run> AllRuns() const override;
  uint64_t BlocksOnTier(TierId tier) const override;
  uint64_t TotalBlocks() const override;
  uint64_t MemoryBytes() const override;

 private:
  struct Extent {
    uint64_t count = 0;
    TierId tier = kInvalidTier;
  };
  // Merges with neighbours where possible; requires the entry at `it` to
  // exist.
  void Coalesce(std::map<uint64_t, Extent>::iterator it);

  std::map<uint64_t, Extent> extents_;  // first_block -> extent
  std::map<TierId, uint64_t> per_tier_;
};

// Byte-array implementation (one byte per block).
class ByteArrayBlt : public BlockLookupTable {
 public:
  TierId Lookup(uint64_t block) const override;
  void SetRange(uint64_t first_block, uint64_t count, TierId tier) override;
  void TruncateFrom(uint64_t first_block) override;
  void ClearRange(uint64_t first_block, uint64_t count) override;
  std::vector<Run> Runs(uint64_t first_block, uint64_t count) const override;
  std::vector<Run> AllRuns() const override;
  uint64_t BlocksOnTier(TierId tier) const override;
  uint64_t TotalBlocks() const override;
  uint64_t MemoryBytes() const override;

 private:
  static constexpr uint8_t kHole = 0xff;
  std::vector<uint8_t> tiers_;  // index = block, value = tier (kHole = none)
  std::map<TierId, uint64_t> per_tier_;
};

enum class BltKind { kExtentTree, kByteArray };

std::unique_ptr<BlockLookupTable> MakeBlt(BltKind kind);

}  // namespace mux::core

#endif  // MUX_CORE_BLOCK_LOOKUP_TABLE_H_
